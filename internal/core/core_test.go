package core

import (
	"testing"

	"repro/internal/trace"
)

func newCommunity(t *testing.T, o Options) *Community {
	t.Helper()
	if o.Founders == 0 {
		o.Founders = 60
	}
	if o.Seed == 0 {
		o.Seed = 4
	}
	c, err := NewCommunity(o)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCommunityDefaults(t *testing.T) {
	c := newCommunity(t, Options{})
	if c.Size() != 60 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.Now() != 0 {
		t.Fatalf("clock = %d", c.Now())
	}
	if len(c.Members()) != 60 {
		t.Fatal("members mismatch")
	}
	for _, m := range c.Members() {
		if !c.IsMember(m) {
			t.Fatal("member not recognised")
		}
		if c.Reputation(m) < 0.99 {
			t.Fatalf("founder reputation %v", c.Reputation(m))
		}
	}
}

func TestNewCommunityOptionValidation(t *testing.T) {
	if _, err := NewCommunity(Options{Topology: "mesh"}); err == nil {
		t.Fatal("bad topology accepted")
	}
	if _, err := NewCommunity(Options{IntroAmt: 2}); err == nil {
		t.Fatal("bad intro amount accepted")
	}
}

func TestIntroductionLifecycle(t *testing.T) {
	c := newCommunity(t, Options{})
	c.Advance(2000)

	member := c.Members()[0]
	before := c.Reputation(member)
	newcomer, err := c.RequestIntroduction(Cooperative, member)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsMember(newcomer) {
		t.Fatal("admitted before the waiting period")
	}
	c.Advance(c.WaitPeriod() + 1)
	if !c.IsMember(newcomer) {
		t.Fatal("cooperative newcomer not admitted")
	}
	if rep := c.Reputation(newcomer); rep < 0.05 || rep > 0.15 {
		t.Fatalf("lent reputation = %v, want ≈0.1", rep)
	}
	if after := c.Reputation(member); after >= before {
		t.Fatalf("introducer not staked: %v -> %v", before, after)
	}
}

func TestFreeridingNewcomerBurnsCredit(t *testing.T) {
	c := newCommunity(t, Options{})
	c.Advance(2000)
	member := c.Members()[1]
	freerider, err := c.RequestIntroduction(Freeriding, member)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(c.WaitPeriod() + 1)
	if !c.IsMember(freerider) {
		t.Skip("selective member refused the freerider outright (valid outcome)")
	}
	c.Advance(20000)
	if rep := c.Reputation(freerider); rep > 0.2 {
		t.Fatalf("freerider reputation %v did not decay", rep)
	}
	st := c.Stats()
	if st.AuditsBad == 0 {
		t.Fatal("freerider audit did not forfeit")
	}
}

func TestUnknownIntroducerRejected(t *testing.T) {
	c := newCommunity(t, Options{})
	var ghost PeerID
	ghost[0] = 0xab
	if _, err := c.RequestIntroduction(Cooperative, ghost); err == nil {
		t.Fatal("unknown introducer accepted")
	}
}

func TestUnknownBehaviourRejected(t *testing.T) {
	c := newCommunity(t, Options{})
	if _, err := c.RequestIntroduction(Behaviour(42), c.Members()[0]); err == nil {
		t.Fatal("unknown behaviour accepted")
	}
}

func TestBackgroundArrivals(t *testing.T) {
	c := newCommunity(t, Options{Lambda: 0.05, FracUncoop: 0.25})
	c.Advance(8000)
	st := c.Stats()
	if st.AdmittedCoop == 0 {
		t.Fatal("no background admissions")
	}
	if st.Members != int(st.Cooperative+st.Uncooperative) {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	if st.SuccessRate <= 0 || st.SuccessRate > 1 {
		t.Fatalf("success rate %v", st.SuccessRate)
	}
	if st.MeanCoopRep <= 0 {
		t.Fatalf("mean cooperative reputation %v", st.MeanCoopRep)
	}
}

func TestTraceExposedAndConsistent(t *testing.T) {
	c := newCommunity(t, Options{Lambda: 0.05})
	c.Advance(6000)
	log := c.Trace()
	if log.Len() == 0 {
		t.Fatal("no trace events")
	}
	if v := log.Verify(); len(v) != 0 {
		t.Fatalf("trace violations: %v", v)
	}
	if len(log.Filter(trace.Arrival)) == 0 {
		t.Fatal("no arrival events")
	}
}

func TestCustomIntroAmt(t *testing.T) {
	c := newCommunity(t, Options{IntroAmt: 0.3})
	c.Advance(1000)
	member := c.Members()[0]
	newcomer, err := c.RequestIntroduction(Cooperative, member)
	if err != nil {
		t.Fatal(err)
	}
	c.Advance(c.WaitPeriod() + 1)
	if rep := c.Reputation(newcomer); rep < 0.25 || rep > 0.35 {
		t.Fatalf("lent reputation %v, want ≈0.3", rep)
	}
}

func TestWorldEscapeHatch(t *testing.T) {
	c := newCommunity(t, Options{})
	if c.World() == nil || c.World().Ring().Size() != c.Size() {
		t.Fatal("World() accessor broken")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	c := newCommunity(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Advance(-1)
}
