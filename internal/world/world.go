package world

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/lending"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/peer"
	"repro/internal/rng"
	"repro/internal/rocq"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/transport"
)

// World wires the substrates into the paper's simulator: a structured
// overlay hosting ROCQ score managers, the reputation-lending admission
// protocol, a topology-biased transaction workload (one transaction per
// tick), and Poisson arrivals of new peers.
type World struct {
	cfg    config.Config
	engine *sim.Engine
	bus    *transport.Bus
	ring   *overlay.Ring
	topo   topology.Selector
	proto  *lending.Protocol
	policy baseline.Policy // used when cfg.RequireIntroductions is false
	tracer *trace.Log      // optional structured event log

	// Independent random streams keep the workload, the arrival process
	// and behavioural coin flips decoupled, so e.g. changing λ does not
	// reshuffle transaction outcomes.
	arrivalRand  *rng.Source
	workloadRand *rng.Source
	behaveRand   *rng.Source
	keyRand      *rng.Source

	peers    map[id.ID]*peer.Peer
	admitted []id.ID // peers currently in the system, in admission order
	stores   map[id.ID]*rocq.Store

	// smCache caches score-manager assignments per peer, invalidated by
	// ring epoch (assignments only move when membership changes).
	smCache map[id.ID]*smCacheEntry

	seq        int64   // peer id sequence
	arrClock   float64 // continuous arrival clock for the Poisson process
	arrivalGen int64   // invalidates in-flight arrival chains on λ changes
	started    bool    // workload processes armed

	m Metrics
}

type smCacheEntry struct {
	epoch int64
	sms   []id.ID
}

// Metrics collects everything the experiment harness needs.
type Metrics struct {
	// Population counters (current, cumulative over the run).
	CoopInSystem   int64
	UncoopInSystem int64
	Founders       int64
	ArrivalsCoop   int64
	ArrivalsUncoop int64

	// Admission outcomes by class.
	AdmittedCoop   int64
	AdmittedUncoop int64
	// RefusedSelective counts newcomers declined by their chosen
	// introducer; RefusedRep counts lends blocked by the minIntroRep
	// floor (Fig 4 and Fig 6 plot these).
	RefusedSelectiveCoop   int64
	RefusedSelectiveUncoop int64
	RefusedRepCoop         int64
	RefusedRepUncoop       int64
	RefusedNoIntroducer    int64
	Pending                int64 // arrivals still inside the waiting period at end

	// Serve/deny decision quality, counted over decisions taken by
	// cooperative respondents (§4.1's success-rate definition).
	DecisionsByCoop  int64
	CorrectDecisions int64
	Served           int64
	Denied           int64
	// ServedToUncoop counts completed transactions whose requester was
	// uncooperative: the service freeriders actually extracted — the
	// damage metric of the whitewashing ablation.
	ServedToUncoop int64

	// Audit outcomes.
	AuditsSatisfied int64
	AuditsForfeited int64
	FlaggedPeers    int64

	// Time series sampled every cfg.SampleEvery ticks.
	CoopCount      *metrics.Series // cooperative peers in system
	UncoopCount    *metrics.Series // uncooperative peers in system
	CoopReputation *metrics.Series // mean reputation of cooperative peers
}

// SuccessRate returns the fraction of serve/deny decisions by cooperative
// respondents that were correct (serve a cooperative requester, deny an
// uncooperative one).
func (m *Metrics) SuccessRate() float64 {
	if m.DecisionsByCoop == 0 {
		return 0
	}
	return float64(m.CorrectDecisions) / float64(m.DecisionsByCoop)
}

// NewWorld builds a world from the configuration, creating the founding
// community. Call Run to execute the workload.
func New(cfg config.Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	w := &World{
		cfg:          cfg,
		engine:       sim.NewEngine(),
		bus:          transport.NewBus(),
		ring:         overlay.NewRing(),
		arrivalRand:  root.Split(),
		workloadRand: root.Split(),
		behaveRand:   root.Split(),
		keyRand:      root.Split(),
		peers:        make(map[id.ID]*peer.Peer),
		stores:       make(map[id.ID]*rocq.Store),
		smCache:      make(map[id.ID]*smCacheEntry),
		policy:       baseline.MidSpectrum{},
		m: Metrics{
			CoopCount:      &metrics.Series{Name: "coop"},
			UncoopCount:    &metrics.Series{Name: "uncoop"},
			CoopReputation: &metrics.Series{Name: "coop-reputation"},
		},
	}
	topo, err := topology.New(cfg.Topology, root.Split())
	if err != nil {
		return nil, err
	}
	w.topo = topo

	proto, err := lending.New(lending.Params{
		IntroAmt:       cfg.IntroAmt,
		Reward:         cfg.Reward,
		MinIntroRep:    cfg.MinIntroRep,
		AuditThreshold: cfg.AuditThreshold,
		Wait:           sim.Tick(cfg.WaitPeriod),
		NumSM:          cfg.NumSM,
	}, w.engine, w.bus, w, lending.Events{
		Admitted:     w.onAdmitted,
		Refused:      w.onRefused,
		AuditOutcome: w.onAuditOutcome,
		Flagged:      w.onFlagged,
	})
	if err != nil {
		return nil, err
	}
	w.proto = proto

	if err := w.createFounders(); err != nil {
		return nil, err
	}
	return w, nil
}

// SetPolicy selects the bootstrap rule used when the configuration
// disables the introduction requirement.
func (w *World) SetPolicy(p baseline.Policy) { w.policy = p }

// SetTrace attaches a structured event log; nil detaches it.
func (w *World) SetTrace(l *trace.Log) { w.tracer = l }

// record writes to the attached tracer, if any.
func (w *World) record(kind trace.Kind, p, other id.ID, detail string) {
	if w.tracer != nil {
		w.tracer.Record(int64(w.engine.Now()), kind, p, other, detail)
	}
}

// Engine exposes the discrete-event engine (examples drive it directly).
func (w *World) Engine() *sim.Engine { return w.engine }

// Bus exposes the transport layer for fault injection in tests.
func (w *World) Bus() *transport.Bus { return w.bus }

// Ring exposes the overlay.
func (w *World) Ring() *overlay.Ring { return w.ring }

// Protocol exposes the lending protocol (for its statistics).
func (w *World) Protocol() *lending.Protocol { return w.proto }

// Metrics returns the collected metrics.
func (w *World) Metrics() *Metrics { return &w.m }

// Config returns the world's configuration.
func (w *World) Config() config.Config { return w.cfg }

// Peer returns a peer by identifier.
func (w *World) Peer(pid id.ID) (*peer.Peer, bool) {
	p, ok := w.peers[pid]
	return p, ok
}

// PopulationSize returns the number of peers currently in the system.
func (w *World) PopulationSize() int { return len(w.admitted) }

// IsAdmitted reports whether the peer is currently in the system.
func (w *World) IsAdmitted(pid id.ID) bool {
	for _, v := range w.admitted {
		if v == pid {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// lending.Network implementation.

// ScoreManagers returns the current score-manager node set for a peer,
// cached per overlay epoch.
func (w *World) ScoreManagers(p id.ID) []id.ID {
	if e, ok := w.smCache[p]; ok && e.epoch == w.ring.Epoch() {
		return e.sms
	}
	sms, err := w.ring.ScoreManagers(p, w.cfg.NumSM)
	if err != nil {
		panic(fmt.Sprintf("sim: score managers for %s: %v", p.Short(), err))
	}
	w.smCache[p] = &smCacheEntry{epoch: w.ring.Epoch(), sms: sms}
	return sms
}

// Store returns (allocating) the reputation store hosted at a node.
func (w *World) Store(node id.ID) *rocq.Store {
	s, ok := w.stores[node]
	if !ok {
		s = rocq.NewStore(rocq.DefaultParams())
		w.stores[node] = s
	}
	return s
}

// ---------------------------------------------------------------------------
// Setup.

func (w *World) newPeerID() id.ID {
	w.seq++
	return id.HashString(fmt.Sprintf("peer-%d-seed-%d", w.seq, w.cfg.Seed))
}

// createFounders builds the initial community: cfg.NumInit cooperative
// peers, fracNaive of them naive introducers, all fully trusted.
func (w *World) createFounders() error {
	for i := 0; i < w.cfg.NumInit; i++ {
		pid := w.newPeerID()
		style := peer.AssignStyle(peer.Cooperative, w.cfg.FracNaive, w.behaveRand)
		p := peer.New(pid, peer.Cooperative, style, rocq.DefaultParams())
		if err := w.attachNode(p); err != nil {
			return err
		}
		w.admit(p, 0)
		w.m.Founders++
	}
	// Founders start fully reputed; their score managers now exist, so
	// initialise their state.
	for _, pid := range w.admitted {
		for _, sm := range w.ScoreManagers(pid) {
			w.Store(sm).Init(pid, w.cfg.FounderRep)
		}
	}
	return nil
}

// attachNode joins a peer's node to the overlay and registers its signing
// identity (it may become a score manager for others immediately).
func (w *World) attachNode(p *peer.Peer) error {
	if err := w.ring.Join(p.ID); err != nil {
		return fmt.Errorf("sim: joining overlay: %w", err)
	}
	signer, err := transport.NewSigner(w.keyRand.Split())
	if err != nil {
		return err
	}
	w.proto.RegisterPeer(p.ID, signer)
	w.peers[p.ID] = p
	return nil
}

// admit places a peer in the community: eligible as requester, respondent
// and introducer.
func (w *World) admit(p *peer.Peer, at sim.Tick) {
	p.JoinedAt = at
	w.admitted = append(w.admitted, p.ID)
	w.topo.Add(p.ID)
	if p.Class == peer.Cooperative {
		w.m.CoopInSystem++
	} else {
		w.m.UncoopInSystem++
	}
}

// ---------------------------------------------------------------------------
// Lending protocol events.

func (w *World) onAdmitted(newcomer, introducer id.ID, at sim.Tick) {
	p := w.peers[newcomer]
	p.Introducer = introducer
	w.m.Pending--
	w.record(trace.Admitted, newcomer, introducer, p.Class.String())
	w.admit(p, at)
	if p.Class == peer.Cooperative {
		w.m.AdmittedCoop++
	} else {
		w.m.AdmittedUncoop++
	}
}

func (w *World) onRefused(newcomer, introducer id.ID, reason lending.Reason, at sim.Tick) {
	p := w.peers[newcomer]
	w.m.Pending--
	w.record(trace.Refused, newcomer, introducer, reason.String())
	coop := p.Class == peer.Cooperative
	switch reason {
	case lending.RefusedByIntroducer:
		if coop {
			w.m.RefusedSelectiveCoop++
		} else {
			w.m.RefusedSelectiveUncoop++
		}
	case lending.RefusedIntroducerRep, lending.RefusedProtocolFailure:
		if coop {
			w.m.RefusedRepCoop++
		} else {
			w.m.RefusedRepUncoop++
		}
	}
	// The refused peer leaves: it never became part of the community.
	// Its overlay node departs as well.
	w.detachNode(newcomer)
}

func (w *World) onAuditOutcome(newcomer, introducer id.ID, satisfactory bool, at sim.Tick) {
	if satisfactory {
		w.m.AuditsSatisfied++
		w.record(trace.AuditOK, newcomer, introducer, "")
	} else {
		w.m.AuditsForfeited++
		w.record(trace.AuditFail, newcomer, introducer, "")
	}
}

func (w *World) onFlagged(pid id.ID, at sim.Tick) {
	w.m.FlaggedPeers++
	w.record(trace.Flagged, pid, id.ID{}, "duplicate introduction")
	if p, ok := w.peers[pid]; ok {
		p.Flagged = true
	}
}

// detachNode removes a never-admitted peer's node from the overlay and
// the transport.
func (w *World) detachNode(pid id.ID) {
	if w.ring.Contains(pid) {
		if err := w.ring.Leave(pid); err != nil {
			panic(fmt.Sprintf("sim: detaching %s: %v", pid.Short(), err))
		}
	}
	w.bus.Unregister(pid)
	delete(w.peers, pid)
}

// ---------------------------------------------------------------------------
// Arrival process.

// scheduleNextArrival advances the continuous Poisson clock and schedules
// the next arrival event. The chain carries the arrival generation it was
// armed under: when ApplyDelta changes λ it bumps the generation, so an
// already-scheduled arrival from the old process aborts instead of firing
// at the stale rate.
func (w *World) scheduleNextArrival() {
	if w.cfg.Lambda <= 0 {
		return
	}
	gen := w.arrivalGen
	w.arrClock += w.arrivalRand.Exp(w.cfg.Lambda)
	at := sim.Tick(w.arrClock)
	if at <= w.engine.Now() {
		at = w.engine.Now() + 1
	}
	w.engine.Schedule(at, "arrival", func() {
		if gen != w.arrivalGen {
			return
		}
		w.handleArrival()
		w.scheduleNextArrival()
	})
}

// rearmArrivals cancels any in-flight arrival chain and, if λ is positive
// and the workload is running, starts a fresh Poisson process from now.
// The continuous clock is reset unconditionally: a residual waiting time
// drawn under the old rate must not delay the first arrival of the new
// one.
func (w *World) rearmArrivals() {
	w.arrivalGen++
	if !w.started {
		return // Start will arm the (new-generation) chain
	}
	w.arrClock = float64(w.engine.Now())
	w.scheduleNextArrival()
}

// handleArrival creates one new peer and runs the admission path.
func (w *World) handleArrival() {
	class := peer.AssignArrivalClass(w.cfg.FracUncoop, w.behaveRand)
	style := peer.AssignStyle(class, w.cfg.FracNaive, w.behaveRand)
	p := peer.New(w.newPeerID(), class, style, rocq.DefaultParams())
	if class == peer.Cooperative {
		w.m.ArrivalsCoop++
	} else {
		w.m.ArrivalsUncoop++
	}

	if !w.cfg.RequireIntroductions {
		// Baseline: admit immediately with the policy's bootstrap value.
		if err := w.attachNode(p); err != nil {
			panic(err)
		}
		for _, sm := range w.ScoreManagers(p.ID) {
			w.Store(sm).Init(p.ID, w.policy.InitialReputation())
		}
		w.admit(p, w.engine.Now())
		if p.Class == peer.Cooperative {
			w.m.AdmittedCoop++
		} else {
			w.m.AdmittedUncoop++
		}
		return
	}

	// "The arriving peer chooses a potential introducer from the set of
	// peers that are already in the system", biased by topology.
	introducerID, ok := w.topo.Pick(id.ID{})
	if !ok {
		w.m.RefusedNoIntroducer++
		return
	}
	if err := w.attachNode(p); err != nil {
		panic(err)
	}
	introducer := w.peers[introducerID]
	w.record(trace.Arrival, p.ID, introducerID, p.Class.String())
	granted := introducer.WillIntroduce(p.Class, w.cfg.ErrSel, w.behaveRand)
	w.m.Pending++
	w.proto.Begin(p.ID, introducerID, granted)
}

// ---------------------------------------------------------------------------
// Transaction workload.

// scheduleTransactions arms the once-per-tick transaction process,
// starting at tick 1.
func (w *World) scheduleTransactions() {
	var step func()
	step = func() {
		w.transact()
		w.engine.After(1, "transaction", step)
	}
	w.engine.Schedule(1, "transaction", step)
}

// transact runs one resource transaction: uniform requester, topology-
// biased respondent, serve decision by requester reputation, mutual
// feedback to score managers on completion.
func (w *World) transact() {
	n := len(w.admitted)
	if n < 2 {
		return
	}
	requesterID := w.admitted[w.workloadRand.Intn(n)]
	respondentID, ok := w.topo.Pick(requesterID)
	if !ok {
		return
	}
	requester := w.peers[requesterID]
	respondent := w.peers[respondentID]

	rep, _ := rocq.QuerySet(w.smStores(requesterID), requesterID)
	serve := respondent.WillServe(rep, w.workloadRand)

	if respondent.Class == peer.Cooperative && !respondent.Defected(w.engine.Now()) {
		w.m.DecisionsByCoop++
		requesterGood := requester.BehavesWellAt(w.engine.Now())
		if serve == requesterGood {
			w.m.CorrectDecisions++
		}
	}
	if !serve {
		w.m.Denied++
		return
	}
	w.m.Served++
	if !requester.BehavesWellAt(w.engine.Now()) {
		w.m.ServedToUncoop++
	}

	// Completed transaction: each party records first-hand experience and
	// reports its opinion of the partner to the partner's score managers.
	w.report(requester, respondent)
	w.report(respondent, requester)

	w.noteCompleted(requester)
	w.noteCompleted(respondent)
}

// report sends rater's updated opinion about subject to subject's score
// managers.
func (w *World) report(rater, subject *peer.Peer) {
	now := w.engine.Now()
	rating := rater.RateAt(now, subject.BehavesWellAt(now))
	op := rater.Opinions.Record(subject.ID, rating)
	for _, sm := range w.ScoreManagers(subject.ID) {
		w.Store(sm).Report(rater.ID, subject.ID, op)
	}
}

// noteCompleted advances a peer's completed-transaction count and fires
// the admission audit at the threshold.
func (w *World) noteCompleted(p *peer.Peer) {
	p.Completed++
	if !p.Audited && p.Completed >= w.cfg.AuditTrans {
		p.Audited = true
		if !p.Introducer.IsZero() {
			w.proto.Audit(p.ID)
		}
	}
}

// smStores resolves the stores behind a peer's current score managers.
func (w *World) smStores(pid id.ID) []*rocq.Store {
	sms := w.ScoreManagers(pid)
	stores := make([]*rocq.Store, len(sms))
	for i, n := range sms {
		stores[i] = w.Store(n)
	}
	return stores
}

// Reputation returns a peer's aggregate reputation as its score managers
// currently see it.
func (w *World) Reputation(pid id.ID) float64 {
	v, _ := rocq.QuerySet(w.smStores(pid), pid)
	return v
}

// ---------------------------------------------------------------------------
// Sampling.

func (w *World) scheduleSampling() {
	var step func()
	step = func() {
		w.sample()
		w.engine.After(sim.Tick(w.cfg.SampleEvery), "sample", step)
	}
	w.engine.Schedule(0, "sample", step)
}

// sample records the population counts and the mean cooperative
// reputation (the paper's Figure 2 series).
func (w *World) sample() {
	now := w.engine.Now()
	if last, ok := w.m.CoopCount.Last(); ok && last.T == int64(now) {
		return // closing sample coincides with a periodic one
	}
	w.m.CoopCount.Append(int64(now), float64(w.m.CoopInSystem))
	w.m.UncoopCount.Append(int64(now), float64(w.m.UncoopInSystem))

	sum, n := 0.0, 0
	for _, pid := range w.admitted {
		if w.peers[pid].Class != peer.Cooperative {
			continue
		}
		sum += w.Reputation(pid)
		n++
	}
	mean := 0.0
	if n > 0 {
		mean = sum / float64(n)
	}
	w.m.CoopReputation.Append(int64(now), mean)
}

// ---------------------------------------------------------------------------
// Run.

// Start arms the workload processes (transactions, arrivals, sampling)
// without advancing time. Run calls it implicitly; scripted scenarios call
// it once and then drive the clock with RunFor.
func (w *World) Start() {
	if w.started {
		return
	}
	w.started = true
	w.scheduleTransactions()
	w.scheduleNextArrival()
	w.scheduleSampling()
}

// RunFor advances the simulation by n ticks.
func (w *World) RunFor(n sim.Tick) {
	if n < 0 {
		panic("world: negative RunFor duration")
	}
	w.Start()
	w.engine.RunUntil(w.engine.Now() + n)
}

// Run executes the configured workload: cfg.NumTrans ticks of one
// transaction each, Poisson arrivals, periodic sampling.
func (w *World) Run() {
	w.Start()
	w.engine.RunUntil(sim.Tick(w.cfg.NumTrans))
	w.Finish()
}

// Finish records the closing time-series sample at the current tick.
// Callers that drive the clock themselves (scenarios, scripted examples)
// call it once at the end of the run; Run does so implicitly.
func (w *World) Finish() {
	w.sample()
}

// InjectArrival scripts the arrival of a specific peer: class and
// introduction style are chosen by the caller, as is the member asked for
// the introduction. The introducer applies its normal judgement. The new
// peer's identifier is returned; admission (or refusal) is reported
// through the usual metrics once the waiting period elapses. Used by the
// collusion experiment and the examples.
func (w *World) InjectArrival(class peer.Class, style peer.Style, introducerID id.ID) (id.ID, error) {
	introducer, ok := w.peers[introducerID]
	if !ok {
		return id.ID{}, fmt.Errorf("world: introducer %s not in the system", introducerID.Short())
	}
	p := peer.New(w.newPeerID(), class, style, rocq.DefaultParams())
	if class == peer.Cooperative {
		w.m.ArrivalsCoop++
	} else {
		w.m.ArrivalsUncoop++
	}
	if err := w.attachNode(p); err != nil {
		return id.ID{}, err
	}
	w.record(trace.Arrival, p.ID, introducerID, p.Class.String())
	granted := introducer.WillIntroduce(p.Class, w.cfg.ErrSel, w.behaveRand)
	w.m.Pending++
	w.proto.Begin(p.ID, introducerID, granted)
	return p.ID, nil
}

// InjectTraitor scripts the arrival of a reputation-milking peer: it
// behaves cooperatively until defectAt, then freerides and lies like an
// uncooperative peer. Used by the traitor extension experiment.
func (w *World) InjectTraitor(style peer.Style, introducerID id.ID, defectAt sim.Tick) (id.ID, error) {
	pid, err := w.InjectArrival(peer.Cooperative, style, introducerID)
	if err != nil {
		return id.ID{}, err
	}
	w.peers[pid].DefectAt = defectAt
	return pid, nil
}

// AdmittedPeers returns the identifiers of peers currently in the system,
// in admission order (copy).
func (w *World) AdmittedPeers() []id.ID {
	return append([]id.ID(nil), w.admitted...)
}
