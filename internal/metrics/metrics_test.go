package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := &Counter{Name: "admitted"}
	c.Inc()
	c.Add(4)
	if c.Value != 5 {
		t.Fatalf("counter = %d, want 5", c.Value)
	}
}

func TestCounterNegativeAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestSeriesAppendAndLast(t *testing.T) {
	s := &Series{Name: "rep"}
	if _, ok := s.Last(); ok {
		t.Fatal("empty series should have no Last")
	}
	s.Append(0, 1.0)
	s.Append(5, 2.0)
	s.Append(5, 3.0) // same tick allowed
	p, ok := s.Last()
	if !ok || p.T != 5 || p.V != 3.0 {
		t.Fatalf("Last = %+v, %v", p, ok)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Append(9, 2)
}

func TestSeriesAt(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(10, 1)
	s.Append(20, 2)
	if _, ok := s.At(5); ok {
		t.Fatal("At before first sample should be absent")
	}
	if v, ok := s.At(10); !ok || v != 1 {
		t.Fatalf("At(10) = %v, %v", v, ok)
	}
	if v, ok := s.At(15); !ok || v != 1 {
		t.Fatalf("At(15) = %v, %v", v, ok)
	}
	if v, ok := s.At(25); !ok || v != 2 {
		t.Fatalf("At(25) = %v, %v", v, ok)
	}
}

func TestSeriesValues(t *testing.T) {
	s := &Series{Name: "x"}
	s.Append(1, 10)
	s.Append(2, 20)
	vs := s.Values()
	if len(vs) != 2 || vs[0] != 10 || vs[1] != 20 {
		t.Fatalf("Values = %v", vs)
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Observe(v)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; unbiased is 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningMergeEqualsSequential(t *testing.T) {
	// Inputs are folded into a bounded range: the reputation values this
	// accumulator sees in practice live in [0,1], and unbounded float64
	// inputs overflow the m2 sum-of-squares term.
	bound := func(v float64) float64 {
		return math.Abs(math.Mod(v, 1000))
	}
	f := func(a, b []float64) bool {
		var whole, left, right Running
		for _, v := range a {
			v = bound(v)
			whole.Observe(v)
			left.Observe(v)
		}
		for _, v := range b {
			v = bound(v)
			whole.Observe(v)
			right.Observe(v)
		}
		left.Merge(&right)
		if whole.N() != left.N() {
			return false
		}
		if whole.N() == 0 {
			return true
		}
		return math.Abs(whole.Mean()-left.Mean()) < 1e-9 &&
			math.Abs(whole.Variance()-left.Variance()) < 1e-6 &&
			whole.Min() == left.Min() && whole.Max() == left.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningCI95ShrinksWithSamples(t *testing.T) {
	var small, large Running
	for i := 0; i < 10; i++ {
		small.Observe(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Observe(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean([1,2,3]) should be 2")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Fatalf("p25 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Percentile(nil, 50) },
		func() { Percentile([]float64{1}, -1) },
		func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMergeSeriesAverages(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for _, p := range []Point{{0, 1}, {10, 3}} {
		a.Append(p.T, p.V)
	}
	for _, p := range []Point{{0, 3}, {10, 5}} {
		b.Append(p.T, p.V)
	}
	m := MergeSeries("avg", []*Series{a, b})
	if len(m.Points) != 2 || m.Points[0].V != 2 || m.Points[1].V != 4 {
		t.Fatalf("merged = %+v", m.Points)
	}
	if m.Points[0].T != 0 || m.Points[1].T != 10 {
		t.Fatalf("merged times wrong: %+v", m.Points)
	}
}

func TestMergeSeriesShapeMismatchPanics(t *testing.T) {
	a := &Series{Name: "a"}
	a.Append(0, 1)
	b := &Series{Name: "b"}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeSeries("avg", []*Series{a, b})
}

func TestMergeSeriesEmptyInput(t *testing.T) {
	m := MergeSeries("avg", nil)
	if m.Name != "avg" || len(m.Points) != 0 {
		t.Fatalf("merged = %+v", m)
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "coop"}
	b := &Series{Name: "uncoop"}
	a.Append(0, 500)
	a.Append(1000, 520.5)
	b.Append(0, 0)
	b.Append(1000, 3)
	got := CSV(a, b)
	want := "t,coop,uncoop\n0,500,0\n1000,520.5,3\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	s := &Series{Name: "x"}
	got := CSV(s)
	if !strings.HasPrefix(got, "t,x\n") || strings.Count(got, "\n") != 1 {
		t.Fatalf("CSV = %q", got)
	}
}
