package rocq

import (
	"testing"

	"repro/internal/id"
)

func TestExportAdoptRoundTrip(t *testing.T) {
	src := NewStore(DefaultParams())
	subject := id.FromUint64(1)
	src.Init(subject, 0.8)
	src.Report(id.FromUint64(2), subject, Opinion{Value: 1, Quality: 0.9, Count: 5})
	snap, ok := src.Export(subject)
	if !ok {
		t.Fatal("export of a known subject failed")
	}
	want, _ := src.Query(subject)
	if got := snap.Value(); got != want {
		t.Fatalf("snapshot value %v, store reads %v", got, want)
	}

	dst := NewStore(DefaultParams())
	ref := dst.Ref(subject) // a pre-existing handle must survive adoption
	dst.Adopt(subject, snap)
	if got, ok := dst.Query(subject); !ok || got != want {
		t.Fatalf("adopted read %v (%v), want %v", got, ok, want)
	}
	if got, ok := ref.Query(); !ok || got != want {
		t.Fatalf("pre-adoption Ref reads %v (%v), want %v", got, ok, want)
	}
	// Adoption carries the evidence, not just the value: further reports
	// fold in with the migrated weight behind them.
	dst.Report(id.FromUint64(3), subject, Opinion{Value: 0, Quality: 1, Count: 1})
	v1, _ := dst.Query(subject)
	if v1 >= want {
		t.Fatalf("negative report did not move the adopted aggregate (%v -> %v)", want, v1)
	}
}

func TestExportUnknownSubject(t *testing.T) {
	s := NewStore(DefaultParams())
	if _, ok := s.Export(id.FromUint64(9)); ok {
		t.Fatal("export of an unknown subject succeeded")
	}
	s.Ref(id.FromUint64(9)) // placeholder slot, no evidence
	if _, ok := s.Export(id.FromUint64(9)); ok {
		t.Fatal("export of a placeholder slot succeeded")
	}
}

func TestSubjectIDsSortedAndPresentOnly(t *testing.T) {
	s := NewStore(DefaultParams())
	for _, v := range []uint64{5, 1, 9, 3} {
		s.Init(id.FromUint64(v), 0.5)
	}
	s.Ref(id.FromUint64(7)) // placeholder: must not be listed
	got := s.SubjectIDs()
	want := []uint64{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("SubjectIDs() = %d entries, want %d", len(got), len(want))
	}
	for i, v := range want {
		if got[i] != id.FromUint64(v) {
			t.Fatalf("SubjectIDs()[%d] = %v, want %v", i, got[i].Short(), v)
		}
	}
}

func TestOnChangeObservesEveryMutation(t *testing.T) {
	s := NewStore(DefaultParams())
	var events []id.ID
	s.SetOnChange(func(subject id.ID) { events = append(events, subject) })
	a, b := id.FromUint64(1), id.FromUint64(2)
	s.Init(a, 0.5)
	s.Report(id.FromUint64(3), a, Opinion{Value: 1, Quality: 0.5, Count: 1})
	s.Credit(b, 0.1)
	s.Debit(b, 0.05)
	s.Zero(b)
	s.Adopt(a, Snapshot{S: 1, W: 2, Reports: 1, Prior: 0.5})
	s.Forget(a)
	wantLen := 7
	if len(events) != wantLen {
		t.Fatalf("observer saw %d events, want %d: %v", len(events), wantLen, events)
	}
	// A placeholder Ref and plain queries are not mutations.
	s.Ref(id.FromUint64(4))
	s.Query(b)
	if len(events) != wantLen {
		t.Fatal("non-mutating calls notified the observer")
	}
}
