package experiments

import (
	"strings"

	"repro/internal/asciiplot"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Plotter is implemented by reports that can render themselves as ASCII
// charts with the same axes as the paper's figures. The CLI prints the
// plot beneath the numeric table.
type Plotter interface {
	Plot() string
}

// xySeries builds a series over a synthetic integer axis (sweep plots).
func xySeries(name string, xs []float64, scale float64, ys []float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i := range xs {
		s.Append(int64(xs[i]*scale), ys[i])
	}
	return s
}

// Plot renders Figure 1's axes: uncooperative count against cooperative
// count, one glyph per topology.
func (f *Fig1) Plot() string {
	var series []*metrics.Series
	for _, k := range []topology.Kind{topology.Random, topology.PowerLaw} {
		coop, uncoop := f.Coop[k], f.Uncoop[k]
		if coop == nil || uncoop == nil {
			continue
		}
		s := &metrics.Series{Name: "uncoop-" + string(k)}
		prev := int64(-1)
		for i := range coop.Points {
			x := int64(coop.Points[i].V)
			if x <= prev {
				continue // the x axis (coop count) must be monotone
			}
			prev = x
			s.Append(x, uncoop.Points[i].V)
		}
		series = append(series, s)
	}
	return asciiplot.Render(asciiplot.Options{
		Title:  "uncooperative vs cooperative peers",
		XLabel: "cooperative peers",
		YLabel: "uncooperative peers",
	}, series...)
}

// Plot renders Figure 2's reputation-over-time curves.
func (f *Fig2) Plot() string {
	var series []*metrics.Series
	for _, lam := range f.Lambdas() {
		series = append(series, f.Reputation[lam])
	}
	return asciiplot.Render(asciiplot.Options{
		Title:  "mean cooperative reputation over time, per arrival rate",
		XLabel: "time units",
		YLabel: "reputation",
	}, series...)
}

// Plot renders Figure 3's sweep.
func (f *Fig3) Plot() string {
	return asciiplot.Render(asciiplot.Options{
		Title:  "population vs proportion of naive introducers (x = fracNaive × 100)",
		XLabel: "naive fraction ×100",
		YLabel: "peers",
	},
		xySeries("coop", f.FracNaive, 100, f.Coop),
		xySeries("uncoop", f.FracNaive, 100, f.Uncoop),
	)
}

// Plot renders Figure 4's and Figure 5's sweeps.
func (f *Fig45) Plot() string {
	fig4 := asciiplot.Render(asciiplot.Options{
		Title:  "counts vs reputation lent (x = introAmt × 100)",
		XLabel: "introAmt ×100",
		YLabel: "peers",
	},
		xySeries("coop", f.IntroAmt, 100, f.Coop),
		xySeries("uncoop", f.IntroAmt, 100, f.Uncoop),
		xySeries("refused-rep", f.IntroAmt, 100, f.RefusedRep),
		xySeries("refused-uncoop", f.IntroAmt, 100, f.RefusedUncoop),
	)
	fig5 := asciiplot.Render(asciiplot.Options{
		Title:  "proportions vs reputation lent (x = introAmt × 100)",
		XLabel: "introAmt ×100",
		YLabel: "proportion",
	},
		xySeries("prop-coop", f.IntroAmt, 100, f.PropCoop),
		xySeries("prop-uncoop", f.IntroAmt, 100, f.PropUncoop),
	)
	return fig4 + "\n" + fig5
}

// Plot renders Figure 6's sweep.
func (f *Fig6) Plot() string {
	return asciiplot.Render(asciiplot.Options{
		Title:  "population vs percentage of freeriding entrants",
		XLabel: "% uncooperative arrivals",
		YLabel: "peers",
	},
		xySeries("coop", f.PctUncoop, 1, f.Coop),
		xySeries("uncoop", f.PctUncoop, 1, f.Uncoop),
		xySeries("refused-rep", f.PctUncoop, 1, f.RefusedRep),
		xySeries("refused-uncoop", f.PctUncoop, 1, f.RefusedUncoop),
	)
}

// PlotOf returns the report's chart when it has one, or "".
func PlotOf(r Report) string {
	if p, ok := r.(Plotter); ok {
		return strings.TrimRight(p.Plot(), "\n") + "\n"
	}
	return ""
}
