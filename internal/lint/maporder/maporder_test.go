package maporder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", maporder.Analyzer, "fixture")
}

// TestRebuildSMDepsBugClass pins the analyzer to the PR 4 regression
// it was built for: the historical rebuildSMDeps shape must be
// flagged, its sorted-keys repair accepted.
func TestRebuildSMDepsBugClass(t *testing.T) {
	linttest.Run(t, "testdata", maporder.Analyzer, "rebuildsmdeps")
}

func TestSuppressionDirectives(t *testing.T) {
	linttest.Run(t, "testdata", maporder.Analyzer, "suppressed")
}
