package rng

import (
	"math"
	"math/bits"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
}

func TestSplitReproducible(t *testing.T) {
	mk := func() []uint64 {
		p := New(99)
		var out []uint64
		for i := 0; i < 5; i++ {
			out = append(out, p.Split().Uint64())
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("split stream not reproducible at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d never drawn in 10000 samples", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUnbiasedSmallRange(t *testing.T) {
	r := New(6)
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[r.Uint64n(3)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.01 {
			t.Fatalf("value %d frequency %v, want ~1/3", v, frac)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(7)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", frac)
	}
}

func TestExpMean(t *testing.T) {
	r := New(8)
	const lambda = 0.1
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp(lambda)
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.3 {
		t.Fatalf("Exp mean %v, want ~%v", mean, 1/lambda)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonSmallMean(t *testing.T) {
	r := New(9)
	const mean = 2.5
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(r.Poisson(mean))
	}
	got := sum / n
	if math.Abs(got-mean) > 0.05 {
		t.Fatalf("Poisson(%v) sample mean %v", mean, got)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	r := New(10)
	const mean = 200.0
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Poisson(mean)
		if v < 0 {
			t.Fatalf("negative Poisson count %d", v)
		}
		sum += float64(v)
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Poisson(%v) sample mean %v", mean, got)
	}
}

func TestPoissonZero(t *testing.T) {
	if New(1).Poisson(0) != 0 {
		t.Fatal("Poisson(0) must be 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(11)
	const p = 0.25
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // mean failures before success
	got := sum / n
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("Geometric(%v) mean %v, want ~%v", p, got, want)
	}
	if r.Geometric(1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(12)
	const mean, sd = 5.0, 2.0
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Norm mean %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Norm stddev %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestPowerLawIndexBounds(t *testing.T) {
	r := New(13)
	for i := 0; i < 50000; i++ {
		v := r.PowerLawIndex(100, 1.0)
		if v < 0 || v >= 100 {
			t.Fatalf("PowerLawIndex out of range: %d", v)
		}
	}
}

func TestPowerLawIndexSkew(t *testing.T) {
	r := New(14)
	const n = 200000
	counts := make([]int, 50)
	for i := 0; i < n; i++ {
		counts[r.PowerLawIndex(50, 1.5)]++
	}
	if counts[0] < counts[10] {
		t.Fatalf("power law not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
	if counts[0] < counts[49]*5 {
		t.Fatalf("head/tail ratio too small: %d vs %d", counts[0], counts[49])
	}
}

func TestPowerLawIndexAlphaZeroUniform(t *testing.T) {
	r := New(15)
	const n = 100000
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.PowerLawIndex(10, 0)]++
	}
	for v, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("alpha=0 not uniform: value %d frequency %v", v, frac)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	for trial := 0; trial < 100; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle altered elements: %v", xs)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(18)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight element drawn %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("weight-1 element frequency %v, want ~0.25", frac0)
	}
}

func TestPickPanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestDeriveSeedIsPureAndKeyed(t *testing.T) {
	// Pure function of the pair: repeated evaluation agrees and consumes
	// no state anywhere.
	if DeriveSeed(7, 3) != DeriveSeed(7, 3) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	// For a fixed root, distinct keys must give distinct seeds (the key
	// path is bijective) — the no-collision guarantee replica and
	// sweep-point streams rely on.
	const n = 1 << 16
	seen := make(map[uint64]uint64, n)
	for k := uint64(0); k < n; k++ {
		s := DeriveSeed(42, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("keys %d and %d collide on seed %d", prev, k, s)
		}
		seen[s] = k
	}
	// Across roots the outputs should look unrelated: flipping one root
	// bit must reshuffle the child seed.
	if DeriveSeed(42, 0) == DeriveSeed(43, 0) {
		t.Fatal("adjacent roots derive the same child seed")
	}
	// The derived stream must not be the root stream.
	root, child := New(42), Derive(42, 0)
	same := 0
	for i := 0; i < 64; i++ {
		if root.Uint64() == child.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("child stream collides with root stream on %d of 64 draws", same)
	}
}

func TestDeriveStreamsAreIndependent(t *testing.T) {
	// Adjacent keys (the replica layout) must give uncorrelated streams:
	// a crude equidistribution check over the XOR of paired draws.
	a, b := Derive(1, 1), Derive(1, 2)
	ones := 0
	const draws = 1024
	for i := 0; i < draws; i++ {
		ones += bits.OnesCount64(a.Uint64() ^ b.Uint64())
	}
	mean := float64(ones) / draws
	if mean < 30 || mean > 34 {
		t.Fatalf("mean XOR popcount %v of paired draws, want ~32", mean)
	}
}
