package transport

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/id"
	"repro/internal/rng"
)

// The paper requires the introducer to send "a signed message to its score
// managers telling them to deduct the lent amount from its reputation",
// carrying "the identity of both the introducer and the new peer … as well
// as a unique id to prevent duplicate requests". Signer/Envelope implement
// that: Ed25519 signatures over a canonical encoding of the lend order.

// Signer holds a node's Ed25519 keypair, generated lazily on first use:
// most simulated peers never sign anything (only introducers and auditing
// score managers do), and key generation is a scalar multiplication —
// expensive enough to dominate the arrival path if done eagerly.
type Signer struct {
	src  *rng.Source
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// detRand adapts an rng.Source to io.Reader so key generation is
// deterministic under a simulation seed.
type detRand struct{ src *rng.Source }

func (d detRand) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], d.src.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}

// NewSigner wraps a deterministic source as a signing identity. The
// keypair itself is derived on first use; the source is private to this
// signer, so the deferral cannot perturb any other random stream and whole
// simulation runs stay reproducible.
func NewSigner(src *rng.Source) (*Signer, error) {
	if src == nil {
		return nil, errors.New("transport: signer needs a randomness source")
	}
	return &Signer{src: src}, nil
}

// materialize derives the keypair from the signer's source if it has not
// been derived yet.
func (s *Signer) materialize() {
	if s.priv != nil {
		return
	}
	pub, priv, err := ed25519.GenerateKey(detRand{s.src})
	if err != nil {
		// detRand cannot fail, and ed25519.GenerateKey has no other
		// error path for a working reader.
		panic(fmt.Sprintf("transport: generating keypair: %v", err))
	}
	s.pub, s.priv = pub, priv
}

// Public returns the public key, which peers distribute alongside their
// identifier when they join.
func (s *Signer) Public() ed25519.PublicKey {
	s.materialize()
	return s.pub
}

// GeneratedPublic returns the public key only if the keypair has already
// been derived (i.e. the signer has signed or been asked for its key),
// without forcing derivation. Consumers use it to decide whether any
// signature from this identity can exist in flight.
func (s *Signer) GeneratedPublic() (ed25519.PublicKey, bool) {
	if s.priv == nil {
		return nil, false
	}
	return s.pub, true
}

// LendOrder is the canonical content of a signed lend instruction: who
// lends how much to whom, with a unique nonce that score managers use to
// reject duplicate requests.
type LendOrder struct {
	Introducer id.ID
	NewPeer    id.ID
	Amount     float64 // reputation lent, in [0,1]
	Nonce      uint64  // unique per introduction
}

// Encode renders the order in its fixed-width canonical byte form (the
// bytes that get signed).
func (o LendOrder) Encode() []byte {
	buf := make([]byte, 0, 2*id.Bytes+16)
	buf = append(buf, o.Introducer[:]...)
	buf = append(buf, o.NewPeer[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(o.Amount))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], o.Nonce)
	buf = append(buf, tmp[:]...)
	return buf
}

// DecodeLendOrder parses the canonical byte form.
func DecodeLendOrder(b []byte) (LendOrder, error) {
	var o LendOrder
	if len(b) != 2*id.Bytes+16 {
		return o, fmt.Errorf("transport: lend order has %d bytes, want %d", len(b), 2*id.Bytes+16)
	}
	copy(o.Introducer[:], b[:id.Bytes])
	copy(o.NewPeer[:], b[id.Bytes:2*id.Bytes])
	o.Amount = math.Float64frombits(binary.BigEndian.Uint64(b[2*id.Bytes : 2*id.Bytes+8]))
	o.Nonce = binary.BigEndian.Uint64(b[2*id.Bytes+8:])
	return o, nil
}

// Envelope is a signed lend order plus the public key needed to verify it.
type Envelope struct {
	Order LendOrder
	Sig   []byte
	Pub   ed25519.PublicKey
}

// ErrBadSignature reports a failed envelope verification.
var ErrBadSignature = errors.New("transport: signature verification failed")

// Sign wraps the order in a verified envelope.
func (s *Signer) Sign(o LendOrder) Envelope {
	s.materialize()
	body := o.Encode()
	return Envelope{Order: o, Sig: ed25519.Sign(s.priv, body), Pub: s.pub}
}

// Verify checks the envelope's signature against its own public key and,
// when expected is non-nil, that the key matches the one on record for the
// introducer (otherwise any keypair could impersonate any peer).
func (e Envelope) Verify(expected ed25519.PublicKey) error {
	if len(e.Pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key size %d", ErrBadSignature, len(e.Pub))
	}
	if expected != nil && !e.Pub.Equal(expected) {
		return fmt.Errorf("%w: public key does not match introducer's registered key", ErrBadSignature)
	}
	if !ed25519.Verify(e.Pub, e.Order.Encode(), e.Sig) {
		return ErrBadSignature
	}
	return nil
}
