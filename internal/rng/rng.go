// Package rng provides a small, fully deterministic random number suite for
// the simulator. Every stochastic choice in an experiment flows through a
// seeded *Source, so a (seed, parameters) pair identifies a run exactly —
// the property the test suite and the multi-run experiment harness rely on.
//
// The generator is xoshiro256**, seeded via splitmix64, with samplers for
// the distributions the paper needs: uniform, Bernoulli, exponential
// (Poisson inter-arrival times), Poisson counts, geometric, normal and
// bounded power-law (the scale-free topology's degree bias).
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random generator. It is not safe for
// concurrent use; give each goroutine its own Source (see Split).
type Source struct {
	s [4]uint64
}

// State returns the generator's raw xoshiro256** state, for checkpointing.
// Restoring it with FromState yields a Source that continues the exact
// stream this one would have produced.
func (r *Source) State() [4]uint64 { return r.s }

// FromState reconstructs a Source from a state captured with State.
func FromState(s [4]uint64) *Source { return &Source{s: s} }

// SetState overwrites the generator's state in place, for restoring a
// checkpoint into a Source that other components already hold a pointer to.
func (r *Source) SetState(s [4]uint64) { r.s = s }

// New returns a Source seeded from the given seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitmix64(sm)
	}
	return &src
}

// splitmix64 advances the splitmix64 state and returns the new state and
// output. It is the recommended seeder for xoshiro generators.
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Split derives an independent child Source. The child's stream is a
// deterministic function of the parent's state at the time of the call, so
// fan-out (e.g. one Source per simulated peer or per experiment replica)
// remains reproducible.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

// DeriveSeed is the keyed split: it maps a (root, key) pair to the seed of
// an independent child stream, as a pure function of the pair. Unlike
// Split, no generator state is consumed, so the derivation is immune to
// draw order — the property the distributed experiment harness relies on
// to give work unit k the same stream no matter which worker runs it, or
// in what order. For a fixed root, distinct keys always yield distinct
// seeds (the key enters through a bijective mix).
func DeriveSeed(root, key uint64) uint64 {
	// Hash the root once, fold the key in through an odd-multiplier
	// (bijective) golden-ratio spread, and finalize with a second
	// splitmix64 round.
	_, a := splitmix64(root)
	_, out := splitmix64(a ^ (0x9e3779b97f4a7c15 * (key + 1)))
	return out
}

// Derive returns a Source seeded by the keyed split of (root, key). See
// DeriveSeed.
func Derive(root, key uint64) *Source {
	return New(DeriveSeed(root, key))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method (unbiased). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// Bool returns an unbiased random boolean.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed sample with rate lambda (mean
// 1/lambda). It panics if lambda <= 0. Used for Poisson-process
// inter-arrival times of new peers.
func (r *Source) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / lambda
		}
	}
}

// Poisson returns a Poisson-distributed count with the given mean. For
// small means it uses Knuth's product method; for large means a normal
// approximation with continuity correction, which is ample for simulation
// workload generation. It panics if mean < 0.
func (r *Source) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("rng: Poisson with negative mean")
	case mean == 0:
		return 0
	case mean < 30:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials. It panics unless 0 < p <= 1.
func (r *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	return int(math.Floor(math.Log(1-r.Float64()) / math.Log(1-p)))
}

// Norm returns a normally distributed sample with the given mean and
// standard deviation, via the Marsaglia polar method.
func (r *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// PowerLawIndex draws an index in [0, n) with probability proportional to
// (i+1)^(-alpha) — a bounded discrete power law. With alpha=0 the draw is
// uniform. It is used for scale-free respondent/introducer selection when a
// full preferential-attachment graph is not required. It panics if n <= 0
// or alpha < 0.
func (r *Source) PowerLawIndex(n int, alpha float64) int {
	if n <= 0 {
		panic("rng: PowerLawIndex with non-positive n")
	}
	if alpha < 0 {
		panic("rng: PowerLawIndex with negative alpha")
	}
	if alpha == 0 || n == 1 {
		return r.Intn(n)
	}
	// Inverse-CDF on the continuous envelope, then reject to correct for
	// discretisation. For the simulator's n (thousands) the envelope is
	// tight and rejection is rare.
	for {
		u := r.Float64()
		var x float64
		if alpha == 1 {
			x = math.Exp(u * math.Log(float64(n)+1))
		} else {
			max := math.Pow(float64(n)+1, 1-alpha)
			x = math.Pow(u*(max-1)+1, 1/(1-alpha))
		}
		i := int(x) - 1
		if i < 0 {
			i = 0
		}
		if i < n {
			return i
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher–Yates).
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element index from a weighted set where
// weights[i] >= 0. It panics if the total weight is not positive.
func (r *Source) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Pick with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Pick with non-positive total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
