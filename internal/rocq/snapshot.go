package rocq

import "sort"

import "repro/internal/id"

// Checkpoint support. A Store's behaviour is fully determined by the
// evidence in its present slots, its per-reporter credibilities and the
// total report counter; non-present placeholder slots exist only to give
// Refs stable addresses and are recreated on demand after a restore, so
// they are not captured. All map-backed state is exported as slices in
// ascending identifier order, which makes the encoding deterministic —
// the same store always serializes to the same bytes.

// SubjectRecord is the serializable evidence slot for one subject.
type SubjectRecord struct {
	Subject id.ID   `json:"subject"`
	S       float64 `json:"s"`
	W       float64 `json:"w"`
	Reports int64   `json:"reports"`
}

// CredRecord is the serializable credibility the store holds for one
// reporter.
type CredRecord struct {
	Reporter id.ID   `json:"reporter"`
	Cred     float64 `json:"cred"`
}

// StoreState is the serializable state of a score-manager store.
type StoreState struct {
	Subjects []SubjectRecord `json:"subjects,omitempty"`
	Cred     []CredRecord    `json:"cred,omitempty"`
	Reports  int64           `json:"reports,omitempty"`
}

// ExportState captures the store's evidence, credibilities and report
// counter in deterministic order.
func (s *Store) ExportState() StoreState {
	out := StoreState{Reports: s.reports}
	for i := range s.meta {
		if !s.meta[i].present {
			continue
		}
		out.Subjects = append(out.Subjects, SubjectRecord{Subject: s.meta[i].subject, S: s.s[i], W: s.w[i], Reports: s.meta[i].reports})
	}
	sort.Slice(out.Subjects, func(i, j int) bool { return out.Subjects[i].Subject.Less(out.Subjects[j].Subject) })
	for reporter, c := range s.cred {
		out.Cred = append(out.Cred, CredRecord{Reporter: reporter, Cred: c})
	}
	sort.Slice(out.Cred, func(i, j int) bool { return out.Cred[i].Reporter.Less(out.Cred[j].Reporter) })
	return out
}

// RestoreState overwrites the store's evidence, credibilities and report
// counter with checkpointed values. Existing slots — including non-present
// placeholders — are discarded; callers re-resolve any Refs they held.
func (s *Store) RestoreState(st StoreState) {
	s.index = make(map[id.ID]int32, len(st.Subjects))
	s.s = make([]float64, 0, len(st.Subjects))
	s.w = make([]float64, 0, len(st.Subjects))
	s.meta = make([]subjectMeta, 0, len(st.Subjects))
	s.free = nil
	s.cred = make(map[id.ID]float64, len(st.Cred))
	s.known = len(st.Subjects)
	s.reports = st.Reports
	for _, rec := range st.Subjects {
		s.index[rec.Subject] = int32(len(s.meta))
		s.s = append(s.s, rec.S)
		s.w = append(s.w, rec.W)
		s.meta = append(s.meta, subjectMeta{subject: rec.Subject, reports: rec.Reports, present: true})
	}
	for _, rec := range st.Cred {
		s.cred[rec.Reporter] = rec.Cred
	}
}

// PartnerRecord is the serializable first-hand experience a peer holds
// about one partner.
type PartnerRecord struct {
	Partner id.ID   `json:"partner"`
	Sum     float64 `json:"sum"`
	Count   int64   `json:"count"`
}

// ExportState captures the opinion book's experience in ascending partner
// order.
func (b *OpinionBook) ExportState() []PartnerRecord {
	out := make([]PartnerRecord, 0, len(b.partners))
	for partner, st := range b.partners {
		out = append(out, PartnerRecord{Partner: partner, Sum: st.sum, Count: st.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Partner.Less(out[j].Partner) })
	return out
}

// RestoreState overwrites the opinion book's experience with checkpointed
// values.
func (b *OpinionBook) RestoreState(recs []PartnerRecord) {
	b.partners = make(map[id.ID]*opinionState, len(recs))
	for _, rec := range recs {
		b.partners[rec.Partner] = &opinionState{sum: rec.Sum, count: rec.Count}
	}
}
