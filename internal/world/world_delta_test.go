package world

import (
	"testing"

	"repro/internal/config"
)

func deltaTestConfig() config.Config {
	cfg := config.Default()
	cfg.NumInit = 40
	cfg.NumTrans = 10_000
	cfg.Lambda = 0
	cfg.WaitPeriod = 100
	cfg.Seed = 11
	return cfg
}

func TestApplyDeltaRejectsInvalidAndLeavesWorldUntouched(t *testing.T) {
	w, err := New(deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := -1.0
	if err := w.ApplyDelta(Delta{FracUncoop: &bad}); err == nil {
		t.Fatal("negative FracUncoop accepted")
	}
	if got := w.Config().FracUncoop; got != deltaTestConfig().FracUncoop {
		t.Fatalf("config mutated by rejected delta: FracUncoop=%v", got)
	}
	// Inconsistent pair: IntroAmt raised above MinIntroRep.
	amt := 0.9
	if err := w.ApplyDelta(Delta{IntroAmt: &amt}); err == nil {
		t.Fatal("IntroAmt above MinIntroRep accepted")
	}
}

func TestApplyDeltaLambdaStartsAndStopsArrivals(t *testing.T) {
	w, err := New(deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(2_000); err != nil {
		t.Fatal(err)
	}
	if got := w.Metrics().ArrivalsCoop + w.Metrics().ArrivalsUncoop; got != 0 {
		t.Fatalf("arrivals with λ=0: %d", got)
	}

	// λ spike: arrivals must start flowing.
	hot := 0.1
	if err := w.ApplyDelta(Delta{Lambda: &hot}); err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(2_000); err != nil {
		t.Fatal(err)
	}
	during := w.Metrics().ArrivalsCoop + w.Metrics().ArrivalsUncoop
	if during == 0 {
		t.Fatal("no arrivals after λ spike")
	}

	// Back to 0: the in-flight chain must be cancelled, not fire once more
	// per stale schedule.
	off := 0.0
	if err := w.ApplyDelta(Delta{Lambda: &off}); err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(4_000); err != nil {
		t.Fatal(err)
	}
	after := w.Metrics().ArrivalsCoop + w.Metrics().ArrivalsUncoop
	if after != during {
		t.Fatalf("arrivals continued after λ=0: %d -> %d", during, after)
	}
}

func TestApplyDeltaLambdaSpikeTakesEffectImmediately(t *testing.T) {
	// Raising λ from a positive trickle must not wait out a residual gap
	// drawn under the old rate: the Poisson clock restarts from now.
	cfg := deltaTestConfig()
	cfg.Lambda = 0.001 // mean gap 1000 ticks
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(2_000); err != nil {
		t.Fatal(err)
	}
	before := w.Metrics().ArrivalsCoop + w.Metrics().ArrivalsUncoop
	hot := 0.5
	if err := w.ApplyDelta(Delta{Lambda: &hot}); err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(200); err != nil { // ≈100 expected arrivals at the new rate
		t.Fatal(err)
	}
	got := w.Metrics().ArrivalsCoop + w.Metrics().ArrivalsUncoop - before
	if got < 50 {
		t.Fatalf("λ spike delayed by stale arrival clock: only %d arrivals in 200 ticks", got)
	}
}

func TestApplyDeltaReachesLendingProtocol(t *testing.T) {
	w, err := New(deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	amt, reward, floor := 0.2, 0.04, 0.4
	if err := w.ApplyDelta(Delta{IntroAmt: &amt, Reward: &reward, MinIntroRep: &floor}); err != nil {
		t.Fatal(err)
	}
	p := w.Protocol().Params()
	if p.IntroAmt != amt || p.Reward != reward || p.MinIntroRep != floor {
		t.Fatalf("protocol params not updated: %+v", p)
	}
}

func TestScheduleDeltaFiresAtTick(t *testing.T) {
	w, err := New(deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	frac := 0.9
	w.ScheduleDelta(1_500, "churn-wave", Delta{FracUncoop: &frac})
	if err := w.RunFor(1_000); err != nil {
		t.Fatal(err)
	}
	if got := w.Config().FracUncoop; got != deltaTestConfig().FracUncoop {
		t.Fatalf("delta applied early: FracUncoop=%v", got)
	}
	if err := w.RunFor(1_000); err != nil {
		t.Fatal(err)
	}
	if got := w.Config().FracUncoop; got != frac {
		t.Fatalf("delta not applied: FracUncoop=%v", got)
	}
}

func TestArrivalClampKeepsPoissonRate(t *testing.T) {
	// The tick grid caps arrivals at one per tick. Before the fix, a rate
	// above the cap left the continuous clock permanently behind the
	// engine: every draw clamped to now+1 and the process degraded to
	// exactly one arrival per tick regardless of λ, forever. Re-anchoring
	// the clock on clamp keeps proper Exp-spaced gaps. λ=1.2 sits just
	// above the cap, where the distortion is widest: correct clamping
	// leaves Exp-length gaps (observed ≈3430 arrivals in 4000 ticks),
	// while the lagging clock of the old bug locks to ≈4000.
	cfg := deltaTestConfig()
	cfg.Lambda = 1.2
	cfg.NumTrans = 4_000
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(4_000); err != nil {
		t.Fatal(err)
	}
	got := w.Metrics().ArrivalsCoop + w.Metrics().ArrivalsUncoop
	if got >= 3_900 {
		t.Fatalf("arrival process locked to one per tick (%d arrivals in 4000 ticks): clamp did not re-anchor the Poisson clock", got)
	}
	if got < 3_000 {
		t.Fatalf("arrival process lost its rate after clamping: %d arrivals in 4000 ticks at λ=1.2", got)
	}
}

func TestDeltaDeterminismUnchangedWithoutDeltas(t *testing.T) {
	// The generation-aware arrival chain must not perturb runs that never
	// apply a delta: two identical configs give identical metrics.
	cfg := deltaTestConfig()
	cfg.Lambda = 0.05
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	if am, bm := a.Metrics(), b.Metrics(); am.ArrivalsCoop != bm.ArrivalsCoop ||
		am.Served != bm.Served || am.CorrectDecisions != bm.CorrectDecisions {
		t.Fatalf("identical runs diverged: %+v vs %+v", am, bm)
	}
}

func TestScheduledDeltaFailureFailsWorldInsteadOfPanicking(t *testing.T) {
	w, err := New(deltaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := -1.0
	w.ScheduleDelta(500, "bad-phase", Delta{FracUncoop: &bad})
	err = w.RunFor(1_000)
	if err == nil {
		t.Fatal("invalid scheduled delta did not fail the run")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failed scheduled delta")
	}
	if w.Err().Error() != err.Error() {
		t.Fatalf("RunFor error %q != Err() %q", err, w.Err())
	}
	// A failed world must refuse to keep simulating.
	if err2 := w.RunFor(100); err2 == nil {
		t.Fatal("failed world resumed simulating")
	}
}
