// Command docs-check keeps the documentation honest: every fenced code
// block in the given markdown files that invokes replend-sim or
// replend-experiments is cross-checked against the real binaries — CLI
// flags must exist in the binary's flag set, scenario names passed to
// -scenario / `scenarios describe|dump` must be registered built-ins,
// and experiment names passed to replend-experiments must be runnable.
// CI runs it on every push so docs cannot silently rot when a flag is
// renamed or a built-in added.
//
// Usage:
//
//	docs-check -sim <replend-sim binary> -experiments <replend-experiments binary> file.md ...
//
// Placeholders are skipped: tokens containing <…>, $…, `…`, an ellipsis,
// or a .json path are treated as user-supplied, not as names to verify.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "docs-check:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("docs-check", flag.ContinueOnError)
	simBin := fs.String("sim", "", "path to the built replend-sim binary")
	expBin := fs.String("experiments", "", "path to the built replend-experiments binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if *simBin == "" || *expBin == "" || len(files) == 0 {
		return fmt.Errorf("usage: docs-check -sim <bin> -experiments <bin> file.md ...")
	}

	simFlags, err := flagsOf(*simBin)
	if err != nil {
		return err
	}
	expFlags, err := flagsOf(*expBin)
	if err != nil {
		return err
	}
	scenarios, err := firstColumn(*simBin, "scenarios", "list")
	if err != nil {
		return err
	}
	experiments, err := firstColumn(*expBin, "-list")
	if err != nil {
		return err
	}

	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		for _, inv := range invocations(string(data)) {
			for _, p := range checkInvocation(inv, simFlags, expFlags, scenarios, experiments) {
				problems = append(problems, fmt.Sprintf("%s:%d: %s (in: %s)", file, inv.line, p, inv.text))
			}
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		return fmt.Errorf("%d stale documentation reference(s)", len(problems))
	}
	return nil
}

// flagsOf parses `<bin> -h` usage output into the set of defined flags
// and whether each takes a value (Go's flag package prints "  -name type"
// for valued flags and bare "  -name" for booleans).
func flagsOf(bin string) (map[string]bool, error) {
	out, _ := exec.Command(bin, "-h").CombinedOutput() // -h exits non-zero; the usage text is what matters
	flags := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		rest, ok := strings.CutPrefix(line, "  -")
		if !ok {
			continue
		}
		name, typ, valued := strings.Cut(rest, " ")
		flags[name] = valued && typ != ""
	}
	if len(flags) == 0 {
		return nil, fmt.Errorf("%s -h printed no flags; is it the right binary?", bin)
	}
	return flags, nil
}

// firstColumn runs the binary with args and collects the first
// whitespace-separated field of every output line — the name column of
// `scenarios list` and of `-list`.
func firstColumn(bin string, args ...string) (map[string]bool, error) {
	out, err := exec.Command(bin, args...).Output()
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", bin, strings.Join(args, " "), err)
	}
	names := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		if f := strings.Fields(line); len(f) > 0 {
			names[f[0]] = true
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s %s listed nothing", bin, strings.Join(args, " "))
	}
	return names, nil
}

// invocation is one documented command line naming a checked binary.
type invocation struct {
	line int
	bin  string // "replend-sim" or "replend-experiments"
	text string
	toks []string
}

// invocations extracts command lines from fenced code blocks. Only lines
// inside ``` fences are considered (prose mentioning a flag in passing is
// not a command), and everything after a shell comment is dropped.
func invocations(doc string) []invocation {
	var out []invocation
	inFence := false
	for i, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			continue
		}
		if j := strings.Index(trimmed, "#"); j >= 0 {
			trimmed = trimmed[:j]
		}
		for _, bin := range []string{"replend-sim", "replend-experiments"} {
			j := strings.Index(trimmed, bin)
			if j < 0 {
				continue
			}
			rest := trimmed[j+len(bin):]
			if !strings.HasPrefix(rest, " ") && rest != "" {
				continue // replend-sim.something — not an invocation
			}
			out = append(out, invocation{
				line: i + 1,
				bin:  bin,
				text: strings.TrimSpace(trimmed),
				toks: strings.Fields(rest),
			})
			break
		}
	}
	return out
}

// placeholder reports a token that stands for user input rather than a
// literal name.
func placeholder(tok string) bool {
	return tok == "\\" || // shell line continuation
		strings.ContainsAny(tok, "<>$`…[]|&;") || strings.Contains(tok, "...") ||
		strings.Contains(tok, ".json") || strings.Contains(tok, "/")
}

// checkInvocation verifies one documented command line.
func checkInvocation(inv invocation, simFlags, expFlags, scenarios, experiments map[string]bool) []string {
	flags := simFlags
	if inv.bin == "replend-experiments" {
		flags = expFlags
	}
	var problems []string
	toks := inv.toks
	// The scenarios subcommand: `scenarios describe <name>` etc.
	if inv.bin == "replend-sim" && len(toks) > 0 && toks[0] == "scenarios" {
		if len(toks) >= 3 && (toks[1] == "describe" || toks[1] == "dump") && !placeholder(toks[2]) && !scenarios[toks[2]] {
			problems = append(problems, fmt.Sprintf("unknown scenario %q", toks[2]))
		}
		return problems
	}
	for i := 0; i < len(toks); i++ {
		tok := toks[i]
		switch {
		case strings.HasPrefix(tok, "-"):
			name, _, hasValue := strings.Cut(tok[1:], "=")
			valued, known := flags[name]
			if !known {
				problems = append(problems, fmt.Sprintf("unknown %s flag -%s", inv.bin, name))
				continue
			}
			if name == "scenario" {
				arg := ""
				if hasValue {
					_, arg, _ = strings.Cut(tok[1:], "=")
				} else if i+1 < len(toks) {
					arg = toks[i+1]
				}
				if arg != "" && !placeholder(arg) && !scenarios[arg] {
					problems = append(problems, fmt.Sprintf("unknown scenario %q", arg))
				}
			}
			if valued && !hasValue {
				i++ // skip the flag's value token
			}
		case inv.bin == "replend-experiments" && !placeholder(tok):
			// Bare tokens on a replend-experiments line are experiment
			// names.
			if !experiments[tok] {
				problems = append(problems, fmt.Sprintf("unknown experiment %q", tok))
			}
		}
	}
	return problems
}
