// Package arena provides the dense per-peer memory layout under the
// simulator: a stable peer-ordinal allocator with a free-list, and a
// chunked, pointer-stable slab allocator. Together they flatten the
// pointer webs that per-peer maps grow into at large populations —
// million-peer worlds index flat slices by ordinal instead of chasing
// heap-scattered map entries.
//
// Determinism contract: ordinal assignment is driven entirely by the
// simulation's (deterministic) event order, and the free-list is LIFO,
// so the same run always produces the same id→ordinal table. Nothing
// downstream may iterate in ordinal order when producing output bytes —
// output iteration stays over sorted ids or recorded insertion orders,
// exactly as before the arena layout (see docs/determinism.md).
package arena

import (
	"fmt"

	"repro/internal/id"
)

// Ordinal is a dense index into per-peer arenas. Ordinals are stable
// for the lifetime of a peer's record and recycled (LIFO) after
// release, so arena slices stay packed under churn instead of growing
// without bound.
type Ordinal int32

// None is the ordinal returned for unknown ids.
const None Ordinal = -1

// Ordinals allocates dense ordinals for peer ids. The zero value is not
// usable; call NewOrdinals.
type Ordinals struct {
	index map[id.ID]Ordinal
	ids   []id.ID   // ordinal → id; id.ID zero value marks a free slot
	live  []bool    // ordinal → currently assigned
	free  []Ordinal // LIFO free-list of released ordinals
}

// NewOrdinals returns an empty allocator.
func NewOrdinals() *Ordinals {
	return &Ordinals{index: make(map[id.ID]Ordinal)}
}

// Get returns the ordinal assigned to pid, or (None, false).
func (o *Ordinals) Get(pid id.ID) (Ordinal, bool) {
	ord, ok := o.index[pid]
	if !ok {
		return None, false
	}
	return ord, true
}

// Assign allocates an ordinal for pid, reusing the most recently
// released slot if one exists. Assigning an id that already holds an
// ordinal is a programming error.
func (o *Ordinals) Assign(pid id.ID) Ordinal {
	if _, ok := o.index[pid]; ok {
		//replend:allow nopanic double-assignment is a programming error by design; admission and rejoin paths release before reassigning
		panic(fmt.Sprintf("arena: ordinal already assigned for %v", pid))
	}
	var ord Ordinal
	if n := len(o.free); n > 0 {
		ord = o.free[n-1]
		o.free = o.free[:n-1]
	} else {
		ord = Ordinal(len(o.ids))
		o.ids = append(o.ids, id.ID{})
		o.live = append(o.live, false)
	}
	o.index[pid] = ord
	o.ids[ord] = pid
	o.live[ord] = true
	return ord
}

// Release returns pid's ordinal to the free-list. Releasing an unknown
// id is a programming error.
func (o *Ordinals) Release(pid id.ID) {
	ord, ok := o.index[pid]
	if !ok {
		//replend:allow nopanic releasing an unassigned id is a programming error by design; callers hold the record they release
		panic(fmt.Sprintf("arena: releasing unassigned ordinal for %v", pid))
	}
	delete(o.index, pid)
	o.ids[ord] = id.ID{}
	o.live[ord] = false
	o.free = append(o.free, ord)
}

// ID returns the id currently holding ord, or (zero, false) if the slot
// is free or out of range.
func (o *Ordinals) ID(ord Ordinal) (id.ID, bool) {
	if ord < 0 || int(ord) >= len(o.ids) || !o.live[ord] {
		return id.ID{}, false
	}
	return o.ids[ord], true
}

// Len returns the number of currently assigned ordinals.
func (o *Ordinals) Len() int { return len(o.index) }

// Cap returns the total number of slots ever allocated (live + free).
// Arena slices indexed by ordinal must hold at least Cap entries.
func (o *Ordinals) Cap() int { return len(o.ids) }

// FreeList returns a copy of the free-list, oldest release first (the
// last entry is the next Assign's slot). Snapshots carry it so a
// restored world recycles slots in the same order the original would.
func (o *Ordinals) FreeList() []Ordinal {
	return append([]Ordinal(nil), o.free...)
}

// Restore resets the allocator to a checkpointed state: the given
// assignments (id → ordinal) and free-list, verbatim. Every slot in
// [0, cap) must be accounted for exactly once across the two.
func (o *Ordinals) Restore(assigned map[id.ID]Ordinal, free []Ordinal) error {
	total := len(assigned) + len(free)
	seen := make([]bool, total)
	claim := func(ord Ordinal) error {
		if ord < 0 || int(ord) >= total {
			return fmt.Errorf("arena: restore: ordinal %d out of range [0,%d)", ord, total)
		}
		if seen[ord] {
			return fmt.Errorf("arena: restore: ordinal %d claimed twice", ord)
		}
		seen[ord] = true
		return nil
	}
	index := make(map[id.ID]Ordinal, len(assigned))
	ids := make([]id.ID, total)
	live := make([]bool, total)
	for pid, ord := range assigned {
		if err := claim(ord); err != nil {
			return err
		}
		index[pid] = ord
		ids[ord] = pid
		live[ord] = true
	}
	for _, ord := range free {
		if err := claim(ord); err != nil {
			return err
		}
	}
	o.index = index
	o.ids = ids
	o.live = live
	o.free = append([]Ordinal(nil), free...)
	return nil
}

// slabChunk is the fixed allocation unit of a Slab. Chunks never move
// once allocated, so pointers handed out by Alloc stay valid for the
// life of the slab.
const slabChunk = 256

// Slab is a chunked, pointer-stable allocator for per-peer records.
// Alloc returns a zeroed *T from the current chunk (or the free-list);
// Free zeroes the record and recycles it LIFO. Records are never
// individually garbage-collected — the point is to keep millions of
// small structs in a handful of large allocations instead of a
// pointer web the collector must trace object by object.
type Slab[T any] struct {
	chunks [][]T
	next   int // index into the last chunk
	free   []*T
	live   int
}

// Alloc returns a zeroed record.
func (s *Slab[T]) Alloc() *T {
	s.live++
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free = s.free[:n-1]
		return p
	}
	if len(s.chunks) == 0 || s.next == slabChunk {
		s.chunks = append(s.chunks, make([]T, slabChunk))
		s.next = 0
	}
	p := &s.chunks[len(s.chunks)-1][s.next]
	s.next++
	return p
}

// Free zeroes the record and returns it to the free-list. The caller
// must not retain the pointer afterwards.
func (s *Slab[T]) Free(p *T) {
	var zero T
	*p = zero
	s.free = append(s.free, p)
	s.live--
}

// Live returns the number of records currently allocated.
func (s *Slab[T]) Live() int { return s.live }
