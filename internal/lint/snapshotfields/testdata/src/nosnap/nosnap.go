// Package nosnap has no snapshot.go at all: the analyzer binds
// nothing here, whatever the methods are called.
package nosnap

type State struct {
	hidden int
}

// Snapshot outside snapshot.go does not make State a carrier.
func (s *State) Snapshot() int { return 0 }
