package churn

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/rocq"
)

func TestParamsValidate(t *testing.T) {
	good := []Params{
		{},
		{Mu: 0.01, CrashFrac: 0.5, RejoinProb: 0.5, DowntimeMean: 100},
		{SessionMean: 500, SessionDist: SessionPareto},
		{Migrate: true, MinPopulation: 10},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", p, err)
		}
	}
	bad := []Params{
		{Mu: -1},
		{CrashFrac: 1.5},
		{RejoinProb: -0.1},
		{DowntimeMean: -5},
		{RejoinProb: 0.5}, // rejoin without a downtime
		{SessionMean: -1},
		{SessionMean: 100, SessionDist: "weibull"},
		{MinPopulation: -2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
}

func TestParamsActive(t *testing.T) {
	if (Params{}).Active() {
		t.Fatal("zero params must be inactive (the paper's model)")
	}
	for _, p := range []Params{{Mu: 0.1}, {SessionMean: 100}, {Migrate: true}} {
		if !p.Active() {
			t.Errorf("%+v must be active", p)
		}
	}
}

func TestSessionLengthsMatchMeans(t *testing.T) {
	for _, dist := range []string{SessionExponential, SessionUniform, SessionPareto} {
		p := NewProcess(rng.New(1), Params{SessionMean: 1000, SessionDist: dist})
		sum := 0.0
		n := 20_000
		for i := 0; i < n; i++ {
			s := p.SessionLength()
			if s < 1 {
				t.Fatalf("%s: session %v below the one-tick floor", dist, s)
			}
			sum += s
		}
		mean := sum / float64(n)
		if math.Abs(mean-1000) > 100 {
			t.Errorf("%s: empirical mean %v, want ≈1000", dist, mean)
		}
	}
}

func TestRejoinsRespectProbabilityAndFloor(t *testing.T) {
	p := NewProcess(rng.New(2), Params{RejoinProb: 0.5, DowntimeMean: 50})
	yes := 0
	n := 10_000
	for i := 0; i < n; i++ {
		after, ok := p.Rejoins()
		if ok {
			yes++
			if after < 1 {
				t.Fatalf("downtime %v below the one-tick floor", after)
			}
		}
	}
	if frac := float64(yes) / float64(n); math.Abs(frac-0.5) > 0.03 {
		t.Errorf("rejoin fraction %v, want ≈0.5", frac)
	}
}

func snap(s, w float64, reports int64) rocq.Snapshot {
	return rocq.Snapshot{S: s, W: w, Reports: reports, Prior: 0.5}
}

func TestReconcileEmpty(t *testing.T) {
	if _, ok := Reconcile(nil); ok {
		t.Fatal("no survivors must reconcile to nothing (a wipeout)")
	}
}

func TestReconcileSingleAndUnanimous(t *testing.T) {
	a := snap(3, 4, 7)
	if got, ok := Reconcile([]rocq.Snapshot{a}); !ok || got != a {
		t.Fatalf("single survivor: got %+v ok=%v", got, ok)
	}
	if got, ok := Reconcile([]rocq.Snapshot{a, a, a}); !ok || got != a {
		t.Fatalf("unanimous survivors: got %+v ok=%v", got, ok)
	}
}

func TestReconcileMajorityWins(t *testing.T) {
	maj := snap(3, 4, 7)
	odd := snap(9, 9.5, 2)
	got, ok := Reconcile([]rocq.Snapshot{odd, maj, maj})
	if !ok || got != maj {
		t.Fatalf("majority did not win: got %+v", got)
	}
}

// TestReconcileNoMajorityTakesMedian pins the disagreement rule: with no
// strict majority the median-by-value snapshot is taken, deterministically
// regardless of survivor order.
func TestReconcileNoMajorityTakesMedian(t *testing.T) {
	lo, mid, hi := snap(1, 9, 1), snap(5, 9, 1), snap(9, 9, 1)
	want := mid
	perms := [][]rocq.Snapshot{
		{lo, mid, hi}, {hi, mid, lo}, {mid, hi, lo}, {lo, hi, mid},
	}
	for _, ps := range perms {
		got, ok := Reconcile(ps)
		if !ok || got != want {
			t.Fatalf("order %v: got %+v, want the median %+v", ps, got, want)
		}
	}
}

func TestSnapshotValue(t *testing.T) {
	s := snap(3, 4, 7) // 3 / (4 + 0.5)
	if got, want := s.Value(), 3.0/4.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Value() = %v, want %v", got, want)
	}
}
