package metrics

import "repro/internal/telemetry"

// SeriesSink collects telemetry samples into named Series, making the
// classic in-memory time series the second built-in sink on a telemetry
// bus. Series are created on first sample and kept in first-seen order,
// which is deterministic because the bus delivers records in publish
// order.
type SeriesSink struct {
	byName map[string]*Series
	order  []string
}

// NewSeriesSink returns an empty collector.
func NewSeriesSink() *SeriesSink {
	return &SeriesSink{byName: map[string]*Series{}}
}

// Event implements telemetry.Sink; a series collector ignores events.
func (s *SeriesSink) Event(telemetry.Event) {}

// Sample implements telemetry.Sink.
func (s *SeriesSink) Sample(sm telemetry.Sample) {
	ser, ok := s.byName[sm.Series]
	if !ok {
		ser = &Series{Name: sm.Series}
		s.byName[sm.Series] = ser
		s.order = append(s.order, sm.Series)
	}
	ser.Append(sm.At, sm.Value)
}

// Flush implements telemetry.Sink; in-memory series need no flushing.
func (s *SeriesSink) Flush() error { return nil }

// Series returns the collected series of one name (nil if none).
func (s *SeriesSink) Series(name string) *Series { return s.byName[name] }

// All returns every collected series in first-seen order.
func (s *SeriesSink) All() []*Series {
	out := make([]*Series, len(s.order))
	for i, name := range s.order {
		out[i] = s.byName[name]
	}
	return out
}
