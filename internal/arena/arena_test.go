package arena

import (
	"testing"

	"repro/internal/id"
)

func pid(n uint64) id.ID { return id.FromUint64(n) }

func TestOrdinalsAssignDenseAndRecycleLIFO(t *testing.T) {
	o := NewOrdinals()
	a, b, c := pid(1), pid(2), pid(3)
	if got := o.Assign(a); got != 0 {
		t.Fatalf("first ordinal = %d, want 0", got)
	}
	if got := o.Assign(b); got != 1 {
		t.Fatalf("second ordinal = %d, want 1", got)
	}
	if got := o.Assign(c); got != 2 {
		t.Fatalf("third ordinal = %d, want 2", got)
	}
	o.Release(a)
	o.Release(c)
	// LIFO: the most recently released slot (c's, ordinal 2) is reused
	// first.
	if got := o.Assign(pid(4)); got != 2 {
		t.Fatalf("recycled ordinal = %d, want 2 (LIFO)", got)
	}
	if got := o.Assign(pid(5)); got != 0 {
		t.Fatalf("second recycled ordinal = %d, want 0", got)
	}
	if o.Len() != 3 || o.Cap() != 3 {
		t.Fatalf("Len=%d Cap=%d, want 3/3", o.Len(), o.Cap())
	}
}

func TestOrdinalsLookupAndID(t *testing.T) {
	o := NewOrdinals()
	a := pid(7)
	ord := o.Assign(a)
	if got, ok := o.Get(a); !ok || got != ord {
		t.Fatalf("Get = (%d,%v), want (%d,true)", got, ok, ord)
	}
	if back, ok := o.ID(ord); !ok || back != a {
		t.Fatalf("ID(%d) = (%v,%v), want (%v,true)", ord, back, ok, a)
	}
	o.Release(a)
	if _, ok := o.Get(a); ok {
		t.Fatal("Get after Release reported assigned")
	}
	if _, ok := o.ID(ord); ok {
		t.Fatal("ID of freed slot reported live")
	}
	if _, ok := o.ID(None); ok {
		t.Fatal("ID(None) reported live")
	}
}

func TestOrdinalsDeterministicReplay(t *testing.T) {
	// The same assign/release script must yield the same table — the
	// property the snapshot round-trip leans on.
	script := func() *Ordinals {
		o := NewOrdinals()
		for i := uint64(1); i <= 20; i++ {
			o.Assign(pid(i))
		}
		for i := uint64(2); i <= 20; i += 3 {
			o.Release(pid(i))
		}
		for i := uint64(100); i < 110; i++ {
			o.Assign(pid(i))
		}
		return o
	}
	a, b := script(), script()
	if a.Cap() != b.Cap() || a.Len() != b.Len() {
		t.Fatalf("replay diverged: cap %d/%d len %d/%d", a.Cap(), b.Cap(), a.Len(), b.Len())
	}
	for ord := Ordinal(0); int(ord) < a.Cap(); ord++ {
		ia, oka := a.ID(ord)
		ib, okb := b.ID(ord)
		if oka != okb || ia != ib {
			t.Fatalf("ordinal %d diverged: (%v,%v) vs (%v,%v)", ord, ia, oka, ib, okb)
		}
	}
}

func TestOrdinalsRestoreRoundTrip(t *testing.T) {
	o := NewOrdinals()
	for i := uint64(1); i <= 8; i++ {
		o.Assign(pid(i))
	}
	o.Release(pid(3))
	o.Release(pid(6))

	assigned := make(map[id.ID]Ordinal)
	for ord := Ordinal(0); int(ord) < o.Cap(); ord++ {
		if p, ok := o.ID(ord); ok {
			assigned[p] = ord
		}
	}
	free := o.FreeList()

	r := NewOrdinals()
	if err := r.Restore(assigned, free); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The restored allocator must recycle in the same order as the
	// original.
	want := o.Assign(pid(100))
	got := r.Assign(pid(100))
	if want != got {
		t.Fatalf("post-restore Assign = %d, want %d", got, want)
	}
	if o.Assign(pid(101)) != r.Assign(pid(101)) {
		t.Fatal("second post-restore Assign diverged")
	}
}

func TestOrdinalsRestoreRejectsBadTables(t *testing.T) {
	r := NewOrdinals()
	if err := r.Restore(map[id.ID]Ordinal{pid(1): 0, pid(2): 0}, nil); err == nil {
		t.Fatal("duplicate ordinal accepted")
	}
	if err := r.Restore(map[id.ID]Ordinal{pid(1): 5}, nil); err == nil {
		t.Fatal("out-of-range ordinal accepted")
	}
	if err := r.Restore(map[id.ID]Ordinal{pid(1): 0}, []Ordinal{0}); err == nil {
		t.Fatal("ordinal claimed by both tables accepted")
	}
}

func TestSlabPointerStabilityAcrossGrowth(t *testing.T) {
	type rec struct{ v int }
	var s Slab[rec]
	var ptrs []*rec
	for i := 0; i < 4*slabChunk+17; i++ {
		p := s.Alloc()
		p.v = i
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if p.v != i {
			t.Fatalf("record %d corrupted after growth: %d", i, p.v)
		}
	}
	if s.Live() != len(ptrs) {
		t.Fatalf("Live = %d, want %d", s.Live(), len(ptrs))
	}
}

func TestSlabFreeZeroesAndRecycles(t *testing.T) {
	type rec struct {
		v    int
		next *rec
	}
	var s Slab[rec]
	a := s.Alloc()
	a.v, a.next = 42, a
	s.Free(a)
	b := s.Alloc()
	if b != a {
		t.Fatal("free-list did not recycle the released record")
	}
	if b.v != 0 || b.next != nil {
		t.Fatalf("recycled record not zeroed: %+v", b)
	}
	if s.Live() != 1 {
		t.Fatalf("Live = %d, want 1", s.Live())
	}
}
