package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunTinySimulation(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "series.csv")
	err := run([]string{
		"-init", "40", "-ticks", "3000", "-lambda", "0.05",
		"-wait", "100", "-seed", "3", "-csv", csv,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,coop,uncoop,coop-reputation\n") {
		t.Fatalf("csv header wrong: %q", string(data)[:50])
	}
	if strings.Count(string(data), "\n") < 2 {
		t.Fatal("csv has no data rows")
	}
}

func TestRunNoIntroductionsPolicyPath(t *testing.T) {
	err := run([]string{
		"-init", "40", "-ticks", "2000", "-lambda", "0.05",
		"-no-introductions", "-policy", "complaints-based",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-topology", "mesh"}); err == nil {
		t.Fatal("bad topology accepted")
	}
	if err := run([]string{"-init", "40", "-ticks", "1000", "-no-introductions", "-policy", "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-intro-amt", "0.9"}); err == nil {
		t.Fatal("intro-amt above the floor accepted")
	}
}

func TestRunConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfg := `{"numInit": 30, "numTrans": 2000, "lambda": 0.05, "waitPeriod": 100, "seed": 9}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Fatal("missing config accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"numSM": 0}`), 0o644)
	if err := run([]string{"-config", bad}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestScenariosSubcommand(t *testing.T) {
	capture := func(args ...string) string {
		var buf bytes.Buffer
		if err := scenariosCmd(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	list := capture("list")
	for _, name := range []string{"quickstart", "churn", "collusion", "filesharing", "api"} {
		if !strings.Contains(list, name) {
			t.Errorf("list output missing %q:\n%s", name, list)
		}
	}

	desc := capture("describe", "collusion")
	if !strings.Contains(desc, "phases:") || !strings.Contains(desc, "mole") {
		t.Errorf("describe output: %s", desc)
	}

	dump := capture("dump", "quickstart")
	if !strings.Contains(dump, `"name": "quickstart"`) {
		t.Errorf("dump output: %s", dump)
	}

	for _, bad := range [][]string{{}, {"bogus"}, {"describe"}, {"describe", "nope"}, {"dump", "nope"}} {
		if err := scenariosCmd(bad, os.Stdout); err == nil {
			t.Errorf("scenariosCmd(%v) accepted", bad)
		}
	}
}

func TestRunScenarioFromFileAndBuiltin(t *testing.T) {
	// A dumped built-in must load and run from a file, writing the CSV.
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	var dump bytes.Buffer
	if err := scenariosCmd([]string{"dump", "quickstart"}, &dump); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec, dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "series.csv")
	if err := run([]string{"-scenario", spec, "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,coop,uncoop,coop-reputation\n") {
		t.Fatalf("csv header wrong: %q", string(data)[:50])
	}

	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", spec, "-config", spec}); err == nil {
		t.Fatal("-scenario with -config accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name": "x", "base": {"numSM": 0}}`), 0o644)
	if err := run([]string{"-scenario", bad}); err == nil {
		t.Fatal("invalid scenario file accepted")
	}
}

func TestRunScenarioReplicasFlag(t *testing.T) {
	// Multi-replica aggregation over a small file-defined scenario.
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	body := `{"name": "tiny", "base": {"numInit": 30, "numTrans": 2000, "lambda": 0.05, "waitPeriod": 100, "seed": 8}}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", spec, "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"complaints-based", "positive-only", "mid-spectrum", "fixed-credit"} {
		if _, err := policyByName(name); err != nil {
			t.Errorf("policy %q: %v", name, err)
		}
	}
	if _, err := policyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// buildSim compiles the real binary once per test run; the process-fleet
// tests exercise actual worker subprocesses, not in-process stand-ins.
func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "replend-sim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building replend-sim: %v\n%s", err, out)
	}
	return bin
}

// TestProcessFleetByteIdenticalCLI is the end-to-end golden: the same
// scenario replica sweep through 3 real worker processes must print the
// byte-identical stdout of the in-process run, with stdout free of any
// progress chatter.
func TestProcessFleetByteIdenticalCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildSim(t)
	runCLI := func(args ...string) (string, string) {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	inproc, _ := runCLI("-scenario", "sm-wipeout", "-runs", "3")
	fleet, stderr := runCLI("-scenario", "sm-wipeout", "-runs", "3", "-workers", "3")
	if inproc != fleet {
		t.Fatalf("process-fleet stdout differs from in-process stdout:\n--- in-process ---\n%s\n--- fleet ---\n%s", inproc, fleet)
	}
	if !strings.Contains(stderr, "worker") {
		t.Fatalf("fleet run logged no worker chatter on stderr:\n%s", stderr)
	}
}

// TestWorkerModeSpeaksProtocolOnStdout pins the worker contract: stdout
// carries nothing but protocol frames (first a hello), chatter goes to
// stderr.
func TestWorkerModeSpeaksProtocolOnStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildSim(t)
	cmd := exec.Command(bin, "-worker")
	cmd.Stdin = strings.NewReader("") // immediate EOF: clean worker exit
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("worker mode exited with error: %v", err)
	}
	out := stdout.Bytes()
	if len(out) < 4 {
		t.Fatalf("worker wrote no hello frame, got %d bytes", len(out))
	}
	n := int(out[0])<<24 | int(out[1])<<16 | int(out[2])<<8 | int(out[3])
	if len(out) != 4+n {
		t.Fatalf("stdout is not exactly one length-prefixed frame: %d bytes, frame claims %d", len(out), n)
	}
	if !bytes.Contains(out[4:], []byte(`"hello"`)) {
		t.Fatalf("first frame is not a hello: %s", out[4:])
	}
}

// TestWorkersFlagValidation rejects fleet flags without shardable work.
func TestWorkersFlagValidation(t *testing.T) {
	if err := run([]string{"-workers", "2", "-ticks", "2000"}); err == nil {
		t.Fatal("-workers without -scenario accepted")
	}
	if err := run([]string{"-scenario", "sm-wipeout", "-workers", "2"}); err == nil {
		t.Fatal("-workers with a single run accepted")
	}
}

// TestCheckpointRoundTripWorldCLI: a flag-built run checkpointed at a
// mid tick and resumed must emit the byte-identical CSV series of the
// uninterrupted run.
func TestCheckpointRoundTripWorldCLI(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-init", "40", "-ticks", "3000", "-lambda", "0.05", "-wait", "100", "-seed", "3"}
	ref := filepath.Join(dir, "ref.csv")
	if err := run(append(append([]string{}, flags...), "-csv", ref)); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "world.ckpt")
	if err := run(append(append([]string{}, flags...), "-checkpoint-at", "1500", "-checkpoint-out", ckpt)); err != nil {
		t.Fatal(err)
	}
	resumed := filepath.Join(dir, "resumed.csv")
	if err := run([]string{"-checkpoint-in", ckpt, "-csv", resumed}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resumed run's CSV differs from the uninterrupted run's")
	}
}

// TestCheckpointRoundTripScenarioCLI does the same through the scenario
// path, and exercises `checkpoint info` on the sealed file.
func TestCheckpointRoundTripScenarioCLI(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.csv")
	if err := run([]string{"-scenario", "quickstart", "-csv", ref}); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "run.ckpt")
	if err := run([]string{"-scenario", "quickstart", "-checkpoint-at", "11000", "-checkpoint-out", ckpt}); err != nil {
		t.Fatal(err)
	}
	var info bytes.Buffer
	if err := checkpointCmd([]string{"info", ckpt}, &info); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kind:     scenario", "scenario: quickstart", "seed:"} {
		if !strings.Contains(info.String(), want) {
			t.Fatalf("checkpoint info output missing %q:\n%s", want, info.String())
		}
	}
	resumed := filepath.Join(dir, "resumed.csv")
	if err := run([]string{"-checkpoint-in", ckpt, "-csv", resumed}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("resumed scenario's CSV differs from the uninterrupted run's")
	}
}

// TestCheckpointFlagValidation pins the flag interlocks.
func TestCheckpointFlagValidation(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "x.ckpt")
	if err := run([]string{"-checkpoint-out", ckpt}); err == nil {
		t.Fatal("-checkpoint-out without -checkpoint-at accepted")
	}
	if err := run([]string{"-scenario", "quickstart", "-checkpoint-at", "999999", "-checkpoint-out", ckpt}); err == nil {
		t.Fatal("-checkpoint-at past the end of the run accepted")
	}
	if err := run([]string{"-checkpoint-in", ckpt, "-scenario", "quickstart"}); err == nil {
		t.Fatal("-checkpoint-in with -scenario accepted")
	}
	if err := run([]string{"-checkpoint-in", filepath.Join(dir, "absent.ckpt")}); err == nil {
		t.Fatal("missing checkpoint file accepted")
	}
	if err := run([]string{"-fleet-journal", filepath.Join(dir, "j"), "-ticks", "2000"}); err == nil {
		t.Fatal("-fleet-journal without a fleet accepted")
	}
	if err := checkpointCmd([]string{"bogus"}, os.Stdout); err == nil {
		t.Fatal("unknown checkpoint subcommand accepted")
	}
	garbage := filepath.Join(dir, "garbage.ckpt")
	os.WriteFile(garbage, []byte("not a checkpoint"), 0o644)
	if err := checkpointCmd([]string{"info", garbage}, os.Stdout); err == nil {
		t.Fatal("garbage checkpoint file accepted by info")
	}
	if err := run([]string{"-checkpoint-in", garbage}); err == nil {
		t.Fatal("garbage checkpoint file accepted by -checkpoint-in")
	}
}

// TestProcessFleetJournalResume is the coordinator crash-restart golden:
// a journaled coordinator killed mid-batch, restarted with the same
// journal, must print the byte-identical table of an uninterrupted run
// and must not re-dispatch any unit the journal already records.
func TestProcessFleetJournalResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildSim(t)
	dir := t.TempDir()
	journal := filepath.Join(dir, "batch.journal")
	args := []string{"-scenario", "stake-churn", "-runs", "6", "-workers", "1", "-fleet-journal", journal}

	// Uninterrupted reference (its own journal path, same batch shape).
	var refOut, refErr bytes.Buffer
	ref := exec.Command(bin, "-scenario", "stake-churn", "-runs", "6", "-workers", "1",
		"-fleet-journal", filepath.Join(dir, "ref.journal"))
	ref.Stdout, ref.Stderr = &refOut, &refErr
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, refErr.String())
	}

	// Start the journaled coordinator and kill it once the journal
	// records some, but not all, completed units.
	first := exec.Command(bin, args...)
	var firstErr bytes.Buffer
	first.Stderr = &firstErr
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			first.Process.Kill()
			t.Fatalf("journal never accumulated completed units:\n%s", firstErr.String())
		}
		data, _ := os.ReadFile(journal)
		if n := bytes.Count(data, []byte("\n")); n >= 3 { // header + >=2 records
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.Wait()

	// Which units did the first coordinator durably complete?
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	completed := map[string]bool{}
	for i, line := range bytes.Split(data, []byte("\n")) {
		if i == 0 || len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec struct {
			Result *struct {
				Unit int `json:"unit"`
			} `json:"result"`
		}
		if json.Unmarshal(line, &rec) == nil && rec.Result != nil {
			completed[fmt.Sprintf("unit %d ", rec.Result.Unit)] = true
		}
	}
	if len(completed) == 0 || len(completed) >= 6 {
		t.Fatalf("kill landed outside mid-batch: %d units completed", len(completed))
	}

	// Restart with the same journal: only incomplete units may reach a
	// worker, and the merged output must match the uninterrupted run.
	var out, stderr bytes.Buffer
	second := exec.Command(bin, args...)
	second.Stdout, second.Stderr = &out, &stderr
	if err := second.Run(); err != nil {
		t.Fatalf("restarted coordinator: %v\n%s", err, stderr.String())
	}
	if out.String() != refOut.String() {
		t.Fatalf("restarted coordinator's stdout differs from the uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", refOut.String(), out.String())
	}
	for marker := range completed {
		if strings.Contains(stderr.String(), marker+"(scenario) started") {
			t.Fatalf("restarted coordinator re-dispatched a completed unit (%q):\n%s", marker, stderr.String())
		}
	}
	if !strings.Contains(stderr.String(), "(scenario) started") {
		t.Fatalf("restarted coordinator dispatched nothing — the kill landed after the batch finished?\n%s", stderr.String())
	}
}
