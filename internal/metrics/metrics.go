// Package metrics holds the measurement primitives the simulator and the
// experiment harness share: Series (a sampled time series with pointwise
// merging across replicas), Running (Welford mean/variance with 95%
// confidence intervals for cross-replica aggregates), and CSV rendering
// over a shared time axis. The world samples its population and
// reputation series into these types; the experiments package aggregates
// replicas with them and emits the paper-comparable tables and plots.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a named monotonically increasing count.
type Counter struct {
	Name  string
	Value int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Value++ }

// Add adds n (which must be non-negative) to the counter.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: negative Add on a Counter")
	}
	c.Value += n
}

// Point is one sample of a time series.
type Point struct {
	T Tick
	V float64
}

// Tick mirrors sim.Tick without importing it (metrics sits below sim in the
// dependency order).
type Tick = int64

// Series is an append-only time series of float64 samples.
type Series struct {
	Name   string
	Points []Point
}

// Append records a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends panic because they indicate a harness bug.
func (s *Series) Append(t Tick, v float64) {
	if n := len(s.Points); n > 0 && s.Points[n-1].T > t {
		panic(fmt.Sprintf("metrics: out-of-order append to %q: %d after %d", s.Name, t, s.Points[n-1].T))
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Last returns the final sample, or zero and false if the series is empty.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// At returns the value of the latest sample with time <= t, or zero and
// false if no such sample exists.
func (s *Series) At(t Tick) (float64, bool) {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.Points[i-1].V, true
}

// Values returns just the sample values, in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.V
	}
	return out
}

// Running computes online mean and variance (Welford's algorithm) without
// retaining samples.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe folds one sample into the accumulator.
func (r *Running) Observe(v float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
}

// N returns the number of samples observed.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with <2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observed sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observed sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// Merge folds another accumulator into this one (parallel-run reduction,
// Chan et al. formula).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.mean += d * float64(o.n) / float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n = n
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean (0 with <2 samples).
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.StdDev() / math.Sqrt(float64(r.n))
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It panics on an empty slice or a
// percentile outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("metrics: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("metrics: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MergeSeries averages several same-shaped series pointwise: the reduction
// used for the paper's "each experiment is repeated 10 times and the
// results averaged". All series must have identical sample times; it panics
// otherwise (replicas are deterministic, so shape mismatch is a bug), and
// the panic names the offending series. Merge paths that fold in results
// from outside the process (the fleet) should use MergeSeriesChecked so a
// malformed payload fails the run with context instead of crashing it.
func MergeSeries(name string, runs []*Series) *Series {
	out, err := MergeSeriesChecked(name, runs)
	if err != nil {
		panic("metrics: " + err.Error())
	}
	return out
}

// MergeSeriesChecked is MergeSeries with the shape validation surfaced as
// an error instead of a panic. The error names the merged series, the
// replica index and the series name of the mismatching input.
func MergeSeriesChecked(name string, runs []*Series) (*Series, error) {
	if len(runs) == 0 {
		return &Series{Name: name}, nil
	}
	n := len(runs[0].Points)
	for j, r := range runs[1:] {
		if len(r.Points) != n {
			return nil, fmt.Errorf("merging %q: run %d (series %q) has %d points, run 0 (series %q) has %d",
				name, j+1, r.Name, len(r.Points), runs[0].Name, n)
		}
	}
	out := &Series{Name: name, Points: make([]Point, n)}
	for i := 0; i < n; i++ {
		t := runs[0].Points[i].T
		sum := 0.0
		for j, r := range runs {
			if r.Points[i].T != t {
				return nil, fmt.Errorf("merging %q: run %d (series %q) sampled t=%d at index %d, run 0 (series %q) sampled t=%d",
					name, j, r.Name, r.Points[i].T, i, runs[0].Name, t)
			}
			sum += r.Points[i].V
		}
		out.Points[i] = Point{T: t, V: sum / float64(len(runs))}
	}
	return out, nil
}

// CSV renders one or more series sharing a time axis as CSV with a header
// row; series must be same-shaped (same times), as produced by the harness.
func CSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("t")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	if len(series) == 0 || len(series[0].Points) == 0 {
		return b.String()
	}
	n := len(series[0].Points)
	for _, s := range series[1:] {
		if len(s.Points) != n {
			panic(fmt.Sprintf("metrics: CSV of different-length series: %q has %d points, %q has %d",
				s.Name, len(s.Points), series[0].Name, n))
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d", series[0].Points[i].T)
		for _, s := range series {
			fmt.Fprintf(&b, ",%g", s.Points[i].V)
		}
		b.WriteString("\n")
	}
	return b.String()
}
