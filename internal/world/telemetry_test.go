package world

// Telemetry determinism tests: attaching the full observability stack —
// streaming JSONL sink, trace-log sink, series sink, progress gauge and
// wall-clock spans — must change nothing about a run. The bus is
// write-only by construction (it draws no randomness and the world never
// reads it back); these tests pin that byte for byte, and pin that the
// sinks faithfully reproduce the world's own records.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// instrument attaches every built-in sink plus spans to a world and
// returns the pieces for later inspection.
type instruments struct {
	bus      *telemetry.Bus
	stream   *bytes.Buffer
	busLog   *trace.Log
	series   *metrics.SeriesSink
	progress *telemetry.Progress
	spans    *telemetry.Spans
}

func instrument(w *World) *instruments {
	ins := &instruments{
		stream:   &bytes.Buffer{},
		busLog:   trace.New(0),
		series:   metrics.NewSeriesSink(),
		progress: &telemetry.Progress{},
		spans:    telemetry.NewSpans(),
	}
	ins.bus = telemetry.NewBus()
	ins.bus.Attach(telemetry.NewStreamSink(ins.stream))
	ins.bus.Attach(trace.Sink{Log: ins.busLog})
	ins.bus.Attach(ins.series)
	ins.bus.Attach(ins.progress)
	w.SetTelemetry(ins.bus)
	w.SetSpans(ins.spans)
	return ins
}

// TestTelemetryIsWriteOnly runs the same churny configuration bare and
// fully instrumented and demands identical observable output: snapshot
// bytes, rendered CSV and protocol/transport stats. Any telemetry code
// path that consumed a random draw or mutated world state would split
// the fingerprints.
func TestTelemetryIsWriteOnly(t *testing.T) {
	cfg := churnyCfg(3)

	bare, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Run(); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, bare)

	inst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := trace.New(0)
	inst.SetTrace(direct)
	ins := instrument(inst)
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	if err := ins.bus.Flush(); err != nil {
		t.Fatal(err)
	}
	got := fingerprint(t, inst)

	if !bytes.Equal(want, got) {
		t.Fatalf("instrumented run diverged from bare run: %d vs %d fingerprint bytes", len(want), len(got))
	}

	// The bus-fed trace log must match a directly attached one exactly:
	// same events, same exact per-kind counters.
	if !reflect.DeepEqual(direct.Events(), ins.busLog.Events()) {
		t.Fatalf("bus-fed trace log diverged from direct log (%d vs %d events)", ins.busLog.Len(), direct.Len())
	}
	if direct.Total() != ins.busLog.Total() {
		t.Fatalf("bus-fed total %d != direct total %d", ins.busLog.Total(), direct.Total())
	}

	// The series sink must reproduce the world's own sampled series
	// point for point.
	m := inst.Metrics()
	for _, pair := range []struct {
		name string
		want *metrics.Series
	}{
		{"coop", m.CoopCount},
		{"uncoop", m.UncoopCount},
		{"coop-reputation", m.CoopReputation},
	} {
		got := ins.series.Series(pair.name)
		if got == nil {
			t.Fatalf("series sink collected no %q series", pair.name)
		}
		if !reflect.DeepEqual(got, pair.want) {
			t.Fatalf("series %q: sink collected %d points, world holds %d (or values differ)",
				pair.name, len(got.Points), len(pair.want.Points))
		}
	}
	// The extra "population" gauge goes only to the bus, never into the
	// world's metrics.
	if ins.series.Series("population") == nil {
		t.Fatal("population gauge missing from series sink")
	}

	// The progress gauge tracked the run to its end.
	if ins.progress.Tick() != int64(cfg.NumTrans) {
		t.Fatalf("progress tick = %d, want %d", ins.progress.Tick(), cfg.NumTrans)
	}
	if ins.progress.Records() == 0 || ins.progress.Population() == 0 {
		t.Fatalf("progress records=%d population=%d", ins.progress.Records(), ins.progress.Population())
	}

	// The stream carried every published record as one JSON line each.
	lines := bytes.Split(bytes.TrimRight(ins.stream.Bytes(), "\n"), []byte("\n"))
	if int64(len(lines)) != ins.progress.Records() {
		t.Fatalf("stream has %d lines, progress counted %d records", len(lines), ins.progress.Records())
	}
	for i, line := range lines {
		var rec struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("stream line %d is not JSON: %v\n%s", i, err, line)
		}
		if rec.T != "event" && rec.T != "sample" {
			t.Fatalf("stream line %d has tag %q", i, rec.T)
		}
	}

	// Spans recorded wall-clock activity without feeding anything back
	// (the fingerprint equality above already proves the "without").
	stats := ins.spans.Stats()
	if len(stats) == 0 {
		t.Fatal("no spans recorded over a full churny run")
	}
	for _, want := range []string{"sampling", "overlay-join"} {
		found := false
		for _, s := range stats {
			if s.Name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("span %q missing from %v", want, stats)
		}
	}
}

// TestHistogramsObserveLifecycles checks the three duration histograms
// against the run's counters: every introduction-based admission lands in
// AdmissionLatency exactly at the waiting period, every audit outcome
// lands in AuditWait, and every departure or crash lands in
// SessionLength.
func TestHistogramsObserveLifecycles(t *testing.T) {
	cfg := churnyCfg(2)
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()

	admitted := m.AdmittedCoop + m.AdmittedUncoop
	if admitted == 0 {
		t.Fatal("run admitted nobody; config too small to exercise histograms")
	}
	h := m.AdmissionLatency
	if h.N != admitted {
		t.Fatalf("AdmissionLatency.N = %d, want %d admissions", h.N, admitted)
	}
	// The intro decision fires exactly WaitPeriod ticks after the
	// introduction request, so the histogram is a point mass there.
	if h.Min != int64(cfg.WaitPeriod) || h.Max != int64(cfg.WaitPeriod) {
		t.Fatalf("AdmissionLatency range [%d,%d], want point mass at %d", h.Min, h.Max, cfg.WaitPeriod)
	}

	audits := m.AuditsSatisfied + m.AuditsForfeited
	if got := m.AuditWait.N; got > audits || (audits > 0 && got == 0) {
		t.Fatalf("AuditWait.N = %d with %d audit outcomes", got, audits)
	}

	sessions := m.Churn.Departures + m.Churn.Crashes
	if sessions == 0 {
		t.Fatal("churny run had no departures")
	}
	if m.SessionLength.N != sessions {
		t.Fatalf("SessionLength.N = %d, want %d departures+crashes", m.SessionLength.N, sessions)
	}
	if m.SessionLength.Max < m.SessionLength.Min {
		t.Fatalf("SessionLength range inverted: [%d,%d]", m.SessionLength.Min, m.SessionLength.Max)
	}
}

// TestHistogramsSurviveResume pins that the duration histograms (and the
// in-flight arrival table feeding AdmissionLatency) ride through a
// checkpoint cut mid-waiting-period: the resumed run's histograms equal
// the uncut run's exactly.
func TestHistogramsSurviveResume(t *testing.T) {
	cfg := churnyCfg(4)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	// Cut inside the waiting period of early arrivals so pending
	// arrival records must cross the snapshot.
	cut := sim.Tick(cfg.WaitPeriod) / 2
	if err := w.RunFor(cut); err != nil {
		t.Fatal(err)
	}
	w = roundTrip(t, w)
	if err := w.RunFor(sim.Tick(cfg.NumTrans) - cut); err != nil {
		t.Fatal(err)
	}
	w.Finish()

	for _, pair := range []struct {
		name     string
		ref, got *metrics.Histogram
	}{
		{"admission-latency", ref.Metrics().AdmissionLatency, w.Metrics().AdmissionLatency},
		{"audit-wait", ref.Metrics().AuditWait, w.Metrics().AuditWait},
		{"session-length", ref.Metrics().SessionLength, w.Metrics().SessionLength},
	} {
		if !reflect.DeepEqual(pair.ref, pair.got) {
			t.Fatalf("histogram %q diverged across resume:\nuncut: %s\nresumed: %s",
				pair.name, pair.ref.Summary(), pair.got.Summary())
		}
	}
}
