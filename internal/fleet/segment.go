package fleet

// Time-sharded execution: a deep run is phase-split into a chain of
// checkpoint segments (snapshot in → run k ticks → snapshot out), and
// many chains advance together — each round is one ordinary Run batch,
// so segment units inherit the retry, heartbeat and straggler machinery
// unchanged. Determinism is free: a segment is a pure function of its
// input checkpoint, so a retried or duplicated segment re-seals the
// same bytes.

import (
	"fmt"
	"sort"
)

// SegmentPlan is one chained run: a sealed starting checkpoint and the
// ascending absolute ticks to re-checkpoint at. After the last cut a
// Final segment finishes the run.
type SegmentPlan struct {
	// Checkpoint is the sealed starting state (either checkpoint kind).
	Checkpoint []byte
	// Cuts are the absolute ticks to re-checkpoint at, strictly
	// ascending. Empty is valid: the chain is one Final segment.
	Cuts []int64
}

// RunSegmented advances every chain through its cut schedule and
// returns one final Result per chain, in plan order. Chains progress in
// lock-step rounds — round r runs each chain with more than r cuts
// remaining as one batch unit — so all workers stay busy while any
// chain still has segments, and a coordinator journal (RunJournaled)
// can cover each round's batch.
func (f *Fleet) RunSegmented(plans []SegmentPlan) ([]*Result, error) {
	states := make([][]byte, len(plans))
	rounds := 0
	for i, p := range plans {
		if len(p.Checkpoint) == 0 {
			return nil, fmt.Errorf("fleet: segment chain %d has no starting checkpoint", i)
		}
		for c := 1; c < len(p.Cuts); c++ {
			if p.Cuts[c] <= p.Cuts[c-1] {
				return nil, fmt.Errorf("fleet: segment chain %d cuts not ascending at index %d", i, c)
			}
		}
		states[i] = p.Checkpoint
		if len(p.Cuts) > rounds {
			rounds = len(p.Cuts)
		}
	}

	// Intermediate rounds: each advances every chain that still has a
	// cut at this round index.
	for r := 0; r < rounds; r++ {
		var jobs []Job
		var chains []int
		for i, p := range plans {
			if r < len(p.Cuts) {
				jobs = append(jobs, Job{Kind: KindSegment, Checkpoint: states[i], Until: p.Cuts[r]})
				chains = append(chains, i)
			}
		}
		results, err := f.Run(jobs)
		if err != nil {
			return nil, fmt.Errorf("fleet: segment round %d: %w", r, err)
		}
		for u, res := range results {
			if res.Segment == nil || len(res.Segment.Checkpoint) == 0 {
				return nil, fmt.Errorf("fleet: segment round %d unit %d returned no checkpoint", r, u)
			}
			states[chains[u]] = res.Segment.Checkpoint
		}
	}

	// Final round: every chain finishes.
	jobs := make([]Job, len(plans))
	for i := range plans {
		jobs[i] = Job{Kind: KindSegment, Checkpoint: states[i], Final: true}
	}
	results, err := f.Run(jobs)
	if err != nil {
		return nil, fmt.Errorf("fleet: final segment round: %w", err)
	}
	for i, res := range results {
		if res.Segment == nil || (res.Segment.Scenario == nil && res.Segment.Config == nil) {
			return nil, fmt.Errorf("fleet: final segment %d returned no result payload", i)
		}
	}
	return results, nil
}

// EvenCuts builds a cut schedule for a run of length end starting at
// tick start: segments of roughly equal length, one per round. It is
// the default schedule deep CLI runs shard with.
func EvenCuts(start, end int64, segments int) []int64 {
	if segments < 2 || end-start < int64(segments) {
		return nil
	}
	cuts := make([]int64, 0, segments-1)
	for i := 1; i < segments; i++ {
		cut := start + (end-start)*int64(i)/int64(segments)
		if len(cuts) > 0 && cut <= cuts[len(cuts)-1] {
			continue
		}
		if cut > start && cut < end {
			cuts = append(cuts, cut)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	return cuts
}
