package lending

// Batched-bus equivalence at the protocol layer: the coalesced
// SendBatch fan-out and the per-message reference loop must be
// observably identical through full lending rounds — randomized
// score-manager counts, delayed delivery (so frames sit in flight),
// injected loss, mid-wait crashes and departed-signer tombstones.
// Every trial scripts one scenario and replays it on both delivery
// modes; the complete observable transcript must match byte for byte.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/sim"
)

// equivScript is one scripted trial, drawn up front so both arms replay
// exactly the same schedule.
type equivScript struct {
	seed     uint64
	numSM    int
	delay    int     // bus delivery delay in ticks (0 = instant)
	loss     float64 // injected loss probability (0 = lossless)
	intros   []float64
	loans    []equivLoan
	crash    int // introducer index whose first SM crashes, -1 = none
	depart   int // introducer unregistered mid-flight, -1 = none
	departAt int64
}

type equivLoan struct {
	intro   int
	granted bool
	audit   bool
	twice   bool
}

func drawEquivScript(trial int) equivScript {
	src := rng.New(uint64(7000 + trial))
	s := equivScript{
		seed:   uint64(trial),
		numSM:  1 + src.Intn(4),
		delay:  src.Intn(3),
		crash:  -1,
		depart: -1,
	}
	if src.Bernoulli(0.3) {
		s.loss = 0.1
	}
	for i := 0; i < 3; i++ {
		s.intros = append(s.intros, 0.3+0.7*src.Float64())
	}
	for i, n := 0, 1+src.Intn(5); i < n; i++ {
		s.loans = append(s.loans, equivLoan{
			intro:   src.Intn(len(s.intros)),
			granted: src.Bernoulli(0.85),
			audit:   src.Bernoulli(0.6),
			twice:   src.Bernoulli(0.3),
		})
	}
	if src.Bernoulli(0.3) {
		s.crash = src.Intn(len(s.intros))
	}
	if src.Bernoulli(0.5) {
		s.depart = src.Intn(len(s.intros))
		// Either mid-wait (before the lend is signed) or just after the
		// envelopes went out — the latter verifies in-flight frames
		// against the departed signer's tombstone.
		if src.Bool() {
			s.departAt = 500
		} else {
			s.departAt = 1001
		}
	}
	return s
}

// runEquivArm replays a script on one delivery mode and renders the
// complete observable transcript.
func runEquivArm(t *testing.T, s equivScript, batched bool) string {
	t.Helper()
	p := params()
	p.NumSM = s.numSM
	h := newHarnessWith(t, p)
	h.proto.SetBatchedDelivery(batched)
	if s.delay > 0 {
		h.bus.SetDelay(h.engine, sim.Tick(s.delay))
	}
	if s.loss > 0 {
		h.bus.SetLoss(s.loss)
		// Same fault stream on both arms; the transport contract says the
		// batched path draws per-destination losses in Send-loop order.
		h.bus.SetFaultRand(rng.New(s.seed ^ 0xfa17))
	}

	type actor struct {
		pid id.ID
		sms []id.ID
	}
	var intros []actor
	for i, rep := range s.intros {
		pid, sms := h.addPeer(fmt.Sprintf("eq-intro%d", i), rep)
		intros = append(intros, actor{pid, sms})
	}
	var newcomers []id.ID
	for i, l := range s.loans {
		nc, _ := h.addPeer(fmt.Sprintf("eq-new%d", i), -1)
		newcomers = append(newcomers, nc)
		h.proto.Begin(nc, intros[l.intro].pid, l.granted)
	}
	h.engine.RunUntil(400)
	if s.crash >= 0 {
		h.bus.Crash(intros[s.crash].sms[0])
	}
	if s.depart >= 0 && s.departAt == 500 {
		h.engine.RunUntil(500)
		h.proto.UnregisterPeer(intros[s.depart].pid)
	}
	h.engine.RunUntil(1001)
	if s.depart >= 0 && s.departAt == 1001 {
		h.proto.UnregisterPeer(intros[s.depart].pid)
	}
	h.engine.RunUntil(2500)
	for i, l := range s.loans {
		if !l.audit {
			continue
		}
		h.proto.Audit(newcomers[i])
		if l.twice {
			h.proto.Audit(newcomers[i])
		}
	}
	h.engine.RunUntil(4000)

	var b strings.Builder
	for _, a := range h.admitted {
		fmt.Fprintf(&b, "admitted %s\n", a.Short())
	}
	for _, r := range h.refused {
		fmt.Fprintf(&b, "refused %v\n", r)
	}
	fmt.Fprintf(&b, "audits %v\nflagged %d\n", h.audits, len(h.flagged))
	fmt.Fprintf(&b, "proto %+v\nbus %+v\ntombs %d\n", h.proto.Stats(), h.bus.Stats(), h.proto.Tombstones())
	nodes := make([]id.ID, 0, len(h.net.stores))
	for n := range h.net.stores {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Less(nodes[j]) })
	for _, n := range nodes {
		st := h.net.stores[n]
		for _, subj := range st.SubjectIDs() {
			v, _ := st.Query(subj)
			fmt.Fprintf(&b, "store %s %s %.12g\n", n.Short(), subj.Short(), v)
		}
	}
	return b.String()
}

func TestPropertyBatchedDeliveryEquivalence(t *testing.T) {
	var sawAdmit, sawTomb, sawDelay, sawLoss, sawWideFan bool
	for trial := 0; trial < 40; trial++ {
		s := drawEquivScript(trial)
		want := runEquivArm(t, s, true)
		got := runEquivArm(t, s, false)
		if want != got {
			t.Fatalf("trial %d (numSM=%d delay=%d loss=%v depart=%d@%d): delivery modes diverged\nbatched:\n%s\nunbatched:\n%s",
				trial, s.numSM, s.delay, s.loss, s.depart, s.departAt, want, got)
		}
		sawAdmit = sawAdmit || strings.Contains(want, "admitted ")
		sawTomb = sawTomb || !strings.Contains(want, "tombs 0\n")
		sawDelay = sawDelay || s.delay > 0
		sawLoss = sawLoss || s.loss > 0
		sawWideFan = sawWideFan || s.numSM >= 3
	}
	// The equivalence claim is only as strong as the schedules behind it.
	for name, ok := range map[string]bool{
		"an admission": sawAdmit, "a departed-signer tombstone": sawTomb,
		"delayed delivery": sawDelay, "injected loss": sawLoss, "a wide fan-out": sawWideFan,
	} {
		if !ok {
			t.Errorf("no trial exercised %s; the scripts have gone vacuous", name)
		}
	}
}
