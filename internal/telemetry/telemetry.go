// Package telemetry is the simulator's streaming observability layer: a
// deterministic event bus the world, churn, lending, workload and fleet
// layers publish into, with pluggable sinks. The classic end-of-run
// surfaces — trace.Log's bounded event buffer and metrics.Series — are
// two sinks among several; the streaming JSONL sink exports the same
// records incrementally with bounded memory, which is what million-peer
// runs and a future serve mode need.
//
// The determinism contract: telemetry is write-only from the
// simulation's point of view. Publishing an event never draws
// randomness, never mutates world state, and never returns information
// the simulation could branch on — a run with every sink attached
// produces byte-identical results to a run with none. The replend-lint
// telemetrypurity rule enforces the package-level half of that contract
// (no RNG, no simulation-state imports); the world tests pin the
// byte-identity half.
package telemetry

// Event is one trace-style record flowing through the bus: who arrived,
// who was admitted or refused, how an audit resolved. It mirrors
// trace.Event field for field (telemetry sits below trace in the
// dependency order, so trace adapts to it, not the reverse).
type Event struct {
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Peer   string `json:"peer,omitempty"`
	Other  string `json:"other,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Sample is one metric sample: a named series' value at a tick.
type Sample struct {
	At     int64   `json:"at"`
	Series string  `json:"series"`
	Value  float64 `json:"v"`
}

// Sink consumes the record stream. Implementations must not feed
// anything back into the simulation; they are observers only. Flush
// drains any buffering and reports the first write error.
type Sink interface {
	Event(Event)
	Sample(Sample)
	Flush() error
}

// Bus fans records out to its sinks in attach order — a fixed,
// deterministic order, so any sink that writes somewhere observable
// sees the exact same sequence on every run. A nil *Bus is a valid
// no-op bus, so publishers can hold one unconditionally.
type Bus struct {
	sinks []Sink
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach adds a sink; records published afterwards reach it. Sinks
// receive records in attach order.
func (b *Bus) Attach(s Sink) { b.sinks = append(b.sinks, s) }

// Active reports whether any sink is attached. Publishers use it to
// skip building records (formatting peer IDs, say) nobody would see.
func (b *Bus) Active() bool { return b != nil && len(b.sinks) > 0 }

// Event publishes one event to every sink.
func (b *Bus) Event(e Event) {
	if b == nil {
		return
	}
	for _, s := range b.sinks {
		s.Event(e)
	}
}

// Sample publishes one metric sample to every sink.
func (b *Bus) Sample(s Sample) {
	if b == nil {
		return
	}
	for _, snk := range b.sinks {
		snk.Sample(s)
	}
}

// Flush flushes every sink in attach order and returns the first error.
func (b *Bus) Flush() error {
	if b == nil {
		return nil
	}
	var first error
	for _, s := range b.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
