package transport

import (
	"fmt"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/sim"
)

// batchScript is one randomized fan-out scenario: a destination set
// with some nodes crashed or unregistered, an optional loss
// probability and delivery delay, and a tail of nodes that crash
// mid-delivery (the first handler invocation crashes them, so later
// deliveries in the same fan-out must see the flag).
type batchScript struct {
	dests      int
	crashed    map[int]bool
	unrouted   map[int]bool
	midCrash   map[int]bool // crashed by the first delivered handler
	lossProb   float64
	delay      sim.Tick
	extraAfter bool // schedule a competing event after the fan-out
}

func randomBatchScript(r *rng.Source) batchScript {
	s := batchScript{
		dests:    2 + int(r.Uint64()%9), // 2..10, the NumSM range
		crashed:  map[int]bool{},
		unrouted: map[int]bool{},
		midCrash: map[int]bool{},
	}
	for i := 0; i < s.dests; i++ {
		switch r.Uint64() % 5 {
		case 0:
			s.crashed[i] = true
		case 1:
			s.unrouted[i] = true
		case 2:
			if i > 0 {
				s.midCrash[i] = true
			}
		}
	}
	if r.Bernoulli(0.5) {
		s.lossProb = 0.3
	}
	if r.Bernoulli(0.5) {
		s.delay = sim.Tick(1 + r.Uint64()%3)
	}
	s.extraAfter = r.Bernoulli(0.5)
	return s
}

// runScript executes the fan-out through either the batched or the
// per-message path and returns a full observation trace: handler
// invocation order (with tick), nested-send deliveries, the final
// stats, and RNG position.
func runScript(s batchScript, seed uint64, batched bool) string {
	eng := sim.NewEngine()
	b := NewBus()
	faults := rng.New(seed)
	if s.lossProb > 0 {
		b.SetLoss(s.lossProb)
		b.SetFaultRand(faults)
	}
	if s.delay > 0 {
		b.SetDelay(eng, s.delay)
	}
	from := id.FromUint64(1000)
	echo := id.FromUint64(2000)
	var trace string
	b.Register(echo, func(m Message) {
		trace += fmt.Sprintf("echo@%d:%v;", eng.Now(), m.Payload)
	})
	dests := make([]id.ID, s.dests)
	for i := range dests {
		i := i
		dests[i] = id.FromUint64(uint64(10 + i))
		if s.unrouted[i] {
			continue
		}
		b.Register(dests[i], func(m Message) {
			trace += fmt.Sprintf("d%d@%d:%v;", i, eng.Now(), m.Payload)
			// Nested synchronous send: must land between this delivery
			// and the next destination's on both paths.
			b.Send(Message{From: dests[i], To: echo, Kind: "echo", Payload: i})
			for mc := range s.midCrash {
				b.Crash(dests[mc])
			}
		})
		if s.crashed[i] {
			b.Crash(dests[i])
		}
	}
	eng.Schedule(0, "fanout", func() {
		if batched {
			b.SendBatch(from, "credit", "pay", dests)
		} else {
			for _, dst := range dests {
				b.Send(Message{From: from, To: dst, Kind: "credit", Payload: "pay"})
			}
		}
		if s.extraAfter {
			// A competing event scheduled right after the fan-out, at
			// the delivery tick: it must run after every delivery on
			// both paths.
			at := eng.Now() + s.delay
			eng.Schedule(at, "competitor", func() {
				trace += fmt.Sprintf("comp@%d;", eng.Now())
			})
		}
	})
	eng.RunUntil(100)
	st := b.Stats()
	return fmt.Sprintf("%s|sent=%d delivered=%d dropped=%d crashed=%d noroute=%d|rng=%d",
		trace, st.Sent, st.Delivered, st.Dropped, st.Crashed, st.NoRoute, faults.Uint64())
}

// TestSendBatchEquivalence is the batched-bus equivalence property
// test: across randomized fan-out sizes, crash/unroute/mid-delivery
// crash mixes, loss probabilities and delivery delays, the batched
// path must produce byte-identical observation traces — handler order,
// nested-send interleaving, stats, and RNG consumption — to the
// per-message path.
func TestSendBatchEquivalence(t *testing.T) {
	r := rng.New(7)
	for i := 0; i < 500; i++ {
		s := randomBatchScript(r)
		seed := r.Uint64()
		per := runScript(s, seed, false)
		bat := runScript(s, seed, true)
		if per != bat {
			t.Fatalf("case %d (%+v) diverged:\n per-message: %s\n     batched: %s", i, s, per, bat)
		}
	}
}

func TestSendBatchEmpty(t *testing.T) {
	b := NewBus()
	b.SendBatch(id.FromUint64(1), "credit", nil, nil)
	if st := b.Stats(); st != (Stats{}) {
		t.Fatalf("empty batch touched stats: %+v", st)
	}
}
