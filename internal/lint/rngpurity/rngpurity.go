// Package rngpurity defines an analyzer that keeps all stochastic and
// temporal behavior of the simulation core flowing through
// repro/internal/rng's derived streams. A math/rand import or a
// time.Now/time.Since call inside a simulation package introduces state
// the checkpoint format cannot capture and the fleet's keyed seed
// splits cannot replay: the same scenario would produce different bytes
// per process, run, or resume.
package rngpurity

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/lint/analysis"
	"repro/internal/lint/watch"
)

// Analyzer forbids wall clocks and unseeded randomness in simulation
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "rngpurity",
	Doc: `forbid math/rand and wall-clock reads in simulation packages

Simulation packages (see internal/lint/watch) must draw randomness from
repro/internal/rng derived streams and time from sim.Tick. Importing
math/rand or math/rand/v2, or calling time.Now or time.Since, makes
output bytes depend on process state the checkpoint format cannot
capture. internal/fleet and cmd/* are structurally exempt: heartbeats,
deadlines and progress logs are wall-clock by nature and never reach
simulation output.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !watch.SimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "simulation package imports %s; all stochastic behavior must flow through repro/internal/rng derived streams", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := packageOf(pass, sel.X)
			if pkg == nil || pkg.Imported().Path() != "time" {
				return true
			}
			switch sel.Sel.Name {
			case "Now", "Since":
				pass.Reportf(call.Pos(), "simulation package reads the wall clock via time.%s; simulation time is sim.Tick, and durations must be tick-denominated", sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}

// packageOf resolves e to the package name it denotes, if any.
func packageOf(pass *analysis.Pass, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.TypesInfo.Uses[id].(*types.PkgName)
	return pn
}
