// Package asciiplot renders time series as plain-text line charts, so the
// experiment harness can show the paper's figures directly in a terminal
// next to the numeric tables.
package asciiplot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
)

// Options controls chart geometry.
type Options struct {
	// Width and Height are the plot area in characters (default 72×16).
	Width, Height int
	// Title is printed above the chart.
	Title string
	// YLabel annotates the vertical axis.
	YLabel string
	// XLabel annotates the horizontal axis.
	XLabel string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Width < 16 {
		o.Width = 16
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	if o.Height < 4 {
		o.Height = 4
	}
	return o
}

// seriesGlyphs mark successive series on a shared chart.
var seriesGlyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws one or more series on a shared time axis. Series may have
// different sample times; each is interpolated onto the plot columns.
// An empty input or all-empty series renders a placeholder message.
func Render(opt Options, series ...*metrics.Series) string {
	opt = opt.withDefaults()
	var nonEmpty []*metrics.Series
	for _, s := range series {
		if s != nil && len(s.Points) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) == 0 {
		return opt.Title + "\n(no data)\n"
	}

	// Global ranges.
	minT, maxT := nonEmpty[0].Points[0].T, nonEmpty[0].Points[0].T
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range nonEmpty {
		for _, p := range s.Points {
			if p.T < minT {
				minT = p.T
			}
			if p.T > maxT {
				maxT = p.T
			}
			if p.V < minV {
				minV = p.V
			}
			if p.V > maxV {
				maxV = p.V
			}
		}
	}
	if maxV == minV {
		maxV = minV + 1 // flat line: give it a band to live in
	}
	if maxT == minT {
		maxT = minT + 1
	}

	grid := make([][]byte, opt.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range nonEmpty {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for col := 0; col < opt.Width; col++ {
			t := minT + int64(float64(col)/float64(opt.Width-1)*float64(maxT-minT))
			v, ok := s.At(t)
			if !ok {
				continue
			}
			row := int((maxV - v) / (maxV - minV) * float64(opt.Height-1))
			if row < 0 {
				row = 0
			}
			if row >= opt.Height {
				row = opt.Height - 1
			}
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		b.WriteString(opt.Title)
		b.WriteString("\n")
	}
	yTop := fmt.Sprintf("%.4g", maxV)
	yBot := fmt.Sprintf("%.4g", minV)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for i, row := range grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%*s |", labelW, yTop)
		case opt.Height - 1:
			fmt.Fprintf(&b, "%*s |", labelW, yBot)
		default:
			fmt.Fprintf(&b, "%*s |", labelW, "")
		}
		b.Write(row)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", opt.Width))
	xLeft := fmt.Sprintf("%d", minT)
	xRight := fmt.Sprintf("%d", maxT)
	pad := opt.Width - len(xLeft) - len(xRight)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s %s%s%s\n", labelW, "", xLeft, strings.Repeat(" ", pad), xRight)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%*s x: %s   y: %s\n", labelW, "", opt.XLabel, opt.YLabel)
	}
	// Legend.
	if len(nonEmpty) > 1 {
		fmt.Fprintf(&b, "%*s ", labelW, "")
		for si, s := range nonEmpty {
			if si > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderXY draws y against x (not against time) — the axes of the paper's
// Figure 1, which plots uncooperative count against cooperative count.
func RenderXY(opt Options, name string, xs, ys []float64) string {
	if len(xs) != len(ys) {
		panic("asciiplot: RenderXY length mismatch")
	}
	s := &metrics.Series{Name: name}
	// Re-index onto a synthetic monotone axis by sorting on x.
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ { // insertion sort keeps it dependency-free
		for j := i; j > 0 && xs[idx[j-1]] > xs[idx[j]]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
	for _, i := range idx {
		s.Points = append(s.Points, metrics.Point{T: int64(xs[i]), V: ys[i]})
	}
	return Render(opt, s)
}
