package scenario

// Checkpointable scenario runs. A RunState wraps a world snapshot with
// the driver state Run keeps outside the world — the phase cursor, the
// label bindings, the injection outcomes and the crash list — plus the
// spec itself, so a checkpoint file is self-contained: resuming needs
// neither the registry nor the original scenario file.

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/world"
)

// RunStateVersion is the scenario checkpoint format version.
const RunStateVersion = 1

// LabelRecord is one bound injection label.
type LabelRecord struct {
	Label string `json:"label"`
	Peer  id.ID  `json:"peer"`
}

// RunState is the serializable state of an executing scenario.
type RunState struct {
	Version  int                `json:"version"`
	Spec     json.RawMessage    `json:"spec"`
	Next     int                `json:"next"`
	Done     bool               `json:"done,omitempty"`
	Labels   []LabelRecord      `json:"labels,omitempty"`   // ascending label
	Outcomes []InjectionOutcome `json:"outcomes,omitempty"` // execution order
	Crashed  []id.ID            `json:"crashed,omitempty"`  // crash order (Recover replays it)
	World    *world.Snapshot    `json:"world"`
}

// Snapshot captures the run's state. Like world.Snapshot, it requires a
// healthy, unfinished run; the AfterInjection hook is not serializable
// and must be re-attached by the resuming driver if needed.
func (r *Run) Snapshot() (*RunState, error) {
	if r.done {
		return nil, errors.New("scenario: cannot checkpoint a finished run")
	}
	ws, err := r.w.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", r.spec.Name, err)
	}
	specJSON, err := r.spec.JSON()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: encoding spec: %w", r.spec.Name, err)
	}
	st := &RunState{
		Version:  RunStateVersion,
		Spec:     specJSON,
		Next:     r.next,
		Done:     r.done,
		Outcomes: append([]InjectionOutcome(nil), r.outcomes...),
		Crashed:  append([]id.ID(nil), r.crashed...),
		World:    ws,
	}
	for label, pid := range r.labels {
		st.Labels = append(st.Labels, LabelRecord{Label: label, Peer: pid})
	}
	sort.Slice(st.Labels, func(i, j int) bool { return st.Labels[i].Label < st.Labels[j].Label })
	return st, nil
}

// Encode serializes the run state into a sealed checkpoint file.
func (st *RunState) Encode() ([]byte, error) {
	if st.Version != RunStateVersion {
		return nil, fmt.Errorf("scenario: cannot encode run state version %d (want %d)", st.Version, RunStateVersion)
	}
	return checkpoint.Seal(checkpoint.KindScenario, st)
}

// DecodeRunState parses a sealed scenario checkpoint, verifying the
// envelope digest, the kind tag and the format version.
func DecodeRunState(data []byte) (*RunState, error) {
	kind, body, err := checkpoint.Open(data)
	if err != nil {
		return nil, err
	}
	if kind != checkpoint.KindScenario {
		return nil, fmt.Errorf("scenario: checkpoint kind %q is not a scenario run", kind)
	}
	return DecodeRunStateBody(body)
}

// DecodeRunStateBody parses the body of an already-opened scenario
// checkpoint envelope.
func DecodeRunStateBody(body []byte) (*RunState, error) {
	var st RunState
	if err := checkpoint.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if st.Version != RunStateVersion {
		return nil, fmt.Errorf("scenario: run state version %d not supported (want %d)", st.Version, RunStateVersion)
	}
	if st.World == nil {
		return nil, errors.New("scenario: run state has no world snapshot")
	}
	return &st, nil
}

// Resume reconstructs an executing run from a checkpointed state. The
// embedded spec is re-validated and the world restored; Finish (or
// StepPhase/RunToTick) continues exactly where the snapshot was taken.
func Resume(st *RunState) (*Run, error) {
	if st.Version != RunStateVersion {
		return nil, fmt.Errorf("scenario: run state version %d not supported (want %d)", st.Version, RunStateVersion)
	}
	spec, err := Load(st.Spec)
	if err != nil {
		return nil, fmt.Errorf("scenario: resume: %w", err)
	}
	if st.Next < 0 || st.Next > len(spec.Phases) {
		return nil, fmt.Errorf("scenario: resume: phase cursor %d out of range (0..%d)", st.Next, len(spec.Phases))
	}
	w, err := world.Restore(st.World)
	if err != nil {
		return nil, fmt.Errorf("scenario: resume: %w", err)
	}
	r := &Run{
		spec:     spec,
		w:        w,
		labels:   make(map[string]id.ID, len(st.Labels)),
		outcomes: append([]InjectionOutcome(nil), st.Outcomes...),
		crashed:  append([]id.ID(nil), st.Crashed...),
		next:     st.Next,
		done:     st.Done,
	}
	for _, rec := range st.Labels {
		if _, dup := r.labels[rec.Label]; dup {
			return nil, fmt.Errorf("scenario: resume: duplicate label %q", rec.Label)
		}
		r.labels[rec.Label] = rec.Peer
	}
	return r, nil
}

// RunToTick advances the run to the given tick, executing every phase
// scheduled at or before it — the driver loop checkpointing drivers use
// before calling Snapshot. When a spaced injection carries the clock
// past the target the run simply stops there; the resulting state is
// still exactly what the uninterrupted run passes through.
func (r *Run) RunToTick(at sim.Tick) error {
	if r.done {
		return errors.New("scenario: run already finished")
	}
	for r.next < len(r.spec.Phases) && sim.Tick(r.spec.Phases[r.next].At) <= at {
		if _, err := r.StepPhase(); err != nil {
			return err
		}
	}
	if now := r.w.Engine().Now(); now < at {
		if err := r.w.RunFor(at - now); err != nil {
			return fmt.Errorf("scenario %q: %w", r.spec.Name, err)
		}
	}
	return nil
}
