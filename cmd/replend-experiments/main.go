// Command replend-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	replend-experiments [-scale f] [-runs n] [-out dir] [experiment ...]
//	replend-experiments -all
//	replend-experiments -workers k [...]       # shard replicas over k processes
//	replend-experiments -workers k -progress   # with a live per-worker table
//	replend-experiments -worker                # fleet worker mode (stdio)
//	replend-experiments -telemetry run.jsonl fig1   # stream replica telemetry
//	replend-experiments -pprof localhost:6060 [...] # profile a long sweep
//
// Experiments: fig1 successrate fig2 fig3 fig4 fig6 collusion baselines
// ("fig5" shares fig4's sweep and is included in its output).
//
// At -scale 1 the full paper-scale workloads run (Figure 2 alone is 80
// half-million-tick simulations); -scale 0.1 reproduces the shapes in a
// couple of minutes. Each experiment writes <name>.txt (the comparison
// table, with the paper's expected shape quoted underneath) and <name>.csv
// (the raw series) into the output directory, and prints the tables.
//
// With -workers the replicas of every sweep point are sharded across k
// local worker processes (this binary re-exec'd in -worker mode); with
// -fleet-listen remote machines can join the sweep via
// `replend-sim -worker-connect`. Outputs are byte-identical to the
// in-process path. Tables go to stdout; progress chatter goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replend-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replend-experiments", flag.ContinueOnError)
	var (
		scale    = fs.Float64("scale", 0.1, "workload scale (1 = full paper scale)")
		runs     = fs.Int("runs", 10, "replicas averaged per data point (paper: 10)")
		parallel = fs.Int("parallel", 0, "concurrent replicas (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		outDir   = fs.String("out", "results", "output directory for .txt and .csv files")
		all      = fs.Bool("all", false, "run every experiment")
		list     = fs.Bool("list", false, "print the runnable experiment names and exit")
		wkArg    = fs.String("workload", "", "workload spec overriding every replica's arrival generator: a JSON file or a built-in preset (diurnal, flash-crowd, heavytail-cohorts)")

		worker      = fs.Bool("worker", false, "run as a fleet worker on stdin/stdout (spawned by a coordinator)")
		workers     = fs.Int("workers", 0, "shard replicas across this many local worker processes")
		fleetListen = fs.String("fleet-listen", "", "with -workers: also accept remote workers on this host:port")
		fleetToken  = fs.String("fleet-token", "", "shared token gating remote fleet joins")

		telemPath = fs.String("telemetry", "", "stream replica trace events and metric samples as JSONL to this file (\"-\" for stdout)")
		progress  = fs.Bool("progress", false, "with -workers: render the live per-worker fleet table on stderr")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this host:port for the life of the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			return err
		}
	}
	if *worker {
		return fleet.ServeWorker(os.Stdin, os.Stdout, fleet.WorkerOptions{Logf: logf})
	}
	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return nil
	}
	names := fs.Args()
	if *all || len(names) == 0 {
		names = experiments.Names()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	opt := experiments.Options{
		Runs:     *runs,
		Parallel: *parallel,
		Scale:    *scale,
		SeedBase: *seed,
	}
	if *wkArg != "" {
		spec, err := loadWorkload(*wkArg)
		if err != nil {
			return err
		}
		opt.Workload = spec
	}
	useFleet := *workers > 0 || *fleetListen != ""
	if *telemPath != "" && useFleet {
		return fmt.Errorf("-telemetry streams in-process replica worlds; it cannot be combined with -workers or -fleet-listen (fleet replicas run in worker processes)")
	}
	if *progress && !useFleet {
		return fmt.Errorf("-progress renders the fleet table; give it a fleet with -workers")
	}
	if useFleet {
		cfg := fleet.Config{Workers: *workers, Listen: *fleetListen, Token: *fleetToken, Logf: logf}
		if *progress {
			cfg.Progress = os.Stderr
		}
		if *workers > 0 {
			spawn, err := fleet.SelfSpawn()
			if err != nil {
				return err
			}
			cfg.Spawn = spawn
		}
		f, err := fleet.New(cfg)
		if err != nil {
			return err
		}
		defer f.Close()
		if *fleetListen != "" {
			logf("fleet accepting remote workers on %s", f.Addr())
		}
		opt.Fleet = f
	}
	if *telemPath != "" {
		out := io.Writer(os.Stdout)
		var file *os.File
		if *telemPath != "-" {
			f, err := os.Create(*telemPath)
			if err != nil {
				return fmt.Errorf("-telemetry: %w", err)
			}
			file, out = f, f
		}
		stream := telemetry.NewStreamSink(out)
		bus := telemetry.NewBus()
		bus.Attach(stream)
		opt.Telemetry = bus
		defer func() {
			if err := bus.Flush(); err != nil {
				logf("-telemetry: %v", err)
				return
			}
			if file != nil {
				if err := file.Close(); err != nil {
					logf("-telemetry: %v", err)
					return
				}
			}
			logf("telemetry: %d records streamed (peak %d retained)", stream.Written(), stream.PeakRetained())
		}()
	}
	for _, name := range names {
		start := time.Now()
		logf("=== %s (scale %g, %d runs) ===", name, *scale, *runs)
		rep, err := experiments.Run(name, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		table := rep.Table()
		fmt.Println(table)
		if plot := experiments.PlotOf(rep); plot != "" {
			fmt.Println(plot)
			table += "\n" + plot
		}
		logf("(%s in %v)", name, time.Since(start).Round(time.Millisecond))

		if err := os.WriteFile(filepath.Join(*outDir, rep.Name()+".txt"), []byte(table), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, rep.Name()+".csv"), []byte(rep.CSV()), 0o644); err != nil {
			return err
		}
	}
	logf("results written to %s", *outDir)
	return nil
}

// startPprof binds addr and serves net/http/pprof on it for the life of
// the process. The bind happens synchronously so a bad address fails the
// run instead of logging into the void.
func startPprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	logf("pprof serving on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			logf("pprof server stopped: %v", err)
		}
	}()
	return nil
}

// loadWorkload resolves a -workload argument: a path to a JSON workload
// spec, or the name of a built-in preset.
func loadWorkload(nameOrPath string) (*workload.Spec, error) {
	if data, err := os.ReadFile(nameOrPath); err == nil {
		return workload.LoadSpec(data)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return workload.Preset(nameOrPath)
}

// logf is the progress/log channel: stderr, never stdout — stdout belongs
// to the tables (and to protocol frames in worker mode).
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replend-experiments: "+format+"\n", args...)
}
