// Package checkpoint defines the on-disk envelope shared by every
// checkpoint kind the simulator writes: a magic string, a kind tag
// ("world" for a bare simulation, "scenario" for a scripted run), and a
// SHA-256 digest over the canonical JSON body. The digest turns silent
// bit rot into a loud error — a checkpoint that does not verify is
// rejected before any state is rebuilt — and the kind tag lets the CLI
// dispatch without sniffing body fields.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Magic identifies a checkpoint file. It carries the envelope version:
// incompatible envelope changes bump the suffix.
const Magic = "replend-checkpoint/v1"

// Checkpoint kinds.
const (
	KindWorld    = "world"
	KindScenario = "scenario"
)

// File is the envelope. Body is the kind-specific snapshot document;
// Sum is the lowercase hex SHA-256 of exactly the Body bytes.
type File struct {
	Magic string          `json:"magic"`
	Kind  string          `json:"kind"`
	Sum   string          `json:"sha256"`
	Body  json.RawMessage `json:"body"`
}

// Seal encodes body as canonical JSON and wraps it in a verified
// envelope of the given kind.
func Seal(kind string, body any) ([]byte, error) {
	if kind != KindWorld && kind != KindScenario {
		return nil, fmt.Errorf("checkpoint: unknown kind %q", kind)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encoding %s body: %w", kind, err)
	}
	sum := sha256.Sum256(raw)
	return json.Marshal(File{
		Magic: Magic,
		Kind:  kind,
		Sum:   hex.EncodeToString(sum[:]),
		Body:  raw,
	})
}

// Open parses an envelope, verifies the magic and the digest, and
// returns the kind tag with the body bytes. It never panics on
// malformed input; every defect is an error.
func Open(data []byte) (kind string, body json.RawMessage, err error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return "", nil, fmt.Errorf("checkpoint: parsing envelope: %w", err)
	}
	if dec.More() {
		return "", nil, fmt.Errorf("checkpoint: trailing data after envelope")
	}
	if f.Magic != Magic {
		return "", nil, fmt.Errorf("checkpoint: bad magic %q (want %q)", f.Magic, Magic)
	}
	if f.Kind != KindWorld && f.Kind != KindScenario {
		return "", nil, fmt.Errorf("checkpoint: unknown kind %q", f.Kind)
	}
	if len(f.Body) == 0 {
		return "", nil, fmt.Errorf("checkpoint: empty body")
	}
	sum := sha256.Sum256(f.Body)
	if got := hex.EncodeToString(sum[:]); got != f.Sum {
		return "", nil, fmt.Errorf("checkpoint: body digest mismatch (file corrupt?)")
	}
	return f.Kind, f.Body, nil
}

// Unmarshal strictly decodes a checkpoint body into dst, rejecting
// unknown fields so version-skewed documents fail instead of restoring
// a partial state.
func Unmarshal(body json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("checkpoint: decoding body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("checkpoint: trailing data after body")
	}
	return nil
}
