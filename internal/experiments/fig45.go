package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// Fig45 reproduces Figures 4 and 5 with one sweep: λ=0.1, 50 000 time
// units, sweeping the amount of reputation lent (introAmt) with the reward
// fixed at 20% of the lent amount. Figure 4 plots absolute counts —
// cooperative peers, uncooperative peers, entries refused because the
// introducer lacked reputation, and entries refused to uncooperative peers
// by selective introducers. Figure 5 plots the cooperative/uncooperative
// proportions of the resulting population.
//
// The paper's findings: admissions stay flat for introAmt ≤ 0.15 and fall
// beyond as lending drains too much reputation from the system;
// reputation-floor refusals grow with introAmt while selective refusals
// stay flat; the coop/uncoop proportions barely change — raising introAmt
// beyond ~0.15 keeps peers out without distinguishing good from bad.
type Fig45 struct {
	IntroAmt []float64
	// Figure 4 series.
	Coop          []float64
	Uncoop        []float64
	RefusedRep    []float64 // "Entry Refused due to Introducer Reputation"
	RefusedUncoop []float64 // "Entry Refused to Uncooperative Peer"
	// Figure 5 series.
	PropCoop   []float64
	PropUncoop []float64
}

// Fig45Amounts is the swept lent amount.
var Fig45Amounts = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}

func fig45Config(amt float64) config.Config {
	c := config.Default()
	c.Lambda = 0.1
	c.NumTrans = 50_000
	return c.WithIntroAmt(amt)
}

// RunFig45 executes the sweep (nil amounts = the paper's full sweep).
func RunFig45(amounts []float64, opt Options) (*Fig45, error) {
	opt = opt.withDefaults()
	if amounts == nil {
		amounts = Fig45Amounts
	}
	out := &Fig45{}
	for i, amt := range amounts {
		cfg := opt.apply(fig45Config(amt))
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		coop := meanOf(rs, func(r Replica) int64 { return r.Metrics.CoopInSystem })
		uncoop := meanOf(rs, func(r Replica) int64 { return r.Metrics.UncoopInSystem })
		out.IntroAmt = append(out.IntroAmt, amt)
		out.Coop = append(out.Coop, coop)
		out.Uncoop = append(out.Uncoop, uncoop)
		out.RefusedRep = append(out.RefusedRep, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.RefusedRepCoop + r.Metrics.RefusedRepUncoop
		}))
		out.RefusedUncoop = append(out.RefusedUncoop, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.RefusedSelectiveUncoop
		}))
		total := coop + uncoop
		if total > 0 {
			out.PropCoop = append(out.PropCoop, coop/total)
			out.PropUncoop = append(out.PropUncoop, uncoop/total)
		} else {
			out.PropCoop = append(out.PropCoop, 0)
			out.PropUncoop = append(out.PropUncoop, 0)
		}
	}
	return out, nil
}

// Name implements Report.
func (f *Fig45) Name() string { return "fig4+fig5" }

// Table renders both figures' data.
func (f *Fig45) Table() string {
	t4 := &TextTable{
		Title: "Figure 4 — counts vs amount of reputation lent (λ=0.1, reward = 0.2·introAmt)",
		Header: []string{"introAmt", "coop", "uncoop",
			"refused: introducer rep", "refused: uncoop (selective)"},
	}
	t5 := &TextTable{
		Title:  "Figure 5 — proportions vs amount of reputation lent",
		Header: []string{"introAmt", "prop coop", "prop uncoop"},
	}
	for i := range f.IntroAmt {
		t4.AddRow(f.IntroAmt[i], f.Coop[i], f.Uncoop[i], f.RefusedRep[i], f.RefusedUncoop[i])
		t5.AddRow(f.IntroAmt[i], f.PropCoop[i], f.PropUncoop[i])
	}
	var b strings.Builder
	b.WriteString(t4.String())
	b.WriteString("\npaper: admissions flat for introAmt ≤ 0.15 then falling; rep-floor refusals rising; selective refusals flat\n\n")
	b.WriteString(t5.String())
	b.WriteString("\npaper: proportions roughly constant across the sweep\n")
	return b.String()
}

// CSV renders the sweep.
func (f *Fig45) CSV() string {
	var b strings.Builder
	b.WriteString("intro_amt,coop,uncoop,refused_introducer_rep,refused_uncoop_selective,prop_coop,prop_uncoop\n")
	for i := range f.IntroAmt {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g,%g,%g\n",
			f.IntroAmt[i], f.Coop[i], f.Uncoop[i], f.RefusedRep[i], f.RefusedUncoop[i],
			f.PropCoop[i], f.PropUncoop[i])
	}
	return b.String()
}
