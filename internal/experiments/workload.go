package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/workload"
)

// WorkloadSweep is the workload-axis experiment (extension): the Figure-1
// growth conditions swept over the arrival generator itself — the paper's
// homogeneous Poisson control against the built-in workload presets
// (diurnal day/night program, flash-crowd spikes, behavioural cohorts).
// The question it answers: does admission quality survive when the
// arrival process stops being stationary and homogeneous — do the
// waiting-period pipeline and the reputation economy hold their
// discrimination under rush hours, flash crowds and freeloader cohorts?
type WorkloadSweep struct {
	// Points are the swept workload names ("steady" is the Poisson control).
	Points []string
	// Per sweep point, averaged over replicas:
	Arrivals    []float64
	FinalPop    []float64
	Departed    []float64
	Rejoins     []float64
	SuccessRate []float64
	MeanRep     []float64
}

// DefaultWorkloadPoints are the swept workloads, control first.
var DefaultWorkloadPoints = []string{"steady", workload.PresetDiurnal, workload.PresetFlashCrowd, workload.PresetHeavytailCohorts}

// workloadConfig is one sweep point: Figure 1's growth conditions with
// the arrival generator swapped. The control runs the diurnal preset's
// day-plateau rate flat, so every point sees the same peak admission
// pressure and the columns compare generator shape, not raw volume.
func workloadConfig(name string) (config.Config, error) {
	c := config.Default()
	c.Lambda = 0.03
	c.NumTrans = 60_000
	if name == "steady" {
		return c, nil
	}
	spec, err := workload.Preset(name)
	if err != nil {
		return c, err
	}
	c.Workload = spec
	return c, nil
}

// RunWorkloads executes the workload-axis sweep at the given scale.
func RunWorkloads(points []string, opt Options) (*WorkloadSweep, error) {
	opt = opt.withDefaults()
	if len(points) == 0 {
		points = DefaultWorkloadPoints
	}
	out := &WorkloadSweep{Points: points}
	for i, name := range points {
		base, err := workloadConfig(name)
		if err != nil {
			return nil, err
		}
		cfg := opt.apply(base)
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		out.Arrivals = append(out.Arrivals, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.ArrivalsCoop + r.Metrics.ArrivalsUncoop
		}))
		out.FinalPop = append(out.FinalPop, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.CoopInSystem + r.Metrics.UncoopInSystem
		}))
		out.Departed = append(out.Departed, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.Churn.Departures + r.Metrics.Churn.Crashes
		}))
		out.Rejoins = append(out.Rejoins, meanOf(rs, func(r Replica) int64 { return r.Metrics.Churn.Rejoins }))
		sr := statOf(rs, func(r Replica) float64 { return r.Metrics.SuccessRate() })
		out.SuccessRate = append(out.SuccessRate, sr.Mean())
		rep := statOf(rs, func(r Replica) float64 {
			last, _ := r.Metrics.CoopReputation.Last()
			return last.V
		})
		out.MeanRep = append(out.MeanRep, rep.Mean())
	}
	return out, nil
}

// Name implements Report.
func (s *WorkloadSweep) Name() string { return "workload" }

// Table renders the sweep.
func (s *WorkloadSweep) Table() string {
	t := &TextTable{
		Title:  "Workload-axis sweep — steady Poisson vs diurnal, flash-crowd and cohort generators (extension)",
		Header: []string{"workload", "arrivals", "final pop", "departed", "rejoins", "success rate", "mean coop rep"},
	}
	for i, name := range s.Points {
		t.AddRow(name, s.Arrivals[i], s.FinalPop[i], s.Departed[i], s.Rejoins[i], s.SuccessRate[i], s.MeanRep[i])
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nexpected: arrival volume tracks each generator's rate integral (diurnal ≈ 2/3 of\n" +
		"steady, flash-crowd ≈ 1/3 plus the spikes), while success rate and cooperative\n" +
		"reputation stay flat — admission quality is a per-peer economics story, not an\n" +
		"arrival-shape story; only the cohort point departs peers, and its freeloaders are\n" +
		"filtered the same way the steady mix's uncooperative arrivals are\n")
	return b.String()
}

// CSV renders the sweep series.
func (s *WorkloadSweep) CSV() string {
	var b strings.Builder
	b.WriteString("workload,arrivals,final_pop,departed,rejoins,success_rate,mean_coop_rep\n")
	for i, name := range s.Points {
		fmt.Fprintf(&b, "%s,%g,%g,%g,%g,%g,%g\n", name, s.Arrivals[i], s.FinalPop[i],
			s.Departed[i], s.Rejoins[i], s.SuccessRate[i], s.MeanRep[i])
	}
	return b.String()
}
