package lending

import (
	"fmt"
	"sort"

	"repro/internal/id"
	"repro/internal/transport"
)

// Checkpoint support. The protocol's serializable state is everything a
// restored run's future decisions can observe: identities (with their key
// material and generator positions), departed peers' verification
// tombstones, per-node score-manager dedup tables, stake records, the
// punishment set, the nonce counter and the activity counters. The
// signature cache is a pure performance memo rebuilt on demand, and the
// waiting-period events in flight live in the engine's queue — they are
// captured there and rebuilt via RebuildIntroEvent.

// IntroWait is the checkpoint payload of one pending waiting-period event
// ("intro-refuse" or "intro-lend"): the pair whose introduction attempt
// is waiting out the period T.
type IntroWait struct {
	Newcomer   id.ID `json:"newcomer"`
	Introducer id.ID `json:"introducer"`
}

// SignerRecord is one registered identity: a real signer's captured state,
// or a marker for a stateless null identity re-derived from the ID.
type SignerRecord struct {
	ID     id.ID                  `json:"id"`
	Null   bool                   `json:"null,omitempty"`
	Signer *transport.SignerState `json:"signer,omitempty"`
}

// TombRecord is one retained verification-only identity of a departed
// signer.
type TombRecord struct {
	ID  id.ID  `json:"id"`
	Pub []byte `json:"pub"`
}

// BootNonceRecord is one accepted bootstrap credit at a score manager.
type BootNonceRecord struct {
	Peer  id.ID  `json:"peer"`
	Nonce uint64 `json:"nonce"`
}

// SMRecord is the lending bookkeeping of one score-manager node.
type SMRecord struct {
	Node       id.ID             `json:"node"`
	SeenLend   []uint64          `json:"seenLend,omitempty"`
	SeenReward []uint64          `json:"seenReward,omitempty"`
	BootNonce  []BootNonceRecord `json:"bootNonce,omitempty"`
	Flagged    []id.ID           `json:"flagged,omitempty"`
}

// StakeRecord is one admission stake with its lifecycle state.
type StakeRecord struct {
	Newcomer   id.ID      `json:"newcomer"`
	Introducer id.ID      `json:"introducer"`
	Amount     float64    `json:"amount"`
	Nonce      uint64     `json:"nonce"`
	State      StakeState `json:"state"`
}

// State is the protocol's full serializable state, with every map-backed
// structure flattened into ascending-key order for deterministic encoding.
type State struct {
	Signers []SignerRecord `json:"signers,omitempty"`
	Tombs   []TombRecord   `json:"tombs,omitempty"`
	SM      []SMRecord     `json:"sm,omitempty"`
	Stakes  []StakeRecord  `json:"stakes,omitempty"`
	Flagged []id.ID        `json:"flagged,omitempty"`
	Nonce   uint64         `json:"nonce"`
	Stats   Stats          `json:"stats"`
}

// sortedIDKeys returns the map's keys in ascending identifier order.
func sortedIDKeys[V any](m map[id.ID]V) []id.ID {
	out := make([]id.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// sortedNonces returns the set's members in ascending order.
func sortedNonces(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExportState captures the protocol's state for a checkpoint. It fails on
// identity kinds the format does not know about.
func (p *Protocol) ExportState() (State, error) {
	st := State{Nonce: p.nonce, Stats: p.stats}
	for _, pid := range p.sortedSlotIDs(func(s *lendSlot) bool { return s.ident != nil }) {
		ident, _ := p.identityOf(pid)
		switch ident := ident.(type) {
		case *transport.Signer:
			sst := ident.Export()
			st.Signers = append(st.Signers, SignerRecord{ID: pid, Signer: &sst})
		case transport.NullIdentity:
			st.Signers = append(st.Signers, SignerRecord{ID: pid, Null: true})
		default:
			return State{}, fmt.Errorf("lending: cannot checkpoint identity type %T for %s", ident, pid.Short())
		}
	}
	for _, pid := range sortedIDKeys(p.tombs) {
		pub, ok := transport.VerifyOnlyPublic(p.tombs[pid])
		if !ok {
			return State{}, fmt.Errorf("lending: cannot checkpoint tombstone type %T for %s", p.tombs[pid], pid.Short())
		}
		st.Tombs = append(st.Tombs, TombRecord{ID: pid, Pub: pub})
	}
	for _, node := range p.sortedSlotIDs(func(s *lendSlot) bool { return s.sm != nil }) {
		ord, _ := p.ords.Get(node)
		sm := p.slots[ord].sm
		rec := SMRecord{
			Node:       node,
			SeenLend:   sortedNonces(sm.seenLend),
			SeenReward: sortedNonces(sm.seenReward),
			Flagged:    sortedIDKeys(sm.flagged),
		}
		for _, peer := range sortedIDKeys(sm.bootNonce) {
			rec.BootNonce = append(rec.BootNonce, BootNonceRecord{Peer: peer, Nonce: sm.bootNonce[peer]})
		}
		st.SM = append(st.SM, rec)
	}
	for _, newcomer := range sortedIDKeys(p.intro) {
		rec := p.intro[newcomer]
		st.Stakes = append(st.Stakes, StakeRecord{
			Newcomer:   newcomer,
			Introducer: rec.introducer,
			Amount:     rec.amount,
			Nonce:      rec.nonce,
			State:      rec.state,
		})
	}
	st.Flagged = sortedIDKeys(p.flagged)
	return st, nil
}

// RestoreState installs a checkpointed state into a freshly constructed
// protocol (same params, engine, bus, net, events and null/retain flags as
// the captured one). Signers are re-registered through RegisterPeer, which
// also rebuilds the bus handlers; callers restoring bus crash flags must
// do so afterwards.
func (p *Protocol) RestoreState(st State) error {
	for _, rec := range st.Signers {
		var ident transport.Identity
		switch {
		case rec.Null:
			ident = transport.NewNullIdentity(rec.ID)
		case rec.Signer != nil:
			s, err := transport.SignerFromState(*rec.Signer)
			if err != nil {
				return fmt.Errorf("lending: restore: signer %s: %w", rec.ID.Short(), err)
			}
			ident = s
		default:
			return fmt.Errorf("lending: restore: signer %s has neither key state nor null marker", rec.ID.Short())
		}
		p.RegisterPeer(rec.ID, ident)
	}
	for _, rec := range st.Tombs {
		t, err := transport.NewVerifyOnly(rec.Pub)
		if err != nil {
			return fmt.Errorf("lending: restore: tombstone %s: %w", rec.ID.Short(), err)
		}
		p.tombs[rec.ID] = t
	}
	for _, rec := range st.SM {
		sm := p.smState(rec.Node)
		for _, n := range rec.SeenLend {
			sm.seenLend[n] = true
		}
		for _, n := range rec.SeenReward {
			sm.seenReward[n] = true
		}
		for _, bn := range rec.BootNonce {
			sm.bootNonce[bn.Peer] = bn.Nonce
		}
		for _, f := range rec.Flagged {
			sm.flagged[f] = true
		}
	}
	for _, rec := range st.Stakes {
		if rec.State < StakePending || rec.State > StakeStranded {
			return fmt.Errorf("lending: restore: stake for %s has unknown state %d", rec.Newcomer.Short(), rec.State)
		}
		p.intro[rec.Newcomer] = &introRecord{
			introducer: rec.Introducer,
			amount:     rec.Amount,
			nonce:      rec.Nonce,
			state:      rec.State,
		}
	}
	for _, f := range st.Flagged {
		p.flagged[f] = true
	}
	p.nonce = st.Nonce
	p.stats = st.Stats
	return nil
}

// RebuildIntroEvent reconstructs the closure of a checkpointed
// waiting-period event from its payload. name is the event's label,
// "intro-refuse" or "intro-lend".
func (p *Protocol) RebuildIntroEvent(name string, w IntroWait) (func(), error) {
	switch name {
	case "intro-refuse":
		return p.refuseBody(w.Newcomer, w.Introducer), nil
	case "intro-lend":
		return p.lendBody(w.Newcomer, w.Introducer), nil
	}
	return nil, fmt.Errorf("lending: unknown waiting-period event %q", name)
}
