// Package benchgate parses `go test -bench` output and compares the
// custom shape metrics against a committed expectation table — the
// machinery behind cmd/bench-check.
package benchgate

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Gate is the machine-readable `shape_gate` section of a BENCH_*.json
// file: per-benchmark expected shape metrics plus the tolerance band.
type Gate struct {
	// Tolerance is the acceptance band: a metric passes when
	// |got−want| ≤ max(Rel·|want|, Abs). Rel absorbs the benchmark
	// output's limited float precision; Abs keeps near-zero counts from
	// demanding impossible relative accuracy.
	Tolerance Tolerance `json:"tolerance"`
	// Benchmarks maps a benchmark name (no -cpu suffix) to its expected
	// metrics, keyed by the unit string reportShape emitted.
	Benchmarks map[string]map[string]float64 `json:"benchmarks"`
}

// Tolerance is the two-sided acceptance band of a Gate.
type Tolerance struct {
	Rel float64 `json:"rel"`
	Abs float64 `json:"abs"`
}

// Result is one gated metric comparison.
type Result struct {
	Benchmark string
	Metric    string
	Want, Got float64
	Band      float64
	OK        bool
	// Missing marks a gated benchmark or metric absent from the parsed
	// output; Got is meaningless then.
	Missing bool
}

// Parse extracts per-benchmark metrics from `go test -bench` output.
// Benchmark result lines have the form
//
//	BenchmarkFig1-4   1   123456 ns/op   93.00 coop_powerlaw   ...
//
// — name (with a -procs suffix), iteration count, then value/unit
// pairs. Timing and allocation units are machine-dependent and dropped;
// everything else is a custom metric.
func Parse(output string) map[string]map[string]float64 {
	skip := map[string]bool{"ns/op": true, "B/op": true, "allocs/op": true, "MB/s": true}
	metrics := map[string]map[string]float64{}
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil || skip[fields[i+1]] {
				continue
			}
			m, ok := metrics[name]
			if !ok {
				m = map[string]float64{}
				metrics[name] = m
			}
			m[fields[i+1]] = v
		}
	}
	return metrics
}

// Check compares every gated metric against the parsed benchmark
// output, returning one Result per expectation in deterministic order.
func Check(g *Gate, got map[string]map[string]float64) []Result {
	var out []Result
	benches := make([]string, 0, len(g.Benchmarks))
	for b := range g.Benchmarks {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, b := range benches {
		names := make([]string, 0, len(g.Benchmarks[b]))
		for n := range g.Benchmarks[b] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			want := g.Benchmarks[b][n]
			band := math.Max(g.Tolerance.Rel*math.Abs(want), g.Tolerance.Abs)
			r := Result{Benchmark: b, Metric: n, Want: want, Band: band}
			if v, ok := got[b][n]; ok {
				r.Got = v
				r.OK = math.Abs(v-want) <= band
			} else {
				r.Missing = true
			}
			out = append(out, r)
		}
	}
	return out
}
