// Package repro's root benchmarks regenerate every table and figure of
// the paper at a reduced but shape-preserving scale, one testing.B target
// per result (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkFig1        Figure 1  — uncoop vs coop growth, both topologies
//	BenchmarkSuccessRate §4.1 / T2 — decision success rate with vs without introductions
//	BenchmarkFig2        Figure 2  — cooperative reputation over time per λ
//	BenchmarkFig3        Figure 3  — population vs proportion of naive introducers
//	BenchmarkFig4        Figure 4+5 — counts and proportions vs reputation lent
//	BenchmarkFig6        Figure 6  — population vs percentage of freeriding entrants
//	BenchmarkCollusion   A1        — the §1 collusion attack under staking
//	BenchmarkBaselines   A2        — admission-policy ablation
//
// Each iteration runs the full (scaled) experiment; the reported metric is
// therefore end-to-end experiment regeneration cost. Micro-benchmarks for
// the substrates (DHT lookups, ROCQ updates, transaction throughput) are
// alongside.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/id"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/rocq"
	"repro/internal/world"
)

// benchOptions shrinks experiments so a full -bench=. pass stays in
// minutes while preserving the paper's qualitative shapes.
func benchOptions(b *testing.B) experiments.Options {
	b.Helper()
	return experiments.Options{Runs: 2, Scale: 0.04, SeedBase: 1}
}

func reportShape(b *testing.B, keyvals ...any) {
	b.Helper()
	for i := 0; i+1 < len(keyvals); i += 2 {
		if v, ok := keyvals[i+1].(float64); ok {
			b.ReportMetric(v, fmt.Sprint(keyvals[i]))
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig1(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"coop_powerlaw", f.FinalCoop["powerlaw"],
				"uncoop_powerlaw", f.FinalUncoop["powerlaw"],
				"slope_powerlaw", f.Slope["powerlaw"],
			)
		}
	}
}

func BenchmarkSuccessRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunSuccessRate(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"sr_with", s.WithIntroductions.Mean(),
				"sr_without", s.WithoutIntroductions.Mean(),
			)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	// Two contrasting arrival rates carry the figure's shape.
	lambdas := []float64{0.1, 0.005}
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig2(lambdas, benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"final_rep_lambda_0.1", f.Final[0.1],
				"final_rep_lambda_0.005", f.Final[0.005],
			)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	fractions := []float64{0, 0.5, 1}
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig3(fractions, benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"uncoop_all_selective", f.Uncoop[0],
				"uncoop_all_naive", f.Uncoop[2],
			)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	amounts := []float64{0.05, 0.25, 0.45}
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig45(amounts, benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"coop_amt_0.05", f.Coop[0],
				"coop_amt_0.45", f.Coop[2],
				"refused_rep_amt_0.45", f.RefusedRep[2],
			)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	percentages := []float64{0, 50, 100}
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig6(percentages, benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"coop_pct_0", f.Coop[0],
				"coop_pct_100", f.Coop[2],
				"uncoop_pct_100", f.Uncoop[2],
			)
		}
	}
}

func BenchmarkCollusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunCollusion(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"colluders_admitted", float64(c.ColludersAdmitted),
				"colluders_refused", float64(c.ColludersRefused),
				"max_colluder_rep", c.MaxColluderRep,
			)
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBaselines(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range r.Rows {
				if row.Policy == "reputation-lending" || row.Policy == "complaints-based" {
					b.ReportMetric(row.UncoopPerCoop, "uncoop_per_coop_"+row.Policy)
				}
			}
		}
	}
}

// BenchmarkFig1Macro is the headline scaling benchmark: the Figure 1
// population-growth sweep at half paper scale (≈2000 peers by run end,
// both topologies, 2 replicas). It exercises the simulator's hot paths
// under sustained arrivals — placement caching under churn, the lending
// fan-out, per-tick transactions and sampling — and is the wall-clock
// number BENCH_2.json tracks across PRs.
func BenchmarkFig1Macro(b *testing.B) {
	if testing.Short() {
		b.Skip("macro benchmark: minutes of simulated growth")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(experiments.Options{Runs: 2, Scale: 0.5, SeedBase: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnMacro is the membership-churn macro benchmark: the churn
// sweep (four μ points, 2 replicas each) at half paper scale. On top of
// Fig1Macro's hot paths it exercises the departure clocks, batch
// detachment, score-manager state migration and the incremental sampling
// flush under sustained membership loss — the BENCH_3.json workload.
func BenchmarkChurnMacro(b *testing.B) {
	if testing.Short() {
		b.Skip("macro benchmark: minutes of simulated churn")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunChurn(nil, experiments.Options{Runs: 2, Scale: 0.5, SeedBase: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurnNullSign is BenchmarkChurnMacro with signing switched to
// null identities — the measured value of the explicit Ed25519 opt-out
// on the churn sweep (compare the two directly; BENCH_3.json also
// records the opt-out on the admission-heavy Fig-1 macro, where the
// signature floor is ~22% of the wall clock).
func BenchmarkChurnNullSign(b *testing.B) {
	if testing.Short() {
		b.Skip("macro benchmark: minutes of simulated churn")
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunChurn(nil, experiments.Options{Runs: 2, Scale: 0.5, SeedBase: 1, NullSign: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkTransactionTick measures the cost of one simulated transaction
// in a mid-sized community — the simulator's hot path.
func BenchmarkTransactionTick(b *testing.B) {
	cfg := config.Default()
	cfg.NumInit = 1000
	cfg.NumTrans = int64(b.N) + 1
	cfg.Lambda = 0
	w, err := world.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := w.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDHTLookup measures greedy finger-table routing on a 4096-node
// ring.
func BenchmarkDHTLookup(b *testing.B) {
	ring := overlay.NewRing()
	var members []id.ID
	for i := 0; i < 4096; i++ {
		n := id.HashString(fmt.Sprintf("bench-node-%d", i))
		if err := ring.Join(n); err != nil {
			b.Fatal(err)
		}
		members = append(members, n)
	}
	src := rng.New(1)
	keys := make([]id.ID, 1024)
	for i := range keys {
		keys[i] = id.FromUint64(src.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ring.Lookup(members[i%len(members)], keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScoreManagerPlacement measures replica-key placement on a
// growing ring — the per-transaction placement cost.
func BenchmarkScoreManagerPlacement(b *testing.B) {
	ring := overlay.NewRing()
	var members []id.ID
	for i := 0; i < 4096; i++ {
		n := id.HashString(fmt.Sprintf("bench-node-%d", i))
		if err := ring.Join(n); err != nil {
			b.Fatal(err)
		}
		members = append(members, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.ScoreManagers(members[i%len(members)], 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkROCQReport measures one feedback report folded into a score
// manager's aggregate.
func BenchmarkROCQReport(b *testing.B) {
	store := rocq.NewStore(rocq.DefaultParams())
	subject := id.FromUint64(1)
	store.Credit(subject, 0.1)
	op := rocq.Opinion{Value: 1, Quality: 0.8, Count: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.Report(id.FromUint64(uint64(i%64+2)), subject, op)
	}
}

// BenchmarkRingJoin measures membership growth cost (the churn path).
func BenchmarkRingJoin(b *testing.B) {
	ring := overlay.NewRing()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ring.Join(id.HashString(fmt.Sprintf("join-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingChurn measures a join/leave pair on a standing 4096-node
// ring — the refused-peer path that every admission attempt under a
// selective community exercises.
func BenchmarkRingChurn(b *testing.B) {
	ring := overlay.NewRing()
	for i := 0; i < 4096; i++ {
		if err := ring.Join(id.HashString(fmt.Sprintf("churn-node-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := id.HashString(fmt.Sprintf("churn-%d", i))
		if err := ring.Join(n); err != nil {
			b.Fatal(err)
		}
		if err := ring.Leave(n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhitewash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := experiments.RunWhitewash(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range w.Rows {
				if row.Policy == "reputation-lending" || row.Policy == "complaints-based" {
					b.ReportMetric(row.ServicePerIdentity, "service_per_identity_"+row.Policy)
				}
			}
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunAblation(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"coop_reward_ratio_0", a.RewardCoop[0],
				"coop_reward_ratio_1", a.RewardCoop[len(a.RewardCoop)-1],
			)
		}
	}
}

func BenchmarkTraitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunTraitor(benchOptions(b))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportShape(b,
				"rep_at_defection", tr.RepAtDefection,
				"rep_after", tr.RepAfter,
			)
		}
	}
}

// BenchmarkChurnMacroFleet is BenchmarkChurnMacro dispatched through the
// fleet coordinator (2 protocol workers, in-process transports): the same
// units flow through job serialization, the scheduler, heartbeats and
// result decoding, so the delta against BenchmarkChurnMacro is the
// fleet's protocol-and-scheduling overhead. Cross-process scaling numbers
// (real worker processes, 1/2/4 workers) are recorded in BENCH_4.json —
// on a multi-core box the sweep parallelizes across worker processes;
// the protocol cost measured here is what bounds the 1-worker penalty.
func BenchmarkChurnMacroFleet(b *testing.B) {
	if testing.Short() {
		b.Skip("macro benchmark: minutes of simulated churn")
	}
	f, err := fleet.New(fleet.Config{Workers: 2, Spawn: fleet.PipeSpawn()})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunChurn(nil, experiments.Options{Runs: 2, Scale: 0.5, SeedBase: 1, Fleet: f}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetProtocol is the protocol microbenchmark: one tiny unit
// round-tripped through a single pipe worker — frame encode, dispatch,
// worker decode, execution of a minimal world, result encode and merge.
// The non-execution share is the per-unit floor a fleet adds.
func BenchmarkFleetProtocol(b *testing.B) {
	f, err := fleet.New(fleet.Config{Workers: 1, Spawn: fleet.PipeSpawn()})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	c := config.Default()
	c.NumInit = 20
	c.NumTrans = 100
	c.Lambda = 0
	data, err := json.Marshal(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Run([]fleet.Job{{Kind: fleet.KindConfig, Config: data, Seed: 1}}); err != nil {
			b.Fatal(err)
		}
	}
}
