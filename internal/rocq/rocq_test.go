package rocq

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/id"
)

func pid(v uint64) id.ID { return id.FromUint64(v) }

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{PriorWeight: 0, WindowWeight: 100, CredInit: 0.5, CredGain: 0.1, QualityHalf: 2},
		{PriorWeight: 1, WindowWeight: 0.5, CredInit: 0.5, CredGain: 0.1, QualityHalf: 2},
		{PriorWeight: 1, WindowWeight: 100, CredInit: 1.5, CredGain: 0.1, QualityHalf: 2},
		{PriorWeight: 1, WindowWeight: 100, CredInit: 0.5, CredGain: 0, QualityHalf: 2},
		{PriorWeight: 1, WindowWeight: 100, CredInit: 0.5, CredGain: 0.1, CredMin: 1, QualityHalf: 2},
		{PriorWeight: 1, WindowWeight: 100, CredInit: 0.5, CredGain: 0.1, QualityHalf: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad params %d accepted", i)
		}
	}
}

func TestOpinionRunningAverage(t *testing.T) {
	b := NewOpinionBook(DefaultParams())
	p := pid(1)
	b.Record(p, 1)
	b.Record(p, 0)
	op, ok := b.Opinion(p)
	if !ok {
		t.Fatal("opinion missing")
	}
	if op.Value != 0.5 || op.Count != 2 {
		t.Fatalf("opinion = %+v", op)
	}
}

func TestOpinionUnknownPartner(t *testing.T) {
	b := NewOpinionBook(DefaultParams())
	if _, ok := b.Opinion(pid(9)); ok {
		t.Fatal("opinion for unknown partner")
	}
	if b.Partners() != 0 {
		t.Fatal("phantom partners")
	}
}

func TestOpinionQualityGrowsWithCount(t *testing.T) {
	b := NewOpinionBook(DefaultParams())
	p := pid(1)
	op1 := b.Record(p, 1)
	var opN Opinion
	for i := 0; i < 20; i++ {
		opN = b.Record(p, 1)
	}
	if opN.Quality <= op1.Quality {
		t.Fatalf("quality did not grow: %v -> %v", op1.Quality, opN.Quality)
	}
	if opN.Quality > 1 {
		t.Fatalf("quality out of range: %v", opN.Quality)
	}
}

func TestOpinionQualityPenalisesInconsistency(t *testing.T) {
	b := NewOpinionBook(DefaultParams())
	consistent, mixed := pid(1), pid(2)
	for i := 0; i < 20; i++ {
		b.Record(consistent, 1)
		b.Record(mixed, float64(i%2))
	}
	opC, _ := b.Opinion(consistent)
	opM, _ := b.Opinion(mixed)
	if opM.Quality >= opC.Quality {
		t.Fatalf("mixed history quality %v not below consistent %v", opM.Quality, opC.Quality)
	}
}

func TestOpinionRejectsOutOfRangeRating(t *testing.T) {
	b := NewOpinionBook(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Record(pid(1), 1.5)
}

func TestOpinionQuickBounds(t *testing.T) {
	b := NewOpinionBook(DefaultParams())
	f := func(partner uint64, ratings []bool) bool {
		p := pid(partner)
		var last Opinion
		for _, r := range ratings {
			v := 0.0
			if r {
				v = 1
			}
			last = b.Record(p, v)
		}
		if len(ratings) == 0 {
			return true
		}
		return last.Value >= 0 && last.Value <= 1 && last.Quality >= 0 && last.Quality <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreQueryUnknown(t *testing.T) {
	s := NewStore(DefaultParams())
	if _, ok := s.Query(pid(1)); ok {
		t.Fatal("unknown subject should be absent")
	}
	if s.Known(pid(1)) {
		t.Fatal("Known on unknown subject")
	}
}

func TestStoreInitAndQuery(t *testing.T) {
	s := NewStore(DefaultParams())
	s.Init(pid(1), 1.0)
	v, ok := s.Query(pid(1))
	if !ok || v != 1.0 {
		t.Fatalf("query = %v, %v", v, ok)
	}
	s.Init(pid(2), 1.7) // clamped
	if v, _ := s.Query(pid(2)); v != 1.0 {
		t.Fatalf("init did not clamp: %v", v)
	}
}

func TestReportPullsTowardOpinion(t *testing.T) {
	s := NewStore(DefaultParams())
	subject := pid(1)
	s.Credit(subject, 0.2) // bootstrap credit, no prior evidence
	op := Opinion{Value: 1, Quality: 1, Count: 10}
	prev, _ := s.Query(subject)
	for i := uint64(0); i < 50; i++ {
		s.Report(pid(100+i), subject, op)
		cur, _ := s.Query(subject)
		if cur < prev-1e-12 {
			t.Fatalf("reputation moved away from unanimous positive opinion: %v -> %v", prev, cur)
		}
		prev = cur
	}
	if prev < 0.8 {
		t.Fatalf("reputation %v did not converge toward 1 after 50 positive reports", prev)
	}
}

func TestReportBootstrapsUnknownSubject(t *testing.T) {
	s := NewStore(DefaultParams())
	s.Report(pid(7), pid(1), Opinion{Value: 1, Quality: 1})
	v, ok := s.Query(pid(1))
	if !ok {
		t.Fatal("report did not create subject state")
	}
	// Bootstrapped from the report but damped by default credibility.
	if v <= 0 || v > DefaultParams().CredInit {
		t.Fatalf("bootstrap value %v outside (0, credInit]", v)
	}
}

func TestLiarLosesCredibility(t *testing.T) {
	// The paper's regime: an honest majority. Four honest reporters and
	// one liar (an uncooperative peer that "always sends 0").
	s := NewStore(DefaultParams())
	subject := pid(1)
	s.Init(subject, 0.9)
	liar := pid(50)
	honest := []id.ID{pid(51), pid(52), pid(53), pid(54)}
	for i := 0; i < 100; i++ {
		s.Report(liar, subject, Opinion{Value: 0, Quality: 1})
		for _, h := range honest {
			s.Report(h, subject, Opinion{Value: 1, Quality: 1})
		}
	}
	if cl, ch := s.Credibility(liar), s.Credibility(honest[0]); cl >= ch/2 {
		t.Fatalf("liar credibility %v not well below honest %v", cl, ch)
	}
	// The aggregate must stay high despite the liar: credibility damps it.
	if v, _ := s.Query(subject); v < 0.7 {
		t.Fatalf("one liar among four honest dragged reputation to %v", v)
	}
}

func TestCredibilityFloor(t *testing.T) {
	p := DefaultParams()
	s := NewStore(p)
	s.Init(pid(1), 1)
	liar := pid(2)
	for i := 0; i < 1000; i++ {
		s.Report(liar, pid(1), Opinion{Value: 0, Quality: 1})
	}
	if c := s.Credibility(liar); c < p.CredMin {
		t.Fatalf("credibility %v fell below floor %v", c, p.CredMin)
	}
}

func TestCreditDebitClamp(t *testing.T) {
	s := NewStore(DefaultParams())
	subject := pid(1)
	s.Credit(subject, 0.1)
	if v, _ := s.Query(subject); math.Abs(v-0.1) > 1e-12 {
		t.Fatalf("credit on unknown subject: %v", v)
	}
	s.Credit(subject, 5)
	if v, _ := s.Query(subject); v != 1 {
		t.Fatalf("credit did not clamp at 1: %v", v)
	}
	s.Debit(subject, 0.4)
	if v, _ := s.Query(subject); math.Abs(v-0.6) > 1e-12 {
		t.Fatalf("debit: %v", v)
	}
	s.Debit(subject, 5)
	if v, _ := s.Query(subject); v != 0 {
		t.Fatalf("debit did not clamp at 0: %v", v)
	}
}

func TestDebitCreatesAtZero(t *testing.T) {
	s := NewStore(DefaultParams())
	s.Debit(pid(1), 0.3)
	if v, ok := s.Query(pid(1)); !ok || v != 0 {
		t.Fatalf("debit on unknown subject: %v, %v", v, ok)
	}
}

func TestNegativeAdjustmentsPanic(t *testing.T) {
	s := NewStore(DefaultParams())
	for _, fn := range []func(){
		func() { s.Credit(pid(1), -0.1) },
		func() { s.Debit(pid(1), -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZero(t *testing.T) {
	s := NewStore(DefaultParams())
	s.Init(pid(1), 0.9)
	s.Zero(pid(1))
	if v, ok := s.Query(pid(1)); !ok || v != 0 {
		t.Fatalf("Zero: %v, %v", v, ok)
	}
	s.Zero(pid(2)) // unknown subject becomes known at 0
	if v, ok := s.Query(pid(2)); !ok || v != 0 {
		t.Fatalf("Zero unknown: %v, %v", v, ok)
	}
}

func TestRecoupAfterDebit(t *testing.T) {
	// The paper: "the introducer can recoup its reputation in time by
	// behaving cooperatively with other peers."
	s := NewStore(DefaultParams())
	subject := pid(1)
	s.Init(subject, 1)
	s.Debit(subject, 0.3)
	after, _ := s.Query(subject)
	if math.Abs(after-0.7) > 1e-12 {
		t.Fatalf("debit result %v", after)
	}
	for i := uint64(0); i < 200; i++ {
		s.Report(pid(100+i%10), subject, Opinion{Value: 1, Quality: 1})
	}
	v, _ := s.Query(subject)
	if v < 0.95 {
		t.Fatalf("reputation %v did not recoup after positive feedback", v)
	}
}

func TestReputationStaysInRangeQuick(t *testing.T) {
	s := NewStore(DefaultParams())
	subject := pid(1)
	f := func(ops []struct {
		Reporter uint8
		Positive bool
		Credit   bool
		Debit    bool
	}) bool {
		for _, o := range ops {
			switch {
			case o.Credit:
				s.Credit(subject, 0.1)
			case o.Debit:
				s.Debit(subject, 0.1)
			default:
				v := 0.0
				if o.Positive {
					v = 1
				}
				s.Report(pid(uint64(o.Reporter)), subject, Opinion{Value: v, Quality: 1})
			}
			if v, ok := s.Query(subject); ok && (v < 0 || v > 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuerySet(t *testing.T) {
	p := DefaultParams()
	a, b, c := NewStore(p), NewStore(p), NewStore(p)
	subject := pid(1)
	if _, ok := QuerySet([]*Store{a, b, c}, subject); ok {
		t.Fatal("unknown everywhere should be absent")
	}
	a.Init(subject, 0.8)
	b.Init(subject, 0.6)
	// c abstains (fresh manager after churn).
	v, ok := QuerySet([]*Store{a, b, c}, subject)
	if !ok || math.Abs(v-0.7) > 1e-12 {
		t.Fatalf("QuerySet = %v, %v", v, ok)
	}
}

func TestStoreCounters(t *testing.T) {
	s := NewStore(DefaultParams())
	s.Report(pid(1), pid(2), Opinion{Value: 1, Quality: 1})
	s.Report(pid(1), pid(3), Opinion{Value: 0, Quality: 0.5})
	if s.Reports() != 2 {
		t.Fatalf("Reports = %d", s.Reports())
	}
	if s.Subjects() != 2 {
		t.Fatalf("Subjects = %d", s.Subjects())
	}
}

func TestReportRejectsOutOfRange(t *testing.T) {
	s := NewStore(DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Report(pid(1), pid(2), Opinion{Value: 2, Quality: 1})
}

// Separation test: the core property the lending audit depends on. Honest
// majority reporting about a cooperative and an uncooperative subject must
// drive their reputations far apart.
func TestCooperativeUncooperativeSeparation(t *testing.T) {
	s := NewStore(DefaultParams())
	coop, uncoop := pid(1), pid(2)
	s.Credit(coop, 0.1)   // both bootstrapped by a lend
	s.Credit(uncoop, 0.1) // of the default introAmt
	for i := uint64(0); i < 40; i++ {
		reporter := pid(100 + i%8)
		s.Report(reporter, coop, Opinion{Value: 1, Quality: 0.8})
		s.Report(reporter, uncoop, Opinion{Value: 0, Quality: 0.8})
	}
	cv, _ := s.Query(coop)
	uv, _ := s.Query(uncoop)
	if cv < 0.5 {
		t.Fatalf("cooperative newcomer reputation %v below audit threshold", cv)
	}
	if uv > 0.2 {
		t.Fatalf("uncooperative newcomer reputation %v too high", uv)
	}
}
