// Quickstart: the smallest complete reputation-lending story, driven by
// the built-in "quickstart" scenario (run `replend-sim scenarios dump
// quickstart` to see its JSON).
//
// A founding community of 50 peers runs for a while; a cooperative
// newcomer and a freerider each ask a member for an introduction; the
// lends are staked, the community transacts, the audits fire, and the
// introducer of the honest peer gets the stake back with a reward while
// the freerider's introducer forfeits it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/id"
	"repro/internal/scenario"
)

func main() {
	spec, err := scenario.Get("quickstart")
	if err != nil {
		log.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		log.Fatal(err)
	}
	w := r.World()

	// Phase 1 at tick 2000: the warmed-up community meets an honest
	// newcomer, who asks a selective member for an introduction.
	step(r)
	honest := labelled(r, "honest")
	selective := introducerOf(r, "honest")
	fmt.Printf("community warmed up: %d members\n", w.PopulationSize())
	fmt.Printf("honest newcomer %s asked selective member %s (reputation %.3f)\n",
		honest.Short(), selective.Short(), w.Reputation(selective))

	// Phase 2 at tick 2201: the honest newcomer is in; a freerider tries
	// the same selective member.
	step(r)
	fmt.Printf("honest newcomer admitted with lent reputation %.3f (introducer staked: now %.3f)\n",
		w.Reputation(honest), w.Reputation(selective))

	// Phase 3 at tick 2402: the selective member refused; the same kind
	// of freerider asks a naive member — always granted.
	step(r)
	fmt.Printf("freerider %s asked the selective member: admitted=%v\n",
		labelled(r, "refused").Short(), w.IsAdmitted(labelled(r, "refused")))
	freerider := labelled(r, "freerider")
	naive := introducerOf(r, "freerider")
	fmt.Printf("freerider %s asked naive member %s instead\n", freerider.Short(), naive.Short())

	// Tail: the community transacts, the newcomers build (or burn)
	// reputation, and after auditTrans completed transactions each is
	// audited.
	res, err := r.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat the end of the run (tick %d):\n", spec.Base.NumTrans)
	fmt.Printf("  freerider admitted by the naive member: %v\n", w.IsAdmitted(freerider))
	fmt.Printf("  honest newcomer reputation:      %.3f (earned its standing)\n", res.FinalReputation["honest"])
	fmt.Printf("  freerider reputation:            %.3f (credit burned)\n", res.FinalReputation["freerider"])
	fmt.Printf("  selective introducer reputation: %.3f (stake returned + reward)\n", w.Reputation(selective))
	fmt.Printf("  naive introducer reputation:     %.3f (stake forfeited, recouping)\n", w.Reputation(naive))
	fmt.Printf("  audits: %d satisfied (stake+reward returned), %d forfeited\n",
		res.Metrics.AuditsSatisfied, res.Metrics.AuditsForfeited)
	fmt.Printf("  decision success rate: %.3f\n", res.Metrics.SuccessRate())
}

func step(r *scenario.Run) {
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
}

func labelled(r *scenario.Run, name string) id.ID {
	pid, ok := r.Labeled(name)
	if !ok {
		log.Fatalf("label %q not bound", name)
	}
	return pid
}

func introducerOf(r *scenario.Run, label string) id.ID {
	for _, o := range r.Outcomes() {
		if o.Label == label {
			return o.Introducer
		}
	}
	log.Fatalf("no outcome labelled %q", label)
	return id.ID{}
}
