package scenario

import (
	"repro/internal/churn"
	"repro/internal/config"
	"repro/internal/workload"
	"repro/internal/world"
)

// The built-in scenarios. The first five are the declarative forms of the
// repo's examples/* programs and are pinned by golden tests: under the
// same seed each reproduces, metric for metric, the run its hard-coded
// predecessor produced. The rest showcase spec features the examples
// never needed (parameter deltas, traitors, membership churn with
// score-manager state migration).
func init() {
	for name, build := range map[string]func() *Spec{
		"quickstart":      Quickstart,
		"churn":           Churn,
		"collusion":       Collusion,
		"filesharing":     Filesharing,
		"api":             API,
		"churn-wave":      ChurnWave,
		"traitor":         TraitorMilking,
		"churn-steady":    ChurnSteady,
		"flash-crowd":     FlashCrowd,
		"sm-wipeout":      SMWipeout,
		"churn-heavytail": ChurnHeavytail,
		"stake-churn":     StakeChurn,
		"diurnal":         Diurnal,
		"cohort-mix":      CohortMix,
		"mega":            Mega,
	} {
		if err := Register(name, build); err != nil {
			//replend:allow nopanic init-time registration of compiled-in builtins; failure is a compile-a-duplicate bug, caught by any test run
			panic(err)
		}
	}
}

// Quickstart is the smallest complete reputation-lending story: a warm
// founding community, an honest newcomer admitted through a selective
// member, a freerider refused by the same member, and a second freerider
// waved in by a naive member — who forfeits the stake at audit time.
func Quickstart() *Spec {
	base := config.Default()
	base.NumInit = 50
	base.NumTrans = 22_603 // 2000 warm-up + 3×(wait+1) + 20000 settling
	base.Lambda = 0
	base.WaitPeriod = 200
	base.AuditTrans = 10
	base.Seed = 42
	return &Spec{
		Name: "quickstart",
		Description: "Warmed 50-peer community; an honest newcomer, then a freerider, ask a " +
			"selective member; a second freerider asks a naive member. Stakes, audits, rewards.",
		Base: base,
		Phases: []Phase{
			{Name: "honest newcomer", At: 2_000, Inject: []Injection{{
				As: "honest", Class: "cooperative", Style: "selective",
				Introducer: Selector{Style: "selective"},
			}}},
			{Name: "freerider asks selective", At: 2_201, Inject: []Injection{{
				As: "refused", Class: "uncooperative", Style: "naive",
				Introducer: Selector{Style: "selective"},
			}}},
			{Name: "freerider asks naive", At: 2_402, Inject: []Injection{{
				As: "freerider", Class: "uncooperative", Style: "naive",
				Introducer: Selector{Style: "naive"},
			}}},
		},
	}
}

// Churn is the DHT substrate under membership churn: the community grows
// under steady arrivals, half of a reputable naive member's score
// managers crash mid-introduction, and the lend still lands through the
// surviving replicas.
func Churn() *Spec {
	base := config.Default()
	base.NumInit = 100
	base.NumTrans = 50_201
	base.Lambda = 0.02
	base.WaitPeriod = 200
	base.Seed = 5
	reputableNaive := Selector{Style: "naive", MinRep: 0.6, FallbackFirst: true}
	return &Spec{
		Name: "churn",
		Description: "Growing ring under λ=0.02 arrivals; at tick 50000 half the introducer's " +
			"score managers crash mid-introduction and the lend survives on the remaining replicas.",
		Base: base,
		Phases: []Phase{
			{Name: "crash and introduce", At: 50_000,
				Crash: &Fault{ScoreManagersOf: reputableNaive, Fraction: 0.5},
				Inject: []Injection{{
					As: "newcomer", Class: "cooperative", Style: "selective",
					Introducer: reputableNaive,
				}}},
			{Name: "recover", At: 50_201, Recover: true},
		},
	}
}

// Collusion is the attack the paper's introduction worries about: a mole
// farms reputation honestly, then introduces a ring of twelve freeriding
// colluders, one per waiting period, until staking drains it below the
// introduction floor.
func Collusion() *Spec {
	base := config.Default()
	base.NumInit = 150
	base.NumTrans = 76_012 // 30000 farming + 12×(wait+1) spree + 40000 dust-settling
	base.Lambda = 0
	base.WaitPeriod = 500
	base.AuditTrans = 10
	base.Seed = 99
	return &Spec{
		Name: "collusion",
		Description: "A mole enters honestly, farms reputation for 30000 ticks, then introduces " +
			"12 freeriding colluders one waiting-period apart; staking caps the ring.",
		Base: base,
		Phases: []Phase{
			{Name: "mole enters", At: 0, Inject: []Injection{{
				As: "mole", Class: "cooperative", Style: "naive",
				Introducer: Selector{Style: "naive", FallbackFirst: true},
			}}},
			{Name: "introduction spree", At: 30_000, Inject: []Injection{{
				As: "colluder", Class: "uncooperative", Style: "naive",
				Introducer: Selector{Ref: "mole"},
				Count:      12, SpacedBy: 501,
			}}},
		},
	}
}

// Filesharing is the paper's motivating workload: a scale-free community
// under a steady arrival stream, a quarter of it freeriders, defended
// only by reputation lending.
func Filesharing() *Spec {
	base := config.Default()
	base.NumInit = 200
	base.NumTrans = 60_000
	base.Lambda = 0.05
	base.FracUncoop = 0.25
	base.WaitPeriod = 500
	base.Seed = 2026
	return &Spec{
		Name: "filesharing",
		Description: "Scale-free file-sharing community growing under λ=0.05 arrivals, 25% " +
			"freeriders; lending keeps most of them out while cooperative peers flow in.",
		Base: base,
	}
}

// API is the introduction-chain story the core-API example tells:
// a founder introduces B, B earns standing, then B introduces C —
// reputation lending composing across generations.
func API() *Spec {
	base := config.Default()
	base.NumInit = 80
	base.NumTrans = 57_002 // 5000 warm-up + (wait+1) + 30000 + (wait+1) + 20000
	base.Lambda = 0.02
	base.FracUncoop = 0.25
	base.Seed = 7
	return &Spec{
		Name: "api",
		Description: "Introduction chain across generations: a founder introduces B; after 30000 " +
			"ticks of standing-building, B introduces C. Background arrivals at λ=0.02.",
		Base: base,
		Phases: []Phase{
			{Name: "generation 1", At: 5_000, Inject: []Injection{{
				As: "b", Class: "cooperative", Style: "selective",
				Introducer: Selector{}, // first admitted member: a founder
			}}},
			{Name: "generation 2", At: 36_001, Inject: []Injection{{
				As: "c", Class: "cooperative", Style: "selective",
				Introducer: Selector{Ref: "b"},
			}}},
		},
	}
}

// ChurnWave showcases parameter deltas: a calm community takes a churn
// wave (λ spikes 10×, 60% of the wave uncooperative), then the wave
// passes and parameters return to baseline.
func ChurnWave() *Spec {
	base := config.Default()
	base.NumInit = 150
	base.NumTrans = 30_000
	base.Lambda = 0.02
	base.WaitPeriod = 500
	base.Seed = 12
	lambdaHot, lambdaCalm := 0.2, 0.02
	uncoopHot, uncoopCalm := 0.6, 0.25
	return &Spec{
		Name: "churn-wave",
		Description: "Calm growth, then a 10000-tick churn wave (λ×10, 60% freeriders), then " +
			"calm again — the phase-delta machinery on a live community.",
		Base: base,
		Phases: []Phase{
			{Name: "wave hits", At: 10_000, Set: &world.Delta{
				Lambda: &lambdaHot, FracUncoop: &uncoopHot,
			}},
			{Name: "wave passes", At: 20_000, Set: &world.Delta{
				Lambda: &lambdaCalm, FracUncoop: &uncoopCalm,
			}},
		},
	}
}

// ChurnSteady is the steady-state churn workload at half paper scale:
// the paper's Table 1 community with a departure clock running against
// the arrival clock, a quarter of the departures abrupt crashes, and
// two-fifths of the departed peers returning with their reputation
// restored from their (migrating) score managers. The paper's model
// never removes members; this is the extension scenario that exercises
// score-manager state migration under sustained membership loss.
func ChurnSteady() *Spec {
	base := config.Default()
	base.NumInit = 250
	base.NumTrans = 250_000
	base.WaitPeriod = 500
	base.SampleEvery = 2_500
	base.Seed = 29
	base.Churn = churn.Params{
		Mu:           0.005,
		CrashFrac:    0.25,
		RejoinProb:   0.4,
		DowntimeMean: 2_500,
	}
	return &Spec{
		Name: "churn-steady",
		Description: "Half-paper-scale community under steady churn: departures at μ=0.005 against " +
			"λ=0.01 arrivals, 25% crashes, 40% rejoins; reputation state migrates across every arc change.",
		Base: base,
	}
}

// ChurnHeavytail is the heavy-tailed session workload calibrated against
// measured P2P session traces rather than the memoryless model: per-peer
// Pareto(α=1.5) session clocks, armed at admission, replace the global
// departure rate. The calibration maps the published shape — median
// sessions of roughly an hour against a waiting period of minutes, with
// a long tail of near-permanent residents (Saroiu et al.'s Gnutella and
// Napster measurements) — onto simulator time: the waiting period T=500
// stands in for ~5 minutes, so the Pareto scale is chosen to put the
// median session at ~26·T (mean 50000 ticks ⇒ xm = mean/3 ≈ 16667,
// median = xm·2^(1/α) ≈ 26500 ticks ≈ an hour) while α=1.5 keeps the
// measured many-short-visits/few-long-residents imbalance. Against the
// exponential model at the same mean, most departures now hit young
// peers and the long tail anchors the replica sets — the comparison the
// "sessions" experiment sweeps.
func ChurnHeavytail() *Spec {
	base := config.Default()
	base.NumInit = 250
	base.NumTrans = 250_000
	base.WaitPeriod = 500
	base.SampleEvery = 2_500
	base.Seed = 37
	base.Churn = churn.Params{
		SessionDist:  churn.SessionPareto,
		SessionMean:  50_000,
		CrashFrac:    0.25,
		RejoinProb:   0.4,
		DowntimeMean: 2_500,
	}
	return &Spec{
		Name: "churn-heavytail",
		Description: "Pareto(α=1.5) session clocks calibrated to measured P2P traces (median ≈ 26 " +
			"waiting periods, heavy resident tail) on the half-paper-scale community; sessions, not rates.",
		Base: base,
	}
}

// StakeChurn is the admission-economics workload under churn: a growing
// community whose members keep leaving (a quarter of them for good)
// while introductions are in flight, with the stake-lifecycle clock
// armed. Without the timeout every stake whose newcomer or introducer
// departs before the audit settles hangs in limbo forever; with it each
// stake ends in exactly one terminal state — settled by the audit,
// refunded to a surviving party, or stranded (counted) when nobody is
// left to pay — and offline newcomers' stake records expire under the
// same TTL instead of accreting. The timeout (12000 ticks) deliberately
// sits above the typical audit latency (auditTrans=10 completions at a
// few-hundred-peer population), so the audit remains the common path and
// the clock only sweeps up what churn orphans.
func StakeChurn() *Spec {
	base := config.Default()
	base.NumInit = 150
	base.NumTrans = 100_000
	base.Lambda = 0.02
	base.WaitPeriod = 500
	base.AuditTrans = 10
	base.SampleEvery = 2_500
	base.Seed = 41
	base.Churn = churn.Params{
		Mu:           0.008,
		CrashFrac:    0.3,
		RejoinProb:   0.35,
		DowntimeMean: 2_000,
	}
	base.StakeTimeout = 12_000
	return &Spec{
		Name: "stake-churn",
		Description: "Churn-aware admission economics: μ=0.008 departures against λ=0.02 arrivals with " +
			"the 12000-tick stake clock armed — orphaned stakes refund to survivors, strand when both parties " +
			"are gone, and offline stake records expire under the TTL.",
		Base: base,
	}
}

// FlashCrowd is the flash-crowd-then-exodus stress: a calm community
// takes a 10000-tick arrival flood, then the crowd stampedes out (the
// departure rate spikes 40×, half of it crashes) before calm returns.
// The delta machinery re-arms both Poisson clocks mid-run.
func FlashCrowd() *Spec {
	base := config.Default()
	base.NumInit = 150
	base.NumTrans = 60_000
	base.Lambda = 0.02
	base.WaitPeriod = 500
	base.Seed = 23
	base.Churn = churn.Params{
		Mu:           0.002,
		CrashFrac:    0.1,
		RejoinProb:   0.3,
		DowntimeMean: 2_000,
	}
	lambdaHot, lambdaCalm := 0.3, 0.02
	uncoopHot, uncoopCalm := 0.4, 0.25
	muHot, muCalm := 0.08, 0.002
	crashHot, crashCalm := 0.5, 0.1
	return &Spec{
		Name: "flash-crowd",
		Description: "Flash crowd then exodus: λ×15 arrival flood for 10000 ticks, then departures " +
			"spike 40× (half crashes) as the crowd leaves, then calm — churn deltas on both clocks.",
		Base: base,
		Phases: []Phase{
			{Name: "flash crowd", At: 15_000, Set: &world.Delta{
				Lambda: &lambdaHot, FracUncoop: &uncoopHot,
			}},
			{Name: "exodus", At: 25_000, Set: &world.Delta{
				Lambda: &lambdaCalm, FracUncoop: &uncoopCalm,
				Mu: &muHot, CrashFrac: &crashHot,
			}},
			{Name: "calm", At: 40_000, Set: &world.Delta{
				Mu: &muCalm, CrashFrac: &crashCalm,
			}},
		},
	}
}

// Mega is the million-peer world ROADMAP item 1 calls for: 10^6 admitted
// peers held in the arena memory layout (index-addressed slots, slab
// peer records, lazy finger tables), with null signing — the fidelity
// opt-out built for exactly this scale — light churn with the record
// lease armed so departures recycle slots, and a short transaction tail
// driving the batched credit-delivery bus. The point is the footprint,
// not the dynamics: arrivals and departures are a rounding error against
// the standing million, and the run is long enough only to prove the
// community transacts and admits at full size.
func Mega() *Spec {
	base := config.Default()
	base.NumInit = 1_000_000
	base.NumTrans = 2_000
	base.Lambda = 0.1
	base.WaitPeriod = 500
	base.SampleEvery = 1_000
	base.NullSign = true
	base.Seed = 10
	base.Churn = churn.Params{
		Mu:           0.05,
		CrashFrac:    0.25,
		RejoinProb:   0.5,
		DowntimeMean: 300,
		LeaseTTL:     600,
	}
	return &Spec{
		Name: "mega",
		Description: "One million admitted peers in the arena layout under null signing: light " +
			"leased churn recycles slots, a short transaction tail exercises the batched bus; " +
			"the scenario exists to pin the memory footprint, not the dynamics.",
		Base: base,
	}
}

// SMWipeout is the durability-limit experiment: a newcomer earns
// standing, every one of its score managers crashes in a single
// membership event (the only data-loss case — the wipeout counter
// records it), the peer rebuilds its reputation from zero through
// fresh transactions, then departs gracefully and rejoins with the
// rebuilt standing restored by its new score managers.
func SMWipeout() *Spec {
	base := config.Default()
	base.NumInit = 60
	base.NumTrans = 30_000
	base.Lambda = 0
	base.WaitPeriod = 200
	base.AuditTrans = 10
	base.Seed = 31
	base.Churn = churn.Params{Migrate: true}
	return &Spec{
		Name: "sm-wipeout",
		Description: "A newcomer's entire score-manager set crashes in one tick — the only way churn " +
			"loses state (counted as a wipeout); the peer rebuilds, departs, and rejoins restored.",
		Base: base,
		Phases: []Phase{
			{Name: "victim enters", At: 0, Inject: []Injection{{
				As: "victim", Class: "cooperative", Style: "selective",
				Introducer: Selector{Style: "naive", FallbackFirst: true},
			}}},
			{Name: "replica wipeout", At: 10_000, Depart: &Departure{
				ScoreManagersOf: &Selector{Ref: "victim"},
				Crash:           true,
			}},
			{Name: "victim departs", At: 18_000, Depart: &Departure{
				Peers: &Selector{Ref: "victim"},
			}},
			{Name: "victim returns", At: 24_000, Rejoin: []string{"victim"}},
		},
	}
}

// Diurnal is the nonstationary-workload scenario: the repeating
// day/night rate program of the diurnal preset (busy plateau, dusk
// ramp, quiet night, dawn ramp — 30000-tick cycles) plus a second-day
// flash-crowd spike, driven through Lewis–Shedler thinning instead of
// the homogeneous λ knob. The run spans two full cycles so both ramps
// and the spike land, and the config's Lambda is zeroed to make the
// rate program visibly the only arrival source.
func Diurnal() *Spec {
	base := config.Default()
	base.NumInit = 150
	base.NumTrans = 60_000
	base.Lambda = 0
	base.WaitPeriod = 500
	base.SampleEvery = 2_500
	base.Seed = 61
	base.Workload = workload.Diurnal()
	return &Spec{
		Name: "diurnal",
		Description: "Two day/night cycles of the diurnal rate program (0.03 day plateau, ramps, " +
			"0.003 night, one 0.15 flash-crowd spike) driving arrivals by thinning; λ itself is zero.",
		Base: base,
	}
}

// CohortMix is the behavioural-cohort scenario: the heavytail-cohorts
// preset's three peer classes — long-lived residents, the Pareto
// mobile-churner calibration from churn-heavytail, and short-lived
// all-freerider freeloaders demanding twice their share of
// transactions — mixed 20/50/30 over a steady arrival stream. Cohort
// session plans drive departures, crashes and rejoins; no global churn
// block is set, so every lifecycle event here is cohort-driven.
func CohortMix() *Spec {
	base := config.Default()
	base.NumInit = 200
	base.NumTrans = 80_000
	base.Lambda = 0.03
	base.WaitPeriod = 500
	base.SampleEvery = 2_500
	base.Seed = 53
	base.Workload = workload.HeavytailCohorts()
	return &Spec{
		Name: "cohort-mix",
		Description: "Three behavioural cohorts (20% residents, 50% Pareto mobile-churners, 30% " +
			"double-demand freeloaders) mixed over λ=0.03 arrivals; cohort session plans drive all churn.",
		Base: base,
	}
}

// TraitorMilking scripts the reputation-milking attack of the extension
// experiments: three peers enter honestly, pass their audits (returning
// the introducers' stakes), and defect mid-run; ROCQ's sliding window
// collapses their reputations afterwards.
func TraitorMilking() *Spec {
	base := config.Default()
	base.NumInit = 150
	base.NumTrans = 60_000
	base.Lambda = 0
	base.WaitPeriod = 500
	base.AuditTrans = 10
	base.Seed = 17
	return &Spec{
		Name: "traitor",
		Description: "Three reputation milkers enter honestly, pass the one-shot audit, then " +
			"defect 20000 ticks in; the sliding window contains what the audit cannot.",
		Base: base,
		Phases: []Phase{
			{Name: "milkers enter", At: 0, Inject: []Injection{{
				As: "traitor", Class: "cooperative", Style: "selective",
				Introducer: Selector{Style: "naive", FallbackFirst: true},
				Count:      3, SpacedBy: 501,
				DefectAfter: 20_000,
			}}},
		},
	}
}
