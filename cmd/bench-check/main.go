// Command bench-check is the benchmark regression gate: it compares the
// custom shape metrics emitted by a short-mode `go test -bench` run
// against the machine-readable `shape_gate` section of a committed
// BENCH_*.json trajectory file, within a tolerance band.
//
// The simulation is deterministic, so the shape metrics (final
// populations, success rates, admission counts — everything reportShape
// emits) reproduce exactly on any machine; the band only absorbs the
// limited precision of the benchmark output format. Timings (ns/op,
// B/op, allocs/op) are machine-dependent and are never gated.
//
// Usage:
//
//	go test -short -run '^$' -bench . -benchtime 1x . | bench-check -bench BENCH_10.json
//	bench-check -bench BENCH_10.json -input bench.out
//
// Exit status is 0 when every gated metric is within band, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchgate"
)

func main() {
	benchPath := flag.String("bench", "", "committed BENCH_*.json file holding the shape_gate section")
	input := flag.String("input", "-", "benchmark output to check ('-' = stdin)")
	flag.Parse()
	if *benchPath == "" || flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: bench-check -bench BENCH_N.json [-input bench.out]")
		os.Exit(2)
	}

	data, err := os.ReadFile(*benchPath)
	if err != nil {
		fatal(err)
	}
	var file struct {
		ShapeGate *benchgate.Gate `json:"shape_gate"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		fatal(fmt.Errorf("%s: %w", *benchPath, err))
	}
	if file.ShapeGate == nil {
		fatal(fmt.Errorf("%s: no shape_gate section", *benchPath))
	}

	var out []byte
	if *input == "-" {
		out, err = io.ReadAll(os.Stdin)
	} else {
		out, err = os.ReadFile(*input)
	}
	if err != nil {
		fatal(err)
	}

	results := benchgate.Check(file.ShapeGate, benchgate.Parse(string(out)))
	failed := false
	for _, r := range results {
		status := "ok"
		if !r.OK {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s.%s: got %v, want %v (band ±%v)\n", status, r.Benchmark, r.Metric, r.Got, r.Want, r.Band)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "bench-check: shape metrics drifted out of band; if the change is intentional, refresh the shape_gate section of the BENCH file and say why in the PR")
		os.Exit(1)
	}
	fmt.Printf("bench-check: %d metrics within band\n", len(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-check:", err)
	os.Exit(1)
}
