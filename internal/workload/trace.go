package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// TraceFormat is the versioned format tag every trace opens with. Bump
// the suffix when the line schema changes incompatibly; decoders reject
// other versions instead of guessing.
const TraceFormat = "replend-trace/v1"

// Trace event operations.
const (
	// OpArrival is a generated arrival; replay re-drives these.
	OpArrival = "arrival"
	// OpDepart is a departure of an admitted peer (Detail "leave" or
	// "crash"); informational under replay — the replayed peers' own
	// plans reproduce them.
	OpDepart = "depart"
	// OpRejoin is a departed peer returning; informational under replay.
	OpRejoin = "rejoin"
)

// Peer class and introducer-style names as they appear in trace events —
// the String() forms of peer.Class and peer.Style. (The peer package
// imports this one for Plan, so the literals live here.)
const (
	ClassCooperative   = "cooperative"
	ClassUncooperative = "uncooperative"
	StyleNaive         = "naive"
	StyleSelective     = "selective"
)

// Header is the first line of a trace file.
type Header struct {
	// Format must be TraceFormat.
	Format string `json:"format"`
	// Scenario names the run the trace was recorded from (informational).
	Scenario string `json:"scenario,omitempty"`
	// Seed is the recorded run's seed (informational; replay identity
	// additionally needs the same config and seed).
	Seed uint64 `json:"seed,omitempty"`
}

// Event is one workload trace line. Arrival events carry everything
// replay needs to re-drive the admission (class, style, cohort, session
// plan); departure and rejoin events document the recorded run and are
// skipped by replay, whose peers reproduce them from their plans.
type Event struct {
	// At is the event tick.
	At int64 `json:"at"`
	// Op is the operation: "arrival", "depart" or "rejoin".
	Op string `json:"op"`
	// Class is the arriving peer's behaviour class name; empty on an
	// arrival means replay draws it live.
	Class string `json:"class,omitempty"`
	// Style is the arriving peer's introducer style name; empty on an
	// arrival means replay draws it live.
	Style string `json:"style,omitempty"`
	// Cohort names the assigned cohort, if any.
	Cohort string `json:"cohort,omitempty"`
	// Peer is the short identifier of the subject peer (informational:
	// replayed runs mint their own identifiers).
	Peer string `json:"peer,omitempty"`
	// Detail qualifies the op ("leave" or "crash" on departures).
	Detail string `json:"detail,omitempty"`
	// Plan is the visit plan drawn at this arrival, if any.
	Plan *Plan `json:"plan,omitempty"`
}

func (e Event) validate() error {
	if e.At < 0 {
		return fmt.Errorf("At %d negative", e.At)
	}
	switch e.Op {
	case OpArrival, OpDepart, OpRejoin:
	default:
		return fmt.Errorf("unknown op %q", e.Op)
	}
	switch e.Class {
	case "", ClassCooperative, ClassUncooperative:
	default:
		return fmt.Errorf("unknown class %q", e.Class)
	}
	switch e.Style {
	case "", StyleNaive, StyleSelective:
	default:
		return fmt.Errorf("unknown style %q", e.Style)
	}
	if p := e.Plan; p != nil {
		switch {
		case p.Mean < 0 || p.Session < 0 || p.Rejoin < 0 || p.DowntimeMean < 0:
			return fmt.Errorf("negative plan duration")
		case p.CrashFrac < 0 || p.CrashFrac > 1:
			return fmt.Errorf("plan CrashFrac %v out of [0,1]", p.CrashFrac)
		case p.RejoinProb < 0 || p.RejoinProb > 1:
			return fmt.Errorf("plan RejoinProb %v out of [0,1]", p.RejoinProb)
		}
	}
	return nil
}

// ValidateEvents checks an event sequence: every event well-formed and
// timestamps non-decreasing.
func ValidateEvents(events []Event) error {
	last := int64(0)
	for i, e := range events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("workload: trace event %d: %w", i, err)
		}
		if e.At < last {
			return fmt.Errorf("workload: trace event %d: At %d before predecessor's %d", i, e.At, last)
		}
		last = e.At
	}
	return nil
}

// WriteTrace writes a trace: the header line, then one JSON line per
// event. The header's Format field is stamped unconditionally.
func WriteTrace(w io.Writer, hdr Header, events []Event) error {
	hdr.Format = TraceFormat
	enc := json.NewEncoder(w)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("workload: encoding trace header: %w", err)
	}
	for i := range events {
		if err := enc.Encode(events[i]); err != nil {
			return fmt.Errorf("workload: encoding trace event %d: %w", i, err)
		}
	}
	return nil
}

// ReadTrace parses a trace. The decoder is strict — unknown fields,
// missing or mismatched header, unknown ops, decreasing timestamps and
// trailing garbage are all errors, never panics — so corrupt or
// version-skewed traces fail loudly instead of replaying nonsense.
func ReadTrace(r io.Reader) (Header, []Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var hdr Header
	var events []Event
	sawHeader := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if !sawHeader {
			if err := strictUnmarshal([]byte(text), &hdr); err != nil {
				return Header{}, nil, fmt.Errorf("workload: trace line %d (header): %w", line, err)
			}
			if hdr.Format != TraceFormat {
				return Header{}, nil, fmt.Errorf("workload: trace format %q, want %q", hdr.Format, TraceFormat)
			}
			sawHeader = true
			continue
		}
		var ev Event
		if err := strictUnmarshal([]byte(text), &ev); err != nil {
			return Header{}, nil, fmt.Errorf("workload: trace line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return Header{}, nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if !sawHeader {
		return Header{}, nil, fmt.Errorf("workload: trace has no header line (want %q)", TraceFormat)
	}
	if err := ValidateEvents(events); err != nil {
		return Header{}, nil, err
	}
	return hdr, events, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields and
// trailing data on the line.
func strictUnmarshal(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after value")
	}
	return nil
}

// Recorder collects the workload events of a live run for export. It is
// an observability sink like trace.Log: attaching one changes no
// simulation state and no draw.
type Recorder struct {
	header Header
	events []Event
}

// NewRecorder returns a recorder that will stamp the given header.
func NewRecorder(hdr Header) *Recorder { return &Recorder{header: hdr} }

// Record appends one event.
func (r *Recorder) Record(ev Event) { r.events = append(r.events, ev) }

// Events returns the recorded events (not a copy; callers treat it as
// read-only).
func (r *Recorder) Events() []Event { return r.events }

// Encode renders the full trace file.
func (r *Recorder) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.header, r.events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
