package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Fig1 reproduces Figure 1, "Growth in Number of uncooperative vs
// cooperative peers": λ=0.1, 50 000 time units, random and scale-free
// topologies, everything else at Table 1 defaults. The paper's findings:
// the number of uncooperative peers grows linearly with the cooperative
// count but with slope well below the arriving ratio of 1/3, and the
// growth is independent of topology.
type Fig1 struct {
	// Per topology: averaged cooperative and uncooperative population
	// series over time.
	Coop   map[topology.Kind]*metrics.Series
	Uncoop map[topology.Kind]*metrics.Series
	// Final averaged counts.
	FinalCoop   map[topology.Kind]float64
	FinalUncoop map[topology.Kind]float64
	// Slope is uncoop admitted per coop admitted (excluding founders).
	Slope map[topology.Kind]float64
}

// fig1Config is the paper's setup for this experiment.
func fig1Config() config.Config {
	c := config.Default()
	c.Lambda = 0.1
	c.NumTrans = 50_000
	return c
}

// RunFig1 executes the experiment at the given scale.
func RunFig1(opt Options) (*Fig1, error) {
	opt = opt.withDefaults()
	out := &Fig1{
		Coop:        map[topology.Kind]*metrics.Series{},
		Uncoop:      map[topology.Kind]*metrics.Series{},
		FinalCoop:   map[topology.Kind]float64{},
		FinalUncoop: map[topology.Kind]float64{},
		Slope:       map[topology.Kind]float64{},
	}
	for i, kind := range []topology.Kind{topology.Random, topology.PowerLaw} {
		cfg := opt.apply(fig1Config())
		cfg.Topology = kind
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		if out.Coop[kind], err = mergeSeriesOf(rs, "coop-"+string(kind), func(r Replica) *metrics.Series { return r.Metrics.CoopCount }); err != nil {
			return nil, err
		}
		if out.Uncoop[kind], err = mergeSeriesOf(rs, "uncoop-"+string(kind), func(r Replica) *metrics.Series { return r.Metrics.UncoopCount }); err != nil {
			return nil, err
		}
		out.FinalCoop[kind] = meanOf(rs, func(r Replica) int64 { return r.Metrics.CoopInSystem })
		out.FinalUncoop[kind] = meanOf(rs, func(r Replica) int64 { return r.Metrics.UncoopInSystem })
		admittedCoop := meanOf(rs, func(r Replica) int64 { return r.Metrics.AdmittedCoop })
		admittedUncoop := meanOf(rs, func(r Replica) int64 { return r.Metrics.AdmittedUncoop })
		if admittedCoop > 0 {
			out.Slope[kind] = admittedUncoop / admittedCoop
		}
	}
	return out, nil
}

// Name implements Report.
func (f *Fig1) Name() string { return "fig1" }

// Table renders the comparison the figure makes.
func (f *Fig1) Table() string {
	t := &TextTable{
		Title:  "Figure 1 — uncooperative vs cooperative peers (λ=0.1)",
		Header: []string{"topology", "final coop", "final uncoop", "uncoop admitted per coop admitted"},
	}
	for _, k := range []topology.Kind{topology.Random, topology.PowerLaw} {
		t.AddRow(string(k), f.FinalCoop[k], f.FinalUncoop[k], f.Slope[k])
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString(fmt.Sprintf("\npaper: linear growth, slope ≪ 1/3 (≈0.125), topology-independent\n"))
	return b.String()
}

// CSV renders the plotted series: uncooperative count against cooperative
// count, per topology (the figure's axes).
func (f *Fig1) CSV() string {
	var b strings.Builder
	b.WriteString("coop_random,uncoop_random,coop_powerlaw,uncoop_powerlaw\n")
	r, p := f.Coop[topology.Random], f.Coop[topology.PowerLaw]
	ru, pu := f.Uncoop[topology.Random], f.Uncoop[topology.PowerLaw]
	n := len(r.Points)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%g,%g,%g,%g\n", r.Points[i].V, ru.Points[i].V, p.Points[i].V, pu.Points[i].V)
	}
	return b.String()
}
