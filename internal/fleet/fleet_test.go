package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/rng"
)

// tinyConfig is a sub-second work unit.
func tinyConfig(t *testing.T) json.RawMessage {
	t.Helper()
	c := config.Default()
	c.NumInit = 30
	c.NumTrans = 2_000
	c.Lambda = 0.05
	c.WaitPeriod = 100
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// tinyJobs builds n config units with keyed-split seeds.
func tinyJobs(t *testing.T, n int) []Job {
	t.Helper()
	cfg := tinyConfig(t)
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Kind: KindConfig, Config: cfg, Seed: rng.DeriveSeed(77, uint64(i))}
	}
	return jobs
}

// mustJSON canonicalizes a result for byte comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &envelope{Type: msgJob, Job: &Job{Unit: 3, Kind: KindConfig, Config: json.RawMessage(`{"numInit":1}`), Seed: 9}}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != msgJob || out.Job == nil || out.Job.Unit != 3 || out.Job.Seed != 9 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("expected clean EOF at frame boundary, got %v", err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestFleetMatchesDirectExecution is the purity contract at the package
// level: whatever the scheduler does, the result of unit i is RunJob of
// job i, byte for byte.
func TestFleetMatchesDirectExecution(t *testing.T) {
	jobs := tinyJobs(t, 6)
	want := make([][]byte, len(jobs))
	for i := range jobs {
		j := jobs[i]
		j.Unit = i
		res := RunJob(&j)
		if res.Err != "" {
			t.Fatalf("direct unit %d: %s", i, res.Err)
		}
		want[i] = mustJSON(t, res)
	}
	f, err := New(Config{Workers: 3, Spawn: PipeSpawn(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range got {
		res.Epoch = 0 // batch bookkeeping, not payload
		if !bytes.Equal(mustJSON(t, res), want[i]) {
			t.Fatalf("unit %d differs between fleet and direct execution", i)
		}
	}
}

// TestFleetShardPermutation pins the RNG-audit requirement: a unit's
// result is a pure function of its job, so permuting the batch order,
// changing the worker count, or re-running a batch reproduces the same
// per-job results.
func TestFleetShardPermutation(t *testing.T) {
	jobs := tinyJobs(t, 5)
	perm := []int{4, 2, 0, 3, 1}

	run := func(workers int, order []int) map[uint64][]byte {
		f, err := New(Config{Workers: workers, Spawn: PipeSpawn(), Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		batch := make([]Job, len(order))
		for i, j := range order {
			batch[i] = jobs[j]
		}
		res, err := f.Run(batch)
		if err != nil {
			t.Fatal(err)
		}
		out := map[uint64][]byte{}
		for i, r := range res {
			r.Unit, r.Epoch = 0, 0 // scheduling metadata, not payload
			out[batch[i].Seed] = mustJSON(t, r)
		}
		return out
	}

	base := run(1, []int{0, 1, 2, 3, 4})
	for name, other := range map[string]map[uint64][]byte{
		"3 workers, permuted": run(3, perm),
		"2 workers, in order": run(2, []int{0, 1, 2, 3, 4}),
	} {
		for seed, want := range base {
			if !bytes.Equal(other[seed], want) {
				t.Fatalf("%s: seed %d result differs from the 1-worker baseline", name, seed)
			}
		}
	}
}

// fakeWorker speaks just enough protocol to die on purpose: it sends a
// hello, then hands each incoming job to behave. Returning false closes
// the transport (the worker "dies").
func fakeWorker(conn io.ReadWriteCloser, behave func(job *Job, send func(*envelope) error) bool) {
	var mu sync.Mutex
	send := func(env *envelope) error {
		mu.Lock()
		defer mu.Unlock()
		return writeFrame(conn, env)
	}
	if send(&envelope{Type: msgHello, Hello: &hello{Proto: ProtoVersion}}) != nil {
		conn.Close()
		return
	}
	for {
		env, err := readFrame(conn)
		if err != nil {
			conn.Close()
			return
		}
		if env.Type != msgJob {
			continue
		}
		if !behave(env.Job, send) {
			conn.Close()
			return
		}
	}
}

// TestWorkerDeathRequeues kills a worker mid-unit and expects the batch
// to finish correctly on the survivors.
func TestWorkerDeathRequeues(t *testing.T) {
	real := PipeSpawn()
	spawned := 0
	spawn := func(i int) (io.ReadWriteCloser, error) {
		spawned++
		if spawned == 1 {
			// The first worker accepts one job and dies without a result.
			coord, worker := pipePair()
			go fakeWorker(worker, func(*Job, func(*envelope) error) bool { return false })
			return coord, nil
		}
		return real(i)
	}
	jobs := tinyJobs(t, 4)
	want := make([][]byte, len(jobs))
	for i := range jobs {
		j := jobs[i]
		j.Unit = i
		want[i] = mustJSON(t, RunJob(&j))
	}
	f, err := New(Config{Workers: 2, Spawn: spawn, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range got {
		res.Epoch = 0 // batch bookkeeping, not payload
		if !bytes.Equal(mustJSON(t, res), want[i]) {
			t.Fatalf("unit %d differs after a worker death", i)
		}
	}
}

// TestUnitRetriesExhaust pins the failure mode: when every attempt at a
// unit dies with the worker, the batch fails instead of hanging.
func TestUnitRetriesExhaust(t *testing.T) {
	spawn := func(int) (io.ReadWriteCloser, error) {
		coord, worker := pipePair()
		go fakeWorker(worker, func(*Job, func(*envelope) error) bool { return false })
		return coord, nil
	}
	f, err := New(Config{Workers: 1, Spawn: spawn, MaxRetries: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(tinyJobs(t, 1)); err == nil {
		t.Fatal("batch succeeded though every worker died")
	}
}

// TestHeartbeatTimeoutReapsSilentWorker wedges a worker (it accepts a
// job, then goes silent without closing the transport — the remote-hang
// case) and expects the coordinator to reap it and finish elsewhere.
func TestHeartbeatTimeoutReapsSilentWorker(t *testing.T) {
	real := PipeSpawn()
	spawned := 0
	spawn := func(i int) (io.ReadWriteCloser, error) {
		spawned++
		if spawned == 1 {
			coord, worker := pipePair()
			go fakeWorker(worker, func(*Job, func(*envelope) error) bool {
				select {} // wedge: no result, no heartbeat, no close
			})
			return coord, nil
		}
		return real(i)
	}
	f, err := New(Config{Workers: 2, Spawn: spawn, HeartbeatTimeout: 400 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Run(tinyJobs(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range got {
		if res == nil || res.Config == nil {
			t.Fatalf("unit %d missing after silent-worker reap", i)
		}
	}
}

// TestStragglerRedispatch wedges one worker while it keeps heartbeating
// (a healthy-but-slow host) and expects the straggling unit to be
// duplicated onto an idle worker and the batch to finish.
func TestStragglerRedispatch(t *testing.T) {
	real := PipeSpawn()
	spawned := 0
	spawn := func(i int) (io.ReadWriteCloser, error) {
		spawned++
		if spawned == 1 {
			coord, worker := pipePair()
			go fakeWorker(worker, func(_ *Job, send func(*envelope) error) bool {
				for { // heartbeat forever, never finish the unit
					time.Sleep(50 * time.Millisecond)
					if send(&envelope{Type: msgHeartbeat}) != nil {
						return false
					}
				}
			})
			return coord, nil
		}
		return real(i)
	}
	f, err := New(Config{
		Workers: 2, Spawn: spawn,
		StragglerFactor: 1, StragglerMin: 100 * time.Millisecond,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Run(tinyJobs(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range got {
		if res == nil || res.Config == nil {
			t.Fatalf("unit %d missing after straggler re-dispatch", i)
		}
	}
}

// TestRemoteWorkerOverTCP joins a worker through the TCP listener with a
// token and runs a batch on it alone.
func TestRemoteWorkerOverTCP(t *testing.T) {
	f, err := New(Config{Listen: "127.0.0.1:0", Token: "sesame", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan error, 1)
	go func() {
		done <- DialWorker(f.Addr(), "sesame", WorkerOptions{HeartbeatInterval: 50 * time.Millisecond})
	}()
	jobs := tinyJobs(t, 2)
	got, err := f.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range got {
		if res == nil || res.Config == nil {
			t.Fatalf("unit %d missing from remote run", i)
		}
	}
	f.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestRemoteWorkerBadTokenRejected proves the join gate: a wrong token
// never becomes a schedulable worker.
func TestRemoteWorkerBadTokenRejected(t *testing.T) {
	f, err := New(Config{Listen: "127.0.0.1:0", Token: "sesame", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	go DialWorker(f.Addr(), "wrong", WorkerOptions{HeartbeatInterval: 50 * time.Millisecond})
	deadline := time.After(2 * time.Second)
	for {
		f.mu.Lock()
		ready := 0
		for _, w := range f.workers {
			if w.ready {
				ready++
			}
		}
		n := len(f.workers)
		f.mu.Unlock()
		if ready > 0 {
			t.Fatal("bad-token worker became schedulable")
		}
		if n == 0 {
			return // dropped, as it should be
		}
		select {
		case <-deadline:
			t.Fatal("bad-token worker neither dropped nor rejected")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestDeterministicUnitErrorFailsFast: an invalid payload is a
// deterministic failure and must fail the batch, not burn retries.
func TestDeterministicUnitErrorFailsFast(t *testing.T) {
	f, err := New(Config{Workers: 1, Spawn: PipeSpawn(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Run([]Job{{Kind: KindConfig, Config: json.RawMessage(`{"numTrans":-4}`), Seed: 1}})
	if err == nil {
		t.Fatal("invalid unit succeeded")
	}
}

// TestRunJobUnknownKind covers the worker-side guard.
func TestRunJobUnknownKind(t *testing.T) {
	res := RunJob(&Job{Unit: 7, Kind: "nonsense"})
	if res.Err == "" || res.Unit != 7 {
		t.Fatalf("unknown kind not reported: %+v", res)
	}
}

// TestStaleEpochResultDropped pins the cross-batch guard: a straggler
// duplicate that loses its race can deliver after its batch returned,
// and its result must not be merged into the next batch at the same
// unit index — nor may its worker's death requeue a previous batch's
// unit into the live one.
func TestStaleEpochResultDropped(t *testing.T) {
	f := &Fleet{cfg: Config{}.withDefaults(), workers: map[int]*workerConn{}}
	f.cond = sync.NewCond(&f.mu)
	b := &batch{
		epoch:    2,
		results:  make([]*Result, 1),
		inflight: map[int]int{0: 1},
		retries:  make([]int, 1),
		started:  map[int]time.Time{},
		workers:  map[int]bool{},
	}
	f.batch = b
	// A zombie worker still holding unit 0 of the previous batch (epoch 1).
	w := &workerConn{id: 0, unit: 0, unitEpoch: 1}

	f.mu.Lock()
	f.handleResultLocked(w, &Result{Unit: 0, Epoch: 1, Config: &ConfigResult{}})
	f.mu.Unlock()
	if b.results[0] != nil || b.done != 0 {
		t.Fatal("stale-epoch result was merged into the live batch")
	}
	if b.inflight[0] != 1 {
		t.Fatalf("stale-epoch result changed the live batch's inflight count: %d", b.inflight[0])
	}
	if w.unit != -1 {
		t.Fatal("worker not released after delivering its stale result")
	}

	// A zombie dying mid-hold must not requeue its old unit into the
	// live batch either.
	z := &workerConn{id: 1, unit: 0, unitEpoch: 1, conn: &duplexConn{close: func() {}}}
	f.workers[z.id] = z
	f.dropWorker(z)
	if len(b.pending) != 0 || b.retries[0] != 0 {
		t.Fatalf("zombie death leaked into the live batch: pending=%v retries=%v", b.pending, b.retries)
	}

	// The genuine current-epoch result still lands.
	cur := &workerConn{id: 2, unit: 0, unitEpoch: 2}
	f.mu.Lock()
	f.handleResultLocked(cur, &Result{Unit: 0, Epoch: 2, Config: &ConfigResult{}})
	f.mu.Unlock()
	if b.results[0] == nil || b.done != 1 || b.inflight[0] != 0 {
		t.Fatal("current-epoch result was not merged")
	}
}

func TestSortedWorkerIDsIsDeterministic(t *testing.T) {
	m := map[int]*workerConn{7: nil, 0: nil, 3: nil, 12: nil, 1: nil}
	want := []int{0, 1, 3, 7, 12}
	for i := 0; i < 20; i++ {
		got := sortedWorkerIDs(m)
		if len(got) != len(want) {
			t.Fatalf("sortedWorkerIDs = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("sortedWorkerIDs = %v, want %v", got, want)
			}
		}
	}
}

// TestCloseWaitsForReaderGoroutines pins the Close contract: the Logf
// callback must never fire after Close returns. The reader goroutines'
// death paths log (dropWorker), and callers hand in a testing.T's Logf,
// which races with test completion if a reader outlives Close.
func TestCloseWaitsForReaderGoroutines(t *testing.T) {
	var mu sync.Mutex
	closed := false
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			t.Errorf("Logf fired after Close returned: "+format, args...)
		}
	}
	f, err := New(Config{Workers: 2, Spawn: PipeSpawn(), Logf: logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(tinyJobs(t, 2)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	mu.Lock()
	closed = true
	mu.Unlock()
	// Any straggling reader would log its death path in this window.
	time.Sleep(100 * time.Millisecond)
}
