// Package lending implements the paper's contribution: the reputation
// lending protocol by which an existing community member ("introducer")
// stakes a slice of its own reputation to bootstrap a new entrant.
//
// Protocol, following §2–§3 of the paper:
//
//  1. An arriving peer asks one existing member for an introduction. A
//     waiting period T must elapse between the request and the response,
//     whatever the decision, so the newcomer cannot usefully bombard the
//     community with concurrent requests.
//  2. If the introducer grants the request, it sends a *signed* lend order
//     to its own score managers: deduct introAmt from my reputation and
//     credit it to the newcomer. The order carries both identities and a
//     unique nonce so duplicates are rejected.
//  3. Each of the introducer's score managers debits the stake and
//     forwards a credit carrying the same signed order to every score
//     manager of the newcomer — full bipartite fan-out, so a single
//     crashed manager cannot lose the introduction.
//  4. A newcomer score manager applies the first credit it sees and
//     deduplicates the redundant copies by nonce. A credit bearing a
//     *different* nonce means the newcomer obtained two concurrent
//     introductions: its reputation is reset to zero and it is flagged
//     malicious.
//  5. After the newcomer completes auditTrans transactions its score
//     managers audit it. Satisfactory performance (reputation at or above
//     the audit threshold): the introducer's managers are told to return
//     the stake plus a reward, capped so reputation never exceeds 1.
//     Unsatisfactory: the introducer forfeits the stake (no message at
//     all is sent) and the newcomer's managers remove the lent amount,
//     flooring at 0.
//  6. Members whose reputation is below minIntroRep may not introduce
//     anyone; since minIntroRep > introAmt, lending can never drive a
//     reputation negative.
package lending

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/id"
	"repro/internal/rocq"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Params are the protocol constants (a slice of the paper's Table 1).
type Params struct {
	IntroAmt       float64  // reputation lent per introduction
	Reward         float64  // reward for introducing a cooperative peer
	MinIntroRep    float64  // reputation floor for acting as introducer
	AuditThreshold float64  // reputation deemed "satisfactory" at audit
	Wait           sim.Tick // waiting period T
	NumSM          int      // score managers per peer
}

// Validate checks the protocol constants.
func (p Params) Validate() error {
	switch {
	case p.IntroAmt <= 0 || p.IntroAmt > 1:
		return fmt.Errorf("lending: IntroAmt %v out of (0,1]", p.IntroAmt)
	case p.Reward < 0 || p.Reward > 1:
		return fmt.Errorf("lending: Reward %v out of [0,1]", p.Reward)
	case p.MinIntroRep <= p.IntroAmt:
		return fmt.Errorf("lending: MinIntroRep %v must exceed IntroAmt %v", p.MinIntroRep, p.IntroAmt)
	case p.AuditThreshold < 0 || p.AuditThreshold > 1:
		return fmt.Errorf("lending: AuditThreshold %v out of [0,1]", p.AuditThreshold)
	case p.Wait < 0:
		return fmt.Errorf("lending: negative wait period %d", p.Wait)
	case p.NumSM <= 0:
		return fmt.Errorf("lending: NumSM %d must be positive", p.NumSM)
	}
	return nil
}

// Network is the view of the community the protocol needs: current score
// manager placement and access to each node's reputation store. The
// simulation world implements it on top of the overlay ring.
type Network interface {
	// ScoreManagers returns the current score-manager node set for a peer.
	ScoreManagers(p id.ID) []id.ID
	// Store returns the reputation store hosted at the given node.
	Store(node id.ID) *rocq.Store
	// QueryReputation aggregates the peer's reputation across its current
	// score managers (rocq.QuerySet over their stores); false when no
	// manager knows the peer. Part of the interface so the network can
	// serve it from per-peer placement caches instead of a fresh
	// placement-plus-store walk per protocol decision.
	QueryReputation(p id.ID) (float64, bool)
}

// Reason classifies why an introduction attempt did not admit the peer.
type Reason int

// Refusal reasons; Fig. 4 and Fig. 6 plot the first two separately.
const (
	// RefusedByIntroducer: a selective introducer declined the newcomer.
	RefusedByIntroducer Reason = iota
	// RefusedIntroducerRep: the introducer agreed but its reputation is
	// below minIntroRep, so its score managers refuse the lend.
	RefusedIntroducerRep
	// RefusedProtocolFailure: no credit reached any of the newcomer's
	// score managers (only possible under injected faults).
	RefusedProtocolFailure
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case RefusedByIntroducer:
		return "refused-by-introducer"
	case RefusedIntroducerRep:
		return "refused-introducer-reputation"
	case RefusedProtocolFailure:
		return "refused-protocol-failure"
	}
	return fmt.Sprintf("Reason(%d)", int(r))
}

// Events receives protocol outcomes. Any nil callback is skipped.
type Events struct {
	// Admitted fires when the newcomer's bootstrap credit lands.
	Admitted func(newcomer, introducer id.ID, at sim.Tick)
	// Refused fires when an introduction attempt ends without admission.
	Refused func(newcomer, introducer id.ID, reason Reason, at sim.Tick)
	// AuditOutcome fires after the admission audit.
	AuditOutcome func(newcomer, introducer id.ID, satisfactory bool, at sim.Tick)
	// Flagged fires when a peer is caught soliciting duplicate
	// introductions.
	Flagged func(p id.ID, at sim.Tick)
	// StakeResolved fires when a stake leaves the pending state by any
	// path other than an ordinary settlement: refunded by the audit
	// timeout, or stranded (timeout with both parties gone, or a
	// satisfied audit whose introducer is gone for good).
	StakeResolved func(newcomer, introducer id.ID, state StakeState, at sim.Tick)
}

// Stats counts protocol activity. The mass fields are the stake-lifecycle
// ledger: every executed lend adds its amount to StakedMass and
// PendingMass, and every terminal transition moves exactly that amount
// from PendingMass into one of SettledMass, RefundedMass or StrandedMass,
// so StakedMass = SettledMass + RefundedMass + StrandedMass + PendingMass
// holds (to float addition error) at every instant.
type Stats struct {
	Requests          int64 // introduction requests begun
	Granted           int64 // introducer said yes (before the rep check)
	Admitted          int64
	RefusedSelective  int64
	RefusedRep        int64
	RefusedProtocol   int64
	AuditsSatisfied   int64 // stake returned + reward paid
	AuditsForfeited   int64 // stake lost, newcomer debited
	DuplicateAttempts int64 // newcomers punished for double introductions

	StakesRefunded int64 // stakes resolved by the audit timeout in a survivor's favour
	StakesStranded int64 // stakes lost with nobody to pay (counted, never silent)

	StakedMass   float64 // total reputation staked across executed lends
	SettledMass  float64 // closed by the audit (satisfied or forfeited)
	RefundedMass float64 // closed by the timeout in a survivor's favour
	StrandedMass float64 // lost: no surviving party could be paid
	PendingMass  float64 // still awaiting audit or timeout
}

// introRecord is the coordinator's note of one granted introduction: the
// stake behind the newcomer's admission, carrying its lifecycle state
// (see stake.go for the state machine).
type introRecord struct {
	introducer id.ID
	amount     float64
	nonce      uint64
	state      StakeState
}

// smLendState is the lending bookkeeping one score-manager node keeps.
type smLendState struct {
	seenLend   map[uint64]bool  // lend nonces already debited here
	seenReward map[uint64]bool  // audit-reward nonces already credited here
	bootNonce  map[id.ID]uint64 // newcomer -> nonce of its accepted credit
	flagged    map[id.ID]bool   // newcomers caught double-introducing
}

func newSMLendState() *smLendState {
	return &smLendState{
		seenLend:   make(map[uint64]bool),
		seenReward: make(map[uint64]bool),
		bootNonce:  make(map[id.ID]uint64),
		flagged:    make(map[id.ID]bool),
	}
}

// lendSlot is the per-peer arena record of the protocol: the registered
// signing identity and the node's score-manager bookkeeping, flattened
// into one ordinal-indexed slice instead of two id-keyed maps. Slots are
// recycled through the ordinal free-list when peers unregister, so
// refusal-heavy and churn-heavy runs stay dense. Ordinal values never
// feed output bytes — export iterates ids in sorted order — so a
// restored protocol may assign different ordinals without observable
// effect.
type lendSlot struct {
	ident transport.Identity
	sm    *smLendState
}

// Protocol is the lending coordinator plus the per-node score-manager
// logic. It is not safe for concurrent use (single-threaded simulation).
type Protocol struct {
	//replend:allow snapshotfields params come from config, which the world snapshot carries; New re-derives them on restore
	params Params
	//replend:allow snapshotfields wiring, re-injected by the restoring world at construction
	engine *sim.Engine
	//replend:allow snapshotfields wiring, re-injected by the restoring world at construction
	bus *transport.Bus
	//replend:allow snapshotfields wiring, re-injected by the restoring world at construction
	net Network
	//replend:allow snapshotfields wiring, re-injected by the restoring world at construction
	events Events

	// ords and slots are the protocol's per-peer arena: registration
	// assigns a dense ordinal, unregistration releases it, and the slot
	// slice holds identities and score-manager state in flat memory (see
	// lendSlot). identCount/smCount track how many slots hold each.
	ords  *arena.Ordinals
	slots []lendSlot
	//replend:allow snapshotfields derived slot-occupancy counter; restore re-registers every identity, which recounts it
	identCount int
	//replend:allow snapshotfields derived slot-occupancy counter; restore re-creates SM lending state on demand, which recounts it
	smCount int

	// tombs retains verification-only identities of departed peers that
	// had actually signed something: their envelopes may still be in
	// flight (the bus supports delayed delivery) and must keep verifying.
	// Peers that never signed leave nothing behind.
	tombs   map[id.ID]transport.Identity
	intro   map[id.ID]*introRecord
	flagged map[id.ID]bool

	// sigCache remembers envelopes that already verified, keyed by the
	// signature bytes with the signed order and key held in the value (a
	// hit must match all three — caching by signature alone would let a
	// tampered order ride on a previously verified signature). The
	// bipartite fan-out re-delivers the same envelope O(numSM²) times per
	// introduction; verifying each copy afresh would make Ed25519 dominate
	// the simulation.
	//replend:allow snapshotfields pure verification memo: dropping it on restore re-verifies the same envelopes to the same results
	sigCache map[string]verifiedSig

	// nullFallback, set when the community runs on null identities,
	// lets verifyEnv re-derive a departed sender's identity from its
	// identifier instead of keeping a tombstone per departed peer (null
	// identities are stateless; retaining them would defeat the
	// huge-sweep mode they exist for). Never set under real signing,
	// where an unsigned envelope must keep failing verification.
	//replend:allow snapshotfields derived from config.NullSign, which the world snapshot carries; restore re-applies it
	nullFallback bool

	// retainStakes keeps departed newcomers' stake records on the books
	// so the audit-timeout clock can still resolve them; the world sets
	// it exactly when a stake timeout is configured (see stake.go).
	//replend:allow snapshotfields derived from config.StakeTimeout, which the world snapshot carries; restore re-applies it
	retainStakes bool

	// spans, when set, times the lend fan-out (wall clock only — the
	// recorder is write-only from the protocol's side, so instrumentation
	// can never alter an outcome).
	//replend:allow snapshotfields observability-only wall-clock span recorder, re-attached by the caller after restore
	spans *telemetry.Spans

	// unbatched switches the bipartite fan-outs from the coalesced
	// SendBatch path back to per-message Sends. The two are
	// byte-equivalent by the transport contract; the per-message path is
	// retained as the reference arm of the batched-bus equivalence tests.
	//replend:allow snapshotfields delivery-mechanism toggle, byte-equivalent by contract; restore re-applies the caller's choice
	unbatched bool

	nonce uint64
	stats Stats
}

// Message kinds used on the bus.
const (
	kindLend   = "lend"
	kindCredit = "credit"
	kindReward = "reward"
)

// creditMsg carries the signed order from an introducer's score manager to
// a newcomer's score manager.
type creditMsg struct {
	env transport.Envelope
}

// rewardMsg tells an introducer's score manager to return the stake plus
// reward after a satisfactory audit. The signed envelope is materialised
// lazily: the bus delivers synchronously, and a receiving manager that has
// already credited this audit's nonce drops the message before examining
// the signature, so an envelope every receiver dedups is never signed at
// all — without that, the audit fan-out costs numSM signatures apiece.
type rewardMsg struct {
	order  transport.LendOrder       // for the pre-verification nonce dedup
	sign   func() transport.Envelope // signs the order on first need (idempotent)
	reward float64
}

// New builds a protocol instance over the given substrate.
func New(params Params, engine *sim.Engine, bus *transport.Bus, net Network, events Events) (*Protocol, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if engine == nil || bus == nil || net == nil {
		return nil, errors.New("lending: engine, bus and net are all required")
	}
	return &Protocol{
		params:   params,
		engine:   engine,
		bus:      bus,
		net:      net,
		events:   events,
		ords:     arena.NewOrdinals(),
		tombs:    make(map[id.ID]transport.Identity),
		intro:    make(map[id.ID]*introRecord),
		flagged:  make(map[id.ID]bool),
		sigCache: make(map[string]verifiedSig),
	}, nil
}

// ensureSlot returns the arena slot for pid, assigning an ordinal (and
// a zeroed slot) if the peer has none. The returned pointer is only
// valid until the next assignment — callers use it immediately.
func (p *Protocol) ensureSlot(pid id.ID) *lendSlot {
	if ord, ok := p.ords.Get(pid); ok {
		return &p.slots[ord]
	}
	ord := p.ords.Assign(pid)
	if int(ord) == len(p.slots) {
		p.slots = append(p.slots, lendSlot{})
	} else {
		p.slots[ord] = lendSlot{}
	}
	return &p.slots[ord]
}

// identityOf returns the registered signing identity held in pid's slot.
func (p *Protocol) identityOf(pid id.ID) (transport.Identity, bool) {
	if ord, ok := p.ords.Get(pid); ok {
		if ident := p.slots[ord].ident; ident != nil {
			return ident, true
		}
	}
	return nil, false
}

// sortedSlotIDs returns, in ascending identifier order, the ids of every
// slot for which has reports true — the arena replacement for sorting a
// map's keys at export time.
func (p *Protocol) sortedSlotIDs(has func(*lendSlot) bool) []id.ID {
	out := make([]id.ID, 0, p.ords.Len())
	for ord := 0; ord < p.ords.Cap(); ord++ {
		pid, ok := p.ords.ID(arena.Ordinal(ord))
		if !ok {
			continue
		}
		if has(&p.slots[ord]) {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// verifiedSig is the content a cached signature was verified over. LendOrder
// is a comparable struct, so the hit check is a plain equality plus a byte
// comparison of the key — no encoding, no allocation.
type verifiedSig struct {
	order transport.LendOrder
	pub   ed25519.PublicKey
}

// sign produces a signed envelope for the order and primes the
// verification cache with it: a signature this process just produced with
// a registered key is valid by construction, so the receiving score
// managers need not redo the Ed25519 math. Envelopes built any other way
// (forged, tampered, replayed under a different order) miss the cache and
// are verified in full. Null identities produce signatureless envelopes,
// which bypass the cache entirely (there is nothing to cache).
func (p *Protocol) sign(ident transport.Identity, order transport.LendOrder) transport.Envelope {
	env := ident.Sign(order)
	if len(env.Sig) > 0 {
		p.sigCache[string(env.Sig)] = verifiedSig{order: order, pub: env.Pub}
	}
	return env
}

// verifyEnv verifies an envelope against the registered identity of
// claimedBy, caching successful signature checks (the key-binding check
// against the registered identity is repeated every time; only the
// Ed25519 math is cached).
func (p *Protocol) verifyEnv(env transport.Envelope, claimedBy id.ID) bool {
	ident, ok := p.identityOf(claimedBy)
	if !ok {
		// Departed, but its envelopes may still be in flight: use the
		// retained tombstone, or re-derive the null identity when the
		// community runs unsigned.
		if ident, ok = p.tombs[claimedBy]; !ok {
			if !p.nullFallback || len(env.Sig) != 0 {
				return false
			}
			ident = transport.NewNullIdentity(claimedBy)
		}
	}
	if !ident.PublicEquals(env.Pub) {
		return false
	}
	if len(env.Sig) > 0 {
		if v, ok := p.sigCache[string(env.Sig)]; ok && v.order == env.Order && v.pub.Equal(env.Pub) {
			return true
		}
	}
	if ident.VerifyEnvelope(env) {
		if len(env.Sig) > 0 {
			p.sigCache[string(env.Sig)] = verifiedSig{order: env.Order, pub: env.Pub}
		}
		return true
	}
	return false
}

// SetNullFallback declares that the community runs on null identities,
// enabling stateless verification of departed senders' envelopes (see
// the nullFallback field). The world sets it once at construction.
func (p *Protocol) SetNullFallback(on bool) { p.nullFallback = on }

// SetSpans attaches a wall-clock span recorder to the protocol's lend
// fan-out; nil detaches it. Observability only: nothing the protocol
// decides can depend on it.
func (p *Protocol) SetSpans(s *telemetry.Spans) { p.spans = s }

// Stats returns a copy of the protocol counters.
func (p *Protocol) Stats() Stats { return p.stats }

// Params returns the protocol constants currently in force.
func (p *Protocol) Params() Params { return p.params }

// SetParams replaces the protocol constants mid-run, after validating
// them. Introductions already in their waiting period keep the wait they
// were scheduled with; every later decision (reputation floor, lend
// amount, reward, audit threshold) uses the new values. This is the hook
// scenario phases use for policy flips and parameter sweeps on a live
// community.
func (p *Protocol) SetParams(params Params) error {
	if err := params.Validate(); err != nil {
		return err
	}
	if params.NumSM != p.params.NumSM {
		return errors.New("lending: NumSM cannot change mid-run (score-manager placement is structural)")
	}
	p.params = params
	return nil
}

// RegisterPeer records a member's signing identity and attaches the
// score-manager message handler to its node (every member can become a
// score manager for someone). A rejoining peer re-registers with the
// identity it departed with.
func (p *Protocol) RegisterPeer(pid id.ID, ident transport.Identity) {
	slot := p.ensureSlot(pid)
	if slot.ident == nil {
		p.identCount++
	}
	slot.ident = ident
	delete(p.tombs, pid) // superseded by the live identity
	p.bus.Register(pid, p.handle(pid))
}

// Identity returns the registered signing identity of a member — the
// world stashes it across a departure so a rejoining peer keeps its key.
func (p *Protocol) Identity(pid id.ID) (transport.Identity, bool) {
	return p.identityOf(pid)
}

// UnregisterPeer forgets a departed member's signing identity and its
// score-manager state. Both are unreachable once the node has left the
// overlay — no placement returns it, so no message can arrive — but
// without eviction a high-refusal workload accretes one signer and one
// manager state per refused peer forever.
func (p *Protocol) UnregisterPeer(pid id.ID) {
	if ord, ok := p.ords.Get(pid); ok {
		slot := &p.slots[ord]
		if slot.ident != nil {
			if t := slot.ident.Tombstone(); t != nil {
				p.tombs[pid] = t // envelopes from this peer may still be in flight
			}
			p.identCount--
		}
		if slot.sm != nil {
			p.smCount--
		}
		p.slots[ord] = lendSlot{}
		p.ords.Release(pid)
	}
	// Departed peers keep no intro record: a rejoin re-admits through its
	// surviving reputation, not through the old introduction, and refused
	// peers must not leak records. The flagged set is deliberately kept:
	// it is punishment history, and Flagged may be queried after
	// departure. With a stake timeout configured the record survives the
	// departure instead — the timeout clock must still be able to refund
	// the introducer — and the world's TTL expiry drops it later.
	if !p.retainStakes {
		delete(p.intro, pid)
	}
}

// RegisteredPeers returns the number of signing identities on record
// (leak instrumentation for tests).
func (p *Protocol) RegisteredPeers() int { return p.identCount }

// ManagerStates returns the number of per-node score-manager lending
// states on record (leak instrumentation for tests).
func (p *Protocol) ManagerStates() int { return p.smCount }

// ArenaSlots returns (live, capacity) of the protocol's per-peer arena —
// how many ordinals are assigned and how many slots exist in total.
// Capacity bounded near the population's high-water mark is the
// free-list working: churned slots are recycled, not leaked.
func (p *Protocol) ArenaSlots() (live, capacity int) {
	return p.ords.Len(), p.ords.Cap()
}

// Tombstones returns the number of retained verification-only
// identities of departed peers (leak instrumentation for tests; always
// zero under null signing, whose identities are re-derived on demand).
func (p *Protocol) Tombstones() int { return len(p.tombs) }

// Flagged reports whether the peer was caught double-introducing.
func (p *Protocol) Flagged(pid id.ID) bool { return p.flagged[pid] }

// IntroducerOf returns the introducer recorded for a newcomer.
func (p *Protocol) IntroducerOf(newcomer id.ID) (id.ID, bool) {
	rec, ok := p.intro[newcomer]
	if !ok {
		return id.ID{}, false
	}
	return rec.introducer, true
}

// smState returns (allocating) the lending state of a node.
func (p *Protocol) smState(node id.ID) *smLendState {
	slot := p.ensureSlot(node)
	if slot.sm == nil {
		slot.sm = newSMLendState()
		p.smCount++
	}
	return slot.sm
}

// fanOut delivers the same payload to every destination — the bipartite
// credit-delivery primitive. Batched by default (one bus operation);
// the per-message reference path stays selectable for the equivalence
// tests.
func (p *Protocol) fanOut(from id.ID, kind string, payload any, to []id.ID) {
	if p.unbatched {
		for _, dst := range to {
			p.bus.Send(transport.Message{From: from, To: dst, Kind: kind, Payload: payload})
		}
		return
	}
	p.bus.SendBatch(from, kind, payload, to)
}

// SetBatchedDelivery selects between the coalesced SendBatch fan-out
// (the default) and per-message Sends. The two are byte-equivalent by
// the transport contract; the toggle exists so the equivalence tests
// can run both arms of that contract through the full protocol.
func (p *Protocol) SetBatchedDelivery(on bool) { p.unbatched = !on }

// Begin starts one introduction attempt: the newcomer has asked the given
// introducer, whose decision is already known (granted). Nothing is
// revealed to the newcomer until the waiting period elapses; then either
// the refusal is delivered or the lend executes. The scheduled events
// carry IntroWait payloads so a checkpoint can rebuild them.
func (p *Protocol) Begin(newcomer, introducer id.ID, granted bool) {
	p.stats.Requests++
	wait := IntroWait{Newcomer: newcomer, Introducer: introducer}
	if !granted {
		p.engine.AfterPayload(p.params.Wait, "intro-refuse", wait, p.refuseBody(newcomer, introducer))
		return
	}
	p.stats.Granted++
	p.engine.AfterPayload(p.params.Wait, "intro-lend", wait, p.lendBody(newcomer, introducer))
}

// refuseBody is the waiting-period event body delivering a refusal.
func (p *Protocol) refuseBody(newcomer, introducer id.ID) func() {
	return func() {
		p.stats.RefusedSelective++
		p.emitRefused(newcomer, introducer, RefusedByIntroducer)
	}
}

// lendBody is the waiting-period event body executing a granted lend.
func (p *Protocol) lendBody(newcomer, introducer id.ID) func() {
	return func() {
		p.executeLend(newcomer, introducer)
	}
}

func (p *Protocol) emitRefused(newcomer, introducer id.ID, reason Reason) {
	if p.events.Refused != nil {
		p.events.Refused(newcomer, introducer, reason, p.engine.Now())
	}
}

// executeLend runs step 2–4 of the protocol at the end of the waiting
// period.
func (p *Protocol) executeLend(newcomer, introducer id.ID) {
	defer p.spans.Start("lending-fanout")()
	rep, known := p.net.QueryReputation(introducer)
	if !known || rep < p.params.MinIntroRep {
		p.stats.RefusedRep++
		p.emitRefused(newcomer, introducer, RefusedIntroducerRep)
		return
	}
	introSMs := p.net.ScoreManagers(introducer)

	signer, ok := p.identityOf(introducer)
	if !ok {
		// The introducer departed during the waiting period: nobody can
		// sign the lend order, so the attempt fails like any other
		// protocol breakdown.
		p.stats.RefusedProtocol++
		p.emitRefused(newcomer, introducer, RefusedProtocolFailure)
		return
	}
	p.nonce++
	order := transport.LendOrder{
		Introducer: introducer,
		NewPeer:    newcomer,
		Amount:     p.params.IntroAmt,
		Nonce:      p.nonce,
	}
	env := p.sign(signer, order)

	// Box the payload once: the fan-out reuses the same immutable envelope
	// for every manager, so per-send interface boxing is pure allocation.
	var payload any = env
	p.fanOut(introducer, kindLend, payload, introSMs)

	// Admission check: did any of the newcomer's managers accept a credit?
	accepted := false
	for _, smNode := range p.net.ScoreManagers(newcomer) {
		if n, ok := p.smState(smNode).bootNonce[newcomer]; ok && n == order.Nonce {
			accepted = true
			break
		}
	}
	if p.flagged[newcomer] {
		// The duplicate-introduction punishment fired during this fan-out;
		// the peer is not admitted whatever else happened.
		return
	}
	if !accepted {
		p.stats.RefusedProtocol++
		p.emitRefused(newcomer, introducer, RefusedProtocolFailure)
		return
	}
	p.intro[newcomer] = &introRecord{introducer: introducer, amount: order.Amount, nonce: order.Nonce}
	p.stats.StakedMass += order.Amount
	p.stats.PendingMass += order.Amount
	p.stats.Admitted++
	if p.events.Admitted != nil {
		p.events.Admitted(newcomer, introducer, p.engine.Now())
	}
}

// handle returns the bus handler for one node, dispatching the lending
// message kinds. Unknown kinds are a programming error.
func (p *Protocol) handle(node id.ID) transport.Handler {
	return func(m transport.Message) {
		switch m.Kind {
		case kindLend:
			p.onLend(node, m.Payload.(transport.Envelope))
		case kindCredit:
			p.onCredit(node, m.Payload.(creditMsg))
		case kindReward:
			p.onReward(node, m.From, m.Payload.(rewardMsg))
		default:
			//replend:allow nopanic the kind set is closed within this process: only this package sends on the in-memory bus
			panic(fmt.Sprintf("lending: node %s got unknown message kind %q", node.Short(), m.Kind))
		}
	}
}

// onLend is the introducer's score manager receiving the signed order:
// verify, deduplicate, debit the stake and fan the credit out to every
// score manager of the newcomer.
func (p *Protocol) onLend(node id.ID, env transport.Envelope) {
	st := p.smState(node)
	if st.seenLend[env.Order.Nonce] {
		return // duplicate: dropped whatever the signature says
	}
	if !p.verifyEnv(env, env.Order.Introducer) {
		return // forged or tampered order: drop silently
	}
	st.seenLend[env.Order.Nonce] = true
	p.net.Store(node).Debit(env.Order.Introducer, env.Order.Amount)

	var payload any = creditMsg{env: env}
	p.fanOut(node, kindCredit, payload, p.net.ScoreManagers(env.Order.NewPeer))
}

// onCredit is the newcomer's score manager receiving the bootstrap credit.
func (p *Protocol) onCredit(node id.ID, msg creditMsg) {
	env := msg.env
	if !p.verifyEnv(env, env.Order.Introducer) {
		return
	}
	st := p.smState(node)
	newcomer := env.Order.NewPeer
	if st.flagged[newcomer] {
		return
	}
	if prev, ok := st.bootNonce[newcomer]; ok {
		if prev == env.Order.Nonce {
			return // redundant copy of the same introduction
		}
		// Two different introductions for the same peer: "they realize
		// that the new peer is trying to gain unfair advantage and
		// therefore reduce its reputation to zero … and may flag it as a
		// malicious peer."
		st.flagged[newcomer] = true
		p.net.Store(node).Zero(newcomer)
		if !p.flagged[newcomer] {
			p.flagged[newcomer] = true
			p.stats.DuplicateAttempts++
			if p.events.Flagged != nil {
				p.events.Flagged(newcomer, p.engine.Now())
			}
		}
		return
	}
	st.bootNonce[newcomer] = env.Order.Nonce
	p.net.Store(node).Credit(newcomer, env.Order.Amount)
}

// Audit runs the performance audit for a newcomer that has completed its
// auditTrans transactions (step 5). The caller (the simulation world)
// decides *when*; the protocol decides the outcome and the money movement.
// Auditing a peer that was never introduced, or twice, is a no-op.
func (p *Protocol) Audit(newcomer id.ID) {
	rec, ok := p.intro[newcomer]
	if !ok || rec.state != StakePending {
		// Never introduced, already audited, or closed by the audit
		// timeout — the double-settlement guard: an introducer that
		// rejoins after its stake was refunded must not also collect the
		// audit payout.
		return
	}

	rep, known := p.net.QueryReputation(newcomer)
	satisfactory := known && rep >= p.params.AuditThreshold
	newSMs := p.net.ScoreManagers(newcomer)

	if satisfactory {
		p.stats.AuditsSatisfied++
		if p.gone(rec.introducer) {
			// The introducer is gone for good: no longer registered and no
			// score manager holds any standing for it (its records were
			// dropped at the permanent departure). A stake return for such
			// a peer would fabricate zero-prior slots that resurrect it
			// one replica at a time and leak forever, so the stake is
			// simply stranded — the cost of leaving before the audit pays
			// out. A *live* introducer whose records were wiped out, and a
			// departed-but-rejoinable one whose records survive, are both
			// still paid.
			p.close(rec, StakeStranded)
			if p.events.StakeResolved != nil {
				p.events.StakeResolved(newcomer, rec.introducer, rec.state, p.engine.Now())
			}
			if p.events.AuditOutcome != nil {
				p.events.AuditOutcome(newcomer, rec.introducer, satisfactory, p.engine.Now())
			}
			return
		}
		p.close(rec, StakeSettled)
		// The newcomer's managers tell the introducer's managers to return
		// the stake and pay the reward; same bipartite fan-out and nonce
		// deduplication as the lend itself. Each manager signs with its own
		// key (score managers are ordinary peers and have one).
		order := transport.LendOrder{
			Introducer: rec.introducer,
			NewPeer:    newcomer,
			Amount:     rec.amount,
			Nonce:      rec.nonce,
		}
		introSMs := p.net.ScoreManagers(rec.introducer)
		for _, from := range newSMs {
			if p.bus.IsCrashed(from) {
				continue // a crashed manager cannot initiate the return
			}
			signer, ok := p.identityOf(from)
			if !ok {
				continue
			}
			var env *transport.Envelope
			sign := func() transport.Envelope {
				if env == nil {
					e := p.sign(signer, order)
					env = &e
				}
				return *env
			}
			var payload any = rewardMsg{order: order, sign: sign, reward: p.params.Reward}
			p.fanOut(from, kindReward, payload, introSMs)
		}
	} else {
		p.stats.AuditsForfeited++
		p.close(rec, StakeSettled)
		// "The introducer loses the lent reputation and no message to its
		// score managers is sent. The score managers of the new peer also
		// reduce the stored reputation of the new entrant by introAmt
		// subject to a minimum of 0."
		for _, n := range newSMs {
			p.net.Store(n).Debit(newcomer, rec.amount)
		}
	}
	if p.events.AuditOutcome != nil {
		p.events.AuditOutcome(newcomer, rec.introducer, satisfactory, p.engine.Now())
	}
}

// onReward is the introducer's score manager receiving the stake return
// after a satisfactory audit: credit introAmt + reward, "subject to the
// reputation not exceeding 1" (Credit clamps), once per audit nonce.
func (p *Protocol) onReward(node, from id.ID, msg rewardMsg) {
	st := p.smState(node)
	if st.seenReward[msg.order.Nonce] {
		// Duplicate of an already-credited return: it would be dropped
		// whatever the signature says, so drop it before asking the
		// sender to materialise a signature. The audit fan-out delivers
		// numSM copies per manager, each signed by a different manager;
		// this ordering keeps the redundant copies free.
		return
	}
	env := msg.sign()
	if !p.verifyEnv(env, from) {
		return // the sender must be the peer whose key signed the return
	}
	st.seenReward[env.Order.Nonce] = true
	p.net.Store(node).Credit(env.Order.Introducer, env.Order.Amount+msg.reward)
}
