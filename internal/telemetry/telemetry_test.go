package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder is a test sink remembering the record sequence it saw.
type recorder struct {
	lines   []string
	flushes int
}

func (r *recorder) Event(e Event) {
	r.lines = append(r.lines, fmt.Sprintf("e:%d:%s:%s", e.At, e.Kind, e.Peer))
}
func (r *recorder) Sample(s Sample) {
	r.lines = append(r.lines, fmt.Sprintf("s:%d:%s:%g", s.At, s.Series, s.Value))
}
func (r *recorder) Flush() error { r.flushes++; return nil }

func TestBusFansOutInAttachOrder(t *testing.T) {
	b := NewBus()
	a, c := &recorder{}, &recorder{}
	b.Attach(a)
	b.Attach(c)
	if !b.Active() {
		t.Fatal("bus with sinks reports inactive")
	}
	b.Event(Event{At: 1, Kind: "arrival", Peer: "p1"})
	b.Sample(Sample{At: 2, Series: "coop", Value: 3})
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []string{"e:1:arrival:p1", "s:2:coop:3"}
	for _, r := range []*recorder{a, c} {
		if len(r.lines) != 2 || r.lines[0] != want[0] || r.lines[1] != want[1] {
			t.Fatalf("sink saw %v, want %v", r.lines, want)
		}
		if r.flushes != 1 {
			t.Fatalf("flushes = %d", r.flushes)
		}
	}
}

func TestNilAndEmptyBusAreNoops(t *testing.T) {
	var nilBus *Bus
	if nilBus.Active() {
		t.Fatal("nil bus active")
	}
	nilBus.Event(Event{})
	nilBus.Sample(Sample{})
	if err := nilBus.Flush(); err != nil {
		t.Fatal(err)
	}
	if NewBus().Active() {
		t.Fatal("empty bus active")
	}
}

func TestStreamSinkLineShapes(t *testing.T) {
	var buf bytes.Buffer
	s := NewStreamSink(&buf)
	s.Event(Event{At: 12, Kind: "arrival", Peer: "ab12", Other: "cd34", Detail: "cooperative"})
	s.Sample(Sample{At: 500, Series: "coop", Value: 100})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"t":"event","at":12,"kind":"arrival","peer":"ab12","other":"cd34","detail":"cooperative"}
{"t":"sample","at":500,"series":"coop","v":100}
`
	if buf.String() != want {
		t.Fatalf("stream =\n%s\nwant\n%s", buf.String(), want)
	}
}

// TestStreamSinkBoundedMemory is the bounded-memory proof point: pushing
// well over 500k ticks' worth of events through the streaming sink holds
// the retained-record high-water mark at the flush ceiling — a small
// constant — while the equivalent unbounded in-memory log necessarily
// grows linearly with the run. (trace.Log demonstrates the linear side
// in its own package: an unbounded log's Len equals the event count.)
func TestStreamSinkBoundedMemory(t *testing.T) {
	const n = 600_000 // > 500k ticks, one event per tick
	var flushed int64
	s := NewStreamSink(countWriter{&flushed})
	for i := int64(0); i < n; i++ {
		s.Event(Event{At: i, Kind: "arrival", Peer: "peer"})
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Written() != n {
		t.Fatalf("written = %d, want %d", s.Written(), n)
	}
	if s.PeakRetained() > DefaultFlushEvery {
		t.Fatalf("peak retained records = %d, want <= %d: the sink is not bounded", s.PeakRetained(), DefaultFlushEvery)
	}
	if flushed == 0 {
		t.Fatal("nothing reached the writer")
	}
}

type countWriter struct{ n *int64 }

func (w countWriter) Write(p []byte) (int, error) { *w.n += int64(len(p)); return len(p), nil }

func TestStreamSinkFlushEveryFloor(t *testing.T) {
	s := NewStreamSink(io.Discard)
	s.SetFlushEvery(0)
	s.Event(Event{At: 1, Kind: "arrival"})
	s.Event(Event{At: 2, Kind: "arrival"})
	if s.PeakRetained() != 1 {
		t.Fatalf("peak = %d, want 1 (flush-every floor)", s.PeakRetained())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestStreamSinkStickyError(t *testing.T) {
	s := NewStreamSink(failWriter{})
	s.SetFlushEvery(1)
	s.Event(Event{At: 1, Kind: "arrival"})
	err := s.Flush()
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v", err)
	}
	s.Event(Event{At: 2, Kind: "arrival"})
	if got := s.Flush(); got == nil || !strings.Contains(got.Error(), "disk full") {
		t.Fatalf("error not sticky: %v", got)
	}
}

func TestProgressTracksPosition(t *testing.T) {
	var p Progress
	p.Event(Event{At: 10, Kind: "arrival"})
	p.Sample(Sample{At: 20, Series: "population", Value: 42})
	p.Sample(Sample{At: 20, Series: "coop", Value: 40})
	if p.Tick() != 20 || p.Records() != 3 || p.Population() != 42 {
		t.Fatalf("tick=%d records=%d pop=%d", p.Tick(), p.Records(), p.Population())
	}
}

func TestProgressTickerWritesAndStops(t *testing.T) {
	var p Progress
	p.Sample(Sample{At: 7, Series: "population", Value: 5})
	var buf syncBuffer
	stop := p.StartTicker(&buf, "test-run", 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for buf.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // stop is idempotent
	out := buf.String()
	if !strings.Contains(out, "test-run: tick=7 pop=5") || !strings.Contains(out, "rss=") {
		t.Fatalf("ticker line = %q", out)
	}
}

// syncBuffer guards a bytes.Buffer against the ticker goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSpansNilSafe(t *testing.T) {
	var s *Spans
	s.Start("overlay")() // must not panic
	if s.Stats() != nil {
		t.Fatal("nil spans reported stats")
	}
	if s.Table() != "" {
		t.Fatal("nil spans rendered a table")
	}
}

func TestSpansAccumulateAndRender(t *testing.T) {
	s := NewSpans()
	end := s.Start("lending-fanout")
	time.Sleep(time.Millisecond)
	end()
	s.Start("sampling")()
	stats := s.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Name != "lending-fanout" || stats[0].Count != 1 || stats[0].Total <= 0 {
		t.Fatalf("slowest span = %+v", stats[0])
	}
	table := s.Table()
	for _, want := range []string{"span", "lending-fanout", "sampling"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:     "512B",
		2 << 10: "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestRSSBytesNonZero(t *testing.T) {
	if RSSBytes() == 0 {
		t.Fatal("RSS reads as zero")
	}
}

func BenchmarkStreamSinkEvent(b *testing.B) {
	s := NewStreamSink(io.Discard)
	e := Event{At: 1, Kind: "arrival", Peer: "ab12cd34", Other: "ef56ab78", Detail: "cooperative"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At = int64(i)
		s.Event(e)
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
}
