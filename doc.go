// Package repro is a from-scratch Go reproduction of "Reputation Lending
// for Virtual Communities" (Garg, Montresor, Battiti; University of
// Trento TR DIT-05-086, 2005 / ICDE 2006 workshops), grown into a small
// simulation platform for admission economics in P2P communities.
//
// The tree is 21 packages: this root, and twenty under internal/, in
// dependency order:
//
// Substrates:
//
//   - internal/id — the 160-bit circular identifier space naming peers
//     and keys.
//   - internal/rng — splittable deterministic randomness; every
//     stochastic choice flows through a seeded stream.
//   - internal/sim — the discrete-event engine: integer ticks, FIFO
//     within a tick, RunUntil/Step.
//   - internal/metrics — time series, Welford statistics, CSV.
//   - internal/transport — the simulated message bus (instant delivery,
//     crash injection) and pluggable signing identities (Ed25519 or the
//     null opt-out).
//   - internal/overlay — the Chord-like ring: treap-backed membership,
//     finger lookups, score-manager placement.
//   - internal/topology — random and scale-free respondent/introducer
//     bias.
//
// The paper's model:
//
//   - internal/peer — behaviour classes: cooperative vs freeriding,
//     naive vs selective introducers, traitor semantics.
//   - internal/rocq — the ROCQ reputation substrate the lending
//     protocol sits on.
//   - internal/churn — the membership-churn extension: departure
//     clocks, session models, crash/rejoin draws, snapshot
//     reconciliation, lifecycle stats.
//   - internal/config — Table 1 plus the extension knobs (churn, stake
//     timeout, null signing), defaults, validation, JSON.
//   - internal/lending — the paper's contribution: signed lend orders,
//     bipartite credit fan-out, nonce dedup, the admission audit, and
//     the stake-lifecycle state machine (pending → settled | refunded |
//     stranded) with its timeout-and-refund rules (docs/economics.md).
//   - internal/baseline — the open-admission alternatives the paper
//     argues against.
//   - internal/world — the simulator wiring it all together: the
//     transaction/arrival/departure/sampling loops, state migration,
//     parameter deltas, the stake clock.
//
// Workload and harness layers:
//
//   - internal/scenario — declarative JSON workloads: base config,
//     timed phases, selectors, a registry of golden-pinned built-ins.
//   - internal/fleet — the distributed runner sharding replica work
//     units over worker processes and machines, byte-identically.
//   - internal/experiments — one runnable per paper figure/table plus
//     the extension sweeps (whitewash, traitor, ablation, churn,
//     sessions, stakes).
//   - internal/core — a compact embedding API (Community).
//   - internal/trace — structured event log with invariant checks.
//   - internal/asciiplot — terminal line charts for the reports.
//
// The runnable tools live under cmd/ (replend-sim, replend-experiments,
// docs-check), narrated walkthroughs under examples/ (each a thin driver
// over a declarative scenario — see docs/scenarios.md), and the
// benchmarks that regenerate the paper's evaluation in bench_test.go.
// DESIGN.md holds the system inventory and experiment index;
// EXPERIMENTS.md records paper-vs-measured outcomes; docs/economics.md
// tells the stake-lifecycle story; docs/fleet.md the distributed runner.
package repro
