package world

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/lending"
	"repro/internal/sim"
)

// Delta is a set of parameter changes applicable to a running world: the
// phase hook scenarios use for churn waves, λ spikes and policy flips.
// Nil fields are left unchanged. Only behavioural parameters are mutable;
// structural ones (population seed, score-manager count, topology kind,
// random seed) are fixed at construction.
type Delta struct {
	// Lambda changes the Poisson arrival rate. The arrival process is
	// re-armed from the current tick; setting 0 stops arrivals.
	Lambda *float64 `json:"lambda,omitempty"`
	// FracUncoop changes the uncooperative share of subsequent arrivals.
	FracUncoop *float64 `json:"fracUncoop,omitempty"`
	// FracNaive changes the naive-introducer share of subsequent
	// cooperative arrivals.
	FracNaive *float64 `json:"fracNaive,omitempty"`
	// ErrSel changes the selective-introducer error rate.
	ErrSel *float64 `json:"errSel,omitempty"`
	// WaitPeriod changes the introduction waiting period T for requests
	// begun after the change.
	WaitPeriod *int64 `json:"waitPeriod,omitempty"`
	// AuditTrans changes the completed-transaction count that triggers
	// the newcomer audit.
	AuditTrans *int `json:"auditTrans,omitempty"`
	// IntroAmt changes the reputation staked per introduction.
	IntroAmt *float64 `json:"introAmt,omitempty"`
	// Reward changes the reward for introducing a cooperative peer.
	Reward *float64 `json:"reward,omitempty"`
	// MinIntroRep changes the reputation floor for acting as introducer.
	MinIntroRep *float64 `json:"minIntroRep,omitempty"`
	// AuditThreshold changes the reputation deemed satisfactory at audit.
	AuditThreshold *float64 `json:"auditThreshold,omitempty"`
	// RequireIntroductions flips between lending admission and the open
	// baseline (the policy-flip phase of ablation scenarios).
	RequireIntroductions *bool `json:"requireIntroductions,omitempty"`
	// SampleEvery changes the time-series sampling interval.
	SampleEvery *int64 `json:"sampleEvery,omitempty"`
	// Mu changes the Poisson departure rate of admitted peers. The
	// departure process is re-armed from the current tick; setting 0
	// stops clock-driven departures (in-flight session clocks and
	// scheduled rejoins still fire).
	Mu *float64 `json:"mu,omitempty"`
	// CrashFrac changes the fraction of subsequent departures that are
	// abrupt crashes.
	CrashFrac *float64 `json:"crashFrac,omitempty"`
	// RejoinProb changes the probability that subsequently departed peers
	// later rejoin.
	RejoinProb *float64 `json:"rejoinProb,omitempty"`
	// DowntimeMean changes the mean downtime before those rejoins.
	DowntimeMean *float64 `json:"downtimeMean,omitempty"`
}

// IsZero reports whether the delta changes nothing.
func (d Delta) IsZero() bool { return d == Delta{} }

// applyTo overlays the delta's set fields on a configuration.
func (d Delta) applyTo(c *config.Config) {
	if d.Lambda != nil {
		c.Lambda = *d.Lambda
	}
	if d.FracUncoop != nil {
		c.FracUncoop = *d.FracUncoop
	}
	if d.FracNaive != nil {
		c.FracNaive = *d.FracNaive
	}
	if d.ErrSel != nil {
		c.ErrSel = *d.ErrSel
	}
	if d.WaitPeriod != nil {
		c.WaitPeriod = *d.WaitPeriod
	}
	if d.AuditTrans != nil {
		c.AuditTrans = *d.AuditTrans
	}
	if d.IntroAmt != nil {
		c.IntroAmt = *d.IntroAmt
	}
	if d.Reward != nil {
		c.Reward = *d.Reward
	}
	if d.MinIntroRep != nil {
		c.MinIntroRep = *d.MinIntroRep
	}
	if d.AuditThreshold != nil {
		c.AuditThreshold = *d.AuditThreshold
	}
	if d.RequireIntroductions != nil {
		c.RequireIntroductions = *d.RequireIntroductions
	}
	if d.SampleEvery != nil {
		c.SampleEvery = *d.SampleEvery
	}
	if d.Mu != nil {
		c.Churn.Mu = *d.Mu
	}
	if d.CrashFrac != nil {
		c.Churn.CrashFrac = *d.CrashFrac
	}
	if d.RejoinProb != nil {
		c.Churn.RejoinProb = *d.RejoinProb
	}
	if d.DowntimeMean != nil {
		c.Churn.DowntimeMean = *d.DowntimeMean
	}
}

// Preview returns the configuration that would result from applying the
// delta to cfg, after validating it. It does not touch any world.
func (d Delta) Preview(cfg config.Config) (config.Config, error) {
	next := cfg
	d.applyTo(&next)
	if err := next.Validate(); err != nil {
		return config.Config{}, fmt.Errorf("world: delta: %w", err)
	}
	return next, nil
}

// ApplyDelta changes the world's parameters mid-run. The merged
// configuration is validated before anything is touched; on error the
// world is unchanged. Arrivals are re-armed when λ changes, and the
// lending protocol picks up new staking constants for subsequent
// introductions.
func (w *World) ApplyDelta(d Delta) error {
	next, err := d.Preview(w.cfg)
	if err != nil {
		return err
	}
	lambdaChanged := next.Lambda != w.cfg.Lambda
	muChanged := next.Churn.Mu != w.cfg.Churn.Mu
	w.cfg = next
	if err := w.proto.SetParams(lending.Params{
		IntroAmt:       next.IntroAmt,
		Reward:         next.Reward,
		MinIntroRep:    next.MinIntroRep,
		AuditThreshold: next.AuditThreshold,
		Wait:           sim.Tick(next.WaitPeriod),
		NumSM:          next.NumSM,
	}); err != nil {
		return err // unreachable for a validated config; defensive
	}
	w.churnProc.SetParams(next.Churn)
	if lambdaChanged {
		w.rearmArrivals()
	}
	if muChanged {
		w.rearmDepartures()
	}
	return nil
}

// ScheduleDelta queues a delta to be applied when the simulation reaches
// the given tick — the scheduled phase hook. The delta is validated
// against the configuration that will be current at that tick only when
// it fires; an invalid combination fails the world then (Run/RunFor
// return the error and Err reports it), so callers composing multi-phase
// schedules should pre-validate them (scenario.Spec.Validate does). The
// name labels the event in diagnostics.
func (w *World) ScheduleDelta(at sim.Tick, name string, d Delta) {
	if name == "" {
		name = "phase"
	}
	w.engine.SchedulePayload(at, name, deltaPayload{Delta: d}, w.deltaBody(name, at, d))
}

// deltaBody is a scheduled parameter change. The event's name is caller-
// chosen, so checkpoints identify deltas by payload kind, not by name.
func (w *World) deltaBody(name string, at sim.Tick, d Delta) func() {
	return func() {
		if err := w.ApplyDelta(d); err != nil {
			// Run-path failures propagate, never panic: a bad delta in
			// one replica must fail that unit, not the whole process
			// (which may be a fleet worker running sibling units).
			w.fail(fmt.Errorf("world: scheduled delta %q at tick %d: %w", name, at, err))
		}
	}
}
