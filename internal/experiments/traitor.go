package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/world"
)

// Traitor probes a limitation the paper leaves open (extension
// experiment): the admission audit is one-shot. A reputation-milking
// attacker behaves cooperatively, passes the audit (returning the
// introducer's stake), and defects afterwards. The question is what layer
// of the system contains it then — and the answer is ROCQ's sliding
// window: once defected, honest partners report 0, and the traitor's
// reputation collapses, implicitly excluding it. The lending layer's
// stake, however, has already been returned; traitors cost the community,
// not the introducer.
type Traitor struct {
	// RepAtDefection / RepAfter bracket the collapse.
	RepAtDefection float64
	RepAfter       float64
	// CollapseTicks is how long after defecting the traitor's mean
	// reputation fell below 0.5 (−1 if it never did within the run).
	CollapseTicks int64
	// ServedAfterDefection is the service the traitor extracted after
	// turning — the damage the one-shot audit cannot claw back.
	ServedAfterDefection int64
	// AuditsSatisfiedBeforeDefection shows the stake came back before the
	// betrayal (the structural limitation).
	AuditsSatisfiedBeforeDefection int64
	// Traitors is the number of milkers injected.
	Traitors int
}

// RunTraitor executes the scripted milking attack against one community.
func RunTraitor(opt Options) (*Traitor, error) {
	opt = opt.withDefaults()
	cfg := config.Default()
	cfg.Lambda = 0
	cfg.NumInit = 300
	cfg.NumTrans = 300_000
	cfg.WaitPeriod = 500
	cfg.AuditTrans = 10
	cfg.Seed = opt.SeedBase
	cfg = opt.apply(cfg)

	w, err := world.New(cfg)
	if err != nil {
		return nil, err
	}
	w.Start()

	// Inject a handful of traitors that will defect at mid-run.
	defectAt := sim.Tick(cfg.NumTrans / 3)
	const nTraitors = 5
	var traitors []id.ID
	entry := naiveMember(w)
	for i := 0; i < nTraitors; i++ {
		tr, err := w.InjectTraitor(peer.Selective, entry, defectAt)
		if err != nil {
			return nil, err
		}
		traitors = append(traitors, tr)
		if err := w.RunFor(sim.Tick(cfg.WaitPeriod + 1)); err != nil {
			return nil, err
		}
	}

	// Honest phase: earn standing, pass audits.
	if err := w.RunFor(defectAt - w.Engine().Now()); err != nil {
		return nil, err
	}
	out := &Traitor{
		Traitors:                       nTraitors,
		RepAtDefection:                 meanRep(w, traitors),
		AuditsSatisfiedBeforeDefection: w.Metrics().AuditsSatisfied,
	}
	servedBefore := w.Metrics().ServedToUncoop

	// Defection phase: track the collapse in sampling-interval steps.
	out.CollapseTicks = -1
	step := sim.Tick(cfg.SampleEvery)
	for w.Engine().Now() < sim.Tick(cfg.NumTrans) {
		if err := w.RunFor(step); err != nil {
			return nil, err
		}
		if out.CollapseTicks < 0 && meanRep(w, traitors) < 0.5 {
			out.CollapseTicks = int64(w.Engine().Now() - defectAt)
		}
	}
	out.RepAfter = meanRep(w, traitors)
	out.ServedAfterDefection = w.Metrics().ServedToUncoop - servedBefore
	return out, nil
}

func naiveMember(w *world.World) id.ID {
	for _, pid := range w.AdmittedPeers() {
		if p, ok := w.Peer(pid); ok && p.Style == peer.Naive {
			return pid
		}
	}
	return w.AdmittedPeers()[0]
}

func meanRep(w *world.World, ids []id.ID) float64 {
	if len(ids) == 0 {
		return 0
	}
	sum := 0.0
	for _, pid := range ids {
		sum += w.Reputation(pid)
	}
	return sum / float64(len(ids))
}

// Name implements Report.
func (t *Traitor) Name() string { return "traitor" }

// Table renders the attack outcome.
func (t *Traitor) Table() string {
	tb := &TextTable{
		Title:  "Traitor (reputation milking) — the one-shot audit's blind spot, contained by ROCQ",
		Header: []string{"quantity", "value"},
	}
	tb.AddRow("traitors injected", t.Traitors)
	tb.AddRow("audits satisfied before defection", t.AuditsSatisfiedBeforeDefection)
	tb.AddRow("mean traitor reputation at defection", t.RepAtDefection)
	tb.AddRow("ticks until mean reputation < 0.5", t.CollapseTicks)
	tb.AddRow("mean traitor reputation at end", t.RepAfter)
	tb.AddRow("service extracted after defection", t.ServedAfterDefection)
	var b strings.Builder
	b.WriteString(tb.String())
	b.WriteString("\nexpected: audits pass while honest (stakes already returned — the milking attack is real),\n" +
		"but the sliding-window aggregate collapses the traitors' reputations soon after defection\n")
	return b.String()
}

// CSV renders the summary row.
func (t *Traitor) CSV() string {
	var b strings.Builder
	b.WriteString("traitors,audits_before,rep_at_defection,collapse_ticks,rep_after,served_after\n")
	fmt.Fprintf(&b, "%d,%d,%g,%d,%g,%d\n",
		t.Traitors, t.AuditsSatisfiedBeforeDefection, t.RepAtDefection,
		t.CollapseTicks, t.RepAfter, t.ServedAfterDefection)
	return b.String()
}
