package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/config"
	"repro/internal/metrics"
)

// Fig2Lambdas are the arrival rates of Figure 2, highest first as in the
// paper's legend.
var Fig2Lambdas = []float64{0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001}

// Fig2 reproduces Figure 2, "Reputation of Cooperative Peers with Time":
// the mean reputation of cooperative peers sampled every 5000 time units
// over a 500 000-tick run, one curve per arrival rate λ. The paper's
// findings: the average stays roughly constant for all moderate λ; at high
// rates (λ ∈ {0.1, 0.2}) the system is briefly overwhelmed — reputations
// deplete as members lend to the entrant flood, then recover to a steady
// state.
type Fig2 struct {
	// Reputation maps λ to the averaged mean-cooperative-reputation
	// series.
	Reputation map[float64]*metrics.Series
	// Final and minimum values per λ, for the summary table.
	Final map[float64]float64
	Min   map[float64]float64
}

func fig2Config(lambda float64) config.Config {
	c := config.Default()
	c.Lambda = lambda
	c.NumTrans = 500_000
	return c
}

// RunFig2 executes the experiment for the given λ values (nil = the
// paper's full set) at the given scale.
func RunFig2(lambdas []float64, opt Options) (*Fig2, error) {
	opt = opt.withDefaults()
	if lambdas == nil {
		lambdas = Fig2Lambdas
	}
	out := &Fig2{
		Reputation: map[float64]*metrics.Series{},
		Final:      map[float64]float64{},
		Min:        map[float64]float64{},
	}
	for i, lam := range lambdas {
		cfg := opt.apply(fig2Config(lam))
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		s, err := mergeSeriesOf(rs, fmt.Sprintf("rep-lambda-%g", lam),
			func(r Replica) *metrics.Series { return r.Metrics.CoopReputation })
		if err != nil {
			return nil, err
		}
		out.Reputation[lam] = s
		if last, ok := s.Last(); ok {
			out.Final[lam] = last.V
		}
		min := 1.0
		for _, p := range s.Points {
			if p.V < min {
				min = p.V
			}
		}
		out.Min[lam] = min
	}
	return out, nil
}

// Lambdas returns the rates present in the result, in the paper's order.
func (f *Fig2) Lambdas() []float64 {
	var out []float64
	for _, lam := range Fig2Lambdas {
		if _, ok := f.Reputation[lam]; ok {
			out = append(out, lam)
		}
	}
	// Any non-standard rates, in insertion-independent (sorted-desc)
	// order. The extras are collected and sorted before appending: a map
	// walk straight into out ordered the table rows process-randomly
	// (caught by replend-lint's maporder when the suite first ran).
	var extra []float64
	for lam := range f.Reputation {
		found := false
		for _, o := range out {
			if o == lam {
				found = true
			}
		}
		if !found {
			extra = append(extra, lam)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(extra)))
	out = append(out, extra...)
	return out
}

// Name implements Report.
func (f *Fig2) Name() string { return "fig2" }

// Table summarises each curve.
func (f *Fig2) Table() string {
	t := &TextTable{
		Title:  "Figure 2 — mean reputation of cooperative peers over time",
		Header: []string{"lambda", "min over run", "final"},
	}
	for _, lam := range f.Lambdas() {
		t.AddRow(lam, f.Min[lam], f.Final[lam])
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\npaper: flat and high for λ ≤ 0.05; dip then recovery for λ ∈ {0.1, 0.2}\n")
	return b.String()
}

// CSV renders the curves on a shared time axis.
func (f *Fig2) CSV() string {
	lams := f.Lambdas()
	series := make([]*metrics.Series, len(lams))
	for i, lam := range lams {
		series[i] = f.Reputation[lam]
	}
	return metrics.CSV(series...)
}
