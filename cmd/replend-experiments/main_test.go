package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-scale", "0.04", "-runs", "1", "-seed", "5", "-out", dir, "fig3",
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := os.ReadFile(filepath.Join(dir, "fig3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "Figure 3") {
		t.Fatalf("table content wrong: %s", table)
	}
	// The figure report includes its ASCII plot.
	if !strings.Contains(string(table), "naive") {
		t.Fatal("plot/axis context missing")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "frac_naive,") {
		t.Fatalf("csv header wrong: %s", csv)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-scale", "0.04", "-runs", "1", "-out", t.TempDir(), "figX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-runs", "x"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
