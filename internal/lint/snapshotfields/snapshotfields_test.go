package snapshotfields_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/snapshotfields"
)

func TestSnapshotFields(t *testing.T) {
	linttest.Run(t, "testdata", snapshotfields.Analyzer, "carrier", "nosnap")
}
