package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// Fig6 reproduces Figure 6, "Number of Cooperative and Uncooperative Peers
// in System with Percentage of Freeriding New Entrants": λ=0.1, 50 000
// time units, sweeping the uncooperative fraction of arrivals from 0% to
// 100%. The paper's findings: cooperative membership falls almost linearly
// (fewer cooperative peers even try to enter), while uncooperative
// membership stays bounded — selective introducers refuse most of them,
// and the naive/uncooperative introducers that let them in lose the staked
// reputation and go broke, capping further admissions.
type Fig6 struct {
	PctUncoop     []float64
	Coop          []float64
	Uncoop        []float64
	RefusedRep    []float64
	RefusedUncoop []float64
}

// Fig6Percentages is the swept arrival mix.
var Fig6Percentages = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

func fig6Config(pct float64) config.Config {
	c := config.Default()
	c.Lambda = 0.1
	c.NumTrans = 50_000
	c.FracUncoop = pct / 100
	return c
}

// RunFig6 executes the sweep (nil percentages = the paper's full sweep).
func RunFig6(percentages []float64, opt Options) (*Fig6, error) {
	opt = opt.withDefaults()
	if percentages == nil {
		percentages = Fig6Percentages
	}
	out := &Fig6{}
	for i, pct := range percentages {
		cfg := opt.apply(fig6Config(pct))
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		out.PctUncoop = append(out.PctUncoop, pct)
		out.Coop = append(out.Coop, meanOf(rs, func(r Replica) int64 { return r.Metrics.CoopInSystem }))
		out.Uncoop = append(out.Uncoop, meanOf(rs, func(r Replica) int64 { return r.Metrics.UncoopInSystem }))
		out.RefusedRep = append(out.RefusedRep, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.RefusedRepCoop + r.Metrics.RefusedRepUncoop
		}))
		out.RefusedUncoop = append(out.RefusedUncoop, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.RefusedSelectiveUncoop
		}))
	}
	return out, nil
}

// Name implements Report.
func (f *Fig6) Name() string { return "fig6" }

// Table renders the sweep.
func (f *Fig6) Table() string {
	t := &TextTable{
		Title: "Figure 6 — population vs percentage of freeriding new entrants (λ=0.1)",
		Header: []string{"% uncoop arrivals", "coop", "uncoop",
			"refused: introducer rep", "refused: uncoop (selective)"},
	}
	for i := range f.PctUncoop {
		t.AddRow(f.PctUncoop[i], f.Coop[i], f.Uncoop[i], f.RefusedRep[i], f.RefusedUncoop[i])
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\npaper: coop falls ≈ linearly (≈5400→500); uncoop bounded ≈ ≤1000, saturating as lenders go broke\n")
	return b.String()
}

// CSV renders the sweep.
func (f *Fig6) CSV() string {
	var b strings.Builder
	b.WriteString("pct_uncoop,coop,uncoop,refused_introducer_rep,refused_uncoop_selective\n")
	for i := range f.PctUncoop {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g\n",
			f.PctUncoop[i], f.Coop[i], f.Uncoop[i], f.RefusedRep[i], f.RefusedUncoop[i])
	}
	return b.String()
}
