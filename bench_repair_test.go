package repro

import (
	"fmt"
	"testing"

	"repro/internal/id"
	"repro/internal/overlay"
)

// BenchmarkFingerRepair measures one full finger-table repair against a
// fresh membership epoch on a standing 4096-node ring — the cost a
// lookup pays after any membership change.
func BenchmarkFingerRepair(b *testing.B) {
	ring := overlay.NewRing()
	for i := 0; i < 4096; i++ {
		if err := ring.Join(id.HashString(fmt.Sprintf("repair-node-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	m := id.HashString("repair-node-7")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := id.HashString(fmt.Sprintf("repair-churn-%d", i))
		if err := ring.Join(n); err != nil {
			b.Fatal(err)
		}
		if err := ring.Leave(n); err != nil {
			b.Fatal(err)
		}
		if _, err := ring.Node(m); err != nil { // repairs against the new epoch
			b.Fatal(err)
		}
	}
}
