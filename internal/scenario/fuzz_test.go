package scenario

// Checkpoint-decoding fuzz: corrupt, truncated or version-skewed
// checkpoint files must be rejected with an error — never a panic, and
// never a silently restored partial state. The seed corpus is real
// sealed snapshots (both kinds) of three built-in scenarios, so the
// fuzzer starts from deep, structurally valid inputs.

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/sim"
	"repro/internal/world"
)

// fuzzSeeds captures sealed snapshots of three built-in scenarios at an
// early tick, in both envelope kinds plus the bare body documents.
func fuzzSeeds(f *testing.F) (sealed [][]byte, bodies [][]byte) {
	f.Helper()
	// The three smallest built-ins: fuzz inputs are mutated whole, so
	// corpus bytes are the budget that matters.
	for _, name := range []string{"quickstart", "sm-wipeout", "api"} {
		spec, err := Get(name)
		if err != nil {
			f.Fatal(err)
		}
		r, err := spec.Start()
		if err != nil {
			f.Fatal(err)
		}
		if err := r.RunToTick(sim.Tick(200)); err != nil {
			f.Fatal(err)
		}
		st, err := r.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		runFile, err := st.Encode()
		if err != nil {
			f.Fatal(err)
		}
		ws, err := r.World().Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		worldFile, err := ws.Encode()
		if err != nil {
			f.Fatal(err)
		}
		sealed = append(sealed, runFile, worldFile)
		_, runBody, err := checkpoint.Open(runFile)
		if err != nil {
			f.Fatal(err)
		}
		_, worldBody, err := checkpoint.Open(worldFile)
		if err != nil {
			f.Fatal(err)
		}
		bodies = append(bodies, runBody, worldBody)
	}
	return sealed, bodies
}

// FuzzCheckpointDecode drives the whole untrusted-file path: envelope,
// body, restore. Any outcome but a clean error or a working restore is
// a bug.
func FuzzCheckpointDecode(f *testing.F) {
	sealed, _ := fuzzSeeds(f)
	for _, s := range sealed {
		f.Add(s)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"replend-checkpoint/v1","kind":"world","sha256":"","body":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := checkpoint.Open(data)
		if err != nil {
			return
		}
		switch kind {
		case checkpoint.KindWorld:
			snap, err := world.DecodeSnapshotBody(body)
			if err != nil {
				return
			}
			_, _ = world.Restore(snap)
		case checkpoint.KindScenario:
			st, err := DecodeRunStateBody(body)
			if err != nil {
				return
			}
			_, _ = Resume(st)
		}
	})
}

// FuzzSnapshotBody skips the envelope digest (which rejects almost every
// mutation) and fuzzes the body documents directly, so the decoder and
// restore validation see structurally interesting corruption.
func FuzzSnapshotBody(f *testing.F) {
	_, bodies := fuzzSeeds(f)
	for _, b := range bodies {
		f.Add(b)
	}
	f.Add([]byte(`{"version":1}`))
	// Hostile v4 arena-table shapes: duplicate ordinals, a free-list
	// entry colliding with an assigned slot, and an ordinal with no
	// backing record elsewhere in the document. Restore must reject all
	// of them rather than build a corrupt arena.
	f.Add([]byte(`{"version":4,"ordinals":[{"peer":"00","ord":0},{"peer":"01","ord":0}]}`))
	f.Add([]byte(`{"version":4,"ordinals":[{"peer":"00","ord":1}],"ordFree":[1]}`))
	f.Add([]byte(`{"version":4,"ordinals":[{"peer":"00","ord":-3}],"ordFree":[0,0]}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		if st, err := DecodeRunStateBody(body); err == nil {
			_, _ = Resume(st)
		}
		if snap, err := world.DecodeSnapshotBody(body); err == nil {
			_, _ = world.Restore(snap)
		}
	})
}
