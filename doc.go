// Package repro is a from-scratch Go reproduction of "Reputation Lending
// for Virtual Communities" (Garg, Montresor, Battiti; University of
// Trento TR DIT-05-086, 2005 / ICDE 2006 workshops).
//
// The library lives under internal/ (see README.md for the map), the
// runnable tools under cmd/, narrated walkthroughs under examples/
// (each a thin driver over a declarative scenario — see
// docs/scenarios.md for authoring your own), and the benchmarks that
// regenerate every table and figure of the paper's evaluation in
// bench_test.go. DESIGN.md holds the system inventory and experiment
// index; EXPERIMENTS.md records paper-vs-measured outcomes.
package repro
