// Churn: the DHT substrate under membership churn, driven by the built-in
// "churn" scenario (crash half an introducer's score managers
// mid-introduction; the lend lands anyway).
//
// The paper: "the arrival of new nodes does influence DHT-based routing as
// the score managers assigned to a peer change over time. However, by
// using multiple score managers this impact is significantly reduced" and
// "redundancy is introduced in the system in case a score manager crashes
// before being able to contact the new peer's score managers."
//
// The driver (1) tracks how a peer's score-manager set migrates as the
// ring grows, (2) steps the scenario's crash-and-introduce phase, and
// (3) measures Chord lookup hop counts on the grown ring.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"repro/internal/id"
	"repro/internal/scenario"
)

func main() {
	spec, err := scenario.Get("churn")
	if err != nil {
		log.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		log.Fatal(err)
	}
	w := r.World()

	// (1) Score-manager migration under growth.
	subject := w.AdmittedPeers()[0]
	before := w.ScoreManagers(subject)
	fmt.Printf("peer %s score managers at n=%d:\n", subject.Short(), w.Ring().Size())
	printSMs(before)

	// Phase 1 at tick 50000: the scenario crashes half the score managers
	// of a reputable naive member and injects a newcomer through it.
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
	after := w.ScoreManagers(subject)
	fmt.Printf("\nafter growing to n=%d:\n", w.Ring().Size())
	printSMs(after)
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	fmt.Printf("%d of %d score-manager slots moved — yet the peer's reputation survived: %.3f\n",
		moved, len(before), w.Reputation(subject))

	outcome := r.Outcomes()[0]
	fmt.Printf("\ncrashed half the score managers of introducer %s, then introduced %s through it\n",
		outcome.Introducer.Short(), outcome.Peer.Short())

	// Phase 2 at tick 50201: the waiting period has elapsed and the
	// crashed managers recover.
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("introduction executed through the surviving managers: newcomer reputation %.3f (want %.2f)\n",
		w.Reputation(outcome.Peer), spec.Base.IntroAmt)

	// (3) Routing cost on the grown ring: real Chord lookups through
	// finger tables.
	fmt.Println("\nlookup hop counts (greedy finger routing):")
	members := w.Ring().Members()
	for i := 0; i < 100; i++ {
		key := id.HashString(fmt.Sprintf("probe-%d", i))
		if _, _, err := w.Ring().Lookup(members[i%len(members)], key); err != nil {
			log.Fatal(err)
		}
	}
	lookups, mean := w.Ring().RoutingStats()
	fmt.Printf("n=%d: %d lookups, %.2f mean hops (log2 n = %.1f)\n",
		w.Ring().Size(), lookups, mean, log2(float64(w.Ring().Size())))

	if _, err := r.Finish(); err != nil {
		log.Fatal(err)
	}
}

func printSMs(sms []id.ID) {
	for i, sm := range sms {
		fmt.Printf("  replica %d -> node %s\n", i, sm.Short())
	}
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
