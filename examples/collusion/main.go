// Collusion: the attack the paper's introduction worries about, driven by
// the built-in "collusion" scenario.
//
// "One member of a group of colluding peers enters the system and behaves
// honestly to accumulate reputation. It then recommends the other
// malicious peers into the group." The defence: every introduction stakes
// introAmt of the mole's reputation, freeriders fail their audit so the
// stake is forfeited, and once the mole falls below minIntroRep its score
// managers refuse to execute further lends.
//
// Run with: go run ./examples/collusion
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	spec, err := scenario.Get("collusion")
	if err != nil {
		log.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		log.Fatal(err)
	}
	w := r.World()

	// Phase 1 at tick 0: the mole enters honestly through a naive member.
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
	mole, _ := r.Labeled("mole")

	// Let the mole farm reputation up to the spree phase's tick, so we
	// can show what it walks in with.
	if err := w.RunFor(30_000 - w.Engine().Now()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mole %s farmed reputation %.3f (floor for introducing: %.2f, stake per lend: %.2f)\n",
		mole.Short(), w.Reputation(mole), spec.Base.MinIntroRep, spec.Base.IntroAmt)
	bound := (w.Reputation(mole) - spec.Base.MinIntroRep) / spec.Base.IntroAmt
	fmt.Printf("staking bound: at most ~%.0f consecutive unreturned lends before the floor\n\n", bound)

	// Phase 2: the spree — one colluder per waiting period. The
	// AfterInjection hook observes each wave after it settles.
	fmt.Println("wave  mole-rep  colluder  admitted")
	wave, admitted := 0, 0
	r.AfterInjection = func(o scenario.InjectionOutcome) {
		wave++
		in := w.IsAdmitted(o.Peer)
		if in {
			admitted++
		}
		fmt.Printf("%4d  %8.3f  %s  %v\n", wave, w.Reputation(mole), o.Peer.Short(), in)
	}
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
	r.AfterInjection = nil

	// Tail: let audits fire and the dust settle.
	res, err := r.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the dust settles:\n")
	fmt.Printf("  colluders admitted: %d of %d (staking bound held)\n", admitted, wave)
	fmt.Printf("  mole reputation: %.3f\n", res.FinalReputation["mole"])
	fmt.Printf("  audits forfeited: %d (each cost the mole its stake)\n", res.Metrics.AuditsForfeited)
	worst := 0.0
	for i := 1; i <= wave; i++ {
		if rep := res.FinalReputation[fmt.Sprintf("colluder-%d", i)]; rep > worst {
			worst = rep
		}
	}
	fmt.Printf("  highest colluder reputation: %.3f — the clique never gained a foothold\n", worst)
}
