package nopanic_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nopanic"
)

func TestNoPanic(t *testing.T) {
	linttest.Run(t, "testdata", nopanic.Analyzer,
		"sim.example/internal/sim",   // watched: findings expected
		"sim.example/internal/fleet", // exempt: panic allowed
	)
}
