package topology

import (
	"fmt"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
)

// selectors builds one of each kind over the same peer set.
func selectors(t *testing.T, n int) []Selector {
	t.Helper()
	out := []Selector{NewUniform(rng.New(1)), NewScaleFree(rng.New(2), DefaultAttachEdges)}
	for _, s := range out {
		for i := 0; i < n; i++ {
			s.Add(id.HashString(fmt.Sprintf("peer-%d", i)))
		}
	}
	return out
}

func TestRemoveDetachesPeer(t *testing.T) {
	for _, s := range selectors(t, 50) {
		victim := id.HashString("peer-7")
		s.Remove(victim)
		if s.Contains(victim) {
			t.Fatalf("%T still contains the removed peer", s)
		}
		if got := s.Len(); got != 49 {
			t.Fatalf("%T: Len() = %d after removal, want 49", s, got)
		}
		for i := 0; i < 5_000; i++ {
			p, ok := s.Pick(id.ID{})
			if !ok {
				t.Fatalf("%T: pick failed with 49 peers", s)
			}
			if p == victim {
				t.Fatalf("%T picked the removed peer", s)
			}
		}
		// Removing an unregistered peer is a no-op.
		s.Remove(id.HashString("nobody"))
		if got := s.Len(); got != 49 {
			t.Fatalf("%T: Len() = %d after no-op removal, want 49", s, got)
		}
	}
}

func TestRemoveThenReAddRejoins(t *testing.T) {
	for _, s := range selectors(t, 20) {
		victim := id.HashString("peer-3")
		s.Remove(victim)
		s.Add(victim) // a rejoining peer re-wires like a newcomer
		if !s.Contains(victim) || s.Len() != 20 {
			t.Fatalf("%T: re-add failed (len %d)", s, s.Len())
		}
		found := false
		for i := 0; i < 20_000 && !found; i++ {
			p, _ := s.Pick(id.ID{})
			found = p == victim
		}
		if !found {
			t.Fatalf("%T never picks the re-added peer", s)
		}
	}
}

func TestRemoveDownToOne(t *testing.T) {
	for _, s := range selectors(t, 5) {
		for i := 0; i < 4; i++ {
			s.Remove(id.HashString(fmt.Sprintf("peer-%d", i)))
		}
		last := id.HashString("peer-4")
		if p, ok := s.Pick(id.ID{}); !ok || p != last {
			t.Fatalf("%T: last survivor not pickable (got %v, %v)", s, p.Short(), ok)
		}
		// The survivor excluded: nothing left to pick.
		if _, ok := s.Pick(last); ok {
			t.Fatalf("%T picked something with the only peer excluded", s)
		}
	}
}

func TestScaleFreeRemovalChurn(t *testing.T) {
	s := NewScaleFree(rng.New(9), DefaultAttachEdges)
	src := rng.New(10)
	var live []id.ID
	for step := 0; step < 2_000; step++ {
		switch {
		case len(live) < 3 || src.Bernoulli(0.55):
			p := id.HashString(fmt.Sprintf("churn-%d", step))
			s.Add(p)
			live = append(live, p)
		default:
			i := src.Intn(len(live))
			s.Remove(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if s.Len() != len(live) {
			t.Fatalf("step %d: Len() = %d, want %d", step, s.Len(), len(live))
		}
		if len(live) > 1 {
			p, ok := s.Pick(live[0])
			if !ok || p == live[0] || !s.Contains(p) {
				t.Fatalf("step %d: bad pick %v %v", step, p.Short(), ok)
			}
		}
	}
}
