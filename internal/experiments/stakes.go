package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// StakeSweep is the stake-liquidity extension experiment: the Figure-1
// growth workload under steady churn, swept over the admission-stake
// audit timeout. Point 0 (timeout disabled) is the paper's implicit
// policy and measures the leak churn opens — stakes whose newcomer or
// introducer departs before the audit settles hang in limbo as pending
// mass forever. Each enabled point arms the lifecycle clock: pending
// stakes resolve at the deadline (refunded to a surviving party, or
// stranded when both are gone for good) and offline newcomers' stake
// records expire under the same TTL. The sweep answers two questions:
// how much staked mass the timeout recovers as T tightens, and how much
// it costs — a deadline below the audit latency (≈ auditTrans·population
// /2 ticks) starts refunding stakes the audit would have settled.
// Whatever T, the ledger conserves: staked mass = settled + refunded +
// stranded + pending at every point.
type StakeSweep struct {
	// Timeouts are the swept audit deadlines, in ticks (0 = disabled).
	Timeouts []int64
	// Per sweep point, averaged over replicas:
	FinalPop []float64 // community size at end
	Settled  []float64 // audits run (satisfied + forfeited; a satisfied audit with the introducer gone strands instead of settling)
	Refunded []float64 // stakes the timeout resolved in a survivor's favour
	Stranded []float64 // stakes lost with nobody to pay
	Expired  []float64 // offline stake records dropped by the TTL
	// The mass ledger, averaged over replicas:
	StakedMass   []float64
	SettledMass  []float64
	RefundedMass []float64
	StrandedMass []float64
	PendingMass  []float64
}

// stakeConfig is one sweep point: Figure 1's growth conditions under the
// steady churn mix that orphans introductions mid-flight, with the given
// audit deadline armed.
func stakeConfig(timeout int64) config.Config {
	c := config.Default()
	c.Lambda = 0.1
	c.NumTrans = 50_000
	c.Churn.Mu = 0.05
	c.Churn.CrashFrac = 0.3
	c.Churn.RejoinProb = 0.3
	c.Churn.DowntimeMean = 2_000
	c.Churn.Migrate = true
	c.StakeTimeout = timeout
	return c
}

// defaultStakeTimeouts derives the swept deadlines from the (scaled) run
// length L: disabled, then L/20 … 2L/5 — so the sweep keeps its shape at
// any -scale, and the widest point sits near the audit latency where the
// settle-vs-refund tradeoff turns over.
func defaultStakeTimeouts(numTrans int64) []int64 {
	return []int64{0, numTrans / 20, numTrans / 10, numTrans / 5, 2 * numTrans / 5}
}

// RunStakes executes the stake-timeout sweep at the given scale. A nil
// timeouts slice sweeps the scale-relative defaults; explicit values are
// used as given (the caller knows its scale).
func RunStakes(timeouts []int64, opt Options) (*StakeSweep, error) {
	opt = opt.withDefaults()
	if len(timeouts) == 0 {
		timeouts = defaultStakeTimeouts(opt.apply(stakeConfig(0)).NumTrans)
	}
	out := &StakeSweep{Timeouts: timeouts}
	for i, timeout := range timeouts {
		cfg := opt.apply(stakeConfig(0))
		cfg.StakeTimeout = timeout // set after scaling: the values are literal ticks
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		out.FinalPop = append(out.FinalPop, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.CoopInSystem + r.Metrics.UncoopInSystem
		}))
		out.Settled = append(out.Settled, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.AuditsSatisfied + r.Metrics.AuditsForfeited
		}))
		out.Refunded = append(out.Refunded, meanOf(rs, func(r Replica) int64 { return r.Metrics.Churn.StakesRefunded }))
		out.Stranded = append(out.Stranded, meanOf(rs, func(r Replica) int64 { return r.Metrics.Churn.StakesStranded }))
		out.Expired = append(out.Expired, meanOf(rs, func(r Replica) int64 { return r.Metrics.Churn.StakesExpired }))
		mass := func(f func(Replica) float64) float64 {
			acc := statOf(rs, f)
			return acc.Mean()
		}
		out.StakedMass = append(out.StakedMass, mass(func(r Replica) float64 { return r.Proto.StakedMass }))
		out.SettledMass = append(out.SettledMass, mass(func(r Replica) float64 { return r.Proto.SettledMass }))
		out.RefundedMass = append(out.RefundedMass, mass(func(r Replica) float64 { return r.Proto.RefundedMass }))
		out.StrandedMass = append(out.StrandedMass, mass(func(r Replica) float64 { return r.Proto.StrandedMass }))
		out.PendingMass = append(out.PendingMass, mass(func(r Replica) float64 { return r.Proto.PendingMass }))
	}
	return out, nil
}

// Name implements Report.
func (s *StakeSweep) Name() string { return "stakes" }

// Table renders the sweep.
func (s *StakeSweep) Table() string {
	t := &TextTable{
		Title: "Stake-timeout sweep — admission economics under churn (extension; λ=0.1, μ=0.05, 30% crashes, 30% rejoin)",
		Header: []string{"stakeTimeout", "final pop", "audits", "refunded", "stranded", "expired",
			"mass staked", "mass settled", "mass refunded", "mass stranded", "mass pending"},
	}
	for i, timeout := range s.Timeouts {
		t.AddRow(timeout, s.FinalPop[i], s.Settled[i], s.Refunded[i], s.Stranded[i], s.Expired[i],
			s.StakedMass[i], s.SettledMass[i], s.RefundedMass[i], s.StrandedMass[i], s.PendingMass[i])
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nexpected: with the timeout disabled the churn leak shows up as pending mass that\n" +
		"never clears; arming the clock drains it into refunds (and a small counted stranded\n" +
		"mass), more aggressively as T tightens — until T undercuts the audit latency and\n" +
		"begins refunding stakes the audit would have settled. At every point the ledger\n" +
		"conserves: staked = settled + refunded + stranded + pending\n")
	return b.String()
}

// CSV renders the sweep series.
func (s *StakeSweep) CSV() string {
	var b strings.Builder
	b.WriteString("stake_timeout,final_pop,audits,refunded,stranded,expired," +
		"mass_staked,mass_settled,mass_refunded,mass_stranded,mass_pending\n")
	for i, timeout := range s.Timeouts {
		fmt.Fprintf(&b, "%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n", timeout,
			s.FinalPop[i], s.Settled[i], s.Refunded[i], s.Stranded[i], s.Expired[i],
			s.StakedMass[i], s.SettledMass[i], s.RefundedMass[i], s.StrandedMass[i], s.PendingMass[i])
	}
	return b.String()
}
