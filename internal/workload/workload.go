// Package workload layers calibrated arrival and session generation over
// the paper's single homogeneous Poisson knob. A Spec describes one of
// three generator regimes, composable except where noted:
//
//   - A nonstationary rate program: piecewise arrival-rate windows with
//     optional linear ramps, periodic repetition (day/night profiles) and
//     absolute-time flash-crowd spikes. The world drives it with
//     Lewis–Shedler thinning over its existing arrival clock, so the
//     program needs no window-boundary events and checkpoints resume
//     mid-window byte-identically.
//
//   - Behavioural cohorts: named peer classes with per-cohort freeriding
//     fractions, session-length distributions, crash/rejoin propensities
//     and relative demand rates. A deterministic weighted mixer assigns a
//     cohort at arrival; each admitted visit gets a Plan whose draws come
//     from a keyed per-peer stream, so rejoin and resume replay them
//     exactly.
//
//   - Trace replay: a versioned JSON-lines format of arrival/departure/
//     session events. A Recorder exports a generated run's events; a
//     replayed trace re-drives the arrivals byte-reproducibly (same
//     config and seed ⇒ identical metrics to the recorded run).
//
// The package owns no randomness stream of its own: every draw comes
// from a source the world passes in, keeping the determinism contract
// (see docs/determinism.md) intact.
package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/churn"
)

// SessionNone is the cohort session-distribution name that disables the
// per-peer session clock for that cohort even when the run's global
// churn parameters arm one.
const SessionNone = "none"

// Spec is the workload block of a run configuration. All fields are
// optional; a nil or zero Spec means the classic homogeneous generator.
type Spec struct {
	// Rate, when set, replaces the homogeneous Poisson arrival process
	// with a nonstationary rate program. The config's Lambda is ignored
	// while a program governs arrivals.
	Rate *Program `json:"rate,omitempty"`
	// Cohorts, when non-empty, assigns every generated arrival to a
	// weighted behavioural cohort.
	Cohorts []Cohort `json:"cohorts,omitempty"`
	// Trace, when non-empty, replays the recorded arrival events instead
	// of generating them. Mutually exclusive with Rate.
	Trace []Event `json:"trace,omitempty"`
}

// LoadSpec parses a standalone workload spec (the -workload flag),
// rejecting unknown fields like scenario.Load does. Validation against
// the run's churn parameters happens when the enclosing configuration
// validates.
func LoadSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if dec.More() {
		return nil, errors.New("workload: trailing data after spec")
	}
	return &s, nil
}

// Active reports whether any workload machinery is enabled.
func (s *Spec) Active() bool {
	return s != nil && (s.Rate != nil || len(s.Cohorts) > 0 || len(s.Trace) > 0)
}

// Replaying reports whether the spec replays a recorded trace.
func (s *Spec) Replaying() bool { return s != nil && len(s.Trace) > 0 }

// Weights returns the cohort mixer weights in spec order (nil without
// cohorts). The slice is freshly allocated.
func (s *Spec) Weights() []float64 {
	if s == nil || len(s.Cohorts) == 0 {
		return nil
	}
	ws := make([]float64, len(s.Cohorts))
	for i, c := range s.Cohorts {
		ws[i] = c.Weight
	}
	return ws
}

// MaxDemand returns the largest relative demand across cohorts, floored
// at the default demand 1 carried by founders and cohort-less peers.
func (s *Spec) MaxDemand() float64 {
	max := 1.0
	if s == nil {
		return max
	}
	for _, c := range s.Cohorts {
		if d := c.DemandRate(); d > max {
			max = d
		}
	}
	return max
}

// DemandWeighted reports whether any cohort requests a non-default
// demand, i.e. whether the requester mixer must weight its picks.
func (s *Spec) DemandWeighted() bool {
	if s == nil {
		return false
	}
	for _, c := range s.Cohorts {
		if c.Demand != 0 && c.Demand != 1 {
			return true
		}
	}
	return false
}

// Validate checks the spec against the run's global churn parameters
// (cohort fields left unset inherit from them, so the resolved values
// are what must hold).
func (s *Spec) Validate(global churn.Params) error {
	if s == nil {
		return nil
	}
	if s.Rate != nil && len(s.Trace) > 0 {
		return fmt.Errorf("workload: rate program and trace replay are mutually exclusive")
	}
	if s.Rate != nil {
		if err := s.Rate.Validate(); err != nil {
			return err
		}
	}
	for i, c := range s.Cohorts {
		if err := c.validate(global); err != nil {
			return fmt.Errorf("workload: cohort %d: %w", i, err)
		}
		for _, prev := range s.Cohorts[:i] {
			if prev.Name == c.Name {
				return fmt.Errorf("workload: duplicate cohort name %q", c.Name)
			}
		}
	}
	if err := ValidateEvents(s.Trace); err != nil {
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Nonstationary rate programs.

// Program is a piecewise arrival-rate schedule: consecutive windows from
// tick 0, optionally repeating, with absolute-time spikes layered on top.
type Program struct {
	// Windows are consecutive rate segments starting at tick 0.
	Windows []Window `json:"windows"`
	// Repeat loops the window sequence periodically (sum of window
	// lengths per cycle) instead of holding the final rate forever.
	Repeat bool `json:"repeat,omitempty"`
	// Spikes override the window rate on absolute-time intervals —
	// flash crowds. The first matching spike wins.
	Spikes []Spike `json:"spikes,omitempty"`
}

// Window is one rate segment.
type Window struct {
	// Len is the segment length in ticks.
	Len float64 `json:"len"`
	// Lambda is the arrival rate at the segment start.
	Lambda float64 `json:"lambda"`
	// RampTo, when set, ramps the rate linearly from Lambda to this
	// value across the window.
	RampTo *float64 `json:"rampTo,omitempty"`
}

// Spike is a flash crowd: an absolute-time interval whose rate overrides
// the windows.
type Spike struct {
	// At is the spike start tick (absolute run time, not cycle time).
	At float64 `json:"at"`
	// Len is the spike duration in ticks.
	Len float64 `json:"len"`
	// Lambda is the arrival rate during the spike.
	Lambda float64 `json:"lambda"`
}

// Period returns the length of one window cycle.
func (p *Program) Period() float64 {
	total := 0.0
	for _, w := range p.Windows {
		total += w.Len
	}
	return total
}

// Rate evaluates the instantaneous arrival rate at tick t.
func (p *Program) Rate(t float64) float64 {
	for _, s := range p.Spikes {
		if t >= s.At && t < s.At+s.Len {
			return s.Lambda
		}
	}
	if len(p.Windows) == 0 {
		return 0
	}
	if period := p.Period(); p.Repeat && t >= period {
		t = math.Mod(t, period)
	}
	for _, w := range p.Windows {
		if t < w.Len {
			if w.RampTo != nil {
				return w.Lambda + (*w.RampTo-w.Lambda)*(t/w.Len)
			}
			return w.Lambda
		}
		t -= w.Len
	}
	// Past the end of a non-repeating program: hold the final rate.
	last := p.Windows[len(p.Windows)-1]
	if last.RampTo != nil {
		return *last.RampTo
	}
	return last.Lambda
}

// MaxRate returns the program's rate ceiling — the thinning envelope the
// world draws candidate arrivals at. Zero means the program never
// generates an arrival.
func (p *Program) MaxRate() float64 {
	max := 0.0
	for _, w := range p.Windows {
		if w.Lambda > max {
			max = w.Lambda
		}
		if w.RampTo != nil && *w.RampTo > max {
			max = *w.RampTo
		}
	}
	for _, s := range p.Spikes {
		if s.Lambda > max {
			max = s.Lambda
		}
	}
	return max
}

// Validate checks the program.
func (p *Program) Validate() error {
	if len(p.Windows) == 0 {
		return fmt.Errorf("workload: rate program needs at least one window")
	}
	for i, w := range p.Windows {
		switch {
		case w.Len <= 0:
			return fmt.Errorf("workload: window %d: Len %v not positive", i, w.Len)
		case w.Lambda < 0:
			return fmt.Errorf("workload: window %d: Lambda %v negative", i, w.Lambda)
		case w.RampTo != nil && *w.RampTo < 0:
			return fmt.Errorf("workload: window %d: RampTo %v negative", i, *w.RampTo)
		}
	}
	for i, s := range p.Spikes {
		switch {
		case s.At < 0:
			return fmt.Errorf("workload: spike %d: At %v negative", i, s.At)
		case s.Len <= 0:
			return fmt.Errorf("workload: spike %d: Len %v not positive", i, s.Len)
		case s.Lambda < 0:
			return fmt.Errorf("workload: spike %d: Lambda %v negative", i, s.Lambda)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Behavioural cohorts.

// Cohort is one named behavioural peer class. Pointer fields distinguish
// "unset, inherit the run's global value" from an explicit zero; plain
// zero-valued fields inherit.
type Cohort struct {
	// Name labels the cohort in traces, metrics and summaries.
	Name string `json:"name"`
	// Weight is the cohort's share in the arrival mixer (relative, need
	// not sum to one).
	Weight float64 `json:"weight"`
	// Uncoop, when set, overrides the run's FracUncoop for arrivals of
	// this cohort (0 = all cooperative, 1 = all freeriders).
	Uncoop *float64 `json:"uncoop,omitempty"`
	// Demand is the cohort's relative transaction-initiation rate; 0 or
	// 1 means the default uniform share.
	Demand float64 `json:"demand,omitempty"`
	// SessionDist overrides the session-length distribution
	// ("exponential", "uniform", "pareto", or "none" to disable the
	// session clock for this cohort). Empty inherits the global one.
	SessionDist string `json:"sessionDist,omitempty"`
	// SessionMean overrides the mean session length; 0 inherits.
	SessionMean float64 `json:"sessionMean,omitempty"`
	// CrashFrac, when set, overrides the fraction of this cohort's
	// departures that are abrupt crashes.
	CrashFrac *float64 `json:"crashFrac,omitempty"`
	// RejoinProb, when set, overrides the probability that a departed
	// member of this cohort returns.
	RejoinProb *float64 `json:"rejoinProb,omitempty"`
	// DowntimeMean overrides the mean downtime before a rejoin; 0
	// inherits.
	DowntimeMean float64 `json:"downtimeMean,omitempty"`
}

// DemandRate is the cohort's effective relative demand: the default
// share 1 when Demand is unset.
func (c Cohort) DemandRate() float64 {
	if c.Demand <= 0 {
		return 1
	}
	return c.Demand
}

// Params resolves the cohort's session-model parameters over the run's
// global churn parameters: unset cohort fields inherit the global value.
func (c Cohort) Params(global churn.Params) SessionParams {
	p := SessionParams{
		Dist:         c.SessionDist,
		Mean:         c.SessionMean,
		CrashFrac:    global.CrashFrac,
		RejoinProb:   global.RejoinProb,
		DowntimeMean: c.DowntimeMean,
	}
	if p.Dist == "" {
		p.Dist = global.SessionDist
	}
	if p.Mean == 0 {
		p.Mean = global.SessionMean
	}
	if p.Dist == SessionNone {
		p.Mean = 0
	}
	if c.CrashFrac != nil {
		p.CrashFrac = *c.CrashFrac
	}
	if c.RejoinProb != nil {
		p.RejoinProb = *c.RejoinProb
	}
	if p.DowntimeMean == 0 {
		p.DowntimeMean = global.DowntimeMean
	}
	return p
}

func (c Cohort) validate(global churn.Params) error {
	switch {
	case c.Name == "":
		return fmt.Errorf("cohort needs a name")
	case c.Weight <= 0:
		return fmt.Errorf("Weight %v not positive", c.Weight)
	case c.Uncoop != nil && (*c.Uncoop < 0 || *c.Uncoop > 1):
		return fmt.Errorf("Uncoop %v out of [0,1]", *c.Uncoop)
	case c.Demand < 0:
		return fmt.Errorf("Demand %v negative", c.Demand)
	case c.SessionMean < 0:
		return fmt.Errorf("SessionMean %v negative", c.SessionMean)
	case c.CrashFrac != nil && (*c.CrashFrac < 0 || *c.CrashFrac > 1):
		return fmt.Errorf("CrashFrac %v out of [0,1]", *c.CrashFrac)
	case c.RejoinProb != nil && (*c.RejoinProb < 0 || *c.RejoinProb > 1):
		return fmt.Errorf("RejoinProb %v out of [0,1]", *c.RejoinProb)
	case c.DowntimeMean < 0:
		return fmt.Errorf("DowntimeMean %v negative", c.DowntimeMean)
	}
	switch c.SessionDist {
	case "", SessionNone, churn.SessionExponential, churn.SessionUniform, churn.SessionPareto:
	default:
		return fmt.Errorf("unknown session distribution %q", c.SessionDist)
	}
	resolved := c.Params(global)
	if resolved.RejoinProb > 0 && resolved.DowntimeMean <= 0 {
		return fmt.Errorf("resolved RejoinProb %v needs a positive DowntimeMean", resolved.RejoinProb)
	}
	return nil
}
