// Workload-layer integration: nonstationary arrival programs via
// Lewis–Shedler thinning, the behavioural-cohort mixer, and trace
// replay/record. The layer owns two dedicated randomness streams —
// wkArrivalRand for the candidate arrival clock and its thinning
// accepts, cohortRand for the cohort mixer and workload-path
// class/style draws — so switching a run between the classic Poisson
// generator and a workload block never perturbs any other stream.
// Per-peer session plans draw from stateless keyed streams (see
// workload.PlanSource), which is what lets checkpoint-resume and trace
// replay re-derive every plan exactly.
package world

import (
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/workload"
)

// replaying reports whether a recorded trace, not a generator, drives
// this run's arrivals.
func (w *World) replaying() bool {
	return w.cfg.Workload.Replaying()
}

// workloadAssigning reports whether generated arrivals go through the
// workload path (cohort mixer, plan draws) instead of the classic
// behaviour-stream draws.
func (w *World) workloadAssigning() bool {
	return w.cfg.Workload.Active() && !w.replaying()
}

// SetWorkloadRecorder attaches a recorder that captures every workload
// event (arrival, departure, rejoin) of the run for later replay.
// Attaching one changes no randomness draw and no output: recording is
// an observability sink, not simulation state. Attach before the clock
// advances past tick 0 (Start only schedules; no event has fired yet).
func (w *World) SetWorkloadRecorder(r *workload.Recorder) { w.wkRecorder = r }

// recordWorkload hands one event to the attached recorder, if any.
func (w *World) recordWorkload(ev workload.Event) {
	if w.wkRecorder != nil {
		w.wkRecorder.Record(ev)
	}
}

// scheduleNextCandidate arms the next candidate arrival of the
// Lewis–Shedler thinning chain: candidates fire at the program's peak
// rate and are accepted at fire time with probability rate(now)/peak,
// which realises the exact nonstationary Poisson process. The chain
// reuses the classic "arrival" event and its generation guard, so
// checkpointing and delta re-arms treat both generators identically.
func (w *World) scheduleNextCandidate() {
	max := w.wkProgram.MaxRate()
	if max <= 0 {
		return
	}
	gen := w.arrivalGen
	w.arrClock += w.wkArrivalRand.Exp(max)
	at := sim.Tick(w.arrClock)
	if at <= w.engine.Now() {
		// Same tick-grid clamp and clock re-anchor as the classic chain
		// (see scheduleNextArrival).
		at = w.engine.Now() + 1
		w.arrClock = float64(at)
	}
	w.engine.SchedulePayload(at, "arrival", genPayload{Gen: gen}, w.arrivalBody(gen))
}

// thinnedArrival runs the accept step of the thinning chain: the
// candidate becomes a real arrival iff u·peak < rate(now). The strict
// inequality makes a zero-rate window reject every candidate and a
// peak-rate window accept every one (u < 1 always).
func (w *World) thinnedArrival() {
	max := w.wkProgram.MaxRate()
	if w.wkArrivalRand.Float64()*max < w.wkProgram.Rate(float64(w.engine.Now())) {
		w.handleArrival()
	}
}

// handleWorkloadArrival creates one generated arrival through the
// workload layer: the cohort mixer picks the peer's cohort, class and
// style draw from the cohort-resolved fractions on the cohort stream,
// and the cohort's session plan is derived from the peer's keyed plan
// stream.
func (w *World) handleWorkloadArrival() {
	wl := w.cfg.Workload
	var cohort *workload.Cohort
	if len(w.wkWeights) > 0 {
		cohort = &wl.Cohorts[w.cohortRand.Pick(w.wkWeights)]
	}
	frac := w.cfg.FracUncoop
	if cohort != nil && cohort.Uncoop != nil {
		frac = *cohort.Uncoop
	}
	class := peer.AssignArrivalClass(frac, w.cohortRand)
	style := peer.AssignStyle(class, w.cfg.FracNaive, w.cohortRand)
	p := w.newPeer(w.newPeerID(), class, style)
	p.PlanOrdinal = w.seq
	if cohort != nil {
		p.Cohort = cohort.Name
		params := cohort.Params(w.cfg.Churn)
		plan := workload.DrawPlan(params, workload.PlanSource(w.wkPlanSeed, p.PlanOrdinal, p.PlanSeq))
		p.PlanSeq++
		p.Plan = &plan
	}
	w.finishArrival(p)
}

// cohortStats returns the per-cohort counter row for the named cohort,
// creating it on first sight so rows appear in generated-run order
// (which is also replay order). Nil for the empty name, so classic
// peers and founders never grow a row.
func (w *World) cohortStats(name string) *CohortStats {
	if name == "" {
		return nil
	}
	for i := range w.m.Cohorts {
		if w.m.Cohorts[i].Name == name {
			return &w.m.Cohorts[i]
		}
	}
	w.m.Cohorts = append(w.m.Cohorts, CohortStats{Name: name})
	return &w.m.Cohorts[len(w.m.Cohorts)-1]
}

// redrawPlan draws the peer's next session plan (the rejoin path: a
// returning peer starts a fresh visit under fresh draws) from its keyed
// plan stream.
func (w *World) redrawPlan(p *peer.Peer) {
	plan := workload.DrawPlan(p.Plan.SessionParams, workload.PlanSource(w.wkPlanSeed, p.PlanOrdinal, p.PlanSeq))
	p.PlanSeq++
	p.Plan = &plan
}

// sessionExtension draws the extra session length granted when the
// population floor blocks a session departure. Plan-governed peers draw
// from their keyed stream; classic peers from the churn process.
func (w *World) sessionExtension(p *peer.Peer) float64 {
	if p.Plan == nil {
		return w.churnProc.SessionLength()
	}
	s := workload.DrawSession(p.Plan.SessionParams, workload.PlanSource(w.wkPlanSeed, p.PlanOrdinal, p.PlanSeq))
	p.PlanSeq++
	return s
}

// planCrashes resolves whether this peer's departure is an abrupt
// crash: from its pre-drawn plan when governed, from the churn stream
// otherwise.
func (w *World) planCrashes(p *peer.Peer) bool {
	if p.Plan == nil {
		return w.churnProc.Crashes()
	}
	return p.Plan.Crash
}

// planRejoins resolves whether (and when) this departing peer returns.
func (w *World) planRejoins(p *peer.Peer) (after float64, ok bool) {
	if p.Plan == nil {
		return w.churnProc.Rejoins()
	}
	if p.Plan.Rejoin > 0 {
		return p.Plan.Rejoin, true
	}
	return 0, false
}

// peerDemand returns the relative transaction-demand rate of the peer's
// cohort (1 for uncohorted peers).
func (w *World) peerDemand(p *peer.Peer) float64 {
	if p.Cohort == "" || w.cfg.Workload == nil {
		return 1
	}
	for i := range w.cfg.Workload.Cohorts {
		if w.cfg.Workload.Cohorts[i].Name == p.Cohort {
			return w.cfg.Workload.Cohorts[i].DemandRate()
		}
	}
	return 1
}

// demandTries bounds the rejection-sampling loop of pickRequester: a
// run of rejections beyond this falls back to the last draw, keeping
// the per-transaction draw count bounded.
const demandTries = 8

// pickRequester draws the requester index for one transaction. Without
// demand weighting this is the classic single uniform draw; with it,
// bounded rejection sampling accepts a peer with probability
// demand/maxDemand, realising per-cohort demand rates.
func (w *World) pickRequester(n int) *peer.Peer {
	p := w.admittedPeers[w.workloadRand.Intn(n)]
	if !w.wkDemandOn {
		return p
	}
	for try := 0; try < demandTries; try++ {
		d := w.peerDemand(p)
		if d >= w.wkMaxDemand || w.workloadRand.Float64()*w.wkMaxDemand < d {
			return p
		}
		p = w.admittedPeers[w.workloadRand.Intn(n)]
	}
	return p
}

// scheduleReplay arms the replay chain at the idx-th trace event,
// skipping non-arrival records (departures and rejoins in a trace are
// provenance, not commands: the replayed run's own session plans
// reproduce them). Each pending replay event carries its index so a
// checkpoint can rebuild the chain exactly.
func (w *World) scheduleReplay(idx int64) {
	tr := w.cfg.Workload.Trace
	for idx < int64(len(tr)) && tr[idx].Op != workload.OpArrival {
		idx++
	}
	w.wkReplayNext = idx
	if idx >= int64(len(tr)) {
		return
	}
	at := sim.Tick(tr[idx].At)
	if at <= w.engine.Now() {
		at = w.engine.Now() + 1
	}
	w.engine.SchedulePayload(at, "wk-replay", replayPayload{Idx: idx}, w.replayBody(idx))
}

// replayBody returns the engine callback that re-drives the idx-th
// trace event and arms the next one.
func (w *World) replayBody(idx int64) func() {
	return func() {
		if w.err != nil {
			return
		}
		w.handleReplayArrival(w.cfg.Workload.Trace[idx])
		w.scheduleReplay(idx + 1)
	}
}

// handleReplayArrival re-drives one recorded arrival. Class and style
// come verbatim from the trace when recorded; a trace without them (a
// hand-written one) draws live from the cohort stream. The recorded
// plan, when present, is installed as drawn — the peer's keyed plan
// stream continues at seq 1, so pop-floor extensions and rejoin redraws
// of the replayed run still match the recorded one.
func (w *World) handleReplayArrival(ev workload.Event) {
	var class peer.Class
	switch ev.Class {
	case workload.ClassCooperative:
		class = peer.Cooperative
	case workload.ClassUncooperative:
		class = peer.Uncooperative
	default:
		class = peer.AssignArrivalClass(w.cfg.FracUncoop, w.cohortRand)
	}
	var style peer.Style
	switch ev.Style {
	case workload.StyleNaive:
		style = peer.Naive
	case workload.StyleSelective:
		style = peer.Selective
	default:
		style = peer.AssignStyle(class, w.cfg.FracNaive, w.cohortRand)
	}
	p := w.newPeer(w.newPeerID(), class, style)
	p.Cohort = ev.Cohort
	p.PlanOrdinal = w.seq
	if ev.Plan != nil {
		plan := *ev.Plan
		p.Plan = &plan
		p.PlanSeq = 1
	}
	w.finishArrival(p)
}
