package world

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/topology"
)

// smallCfg returns a configuration scaled down for fast integration tests:
// 60 founders, 8000 ticks, brisk arrivals.
func smallCfg() config.Config {
	c := config.Default()
	c.NumInit = 60
	c.NumTrans = 8000
	c.Lambda = 0.05
	c.WaitPeriod = 100
	c.SampleEvery = 1000
	c.Seed = 7
	return c
}

func TestNewValidatesConfig(t *testing.T) {
	c := config.Default()
	c.NumSM = 0
	if _, err := New(c); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFoundersSetup(t *testing.T) {
	c := smallCfg()
	c.Lambda = 0 // no arrivals
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if w.PopulationSize() != c.NumInit {
		t.Fatalf("population = %d, want %d", w.PopulationSize(), c.NumInit)
	}
	if w.Ring().Size() != c.NumInit {
		t.Fatalf("ring size = %d", w.Ring().Size())
	}
	m := w.Metrics()
	if m.Founders != int64(c.NumInit) || m.CoopInSystem != int64(c.NumInit) || m.UncoopInSystem != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// All founders fully reputed.
	for pid, p := range founders(w) {
		if p.Class != peer.Cooperative {
			t.Fatal("founder not cooperative")
		}
		if rep := w.Reputation(pid); math.Abs(rep-c.FounderRep) > 1e-9 {
			t.Fatalf("founder reputation %v, want %v", rep, c.FounderRep)
		}
	}
}

// founders enumerates the world's peers (all founders when Lambda=0).
func founders(w *World) map[[20]byte]*peer.Peer {
	out := map[[20]byte]*peer.Peer{}
	for i := 0; i < w.PopulationSize(); i++ {
		pid := w.admittedPeers[i].ID
		p, _ := w.Peer(pid)
		out[pid] = p
	}
	return out
}

func TestFoundersHaveMixedStyles(t *testing.T) {
	c := smallCfg()
	c.NumInit = 200
	c.Lambda = 0
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	naive, selective := 0, 0
	for _, p := range founders(w) {
		if p.Style == peer.Naive {
			naive++
		} else {
			selective++
		}
	}
	// fracNaive = 0.3 of 200 — allow wide slack for a single draw.
	if naive < 30 || naive > 95 {
		t.Fatalf("naive founders = %d of 200, want ≈60", naive)
	}
	if naive+selective != 200 {
		t.Fatal("style counts do not add up")
	}
}

func TestClosedCommunityStaysHealthy(t *testing.T) {
	// No arrivals: founders transact among themselves; reputations must
	// stay high and decisions near-perfect.
	c := smallCfg()
	c.Lambda = 0
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Served == 0 {
		t.Fatal("no transactions completed")
	}
	if sr := m.SuccessRate(); sr < 0.95 {
		t.Fatalf("success rate %v in an all-cooperative community", sr)
	}
	if last, ok := m.CoopReputation.Last(); !ok || last.V < 0.9 {
		t.Fatalf("cooperative reputation fell to %v", last.V)
	}
}

func TestArrivalsAdmittedThroughLending(t *testing.T) {
	c := smallCfg()
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.ArrivalsCoop+m.ArrivalsUncoop == 0 {
		t.Fatal("no arrivals happened")
	}
	if m.AdmittedCoop == 0 {
		t.Fatal("no cooperative newcomer was admitted")
	}
	// Accounting: every arrival is admitted, refused, pending, or was
	// turned away for lack of an introducer.
	arrivals := m.ArrivalsCoop + m.ArrivalsUncoop
	accounted := m.AdmittedCoop + m.AdmittedUncoop +
		m.RefusedSelectiveCoop + m.RefusedSelectiveUncoop +
		m.RefusedRepCoop + m.RefusedRepUncoop +
		m.RefusedNoIntroducer + m.Pending
	if accounted != arrivals {
		t.Fatalf("arrival accounting: %d arrivals, %d accounted (%+v)", arrivals, accounted, m)
	}
	// Population = founders + admitted.
	wantPop := int64(c.NumInit) + m.AdmittedCoop + m.AdmittedUncoop
	if int64(w.PopulationSize()) != wantPop {
		t.Fatalf("population %d, want %d", w.PopulationSize(), wantPop)
	}
	if m.CoopInSystem+m.UncoopInSystem != wantPop {
		t.Fatalf("class counts %d+%d != %d", m.CoopInSystem, m.UncoopInSystem, wantPop)
	}
}

func TestSelectiveIntroducersFilterUncooperative(t *testing.T) {
	// With every member selective and no errors, no uncooperative peer
	// can enter.
	c := smallCfg()
	c.FracNaive = 0
	c.ErrSel = 0
	c.NumTrans = 12000
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.AdmittedUncoop != 0 {
		t.Fatalf("%d uncooperative peers admitted through all-selective, zero-error introducers", m.AdmittedUncoop)
	}
	if m.ArrivalsUncoop > 0 && m.RefusedSelectiveUncoop == 0 && m.Pending == 0 {
		t.Fatalf("uncooperative arrivals neither refused nor pending: %+v", m)
	}
	if m.AdmittedCoop == 0 {
		t.Fatal("cooperative arrivals should still be admitted")
	}
}

func TestAllNaiveAdmitsUncooperative(t *testing.T) {
	c := smallCfg()
	c.FracNaive = 1
	c.FracUncoop = 0.5
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.AdmittedUncoop == 0 {
		t.Fatal("all-naive introducers admitted no uncooperative peers")
	}
}

func TestUncooperativeReputationsStayLow(t *testing.T) {
	c := smallCfg()
	c.FracNaive = 1 // let freeriders in
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 0; i < w.PopulationSize(); i++ {
		pid := w.admittedPeers[i].ID
		p, _ := w.Peer(pid)
		if p.Class != peer.Uncooperative {
			continue
		}
		// Only judge peers that have been in the system a while.
		if int64(p.JoinedAt) > c.NumTrans/2 {
			continue
		}
		checked++
		if rep := w.Reputation(pid); rep > 0.45 {
			t.Fatalf("established uncooperative peer holds reputation %v", rep)
		}
	}
	if checked == 0 {
		t.Skip("no established uncooperative peers this seed")
	}
}

func TestAuditsFire(t *testing.T) {
	c := smallCfg()
	c.FracNaive = 1
	c.NumTrans = 20000
	c.AuditTrans = 5 // audit quickly at this small scale
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.AuditsSatisfied+m.AuditsForfeited == 0 {
		t.Fatal("no admission audits fired")
	}
	ps := w.Protocol().Stats()
	if ps.AuditsSatisfied != m.AuditsSatisfied || ps.AuditsForfeited != m.AuditsForfeited {
		t.Fatalf("audit counters disagree: world %+v protocol %+v", m, ps)
	}
}

func TestBaselinePolicyPath(t *testing.T) {
	c := smallCfg()
	c.RequireIntroductions = false
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.SetPolicy(baseline.MidSpectrum{})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	arrivals := m.ArrivalsCoop + m.ArrivalsUncoop
	if arrivals == 0 {
		t.Fatal("no arrivals")
	}
	// Open admission: everyone gets in, nobody is refused or pending.
	if m.AdmittedCoop+m.AdmittedUncoop != arrivals {
		t.Fatalf("open admission refused someone: %+v", m)
	}
	if m.Pending != 0 || m.RefusedSelectiveCoop+m.RefusedSelectiveUncoop+m.RefusedRepCoop+m.RefusedRepUncoop != 0 {
		t.Fatalf("open admission produced refusals: %+v", m)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() Metrics {
		w, err := New(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return *w.Metrics()
	}
	a, b := run(), run()
	if a.Served != b.Served || a.AdmittedCoop != b.AdmittedCoop ||
		a.AdmittedUncoop != b.AdmittedUncoop || a.CorrectDecisions != b.CorrectDecisions {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	av, bv := a.CoopReputation.Values(), b.CoopReputation.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("reputation series diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	c1, c2 := smallCfg(), smallCfg()
	c2.Seed = 8
	w1, _ := New(c1)
	w2, _ := New(c2)
	if err := w1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	if w1.Metrics().Served == w2.Metrics().Served &&
		w1.Metrics().AdmittedCoop == w2.Metrics().AdmittedCoop &&
		w1.Metrics().CorrectDecisions == w2.Metrics().CorrectDecisions {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRandomTopologyRuns(t *testing.T) {
	c := smallCfg()
	c.Topology = topology.Random
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Metrics().Served == 0 {
		t.Fatal("random topology run served nothing")
	}
}

func TestSeriesSampling(t *testing.T) {
	c := smallCfg()
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	wantSamples := int(c.NumTrans/c.SampleEvery) + 1 // includes tick 0
	if len(m.CoopCount.Points) != wantSamples {
		t.Fatalf("coop count series has %d samples, want %d", len(m.CoopCount.Points), wantSamples)
	}
	if len(m.CoopReputation.Points) != wantSamples {
		t.Fatalf("reputation series has %d samples, want %d", len(m.CoopReputation.Points), wantSamples)
	}
	// Population series must be non-decreasing (peers never leave).
	vals := m.CoopCount.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("cooperative population decreased")
		}
	}
}

func TestSuccessRateWithFreeriders(t *testing.T) {
	// The headline §4.1 property at test scale: success rate of the
	// decision mechanism stays high with a cooperative majority.
	c := smallCfg()
	c.NumTrans = 20000
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sr := w.Metrics().SuccessRate(); sr < 0.7 {
		t.Fatalf("success rate %v too low", sr)
	}
}

func TestEngineAccessors(t *testing.T) {
	w, err := New(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if w.Engine() == nil || w.Bus() == nil || w.Ring() == nil || w.Protocol() == nil {
		t.Fatal("nil accessor")
	}
	if w.Config().NumInit != smallCfg().NumInit {
		t.Fatal("config accessor wrong")
	}
	if w.Engine().Now() != 0 {
		t.Fatal("fresh world clock not at 0")
	}
	var _ sim.Tick = w.Engine().Now()
}
