// Package scenario is the declarative workload layer: a JSON scenario
// spec describes the initial community (layered on config.Config), the
// adversary mix (uncooperative arrival fraction, collusion rings, traitors,
// whitewashing streams), timed phases that change parameters mid-run
// (churn waves, λ spikes, policy flips) or script arrivals and faults, and
// the metrics series to emit. The engine executes the spec; users open a
// new workload by writing a file, not a new main package.
//
// A spec is authored by hand (see docs/scenarios.md), loaded with Load,
// and executed with Spec.Run — or stepped phase by phase via Spec.Start
// for programs that want to observe the community between phases. The
// registry (Get, Names) holds built-in scenarios mirroring the repo's
// examples/* programs; golden tests pin each built-in to the metrics of
// the hard-coded program it replaced.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/peer"
	"repro/internal/world"
)

// Spec is one declarative scenario.
type Spec struct {
	// Name identifies the scenario (registry key, output file stem).
	Name string `json:"name"`
	// Description is the one-line story shown by `replend-sim scenarios list`.
	Description string `json:"description,omitempty"`
	// Base is the simulation configuration the run starts from. Absent
	// fields take the paper's Table 1 defaults. Base.NumTrans is the run
	// length in ticks; every phase must fit inside it.
	Base config.Config `json:"base"`
	// Phases are timed interventions, in non-decreasing tick order.
	Phases []Phase `json:"phases,omitempty"`
	// Output selects what the run emits.
	Output Output `json:"output,omitempty"`
}

// Phase is one timed intervention. When the simulation clock reaches At,
// its actions run in a fixed order: Set (parameter delta), Crash (fault
// injection), Depart (membership departures), Inject (scripted arrivals,
// possibly spaced over following ticks), Rejoin (departed members
// return), Recover (heal every node crashed so far).
type Phase struct {
	// Name labels the phase in logs and descriptions.
	Name string `json:"name,omitempty"`
	// At is the simulation tick the phase fires at.
	At int64 `json:"at"`
	// Set applies a parameter delta to the running world — the churn
	// wave / λ spike / policy flip hook.
	Set *world.Delta `json:"set,omitempty"`
	// Crash marks a fraction of a member's score managers crashed.
	Crash *Fault `json:"crash,omitempty"`
	// Depart removes admitted members — gracefully or by crash — in one
	// membership event, with score-manager state handoff when the base
	// configuration enables churn.
	Depart *Departure `json:"depart,omitempty"`
	// Inject scripts arrivals through chosen introducers.
	Inject []Injection `json:"inject,omitempty"`
	// Rejoin readmits the departed peers bound to these labels, restoring
	// their reputation from their score managers.
	Rejoin []string `json:"rejoin,omitempty"`
	// Recover heals every node crashed by earlier phases.
	Recover bool `json:"recover,omitempty"`
}

// Injection scripts the arrival of Count peers asking the selected
// member for an introduction. The introducer is resolved once, when the
// injection first runs, and reused for every repeat.
type Injection struct {
	// As binds the injected peer's identity to a label other phases can
	// reference (introducer: {"ref": "label"}) and results report. With
	// Count > 1 the repeats are labelled "label-1", "label-2", …
	As string `json:"as,omitempty"`
	// Class is "cooperative" or "uncooperative".
	Class string `json:"class"`
	// Style is "naive" or "selective". Default: the paper's assignment —
	// uncooperative peers are naive, cooperative ones selective.
	Style string `json:"style,omitempty"`
	// Introducer selects the member asked for the introduction.
	Introducer Selector `json:"introducer"`
	// Count repeats the injection (default 1) — a collusion ring is one
	// injection with Count = ring size.
	Count int `json:"count,omitempty"`
	// SpacedBy runs the simulation this many ticks after each repeat, so
	// e.g. a colluding ring files one introduction per waiting period.
	SpacedBy int64 `json:"spacedBy,omitempty"`
	// DefectAfter, when positive, makes the (necessarily cooperative)
	// peer a traitor: it behaves honestly for this many ticks after its
	// injection, then freerides and lies like an uncooperative peer.
	DefectAfter int64 `json:"defectAfter,omitempty"`
}

// Selector picks one community member at phase-execution time. The zero
// selector picks the first admitted member. Ref is mutually exclusive
// with the scan fields.
type Selector struct {
	// Ref picks the peer a previous injection (or departure) bound with
	// As.
	Ref string `json:"ref,omitempty"`
	// Style restricts the scan to members with this introduction style
	// ("naive" or "selective").
	Style string `json:"style,omitempty"`
	// Class restricts the scan to members of this behaviour class
	// ("cooperative" or "uncooperative").
	Class string `json:"class,omitempty"`
	// MinRep, when positive, restricts the scan to members whose current
	// reputation strictly exceeds it.
	MinRep float64 `json:"minRep,omitempty"`
	// FallbackFirst falls back to the first admitted member when no
	// member matches, instead of failing the run.
	FallbackFirst bool `json:"fallbackFirst,omitempty"`
}

// Departure is one membership-departure action: either the first Count
// admitted members matching Peers, or a fraction of the current score
// managers of a selected member (the availability-attack form), leave in
// a single membership event.
type Departure struct {
	// Peers selects departing members by scanning admitted peers in
	// admission order; Count takes the first Count matches (default 1).
	// Mutually exclusive with ScoreManagersOf; with both absent the
	// first admitted member departs.
	Peers *Selector `json:"peers,omitempty"`
	// Count is the number of matching members to depart (default 1).
	Count int `json:"count,omitempty"`
	// ScoreManagersOf departs the current score managers of the selected
	// member instead — the replica-wipeout experiment.
	ScoreManagersOf *Selector `json:"scoreManagersOf,omitempty"`
	// Fraction is the leading share of that score-manager set to depart
	// (default 1 = all of it; any positive fraction departs at least
	// one manager).
	Fraction float64 `json:"fraction,omitempty"`
	// Crash makes the departure abrupt: the leaving stores are destroyed
	// before any handoff, so records whose every replica dies in this
	// event are wiped out.
	Crash bool `json:"crash,omitempty"`
	// As labels the departed peers for a later rejoin phase ("label", or
	// "label-1"… when Count > 1). Only valid with Peers selection.
	As string `json:"as,omitempty"`
}

// Fault crashes part of a member's score-manager set: the members hosting
// its reputation stop receiving messages until a Recover phase.
type Fault struct {
	// ScoreManagersOf selects the member whose managers are hit.
	ScoreManagersOf Selector `json:"scoreManagersOf"`
	// Fraction of the score-manager set to crash (leading slots, floor).
	Fraction float64 `json:"fraction"`
}

// Output selects what a run emits.
type Output struct {
	// Series names the time series for CSV output, in column order. Valid
	// names: "coop", "uncoop", "coop-reputation". Empty means all three.
	Series []string `json:"series,omitempty"`
}

// seriesNames are the emittable time series.
var seriesNames = map[string]bool{"coop": true, "uncoop": true, "coop-reputation": true}

// Load parses a scenario from JSON. Absent Base fields take the paper's
// Table 1 defaults; unknown fields are rejected (they are almost always
// typos in hand-written files); the result is validated.
func Load(data []byte) (*Spec, error) {
	s := &Spec{Base: config.Default()}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: parsing: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// JSON renders the spec as indented JSON, the format Load reads and
// `replend-sim scenarios dump` emits.
func (s *Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks the whole spec: the base configuration, every phase in
// schedule order (including the cumulative effect of parameter deltas and
// the ticks consumed by spaced injections), selector consistency, and
// label references.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if err := s.Base.Validate(); err != nil {
		return fmt.Errorf("scenario %q: base: %w", s.Name, err)
	}
	cfg := s.Base
	labels := map[string]bool{}
	cursor := int64(0) // earliest tick the next phase may fire at
	for i := range s.Phases {
		ph := &s.Phases[i]
		where := fmt.Sprintf("scenario %q: phase %d (%s)", s.Name, i, ph.label())
		if ph.At < 0 {
			return fmt.Errorf("%s: negative tick %d", where, ph.At)
		}
		if ph.At < cursor {
			return fmt.Errorf("%s: fires at tick %d but the schedule is already at tick %d (earlier phases' spaced injections overlap it)",
				where, ph.At, cursor)
		}
		cursor = ph.At
		if ph.Set == nil && ph.Crash == nil && ph.Depart == nil &&
			len(ph.Inject) == 0 && len(ph.Rejoin) == 0 && !ph.Recover {
			return fmt.Errorf("%s: has no actions", where)
		}
		if ph.Set != nil {
			if ph.Set.IsZero() {
				return fmt.Errorf("%s: empty set delta", where)
			}
			next, err := ph.Set.Preview(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", where, err)
			}
			cfg = next
		}
		if ph.Crash != nil {
			if ph.Crash.Fraction < 0 || ph.Crash.Fraction > 1 {
				return fmt.Errorf("%s: crash fraction %v out of [0,1]", where, ph.Crash.Fraction)
			}
			if err := ph.Crash.ScoreManagersOf.validate(labels); err != nil {
				return fmt.Errorf("%s: crash: %w", where, err)
			}
		}
		if ph.Depart != nil {
			if err := ph.Depart.validate(labels); err != nil {
				return fmt.Errorf("%s: depart: %w", where, err)
			}
			for _, l := range ph.Depart.labels() {
				if labels[l] {
					return fmt.Errorf("%s: depart: duplicate label %q", where, l)
				}
				labels[l] = true
			}
		}
		for j := range ph.Inject {
			in := &ph.Inject[j]
			if err := in.validate(labels); err != nil {
				return fmt.Errorf("%s: injection %d: %w", where, j, err)
			}
			cursor += int64(in.count()) * in.SpacedBy
			for _, l := range in.labels() {
				if labels[l] {
					return fmt.Errorf("%s: injection %d: duplicate label %q", where, j, l)
				}
				labels[l] = true
			}
		}
		for _, ref := range ph.Rejoin {
			if ref == "" {
				return fmt.Errorf("%s: rejoin: empty label", where)
			}
			if !labels[ref] {
				return fmt.Errorf("%s: rejoin: %q does not name an earlier injection or departure label", where, ref)
			}
		}
	}
	if cursor > s.Base.NumTrans {
		return fmt.Errorf("scenario %q: phases run to tick %d, past the run length %d", s.Name, cursor, s.Base.NumTrans)
	}
	for _, name := range s.Output.Series {
		if !seriesNames[name] {
			return fmt.Errorf("scenario %q: unknown output series %q", s.Name, name)
		}
	}
	return nil
}

// label names a phase for error messages.
func (p *Phase) label() string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("at %d", p.At)
}

// count is Count with its default applied.
func (in *Injection) count() int {
	if in.Count <= 0 {
		return 1
	}
	return in.Count
}

// count is Count with its default applied.
func (d *Departure) count() int {
	if d.Count <= 0 {
		return 1
	}
	return d.Count
}

// labels returns the label each departed peer binds: As itself for a
// single departure, "As-1" … "As-n" for a counted one, nothing when
// unlabelled.
func (d *Departure) labels() []string {
	if d.As == "" {
		return nil
	}
	n := d.count()
	if n == 1 {
		return []string{d.As}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", d.As, i+1)
	}
	return out
}

func (d *Departure) validate(labels map[string]bool) error {
	if d.Count < 0 {
		return fmt.Errorf("negative count %d", d.Count)
	}
	if d.Fraction < 0 || d.Fraction > 1 {
		return fmt.Errorf("fraction %v out of [0,1]", d.Fraction)
	}
	if d.ScoreManagersOf != nil {
		if d.Peers != nil {
			return fmt.Errorf("peers and scoreManagersOf are mutually exclusive")
		}
		if d.Count != 0 {
			return fmt.Errorf("count applies to peers selection, not scoreManagersOf")
		}
		if d.As != "" {
			return fmt.Errorf("as cannot label a scoreManagersOf departure (its size is only known at run time)")
		}
		if err := d.ScoreManagersOf.validate(labels); err != nil {
			return fmt.Errorf("scoreManagersOf: %w", err)
		}
		return nil
	}
	if d.Fraction != 0 {
		return fmt.Errorf("fraction applies to scoreManagersOf, not peers selection")
	}
	if d.Peers != nil {
		if err := d.Peers.validate(labels); err != nil {
			return fmt.Errorf("peers: %w", err)
		}
		if d.Peers.FallbackFirst && d.count() > 1 {
			return fmt.Errorf("fallbackFirst only applies to single-peer departures")
		}
	}
	return nil
}

// labels returns the label each repeat binds: As itself for a single
// injection, "As-1" … "As-n" for a repeated one, nothing when unlabelled.
func (in *Injection) labels() []string {
	if in.As == "" {
		return nil
	}
	n := in.count()
	if n == 1 {
		return []string{in.As}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", in.As, i+1)
	}
	return out
}

// classStyle resolves the injection's class and style enums, with the
// paper's default style per class.
func (in *Injection) classStyle() (peer.Class, peer.Style, error) {
	class, err := parseClass(in.Class)
	if err != nil {
		return 0, 0, err
	}
	if in.Style == "" {
		if class == peer.Uncooperative {
			return class, peer.Naive, nil
		}
		return class, peer.Selective, nil
	}
	style, err := parseStyle(in.Style)
	if err != nil {
		return 0, 0, err
	}
	return class, style, nil
}

func (in *Injection) validate(labels map[string]bool) error {
	class, style, err := in.classStyle()
	if err != nil {
		return err
	}
	if class == peer.Uncooperative && style == peer.Selective {
		return fmt.Errorf("uncooperative peers are always naive introducers (paper §4)")
	}
	if in.DefectAfter < 0 {
		return fmt.Errorf("negative defectAfter %d", in.DefectAfter)
	}
	if in.DefectAfter > 0 && class != peer.Cooperative {
		return fmt.Errorf("a traitor (defectAfter) must start cooperative")
	}
	if in.Count < 0 {
		return fmt.Errorf("negative count %d", in.Count)
	}
	if in.SpacedBy < 0 {
		return fmt.Errorf("negative spacedBy %d", in.SpacedBy)
	}
	if err := in.Introducer.validate(labels); err != nil {
		return fmt.Errorf("introducer: %w", err)
	}
	return nil
}

func (sel *Selector) validate(labels map[string]bool) error {
	if sel.Ref != "" {
		if sel.Style != "" || sel.Class != "" || sel.MinRep != 0 || sel.FallbackFirst {
			return fmt.Errorf("ref %q cannot combine with style/class/minRep/fallbackFirst", sel.Ref)
		}
		if !labels[sel.Ref] {
			return fmt.Errorf("ref %q does not name an earlier injection's label", sel.Ref)
		}
		return nil
	}
	if sel.Style != "" {
		if _, err := parseStyle(sel.Style); err != nil {
			return err
		}
	}
	if sel.Class != "" {
		if _, err := parseClass(sel.Class); err != nil {
			return err
		}
	}
	if sel.MinRep < 0 || sel.MinRep >= 1 {
		return fmt.Errorf("minRep %v out of [0,1)", sel.MinRep)
	}
	return nil
}

func parseClass(s string) (peer.Class, error) {
	switch s {
	case "cooperative":
		return peer.Cooperative, nil
	case "uncooperative":
		return peer.Uncooperative, nil
	}
	return 0, fmt.Errorf("unknown class %q (want cooperative or uncooperative)", s)
}

func parseStyle(s string) (peer.Style, error) {
	switch s {
	case "naive":
		return peer.Naive, nil
	case "selective":
		return peer.Selective, nil
	}
	return 0, fmt.Errorf("unknown style %q (want naive or selective)", s)
}
