package topology

import (
	"fmt"

	"repro/internal/id"
	"repro/internal/rng"
)

// Checkpoint support. Both selectors carry history-dependent slice layouts
// (Uniform's swap-delete order, ScaleFree's tombstone slots and stub
// multiset) that future draws depend on, so the capture is verbatim: the
// slices as they stand plus the generator state. Derived indexes are
// rebuilt on restore.

// State is the serializable state of either selector kind.
type State struct {
	Kind Kind      `json:"kind"`
	Src  [4]uint64 `json:"src"`

	// Uniform: the peers slice in its exact (swap-delete shaped) order.
	Peers []id.ID `json:"peers,omitempty"`

	// ScaleFree: slot-indexed peer table with tombstones, plus the stub
	// multiset. Alive is encoded alongside; Live and the index are derived.
	Degree []int64 `json:"degree,omitempty"`
	Alive  []bool  `json:"alive,omitempty"`
	Stubs  []int32 `json:"stubs,omitempty"`
	Attach int     `json:"attach,omitempty"`
}

// ExportState captures the selector's state. It fails on selector
// implementations the checkpoint format does not know about.
func ExportState(sel Selector) (State, error) {
	switch s := sel.(type) {
	case *Uniform:
		return State{
			Kind:  Random,
			Src:   s.src.State(),
			Peers: append([]id.ID(nil), s.peers...),
		}, nil
	case *ScaleFree:
		return State{
			Kind:   PowerLaw,
			Src:    s.src.State(),
			Peers:  append([]id.ID(nil), s.peers...),
			Degree: append([]int64(nil), s.degree...),
			Alive:  append([]bool(nil), s.alive...),
			Stubs:  append([]int32(nil), s.stubs...),
			Attach: s.attach,
		}, nil
	}
	return State{}, fmt.Errorf("topology: cannot checkpoint selector type %T", sel)
}

// RestoreState reconstructs a selector from a captured state.
func RestoreState(st State) (Selector, error) {
	switch st.Kind {
	case Random:
		u := NewUniform(rng.FromState(st.Src))
		u.peers = append([]id.ID(nil), st.Peers...)
		for i, p := range u.peers {
			u.index[p] = i
		}
		if len(u.index) != len(u.peers) {
			return nil, fmt.Errorf("topology: restore: duplicate peers in uniform state")
		}
		return u, nil
	case PowerLaw:
		attach := st.Attach
		if attach == 0 {
			attach = DefaultAttachEdges
		}
		if len(st.Degree) != len(st.Peers) || len(st.Alive) != len(st.Peers) {
			return nil, fmt.Errorf("topology: restore: scale-free slot tables disagree (%d peers, %d degrees, %d alive)",
				len(st.Peers), len(st.Degree), len(st.Alive))
		}
		s := NewScaleFree(rng.FromState(st.Src), attach)
		s.peers = append([]id.ID(nil), st.Peers...)
		s.degree = append([]int64(nil), st.Degree...)
		s.alive = append([]bool(nil), st.Alive...)
		s.stubs = append([]int32(nil), st.Stubs...)
		for i, p := range s.peers {
			if !s.alive[i] {
				continue
			}
			if _, dup := s.index[p]; dup {
				return nil, fmt.Errorf("topology: restore: duplicate live peer %s", p.Short())
			}
			s.index[p] = i
			s.live++
		}
		for _, t := range s.stubs {
			if int(t) < 0 || int(t) >= len(s.peers) {
				return nil, fmt.Errorf("topology: restore: stub index %d out of range", t)
			}
		}
		return s, nil
	}
	return nil, fmt.Errorf("topology: restore: unknown kind %q", st.Kind)
}
