package main

// Run observability: the -telemetry, -progress and -pprof flags. All of
// it is write-only instrumentation — attaching any of it changes no
// random draw and no result byte, which the world and CLI tests pin.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"repro/internal/telemetry"
	"repro/internal/world"
)

// obs carries the observability flags that attach to a single
// in-process run.
type obs struct {
	// telemetryPath streams the run's trace events and metric samples as
	// JSONL: a file path, or "-" for stdout. Empty disables.
	telemetryPath string
	// progress turns on the live stderr ticker.
	progress bool
}

func (o obs) enabled() bool { return o.telemetryPath != "" || o.progress }

// startPprof binds addr and serves net/http/pprof on it for the life of
// the process. The bind happens synchronously so a bad address fails the
// run instead of logging into the void.
func startPprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	logf("pprof serving on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			logf("pprof server stopped: %v", err)
		}
	}()
	return nil
}

// attach wires the observability stack to one world: the streaming JSONL
// sink, the progress ticker and the wall-clock span recorder. The
// returned finish function stops the ticker, flushes the stream and
// prints the span table to stderr; call it after the run completes.
func (o obs) attach(w *world.World, label string) (finish func() error, err error) {
	if !o.enabled() {
		return func() error { return nil }, nil
	}
	bus := telemetry.NewBus()
	var stream *telemetry.StreamSink
	var file *os.File
	if o.telemetryPath != "" {
		out := io.Writer(os.Stdout)
		if o.telemetryPath != "-" {
			f, err := os.Create(o.telemetryPath)
			if err != nil {
				return nil, fmt.Errorf("-telemetry: %w", err)
			}
			file, out = f, f
		}
		stream = telemetry.NewStreamSink(out)
		bus.Attach(stream)
	}
	var stopTicker func()
	if o.progress {
		p := &telemetry.Progress{}
		bus.Attach(p)
		stopTicker = p.StartTicker(os.Stderr, label, time.Second)
	}
	spans := telemetry.NewSpans()
	w.SetSpans(spans)
	w.SetTelemetry(bus)
	return func() error {
		if stopTicker != nil {
			stopTicker()
		}
		if err := bus.Flush(); err != nil {
			return fmt.Errorf("-telemetry: %w", err)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				return fmt.Errorf("-telemetry: %w", err)
			}
		}
		if stream != nil {
			logf("telemetry: %d records streamed (peak %d retained)", stream.Written(), stream.PeakRetained())
		}
		if table := spans.Table(); table != "" {
			fmt.Fprint(os.Stderr, table)
		}
		return nil
	}, nil
}
