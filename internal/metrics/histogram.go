package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Histogram is a log-bucketed counter of non-negative integer durations
// (ticks). Bucket 0 holds the value 0; bucket i (i >= 1) holds the values
// in [2^(i-1), 2^i - 1], so 64 buckets cover the whole int64 range with
// ~2x relative resolution. Everything about it is deterministic — bucket
// boundaries are fixed powers of two and the fields are plain integers —
// so a histogram JSON-round-trips exactly through fleet results and
// checkpoint snapshots, and merging replicas is pure integer addition.
//
// All fields are exported for serialization; use Observe/Merge to keep
// them consistent rather than mutating them directly.
type Histogram struct {
	Name string `json:"name"`
	// Counts[i] is the number of observations in bucket i. The slice only
	// grows as far as the highest non-empty bucket.
	Counts []int64 `json:"counts,omitempty"`
	// N, Sum, Min and Max summarize the exact observations (the buckets
	// quantize; these do not).
	N   int64 `json:"n,omitempty"`
	Sum int64 `json:"sum,omitempty"`
	Min int64 `json:"min,omitempty"`
	Max int64 `json:"max,omitempty"`
}

// NewHistogram returns an empty named histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name}
}

// bucketOf maps a value to its bucket index: 0 -> 0, v -> bits.Len(v).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

// Observe folds one duration into the histogram. Negative values are
// clamped to 0 (durations in ticks are non-negative by construction).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	for len(h.Counts) <= b {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[b]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Mean returns the exact mean of the observations (0 with none).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Merge folds another histogram into this one (bucket-wise addition).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.N == 0 {
		return
	}
	for len(h.Counts) < len(o.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
	h.Sum += o.Sum
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1),
// interpolating linearly inside the bucket the rank lands in. The bucket
// quantization bounds the error to a factor of two; Min and Max clamp the
// extremes exactly. It panics on q outside [0,1] and returns 0 with no
// observations.
func (h *Histogram) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %g of %q out of [0,1]", q, h.Name))
	}
	if h.N == 0 {
		return 0
	}
	if q == 0 {
		return float64(h.Min)
	}
	if q == 1 {
		return float64(h.Max)
	}
	rank := q * float64(h.N-1)
	var cum int64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if rank < float64(cum+c) {
			lo, hi := BucketBounds(i)
			if lo < h.Min {
				lo = h.Min
			}
			if hi > h.Max {
				hi = h.Max
			}
			if c == 1 || hi <= lo {
				return float64(lo)
			}
			frac := (rank - float64(cum)) / float64(c-1)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return float64(h.Max)
}

// Summary renders a one-line digest: count, mean, min/max and coarse
// quantiles. Quantiles carry a "~" because buckets quantize them.
func (h *Histogram) Summary() string {
	if h.N == 0 {
		return fmt.Sprintf("%s: no observations", h.Name)
	}
	return fmt.Sprintf("%s: n=%d mean=%.1f min=%d p50~%.0f p99~%.0f max=%d",
		h.Name, h.N, h.Mean(), h.Min, h.Quantile(0.5), h.Quantile(0.99), h.Max)
}

// Render draws the non-empty buckets as rows of "[lo,hi] count |bar|",
// the multi-line debugging view.
func (h *Histogram) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Summary())
	var peak int64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		width := 0
		if peak > 0 {
			width = int(c * 40 / peak)
		}
		fmt.Fprintf(&b, "  [%d,%d] %d %s\n", lo, hi, c, strings.Repeat("#", width))
	}
	return b.String()
}
