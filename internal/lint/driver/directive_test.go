package driver

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseDirectivesWellFormed(t *testing.T) {
	fset, f := parseOne(t, `package p

//replend:allow maporder audited: feeds a set
var a int

var b int //replend:allow nopanic trailing form, same line
`)
	dirs, bad := ParseDirectives(fset, []*ast.File{f}, map[string]bool{"maporder": true, "nopanic": true})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive findings: %v", bad)
	}
	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	// Directive on line 3 covers findings on line 3 and line 4.
	if !dirs.Allows("maporder", at(3)) || !dirs.Allows("maporder", at(4)) {
		t.Error("directive above does not cover the next line")
	}
	if dirs.Allows("maporder", at(5)) {
		t.Error("directive leaks two lines down")
	}
	if dirs.Allows("nopanic", at(4)) {
		t.Error("directive covers a different analyzer's finding")
	}
	// Trailing directive on line 6 covers its own line.
	if !dirs.Allows("nopanic", at(6)) {
		t.Error("trailing same-line directive not honored")
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	fset, f := parseOne(t, `package p

//replend:allow
var a int

//replend:allow maporder
var b int

//replend:allow bogus some reason
var c int
`)
	dirs, bad := ParseDirectives(fset, []*ast.File{f}, map[string]bool{"maporder": true})
	if len(bad) != 3 {
		t.Fatalf("got %d malformed-directive findings, want 3: %v", len(bad), bad)
	}
	for _, f := range bad {
		if f.Analyzer != "directive" {
			t.Errorf("malformed directive reported as %q, want \"directive\"", f.Analyzer)
		}
	}
	wantMsgs := []string{"names no analyzer", "has no reason", "unknown analyzer"}
	for i, want := range wantMsgs {
		if !strings.Contains(bad[i].Message, want) {
			t.Errorf("finding %d = %q, want substring %q", i, bad[i].Message, want)
		}
	}
	// None of the malformed forms suppress anything.
	for line := 3; line <= 10; line++ {
		if dirs.Allows("maporder", token.Position{Filename: "p.go", Line: line}) {
			t.Errorf("malformed directive suppresses findings at line %d", line)
		}
	}
}

func TestSortFindingsIsDeterministic(t *testing.T) {
	mk := func(file string, line, col int, an string) Finding {
		return Finding{Analyzer: an, Pos: token.Position{Filename: file, Line: line, Column: col}}
	}
	fs := []Finding{
		mk("b.go", 1, 1, "maporder"),
		mk("a.go", 9, 2, "nopanic"),
		mk("a.go", 9, 2, "maporder"),
		mk("a.go", 2, 7, "rngpurity"),
	}
	SortFindings(fs)
	want := []Finding{
		mk("a.go", 2, 7, "rngpurity"),
		mk("a.go", 9, 2, "maporder"),
		mk("a.go", 9, 2, "nopanic"),
		mk("b.go", 1, 1, "maporder"),
	}
	for i := range want {
		if fs[i] != want[i] {
			t.Fatalf("order[%d] = %v, want %v", i, fs[i], want[i])
		}
	}
}
