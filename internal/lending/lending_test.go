package lending

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/rocq"
	"repro/internal/sim"
	"repro/internal/transport"
)

// fakeNet is a Network with a fixed score-manager assignment.
type fakeNet struct {
	sms    map[id.ID][]id.ID
	stores map[id.ID]*rocq.Store
}

func newFakeNet() *fakeNet {
	return &fakeNet{sms: map[id.ID][]id.ID{}, stores: map[id.ID]*rocq.Store{}}
}

func (f *fakeNet) ScoreManagers(p id.ID) []id.ID { return f.sms[p] }

func (f *fakeNet) QueryReputation(p id.ID) (float64, bool) {
	stores := make([]*rocq.Store, 0, len(f.sms[p]))
	for _, n := range f.sms[p] {
		stores = append(stores, f.Store(n))
	}
	return rocq.QuerySet(stores, p)
}

func (f *fakeNet) Store(node id.ID) *rocq.Store {
	s, ok := f.stores[node]
	if !ok {
		s = rocq.NewStore(rocq.DefaultParams())
		f.stores[node] = s
	}
	return s
}

// assign gives a peer n dedicated score-manager nodes named after it.
func (f *fakeNet) assign(p id.ID, n int, tag string) []id.ID {
	nodes := make([]id.ID, n)
	for i := range nodes {
		nodes[i] = id.HashString(fmt.Sprintf("sm-%s-%d", tag, i))
	}
	f.sms[p] = nodes
	return nodes
}

// harness bundles a protocol under test with its collaborators.
type harness struct {
	t        *testing.T
	engine   *sim.Engine
	bus      *transport.Bus
	net      *fakeNet
	proto    *Protocol
	src      *rng.Source
	admitted []id.ID
	refused  []Reason
	audits   []bool
	flagged  []id.ID
}

func params() Params {
	return Params{
		IntroAmt:       0.1,
		Reward:         0.02,
		MinIntroRep:    0.5,
		AuditThreshold: 0.5,
		Wait:           1000,
		NumSM:          3,
	}
}

func newHarness(t *testing.T) *harness { return newHarnessWith(t, params()) }

// newHarnessWith builds a harness around custom protocol parameters —
// the equivalence property tests randomize NumSM across trials.
func newHarnessWith(t *testing.T, p Params) *harness {
	h := &harness{
		t:      t,
		engine: sim.NewEngine(),
		bus:    transport.NewBus(),
		net:    newFakeNet(),
		src:    rng.New(1),
	}
	events := Events{
		Admitted: func(n, i id.ID, at sim.Tick) { h.admitted = append(h.admitted, n) },
		Refused:  func(n, i id.ID, r Reason, at sim.Tick) { h.refused = append(h.refused, r) },
		AuditOutcome: func(n, i id.ID, ok bool, at sim.Tick) {
			h.audits = append(h.audits, ok)
		},
		Flagged: func(p id.ID, at sim.Tick) { h.flagged = append(h.flagged, p) },
	}
	proto, err := New(p, h.engine, h.bus, h.net, events)
	if err != nil {
		t.Fatal(err)
	}
	h.proto = proto
	return h
}

// addPeer registers a peer with signer and dedicated SMs, optionally
// initialising its reputation at every SM.
func (h *harness) addPeer(name string, rep float64) (id.ID, []id.ID) {
	pid := id.HashString("peer-" + name)
	sms := h.net.assign(pid, h.proto.params.NumSM, name)
	signer, err := transport.NewSigner(h.src.Split())
	if err != nil {
		h.t.Fatal(err)
	}
	h.proto.RegisterPeer(pid, signer)
	// SM nodes need handlers too (they receive lend/credit/reward); they
	// are peers in the real world, so register them as such.
	for _, sm := range sms {
		if _, ok := h.net.stores[sm]; !ok {
			s, err := transport.NewSigner(h.src.Split())
			if err != nil {
				h.t.Fatal(err)
			}
			h.proto.RegisterPeer(sm, s)
		}
		if rep >= 0 {
			h.net.Store(sm).Init(pid, rep)
		}
	}
	return pid, sms
}

// repAt reads the mean reputation over the peer's SMs.
func (h *harness) repAt(pid id.ID) float64 {
	stores := make([]*rocq.Store, 0)
	for _, sm := range h.net.sms[pid] {
		stores = append(stores, h.net.Store(sm))
	}
	v, _ := rocq.QuerySet(stores, pid)
	return v
}

func TestParamsValidate(t *testing.T) {
	if err := params().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{IntroAmt: 0, Reward: 0.02, MinIntroRep: 0.5, AuditThreshold: 0.5, NumSM: 3},
		{IntroAmt: 0.1, Reward: -1, MinIntroRep: 0.5, AuditThreshold: 0.5, NumSM: 3},
		{IntroAmt: 0.1, Reward: 0.02, MinIntroRep: 0.1, AuditThreshold: 0.5, NumSM: 3},
		{IntroAmt: 0.1, Reward: 0.02, MinIntroRep: 0.5, AuditThreshold: 2, NumSM: 3},
		{IntroAmt: 0.1, Reward: 0.02, MinIntroRep: 0.5, AuditThreshold: 0.5, Wait: -1, NumSM: 3},
		{IntroAmt: 0.1, Reward: 0.02, MinIntroRep: 0.5, AuditThreshold: 0.5, NumSM: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestNewRequiresCollaborators(t *testing.T) {
	if _, err := New(params(), nil, nil, nil, Events{}); err == nil {
		t.Fatal("nil collaborators accepted")
	}
}

func TestSuccessfulIntroduction(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, newSMs := h.addPeer("newcomer", -1) // no initial state

	h.proto.Begin(newcomer, intro, true)
	if len(h.admitted) != 0 {
		t.Fatal("admission before the waiting period")
	}
	h.engine.RunUntil(999)
	if len(h.admitted) != 0 {
		t.Fatal("admission one tick early")
	}
	h.engine.RunUntil(1000)
	if len(h.admitted) != 1 || h.admitted[0] != newcomer {
		t.Fatalf("admitted = %v", h.admitted)
	}

	// Introducer debited at every SM.
	for _, sm := range introSMs {
		v, _ := h.net.Store(sm).Query(intro)
		if math.Abs(v-0.9) > 1e-9 {
			t.Fatalf("introducer SM balance %v, want 0.9", v)
		}
	}
	// Newcomer credited exactly introAmt at every SM (duplicates ignored).
	for _, sm := range newSMs {
		v, ok := h.net.Store(sm).Query(newcomer)
		if !ok || math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("newcomer SM balance %v (%v), want 0.1", v, ok)
		}
	}
	st := h.proto.Stats()
	if st.Requests != 1 || st.Granted != 1 || st.Admitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got, ok := h.proto.IntroducerOf(newcomer); !ok || got != intro {
		t.Fatal("introducer not recorded")
	}
}

func TestRefusalDeliveredAfterWait(t *testing.T) {
	h := newHarness(t)
	intro, _ := h.addPeer("introducer", 1.0)
	newcomer, _ := h.addPeer("newcomer", -1)

	h.proto.Begin(newcomer, intro, false)
	h.engine.RunUntil(999)
	if len(h.refused) != 0 {
		t.Fatal("refusal delivered early — newcomer should wait the full period")
	}
	h.engine.RunUntil(1000)
	if len(h.refused) != 1 || h.refused[0] != RefusedByIntroducer {
		t.Fatalf("refused = %v", h.refused)
	}
	if h.proto.Stats().RefusedSelective != 1 {
		t.Fatalf("stats = %+v", h.proto.Stats())
	}
	if h.repAt(newcomer) != 0 {
		t.Fatal("refused newcomer has reputation")
	}
}

func TestLowReputationIntroducerRefused(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 0.3) // below MinIntroRep
	newcomer, _ := h.addPeer("newcomer", -1)

	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	if len(h.refused) != 1 || h.refused[0] != RefusedIntroducerRep {
		t.Fatalf("refused = %v", h.refused)
	}
	// No debit happened.
	for _, sm := range introSMs {
		if v, _ := h.net.Store(sm).Query(intro); math.Abs(v-0.3) > 1e-9 {
			t.Fatalf("introducer debited despite refusal: %v", v)
		}
	}
	if h.proto.Stats().RefusedRep != 1 {
		t.Fatalf("stats = %+v", h.proto.Stats())
	}
}

func TestExactlyMinIntroRepAllows(t *testing.T) {
	h := newHarness(t)
	intro, _ := h.addPeer("introducer", 0.5)
	newcomer, _ := h.addPeer("newcomer", -1)
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	if len(h.admitted) != 1 {
		t.Fatal("introducer exactly at the floor must be allowed")
	}
}

func TestRedundancySurvivesCrashedIntroducerSM(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, newSMs := h.addPeer("newcomer", -1)

	h.bus.Crash(introSMs[0])
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	if len(h.admitted) != 1 {
		t.Fatal("one crashed introducer SM prevented admission")
	}
	for _, sm := range newSMs {
		if v, ok := h.net.Store(sm).Query(newcomer); !ok || math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("newcomer SM balance %v (%v)", v, ok)
		}
	}
}

func TestRedundancySurvivesCrashedNewcomerSM(t *testing.T) {
	h := newHarness(t)
	intro, _ := h.addPeer("introducer", 1.0)
	newcomer, newSMs := h.addPeer("newcomer", -1)

	h.bus.Crash(newSMs[0])
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	if len(h.admitted) != 1 {
		t.Fatal("one crashed newcomer SM prevented admission")
	}
	// The crashed SM holds no state; the others do.
	if _, ok := h.net.Store(newSMs[0]).Query(newcomer); ok {
		t.Fatal("crashed SM received the credit")
	}
	for _, sm := range newSMs[1:] {
		if v, ok := h.net.Store(sm).Query(newcomer); !ok || math.Abs(v-0.1) > 1e-9 {
			t.Fatalf("surviving SM balance %v (%v)", v, ok)
		}
	}
}

func TestAllIntroducerSMsCrashedIsProtocolFailure(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, _ := h.addPeer("newcomer", -1)

	for _, sm := range introSMs {
		h.bus.Crash(sm)
	}
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	if len(h.refused) != 1 || h.refused[0] != RefusedProtocolFailure {
		t.Fatalf("refused = %v", h.refused)
	}
	if h.proto.Stats().RefusedProtocol != 1 {
		t.Fatalf("stats = %+v", h.proto.Stats())
	}
}

func TestDuplicateIntroductionPunished(t *testing.T) {
	h := newHarness(t)
	introA, _ := h.addPeer("introducer-a", 1.0)
	introB, _ := h.addPeer("introducer-b", 1.0)
	newcomer, _ := h.addPeer("newcomer", -1)

	// The newcomer solicits both introducers inside one waiting period.
	h.proto.Begin(newcomer, introA, true)
	h.proto.Begin(newcomer, introB, true)
	h.engine.RunUntil(2000)

	if !h.proto.Flagged(newcomer) {
		t.Fatal("double-introduced peer not flagged")
	}
	if len(h.flagged) != 1 || h.flagged[0] != newcomer {
		t.Fatalf("flagged events = %v", h.flagged)
	}
	if v := h.repAt(newcomer); v != 0 {
		t.Fatalf("double-introduced peer kept reputation %v, want 0", v)
	}
	if h.proto.Stats().DuplicateAttempts != 1 {
		t.Fatalf("stats = %+v", h.proto.Stats())
	}
}

func TestAuditSatisfactoryReturnsStakePlusReward(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, newSMs := h.addPeer("newcomer", -1)

	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	// Newcomer behaves well: simulate earned reputation above threshold.
	for _, sm := range newSMs {
		h.net.Store(sm).Init(newcomer, 0.8)
	}
	// Introducer spent some reputation meanwhile so the credit is visible
	// below the clamp.
	for _, sm := range introSMs {
		h.net.Store(sm).Init(intro, 0.7)
	}
	h.proto.Audit(newcomer)
	if len(h.audits) != 1 || !h.audits[0] {
		t.Fatalf("audits = %v", h.audits)
	}
	// Each introducer SM credited exactly once: 0.7 + 0.1 + 0.02 = 0.82.
	for _, sm := range introSMs {
		v, _ := h.net.Store(sm).Query(intro)
		if math.Abs(v-0.82) > 1e-9 {
			t.Fatalf("introducer SM balance %v, want 0.82 (stake+reward exactly once)", v)
		}
	}
	// Newcomer keeps its standing.
	if v := h.repAt(newcomer); math.Abs(v-0.8) > 1e-9 {
		t.Fatalf("newcomer reputation %v changed by satisfactory audit", v)
	}
	if h.proto.Stats().AuditsSatisfied != 1 {
		t.Fatalf("stats = %+v", h.proto.Stats())
	}
}

func TestAuditUnsatisfactoryForfeitsAndDebits(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, _ := h.addPeer("newcomer", -1)

	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	// Newcomer's earned reputation stays at the lent 0.1 (< threshold).
	before := h.repAt(newcomer)
	if math.Abs(before-0.1) > 1e-9 {
		t.Fatalf("setup: newcomer reputation %v", before)
	}
	h.proto.Audit(newcomer)
	if len(h.audits) != 1 || h.audits[0] {
		t.Fatalf("audits = %v", h.audits)
	}
	// "Reduce the stored reputation of the new entrant by introAmt subject
	// to a minimum of 0."
	if v := h.repAt(newcomer); v != 0 {
		t.Fatalf("newcomer reputation %v after forfeit, want 0", v)
	}
	// Introducer not repaid: still at 0.9.
	for _, sm := range introSMs {
		v, _ := h.net.Store(sm).Query(intro)
		if math.Abs(v-0.9) > 1e-9 {
			t.Fatalf("introducer SM balance %v, want 0.9 (stake lost)", v)
		}
	}
	if h.proto.Stats().AuditsForfeited != 1 {
		t.Fatalf("stats = %+v", h.proto.Stats())
	}
}

func TestAuditIdempotentAndUnknownNoop(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, newSMs := h.addPeer("newcomer", -1)
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	for _, sm := range newSMs {
		h.net.Store(sm).Init(newcomer, 0.8)
	}
	for _, sm := range introSMs {
		h.net.Store(sm).Init(intro, 0.7)
	}
	h.proto.Audit(newcomer)
	h.proto.Audit(newcomer) // second must be a no-op
	for _, sm := range introSMs {
		v, _ := h.net.Store(sm).Query(intro)
		if math.Abs(v-0.82) > 1e-9 {
			t.Fatalf("double audit paid twice: %v", v)
		}
	}
	if len(h.audits) != 1 {
		t.Fatalf("audit events = %v", h.audits)
	}
	h.proto.Audit(id.HashString("nobody")) // unknown peer: no-op
	if len(h.audits) != 1 {
		t.Fatal("audit of unknown peer produced an event")
	}
}

func TestRewardCappedAtOne(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("introducer", 1.0)
	newcomer, newSMs := h.addPeer("newcomer", -1)
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	for _, sm := range newSMs {
		h.net.Store(sm).Init(newcomer, 0.9)
	}
	// Introducer recouped to 1.0 by cooperating before the audit lands.
	for _, sm := range introSMs {
		h.net.Store(sm).Init(intro, 1.0)
	}
	h.proto.Audit(newcomer)
	for _, sm := range introSMs {
		v, _ := h.net.Store(sm).Query(intro)
		if v > 1 {
			t.Fatalf("reputation exceeded 1: %v", v)
		}
	}
}

func TestStakeConservationDuringLend(t *testing.T) {
	// During the loan (before audit) the introducer's aggregate loses
	// exactly what the newcomer's aggregate gains.
	h := newHarness(t)
	intro, _ := h.addPeer("introducer", 0.8)
	newcomer, _ := h.addPeer("newcomer", -1)
	beforeIntro := h.repAt(intro)
	h.proto.Begin(newcomer, intro, true)
	h.engine.RunUntil(2000)
	lost := beforeIntro - h.repAt(intro)
	gained := h.repAt(newcomer)
	if math.Abs(lost-gained) > 1e-9 || math.Abs(lost-0.1) > 1e-9 {
		t.Fatalf("stake not conserved: introducer lost %v, newcomer gained %v", lost, gained)
	}
}

// TestUnregisteredIntroducerRefuses pins the churn-era semantics: an
// introducer with no registered signing identity at lend time (it
// departed during the waiting period) fails the introduction as a
// protocol breakdown instead of panicking the run.
func TestUnregisteredIntroducerRefuses(t *testing.T) {
	h := newHarness(t)
	ghost := id.HashString("ghost")
	h.net.assign(ghost, 3, "ghost")
	for _, sm := range h.net.sms[ghost] {
		h.net.Store(sm).Init(ghost, 1.0)
		s, _ := transport.NewSigner(h.src.Split())
		h.proto.RegisterPeer(sm, s)
	}
	newcomer, _ := h.addPeer("newcomer", -1)
	h.proto.Begin(newcomer, ghost, true)
	h.engine.RunUntil(2000)
	if len(h.admitted) != 0 {
		t.Fatalf("newcomer admitted through a signerless introducer")
	}
	if len(h.refused) != 1 || h.refused[0] != RefusedProtocolFailure {
		t.Fatalf("refusals = %v, want one RefusedProtocolFailure", h.refused)
	}
	if got := h.proto.Stats().RefusedProtocol; got != 1 {
		t.Fatalf("RefusedProtocol = %d, want 1", got)
	}
}

func TestReasonString(t *testing.T) {
	for _, r := range []Reason{RefusedByIntroducer, RefusedIntroducerRep, RefusedProtocolFailure} {
		if r.String() == "" {
			t.Fatal("empty reason string")
		}
	}
	if Reason(42).String() == "" {
		t.Fatal("unknown reason must render")
	}
}
