package fleet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SpawnFunc creates the transport to one local worker (conventionally a
// child process running `<binary> -worker`, see ExecSpawn). Closing the
// returned transport must terminate the worker.
type SpawnFunc func(workerIndex int) (io.ReadWriteCloser, error)

// Config configures a Fleet.
type Config struct {
	// Workers is the number of local workers to spawn (and keep
	// respawned while work is pending). 0 is valid when Listen is set:
	// the fleet then waits for remote workers.
	Workers int
	// Spawn creates one local worker transport. Required when Workers>0.
	Spawn SpawnFunc
	// Listen, when non-empty, is a TCP address remote workers may join
	// through (`replend-sim -worker-connect <addr> -fleet-token <t>`).
	Listen string
	// Token gates remote joins; a remote hello with a different token is
	// dropped. Locally spawned workers are trusted without it.
	Token string
	// HeartbeatTimeout is how long a worker may stay silent (no result,
	// no heartbeat) before the coordinator declares it dead, kills the
	// transport and requeues its unit. 0 means the 10s default; workers
	// beacon every second.
	HeartbeatTimeout time.Duration
	// StragglerFactor re-dispatches a unit still running after
	// factor×(median completed unit time) to an idle worker; whichever
	// copy finishes first wins (identical payloads — the units are
	// deterministic). 0 means the default 4; negative disables.
	StragglerFactor float64
	// StragglerMin floors the straggler threshold so short units are not
	// duplicated on scheduling noise. 0 means the 2s default.
	StragglerMin time.Duration
	// MaxRetries is how many times one unit may be requeued after worker
	// deaths before the batch fails. 0 means the default 3.
	MaxRetries int
	// Logf, when set, receives scheduling chatter (callers pass a stderr
	// logger; never stdout, which belongs to results).
	Logf func(format string, args ...any)
	// Progress, when set, receives a live per-worker progress table
	// (unit, tick, tick rate, peak RSS from the workers' heartbeat
	// telemetry) about once a second while a batch runs. Callers pass
	// stderr; results own stdout.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 4
	}
	if c.StragglerMin <= 0 {
		c.StragglerMin = 2 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Fleet is a coordinator plus its pool of worker connections. Workers
// survive across Run batches (an experiment sweep is many small batches),
// and local workers that die are respawned while work is pending.
type Fleet struct {
	cfg      Config
	listener net.Listener
	serving  sync.WaitGroup // accept loop + per-worker readers

	mu         sync.Mutex
	cond       *sync.Cond
	workers    map[int]*workerConn
	nextID     int
	spawnSeq   int // next index handed to Spawn (monotonic across respawns)
	spawnsLeft int // respawn budget, guards against crash-looping workers
	epoch      int64
	closed     bool
	batch      *batch // nil between Run calls

	runMu sync.Mutex // serializes Run batches
}

// workerConn is the coordinator's handle on one worker.
type workerConn struct {
	id        int
	conn      io.ReadWriteCloser
	writeMu   sync.Mutex
	local     bool
	ready     bool  // hello validated
	unit      int   // inflight unit index, -1 when idle
	unitEpoch int64 // batch epoch the inflight unit belongs to
	lastSeen  time.Time
	status    *Status // last heartbeat telemetry, nil before the first
}

// batch is the state of one Run call.
type batch struct {
	epoch     int64
	jobs      []Job
	results   []*Result
	pending   []int       // unit indices awaiting dispatch, FIFO
	inflight  map[int]int // unit -> number of workers currently on it
	retries   []int
	started   map[int]time.Time // unit -> earliest dispatch time
	durations []time.Duration   // completed unit times (straggler median)
	done      int
	err       error
	journal   *Journal // nil when the batch is not journaled
	began     time.Time
	workers   map[int]bool // worker ids that completed a unit
	peakRSS   uint64       // max heartbeat-reported RSS across workers
}

// New builds the fleet: spawns the local workers and, when configured,
// opens the TCP join listener. Close releases everything.
func New(cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("fleet: negative worker count %d", cfg.Workers)
	}
	if cfg.Workers > 0 && cfg.Spawn == nil {
		return nil, fmt.Errorf("fleet: %d local workers requested without a spawn function", cfg.Workers)
	}
	if cfg.Workers == 0 && cfg.Listen == "" {
		return nil, fmt.Errorf("fleet: no local workers and no listen address — the fleet could never run anything")
	}
	f := &Fleet{
		cfg:        cfg,
		workers:    map[int]*workerConn{},
		spawnsLeft: cfg.Workers * (cfg.MaxRetries + 1),
	}
	f.cond = sync.NewCond(&f.mu)
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("fleet: listening on %s: %w", cfg.Listen, err)
		}
		f.listener = ln
		f.serving.Add(1)
		go f.acceptLoop(ln)
	}
	for i := 0; i < cfg.Workers; i++ {
		if err := f.spawnWorker(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// Addr returns the remote-join listener address ("" when not listening).
func (f *Fleet) Addr() string {
	if f.listener == nil {
		return ""
	}
	return f.listener.Addr().String()
}

// spawnWorker launches one local worker and registers its connection.
// Spawn indices are monotonic across respawns, so a SpawnFunc that binds
// per-index resources (log files, ports, pinned cores) never sees a
// repeat or a sentinel.
func (f *Fleet) spawnWorker() error {
	f.mu.Lock()
	index := f.spawnSeq
	f.spawnSeq++
	f.mu.Unlock()
	conn, err := f.cfg.Spawn(index)
	if err != nil {
		return fmt.Errorf("fleet: spawning worker %d: %w", index, err)
	}
	f.addConn(conn, true)
	return nil
}

// acceptLoop admits remote workers until the listener closes.
func (f *Fleet) acceptLoop(ln net.Listener) {
	defer f.serving.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		f.addConn(conn, false)
	}
}

// addConn registers a transport and starts its reader goroutine. The
// worker becomes schedulable once its hello validates.
func (f *Fleet) addConn(conn io.ReadWriteCloser, local bool) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		conn.Close()
		return
	}
	w := &workerConn{id: f.nextID, conn: conn, local: local, unit: -1, lastSeen: time.Now()}
	f.nextID++
	f.workers[w.id] = w
	f.mu.Unlock()
	f.serving.Add(1)
	go func() {
		defer f.serving.Done()
		f.serveConn(w)
	}()
}

// serveConn is the per-worker reader: it validates the hello, then turns
// frames into scheduler state changes until the transport dies.
func (f *Fleet) serveConn(w *workerConn) {
	defer f.dropWorker(w)
	// The hello must arrive promptly; a TCP client that connects and
	// stays silent would otherwise hold a slot forever.
	if nc, ok := w.conn.(net.Conn); ok {
		_ = nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	}
	env, err := readFrame(w.conn)
	if err != nil || env.Type != msgHello || env.Hello == nil {
		f.cfg.Logf("fleet: worker %d dropped before hello", w.id)
		return
	}
	if env.Hello.Proto != ProtoVersion {
		f.cfg.Logf("fleet: worker %d speaks protocol %d, want %d — dropped", w.id, env.Hello.Proto, ProtoVersion)
		return
	}
	if !w.local && f.cfg.Token != env.Hello.Token {
		f.cfg.Logf("fleet: remote worker %d presented a bad token — dropped", w.id)
		return
	}
	if nc, ok := w.conn.(net.Conn); ok {
		_ = nc.SetReadDeadline(time.Time{})
	}
	f.mu.Lock()
	w.ready = true
	w.lastSeen = time.Now()
	f.mu.Unlock()
	f.cond.Broadcast()
	f.cfg.Logf("fleet: worker %d joined (%s)", w.id, map[bool]string{true: "local", false: "remote"}[w.local])
	for {
		env, err := readFrame(w.conn)
		if err != nil {
			return
		}
		f.mu.Lock()
		w.lastSeen = time.Now()
		if env.Status != nil {
			w.status = env.Status
			if b := f.batch; b != nil && env.Status.PeakRSS > b.peakRSS {
				b.peakRSS = env.Status.PeakRSS
			}
		}
		if env.Type == msgResult && env.Result != nil {
			f.handleResultLocked(w, env.Result)
		}
		f.mu.Unlock()
		f.cond.Broadcast()
	}
}

// handleResultLocked folds one worker result into the running batch.
func (f *Fleet) handleResultLocked(w *workerConn, res *Result) {
	unit := res.Unit
	b := f.batch
	if w.unit == unit {
		w.unit = -1
	}
	if b == nil || res.Epoch != b.epoch || unit < 0 || unit >= len(b.results) {
		return // no batch, a stale epoch's straggler, or a nonsense index
	}
	if n := b.inflight[unit]; n > 0 {
		b.inflight[unit] = n - 1
	}
	if b.results[unit] != nil {
		return // a straggler duplicate lost the race; discard
	}
	if res.Err != "" {
		// Deterministic unit failure: every retry would fail identically.
		if b.err == nil {
			b.err = fmt.Errorf("fleet: unit %d: %s", unit, res.Err)
		}
		return
	}
	if b.journal != nil {
		// The record is synced before the merge: a coordinator crash
		// after this point can never lose a completed unit.
		if err := b.journal.append(res); err != nil {
			if b.err == nil {
				b.err = err
			}
			return
		}
	}
	b.results[unit] = res
	b.done++
	b.workers[w.id] = true
	if start, ok := b.started[unit]; ok {
		b.durations = append(b.durations, time.Since(start))
	}
}

// dropWorker runs when a worker's transport dies for any reason: it
// deregisters the worker, requeues its inflight unit and, for local
// workers with work still pending, asks the run loop to respawn.
func (f *Fleet) dropWorker(w *workerConn) {
	w.conn.Close()
	f.mu.Lock()
	delete(f.workers, w.id)
	if b := f.batch; b != nil && w.unit >= 0 && w.unitEpoch == b.epoch {
		unit := w.unit
		if n := b.inflight[unit]; n > 0 {
			b.inflight[unit] = n - 1
		}
		if b.results[unit] == nil && b.inflight[unit] == 0 {
			b.retries[unit]++
			if b.retries[unit] > f.cfg.MaxRetries {
				if b.err == nil {
					b.err = fmt.Errorf("fleet: unit %d lost %d workers — giving up", unit, b.retries[unit])
				}
			} else {
				// Front of the queue: a retried unit beats fresh work.
				b.pending = append([]int{unit}, b.pending...)
				f.cfg.Logf("fleet: worker %d died, unit %d requeued (attempt %d)", w.id, unit, b.retries[unit]+1)
			}
		}
		w.unit = -1
	}
	f.mu.Unlock()
	f.cond.Broadcast()
	f.cfg.Logf("fleet: worker %d gone", w.id)
}

// sendJob writes one job to one worker; a failed write kills the
// transport and lets the reader goroutine run the death path.
func (f *Fleet) sendJob(w *workerConn, job Job) {
	w.writeMu.Lock()
	err := writeFrame(w.conn, &envelope{Type: msgJob, Job: &job})
	w.writeMu.Unlock()
	if err != nil {
		f.cfg.Logf("fleet: dispatch to worker %d failed: %v", w.id, err)
		w.conn.Close()
	}
}

// Run executes one batch: jobs[i] becomes unit i (the field is assigned
// here), and the returned slice has the result of jobs[i] at index i
// regardless of which workers ran what in which order. Retries on worker
// death, heartbeat-based failure detection and straggler re-dispatch all
// happen inside; a deterministic unit error fails the whole batch.
func (f *Fleet) Run(jobs []Job) ([]*Result, error) {
	return f.runBatch(jobs, nil)
}

// RunJournaled is Run with a crash journal: units the journal already
// records are merged without being dispatched again, and every newly
// completed unit is durably appended before it is merged. A restarted
// coordinator that reopens the same journal therefore re-executes only
// the incomplete units.
func (f *Fleet) RunJournaled(jobs []Job, journal *Journal) ([]*Result, error) {
	if journal == nil {
		return nil, errors.New("fleet: RunJournaled without a journal")
	}
	if len(journal.completed) != len(jobs) {
		return nil, fmt.Errorf("fleet: journal covers %d units, batch has %d", len(journal.completed), len(jobs))
	}
	return f.runBatch(jobs, journal)
}

func (f *Fleet) runBatch(jobs []Job, journal *Journal) ([]*Result, error) {
	f.runMu.Lock()
	defer f.runMu.Unlock()
	if len(jobs) == 0 {
		return nil, nil
	}

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("fleet: closed")
	}
	f.epoch++
	b := &batch{
		epoch:    f.epoch,
		jobs:     jobs,
		results:  make([]*Result, len(jobs)),
		inflight: map[int]int{},
		retries:  make([]int, len(jobs)),
		started:  map[int]time.Time{},
		journal:  journal,
		began:    time.Now(),
		workers:  map[int]bool{},
	}
	for i := range jobs {
		jobs[i].Unit = i
		jobs[i].Epoch = b.epoch
		if journal != nil && journal.completed[i] != nil {
			// Completed by a previous coordinator: merge, don't dispatch.
			res := *journal.completed[i]
			res.Epoch = b.epoch
			b.results[i] = &res
			b.done++
			continue
		}
		b.pending = append(b.pending, i)
	}
	f.batch = b
	f.mu.Unlock()

	// The run loop blocks on the condition variable; this ticker wakes it
	// for heartbeat-timeout and straggler sweeps.
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	tickDone := make(chan struct{})
	defer close(tickDone)
	go func() {
		for {
			select {
			case <-tickDone:
				return
			case <-tick.C:
				f.cond.Broadcast()
			}
		}
	}()
	if f.cfg.Progress != nil {
		f.serving.Add(1)
		go f.renderProgress(b, tickDone)
	}

	f.mu.Lock()
	defer func() {
		f.batch = nil
		f.mu.Unlock()
	}()
	for {
		if b.err != nil {
			return nil, b.err
		}
		if b.done == len(jobs) {
			if b.journal != nil {
				// The summary is observability, not state: a journal
				// whose summary append failed still replays every unit.
				if err := b.journal.appendSummary(f.summaryLocked(b)); err != nil {
					f.cfg.Logf("fleet: journal telemetry summary not recorded: %v", err)
				}
			}
			out := make([]*Result, len(jobs))
			copy(out, b.results)
			return out, nil
		}
		if f.closed {
			return nil, errors.New("fleet: closed while running")
		}
		if dispatches := f.scheduleLocked(b); len(dispatches) > 0 {
			f.mu.Unlock()
			for _, d := range dispatches {
				f.sendJob(d.worker, d.job)
			}
			f.mu.Lock()
			continue
		}
		f.reapSilentLocked()
		if respawn := f.respawnWantedLocked(b); respawn > 0 {
			f.mu.Unlock()
			for i := 0; i < respawn; i++ {
				if err := f.spawnWorker(); err != nil {
					f.cfg.Logf("fleet: respawn failed: %v", err)
				}
			}
			f.mu.Lock()
			continue
		}
		if len(f.workers) == 0 && f.listener == nil && f.spawnsLeft <= 0 {
			return nil, errors.New("fleet: every worker died and the respawn budget is spent")
		}
		f.cond.Wait()
	}
}

// dispatch pairs a ready worker with a job to send.
type dispatch struct {
	worker *workerConn
	job    Job
}

// scheduleLocked assigns pending units — and, when the queue is drained,
// straggler duplicates — to idle workers, marking them busy. The frame
// writes happen outside the lock.
func (f *Fleet) scheduleLocked(b *batch) []dispatch {
	var out []dispatch
	idle := f.idleWorkersLocked()
	for len(idle) > 0 && len(b.pending) > 0 {
		unit := b.pending[0]
		b.pending = b.pending[1:]
		if b.results[unit] != nil {
			continue
		}
		w := idle[0]
		idle = idle[1:]
		w.unit = unit
		w.unitEpoch = b.epoch
		b.inflight[unit]++
		if _, ok := b.started[unit]; !ok {
			b.started[unit] = time.Now()
		}
		out = append(out, dispatch{worker: w, job: b.jobs[unit]})
	}
	if len(idle) > 0 && len(b.pending) == 0 {
		for _, unit := range f.stragglersLocked(b, len(idle)) {
			w := idle[0]
			idle = idle[1:]
			w.unit = unit
			w.unitEpoch = b.epoch
			b.inflight[unit]++
			out = append(out, dispatch{worker: w, job: b.jobs[unit]})
			f.cfg.Logf("fleet: unit %d is straggling, duplicated onto worker %d", unit, w.id)
		}
	}
	return out
}

// idleWorkersLocked lists ready workers with no inflight unit, in id
// order (determinism of the *schedule* is not required — results merge by
// unit — but a stable order keeps the logs readable).
func (f *Fleet) idleWorkersLocked() []*workerConn {
	var out []*workerConn
	for _, w := range f.workers {
		if w.ready && w.unit == -1 {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// stragglersLocked returns up to max unit indices that have been running
// longer than the straggler threshold and are not already duplicated.
func (f *Fleet) stragglersLocked(b *batch, max int) []int {
	if f.cfg.StragglerFactor < 0 || len(b.durations) == 0 {
		return nil
	}
	med := append([]time.Duration(nil), b.durations...)
	sort.Slice(med, func(i, j int) bool { return med[i] < med[j] })
	threshold := time.Duration(f.cfg.StragglerFactor * float64(med[len(med)/2]))
	if threshold < f.cfg.StragglerMin {
		threshold = f.cfg.StragglerMin
	}
	var out []int
	for unit, n := range b.inflight {
		if len(out) == max {
			break
		}
		if n != 1 || b.results[unit] != nil {
			continue
		}
		if time.Since(b.started[unit]) > threshold {
			out = append(out, unit)
		}
	}
	sort.Ints(out)
	return out
}

// reapSilentLocked kills workers whose heartbeat stopped; the transport
// close surfaces as a read error in serveConn, which requeues their work.
// Workers that never sent their hello are covered too — a wedged spawn
// (stuck init, never flushes stdout) is not a net.Conn, so the TCP hello
// deadline cannot reach it, and without the reap it would sit in the
// pool forever blocking both respawn and the all-workers-dead exit.
func (f *Fleet) reapSilentLocked() {
	for _, w := range f.workers {
		if time.Since(w.lastSeen) > f.cfg.HeartbeatTimeout {
			f.cfg.Logf("fleet: worker %d silent for %v — killed", w.id, time.Since(w.lastSeen).Round(time.Millisecond))
			w.conn.Close()
		}
	}
}

// respawnWantedLocked says how many local workers to spawn right now:
// enough to restore the configured pool while units are unassigned and
// the respawn budget lasts.
func (f *Fleet) respawnWantedLocked(b *batch) int {
	if f.cfg.Workers == 0 || len(b.pending) == 0 {
		return 0
	}
	locals := 0
	for _, w := range f.workers {
		if w.local {
			locals++
		}
	}
	want := f.cfg.Workers - locals
	if want > f.spawnsLeft {
		want = f.spawnsLeft
	}
	if want < 0 {
		return 0
	}
	f.spawnsLeft -= want
	return want
}

// renderProgress writes the live per-worker progress table to
// cfg.Progress about once a second until the batch's done channel
// closes. The table is assembled under the fleet lock from heartbeat
// telemetry and written outside it.
func (f *Fleet) renderProgress(b *batch, done <-chan struct{}) {
	defer f.serving.Done()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			f.mu.Lock()
			table := f.progressTableLocked(b)
			f.mu.Unlock()
			fmt.Fprint(f.cfg.Progress, table)
		}
	}
}

// progressTableLocked renders the batch position plus one line per
// connected worker from its last heartbeat telemetry.
func (f *Fleet) progressTableLocked(b *batch) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet: %d/%d units done, %s elapsed\n", b.done, len(b.jobs), time.Since(b.began).Round(time.Second))
	for _, wid := range sortedWorkerIDs(f.workers) {
		w := f.workers[wid]
		kind := "remote"
		if w.local {
			kind = "local"
		}
		st := w.status
		switch {
		case !w.ready:
			fmt.Fprintf(&sb, "  worker %d (%s): joining\n", w.id, kind)
		case st == nil || st.Unit < 0:
			fmt.Fprintf(&sb, "  worker %d (%s): idle\n", w.id, kind)
		default:
			fmt.Fprintf(&sb, "  worker %d (%s): unit %d tick=%d ticks/s=%.0f rss=%s\n",
				w.id, kind, st.Unit, st.Tick, st.TicksPerSec, telemetry.FormatBytes(st.PeakRSS))
		}
	}
	return sb.String()
}

// summaryLocked folds the batch's telemetry into the journal's summary
// record: what ran, on how many workers, how long, and the fleet's
// resident-set high-water mark.
func (f *Fleet) summaryLocked(b *batch) *TelemetrySummary {
	return &TelemetrySummary{
		Units:          len(b.jobs),
		Workers:        len(b.workers),
		ElapsedSeconds: time.Since(b.began).Seconds(),
		PeakRSS:        b.peakRSS,
	}
}

// Close shuts the fleet down: remote listeners stop accepting and every
// worker transport closes, which workers read as EOF — the shutdown
// signal. Idle workers (blocked reading for their next job) additionally
// get an explicit shutdown frame first; a busy or wedged worker gets none,
// because a frame write to a worker that is not reading can block forever.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	type closing struct {
		w    *workerConn
		idle bool
	}
	// Walk the worker table in id order so shutdown frames, socket
	// closes and the resulting log lines land deterministically (the
	// map walk appended workers process-randomly).
	workers := make([]closing, 0, len(f.workers))
	for _, wid := range sortedWorkerIDs(f.workers) {
		w := f.workers[wid]
		workers = append(workers, closing{w: w, idle: w.ready && w.unit == -1})
	}
	f.mu.Unlock()
	f.cond.Broadcast()
	if f.listener != nil {
		f.listener.Close()
	}
	for _, c := range workers {
		if c.idle {
			c.w.writeMu.Lock()
			_ = writeFrame(c.w.conn, &envelope{Type: msgShutdown})
			c.w.writeMu.Unlock()
		}
		c.w.conn.Close()
	}
	// Wait for the accept loop and every reader goroutine to finish:
	// their death paths call cfg.Logf, and the callback must never fire
	// after Close returns (a testing.T's Logf, for one, races with test
	// completion).
	f.serving.Wait()
}

// sortedWorkerIDs returns the worker-table keys in ascending id order.
func sortedWorkerIDs(m map[int]*workerConn) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ---------------------------------------------------------------------------
// Local worker spawning.

// ExecSpawn returns a SpawnFunc that launches the given command line and
// speaks the protocol over the child's stdin/stdout; the child's stderr
// passes through to this process's stderr. The conventional command is
// the running binary itself with "-worker" (both replend-sim and
// replend-experiments expose that mode).
func ExecSpawn(command []string) SpawnFunc {
	return func(int) (io.ReadWriteCloser, error) {
		if len(command) == 0 {
			return nil, errors.New("fleet: empty worker command")
		}
		return startProc(command)
	}
}

// SelfSpawn is ExecSpawn for the running binary in -worker mode — the
// standard local fleet layout.
func SelfSpawn() (SpawnFunc, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("fleet: resolving own binary: %w", err)
	}
	return ExecSpawn([]string{exe, "-worker"}), nil
}
