package workload

import (
	"repro/internal/churn"
	"repro/internal/rng"
)

// SessionParams are the resolved per-peer session-model parameters a
// plan is drawn under. A Plan embeds them so a recorded trace (and a
// checkpointed peer) is self-contained: later draws for the same peer —
// pop-floor extensions, rejoin visits — need only the params carried by
// the plan, never the cohort table that produced them.
type SessionParams struct {
	// Dist is the session-length distribution name (churn's names plus
	// "none"); empty means exponential.
	Dist string `json:"dist,omitempty"`
	// Mean is the mean session length in ticks; 0 disables the session
	// clock for this peer.
	Mean float64 `json:"mean,omitempty"`
	// CrashFrac is the probability a departure is an abrupt crash.
	CrashFrac float64 `json:"crashFrac,omitempty"`
	// RejoinProb is the probability a departure is followed by a rejoin.
	RejoinProb float64 `json:"rejoinProb,omitempty"`
	// DowntimeMean is the mean downtime before a rejoin, in ticks.
	DowntimeMean float64 `json:"downtimeMean,omitempty"`
}

// Plan is one drawn visit of a cohort-assigned peer: the session length,
// whether the eventual departure crashes, and the downtime before a
// rejoin (0 = gone for good). All stochastic choices are drawn up front
// from the peer's keyed stream, so replay and checkpoint-resume see
// identical visits without any extra generator state.
type Plan struct {
	SessionParams
	// Session is the drawn session length in ticks; 0 means no session
	// clock (the peer stays until another process departs it).
	Session float64 `json:"session,omitempty"`
	// Crash marks the visit's departure as an abrupt crash.
	Crash bool `json:"crash,omitempty"`
	// Rejoin is the drawn downtime before the peer returns; 0 means it
	// does not.
	Rejoin float64 `json:"rejoin,omitempty"`
}

// planKey salts the plan stream off the run seed, keeping it disjoint
// from every other keyed split in the repository.
const planKey = 0x776f726b6c6f6164 // "workload"

// PlanSeed derives the run-level plan seed from the run seed.
func PlanSeed(runSeed uint64) uint64 { return rng.DeriveSeed(runSeed, planKey) }

// PlanSource returns the generator for a peer's seq-th plan draw. The
// double keying — peer ordinal, then draw sequence — makes every draw a
// pure function of (run seed, ordinal, seq): replayed and resumed runs
// re-derive it without carrying stream state.
func PlanSource(planSeed uint64, ordinal, seq int64) *rng.Source {
	return rng.New(rng.DeriveSeed(rng.DeriveSeed(planSeed, uint64(ordinal)), uint64(seq)))
}

// DrawPlan draws one visit under the given parameters. The draw order is
// fixed (session, crash, rejoin) and crash/rejoin are drawn even without
// a session clock: a μ-clock departure consults them too.
func DrawPlan(params SessionParams, src *rng.Source) Plan {
	pl := Plan{SessionParams: params}
	if params.Mean > 0 && params.Dist != SessionNone {
		pl.Session = churn.SampleSession(src, params.Dist, params.Mean)
	}
	pl.Crash = src.Bernoulli(params.CrashFrac)
	if after, ok := churn.SampleRejoin(src, params.RejoinProb, params.DowntimeMean); ok {
		pl.Rejoin = after
	}
	return pl
}

// DrawSession draws one extra session length under the plan's
// parameters — the pop-floor extension path. Returns 1 tick when the
// parameters arm no session clock (the caller only asks when one is
// armed).
func DrawSession(params SessionParams, src *rng.Source) float64 {
	if params.Mean <= 0 || params.Dist == SessionNone {
		return 1
	}
	return churn.SampleSession(src, params.Dist, params.Mean)
}
