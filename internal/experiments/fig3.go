package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// Fig3 reproduces Figure 3, "Number of Cooperative and Uncooperative Peers
// in System with Proportion of Introducers that are Naive": λ=0.1, 50 000
// time units, sweeping fracNaive from 0 to 1. The paper's findings: as the
// naive proportion grows, cooperative membership falls slightly and
// uncooperative membership rises steeply; even at fracNaive=0 some
// uncooperative peers enter (the selective error rate), and even at
// fracNaive=1 fewer than the full uncooperative stream enters, because
// naive introducers go broke lending to freeriders.
type Fig3 struct {
	FracNaive []float64
	Coop      []float64
	Uncoop    []float64
	// RefusedRep tracks entries refused because the introducer's
	// reputation fell below the floor — the "going broke" effect.
	RefusedRep []float64
}

func fig3Config(fracNaive float64) config.Config {
	c := config.Default()
	c.Lambda = 0.1
	c.NumTrans = 50_000
	c.FracNaive = fracNaive
	return c
}

// Fig3Fractions is the swept naive proportion.
var Fig3Fractions = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// RunFig3 executes the sweep (nil fractions = the paper's full sweep).
func RunFig3(fractions []float64, opt Options) (*Fig3, error) {
	opt = opt.withDefaults()
	if fractions == nil {
		fractions = Fig3Fractions
	}
	out := &Fig3{}
	for i, fn := range fractions {
		cfg := opt.apply(fig3Config(fn))
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		out.FracNaive = append(out.FracNaive, fn)
		out.Coop = append(out.Coop, meanOf(rs, func(r Replica) int64 { return r.Metrics.CoopInSystem }))
		out.Uncoop = append(out.Uncoop, meanOf(rs, func(r Replica) int64 { return r.Metrics.UncoopInSystem }))
		out.RefusedRep = append(out.RefusedRep, meanOf(rs, func(r Replica) int64 {
			return r.Metrics.RefusedRepCoop + r.Metrics.RefusedRepUncoop
		}))
	}
	return out, nil
}

// Name implements Report.
func (f *Fig3) Name() string { return "fig3" }

// Table renders the swept counts.
func (f *Fig3) Table() string {
	t := &TextTable{
		Title:  "Figure 3 — population vs proportion of naive introducers (λ=0.1)",
		Header: []string{"fracNaive", "coop in system", "uncoop in system", "refused (introducer rep)"},
	}
	for i := range f.FracNaive {
		t.AddRow(f.FracNaive[i], f.Coop[i], f.Uncoop[i], f.RefusedRep[i])
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\npaper: coop ≈4200→3800 falling, uncoop ≈105→1000 rising; uncoop >0 at fracNaive=0 (selective error)\n")
	return b.String()
}

// CSV renders the sweep.
func (f *Fig3) CSV() string {
	var b strings.Builder
	b.WriteString("frac_naive,coop,uncoop,refused_introducer_rep\n")
	for i := range f.FracNaive {
		fmt.Fprintf(&b, "%g,%g,%g,%g\n", f.FracNaive[i], f.Coop[i], f.Uncoop[i], f.RefusedRep[i])
	}
	return b.String()
}
