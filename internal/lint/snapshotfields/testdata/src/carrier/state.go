// Package carrier exercises the snapshotfields analyzer: a struct with
// a Snapshot method in snapshot.go must have every field referenced
// there, annotated, or flagged.
package carrier

// State is a snapshot carrier: snapshot.go declares its Snapshot
// method.
type State struct {
	Tick    int64
	Balance float64
	// cache is new state snapshot.go was never taught about: flagged.
	cache map[string]int // want `field State\.cache is not referenced by the snapshot encoder`
	// onChange is deliberately dropped, with the reason on record.
	//replend:allow snapshotfields observer hook, re-attached by the restoring caller
	onChange func()
}

// Scratch has no encoder method in snapshot.go: not a carrier, its
// fields are nobody's business.
type Scratch struct {
	tmp []byte
}

func (s *State) bump() { s.Tick++ }

func (s *Scratch) reset() { s.tmp = s.tmp[:0] }
