package fleet

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// procConn is the transport to a spawned worker process: writes go to the
// child's stdin, reads come from its stdout, and Close kills the child.
type procConn struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser

	closeOnce sync.Once
	closeErr  error
}

// startProc launches the worker command with protocol pipes.
func startProc(command []string) (io.ReadWriteCloser, error) {
	cmd := exec.Command(command[0], command[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("fleet: starting worker %q: %w", command[0], err)
	}
	return &procConn{cmd: cmd, stdin: stdin, stdout: stdout}, nil
}

func (p *procConn) Read(b []byte) (int, error)  { return p.stdout.Read(b) }
func (p *procConn) Write(b []byte) (int, error) { return p.stdin.Write(b) }

// Close ends the worker: closing stdin lets a healthy worker exit on EOF,
// the kill covers a wedged one, and Wait reaps the process either way.
func (p *procConn) Close() error {
	p.closeOnce.Do(func() {
		p.stdin.Close()
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
		}
		p.closeErr = p.cmd.Wait()
		p.stdout.Close()
	})
	return p.closeErr
}
