package fleet

// Segment and journal tests: time-sharded chains must reproduce the
// uninterrupted run byte for byte, and a journaled batch resumed by a
// fresh coordinator must re-dispatch only the incomplete units.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/world"
)

// worldCheckpoint seals a freshly started world for the given config.
func worldCheckpoint(t *testing.T, cfg config.Config) []byte {
	t.Helper()
	w, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSegmentedMatchesDirectExecution: a run phase-split into chained
// checkpoint segments must produce the same result payload as the same
// run executed in one piece, for both checkpoint kinds.
func TestSegmentedMatchesDirectExecution(t *testing.T) {
	f, err := New(Config{Workers: 3, Spawn: PipeSpawn(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// World-kind chains, two seeds.
	var plans []SegmentPlan
	var want [][]byte
	for _, seed := range []uint64{rng.DeriveSeed(42, 0), rng.DeriveSeed(42, 1)} {
		c := config.Default()
		c.NumInit = 30
		c.NumTrans = 2_000
		c.Lambda = 0.05
		c.WaitPeriod = 100
		c.Seed = seed
		plans = append(plans, SegmentPlan{
			Checkpoint: worldCheckpoint(t, c),
			Cuts:       EvenCuts(0, c.NumTrans, 4),
		})
		ref, err := world.New(c)
		if err != nil {
			t.Fatal(err)
		}
		if err := ref.Run(); err != nil {
			t.Fatal(err)
		}
		direct, err := json.Marshal(&ConfigResult{Metrics: *ref.Metrics(), Proto: ref.Protocol().Stats()})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, direct)
	}
	// One scenario-kind chain.
	spec, err := scenario.Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	start, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, SegmentPlan{Checkpoint: start, Cuts: EvenCuts(0, spec.Base.NumTrans, 3)})
	refSpec, err := scenario.Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	out, err := refSpec.Run()
	if err != nil {
		t.Fatal(err)
	}
	directScenario, err := json.Marshal(&ScenarioResult{
		Metrics:         out.Metrics,
		Proto:           out.Proto,
		Outcomes:        out.Outcomes,
		FinalReputation: out.FinalReputation,
		Members:         out.Members,
	})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, directScenario)

	results, err := f.RunSegmented(plans)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		var got []byte
		switch {
		case res.Segment.Config != nil:
			got, err = json.Marshal(res.Segment.Config)
		case res.Segment.Scenario != nil:
			got, err = json.Marshal(res.Segment.Scenario)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("chain %d: segmented result differs from direct execution", i)
		}
	}
}

func TestEvenCuts(t *testing.T) {
	cuts := EvenCuts(0, 4000, 4)
	if !reflect.DeepEqual(cuts, []int64{1000, 2000, 3000}) {
		t.Fatalf("EvenCuts(0,4000,4) = %v", cuts)
	}
	if got := EvenCuts(0, 100, 1); got != nil {
		t.Fatalf("single segment should need no cuts, got %v", got)
	}
	if got := EvenCuts(0, 2, 5); got != nil {
		t.Fatalf("run shorter than the segment count should need no cuts, got %v", got)
	}
}

// recordingSpawn runs units in-process and records which unit indices
// were actually dispatched to a worker.
func recordingSpawn(mu *sync.Mutex, dispatched *[]int) SpawnFunc {
	return func(int) (io.ReadWriteCloser, error) {
		coord, worker := pipePair()
		go fakeWorker(worker, func(job *Job, send func(*envelope) error) bool {
			mu.Lock()
			*dispatched = append(*dispatched, job.Unit)
			mu.Unlock()
			return send(&envelope{Type: msgResult, Result: RunJob(job)}) == nil
		})
		return coord, nil
	}
}

// TestJournalResumeSkipsCompletedUnits is the coordinator-restart pin:
// a fresh coordinator reopening a journal that already records most of
// the batch must dispatch only the incomplete units, and the merged
// results must be byte-identical to the uninterrupted batch.
func TestJournalResumeSkipsCompletedUnits(t *testing.T) {
	jobs := tinyJobs(t, 6)
	path := filepath.Join(t.TempDir(), "batch.journal")

	// First coordinator: run the full batch under a journal.
	j1, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := New(Config{Workers: 2, Spawn: PipeSpawn(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	want, err := f1.RunJournaled(jobs, j1)
	if err != nil {
		t.Fatal(err)
	}
	f1.Close()
	j1.Close()

	// Simulate a coordinator killed after four completions: rewrite the
	// journal with only the first four record lines. Records land in
	// completion order, so the incomplete set is whatever the kept lines
	// do not mention.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 7 {
		t.Fatalf("journal has %d lines, want header + 6 records", len(lines))
	}
	if err := os.WriteFile(path, bytes.Join(lines[:5], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	kept := map[int]bool{}
	for _, line := range lines[1:5] {
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Result == nil {
			t.Fatalf("journal line carries no result: %s", line)
		}
		kept[rec.Result.Unit] = true
	}
	var incomplete []int
	for i := range jobs {
		if !kept[i] {
			incomplete = append(incomplete, i)
		}
	}

	// Restarted coordinator: reload the journal and finish the batch.
	resumeJobs := tinyJobs(t, 6)
	j2, err := OpenJournal(path, resumeJobs)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.CompletedCount(); n != 4 {
		t.Fatalf("reloaded journal has %d completed units, want 4", n)
	}
	var mu sync.Mutex
	var dispatched []int
	f2, err := New(Config{Workers: 2, Spawn: recordingSpawn(&mu, &dispatched), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	got, err := f2.RunJournaled(resumeJobs, j2)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	sort.Ints(dispatched)
	mu.Unlock()
	if !reflect.DeepEqual(dispatched, incomplete) {
		t.Fatalf("restarted coordinator dispatched units %v, want only the incomplete %v", dispatched, incomplete)
	}
	for i := range want {
		want[i].Epoch, got[i].Epoch = 0, 0
		if !bytes.Equal(mustJSON(t, want[i]), mustJSON(t, got[i])) {
			t.Fatalf("unit %d differs between journaled run and resumed run", i)
		}
	}
}

// TestJournalRejectsForeignBatch: a journal can only resume the batch
// whose signature it carries.
func TestJournalRejectsForeignBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	jobs := tinyJobs(t, 3)
	j, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	other := tinyJobs(t, 3)
	other[1].Seed++
	if _, err := OpenJournal(path, other); err == nil {
		t.Fatal("journal accepted a batch with a different signature")
	}
	if _, err := OpenJournal(path, tinyJobs(t, 2)); err == nil {
		t.Fatal("journal accepted a batch with a different unit count")
	}
}

// TestJournalDropsTornTail: a partial final line (coordinator died
// mid-append) is discarded, not treated as corruption.
func TestJournalDropsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.journal")
	jobs := tinyJobs(t, 2)
	j1, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Workers: 1, Spawn: PipeSpawn(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunJournaled(jobs, j1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j1.Close()

	fh, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString(`{"unit":1,"config":{"metr`); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	j2, err := OpenJournal(path, tinyJobs(t, 2))
	if err != nil {
		t.Fatalf("torn tail should be dropped, got %v", err)
	}
	defer j2.Close()
	if n := j2.CompletedCount(); n != 2 {
		t.Fatalf("torn-tail journal has %d completed units, want 2", n)
	}
}
