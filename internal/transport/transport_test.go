package transport

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestSynchronousDelivery(t *testing.T) {
	b := NewBus()
	a, c := id.FromUint64(1), id.FromUint64(2)
	var got []Message
	b.Register(c, func(m Message) { got = append(got, m) })
	b.Send(Message{From: a, To: c, Kind: "ping", Payload: 7})
	if len(got) != 1 || got[0].Kind != "ping" || got[0].Payload.(int) != 7 {
		t.Fatalf("delivery failed: %+v", got)
	}
	st := b.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoRouteCounted(t *testing.T) {
	b := NewBus()
	b.Send(Message{To: id.FromUint64(99), Kind: "x"})
	if st := b.Stats(); st.NoRoute != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCrashSwallowsAndRecoverRestores(t *testing.T) {
	b := NewBus()
	dst := id.FromUint64(5)
	delivered := 0
	b.Register(dst, func(Message) { delivered++ })
	b.Crash(dst)
	if !b.IsCrashed(dst) {
		t.Fatal("IsCrashed should be true")
	}
	b.Send(Message{To: dst, Kind: "x"})
	if delivered != 0 {
		t.Fatal("crashed node received a message")
	}
	b.Recover(dst)
	b.Send(Message{To: dst, Kind: "x"})
	if delivered != 1 {
		t.Fatal("recovered node did not receive")
	}
	if st := b.Stats(); st.Crashed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegisterClearsCrash(t *testing.T) {
	b := NewBus()
	dst := id.FromUint64(5)
	b.Register(dst, func(Message) {})
	b.Crash(dst)
	b.Register(dst, func(Message) {})
	if b.IsCrashed(dst) {
		t.Fatal("Register should clear crash state")
	}
}

func TestUnregister(t *testing.T) {
	b := NewBus()
	dst := id.FromUint64(5)
	b.Register(dst, func(Message) {})
	b.Unregister(dst)
	b.Send(Message{To: dst})
	if st := b.Stats(); st.NoRoute != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLossProbability(t *testing.T) {
	b := NewBus()
	b.SetLoss(0.5)
	b.SetFaultRand(rng.New(1))
	dst := id.FromUint64(1)
	delivered := 0
	b.Register(dst, func(Message) { delivered++ })
	const n = 10000
	for i := 0; i < n; i++ {
		b.Send(Message{To: dst})
	}
	if delivered < 4700 || delivered > 5300 {
		t.Fatalf("delivered %d of %d with 50%% loss", delivered, n)
	}
	st := b.Stats()
	if st.Dropped+int64(delivered) != n {
		t.Fatalf("dropped+delivered != sent: %+v", st)
	}
}

func TestLossWithoutRandPanics(t *testing.T) {
	b := NewBus()
	b.SetLoss(0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Send(Message{To: id.FromUint64(1)})
}

func TestSetLossValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus().SetLoss(1.5)
}

func TestDelayedDelivery(t *testing.T) {
	e := sim.NewEngine()
	b := NewBus()
	b.SetDelay(e, 10)
	dst := id.FromUint64(1)
	var deliveredAt sim.Tick = -1
	b.Register(dst, func(Message) { deliveredAt = e.Now() })
	e.Schedule(100, "send", func() { b.Send(Message{To: dst, Kind: "x"}) })
	e.Drain()
	if deliveredAt != 110 {
		t.Fatalf("delivered at %d, want 110", deliveredAt)
	}
}

func TestBroadcast(t *testing.T) {
	b := NewBus()
	var order []uint64
	var dsts []id.ID
	for i := uint64(1); i <= 4; i++ {
		i := i
		d := id.FromUint64(i)
		dsts = append(dsts, d)
		b.Register(d, func(Message) { order = append(order, i) })
	}
	b.Broadcast(id.FromUint64(9), "hello", nil, dsts)
	if len(order) != 4 {
		t.Fatalf("broadcast delivered %d, want 4", len(order))
	}
	for i, v := range order {
		if v != uint64(i+1) {
			t.Fatalf("broadcast order %v", order)
		}
	}
}

func TestRegisterNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBus().Register(id.FromUint64(1), nil)
}

func TestLendOrderEncodeDecodeRoundTrip(t *testing.T) {
	f := func(intro, np [id.Bytes]byte, amount float64, nonce uint64) bool {
		o := LendOrder{Introducer: id.ID(intro), NewPeer: id.ID(np), Amount: amount, Nonce: nonce}
		dec, err := DecodeLendOrder(o.Encode())
		if err != nil {
			return false
		}
		// NaN never round-trips by ==; compare bit patterns via re-encode.
		return string(dec.Encode()) == string(o.Encode())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLendOrderRejectsWrongLength(t *testing.T) {
	if _, err := DecodeLendOrder(make([]byte, 10)); err == nil {
		t.Fatal("expected error")
	}
}

func TestSignVerify(t *testing.T) {
	s, err := NewSigner(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	o := LendOrder{Introducer: id.FromUint64(1), NewPeer: id.FromUint64(2), Amount: 0.1, Nonce: 42}
	env := s.Sign(o)
	if err := env.Verify(s.Public()); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := env.Verify(nil); err != nil {
		t.Fatalf("verify without expected key: %v", err)
	}
}

func TestVerifyRejectsTamperedOrder(t *testing.T) {
	s, _ := NewSigner(rng.New(1))
	env := s.Sign(LendOrder{Introducer: id.FromUint64(1), NewPeer: id.FromUint64(2), Amount: 0.1, Nonce: 1})
	env.Order.Amount = 0.9
	if err := env.Verify(s.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered order verified: %v", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	s1, _ := NewSigner(rng.New(1))
	s2, _ := NewSigner(rng.New(2))
	env := s1.Sign(LendOrder{Nonce: 1})
	if err := env.Verify(s2.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong expected key accepted: %v", err)
	}
}

func TestVerifyRejectsImpersonation(t *testing.T) {
	// Attacker signs with its own key but claims to be the introducer.
	attacker, _ := NewSigner(rng.New(3))
	victimKey, _ := NewSigner(rng.New(4))
	env := attacker.Sign(LendOrder{Introducer: id.FromUint64(7), Nonce: 1})
	if err := env.Verify(victimKey.Public()); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("impersonation accepted: %v", err)
	}
}

func TestSignerDeterministic(t *testing.T) {
	a, _ := NewSigner(rng.New(7))
	b, _ := NewSigner(rng.New(7))
	if !a.Public().Equal(b.Public()) {
		t.Fatal("same seed must produce same keypair")
	}
}
