package workload

import "fmt"

// Preset names, in the order PresetNames lists them.
const (
	PresetDiurnal          = "diurnal"
	PresetFlashCrowd       = "flash-crowd"
	PresetHeavytailCohorts = "heavytail-cohorts"
)

// PresetNames lists the built-in workload presets.
func PresetNames() []string {
	return []string{PresetDiurnal, PresetFlashCrowd, PresetHeavytailCohorts}
}

// Preset returns a fresh copy of a named built-in workload spec.
func Preset(name string) (*Spec, error) {
	switch name {
	case PresetDiurnal:
		return Diurnal(), nil
	case PresetFlashCrowd:
		return FlashCrowd(), nil
	case PresetHeavytailCohorts:
		return HeavytailCohorts(), nil
	}
	return nil, fmt.Errorf("workload: unknown preset %q (have %v)", name, PresetNames())
}

// Diurnal is a repeating day/night arrival profile: a busy day plateau,
// a linear dusk ramp down, a quiet night, and a dawn ramp back up — a
// 30 000-tick cycle — plus one flash-crowd spike on the second day. The
// rates bracket the paper's λ=0.01 Table-1 default on both sides.
func Diurnal() *Spec {
	return &Spec{Rate: &Program{
		Repeat: true,
		Windows: []Window{
			{Len: 10_000, Lambda: 0.03},                  // day plateau
			{Len: 5_000, Lambda: 0.03, RampTo: f(0.003)}, // dusk ramp
			{Len: 10_000, Lambda: 0.003},                 // night
			{Len: 5_000, Lambda: 0.003, RampTo: f(0.03)}, // dawn ramp
		},
		Spikes: []Spike{
			{At: 42_000, Len: 1_000, Lambda: 0.15}, // second-day flash crowd
		},
	}}
}

// FlashCrowd is a steady base rate punctuated by two short spikes of
// 10× and 20× the base — the regime that stresses the waiting-period
// admission pipeline hardest.
func FlashCrowd() *Spec {
	return &Spec{Rate: &Program{
		Repeat:  true,
		Windows: []Window{{Len: 10_000, Lambda: 0.01}},
		Spikes: []Spike{
			{At: 15_000, Len: 2_000, Lambda: 0.1},
			{At: 40_000, Len: 1_000, Lambda: 0.2},
		},
	}}
}

// HeavytailCohorts is the behavioural-cohort preset: long-lived
// residents, the Pareto mobile-churner calibration the churn-heavytail
// scenario pinned (mean 50 000-tick sessions, 25% crashes, 40% rejoins
// after a mean 2 500-tick downtime), and short-lived freeloaders who
// demand twice their population share of transactions.
func HeavytailCohorts() *Spec {
	return &Spec{Cohorts: []Cohort{
		{
			Name: "resident", Weight: 0.2, Uncoop: f(0.05),
			SessionDist: "pareto", SessionMean: 150_000,
			CrashFrac: f(0.1), RejoinProb: f(0.7), DowntimeMean: 2_000,
		},
		{
			Name: "mobile-churner", Weight: 0.5,
			SessionDist: "pareto", SessionMean: 50_000,
			CrashFrac: f(0.25), RejoinProb: f(0.4), DowntimeMean: 2_500,
		},
		{
			Name: "freeloader", Weight: 0.3, Uncoop: f(1), Demand: 2,
			SessionDist: "exponential", SessionMean: 20_000,
			CrashFrac: f(0.5), RejoinProb: f(0.2), DowntimeMean: 5_000,
		},
	}}
}

// f is the pointer-literal helper for the preset tables.
func f(v float64) *float64 { return &v }
