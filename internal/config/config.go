// Package config defines the simulation parameter set: the paper's
// Table 1 (with its published defaults, validation, and JSON
// round-tripping for experiment and scenario files) plus the knobs the
// extensions added — membership churn (Config.Churn, see
// internal/churn), the admission-stake lifecycle clock
// (Config.StakeTimeout), and the null-signing fidelity opt-out
// (Config.NullSign). Default returns Table 1 exactly; Load overlays a
// JSON document on those defaults and validates the result, so an empty
// file is the paper's setup and every field is individually optional.
package config

import (
	"encoding/json"
	"fmt"

	"repro/internal/churn"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Config mirrors the paper's Table 1 ("Simulation parameters") plus the
// handful of knobs the paper fixes in prose.
type Config struct {
	// NumInit is the initial number of (cooperative) peers in the system.
	NumInit int `json:"numInit"`
	// NumTrans is the number of transactions; the simulator schedules
	// exactly one per simulation time unit, so this is also the run length
	// in ticks.
	NumTrans int64 `json:"numTrans"`
	// NumSM is the number of score managers per peer.
	NumSM int `json:"numSM"`
	// Lambda is the rate of new peer arrival (Poisson, per tick).
	Lambda float64 `json:"lambda"`
	// FracUncoop is the fraction of new entrants who are uncooperative.
	FracUncoop float64 `json:"fracUncoop"`
	// FracNaive is the fraction of cooperative peers who are naive
	// introducers; the remainder are selective. All uncooperative peers
	// are naive introducers (paper §4).
	FracNaive float64 `json:"fracNaive"`
	// ErrSel is the fraction of selective-peer introduction decisions on
	// uncooperative peers that are (incorrectly) granted.
	ErrSel float64 `json:"errSel"`
	// Topology selects the respondent/introducer bias: "random" or
	// "powerlaw".
	Topology topology.Kind `json:"topology"`
	// WaitPeriod is T, the waiting period for introductions, in ticks.
	WaitPeriod int64 `json:"waitPeriod"`
	// AuditTrans is the number of completed transactions after which a new
	// node is audited.
	AuditTrans int `json:"auditTrans"`
	// IntroAmt is the amount of reputation an introducer gives up when it
	// introduces a new peer.
	IntroAmt float64 `json:"introAmt"`
	// Reward is the reward for introducing a cooperative peer. The paper
	// fixes it at 20% of IntroAmt in §4.3; Table 1's default 0.02 is
	// exactly 0.2·IntroAmt.
	Reward float64 `json:"reward"`
	// MinIntroRep is the minimum reputation required for introducing a
	// peer. It must exceed IntroAmt so lending can never drive a
	// reputation negative (paper §3).
	MinIntroRep float64 `json:"minIntroRep"`
	// AuditThreshold is the reputation at or above which the audited
	// newcomer's performance is "deemed satisfactory based on its
	// reputation value".
	AuditThreshold float64 `json:"auditThreshold"`
	// FounderRep is the initial reputation of the founding community
	// ("Initially, all nodes in the p2p network are assumed to be honest
	// and cooperative").
	FounderRep float64 `json:"founderRep"`
	// RequireIntroductions switches the lending scheme on. With it off,
	// every arriving peer is admitted immediately with FounderRep — the
	// "without introductions" baseline of §4.1's success-rate comparison.
	RequireIntroductions bool `json:"requireIntroductions"`
	// SampleEvery is the tick interval between reputation samples (the
	// paper retrieves reputations "every 5000 time units" for Figure 2).
	SampleEvery int64 `json:"sampleEvery"`
	// Seed drives all randomness of a run.
	Seed uint64 `json:"seed"`
	// Churn configures membership churn of admitted peers — departures,
	// crashes and rejoins with score-manager state migration. The zero
	// value is the paper's model: members never leave.
	Churn churn.Params `json:"churn,omitzero"`
	// StakeTimeout, in ticks, arms the admission-stake lifecycle clock:
	// a stake still pending this long after the admission is resolved by
	// the timeout rule (refunded to a surviving party, or stranded when
	// both parties are gone for good), and stake records of peers offline
	// this long are expired so rejoin-free churn cannot accrete state.
	// 0 (the default, and the paper's model) disables the clock: stakes
	// whose audit never fires stay in limbo, exactly as published.
	StakeTimeout int64 `json:"stakeTimeout,omitempty"`
	// NullSign replaces the Ed25519 signing identities with cheap
	// id-bound null identities: lend orders carry no real signature and
	// none is verified. An explicit fidelity opt-out for huge churn
	// sweeps where the per-lend signature floor dominates; the default
	// (false) keeps the paper's signed protocol.
	NullSign bool `json:"nullSign,omitempty"`
	// Workload layers calibrated arrival/session generation over the
	// homogeneous Poisson knob: nonstationary rate programs, behavioural
	// cohorts, and byte-reproducible trace replay (see internal/workload
	// and docs/workloads.md). nil is the paper's generator. While a rate
	// program or a replayed trace governs arrivals, Lambda (including
	// mid-run Lambda deltas) has no effect.
	Workload *workload.Spec `json:"workload,omitempty"`
}

// Default returns the paper's Table 1 defaults.
func Default() Config {
	return Config{
		NumInit:              500,
		NumTrans:             500_000,
		NumSM:                6,
		Lambda:               0.01,
		FracUncoop:           0.25,
		FracNaive:            0.3,
		ErrSel:               0.10,
		Topology:             topology.PowerLaw,
		WaitPeriod:           1000,
		AuditTrans:           20,
		IntroAmt:             0.1,
		Reward:               0.02,
		MinIntroRep:          0.5,
		AuditThreshold:       0.5,
		FounderRep:           1.0,
		RequireIntroductions: true,
		SampleEvery:          5000,
		Seed:                 1,
	}
}

// WithIntroAmt returns a copy with IntroAmt set and the reward re-derived
// as 20% of the lent amount, the coupling §4.3 uses for its sweep.
func (c Config) WithIntroAmt(amt float64) Config {
	c.IntroAmt = amt
	c.Reward = 0.2 * amt
	if c.MinIntroRep <= amt {
		c.MinIntroRep = amt + 0.05
	}
	return c
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	switch {
	case c.NumInit < 0:
		return fmt.Errorf("config: NumInit %d negative", c.NumInit)
	case c.NumTrans <= 0:
		return fmt.Errorf("config: NumTrans %d must be positive", c.NumTrans)
	case c.NumSM <= 0:
		return fmt.Errorf("config: NumSM %d must be positive", c.NumSM)
	case c.Lambda < 0:
		return fmt.Errorf("config: Lambda %v negative", c.Lambda)
	case c.FracUncoop < 0 || c.FracUncoop > 1:
		return fmt.Errorf("config: FracUncoop %v out of [0,1]", c.FracUncoop)
	case c.FracNaive < 0 || c.FracNaive > 1:
		return fmt.Errorf("config: FracNaive %v out of [0,1]", c.FracNaive)
	case c.ErrSel < 0 || c.ErrSel > 1:
		return fmt.Errorf("config: ErrSel %v out of [0,1]", c.ErrSel)
	case c.WaitPeriod < 0:
		return fmt.Errorf("config: WaitPeriod %d negative", c.WaitPeriod)
	case c.AuditTrans <= 0:
		return fmt.Errorf("config: AuditTrans %d must be positive", c.AuditTrans)
	case c.IntroAmt <= 0 || c.IntroAmt > 1:
		return fmt.Errorf("config: IntroAmt %v out of (0,1]", c.IntroAmt)
	case c.Reward < 0 || c.Reward > 1:
		return fmt.Errorf("config: Reward %v out of [0,1]", c.Reward)
	case c.MinIntroRep <= c.IntroAmt:
		return fmt.Errorf("config: MinIntroRep %v must exceed IntroAmt %v (paper §3: prevents negative reputation)",
			c.MinIntroRep, c.IntroAmt)
	case c.MinIntroRep > 1:
		return fmt.Errorf("config: MinIntroRep %v out of range", c.MinIntroRep)
	case c.AuditThreshold < 0 || c.AuditThreshold > 1:
		return fmt.Errorf("config: AuditThreshold %v out of [0,1]", c.AuditThreshold)
	case c.FounderRep <= 0 || c.FounderRep > 1:
		return fmt.Errorf("config: FounderRep %v out of (0,1]", c.FounderRep)
	case c.SampleEvery <= 0:
		return fmt.Errorf("config: SampleEvery %d must be positive", c.SampleEvery)
	case c.StakeTimeout < 0:
		return fmt.Errorf("config: StakeTimeout %d negative", c.StakeTimeout)
	}
	if _, err := topology.ParseKind(string(c.Topology)); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := c.Churn.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := c.Workload.Validate(c.Churn); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// MarshalJSON is the default struct encoding; provided symmetrically with
// Load for experiment files.
func (c Config) JSON() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// Load parses a configuration from JSON, applying defaults for absent
// fields, and validates it.
func Load(data []byte) (Config, error) {
	c := Default()
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: parsing: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
