package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/id"
	"repro/internal/telemetry"
)

func p(v uint64) id.ID { return id.FromUint64(v) }

func TestRecordAndFilter(t *testing.T) {
	l := New(0)
	l.Record(1, Arrival, p(1), p(9), "cooperative")
	l.Record(2, Admitted, p(1), p(9), "cooperative")
	l.Record(3, Arrival, p(2), p(9), "uncooperative")
	l.Record(4, Refused, p(2), p(9), "refused-by-introducer")
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.Filter(Arrival); len(got) != 2 {
		t.Fatalf("arrivals = %d", len(got))
	}
	evs := l.Events()
	if evs[0].Other == "" || evs[0].Peer == "" {
		t.Fatalf("event fields missing: %+v", evs[0])
	}
}

func TestZeroOtherOmitted(t *testing.T) {
	l := New(0)
	l.Record(1, Flagged, p(1), id.ID{}, "duplicate introduction")
	if l.Events()[0].Other != "" {
		t.Fatal("zero counterparty should be omitted")
	}
}

func TestLimitDropsSilently(t *testing.T) {
	l := New(2)
	for i := int64(0); i < 5; i++ {
		l.Record(i, Arrival, p(uint64(i)), id.ID{}, "")
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestWriteJSONL(t *testing.T) {
	l := New(0)
	l.Record(5, Admitted, p(1), p(2), "cooperative")
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.At != 5 || ev.Kind != Admitted || ev.Detail != "cooperative" {
		t.Fatalf("round trip = %+v", ev)
	}
}

func TestSummary(t *testing.T) {
	l := New(0)
	l.Record(1, Arrival, p(1), p(9), "")
	l.Record(2, Admitted, p(1), p(9), "")
	l.Record(3, Arrival, p(2), p(9), "")
	l.Record(4, Refused, p(2), p(9), "selective")
	s := l.Summary(1)
	for _, want := range []string{"arrival", "admitted", "refused", "2", "1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "audit-ok") {
		t.Fatal("summary shows kinds with zero count")
	}
}

func TestVerifyCleanLog(t *testing.T) {
	l := New(0)
	l.Record(1, Arrival, p(1), p(9), "")
	l.Record(2, Admitted, p(1), p(9), "")
	l.Record(3, AuditOK, p(1), p(9), "")
	if v := l.Verify(); len(v) != 0 {
		t.Fatalf("clean log reported violations: %v", v)
	}
}

func TestVerifyCatchesAdmissionWithoutArrival(t *testing.T) {
	l := New(0)
	l.Record(1, Admitted, p(1), p(9), "")
	if v := l.Verify(); len(v) == 0 {
		t.Fatal("missed admission without arrival")
	}
}

func TestVerifyCatchesAuditWithoutAdmission(t *testing.T) {
	l := New(0)
	l.Record(1, Arrival, p(1), p(9), "")
	l.Record(2, AuditFail, p(1), p(9), "")
	if v := l.Verify(); len(v) == 0 {
		t.Fatal("missed audit without admission")
	}
}

func TestVerifyCatchesAdmitAndRefuse(t *testing.T) {
	l := New(0)
	l.Record(1, Arrival, p(1), p(9), "")
	l.Record(2, Admitted, p(1), p(9), "")
	l.Record(3, Refused, p(1), p(9), "")
	if v := l.Verify(); len(v) == 0 {
		t.Fatal("missed refuse-after-admit")
	}
}

func TestVerifyCatchesTimeDisorder(t *testing.T) {
	l := New(0)
	l.Record(5, Arrival, p(1), p(9), "")
	l.Record(3, Arrival, p(2), p(9), "")
	if v := l.Verify(); len(v) == 0 {
		t.Fatal("missed time disorder")
	}
}

func TestVerifyReportsTruncation(t *testing.T) {
	l := New(1)
	l.Record(1, Arrival, p(1), p(9), "")
	l.Record(2, Admitted, p(1), p(9), "")
	found := false
	for _, v := range l.Verify() {
		if strings.Contains(v, "retention limit") {
			found = true
			if !strings.Contains(v, "1 events dropped") {
				t.Fatalf("violation does not carry the exact dropped count: %q", v)
			}
		}
	}
	if !found {
		t.Fatal("truncated log verified silently")
	}
}

func TestVerifyExactlyAtLimitIsComplete(t *testing.T) {
	l := New(2)
	l.Record(1, Arrival, p(1), p(9), "")
	l.Record(2, Admitted, p(1), p(9), "")
	if v := l.Verify(); len(v) != 0 {
		t.Fatalf("log filled to its limit with nothing dropped reported violations: %v", v)
	}
}

func TestCountersStayExactPastLimit(t *testing.T) {
	l := New(2)
	for i := int64(0); i < 5; i++ {
		l.Record(i, Arrival, p(uint64(i)), id.ID{}, "")
	}
	l.Record(5, Admitted, p(0), id.ID{}, "")
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if got := l.Dropped(); got != 4 {
		t.Fatalf("Dropped = %d, want 4", got)
	}
	if got := l.Count(Arrival); got != 5 {
		t.Fatalf("Count(Arrival) = %d, want 5", got)
	}
	if got := l.Count(Admitted); got != 1 {
		t.Fatalf("Count(Admitted) = %d, want 1", got)
	}
	if got := l.Total(); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
}

func TestSinkMatchesDirectRecord(t *testing.T) {
	direct := New(2)
	direct.Record(1, Arrival, p(1), p(9), "cooperative")
	direct.Record(2, Admitted, p(1), p(9), "")
	direct.Record(3, Arrival, p(2), id.ID{}, "")

	viaSink := New(2)
	s := Sink{Log: viaSink}
	s.Event(telemetry.Event{At: 1, Kind: "arrival", Peer: p(1).Short(), Other: p(9).Short(), Detail: "cooperative"})
	s.Event(telemetry.Event{At: 2, Kind: "admitted", Peer: p(1).Short(), Other: p(9).Short()})
	s.Event(telemetry.Event{At: 3, Kind: "arrival", Peer: p(2).Short()})
	s.Sample(telemetry.Sample{At: 3, Series: "coop", Value: 1}) // ignored
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(viaSink.Events(), direct.Events()) {
		t.Fatalf("sink events %v != direct %v", viaSink.Events(), direct.Events())
	}
	if viaSink.Dropped() != direct.Dropped() || viaSink.Count(Arrival) != direct.Count(Arrival) {
		t.Fatalf("sink counters diverge: dropped %d vs %d", viaSink.Dropped(), direct.Dropped())
	}
}

// TestUnboundedLogGrowsLinearly pins the contrast side of the telemetry
// bounded-memory proof: an unlimited in-memory log retains every one of
// n events, where the streaming sink's retained ceiling stays constant
// (see telemetry.TestStreamSinkBoundedMemory).
func TestUnboundedLogGrowsLinearly(t *testing.T) {
	const n = 600_000
	l := New(0)
	for i := int64(0); i < n; i++ {
		l.recordRaw(i, Arrival, "peer", "", "")
	}
	if l.Len() != n {
		t.Fatalf("unbounded log retained %d of %d events", l.Len(), n)
	}
}

func TestSummaryReportsExactCountsAndDrops(t *testing.T) {
	l := New(1)
	for i := int64(0); i < 3; i++ {
		l.Record(i, Arrival, p(uint64(i)), id.ID{}, "")
	}
	s := l.Summary(1)
	if !strings.Contains(s, "arrival         3") {
		t.Fatalf("summary count is not exact:\n%s", s)
	}
	if !strings.Contains(s, "2 events dropped") {
		t.Fatalf("summary does not surface the dropped count:\n%s", s)
	}
	unbounded := New(0)
	unbounded.Record(1, Arrival, p(1), id.ID{}, "")
	if strings.Contains(unbounded.Summary(1), "dropped") {
		t.Fatal("summary of a complete log mentions drops")
	}
}
