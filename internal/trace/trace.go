// Package trace records the structured event log of a simulation run: who
// arrived, who introduced whom, what was lent, how audits resolved, which
// peers were refused and why. The log supports replayable summaries for
// debugging, JSON-lines export for external analysis, and the invariant
// checks the test suite runs over whole simulations (for example: every
// audit must refer to an earlier admission).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/id"
)

// Kind classifies an event.
type Kind string

// The event kinds a run can produce.
const (
	Arrival   Kind = "arrival"   // a peer arrived and asked for an introduction
	Admitted  Kind = "admitted"  // the lend executed; the peer is in
	Refused   Kind = "refused"   // the attempt ended without admission
	AuditOK   Kind = "audit-ok"  // audit satisfied; stake returned + reward
	AuditFail Kind = "audit-bad" // audit unsatisfied; stake forfeited
	Flagged   Kind = "flagged"   // duplicate-introduction punishment
	Departed  Kind = "departed"  // an admitted member left (detail: "leave" or "crash")
	Rejoined  Kind = "rejoined"  // a departed member returned, reputation restored
	Wipeout   Kind = "wipeout"   // every replica of a peer's reputation died at once
	// Stake lifecycle events (detail: "refunded" or "stranded"): the
	// audit-timeout clock resolved a pending stake, or the offline-record
	// TTL expired a departed newcomer's stake record.
	StakeClosed  Kind = "stake-closed"
	StakeExpired Kind = "stake-expired"
	// LeaseEvicted: the record lease of a departed peer expired — its
	// reputation replicas were evicted and its rejoin eligibility dropped.
	LeaseEvicted Kind = "lease-evict"
)

// Event is one recorded occurrence.
type Event struct {
	At   int64  `json:"at"`
	Kind Kind   `json:"kind"`
	Peer string `json:"peer"`
	// Other is the counterparty when one exists (the introducer for
	// arrival/admitted/refused/audit events).
	Other string `json:"other,omitempty"`
	// Detail carries the refusal reason or other annotation.
	Detail string `json:"detail,omitempty"`
}

// kindOrder is the fixed rendering order of kinds in summaries; every
// Kind declared above appears exactly once.
var kindOrder = []Kind{Arrival, Admitted, Refused, AuditOK, AuditFail, Flagged, Departed, Rejoined, Wipeout, StakeClosed, StakeExpired, LeaseEvicted}

// Log is an append-only event recorder. The zero value is ready to use.
// It is not safe for concurrent use (the simulation is single-threaded).
//
// A bounded log retains at most limit events, but the per-kind counters
// stay exact: every Record past the limit still increments its kind's
// count and the dropped total, so Summary and Count report the whole
// run even when the event bodies are gone.
type Log struct {
	events  []Event
	limit   int
	counts  map[Kind]int64
	dropped int64
}

// New returns a log that keeps at most limit events (0 = unlimited).
// Long runs at paper scale produce hundreds of thousands of events; a
// bounded log keeps memory flat while the counters stay exact.
func New(limit int) *Log {
	return &Log{limit: limit}
}

// Record counts one event, appending its body unless the retention limit
// is reached (then only the exact counters advance).
func (l *Log) Record(at int64, kind Kind, peer, other id.ID, detail string) {
	otherShort := ""
	if !other.IsZero() {
		otherShort = other.Short()
	}
	l.recordRaw(at, kind, peer.Short(), otherShort, detail)
}

// recordRaw is Record with pre-rendered peer strings — the path the
// telemetry Sink adapter uses, since bus events already carry shortened
// IDs.
func (l *Log) recordRaw(at int64, kind Kind, peer, other, detail string) {
	if l.counts == nil {
		l.counts = make(map[Kind]int64)
	}
	l.counts[kind]++
	if l.limit > 0 && len(l.events) >= l.limit {
		l.dropped++
		return
	}
	l.events = append(l.events, Event{At: at, Kind: kind, Peer: peer, Other: other, Detail: detail})
}

// Len returns the number of retained events.
func (l *Log) Len() int { return len(l.events) }

// Dropped returns the exact number of events recorded past the retention
// limit (their bodies were discarded; their kind counts were not).
func (l *Log) Dropped() int64 { return l.dropped }

// Count returns the exact number of events of one kind recorded over the
// whole run, including events whose bodies were dropped.
func (l *Log) Count(kind Kind) int64 { return l.counts[kind] }

// Total returns the exact number of events recorded (retained + dropped).
func (l *Log) Total() int64 { return int64(len(l.events)) + l.dropped }

// Events returns the retained events (copy).
func (l *Log) Events() []Event {
	return append([]Event(nil), l.events...)
}

// Filter returns the retained events of one kind.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL streams the retained events as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encoding event: %w", err)
		}
	}
	return nil
}

// Summary renders exact per-kind counts plus the first few retained
// events of each kind, a compact debugging view of a whole run. The
// counts cover every recorded event — dropped ones included — and a
// trailing line reports how many event bodies the retention limit
// discarded.
func (l *Log) Summary(perKind int) string {
	firsts := map[Kind][]Event{}
	for _, e := range l.events {
		if len(firsts[e.Kind]) < perKind {
			firsts[e.Kind] = append(firsts[e.Kind], e)
		}
	}
	var b strings.Builder
	for _, k := range kindOrder {
		if l.counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %6d", k, l.counts[k])
		for i, e := range firsts[k] {
			if i == 0 {
				b.WriteString("  e.g. ")
			} else {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "t=%d %s", e.At, e.Peer)
			if e.Other != "" {
				fmt.Fprintf(&b, "<-%s", e.Other)
			}
			if e.Detail != "" {
				fmt.Fprintf(&b, " (%s)", e.Detail)
			}
		}
		b.WriteString("\n")
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "%d events dropped past the retention limit (counts above remain exact)\n", l.dropped)
	}
	return b.String()
}

// Verify checks causal invariants over the retained events and returns
// every violation found:
//
//   - an admitted/refused event must follow an arrival of the same peer
//   - a peer cannot be both admitted and refused
//   - an audit event must follow the peer's admission
//   - a rejoined event must follow a departure of the same peer
//   - events must be time-ordered
//
// A bounded log can only be verified if nothing was dropped; Verify
// reports the exact number of dropped events as a violation too.
func (l *Log) Verify() []string {
	var violations []string
	if l.dropped > 0 {
		violations = append(violations, fmt.Sprintf("%d events dropped past the retention limit; verification incomplete", l.dropped))
	}
	arrived := map[string]bool{}
	admitted := map[string]bool{}
	refused := map[string]bool{}
	departed := map[string]bool{}
	var prev int64
	for i, e := range l.events {
		if e.At < prev {
			violations = append(violations, fmt.Sprintf("event %d at t=%d precedes t=%d", i, e.At, prev))
		}
		prev = e.At
		switch e.Kind {
		case Arrival:
			arrived[e.Peer] = true
		case Admitted:
			if !arrived[e.Peer] {
				violations = append(violations, fmt.Sprintf("peer %s admitted without arrival", e.Peer))
			}
			if refused[e.Peer] {
				violations = append(violations, fmt.Sprintf("peer %s admitted after refusal", e.Peer))
			}
			admitted[e.Peer] = true
		case Refused:
			if !arrived[e.Peer] {
				violations = append(violations, fmt.Sprintf("peer %s refused without arrival", e.Peer))
			}
			if admitted[e.Peer] {
				violations = append(violations, fmt.Sprintf("peer %s refused after admission", e.Peer))
			}
			refused[e.Peer] = true
		case AuditOK, AuditFail:
			if !admitted[e.Peer] {
				violations = append(violations, fmt.Sprintf("peer %s audited without admission", e.Peer))
			}
		case Departed:
			departed[e.Peer] = true
		case Rejoined:
			if !departed[e.Peer] {
				violations = append(violations, fmt.Sprintf("peer %s rejoined without departing", e.Peer))
			}
			delete(departed, e.Peer)
		}
	}
	return violations
}
