package transport

import (
	"crypto/ed25519"
	"fmt"
	"sort"

	"repro/internal/id"
	"repro/internal/rng"
)

// Checkpoint support for the transport layer. A Signer's externally
// observable behaviour is a pure function of (source state, materialized
// keypair), so capturing those two is enough to continue the exact stream
// of signatures and key derivations. The Bus carries run-relevant state in
// its crash set and activity counters; handlers are re-registered by the
// protocol layer on restore, so they are not part of the capture.

// SignerState is the serializable state of a Signer. Priv is nil when the
// keypair was never derived — the common case, since most simulated peers
// never sign anything — and the full Ed25519 private key otherwise (the
// public key is its suffix and is re-derived on restore).
type SignerState struct {
	Src  [4]uint64 `json:"src"`
	Priv []byte    `json:"priv,omitempty"`
}

// Export captures the signer's state for a checkpoint.
func (s *Signer) Export() SignerState {
	st := SignerState{Src: s.src.State()}
	if s.priv != nil {
		st.Priv = append([]byte(nil), s.priv...)
	}
	return st
}

// SignerFromState reconstructs a Signer from a captured state.
func SignerFromState(st SignerState) (*Signer, error) {
	s := &Signer{src: rng.FromState(st.Src)}
	if st.Priv != nil {
		if len(st.Priv) != ed25519.PrivateKeySize {
			return nil, fmt.Errorf("transport: signer state has %d private key bytes, want %d", len(st.Priv), ed25519.PrivateKeySize)
		}
		s.priv = ed25519.PrivateKey(append([]byte(nil), st.Priv...))
		s.pub = s.priv.Public().(ed25519.PublicKey)
	}
	return s, nil
}

// NewVerifyOnly returns the verification-only identity for a departed
// signer's public key — the restore path for tombstones captured in a
// checkpoint.
func NewVerifyOnly(pub ed25519.PublicKey) (Identity, error) {
	if len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("transport: tombstone public key has %d bytes, want %d", len(pub), ed25519.PublicKeySize)
	}
	return verifyOnly{pub: append(ed25519.PublicKey(nil), pub...)}, nil
}

// VerifyOnlyPublic returns the public key of a verification-only identity
// produced by Tombstone, or false for any other identity kind.
func VerifyOnlyPublic(ident Identity) (ed25519.PublicKey, bool) {
	v, ok := ident.(verifyOnly)
	if !ok {
		return nil, false
	}
	return v.pub, true
}

// FaultsActive reports whether the bus has loss or delay injection
// configured. Delayed deliveries live in the event queue as closures over
// in-flight messages, which a checkpoint cannot serialize, so snapshotting
// is refused while faults are active.
func (b *Bus) FaultsActive() bool { return b.lossProb > 0 || b.delay > 0 }

// CrashedAddrs returns the currently crashed addresses in ascending ID
// order, for deterministic encoding.
func (b *Bus) CrashedAddrs() []id.ID {
	out := make([]id.ID, 0, len(b.crashed))
	for addr := range b.crashed {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RestoreCrashed re-marks the given addresses as crashed. Callers must
// invoke it after all Register calls for the restored membership, since
// Register clears crash flags.
func (b *Bus) RestoreCrashed(addrs []id.ID) {
	for _, addr := range addrs {
		b.crashed[addr] = true
	}
}

// RestoreStats overwrites the activity counters with checkpointed values.
func (b *Bus) RestoreStats(s Stats) { b.stats = s }
