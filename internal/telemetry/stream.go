package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// DefaultFlushEvery is the retained-record ceiling of a StreamSink: the
// buffer is flushed to the writer whenever this many records are
// pending, so peak telemetry memory is a small constant regardless of
// run length.
const DefaultFlushEvery = 256

// StreamSink exports the record stream as JSON lines, flushing
// incrementally with bounded memory. Each record is one line tagged with
// its type:
//
//	{"t":"event","at":12,"kind":"arrival","peer":"ab12cd34"}
//	{"t":"sample","at":500,"series":"coop","v":100}
//
// The sink never retains more than its flush threshold of records
// (DefaultFlushEvery unless SetFlushEvery changed it); PeakRetained
// exposes the high-water mark so tests can assert the ceiling held.
// Write errors are sticky: the first one is kept, later records are
// dropped, and Flush reports it.
type StreamSink struct {
	w          io.Writer
	buf        bytes.Buffer
	enc        *json.Encoder
	flushEvery int
	retained   int
	peak       int
	written    int64
	err        error
}

// eventRecord and sampleRecord are the on-the-wire line shapes; t names
// the record type so a reader can demultiplex the stream.
type (
	eventRecord struct {
		T string `json:"t"`
		Event
	}
	sampleRecord struct {
		T string `json:"t"`
		Sample
	}
)

// NewStreamSink returns a sink streaming JSONL records to w.
func NewStreamSink(w io.Writer) *StreamSink {
	s := &StreamSink{w: w, flushEvery: DefaultFlushEvery}
	s.enc = json.NewEncoder(&s.buf)
	return s
}

// SetFlushEvery changes the retained-record ceiling (minimum 1).
func (s *StreamSink) SetFlushEvery(n int) {
	if n < 1 {
		n = 1
	}
	s.flushEvery = n
}

// Event implements Sink.
func (s *StreamSink) Event(e Event) {
	s.push(eventRecord{T: "event", Event: e})
}

// Sample implements Sink.
func (s *StreamSink) Sample(sm Sample) {
	s.push(sampleRecord{T: "sample", Sample: sm})
}

func (s *StreamSink) push(r any) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(r); err != nil {
		s.err = fmt.Errorf("telemetry: encoding record: %w", err)
		return
	}
	s.written++
	s.retained++
	if s.retained > s.peak {
		s.peak = s.retained
	}
	if s.retained >= s.flushEvery {
		s.flush()
	}
}

func (s *StreamSink) flush() {
	if s.buf.Len() > 0 && s.err == nil {
		if _, err := s.w.Write(s.buf.Bytes()); err != nil {
			s.err = fmt.Errorf("telemetry: writing stream: %w", err)
		}
	}
	s.buf.Reset()
	s.retained = 0
}

// Flush implements Sink: it drains the buffer and reports the first
// error seen.
func (s *StreamSink) Flush() error {
	s.flush()
	return s.err
}

// Written returns the number of records accepted so far.
func (s *StreamSink) Written() int64 { return s.written }

// PeakRetained returns the high-water mark of records buffered at once —
// the bounded-memory ceiling the sink guarantees.
func (s *StreamSink) PeakRetained() int { return s.peak }
