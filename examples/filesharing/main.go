// Filesharing: the paper's motivating workload — a file-sharing community
// (the introduction's KaZaA/BitTorrent setting) where freeriders set their
// "participation level to Master permanently" and the community defends
// itself with reputation lending. Driven by the built-in "filesharing"
// scenario.
//
// A scale-free community grows under a steady stream of arrivals, a
// quarter of them freeriders. The driver prints the community's growth,
// who got in, who was kept out and why, and the reputation separation the
// serve/deny decision depends on.
//
// Run with: go run ./examples/filesharing
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/peer"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	spec, err := scenario.Get("filesharing")
	if err != nil {
		log.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		log.Fatal(err)
	}
	w := r.World()

	// The scenario has no scripted phases: it is pure growth. The driver
	// advances the world in slices to narrate it.
	fmt.Println("tick    members  coop  freeriders  mean-coop-rep  success-rate")
	for done := sim.Tick(0); done < sim.Tick(spec.Base.NumTrans); done += 10_000 {
		if err := w.RunFor(10_000); err != nil {
			log.Fatal(err)
		}
		m := w.Metrics()
		rep, _ := m.CoopReputation.Last()
		fmt.Printf("%6d  %7d  %4d  %10d  %13.3f  %12.3f\n",
			w.Engine().Now(), w.PopulationSize(), m.CoopInSystem, m.UncoopInSystem,
			rep.V, m.SuccessRate())
	}
	res, err := r.Finish()
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("\narrivals: %d cooperative, %d freeriding\n", m.ArrivalsCoop, m.ArrivalsUncoop)
	fmt.Printf("admitted: %d cooperative, %d freeriding (%.0f%% of freeriders kept out)\n",
		m.AdmittedCoop, m.AdmittedUncoop,
		100*(1-float64(m.AdmittedUncoop)/float64(max64(m.ArrivalsUncoop, 1))))
	fmt.Printf("refusals: %d by selective introducers, %d because the introducer lacked reputation\n",
		m.RefusedSelectiveCoop+m.RefusedSelectiveUncoop,
		m.RefusedRepCoop+m.RefusedRepUncoop)
	fmt.Printf("audits:   %d stakes returned with reward, %d forfeited to freeriders\n",
		m.AuditsSatisfied, m.AuditsForfeited)

	// Reputation distribution by class: the separation the serve/deny
	// decision depends on.
	var coopReps, freeReps []float64
	for _, pid := range w.AdmittedPeers() {
		p, _ := w.Peer(pid)
		if p.Class == peer.Cooperative {
			coopReps = append(coopReps, w.Reputation(pid))
		} else {
			freeReps = append(freeReps, w.Reputation(pid))
		}
	}
	fmt.Printf("\nreputation separation: cooperative median %.3f, freerider median %.3f\n",
		median(coopReps), median(freeReps))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return sorted[len(sorted)/2]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
