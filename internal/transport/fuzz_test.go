package transport

// Batched-frame fuzz: SendBatch must stay observably equivalent to the
// per-message Broadcast loop under every combination the fuzzer can
// reach — fan-out width, delivery delay, loss probability, crashed and
// unregistered destinations, and a reentrant handler that sends from
// inside a delivery. The observable transcript (delivery order, ticks,
// payloads, final counters) is compared byte for byte.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/sim"
)

func FuzzSendBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(0), uint16(0), uint16(0))
	f.Add(uint64(2), uint8(8), uint8(2), uint16(300), uint16(0b10101))
	f.Add(uint64(3), uint8(1), uint8(5), uint16(999), uint16(1))
	f.Add(uint64(4), uint8(16), uint8(0), uint16(500), uint16(0xffff))
	f.Fuzz(func(t *testing.T, seed uint64, nDest, delay uint8, lossMilli, downMask uint16) {
		n := int(nDest%17) + 1 // 1..17 destinations
		loss := float64(lossMilli%1001) / 1000
		d := sim.Tick(delay % 8)

		run := func(batched bool) string {
			engine := sim.NewEngine()
			bus := NewBus()
			var log strings.Builder
			from := id.HashString("fuzz-src")
			dests := make([]id.ID, n)
			for i := range dests {
				dests[i] = id.HashString(fmt.Sprintf("fuzz-d%d", i))
				switch (downMask >> (uint(i) % 16)) & 1 {
				case 1:
					if i%2 == 0 {
						bus.Crash(dests[i]) // crashed: registered nowhere, counts Crashed
					}
					// odd down bits stay unregistered: counts NoRoute
				default:
					i := i
					bus.Register(dests[i], func(m Message) {
						fmt.Fprintf(&log, "got %d@%d %v\n", i, engine.Now(), m.Payload)
						// The first destination echoes once, so a nested
						// send interleaves with the rest of the fan-out.
						if i == 0 {
							if p, ok := m.Payload.(int); ok && p >= 0 {
								bus.Send(Message{From: dests[0], To: dests[0], Kind: "echo", Payload: -1})
							}
						}
					})
				}
			}
			if d > 0 {
				bus.SetDelay(engine, d)
			}
			if loss > 0 {
				bus.SetLoss(loss)
				bus.SetFaultRand(rng.New(seed))
			}
			if batched {
				bus.SendBatch(from, "frame", int(seed%256), dests)
			} else {
				bus.Broadcast(from, "frame", int(seed%256), dests)
			}
			engine.RunUntil(d + 16)
			fmt.Fprintf(&log, "stats %+v\n", bus.Stats())
			return log.String()
		}

		if a, b := run(true), run(false); a != b {
			t.Fatalf("n=%d delay=%d loss=%v mask=%04x: batched and per-message transcripts diverged\nbatched:\n%s\nbroadcast:\n%s",
				n, d, loss, downMask, a, b)
		}
	})
}
