// Package id implements the 160-bit circular identifier space used by the
// structured overlay. Identifiers name both peers and keys; score managers
// for a peer are located by hashing the peer's identifier together with a
// replica index and routing to the closest node on the ring.
//
// The identifier space is the ring of integers modulo 2^160, matching the
// output width of SHA-1, which the original ROCQ/Chord-era systems used.
package id

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Bits is the width of an identifier in bits.
const Bits = 160

// Bytes is the width of an identifier in bytes.
const Bytes = Bits / 8

// ID is a 160-bit identifier on the ring, stored big-endian: ID[0] is the
// most significant byte. The zero value is the identifier 0.
type ID [Bytes]byte

// ErrBadLength reports an attempt to decode an identifier from a byte slice
// or hex string of the wrong length.
var ErrBadLength = errors.New("id: wrong length for a 160-bit identifier")

// FromBytes builds an ID from exactly 20 bytes.
func FromBytes(b []byte) (ID, error) {
	var out ID
	if len(b) != Bytes {
		return out, fmt.Errorf("%w: got %d bytes", ErrBadLength, len(b))
	}
	copy(out[:], b)
	return out, nil
}

// FromHex decodes a 40-character hex string into an ID.
func FromHex(s string) (ID, error) {
	var out ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return out, fmt.Errorf("id: decoding hex: %w", err)
	}
	return FromBytes(b)
}

// Hash maps arbitrary data onto the ring using SHA-1.
func Hash(data []byte) ID {
	return ID(sha1.Sum(data))
}

// HashString maps a string onto the ring using SHA-1.
func HashString(s string) ID {
	return Hash([]byte(s))
}

// Replica derives the identifier of the r-th score-manager replica for this
// identifier: Hash(id || uint32(r)). Distinct replica indices land on
// independent, deterministic points of the ring, which is how the paper
// places numSM score managers per peer.
func (d ID) Replica(r int) ID {
	var buf [Bytes + 4]byte
	copy(buf[:Bytes], d[:])
	binary.BigEndian.PutUint32(buf[Bytes:], uint32(r))
	return Hash(buf[:])
}

// FromUint64 places a uint64 on the ring (in the low-order bytes). Useful
// for tests that want small, readable identifiers.
func FromUint64(v uint64) ID {
	var out ID
	binary.BigEndian.PutUint64(out[Bytes-8:], v)
	return out
}

// Uint64 returns the low-order 64 bits of the identifier.
func (d ID) Uint64() uint64 {
	return binary.BigEndian.Uint64(d[Bytes-8:])
}

// String renders the identifier as 40 hex digits.
func (d ID) String() string {
	return hex.EncodeToString(d[:])
}

// Short renders the leading 8 hex digits, for compact logs.
func (d ID) Short() string {
	return hex.EncodeToString(d[:4])
}

// Cmp compares two identifiers as 160-bit unsigned integers, returning
// -1, 0, or +1. Big-endian storage lets it compare three machine words
// instead of looping over bytes — this is the innermost operation of
// every overlay routing step and index lookup, and random identifiers
// almost always decide on the first word.
func (d ID) Cmp(o ID) int {
	a, b := binary.BigEndian.Uint64(d[0:8]), binary.BigEndian.Uint64(o[0:8])
	if a != b {
		if a < b {
			return -1
		}
		return 1
	}
	a, b = binary.BigEndian.Uint64(d[8:16]), binary.BigEndian.Uint64(o[8:16])
	if a != b {
		if a < b {
			return -1
		}
		return 1
	}
	x, y := binary.BigEndian.Uint32(d[16:20]), binary.BigEndian.Uint32(o[16:20])
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// Less reports whether d < o as unsigned integers.
func (d ID) Less(o ID) bool { return d.Cmp(o) < 0 }

// Contains reports whether x appears in list. Intended for the small
// fixed-size sets the overlay works with (manager sets, successor
// lists), where a linear scan beats hashing.
func Contains(list []ID, x ID) bool {
	for _, m := range list {
		if m == x {
			return true
		}
	}
	return false
}

// IsZero reports whether the identifier is 0.
func (d ID) IsZero() bool {
	for _, b := range d {
		if b != 0 {
			return false
		}
	}
	return true
}

// Add returns (d + o) mod 2^160.
func (d ID) Add(o ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		s := uint16(d[i]) + uint16(o[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Sub returns (d - o) mod 2^160, i.e. the clockwise distance from o to d.
func (d ID) Sub(o ID) ID {
	var out ID
	var borrow int16
	for i := Bytes - 1; i >= 0; i-- {
		s := int16(d[i]) - int16(o[i]) - borrow
		if s < 0 {
			s += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(s)
	}
	return out
}

// AddPow2 returns (d + 2^k) mod 2^160. It is the finger-table offset used by
// Chord-style routing; k must be in [0, Bits).
func (d ID) AddPow2(k int) ID {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("id: AddPow2 exponent %d out of range [0,%d)", k, Bits))
	}
	var p ID
	byteIdx := Bytes - 1 - k/8
	p[byteIdx] = 1 << (k % 8)
	return d.Add(p)
}

// Distance returns the clockwise distance from d to o on the ring, i.e. how
// far one must travel in the increasing direction from d to reach o.
func (d ID) Distance(o ID) ID {
	return o.Sub(d)
}

// Between reports whether d lies on the clockwise arc (from, to), exclusive
// of both endpoints. When from == to the arc is the whole ring minus that
// single point, matching Chord's convention.
func (d ID) Between(from, to ID) bool {
	if from.Cmp(to) < 0 {
		return from.Cmp(d) < 0 && d.Cmp(to) < 0
	}
	if from.Cmp(to) > 0 { // arc wraps zero
		return from.Cmp(d) < 0 || d.Cmp(to) < 0
	}
	// from == to: everything except the point itself.
	return d.Cmp(from) != 0
}

// BetweenRightIncl reports whether d lies on the clockwise arc (from, to],
// the membership test used for successor responsibility in Chord.
func (d ID) BetweenRightIncl(from, to ID) bool {
	return d.Cmp(to) == 0 || d.Between(from, to)
}

// PrefixLen returns the number of leading bits d and o share; 160 when equal.
func (d ID) PrefixLen(o ID) int {
	for i := 0; i < Bytes; i++ {
		x := d[i] ^ o[i]
		if x == 0 {
			continue
		}
		n := 0
		for mask := byte(0x80); mask != 0 && x&mask == 0; mask >>= 1 {
			n++
		}
		return i*8 + n
	}
	return Bits
}

// Bit returns bit k of the identifier, where k=0 is the most significant
// bit. It panics if k is out of [0, Bits).
func (d ID) Bit(k int) int {
	if k < 0 || k >= Bits {
		panic(fmt.Sprintf("id: Bit index %d out of range [0,%d)", k, Bits))
	}
	return int(d[k/8]>>(7-k%8)) & 1
}
