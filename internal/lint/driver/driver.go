// Package driver loads and type-checks packages for the replend-lint
// analyzers and runs the suite over them, without depending on
// golang.org/x/tools. Import resolution uses the gc export data the go
// command already produces: `go list -json -deps -export` yields an
// export file per dependency, and go/importer's gc mode reads them
// through a lookup function. That keeps the driver fully offline — no
// module proxy, no source re-typechecking of the standard library.
//
// The driver analyzes non-test sources only (go list GoFiles): the
// determinism contract binds shipped simulation code, while tests are
// free to use wall clocks, unseeded randomness and unordered walks.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is one diagnostic resolved to a file position, tagged with the
// analyzer that produced it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// listedPackage is the subset of `go list -json` output the driver uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
}

// Load resolves patterns (e.g. "./...") in dir with the go command,
// type-checks every matched package from source against the export data
// of its dependencies, and returns them in deterministic (import path)
// order.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		var files []string
		for _, f := range t.GoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := Check(fset, t.ImportPath, files, NewImporter(fset, exports, t.ImportMap))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// NewImporter returns a gc-export-data importer: paths are first mapped
// through importMap (vendored import renames, as reported by go list),
// then resolved to an export file.
func NewImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check parses and type-checks one package from the given source files.
func Check(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run applies each analyzer to each package, filters the diagnostics
// through the //replend:allow directives found in the sources, and
// returns the surviving findings sorted by position. Malformed
// directives (unknown analyzer, missing reason) are findings themselves:
// the allowlist is part of the contract, so it cannot silently rot.
//
// known names every analyzer whose directives are legitimate — pass the
// full suite's names even when running a subset, or a directive for an
// unselected analyzer would be misreported as unknown. nil derives the
// set from the analyzers being run.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, known map[string]bool) ([]Finding, error) {
	if known == nil {
		known = map[string]bool{}
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		dirs, bad := ParseDirectives(pkg.Fset, pkg.Files, known)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			diags, err := RunOne(pkg, a)
			if err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if dirs.Allows(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
	}
	SortFindings(findings)
	return findings, nil
}

// RunOne applies a single analyzer to a single package and returns its
// raw diagnostics (directives not yet applied).
func RunOne(pkg *Package, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
