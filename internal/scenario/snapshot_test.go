package scenario

// Scenario checkpoint property tests: every golden-pinned built-in
// scenario must produce byte-identical output when interrupted by a
// mid-run checkpoint, encoded, decoded and resumed in a fresh Run.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// runOutput renders a result to the bytes the golden tests pin.
func runOutput(t *testing.T, res *Result) string {
	t.Helper()
	csv, err := res.CSV()
	if err != nil {
		t.Fatalf("CSV: %v", err)
	}
	return res.Summary() + "\n" + csv
}

func TestScenarioCheckpointResumeByteIdentity(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			spec, err := Get(name)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if spec.Base.NumInit > 100_000 {
				// The million-peer footprint scenario takes minutes and
				// gigabytes per run; its checkpoint cut is exercised at
				// reduced scale by TestMegaScenarioReducedScale instead.
				t.Skipf("%s: NumInit %d too large for the double-run checkpoint sweep", name, spec.Base.NumInit)
			}
			ref, err := spec.Run()
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			want := runOutput(t, ref)

			spec2, err := Get(name)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			r, err := spec2.Start()
			if err != nil {
				t.Fatalf("Start: %v", err)
			}
			cut := sim.Tick(spec2.Base.NumTrans / 2)
			if err := r.RunToTick(cut); err != nil {
				t.Fatalf("RunToTick(%d): %v", cut, err)
			}
			st, err := r.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			data, err := st.Encode()
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			dec, err := DecodeRunState(data)
			if err != nil {
				t.Fatalf("DecodeRunState: %v", err)
			}
			resumed, err := Resume(dec)
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			// Double-checkpoint idempotence at the scenario layer.
			st2, err := resumed.Snapshot()
			if err != nil {
				t.Fatalf("re-Snapshot: %v", err)
			}
			data2, err := st2.Encode()
			if err != nil {
				t.Fatalf("re-Encode: %v", err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatalf("snapshot(resume(s)) != s (%d vs %d bytes)", len(data), len(data2))
			}
			res, err := resumed.Finish()
			if err != nil {
				t.Fatalf("Finish after resume: %v", err)
			}
			got := runOutput(t, res)
			if got != want {
				t.Fatalf("resumed run diverged from uninterrupted run:\nwant %d bytes, got %d bytes", len(want), len(got))
			}
		})
	}
}

// TestMegaScenarioReducedScale runs the mega footprint scenario with its
// population cut down to something a unit test can afford, keeping the rest
// of the spec (null signing, leased churn, sampling cadence) intact, and
// checks the same checkpoint-cut byte identity the full-size builtins get.
func TestMegaScenarioReducedScale(t *testing.T) {
	shrink := func() *Spec {
		spec, err := Get("mega")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if spec.Base.NumInit <= 100_000 {
			t.Fatalf("mega shrank to %d peers; fold it back into the builtin sweep", spec.Base.NumInit)
		}
		spec.Base.NumInit = 4_000
		return spec
	}

	ref, err := shrink().Run()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	want := runOutput(t, ref)

	spec := shrink()
	r, err := spec.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	cut := sim.Tick(spec.Base.NumTrans / 2)
	if err := r.RunToTick(cut); err != nil {
		t.Fatalf("RunToTick(%d): %v", cut, err)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := st.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := DecodeRunState(data)
	if err != nil {
		t.Fatalf("DecodeRunState: %v", err)
	}
	resumed, err := Resume(dec)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res, err := resumed.Finish()
	if err != nil {
		t.Fatalf("Finish after resume: %v", err)
	}
	if got := runOutput(t, res); got != want {
		t.Fatalf("resumed reduced-scale mega run diverged:\nwant %d bytes, got %d bytes", len(want), len(got))
	}
}

func TestScenarioResumeRejectsDefects(t *testing.T) {
	spec, err := Get("churn-steady")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	r, err := spec.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := r.RunToTick(500); err != nil {
		t.Fatalf("RunToTick: %v", err)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := st.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	if _, err := DecodeRunState(data[:len(data)-7]); err == nil {
		t.Fatal("truncated scenario checkpoint should be rejected")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/3] ^= 0x08
	if _, err := DecodeRunState(corrupt); err == nil {
		t.Fatal("bit-flipped scenario checkpoint should be rejected")
	}
	// A world checkpoint must not decode as a scenario run.
	ws, err := r.World().Snapshot()
	if err != nil {
		t.Fatalf("world Snapshot: %v", err)
	}
	wdata, err := ws.Encode()
	if err != nil {
		t.Fatalf("world Encode: %v", err)
	}
	if _, err := DecodeRunState(wdata); err == nil || !strings.Contains(err.Error(), "not a scenario run") {
		t.Fatalf("world checkpoint decoded as scenario run (err=%v)", err)
	}
	// Version skew and cursor overrun are rejected by Resume.
	skew := *st
	skew.Version = RunStateVersion + 1
	if _, err := Resume(&skew); err == nil {
		t.Fatal("version-skewed run state should be rejected")
	}
	bad := *st
	bad.Next = len(spec.Phases) + 1
	if _, err := Resume(&bad); err == nil {
		t.Fatal("out-of-range phase cursor should be rejected")
	}
	// A finished run refuses to checkpoint.
	if _, err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, err := r.Snapshot(); err == nil {
		t.Fatal("finished run should refuse to checkpoint")
	}
}
