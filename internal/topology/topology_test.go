package topology

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
)

func peerN(i int) id.ID { return id.HashString(fmt.Sprintf("peer-%d", i)) }

func TestParseKind(t *testing.T) {
	for _, s := range []string{"random", "powerlaw"} {
		k, err := ParseKind(s)
		if err != nil || string(k) != s {
			t.Fatalf("ParseKind(%q) = %v, %v", s, k, err)
		}
	}
	if _, err := ParseKind("mesh"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestNewByKind(t *testing.T) {
	for _, k := range []Kind{Random, PowerLaw} {
		sel, err := New(k, rng.New(1))
		if err != nil || sel == nil {
			t.Fatalf("New(%v): %v", k, err)
		}
	}
	if _, err := New(Kind("bogus"), rng.New(1)); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

func TestUniformEmptyPick(t *testing.T) {
	u := NewUniform(rng.New(1))
	if _, ok := u.Pick(id.ID{}); ok {
		t.Fatal("pick from empty selector succeeded")
	}
}

func TestUniformSinglePeerExcluded(t *testing.T) {
	u := NewUniform(rng.New(1))
	p := peerN(0)
	u.Add(p)
	if _, ok := u.Pick(p); ok {
		t.Fatal("pick with the only peer excluded succeeded")
	}
	got, ok := u.Pick(peerN(99))
	if !ok || got != p {
		t.Fatalf("pick = %v, %v", got.Short(), ok)
	}
}

func TestUniformNeverPicksExcluded(t *testing.T) {
	u := NewUniform(rng.New(2))
	for i := 0; i < 5; i++ {
		u.Add(peerN(i))
	}
	ex := peerN(3)
	for i := 0; i < 2000; i++ {
		got, ok := u.Pick(ex)
		if !ok || got == ex {
			t.Fatalf("picked excluded peer")
		}
	}
}

func TestUniformApproximatelyUniform(t *testing.T) {
	u := NewUniform(rng.New(3))
	const n = 10
	for i := 0; i < n; i++ {
		u.Add(peerN(i))
	}
	counts := map[id.ID]int{}
	const draws = 100000
	for i := 0; i < draws; i++ {
		p, _ := u.Pick(id.ID{})
		counts[p]++
	}
	for i := 0; i < n; i++ {
		frac := float64(counts[peerN(i)]) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("peer %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestUniformDuplicatePanics(t *testing.T) {
	u := NewUniform(rng.New(1))
	u.Add(peerN(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u.Add(peerN(0))
}

func TestUniformContainsLen(t *testing.T) {
	u := NewUniform(rng.New(1))
	u.Add(peerN(0))
	if !u.Contains(peerN(0)) || u.Contains(peerN(1)) || u.Len() != 1 {
		t.Fatal("Contains/Len wrong")
	}
}

func TestScaleFreeEmptyAndSingle(t *testing.T) {
	s := NewScaleFree(rng.New(1), 2)
	if _, ok := s.Pick(id.ID{}); ok {
		t.Fatal("pick from empty scale-free succeeded")
	}
	p := peerN(0)
	s.Add(p)
	if _, ok := s.Pick(p); ok {
		t.Fatal("pick with only peer excluded succeeded")
	}
	got, ok := s.Pick(peerN(99))
	if !ok || got != p {
		t.Fatal("single-peer pick failed")
	}
}

func TestScaleFreeDegreesGrow(t *testing.T) {
	s := NewScaleFree(rng.New(2), 2)
	const n = 500
	for i := 0; i < n; i++ {
		s.Add(peerN(i))
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	var total int64
	maxDeg := int64(0)
	for i := 0; i < n; i++ {
		d := s.Degree(peerN(i))
		if d < 1 {
			t.Fatalf("peer %d has degree %d", i, d)
		}
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Every arrival past the first adds 2 edges -> 2 degree units each.
	if total < int64(2*(n-1)) {
		t.Fatalf("total degree %d too small", total)
	}
	// A scale-free network must grow hubs: the max degree should be far
	// above the mean (~4).
	if maxDeg < 20 {
		t.Fatalf("max degree %d — no hubs formed", maxDeg)
	}
}

func TestScaleFreePickMatchesDegreeBias(t *testing.T) {
	s := NewScaleFree(rng.New(4), 2)
	const n = 300
	for i := 0; i < n; i++ {
		s.Add(peerN(i))
	}
	counts := map[id.ID]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		p, _ := s.Pick(id.ID{})
		counts[p]++
	}
	// The most-selected peer should be selected roughly in proportion to
	// its degree share and far above the minimum-degree peers.
	var best id.ID
	for i := 0; i < n; i++ {
		if counts[peerN(i)] > counts[best] {
			best = peerN(i)
		}
	}
	var minDegPeer id.ID
	minDeg := int64(math.MaxInt64)
	for i := 0; i < n; i++ {
		if d := s.Degree(peerN(i)); d < minDeg {
			minDeg, minDegPeer = d, peerN(i)
		}
	}
	if counts[best] < 5*counts[minDegPeer] {
		t.Fatalf("hub picked %d times vs leaf %d — selection not degree-biased",
			counts[best], counts[minDegPeer])
	}
}

func TestScaleFreeNeverPicksExcluded(t *testing.T) {
	s := NewScaleFree(rng.New(5), 2)
	for i := 0; i < 20; i++ {
		s.Add(peerN(i))
	}
	// Exclude the highest-degree peer to stress the rejection path.
	var hub id.ID
	var hubDeg int64
	for i := 0; i < 20; i++ {
		if d := s.Degree(peerN(i)); d > hubDeg {
			hubDeg, hub = d, peerN(i)
		}
	}
	for i := 0; i < 5000; i++ {
		p, ok := s.Pick(hub)
		if !ok || p == hub {
			t.Fatal("picked excluded hub")
		}
	}
}

func TestScaleFreeDuplicatePanics(t *testing.T) {
	s := NewScaleFree(rng.New(1), 2)
	s.Add(peerN(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Add(peerN(0))
}

func TestScaleFreeAttachValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScaleFree(rng.New(1), 0)
}

func TestScaleFreeDegreeUnknownPeer(t *testing.T) {
	s := NewScaleFree(rng.New(1), 2)
	if s.Degree(peerN(9)) != 0 {
		t.Fatal("unknown peer should have degree 0")
	}
}

func TestScaleFreeDeterministic(t *testing.T) {
	run := func() []int64 {
		s := NewScaleFree(rng.New(42), 2)
		for i := 0; i < 100; i++ {
			s.Add(peerN(i))
		}
		out := make([]int64, 100)
		for i := range out {
			out[i] = s.Degree(peerN(i))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("degree sequence not deterministic at %d", i)
		}
	}
}
