package experiments

// Report is a regenerated table or figure: a human-readable text table
// (with the paper's expected shape noted underneath) and the raw CSV
// series for plotting.
type Report interface {
	// Name is the experiment identifier (fig1, fig2, …, successrate,
	// collusion, baselines).
	Name() string
	// Table renders the aligned text table.
	Table() string
	// CSV renders the machine-readable series.
	CSV() string
}

// Names lists every runnable experiment identifier, in paper order.
func Names() []string {
	return []string{"fig1", "successrate", "fig2", "fig3", "fig4", "fig6", "collusion", "baselines", "whitewash", "ablation", "traitor", "churn", "sessions", "stakes", "workload"}
}

// Run dispatches one experiment by name ("fig5" is an alias of "fig4";
// the two figures share a sweep).
func Run(name string, opt Options) (Report, error) {
	switch name {
	case "fig1":
		return RunFig1(opt)
	case "successrate", "t2":
		return RunSuccessRate(opt)
	case "fig2":
		return RunFig2(nil, opt)
	case "fig3":
		return RunFig3(nil, opt)
	case "fig4", "fig5":
		return RunFig45(nil, opt)
	case "fig6":
		return RunFig6(nil, opt)
	case "collusion":
		return RunCollusion(opt)
	case "baselines":
		return RunBaselines(opt)
	case "whitewash":
		return RunWhitewash(opt)
	case "ablation":
		return RunAblation(opt)
	case "traitor":
		return RunTraitor(opt)
	case "churn":
		return RunChurn(nil, opt)
	case "sessions":
		return RunSessions(nil, opt)
	case "stakes":
		return RunStakes(nil, opt)
	case "workload":
		return RunWorkloads(nil, opt)
	}
	return nil, errUnknownExperiment(name)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "experiments: unknown experiment " + string(e)
}
