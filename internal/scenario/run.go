package scenario

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/id"
	"repro/internal/lending"
	"repro/internal/metrics"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/world"
)

// Run is an executing scenario. Spec.Start returns one positioned at tick
// 0 with the workload armed; StepPhase advances to and executes the next
// phase; Finish plays the rest and closes the run. Programs that only
// need the end state call Spec.Run.
type Run struct {
	// AfterInjection, when set, observes each scripted arrival right
	// after its SpacedBy interval has elapsed — the hook example drivers
	// use to narrate admissions wave by wave.
	//replend:allow snapshotfields observer hook owned by the driving program; a resuming driver re-attaches its own
	AfterInjection func(InjectionOutcome)

	spec     *Spec
	w        *world.World
	labels   map[string]id.ID
	outcomes []InjectionOutcome
	crashed  []id.ID
	next     int // index of the next phase to execute
	done     bool
}

// InjectionOutcome records one scripted arrival.
type InjectionOutcome struct {
	// Label is the binding name ("" for unlabelled injections).
	Label string
	// Phase names the phase that injected the peer.
	Phase string
	// Peer is the injected peer; Introducer the member it asked.
	Peer, Introducer id.ID
	// At is the injection tick.
	At sim.Tick
}

// Start validates the spec, builds its world and arms the workload
// processes without advancing time.
func (s *Spec) Start() (*Run, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w, err := world.New(s.Base)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	w.Start()
	return &Run{spec: s, w: w, labels: make(map[string]id.ID)}, nil
}

// Run executes the scenario start to finish and returns its result.
func (s *Spec) Run() (*Result, error) {
	r, err := s.Start()
	if err != nil {
		return nil, err
	}
	return r.Finish()
}

// World exposes the live simulation (for observation between phases).
// Drivers may advance it directly — e.g. in sampling-interval steps to
// print progress — as long as they do not run past the next phase's tick.
func (r *Run) World() *world.World { return r.w }

// Spec returns the scenario being executed.
func (r *Run) Spec() *Spec { return r.spec }

// Labeled resolves a label bound by an executed injection.
func (r *Run) Labeled(name string) (id.ID, bool) {
	pid, ok := r.labels[name]
	return pid, ok
}

// Outcomes lists the scripted arrivals executed so far.
func (r *Run) Outcomes() []InjectionOutcome {
	return append([]InjectionOutcome(nil), r.outcomes...)
}

// PhasesRemaining reports how many phases have not executed yet.
func (r *Run) PhasesRemaining() int { return len(r.spec.Phases) - r.next }

// StepPhase advances the clock to the next phase's tick and executes its
// actions in order: set, crash, depart, inject, rejoin, recover. It
// returns the executed phase, or nil when every phase has already run.
// Spaced injections leave the clock at phase.At + count·spacedBy.
func (r *Run) StepPhase() (*Phase, error) {
	if r.next >= len(r.spec.Phases) {
		return nil, nil
	}
	ph := &r.spec.Phases[r.next]
	at := sim.Tick(ph.At)
	now := r.w.Engine().Now()
	if now > at {
		return nil, fmt.Errorf("scenario %q: phase %s fires at tick %d but the clock is already at %d",
			r.spec.Name, ph.label(), ph.At, now)
	}
	if at > now {
		if err := r.w.RunFor(at - now); err != nil {
			return nil, fmt.Errorf("scenario %q: advancing to phase %s: %w", r.spec.Name, ph.label(), err)
		}
	}
	if ph.Set != nil {
		if err := r.w.ApplyDelta(*ph.Set); err != nil {
			return nil, fmt.Errorf("scenario %q: phase %s: %w", r.spec.Name, ph.label(), err)
		}
	}
	if ph.Crash != nil {
		if err := r.crash(ph.Crash); err != nil {
			return nil, fmt.Errorf("scenario %q: phase %s: %w", r.spec.Name, ph.label(), err)
		}
	}
	if ph.Depart != nil {
		if err := r.depart(ph.Depart); err != nil {
			return nil, fmt.Errorf("scenario %q: phase %s: depart: %w", r.spec.Name, ph.label(), err)
		}
	}
	for j := range ph.Inject {
		if err := r.inject(&ph.Inject[j], ph); err != nil {
			return nil, fmt.Errorf("scenario %q: phase %s: injection %d: %w", r.spec.Name, ph.label(), j, err)
		}
	}
	for _, ref := range ph.Rejoin {
		pid, ok := r.labels[ref]
		if !ok {
			return nil, fmt.Errorf("scenario %q: phase %s: rejoin: label %q is not bound", r.spec.Name, ph.label(), ref)
		}
		if err := r.w.Rejoin(pid); err != nil {
			return nil, fmt.Errorf("scenario %q: phase %s: rejoin %q: %w", r.spec.Name, ph.label(), ref, err)
		}
	}
	if ph.Recover {
		for _, node := range r.crashed {
			r.w.Bus().Recover(node)
		}
		r.crashed = nil
	}
	r.next++
	return ph, nil
}

// Finish executes any remaining phases, runs the tail of the workload to
// Base.NumTrans, records the closing sample, and returns the result.
func (r *Run) Finish() (*Result, error) {
	if r.done {
		return nil, errors.New("scenario: run already finished")
	}
	for r.next < len(r.spec.Phases) {
		if _, err := r.StepPhase(); err != nil {
			return nil, err
		}
	}
	end := sim.Tick(r.spec.Base.NumTrans)
	if now := r.w.Engine().Now(); now < end {
		if err := r.w.RunFor(end - now); err != nil {
			return nil, fmt.Errorf("scenario %q: %w", r.spec.Name, err)
		}
	}
	r.w.Finish()
	r.done = true

	res := &Result{
		Spec:            r.spec,
		Metrics:         *r.w.Metrics(),
		Proto:           r.w.Protocol().Stats(),
		Outcomes:        r.Outcomes(),
		FinalReputation: make(map[string]float64, len(r.labels)),
		Members:         r.w.PopulationSize(),
	}
	for label, pid := range r.labels {
		res.FinalReputation[label] = r.w.Reputation(pid)
	}
	return res, nil
}

// crash resolves the fault's target and crashes the leading fraction of
// its score-manager set, remembering the nodes for a later Recover.
func (r *Run) crash(f *Fault) error {
	target, err := r.resolve(f.ScoreManagersOf)
	if err != nil {
		return fmt.Errorf("crash: %w", err)
	}
	sms := r.w.ScoreManagers(target)
	n := int(f.Fraction * float64(len(sms)))
	for _, node := range sms[:n] {
		r.w.Bus().Crash(node)
		r.crashed = append(r.crashed, node)
	}
	return nil
}

// inject runs one (possibly repeated) scripted arrival. The introducer is
// resolved once; each repeat advances the clock by SpacedBy before the
// AfterInjection hook observes it.
func (r *Run) inject(in *Injection, ph *Phase) error {
	introID, err := r.resolve(in.Introducer)
	if err != nil {
		return err
	}
	class, style, err := in.classStyle()
	if err != nil {
		return err
	}
	labels := in.labels()
	for i := 0; i < in.count(); i++ {
		var pid id.ID
		if in.DefectAfter > 0 {
			pid, err = r.w.InjectTraitor(style, introID, r.w.Engine().Now()+sim.Tick(in.DefectAfter))
		} else {
			pid, err = r.w.InjectArrival(class, style, introID)
		}
		if err != nil {
			return err
		}
		o := InjectionOutcome{Phase: ph.label(), Peer: pid, Introducer: introID, At: r.w.Engine().Now()}
		if labels != nil {
			o.Label = labels[i]
			r.labels[o.Label] = pid
		}
		if in.SpacedBy > 0 {
			if err := r.w.RunFor(sim.Tick(in.SpacedBy)); err != nil {
				return err
			}
		}
		r.outcomes = append(r.outcomes, o)
		if r.AfterInjection != nil {
			r.AfterInjection(o)
		}
	}
	return nil
}

// depart executes one departure action: resolve the victims, remove them
// in a single membership event, and bind any labels for later rejoins.
func (r *Run) depart(d *Departure) error {
	var victims []id.ID
	if d.ScoreManagersOf != nil {
		target, err := r.resolve(*d.ScoreManagersOf)
		if err != nil {
			return err
		}
		sms := r.w.ScoreManagers(target)
		frac := d.Fraction
		if frac == 0 {
			frac = 1
		}
		n := int(frac * float64(len(sms)))
		if n == 0 {
			n = 1 // any positive fraction departs at least one manager
		}
		for _, m := range sms[:n] {
			// Padded placements repeat managers; a manager may also be a
			// pending (not yet admitted) newcomer, which cannot depart.
			if !id.Contains(victims, m) && r.w.IsAdmitted(m) {
				victims = append(victims, m)
			}
		}
		if len(victims) == 0 {
			return fmt.Errorf("no admitted score manager of the selected member to depart")
		}
	} else {
		sel := Selector{}
		if d.Peers != nil {
			sel = *d.Peers
		}
		var err error
		victims, err = r.resolveMany(sel, d.count())
		if err != nil {
			return err
		}
	}
	if err := r.w.DepartBatch(victims, !d.Crash); err != nil {
		return err
	}
	for i, l := range d.labels() {
		r.labels[l] = victims[i]
	}
	return nil
}

// resolve picks the member a selector describes, at the current tick.
func (r *Run) resolve(sel Selector) (id.ID, error) {
	out, err := r.resolveMany(sel, 1)
	if err != nil {
		return id.ID{}, err
	}
	return out[0], nil
}

// resolveMany picks the first count members the selector matches, in
// admission order.
func (r *Run) resolveMany(sel Selector, count int) ([]id.ID, error) {
	if sel.Ref != "" {
		pid, ok := r.labels[sel.Ref]
		if !ok {
			return nil, fmt.Errorf("selector ref %q is not bound", sel.Ref)
		}
		if count != 1 {
			return nil, fmt.Errorf("selector ref %q names a single peer, need %d", sel.Ref, count)
		}
		return []id.ID{pid}, nil
	}
	admitted := r.w.AdmittedPeers()
	if len(admitted) == 0 {
		return nil, errors.New("no admitted members to select from")
	}
	var style peer.Style
	wantStyle := sel.Style != ""
	if wantStyle {
		s, err := parseStyle(sel.Style)
		if err != nil {
			return nil, err
		}
		style = s
	}
	var class peer.Class
	wantClass := sel.Class != ""
	if wantClass {
		c, err := parseClass(sel.Class)
		if err != nil {
			return nil, err
		}
		class = c
	}
	var out []id.ID
	for _, pid := range admitted {
		p, ok := r.w.Peer(pid)
		if !ok {
			continue
		}
		if wantStyle && p.Style != style {
			continue
		}
		if wantClass && p.Class != class {
			continue
		}
		if sel.MinRep > 0 && r.w.Reputation(pid) <= sel.MinRep {
			continue
		}
		out = append(out, pid)
		if len(out) == count {
			return out, nil
		}
	}
	if len(out) == 0 {
		if sel.FallbackFirst && count == 1 {
			return []id.ID{admitted[0]}, nil
		}
		return nil, fmt.Errorf("no member matches selector (style=%q class=%q minRep=%v)",
			sel.Style, sel.Class, sel.MinRep)
	}
	return nil, fmt.Errorf("only %d of %d members match selector (style=%q class=%q minRep=%v)",
		len(out), count, sel.Style, sel.Class, sel.MinRep)
}

// Result is a finished scenario run.
type Result struct {
	// Spec is the scenario that ran.
	Spec *Spec
	// Metrics are the world's collected metrics (including the emitted
	// time series).
	Metrics world.Metrics
	// Proto are the lending-protocol counters.
	Proto lending.Stats
	// Outcomes lists every scripted arrival.
	Outcomes []InjectionOutcome
	// FinalReputation maps each labelled peer to its end-of-run
	// reputation.
	FinalReputation map[string]float64
	// Members is the final community size.
	Members int
}

// series returns the named time series from the run's metrics.
func (res *Result) series(name string) (*metrics.Series, error) {
	switch name {
	case "coop":
		return res.Metrics.CoopCount, nil
	case "uncoop":
		return res.Metrics.UncoopCount, nil
	case "coop-reputation":
		return res.Metrics.CoopReputation, nil
	}
	return nil, fmt.Errorf("scenario: unknown series %q", name)
}

// CSV renders the series the spec's output section selected (all three
// by default), sharing one time axis.
func (res *Result) CSV() (string, error) {
	names := res.Spec.Output.Series
	if len(names) == 0 {
		names = []string{"coop", "uncoop", "coop-reputation"}
	}
	list := make([]*metrics.Series, len(names))
	for i, name := range names {
		s, err := res.series(name)
		if err != nil {
			return "", err
		}
		list[i] = s
	}
	return metrics.CSV(list...), nil
}

// Summary renders the run's headline numbers as text.
func (res *Result) Summary() string {
	m := &res.Metrics
	cfg := res.Spec.Base
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %q — seed %d, %d ticks, λ=%g, topology %s\n",
		res.Spec.Name, cfg.Seed, cfg.NumTrans, cfg.Lambda, cfg.Topology)
	fmt.Fprintf(&b, "population:   %d peers (%d cooperative, %d uncooperative, %d founders)\n",
		res.Members, m.CoopInSystem, m.UncoopInSystem, m.Founders)
	fmt.Fprintf(&b, "arrivals:     %d cooperative, %d uncooperative\n", m.ArrivalsCoop, m.ArrivalsUncoop)
	fmt.Fprintf(&b, "admitted:     %d cooperative, %d uncooperative\n", m.AdmittedCoop, m.AdmittedUncoop)
	fmt.Fprintf(&b, "refused:      %d by introducer, %d for introducer reputation, %d no introducer, %d pending at end\n",
		m.RefusedSelectiveCoop+m.RefusedSelectiveUncoop,
		m.RefusedRepCoop+m.RefusedRepUncoop, m.RefusedNoIntroducer, m.Pending)
	fmt.Fprintf(&b, "transactions: %d served, %d denied\n", m.Served, m.Denied)
	fmt.Fprintf(&b, "success rate: %.4f (decisions by cooperative respondents)\n", m.SuccessRate())
	fmt.Fprintf(&b, "audits:       %d satisfied (stake+reward returned), %d forfeited\n",
		m.AuditsSatisfied, m.AuditsForfeited)
	fmt.Fprintf(&b, "protocol:     %d lends granted, %d duplicate-introduction punishments\n",
		res.Proto.Granted, res.Proto.DuplicateAttempts)
	if c := m.Churn; c.Departures+c.Crashes+c.Rejoins+c.Migrated+c.Wipeouts > 0 {
		fmt.Fprintf(&b, "churn:        %d departures, %d crashes, %d rejoins; %d records migrated, %d wiped out\n",
			c.Departures, c.Crashes, c.Rejoins, c.Migrated, c.Wipeouts)
	}
	if cfg.Churn.LeaseTTL > 0 {
		fmt.Fprintf(&b, "leases:       %d records evicted (TTL %d)\n", m.Churn.LeaseEvictions, cfg.Churn.LeaseTTL)
	}
	for _, c := range m.Cohorts {
		fmt.Fprintf(&b, "cohort %-14s %d arrivals, %d admitted, %d in system; %d departures, %d crashes, %d rejoins\n",
			fmt.Sprintf("%q:", c.Name), c.Arrivals, c.Admitted, c.InSystem, c.Departures, c.Crashes, c.Rejoins)
	}
	if cfg.StakeTimeout > 0 {
		c, p := m.Churn, res.Proto
		fmt.Fprintf(&b, "stakes:       %d refunded, %d stranded, %d expired records (timeout %d); mass %.2f staked = %.2f settled + %.2f refunded + %.2f stranded + %.2f pending\n",
			c.StakesRefunded, c.StakesStranded, c.StakesExpired, cfg.StakeTimeout,
			p.StakedMass, p.SettledMass, p.RefundedMass, p.StrandedMass, p.PendingMass)
	}
	if last, ok := m.CoopReputation.Last(); ok {
		fmt.Fprintf(&b, "reputation:   mean cooperative reputation %.4f at end\n", last.V)
	}
	for _, o := range res.Outcomes {
		if o.Label == "" {
			continue
		}
		fmt.Fprintf(&b, "actor %-14s injected at tick %d, final reputation %.4f\n",
			fmt.Sprintf("%q:", o.Label), o.At, res.FinalReputation[o.Label])
	}
	return b.String()
}
