package scenario

import (
	"fmt"
	"strings"

	"repro/internal/churn"
	"repro/internal/workload"
	"repro/internal/world"
)

// Describe renders a human-readable account of the scenario: the story,
// the full effective base configuration (every field, after defaults —
// so documentation examples can be generated from the tool instead of
// rotting by hand), and the timed phases — what `replend-sim scenarios
// describe` prints.
func (s *Spec) Describe() string {
	c := &s.Base
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", s.Name, s.Description)
	fmt.Fprintf(&b, "base: %d founders, %d ticks, λ=%g, %g%% of arrivals uncooperative, topology %s, wait %d, seed %d\n",
		c.NumInit, c.NumTrans, c.Lambda, 100*c.FracUncoop, c.Topology, c.WaitPeriod, c.Seed)
	fmt.Fprintf(&b, "peers: %g%% of cooperative peers naive introducers, errSel %g, founderRep %g\n",
		100*c.FracNaive, c.ErrSel, c.FounderRep)
	admission := "reputation lending"
	if !c.RequireIntroductions {
		admission = "open (no introductions)"
	}
	fmt.Fprintf(&b, "admission: %s; introAmt %g, reward %g, minIntroRep %g, auditThreshold %g, auditTrans %d, numSM %d\n",
		admission, c.IntroAmt, c.Reward, c.MinIntroRep, c.AuditThreshold, c.AuditTrans, c.NumSM)
	if c.StakeTimeout > 0 {
		fmt.Fprintf(&b, "stakes: audit timeout %d ticks (pending stakes refund to survivors or strand; offline stake records expire under the same TTL)\n",
			c.StakeTimeout)
	} else {
		b.WriteString("stakes: no timeout (unsettled stakes stay pending, the paper's model)\n")
	}
	b.WriteString(describeChurnParams(c.Churn))
	b.WriteString(describeWorkload(c.Workload))
	signing := "ed25519"
	if c.NullSign {
		signing = "null (crypto opt-out)"
	}
	fmt.Fprintf(&b, "sampling: every %d ticks; signing: %s\n", c.SampleEvery, signing)
	if len(s.Phases) == 0 {
		b.WriteString("phases: none (the base workload runs uninterrupted)\n")
		return b.String()
	}
	b.WriteString("phases:\n")
	for i := range s.Phases {
		ph := &s.Phases[i]
		var acts []string
		if ph.Set != nil {
			acts = append(acts, "set "+describeDelta(ph.Set))
		}
		if ph.Crash != nil {
			acts = append(acts, fmt.Sprintf("crash %.0f%% of the score managers of %s",
				100*ph.Crash.Fraction, describeSelector(ph.Crash.ScoreManagersOf)))
		}
		if ph.Depart != nil {
			acts = append(acts, describeDeparture(ph.Depart))
		}
		for j := range ph.Inject {
			acts = append(acts, describeInjection(&ph.Inject[j]))
		}
		for _, ref := range ph.Rejoin {
			acts = append(acts, fmt.Sprintf("rejoin the peer labelled %q", ref))
		}
		if ph.Recover {
			acts = append(acts, "recover all crashed nodes")
		}
		fmt.Fprintf(&b, "  at %-8d %s: %s\n", ph.At, ph.label(), strings.Join(acts, "; "))
	}
	return b.String()
}

// describeChurnParams renders the full churn parameter block (the fields
// PRs 3–4 added: departure clocks, session models, crash/rejoin mix,
// population floor, forced migration), or a one-liner when churn is off.
func describeChurnParams(p churn.Params) string {
	if !p.Active() {
		return "churn: none (members never leave, the paper's model)\n"
	}
	var parts []string
	if p.Mu > 0 {
		parts = append(parts, fmt.Sprintf("departure clock μ=%g", p.Mu))
	}
	if p.SessionMean > 0 {
		dist := p.SessionDist
		if dist == "" {
			dist = churn.SessionExponential
		}
		parts = append(parts, fmt.Sprintf("session clocks %s(mean %g)", dist, p.SessionMean))
	}
	parts = append(parts, fmt.Sprintf("%g%% crashes", 100*p.CrashFrac))
	if p.RejoinProb > 0 {
		parts = append(parts, fmt.Sprintf("%g%% rejoin after mean %g ticks", 100*p.RejoinProb, p.DowntimeMean))
	} else {
		parts = append(parts, "no rejoins")
	}
	if p.MinPopulation > 0 {
		parts = append(parts, fmt.Sprintf("population floor %d", p.MinPopulation))
	} else {
		parts = append(parts, "population floor numSM+1")
	}
	if p.Migrate {
		parts = append(parts, "migration forced on")
	}
	return "churn: " + strings.Join(parts, ", ") + "\n"
}

// describeWorkload renders the effective workload block — the rate
// program shape, the cohort mix and the replay source — or a one-liner
// when the classic homogeneous generator runs.
func describeWorkload(s *workload.Spec) string {
	if !s.Active() {
		return "workload: homogeneous Poisson arrivals (the paper's generator)\n"
	}
	var b strings.Builder
	if s.Rate != nil {
		repeat := "held past the end"
		if s.Rate.Repeat {
			repeat = fmt.Sprintf("repeating every %g ticks", s.Rate.Period())
		}
		fmt.Fprintf(&b, "workload rate: %d windows %s, peak λ=%g", len(s.Rate.Windows), repeat, s.Rate.MaxRate())
		if n := len(s.Rate.Spikes); n > 0 {
			fmt.Fprintf(&b, ", %d spike(s)", n)
		}
		b.WriteString("; config λ ignored\n")
	}
	if len(s.Cohorts) > 0 {
		total := 0.0
		for _, c := range s.Cohorts {
			total += c.Weight
		}
		var parts []string
		for _, c := range s.Cohorts {
			parts = append(parts, fmt.Sprintf("%s %.0f%%", c.Name, 100*c.Weight/total))
		}
		fmt.Fprintf(&b, "workload cohorts: %s\n", strings.Join(parts, ", "))
	}
	if len(s.Trace) > 0 {
		arrivals := 0
		for _, ev := range s.Trace {
			if ev.Op == workload.OpArrival {
				arrivals++
			}
		}
		fmt.Fprintf(&b, "workload replay: %d trace events (%d arrivals); config λ ignored\n",
			len(s.Trace), arrivals)
	}
	return b.String()
}

func describeDelta(d *world.Delta) string {
	var parts []string
	add := func(name string, v any) { parts = append(parts, fmt.Sprintf("%s=%v", name, v)) }
	if d.Lambda != nil {
		add("λ", *d.Lambda)
	}
	if d.FracUncoop != nil {
		add("fracUncoop", *d.FracUncoop)
	}
	if d.FracNaive != nil {
		add("fracNaive", *d.FracNaive)
	}
	if d.ErrSel != nil {
		add("errSel", *d.ErrSel)
	}
	if d.WaitPeriod != nil {
		add("wait", *d.WaitPeriod)
	}
	if d.AuditTrans != nil {
		add("auditTrans", *d.AuditTrans)
	}
	if d.IntroAmt != nil {
		add("introAmt", *d.IntroAmt)
	}
	if d.Reward != nil {
		add("reward", *d.Reward)
	}
	if d.MinIntroRep != nil {
		add("minIntroRep", *d.MinIntroRep)
	}
	if d.AuditThreshold != nil {
		add("auditThreshold", *d.AuditThreshold)
	}
	if d.RequireIntroductions != nil {
		add("requireIntroductions", *d.RequireIntroductions)
	}
	if d.SampleEvery != nil {
		add("sampleEvery", *d.SampleEvery)
	}
	if d.Mu != nil {
		add("μ", *d.Mu)
	}
	if d.CrashFrac != nil {
		add("crashFrac", *d.CrashFrac)
	}
	if d.RejoinProb != nil {
		add("rejoinProb", *d.RejoinProb)
	}
	if d.DowntimeMean != nil {
		add("downtimeMean", *d.DowntimeMean)
	}
	return strings.Join(parts, ", ")
}

func describeDeparture(d *Departure) string {
	verb := "depart"
	if d.Crash {
		verb = "crash-depart"
	}
	if d.ScoreManagersOf != nil {
		frac := d.Fraction
		if frac == 0 {
			frac = 1
		}
		return fmt.Sprintf("%s %.0f%% of the score managers of %s",
			verb, 100*frac, describeSelector(*d.ScoreManagersOf))
	}
	sel := Selector{}
	if d.Peers != nil {
		sel = *d.Peers
	}
	var b strings.Builder
	if n := d.count(); n > 1 {
		fmt.Fprintf(&b, "%s %d members matching %s", verb, n, describeSelector(sel))
	} else {
		fmt.Fprintf(&b, "%s %s", verb, describeSelector(sel))
	}
	if d.As != "" {
		fmt.Fprintf(&b, ", as %q", d.As)
	}
	return b.String()
}

func describeInjection(in *Injection) string {
	var b strings.Builder
	if n := in.count(); n > 1 {
		fmt.Fprintf(&b, "inject %d %s peers", n, in.Class)
	} else {
		fmt.Fprintf(&b, "inject 1 %s peer", in.Class)
	}
	if in.Style != "" {
		fmt.Fprintf(&b, " (%s)", in.Style)
	}
	fmt.Fprintf(&b, " via %s", describeSelector(in.Introducer))
	if in.SpacedBy > 0 {
		fmt.Fprintf(&b, ", one per %d ticks", in.SpacedBy)
	}
	if in.DefectAfter > 0 {
		fmt.Fprintf(&b, ", defecting %d ticks after entry", in.DefectAfter)
	}
	if in.As != "" {
		fmt.Fprintf(&b, ", as %q", in.As)
	}
	return b.String()
}

func describeSelector(sel Selector) string {
	if sel.Ref != "" {
		return fmt.Sprintf("the peer labelled %q", sel.Ref)
	}
	var parts []string
	if sel.Class != "" {
		parts = append(parts, sel.Class)
	}
	if sel.Style != "" {
		parts = append(parts, sel.Style)
	}
	parts = append(parts, "member")
	desc := "the first " + strings.Join(parts, " ")
	if sel.MinRep > 0 {
		desc += fmt.Sprintf(" with reputation > %g", sel.MinRep)
	}
	if sel.FallbackFirst {
		desc += " (else the first member)"
	}
	return desc
}
