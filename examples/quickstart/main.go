// Quickstart: the smallest complete reputation-lending story.
//
// A founding community of 50 peers runs for a while; a cooperative
// newcomer and a freerider each ask a member for an introduction; the
// lends are staked, the community transacts, the audits fire, and the
// introducer of the honest peer gets the stake back with a reward while
// the freerider's introducer forfeits it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/world"
)

func main() {
	cfg := config.Default()
	cfg.NumInit = 50
	cfg.NumTrans = 30_000 // upper bound; we drive the clock in phases
	cfg.Lambda = 0        // arrivals are scripted below
	cfg.WaitPeriod = 200
	cfg.AuditTrans = 10
	cfg.Seed = 42

	w, err := world.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()

	// Let the founding community build transaction history.
	w.RunFor(2_000)
	fmt.Printf("community warmed up: %d members, mean cooperative reputation %.3f\n",
		w.PopulationSize(), meanCoopRep(w))

	selective := memberWithStyle(w, peer.Selective)
	naive := memberWithStyle(w, peer.Naive)
	fmt.Printf("selective member %s holds reputation %.3f; naive member %s holds %.3f\n",
		selective.Short(), w.Reputation(selective), naive.Short(), w.Reputation(naive))

	// A cooperative newcomer asks the selective member — granted, staked.
	honest, err := w.InjectArrival(peer.Cooperative, peer.Selective, selective)
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(sim.Tick(cfg.WaitPeriod + 1))
	fmt.Printf("honest newcomer %s admitted with lent reputation %.3f (introducer staked: now %.3f)\n",
		honest.Short(), w.Reputation(honest), w.Reputation(selective))

	// A freerider asks the selective member — usually refused outright.
	refused, err := w.InjectArrival(peer.Uncooperative, peer.Naive, selective)
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(sim.Tick(cfg.WaitPeriod + 1))
	fmt.Printf("freerider %s asked the selective member: admitted=%v\n",
		refused.Short(), isAdmitted(w, refused))

	// The same kind of freerider asks a naive member — always granted.
	freerider, err := w.InjectArrival(peer.Uncooperative, peer.Naive, naive)
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(sim.Tick(cfg.WaitPeriod + 1))
	fmt.Printf("freerider %s asked the naive member: admitted=%v with lent reputation %.3f (naive member staked: now %.3f)\n",
		freerider.Short(), isAdmitted(w, freerider), w.Reputation(freerider), w.Reputation(naive))

	// The community transacts; the newcomers build (or burn) reputation,
	// and after cfg.AuditTrans completed transactions each is audited.
	w.RunFor(20_000)

	m := w.Metrics()
	fmt.Printf("\nafter %d more ticks:\n", 20_000)
	fmt.Printf("  honest newcomer reputation:      %.3f (earned its standing)\n", w.Reputation(honest))
	fmt.Printf("  freerider reputation:            %.3f (credit burned)\n", w.Reputation(freerider))
	fmt.Printf("  selective introducer reputation: %.3f (stake returned + reward)\n", w.Reputation(selective))
	fmt.Printf("  naive introducer reputation:     %.3f (stake forfeited, recouping)\n", w.Reputation(naive))
	fmt.Printf("  audits: %d satisfied (stake+reward returned), %d forfeited\n",
		m.AuditsSatisfied, m.AuditsForfeited)
	fmt.Printf("  decision success rate: %.3f\n", m.SuccessRate())
}

// memberWithStyle returns the first community member with the given
// introduction style.
func memberWithStyle(w *world.World, style peer.Style) (out id.ID) {
	for _, pid := range w.AdmittedPeers() {
		if p, ok := w.Peer(pid); ok && p.Style == style {
			return pid
		}
	}
	log.Fatalf("no member with style %v", style)
	return
}

func isAdmitted(w *world.World, pid id.ID) bool {
	for _, v := range w.AdmittedPeers() {
		if v == pid {
			return true
		}
	}
	return false
}

func meanCoopRep(w *world.World) float64 {
	sum, n := 0.0, 0
	for _, pid := range w.AdmittedPeers() {
		if p, ok := w.Peer(pid); ok && p.Class == peer.Cooperative {
			sum += w.Reputation(pid)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
