package telemetrypurity_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/telemetrypurity"
)

func TestTelemetryPurity(t *testing.T) {
	linttest.Run(t, "testdata", telemetrypurity.Analyzer,
		"obs.example/internal/telemetry", // watched: findings expected
		"obs.example/internal/trace",     // exempt: same imports, no findings
	)
}
