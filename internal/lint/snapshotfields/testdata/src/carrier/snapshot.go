package carrier

// Image is the serialized form of State.
type Image struct {
	Tick    int64
	Balance float64
}

// Snapshot marks State as a carrier; it references Tick and Balance,
// so only the fields it misses are flagged.
func (s *State) Snapshot() Image {
	return Image{Tick: s.Tick, Balance: s.Balance}
}
