// API: the library's front door (internal/core), for consumers who want a
// reputation-lending community without touching the simulation plumbing.
//
// Builds a community, runs background workload with arrivals, scripts one
// introduction chain (A introduces B, B later introduces C — reputation
// lending composing across generations), and dumps the protocol trace
// summary.
//
// Run with: go run ./examples/api
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	c, err := core.NewCommunity(core.Options{
		Founders:   80,
		Seed:       7,
		Lambda:     0.02, // background arrivals keep the community lively
		FracUncoop: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	c.Advance(5_000)
	fmt.Printf("after warm-up: %d members, success rate %.3f\n", c.Size(), c.Stats().SuccessRate)

	// Generation 1: a founder introduces B.
	founder := c.Members()[0]
	b, err := c.RequestIntroduction(core.Cooperative, founder)
	if err != nil {
		log.Fatal(err)
	}
	c.Advance(c.WaitPeriod() + 1)
	fmt.Printf("B admitted by a founder: member=%v, reputation %.3f\n", c.IsMember(b), c.Reputation(b))

	// B earns its standing, then becomes an introducer itself.
	c.Advance(30_000)
	fmt.Printf("B established: reputation %.3f\n", c.Reputation(b))

	// Generation 2: B introduces C.
	cPeer, err := c.RequestIntroduction(core.Cooperative, b)
	if err != nil {
		log.Fatal(err)
	}
	c.Advance(c.WaitPeriod() + 1)
	fmt.Printf("C admitted by B: member=%v, reputation %.3f (B staked: %.3f)\n",
		c.IsMember(cPeer), c.Reputation(cPeer), c.Reputation(b))

	c.Advance(20_000)
	st := c.Stats()
	fmt.Printf("\nfinal: %d members (%d cooperative, %d freeriding kept at the margins)\n",
		st.Members, st.Cooperative, st.Uncooperative)
	fmt.Printf("admissions %d/%d coop/uncoop, %d refusals, audits %d ok / %d forfeited\n",
		st.AdmittedCoop, st.AdmittedUncoop, st.Refused, st.AuditsOK, st.AuditsBad)

	fmt.Println("\nprotocol trace summary:")
	fmt.Print(c.Trace().Summary(2))
	if violations := c.Trace().Verify(); len(violations) != 0 {
		log.Fatalf("trace invariants violated: %v", violations)
	}
	fmt.Println("trace invariants verified ✓")
}
