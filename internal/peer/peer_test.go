package peer

import (
	"math"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/rocq"
)

func newPeer(class Class, style Style) *Peer {
	return New(id.FromUint64(1), class, style, rocq.DefaultParams())
}

func TestClassAndStyleStrings(t *testing.T) {
	if Cooperative.String() != "cooperative" || Uncooperative.String() != "uncooperative" {
		t.Fatal("class strings wrong")
	}
	if Naive.String() != "naive" || Selective.String() != "selective" {
		t.Fatal("style strings wrong")
	}
	if Class(9).String() == "" || Style(9).String() == "" {
		t.Fatal("unknown values must render something")
	}
}

func TestWillServeTracksReputation(t *testing.T) {
	p := newPeer(Cooperative, Naive)
	src := rng.New(1)
	for _, rep := range []float64{0, 0.25, 0.9, 1} {
		served := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if p.WillServe(rep, src) {
				served++
			}
		}
		frac := float64(served) / n
		if math.Abs(frac-rep) > 0.01 {
			t.Fatalf("serve rate %v for reputation %v", frac, rep)
		}
	}
}

func TestBehavesWell(t *testing.T) {
	if !newPeer(Cooperative, Naive).BehavesWell() {
		t.Fatal("cooperative peer must behave well")
	}
	if newPeer(Uncooperative, Naive).BehavesWell() {
		t.Fatal("uncooperative peer must not behave well")
	}
}

func TestRateHonestVsLiar(t *testing.T) {
	coop := newPeer(Cooperative, Naive)
	uncoop := newPeer(Uncooperative, Naive)
	if coop.Rate(true) != 1 || coop.Rate(false) != 0 {
		t.Fatal("cooperative rating must be honest")
	}
	// "An uncooperative peer would always send a value of 0."
	if uncoop.Rate(true) != 0 || uncoop.Rate(false) != 0 {
		t.Fatal("uncooperative peer must always rate 0")
	}
}

func TestNaiveIntroducesEveryone(t *testing.T) {
	p := newPeer(Cooperative, Naive)
	src := rng.New(2)
	for i := 0; i < 100; i++ {
		if !p.WillIntroduce(Uncooperative, 0.1, src) || !p.WillIntroduce(Cooperative, 0.1, src) {
			t.Fatal("naive introducer refused someone")
		}
	}
}

func TestSelectiveAlwaysIntroducesCooperative(t *testing.T) {
	p := newPeer(Cooperative, Selective)
	src := rng.New(3)
	for i := 0; i < 100; i++ {
		if !p.WillIntroduce(Cooperative, 0.1, src) {
			t.Fatal("selective introducer refused a cooperative newcomer")
		}
	}
}

func TestSelectiveErrsAtRateErrSel(t *testing.T) {
	p := newPeer(Cooperative, Selective)
	src := rng.New(4)
	granted := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if p.WillIntroduce(Uncooperative, 0.1, src) {
			granted++
		}
	}
	frac := float64(granted) / n
	if math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("selective error rate %v, want ~0.1", frac)
	}
}

func TestSelectiveZeroErrorNeverIntroducesUncoop(t *testing.T) {
	p := newPeer(Cooperative, Selective)
	src := rng.New(5)
	for i := 0; i < 1000; i++ {
		if p.WillIntroduce(Uncooperative, 0, src) {
			t.Fatal("errSel=0 still introduced an uncooperative newcomer")
		}
	}
}

func TestAssignArrivalClassProportion(t *testing.T) {
	src := rng.New(6)
	uncoop := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if AssignArrivalClass(0.25, src) == Uncooperative {
			uncoop++
		}
	}
	frac := float64(uncoop) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("uncooperative arrival fraction %v, want ~0.25", frac)
	}
}

func TestAssignStyleUncoopAlwaysNaive(t *testing.T) {
	src := rng.New(7)
	for i := 0; i < 1000; i++ {
		if AssignStyle(Uncooperative, 0.0, src) != Naive {
			t.Fatal("uncooperative peer assigned selective style")
		}
	}
}

func TestAssignStyleCoopFraction(t *testing.T) {
	src := rng.New(8)
	naive := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if AssignStyle(Cooperative, 0.3, src) == Naive {
			naive++
		}
	}
	frac := float64(naive) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("naive fraction %v, want ~0.3", frac)
	}
}

func TestNewPeerFields(t *testing.T) {
	p := New(id.FromUint64(9), Uncooperative, Naive, rocq.DefaultParams())
	if p.ID != id.FromUint64(9) || p.Class != Uncooperative || p.Style != Naive {
		t.Fatal("constructor fields wrong")
	}
	if p.Opinions == nil || p.Opinions.Partners() != 0 {
		t.Fatal("opinion book not initialised")
	}
	if p.Completed != 0 || p.Audited || p.Flagged {
		t.Fatal("zero-state fields wrong")
	}
}
