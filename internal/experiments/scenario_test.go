package experiments

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/scenario"
)

func tinyScenario() *scenario.Spec {
	base := config.Default()
	base.NumInit = 30
	base.NumTrans = 3_000
	base.Lambda = 0.05
	base.WaitPeriod = 100
	base.Seed = 21
	return &scenario.Spec{
		Name: "tiny-replicated",
		Base: base,
		Phases: []scenario.Phase{{Name: "late joiner", At: 1_000, Inject: []scenario.Injection{{
			As: "joiner", Class: "cooperative", Introducer: scenario.Selector{},
		}}}},
	}
}

func TestRunScenarioReplicas(t *testing.T) {
	spec := tinyScenario()
	reps, err := RunScenarioReplicas(spec, Options{Runs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d replicas", len(reps))
	}
	seen := map[uint64]bool{}
	for _, r := range reps {
		if seen[r.Seed] {
			t.Fatalf("duplicate replica seed %d", r.Seed)
		}
		seen[r.Seed] = true
		if _, ok := r.Result.FinalReputation["joiner"]; !ok {
			t.Fatalf("seed %d: scripted injection missing from result", r.Seed)
		}
	}
	if reps[0].Seed != spec.Base.Seed {
		t.Fatalf("replica 0 seed %d is not the spec's own seed %d", reps[0].Seed, spec.Base.Seed)
	}
	if spec.Base.Seed != 21 {
		t.Fatalf("input spec mutated: seed now %d", spec.Base.Seed)
	}

	// Replica 0 must be exactly the run the spec describes.
	direct, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if direct.Metrics.Served != reps[0].Result.Metrics.Served ||
		direct.Metrics.AdmittedCoop != reps[0].Result.Metrics.AdmittedCoop {
		t.Fatalf("replica 0 diverged from the direct run: %+v vs %+v",
			direct.Metrics, reps[0].Result.Metrics)
	}

	table := ScenarioTable(reps)
	for _, want := range []string{"tiny-replicated", "success rate", "joiner"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunScenarioReplicasRejectsInvalidSpec(t *testing.T) {
	spec := tinyScenario()
	spec.Name = ""
	if _, err := RunScenarioReplicas(spec, Options{Runs: 2}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
