package overlay

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/id"
	"repro/internal/rng"
)

// buildRing joins n pseudo-random nodes and returns the ring plus their ids.
func buildRing(t testing.TB, n int) (*Ring, []id.ID) {
	t.Helper()
	r := NewRing()
	ids := make([]id.ID, 0, n)
	for i := 0; i < n; i++ {
		nid := id.HashString(fmt.Sprintf("node-%d", i))
		if err := r.Join(nid); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		ids = append(ids, nid)
	}
	return r, ids
}

func TestJoinDuplicateRejected(t *testing.T) {
	r := NewRing()
	n := id.FromUint64(1)
	if err := r.Join(n); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(n); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestLeaveNonMemberRejected(t *testing.T) {
	r := NewRing()
	if err := r.Leave(id.FromUint64(1)); err == nil {
		t.Fatal("leave of non-member accepted")
	}
}

func TestMembersSortedAndSized(t *testing.T) {
	r, _ := buildRing(t, 50)
	ms := r.Members()
	if len(ms) != 50 || r.Size() != 50 {
		t.Fatalf("size = %d / %d", len(ms), r.Size())
	}
	for i := 1; i < len(ms); i++ {
		if !ms[i-1].Less(ms[i]) {
			t.Fatal("members not strictly ascending")
		}
	}
}

func TestSuccessorOracle(t *testing.T) {
	r, _ := buildRing(t, 20)
	ms := r.Members()
	// A key just below member i is owned by member i.
	for _, m := range ms {
		owner, err := r.Successor(m)
		if err != nil || owner != m {
			t.Fatalf("Successor(member) = %v, %v; want the member itself", owner, err)
		}
	}
	// A key above the top member wraps to the first member.
	var top id.ID
	for i := range top {
		top[i] = 0xff
	}
	if ms[len(ms)-1] != top {
		owner, _ := r.Successor(top)
		if owner != ms[0] {
			t.Fatalf("wrap-around owner = %v, want %v", owner.Short(), ms[0].Short())
		}
	}
}

func TestSuccessorEmptyRing(t *testing.T) {
	if _, err := NewRing().Successor(id.FromUint64(1)); err == nil {
		t.Fatal("expected ErrEmpty")
	}
}

func TestNeighbourPointers(t *testing.T) {
	r, _ := buildRing(t, 30)
	ms := r.Members()
	for i, m := range ms {
		node, err := r.Node(m)
		if err != nil {
			t.Fatal(err)
		}
		wantPred := ms[(i-1+len(ms))%len(ms)]
		wantSucc := ms[(i+1)%len(ms)]
		if node.Pred() != wantPred {
			t.Fatalf("node %d pred = %v, want %v", i, node.Pred().Short(), wantPred.Short())
		}
		if node.Succ() != wantSucc {
			t.Fatalf("node %d succ = %v, want %v", i, node.Succ().Short(), wantSucc.Short())
		}
		if len(node.Successors()) != SuccessorListLen {
			t.Fatalf("node %d successor list has %d entries", i, len(node.Successors()))
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := NewRing()
	n := id.FromUint64(42)
	if err := r.Join(n); err != nil {
		t.Fatal(err)
	}
	node, _ := r.Node(n)
	if node.Pred() != n || node.Succ() != n {
		t.Fatal("single node must be its own neighbour")
	}
	owner, hops, err := r.Lookup(n, id.FromUint64(7))
	if err != nil || owner != n || hops != 1 {
		t.Fatalf("lookup on singleton: %v %d %v", owner.Short(), hops, err)
	}
}

func TestFingersPointToOwners(t *testing.T) {
	r, _ := buildRing(t, 40)
	m := r.Members()[3]
	node, _ := r.Node(m)
	for k := 0; k < id.Bits; k += 13 {
		want, _ := r.Successor(m.AddPow2(k))
		if node.Finger(k) != want {
			t.Fatalf("finger %d = %v, want %v", k, node.Finger(k).Short(), want.Short())
		}
	}
}

func TestLookupMatchesOracleFromEveryNode(t *testing.T) {
	r, ids := buildRing(t, 60)
	keys := []id.ID{
		id.HashString("key-a"), id.HashString("key-b"),
		id.FromUint64(0), id.FromUint64(1 << 60),
	}
	for _, from := range ids[:10] {
		for _, key := range keys {
			want, _ := r.Successor(key)
			got, hops, err := r.Lookup(from, key)
			if err != nil {
				t.Fatalf("lookup: %v", err)
			}
			if got != want {
				t.Fatalf("lookup(%v) = %v, oracle says %v", key.Short(), got.Short(), want.Short())
			}
			if hops < 1 {
				t.Fatalf("hops = %d", hops)
			}
		}
	}
}

func TestLookupQuickAgainstOracle(t *testing.T) {
	r, ids := buildRing(t, 128)
	src := rng.New(5)
	f := func(raw [id.Bytes]byte) bool {
		key := id.ID(raw)
		from := ids[src.Intn(len(ids))]
		want, _ := r.Successor(key)
		got, _, err := r.Lookup(from, key)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	r, ids := buildRing(t, 1024)
	src := rng.New(9)
	for i := 0; i < 500; i++ {
		var raw [id.Bytes]byte
		for j := range raw {
			raw[j] = byte(src.Uint64())
		}
		from := ids[src.Intn(len(ids))]
		if _, _, err := r.Lookup(from, id.ID(raw)); err != nil {
			t.Fatal(err)
		}
	}
	lookups, mean := r.RoutingStats()
	if lookups != 500 {
		t.Fatalf("lookups = %d", lookups)
	}
	// log2(1024) = 10; greedy Chord averages ~log2(n)/2. Anything beyond
	// 2*log2(n) signals broken fingers.
	if mean > 20 {
		t.Fatalf("mean hops %v too high for 1024 nodes", mean)
	}
	if mean < 1 {
		t.Fatalf("mean hops %v impossibly low", mean)
	}
}

func TestLookupAfterChurn(t *testing.T) {
	r, ids := buildRing(t, 100)
	// Remove every third node, then add fresh ones.
	for i := 0; i < len(ids); i += 3 {
		if err := r.Leave(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := r.Join(id.HashString(fmt.Sprintf("fresh-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	from := r.Members()[0]
	for i := 0; i < 50; i++ {
		key := id.HashString(fmt.Sprintf("churn-key-%d", i))
		want, _ := r.Successor(key)
		got, _, err := r.Lookup(from, key)
		if err != nil || got != want {
			t.Fatalf("post-churn lookup mismatch: %v vs %v (%v)", got.Short(), want.Short(), err)
		}
	}
}

func TestLookupFromNonMember(t *testing.T) {
	r, _ := buildRing(t, 5)
	if _, _, err := r.Lookup(id.FromUint64(999999), id.FromUint64(1)); err == nil {
		t.Fatal("lookup from non-member accepted")
	}
}

func TestScoreManagersDistinctAndStable(t *testing.T) {
	r, ids := buildRing(t, 200)
	peer := ids[17]
	sms, err := r.ScoreManagers(peer, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sms) != 6 {
		t.Fatalf("got %d managers", len(sms))
	}
	seen := map[id.ID]bool{}
	for _, m := range sms {
		if m == peer {
			t.Fatal("peer assigned as its own score manager")
		}
		if seen[m] {
			t.Fatal("duplicate score manager on a large ring")
		}
		seen[m] = true
		if !r.Contains(m) {
			t.Fatal("score manager not a member")
		}
	}
	again, _ := r.ScoreManagers(peer, 6)
	for i := range sms {
		if sms[i] != again[i] {
			t.Fatal("score manager assignment not deterministic")
		}
	}
}

func TestScoreManagersChangeUnderChurn(t *testing.T) {
	r, ids := buildRing(t, 100)
	peer := ids[0]
	before, _ := r.ScoreManagers(peer, 6)
	for i := 0; i < 200; i++ {
		if err := r.Join(id.HashString(fmt.Sprintf("churner-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := r.ScoreManagers(peer, 6)
	changed := 0
	for i := range before {
		if before[i] != after[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("tripling membership changed no score manager assignment — placement looks static")
	}
}

func TestScoreManagersTinyRing(t *testing.T) {
	r := NewRing()
	a, b := id.FromUint64(1), id.FromUint64(2)
	if err := r.Join(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(b); err != nil {
		t.Fatal(err)
	}
	sms, err := r.ScoreManagers(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sms) != 6 {
		t.Fatalf("got %d managers", len(sms))
	}
	for _, m := range sms {
		if m != b {
			t.Fatalf("two-node ring: every manager slot should be the other node, got %v", m.Short())
		}
	}
}

func TestScoreManagersSelfOnlyRing(t *testing.T) {
	r := NewRing()
	a := id.FromUint64(1)
	if err := r.Join(a); err != nil {
		t.Fatal(err)
	}
	sms, err := r.ScoreManagers(a, 3)
	if err != nil || len(sms) != 3 {
		t.Fatalf("sms=%v err=%v", sms, err)
	}
	for _, m := range sms {
		if m != a {
			t.Fatal("singleton ring must self-manage")
		}
	}
}

func TestScoreManagersValidation(t *testing.T) {
	r, _ := buildRing(t, 3)
	if _, err := r.ScoreManagers(id.FromUint64(1), 0); err == nil {
		t.Fatal("numSM=0 accepted")
	}
	if _, err := NewRing().ScoreManagers(id.FromUint64(1), 3); err == nil {
		t.Fatal("empty ring accepted")
	}
}

// Property: join then leave restores the exact membership and owner map.
func TestJoinLeaveRestoresOwnership(t *testing.T) {
	r, _ := buildRing(t, 50)
	keys := make([]id.ID, 40)
	for i := range keys {
		keys[i] = id.HashString(fmt.Sprintf("jl-key-%d", i))
	}
	before := make([]id.ID, len(keys))
	for i, k := range keys {
		before[i], _ = r.Successor(k)
	}
	extra := id.HashString("transient")
	if err := r.Join(extra); err != nil {
		t.Fatal(err)
	}
	if err := r.Leave(extra); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		after, _ := r.Successor(k)
		if after != before[i] {
			t.Fatalf("ownership of key %d changed after join+leave", i)
		}
	}
}
