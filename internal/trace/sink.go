package trace

import "repro/internal/telemetry"

// Sink adapts a Log to the telemetry.Sink interface, making the classic
// bounded in-memory event log one sink among several on a telemetry
// bus: a run can stream its events to disk and keep the exact-counter
// log for Summary/Verify at the same time, from one published stream.
type Sink struct{ Log *Log }

// Event implements telemetry.Sink.
func (s Sink) Event(e telemetry.Event) {
	s.Log.recordRaw(e.At, Kind(e.Kind), e.Peer, e.Other, e.Detail)
}

// Sample implements telemetry.Sink; the event log ignores metric samples.
func (s Sink) Sample(telemetry.Sample) {}

// Flush implements telemetry.Sink; an in-memory log has nothing to flush.
func (s Sink) Flush() error { return nil }
