// Package rocq implements the ROCQ (Reputation, Opinion, Credibility,
// Quality) reputation management scheme of Garg, Battiti et al., which the
// reputation-lending paper builds on: "We use the ROCQ reputation
// management system to compute reputation values for peers."
//
// The scheme has two halves:
//
//   - Reporter side: after every transaction a peer updates its local
//     *opinion* of its partner — the running average of its direct
//     experiences — together with a *quality* value expressing how
//     confident that opinion is (more interactions and more consistent
//     outcomes give higher quality). The peer reports (opinion, quality)
//     to the partner's score managers. OpinionBook implements this half.
//
//   - Score-manager side: each of a peer's score managers folds incoming
//     reports into the peer's stored reputation, weighting every report by
//     the *credibility* the manager holds for the reporter times the
//     report's quality. Credibility rises when a reporter agrees with the
//     aggregate and falls when it deviates, which is what defangs the
//     paper's uncooperative peers that "always send 0 for their partners".
//     Store implements this half.
//
// Reputation values live in [0,1] and admit the additive adjustments the
// lending protocol needs (Credit/Debit): a debit lowers the stored
// aggregate and subsequent positive feedback pulls it back up, matching
// the paper's "the introducer can recoup its reputation in time by
// behaving cooperatively with other peers".
package rocq

import (
	"fmt"
	"sort"

	"repro/internal/id"
)

// Params are the tunables of the ROCQ update rules. The defaults are
// chosen so that the scheme reproduces the regime reported for ROCQ in the
// paper's §4.1: with a cooperative majority, >95% of serve/deny decisions
// are correct.
type Params struct {
	// PriorWeight anchors the credibility-weighted average at the paper's
	// prior of 0 ("each new entrant is assumed to start with a reputation
	// value of 0"): reputation = S / (W + PriorWeight), where S and W are
	// the weighted sum and total weight of received opinions. A larger
	// prior weight makes newcomers climb more slowly.
	PriorWeight float64
	// WindowWeight caps the total accumulated weight; beyond it, old
	// evidence is scaled down exponentially. This keeps reputations
	// responsive ("recoup in time by behaving cooperatively") instead of
	// freezing under the mass of ancient reports.
	WindowWeight float64
	// CredInit is the credibility assigned to a reporter the first time a
	// score manager hears from it.
	CredInit float64
	// CredGain is the learning rate of the credibility update.
	CredGain float64
	// CredMin floors credibility so a reporter can always climb back.
	CredMin float64
	// QualityHalf is the interaction count at which opinion quality
	// reaches one half of its consistency-limited maximum.
	QualityHalf float64
}

// DefaultParams returns the parameter set used throughout the reproduction.
// CredInit starts high: in ROCQ's honest-majority regime the aggregate is
// anchored by the majority, so liars lose credibility from any starting
// point, while a high start lets honest first reports about newcomers count
// — newcomers must climb within a handful of transactions, as in the
// paper's Figure 2 dynamics.
func DefaultParams() Params {
	return Params{
		PriorWeight:  0.5,
		WindowWeight: 100,
		CredInit:     0.85,
		CredGain:     0.05,
		CredMin:      0.05,
		QualityHalf:  0.5,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.PriorWeight <= 0:
		return fmt.Errorf("rocq: PriorWeight %v must be positive", p.PriorWeight)
	case p.WindowWeight <= p.PriorWeight:
		return fmt.Errorf("rocq: WindowWeight %v must exceed PriorWeight %v", p.WindowWeight, p.PriorWeight)
	case p.CredInit <= 0 || p.CredInit > 1:
		return fmt.Errorf("rocq: CredInit %v out of (0,1]", p.CredInit)
	case p.CredGain <= 0 || p.CredGain > 1:
		return fmt.Errorf("rocq: CredGain %v out of (0,1]", p.CredGain)
	case p.CredMin < 0 || p.CredMin >= 1:
		return fmt.Errorf("rocq: CredMin %v out of [0,1)", p.CredMin)
	case p.QualityHalf <= 0:
		return fmt.Errorf("rocq: QualityHalf %v must be positive", p.QualityHalf)
	}
	return nil
}

// clamp01 restricts v to [0,1].
func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Reporter side: opinions with quality.

// Opinion is a peer's local view of one partner.
type Opinion struct {
	// Value is the running average of experience ratings in [0,1].
	Value float64
	// Quality is the confidence in Value, in [0,1].
	Quality float64
	// Count is the number of direct experiences behind the opinion.
	Count int64
}

// OpinionBook tracks a peer's first-hand experience with every partner it
// has transacted with.
type OpinionBook struct {
	//replend:allow snapshotfields fixed at DefaultParams for every peer (restorePeer rebuilds books with them); params carry no run state
	params   Params
	partners map[id.ID]*opinionState
}

type opinionState struct {
	sum   float64
	count int64
}

// NewOpinionBook returns an empty book using the given parameters.
func NewOpinionBook(p Params) *OpinionBook {
	if err := p.Validate(); err != nil {
		//replend:allow nopanic construction-time misuse guard: params are validated by config before any run starts
		panic(err)
	}
	return &OpinionBook{params: p, partners: make(map[id.ID]*opinionState)}
}

// Record folds one experience rating (in [0,1]; the paper's model uses the
// binary values 1 = satisfied, 0 = not satisfied) into the opinion of the
// given partner and returns the updated opinion.
func (b *OpinionBook) Record(partner id.ID, rating float64) Opinion {
	if rating < 0 || rating > 1 {
		//replend:allow nopanic caller-contract invariant: behaviour styles emit only 0 or 1 ratings
		panic(fmt.Sprintf("rocq: rating %v out of [0,1]", rating))
	}
	st := b.partners[partner]
	if st == nil {
		st = &opinionState{}
		b.partners[partner] = st
	}
	st.sum += rating
	st.count++
	return b.opinion(st)
}

// Opinion returns the current opinion of a partner and whether any
// experience with it exists.
func (b *OpinionBook) Opinion(partner id.ID) (Opinion, bool) {
	st, ok := b.partners[partner]
	if !ok {
		return Opinion{}, false
	}
	return b.opinion(st), true
}

// Partners returns the number of distinct partners with recorded
// experience.
func (b *OpinionBook) Partners() int { return len(b.partners) }

func (b *OpinionBook) opinion(st *opinionState) Opinion {
	mean := st.sum / float64(st.count)
	// Quality grows with the number of experiences (saturation term) and
	// shrinks when the experiences are inconsistent: a half-good,
	// half-bad history gives a much less useful opinion than a unanimous
	// one. For ratings in [0,1] the consistency term 1−2·min(m,1−m) is 1
	// for unanimous histories and 0 at m=0.5.
	saturation := float64(st.count) / (float64(st.count) + b.params.QualityHalf)
	consistency := 1 - 2*minf(mean, 1-mean)
	quality := saturation * (0.25 + 0.75*consistency)
	return Opinion{Value: mean, Quality: clamp01(quality), Count: st.count}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Score-manager side: credibility-weighted aggregation.

// Store holds the reputation state one score-manager node keeps for the
// subjects it is responsible for, together with its private credibility
// estimates of reporters. A Store is not safe for concurrent use.
//
// Memory layout: subject slots live in a struct-of-arrays arena — the
// hot weighted sums and weights (read on every Query) in two flat
// float64 slices, the cold bookkeeping in a parallel meta slice — and
// the id index maps a subject to its slot index. Forget returns slots
// to a LIFO free-list, so churn recycles them instead of growing the
// arena without bound. Arena indices never feed output bytes:
// SubjectIDs and ExportState sort by identifier, exactly as the old
// map-backed layout did.
type Store struct {
	//replend:allow snapshotfields fixed at DefaultParams for every store (world.Restore rebuilds them so); params carry no run state
	params Params
	index  map[id.ID]int32
	s      []float64 // weighted opinion sums (plus lending adjustments), by slot
	w      []float64 // total opinion weights, by slot
	meta   []subjectMeta
	free   []int32 // LIFO free-list of forgotten slots
	cred   map[id.ID]float64

	known   int // subjects with evidence (present slots)
	reports int64

	// onChange, when set, observes every mutation of a subject's stored
	// evidence (reports, credits, debits, zeroing, init, adoption,
	// forgetting). The simulation world uses it to dirty-track reputation
	// reads so periodic sampling touches only subjects that changed.
	//replend:allow snapshotfields observer hook, re-attached by the restoring world (SetOnChange) — not serializable state
	onChange func(subject id.ID)
}

// subjectMeta is the cold half of one subject slot: reputation reads as
// s[i] / (w[i] + PriorWeight), the weighted average of received opinions
// anchored at the prior 0. Lending credits and debits shift s[i] by
// amount·(w[i] + PriorWeight), which moves the read value by exactly
// ±amount and then fades as further evidence accumulates — the paper's
// "recoup … by behaving cooperatively".
// A slot may exist before any evidence arrives (Ref pre-resolves slots so
// hot query paths are array reads instead of map lookups); present
// distinguishes real evidence from such placeholders, and is what Query,
// Known and Subjects report. A slot index stays bound to its subject
// until Forget recycles it, so a Ref stays valid as long as its subject
// is not forgotten.
type subjectMeta struct {
	subject id.ID // the subject this slot is about (for change notification)
	reports int64
	present bool // the store has actually heard about this subject
}

// NewStore returns an empty score-manager store.
func NewStore(p Params) *Store {
	if err := p.Validate(); err != nil {
		//replend:allow nopanic construction-time misuse guard: params are validated by config before any run starts
		panic(err)
	}
	return &Store{
		params: p,
		index:  make(map[id.ID]int32),
		cred:   make(map[id.ID]float64),
	}
}

// Subjects returns the number of subjects with stored reputation.
func (s *Store) Subjects() int { return s.known }

// Reports returns the total number of reports folded in.
func (s *Store) Reports() int64 { return s.reports }

// SetOnChange attaches the evidence-mutation observer; nil detaches it.
func (s *Store) SetOnChange(fn func(subject id.ID)) { s.onChange = fn }

// notify reports a mutation of the slot's subject to the observer.
func (s *Store) notify(idx int32) {
	if s.onChange != nil {
		s.onChange(s.meta[idx].subject)
	}
}

// slot returns the subject's slot index, creating an empty (non-present)
// placeholder — from the free-list if churn released one — if the store
// has no slot for it yet.
func (s *Store) slot(subject id.ID) int32 {
	if idx, ok := s.index[subject]; ok {
		return idx
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
		s.s[idx], s.w[idx] = 0, 0
		s.meta[idx] = subjectMeta{subject: subject}
	} else {
		idx = int32(len(s.meta))
		s.s = append(s.s, 0)
		s.w = append(s.w, 0)
		s.meta = append(s.meta, subjectMeta{subject: subject})
	}
	s.index[subject] = idx
	return idx
}

// materialize marks a slot as holding real evidence.
func (s *Store) materialize(idx int32) {
	if !s.meta[idx].present {
		s.meta[idx].present = true
		s.known++
	}
}

// initWeight is the evidence weight behind an explicitly initialised
// reputation (founders, baseline admissions): solid but not immovable.
const initWeight = 20

// Init creates (or resets) a subject's stored reputation to the given
// value, backed by a solid body of synthetic evidence. The simulation uses
// it for the founding community members, which the paper assumes "are
// honest and cooperative" from the start.
func (s *Store) Init(subject id.ID, rep float64) {
	idx := s.slot(subject)
	s.materialize(idx)
	s.meta[idx] = subjectMeta{subject: subject, present: true}
	s.w[idx] = initWeight
	s.s[idx] = clamp01(rep) * (initWeight + s.params.PriorWeight)
	s.notify(idx)
}

// Known reports whether the store holds state for the subject.
func (s *Store) Known(subject id.ID) bool {
	idx, ok := s.index[subject]
	return ok && s.meta[idx].present
}

// value reads the reputation of one subject slot.
func (s *Store) value(idx int32) float64 {
	return clamp01(s.s[idx] / (s.w[idx] + s.params.PriorWeight))
}

// Query returns the stored reputation of the subject, and false if the
// store has never heard of it (a fresh score manager after churn, or a
// peer that was never admitted).
func (s *Store) Query(subject id.ID) (float64, bool) {
	idx, ok := s.index[subject]
	if !ok || !s.meta[idx].present {
		return 0, false
	}
	return s.value(idx), true
}

// Ref is a stable handle to one subject's slot in this store: Query
// through it is two array reads, no hashing. The handle stays valid as
// long as its subject is not forgotten (slots are reset in place, and a
// slot index stays bound to its subject until Forget recycles it) and
// observes evidence that arrives after it was taken.
type Ref struct {
	store *Store
	idx   int32
}

// Ref resolves a handle for the subject, pre-creating an empty slot that
// Query, Known and Subjects ignore until evidence arrives.
func (s *Store) Ref(subject id.ID) Ref {
	return Ref{store: s, idx: s.slot(subject)}
}

// Forget drops the subject's slot entirely and recycles its index —
// used when the subject's node has left the network for good, so the
// store need not retain (or keep a placeholder for) evidence nobody can
// query again. Callers must ensure no Ref for the subject outlives the
// forget: the slot index may be rebound to another subject.
func (s *Store) Forget(subject id.ID) {
	idx, ok := s.index[subject]
	if !ok {
		return
	}
	if s.meta[idx].present {
		s.known--
		s.notify(idx)
	}
	delete(s.index, subject)
	s.s[idx], s.w[idx] = 0, 0
	s.meta[idx] = subjectMeta{}
	s.free = append(s.free, idx)
}

// Query is Store.Query through the pre-resolved handle.
func (r Ref) Query() (float64, bool) {
	if !r.store.meta[r.idx].present {
		return 0, false
	}
	return r.store.value(r.idx), true
}

// Credibility returns the store's current credibility for a reporter.
func (s *Store) Credibility(reporter id.ID) float64 {
	c, ok := s.cred[reporter]
	if !ok {
		return s.params.CredInit
	}
	return c
}

// Report folds one (opinion, quality) report about subject from reporter
// into the stored evidence with weight credibility·quality, and updates
// the reporter's credibility according to how well the report agreed with
// the resulting aggregate. A report about an unknown subject creates the
// subject at the zero prior first — an unintroduced peer starts at 0.
func (s *Store) Report(reporter, subject id.ID, op Opinion) {
	s.reportTo(s.slot(subject), reporter, op)
}

// Report folds the report into the handle's subject, sparing the
// subject-map lookup on the per-transaction feedback path.
func (r Ref) Report(reporter id.ID, op Opinion) {
	r.store.reportTo(r.idx, reporter, op)
}

func (s *Store) reportTo(idx int32, reporter id.ID, op Opinion) {
	if op.Value < 0 || op.Value > 1 || op.Quality < 0 || op.Quality > 1 {
		//replend:allow nopanic caller-contract invariant: OpinionBook clamps opinions to [0,1] before they reach a store
		panic(fmt.Sprintf("rocq: report out of range: %+v", op))
	}
	s.reports++
	cred := s.Credibility(reporter)
	s.materialize(idx)
	w := cred * op.Quality
	s.s[idx] += w * op.Value
	s.w[idx] += w
	// Sliding window: beyond WindowWeight, scale old evidence down so the
	// aggregate stays responsive to recent behaviour.
	if s.w[idx] > s.params.WindowWeight {
		f := s.params.WindowWeight / s.w[idx]
		s.s[idx] *= f
		s.w[idx] = s.params.WindowWeight
	}
	s.meta[idx].reports++
	s.updateCred(reporter, cred, op.Value, s.value(idx))
	s.notify(idx)
}

// updateCred moves the reporter's credibility toward 1−|opinion−aggregate|:
// reporters that agree with the aggregate become more credible, reporters
// that consistently deviate (for instance the paper's uncooperative peers,
// which always report 0) lose influence.
func (s *Store) updateCred(reporter id.ID, cred, opinion, aggregate float64) {
	d := opinion - aggregate
	if d < 0 {
		d = -d
	}
	target := 1 - d
	c := cred + s.params.CredGain*(target-cred)
	if c < s.params.CredMin {
		c = s.params.CredMin
	}
	s.cred[reporter] = clamp01(c)
}

// adjust shifts the subject's read value by exactly delta (before
// clamping) by moving the weighted sum, creating the subject at the zero
// prior first if unknown.
func (s *Store) adjust(subject id.ID, delta float64) {
	idx := s.slot(subject)
	s.materialize(idx)
	s.s[idx] += delta * (s.w[idx] + s.params.PriorWeight)
	// Keep the evidence sum inside the representable [0,1] value range so
	// clamped adjustments do not bank hidden credit or debt.
	if max := s.w[idx] + s.params.PriorWeight; s.s[idx] > max {
		s.s[idx] = max
	}
	if s.s[idx] < 0 {
		s.s[idx] = 0
	}
	s.notify(idx)
}

// Credit raises the subject's stored reputation by amount (clamped to 1),
// creating the subject at reputation 0 first if unknown — this is exactly
// the score-manager action for the lending protocol's CREDIT message, and
// the paper's bootstrap rule "each new entrant is assumed to start with a
// reputation value of 0".
func (s *Store) Credit(subject id.ID, amount float64) {
	if amount < 0 {
		//replend:allow nopanic caller-contract invariant: lending computes credit amounts from non-negative stakes
		panic("rocq: negative credit")
	}
	s.adjust(subject, amount)
}

// Debit lowers the subject's stored reputation by amount, clamped at 0
// ("subject to a minimum of 0"), creating the subject first if unknown.
func (s *Store) Debit(subject id.ID, amount float64) {
	if amount < 0 {
		//replend:allow nopanic caller-contract invariant: lending computes debit amounts from non-negative stakes
		panic("rocq: negative debit")
	}
	s.adjust(subject, -amount)
}

// Zero forces the subject's stored reputation to 0; the punishment for a
// peer caught soliciting duplicate introductions.
func (s *Store) Zero(subject id.ID) {
	idx := s.slot(subject)
	s.materialize(idx)
	s.s[idx] = 0
	s.notify(idx)
}

// ---------------------------------------------------------------------------
// Record migration (churn handoff).

// Snapshot is the portable form of one subject's stored evidence — what a
// score manager hands to the replica taking over its ownership arc when
// membership changes. It carries the raw weighted evidence, not the read
// value, so adoption preserves the window dynamics exactly.
type Snapshot struct {
	S       float64 // weighted opinion sum
	W       float64 // total opinion weight
	Reports int64   // reports folded into this replica
	Prior   float64 // the source store's prior weight (for Value)
}

// Value reads the reputation the snapshot encodes.
func (sn Snapshot) Value() float64 {
	return clamp01(sn.S / (sn.W + sn.Prior))
}

// Export captures the subject's stored evidence, and false when the store
// holds none.
func (s *Store) Export(subject id.ID) (Snapshot, bool) {
	idx, ok := s.index[subject]
	if !ok || !s.meta[idx].present {
		return Snapshot{}, false
	}
	return Snapshot{S: s.s[idx], W: s.w[idx], Reports: s.meta[idx].reports, Prior: s.params.PriorWeight}, true
}

// Adopt installs a migrated snapshot as the subject's stored evidence,
// replacing whatever the store held. The slot is reset in place, so Refs
// taken before the adoption keep observing the subject.
func (s *Store) Adopt(subject id.ID, sn Snapshot) {
	idx := s.slot(subject)
	s.materialize(idx)
	s.s[idx], s.w[idx], s.meta[idx].reports = sn.S, sn.W, sn.Reports
	s.notify(idx)
}

// SubjectIDs returns the subjects with stored evidence in ascending
// identifier order — the deterministic iteration the churn handoff needs
// when a node's store is enumerated at departure. The arena makes this a
// linear slice scan instead of a map iteration.
func (s *Store) SubjectIDs() []id.ID {
	out := make([]id.ID, 0, s.known)
	for i := range s.meta {
		if s.meta[i].present {
			out = append(out, s.meta[i].subject)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ArenaSlots returns (live, capacity) of the store's subject arena: how
// many subjects hold an index and how many slots exist in total. A
// capacity bounded near the subject high-water mark is the free-list
// working under churn.
func (s *Store) ArenaSlots() (live, capacity int) {
	return len(s.index), len(s.meta)
}

// ---------------------------------------------------------------------------
// Cross-manager aggregation.

// QuerySet combines the answers of a peer's score managers: the mean of
// the stored values over the managers that know the subject. Managers
// without state (fresh after churn) abstain. The boolean is false when no
// manager knows the subject, which callers must treat as reputation 0 —
// an unintroduced peer.
func QuerySet(stores []*Store, subject id.ID) (float64, bool) {
	sum, n := 0.0, 0
	for _, st := range stores {
		if v, ok := st.Query(subject); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// QueryRefs is QuerySet over pre-resolved handles — the form the
// simulator's per-tick query path uses, since it avoids rehashing the
// subject once per manager on every read.
func QueryRefs(refs []Ref) (float64, bool) {
	sum, n := 0.0, 0
	for _, r := range refs {
		if v, ok := r.Query(); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
