package overlay

import (
	"fmt"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
)

// TestFingerRepairMatchesOracleUnderChurn pins the incremental finger
// walk (repairNode consults the membership index only when a target
// crosses the previous owner) against the per-bit oracle, across ring
// sizes and sustained join/leave churn — every bit of every table, not a
// sample.
func TestFingerRepairMatchesOracleUnderChurn(t *testing.T) {
	ring := NewRing()
	src := rng.New(77)
	var members []id.ID
	join := func(tag string) {
		n := id.HashString(tag)
		if err := ring.Join(n); err != nil {
			t.Fatal(err)
		}
		members = append(members, n)
	}
	checkAll := func(when string) {
		t.Helper()
		for _, m := range members {
			node, err := ring.Node(m) // repairs against current membership
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < id.Bits; k++ {
				want, err := ring.Successor(m.AddPow2(k))
				if err != nil {
					t.Fatal(err)
				}
				if node.Finger(k) != want {
					t.Fatalf("%s: member %s finger %d = %s, want %s",
						when, m.Short(), k, node.Finger(k).Short(), want.Short())
				}
			}
		}
	}

	for i := 0; i < 3; i++ { // tiny rings first: 1, 2, 3 members
		join(fmt.Sprintf("seed-%d", i))
		checkAll(fmt.Sprintf("size-%d", ring.Size()))
	}
	for i := 0; i < 60; i++ {
		join(fmt.Sprintf("grow-%d", i))
	}
	checkAll("grown")
	for step := 0; step < 40; step++ {
		if len(members) > 4 && src.Bool() {
			i := src.Intn(len(members))
			if err := ring.Leave(members[i]); err != nil {
				t.Fatal(err)
			}
			members = append(members[:i], members[i+1:]...)
		} else {
			join(fmt.Sprintf("churn-%d", step))
		}
		checkAll(fmt.Sprintf("churn step %d", step))
	}
}
