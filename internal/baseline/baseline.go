// Package baseline implements the newcomer-admission alternatives the
// paper's introduction surveys and argues against. Each policy reduces to
// the reputation a newcomer is granted unconditionally on arrival — no
// introducer, no stake, no audit:
//
//   - Complaints-based trust (Aberer & Despotovic): only negative feedback
//     is recorded, so a peer without history "is assumed to be
//     trustworthy" — initial reputation 1. Exploitable by whitewashing
//     (discard the identity once complaints accumulate).
//   - Positive-only feedback: "a new entrant has the minimum possible
//     reputation" — initial reputation 0, indistinguishable from a
//     freerider and frozen out.
//   - Mid-spectrum (positive and negative feedback, e.g. EigenTrust-like):
//     "a new peer enters in the middle of the spectrum" — initial 0.5.
//   - Fixed credit (BitTorrent / Scrivener style): "a small amount of
//     initial credit to each new peer … to get them started" — a small
//     initial reputation, by default the same 0.1 the lending scheme
//     stakes, but granted for free.
//
// The experiment harness runs each policy through the same simulation
// world as the lending scheme to regenerate the paper's qualitative
// comparison (experiment A2 in DESIGN.md).
package baseline

import "fmt"

// Policy is a bootstrap rule for newcomers admitted without introduction.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// InitialReputation is the reputation granted on arrival.
	InitialReputation() float64
}

// ComplaintsBased trusts newcomers fully (complaints-only systems).
type ComplaintsBased struct{}

// Name implements Policy.
func (ComplaintsBased) Name() string { return "complaints-based" }

// InitialReputation implements Policy.
func (ComplaintsBased) InitialReputation() float64 { return 1.0 }

// PositiveOnly gives newcomers the minimum possible reputation.
type PositiveOnly struct{}

// Name implements Policy.
func (PositiveOnly) Name() string { return "positive-only" }

// InitialReputation implements Policy.
func (PositiveOnly) InitialReputation() float64 { return 0.0 }

// MidSpectrum admits newcomers at the middle of the reputation range.
type MidSpectrum struct{}

// Name implements Policy.
func (MidSpectrum) Name() string { return "mid-spectrum" }

// InitialReputation implements Policy.
func (MidSpectrum) InitialReputation() float64 { return 0.5 }

// FixedCredit grants every newcomer a free fixed bootstrap credit.
type FixedCredit struct {
	// Amount is the credit granted; zero values default to 0.1 (the
	// default lending stake, granted here without a lender).
	Amount float64
}

// Name implements Policy.
func (f FixedCredit) Name() string { return fmt.Sprintf("fixed-credit(%g)", f.amount()) }

// InitialReputation implements Policy.
func (f FixedCredit) InitialReputation() float64 { return f.amount() }

func (f FixedCredit) amount() float64 {
	if f.Amount <= 0 {
		return 0.1
	}
	return f.Amount
}

// All returns the full baseline suite in report order.
func All() []Policy {
	return []Policy{ComplaintsBased{}, PositiveOnly{}, MidSpectrum{}, FixedCredit{}}
}

// ByName resolves a policy by its Name() string. The bare alias
// "fixed-credit" resolves to the default-amount fixed credit, matching the
// CLI's -policy spelling; fleet workers use this to reconstruct the
// coordinator's policy from its wire name.
func ByName(name string) (Policy, error) {
	for _, p := range All() {
		if p.Name() == name || (name == "fixed-credit" && p.Name() == "fixed-credit(0.1)") {
			return p, nil
		}
	}
	return nil, fmt.Errorf("baseline: unknown policy %q", name)
}
