package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"repro/internal/lint/analysis"
)

// go vet -vettool support. The go command drives a vet tool once per
// package: it writes a JSON *.cfg file describing the package (sources,
// import map, export-data files for every dependency) and invokes the
// tool with that file as the sole argument. The tool type-checks from
// the supplied inputs, reports diagnostics on stderr, writes the
// (possibly empty) facts file the config names, and exits nonzero when
// it found anything. This mirrors x/tools' unitchecker protocol so
//
//	go vet -vettool=$(go env GOPATH)/bin/replend-lint ./...
//
// works against a `go build -o`-installed binary.

// VetConfig is the JSON document the go command hands a vet tool. Field
// set and meaning follow cmd/go's vet configuration.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit executes the analyzers against the package a vet config
// describes and returns the surviving findings. The facts output file
// is always written (empty — this suite carries no facts), because the
// go command records it as a build artifact.
func RunVetUnit(cfgPath string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("lint: reading vet config: %w", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing vet config %s: %w", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, fmt.Errorf("lint: writing facts output: %w", err)
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return nil, nil
	}

	fset := token.NewFileSet()
	imp := NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := Check(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return Run([]*Package{pkg}, analyzers, nil)
}
