// Package transport simulates the message-passing layer under the overlay.
//
// The paper's model is the simplest possible: "We do not model transmission
// delays or losses and all messages are delivered instantly to the
// recipient using distributed hash tables." The Bus reproduces that model
// by default (synchronous, lossless delivery), and additionally supports
// fault injection — per-destination crash, message loss probability and
// fixed delivery delay — so the test suite can exercise the redundancy the
// protocol builds in ("in case a score manager crashes before being able to
// contact the new peer's score managers").
package transport

import (
	"fmt"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Message is one unit of communication between simulated nodes.
type Message struct {
	From    id.ID
	To      id.ID
	Kind    string // protocol message name, e.g. "lend", "credit", "audit-ok"
	Payload any
}

// Handler consumes messages delivered to a registered address.
type Handler func(Message)

// Stats counts transport activity for assertions and reports.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64 // lost to injected loss
	Crashed   int64 // destined to a crashed node
	NoRoute   int64 // destination never registered
}

// Bus is the simulated network. It is not safe for concurrent use; the
// simulation core is single-threaded (see package sim).
type Bus struct {
	handlers map[id.ID]Handler
	crashed  map[id.ID]bool
	stats    Stats

	// Fault injection; all zero by default = the paper's instant lossless
	// network.
	lossProb float64
	delay    sim.Tick
	engine   *sim.Engine
	rand     *rng.Source
}

// NewBus returns a bus with the paper's default network model: instant,
// lossless delivery.
func NewBus() *Bus {
	return &Bus{
		handlers: make(map[id.ID]Handler),
		crashed:  make(map[id.ID]bool),
	}
}

// Register binds an address to a handler, replacing any previous handler,
// and clears a crash flag if one was set (a node re-registering has
// recovered).
func (b *Bus) Register(addr id.ID, h Handler) {
	if h == nil {
		//replend:allow nopanic construction-time misuse guard: callers register handlers at attach, before any run starts
		panic("transport: registering nil handler")
	}
	b.handlers[addr] = h
	delete(b.crashed, addr)
}

// Unregister removes an address. Subsequent sends count as NoRoute.
func (b *Bus) Unregister(addr id.ID) {
	delete(b.handlers, addr)
	delete(b.crashed, addr)
}

// Crash marks an address as crashed: messages to it are swallowed (counted
// in Stats.Crashed) until Recover or Register is called.
func (b *Bus) Crash(addr id.ID) { b.crashed[addr] = true }

// Recover clears a crash flag.
func (b *Bus) Recover(addr id.ID) { delete(b.crashed, addr) }

// IsCrashed reports whether the address is currently crashed.
func (b *Bus) IsCrashed(addr id.ID) bool { return b.crashed[addr] }

// SetLoss configures an independent loss probability per message. A
// non-zero loss probability requires a randomness source via SetFaultRand.
func (b *Bus) SetLoss(p float64) {
	if p < 0 || p > 1 {
		//replend:allow nopanic construction-time misuse guard: fault injection is configured before any run starts
		panic(fmt.Sprintf("transport: loss probability %v out of [0,1]", p))
	}
	b.lossProb = p
}

// SetFaultRand supplies the randomness used by injected loss.
func (b *Bus) SetFaultRand(r *rng.Source) { b.rand = r }

// SetDelay configures a fixed delivery delay in ticks, scheduled on the
// given engine. A zero delay restores synchronous delivery.
func (b *Bus) SetDelay(e *sim.Engine, d sim.Tick) {
	if d < 0 {
		//replend:allow nopanic construction-time misuse guard: fault injection is configured before any run starts
		panic("transport: negative delay")
	}
	if d > 0 && e == nil {
		//replend:allow nopanic construction-time misuse guard: fault injection is configured before any run starts
		panic("transport: delay requires an engine")
	}
	b.engine, b.delay = e, d
}

// Stats returns a copy of the activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// Send delivers the message subject to the configured network model. With
// the defaults it invokes the destination handler before returning, which
// is exactly the paper's instant-delivery assumption.
func (b *Bus) Send(m Message) {
	b.stats.Sent++
	if b.lossProb > 0 {
		if b.rand == nil {
			//replend:allow nopanic configuration invariant: SetLoss documents the SetFaultRand requirement; caught by the first send in any test
			panic("transport: loss configured without SetFaultRand")
		}
		if b.rand.Bernoulli(b.lossProb) {
			b.stats.Dropped++
			return
		}
	}
	if b.delay > 0 {
		b.engine.After(b.delay, "deliver:"+m.Kind, func() { b.deliver(m) })
		return
	}
	b.deliver(m)
}

func (b *Bus) deliver(m Message) {
	if b.crashed[m.To] {
		b.stats.Crashed++
		return
	}
	h, ok := b.handlers[m.To]
	if !ok {
		b.stats.NoRoute++
		return
	}
	b.stats.Delivered++
	h(m)
}

// Broadcast sends the same payload to each destination, preserving order.
// It is the per-message reference path; SendBatch is the coalesced form
// the lending fan-outs use, and the two are byte-equivalent by contract
// (pinned by the transport equivalence tests).
func (b *Bus) Broadcast(from id.ID, kind string, payload any, to []id.ID) {
	for _, dst := range to {
		b.Send(Message{From: from, To: dst, Kind: kind, Payload: payload})
	}
}

// SendBatch delivers the same payload to every destination as one bus
// operation. It is observably equivalent to calling Send per
// destination in order:
//
//   - synchronous delivery (no delay) interleaves exactly as a Send
//     loop: one loss draw, then that destination's delivery (whose
//     handler may itself send, consuming draws), then the next draw —
//     so RNG consumption and nested-send ordering are preserved;
//   - delayed delivery draws every destination's loss up front — which
//     is what the Send loop does too, since deferred deliveries mean no
//     handler runs between the draws — and coalesces the survivors into
//     one scheduled event. Per-message Sends would occupy consecutive
//     sequence numbers with no other event able to interleave (the
//     sending loop runs inside a single event, and anything scheduled
//     afterwards gets a later sequence number), so delivering the whole
//     batch in order from one event preserves the execution order;
//   - crash flags are checked at delivery time per destination, in both
//     the synchronous and the delayed form, as Send does.
//
// The one intentional divergence is scheduler bookkeeping: a delayed
// batch consumes one event (and one sequence number) instead of N.
// Sequence numbers never feed output bytes, and snapshots are refused
// while transport faults are active, so the difference is invisible to
// the byte-identity contract.
func (b *Bus) SendBatch(from id.ID, kind string, payload any, to []id.ID) {
	if len(to) == 0 {
		return
	}
	if b.lossProb > 0 && b.rand == nil {
		//replend:allow nopanic configuration invariant: SetLoss documents the SetFaultRand requirement; caught by the first send in any test
		panic("transport: loss configured without SetFaultRand")
	}
	if b.delay > 0 {
		b.stats.Sent += int64(len(to))
		live := to
		if b.lossProb > 0 {
			kept := make([]id.ID, 0, len(to))
			for _, dst := range to {
				if b.rand.Bernoulli(b.lossProb) {
					b.stats.Dropped++
					continue
				}
				kept = append(kept, dst)
			}
			live = kept
		}
		batch := append([]id.ID(nil), live...)
		b.engine.After(b.delay, "deliver-batch:"+kind, func() {
			for _, dst := range batch {
				b.deliver(Message{From: from, To: dst, Kind: kind, Payload: payload})
			}
		})
		return
	}
	for _, dst := range to {
		b.stats.Sent++
		if b.lossProb > 0 && b.rand.Bernoulli(b.lossProb) {
			b.stats.Dropped++
			continue
		}
		b.deliver(Message{From: from, To: dst, Kind: kind, Payload: payload})
	}
}
