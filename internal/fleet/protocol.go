// Package fleet is the distributed experiment-orchestration subsystem: a
// coordinator shards replica work units — (scenario|configuration, seed)
// pairs — across worker processes and merges their results back into the
// exact shape the in-process replica runner produces.
//
// The design premise is that every work unit is a pure function of its
// job: the unit's RNG stream is derived from (rootSeed, unitIndex) by a
// keyed split (rng.DeriveSeed), never from dispatch order, so any shard
// assignment, worker count, completion order, retry or duplicated
// straggler dispatch reproduces the single-process output byte for byte.
// The coordinator therefore schedules freely — FIFO hand-out to idle
// workers, requeue on worker death, re-dispatch of stragglers — and merges
// results by unit index.
//
// Workers are the existing simulator binary in worker mode: the
// coordinator spawns `<binary> -worker` locally and speaks the protocol
// over the child's stdin/stdout, and remote workers join over TCP with a
// shared token (`-worker-connect addr -fleet-token t`). See docs/fleet.md
// for the wire format and the determinism contract.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/lending"
	"repro/internal/scenario"
	"repro/internal/world"
)

// ProtoVersion is the wire protocol version. A worker whose hello carries
// a different version is rejected; the coordinator and its workers are
// expected to run the same binary. Version 2 added segment units (jobs
// that resume a checkpoint, run a tick budget and return the re-sealed
// checkpoint). Version 3 added worker telemetry on heartbeat frames (the
// Status payload), which the coordinator renders as a live progress
// table and folds into the journal's telemetry summary.
const ProtoVersion = 3

// maxFrame bounds a single frame (a job with an embedded spec, or a
// result with its sampled series). Runs that legitimately exceed this are
// misconfigured, not large.
const maxFrame = 64 << 20

// Message types.
const (
	// msgHello is the worker's first frame: protocol version and join
	// token. The coordinator drops the connection on mismatch.
	msgHello = "hello"
	// msgJob carries one work unit, coordinator → worker.
	msgJob = "job"
	// msgResult carries one finished unit, worker → coordinator.
	msgResult = "result"
	// msgHeartbeat is the worker's liveness beacon, sent on a timer even
	// while a unit is computing.
	msgHeartbeat = "heartbeat"
	// msgShutdown asks the worker to exit cleanly.
	msgShutdown = "shutdown"
)

// Job kinds.
const (
	// KindScenario executes a declarative scenario spec under the job's
	// seed.
	KindScenario = "scenario"
	// KindConfig executes a plain configured world (optionally under a
	// named baseline bootstrap policy) under the job's seed.
	KindConfig = "config"
	// KindSegment resumes a sealed checkpoint, runs it to the job's
	// target tick and returns the re-sealed checkpoint — or, on the final
	// segment, finishes the run and returns its result payload. The unit
	// carries no seed: the checkpoint's RNG state is the seed.
	KindSegment = "segment"
)

// envelope is one protocol frame.
type envelope struct {
	Type   string  `json:"type"`
	Hello  *hello  `json:"hello,omitempty"`
	Job    *Job    `json:"job,omitempty"`
	Result *Result `json:"result,omitempty"`
	Status *Status `json:"status,omitempty"`
}

// Status is the worker telemetry riding on heartbeat frames: where the
// worker is in its current unit and what it costs. Pure observability —
// the coordinator renders it and records a summary, but schedules off
// liveness alone, so a worker without telemetry (an idle one, or one
// between units) is a first-class citizen.
type Status struct {
	// Unit is the inflight unit index, -1 while idle.
	Unit int `json:"unit"`
	// Tick is the simulation tick the unit has reached.
	Tick int64 `json:"tick,omitempty"`
	// TicksPerSec is the unit's tick rate over the last heartbeat
	// interval (0 until two beats have observed the same unit).
	TicksPerSec float64 `json:"tps,omitempty"`
	// PeakRSS is the worker process's resident-set high-water mark in
	// bytes, sampled at each heartbeat.
	PeakRSS uint64 `json:"peakRss,omitempty"`
}

// hello identifies a joining worker.
type hello struct {
	Proto int    `json:"proto"`
	Token string `json:"token,omitempty"`
}

// Job is one work unit. It must be self-contained: a worker that has
// never seen the coordinator's state executes it from the payload alone.
type Job struct {
	// Unit is the unit's index in its batch — the merge key, and the key
	// its RNG stream was derived from. The coordinator assigns it.
	Unit int `json:"unit"`
	// Epoch identifies the batch the unit belongs to. The coordinator
	// assigns it and drops results from stale epochs: a straggler
	// duplicate that loses its race can land after its batch returned,
	// and without the epoch its payload would be merged into the *next*
	// batch at the same unit index.
	Epoch int64 `json:"epoch,omitempty"`
	// Kind selects the payload: KindScenario or KindConfig.
	Kind string `json:"kind"`
	// Spec is the scenario spec JSON (KindScenario).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Config is the configuration JSON (KindConfig).
	Config json.RawMessage `json:"config,omitempty"`
	// Seed is the unit's root seed, derived by the caller from
	// (rootSeed, unitIndex); it overrides the seed inside Spec/Config.
	Seed uint64 `json:"seed"`
	// Policy names a baseline bootstrap policy (KindConfig only, optional).
	Policy string `json:"policy,omitempty"`
	// NullSign runs the unit with null signing identities.
	NullSign bool `json:"nullSign,omitempty"`
	// Checkpoint is the sealed snapshot a KindSegment unit resumes from
	// (either checkpoint kind; the worker dispatches on the envelope tag).
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// Until is the absolute tick a KindSegment unit runs to before
	// re-sealing its state. Ignored when Final is set.
	Until int64 `json:"until,omitempty"`
	// Final asks a KindSegment unit to finish the run instead of
	// checkpointing again, returning the result payload.
	Final bool `json:"final,omitempty"`
}

// Result is one finished unit.
type Result struct {
	// Unit echoes the job's unit index.
	Unit int `json:"unit"`
	// Epoch echoes the job's batch epoch (see Job.Epoch).
	Epoch int64 `json:"epoch,omitempty"`
	// Err is a deterministic unit failure (an invalid spec, a failed
	// world). It is not retried: the same job would fail the same way on
	// every worker.
	Err string `json:"err,omitempty"`
	// Scenario is the payload of a KindScenario unit.
	Scenario *ScenarioResult `json:"scenario,omitempty"`
	// Config is the payload of a KindConfig unit.
	Config *ConfigResult `json:"config,omitempty"`
	// Segment is the payload of a KindSegment unit.
	Segment *SegmentResult `json:"segment,omitempty"`
}

// SegmentResult is the payload of one checkpoint segment: either the
// re-sealed checkpoint at the target tick (intermediate segments) or the
// finished run's result (Final segments).
type SegmentResult struct {
	// Checkpoint is the sealed snapshot at the job's Until tick.
	Checkpoint []byte `json:"checkpoint,omitempty"`
	// Scenario is the finished run of a scenario-kind checkpoint (Final).
	Scenario *ScenarioResult `json:"scenario,omitempty"`
	// Config is the finished run of a world-kind checkpoint (Final).
	Config *ConfigResult `json:"config,omitempty"`
}

// ScenarioResult is the serializable body of a scenario.Result. The spec
// itself is not echoed back; the coordinator re-attaches the one it
// dispatched. Float64 values survive the JSON round trip exactly
// (shortest-round-trip encoding), which is what keeps fleet output
// byte-identical to in-process output.
type ScenarioResult struct {
	Metrics         world.Metrics               `json:"metrics"`
	Proto           lending.Stats               `json:"proto"`
	Outcomes        []scenario.InjectionOutcome `json:"outcomes,omitempty"`
	FinalReputation map[string]float64          `json:"finalReputation,omitempty"`
	Members         int                         `json:"members"`
}

// ConfigResult is the serializable body of a configured-world replica.
type ConfigResult struct {
	Metrics world.Metrics `json:"metrics"`
	Proto   lending.Stats `json:"proto"`
}

// writeFrame marshals v and writes it as one length-prefixed frame.
func writeFrame(w io.Writer, env *envelope) error {
	payload, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("fleet: encoding %s frame: %w", env.Type, err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("fleet: %s frame of %d bytes exceeds the %d-byte limit", env.Type, len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame and unmarshals it.
func readFrame(r io.Reader) (*envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF at a frame boundary is a clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("fleet: incoming frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("fleet: truncated frame: %w", err)
	}
	env := &envelope{}
	if err := json.Unmarshal(payload, env); err != nil {
		return nil, fmt.Errorf("fleet: decoding frame: %w", err)
	}
	if env.Type == "" {
		return nil, fmt.Errorf("fleet: frame without a type")
	}
	return env, nil
}
