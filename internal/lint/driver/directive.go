package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suppression mechanism. A finding is allowed — acknowledged as a
// deliberate, justified exception to the determinism discipline — by a
// comment of the form
//
//	//replend:allow <analyzer> <reason>
//
// either on the flagged line or on the line immediately above it. The
// reason is mandatory: an allowlist entry without a rationale is itself
// a lint error, and so is one naming an analyzer that does not exist.
// docs/determinism.md states the policy; the fixtures under each
// analyzer's testdata exercise both the suppression and the malformed
// forms.

// directivePrefix introduces an allow directive. The comment must start
// exactly with this (no space after //, mirroring //go: directives).
const directivePrefix = "replend:allow"

// Directives indexes the well-formed allow directives of one package by
// file and line.
type Directives struct {
	// byLine maps file name → line → analyzer names allowed there.
	byLine map[string]map[int][]string
}

// Allows reports whether a diagnostic from the named analyzer at pos is
// covered by a directive on the same line or the line above.
func (d *Directives) Allows(analyzer string, pos token.Position) bool {
	lines := d.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// ParseDirectives scans the files' comments for allow directives. Known
// maps valid analyzer names; malformed directives are returned as
// findings (analyzer "directive") rather than silently ignored.
func ParseDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (*Directives, []Finding) {
	d := &Directives{byLine: map[string]map[int][]string{}}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("%s directive names no analyzer", directivePrefix),
					})
					continue
				case !known[fields[0]]:
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("%s directive names unknown analyzer %q", directivePrefix, fields[0]),
					})
					continue
				case len(fields) < 2:
					bad = append(bad, Finding{
						Analyzer: "directive",
						Pos:      pos,
						Message:  fmt.Sprintf("%s %s directive has no reason; justify the exception", directivePrefix, fields[0]),
					})
					continue
				}
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return d, bad
}
