package experiments

import (
	"strings"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/metrics"
)

// SuccessRate reproduces the §4.1 success-rate comparison (experiment T2
// in DESIGN.md): the proportion of serve/deny decisions taken by
// cooperative peers that are correct, with the introduction requirement on
// versus off. The paper reports ≈96–97% in both configurations and
// concludes "the introducer requirement is compatible with the ROCQ
// reputation management scheme".
type SuccessRate struct {
	WithIntroductions    metrics.Running
	WithoutIntroductions metrics.Running
	// Admission side effects, to show what the equal success rates buy:
	// with lending far fewer uncooperative peers are inside.
	UncoopAdmittedWith    float64
	UncoopAdmittedWithout float64
}

func successRateConfig() config.Config {
	// Table 1 defaults: λ=0.01 over 500 000 ticks.
	return config.Default()
}

// RunSuccessRate executes both configurations.
func RunSuccessRate(opt Options) (*SuccessRate, error) {
	opt = opt.withDefaults()
	out := &SuccessRate{}

	cfgWith := opt.apply(successRateConfig())
	rsWith, err := runReplicas(cfgWith, opt, nil)
	if err != nil {
		return nil, err
	}
	out.WithIntroductions = statOf(rsWith, func(r Replica) float64 { return r.Metrics.SuccessRate() })
	out.UncoopAdmittedWith = meanOf(rsWith, func(r Replica) int64 { return r.Metrics.AdmittedUncoop })

	cfgWithout := opt.apply(successRateConfig())
	cfgWithout.RequireIntroductions = false
	o := opt
	o.SeedBase = sweepSeed(opt.SeedBase, 1)
	// "All nodes were allowed in the system": open admission at the
	// mid-spectrum default.
	rsWithout, err := runReplicas(cfgWithout, o, baseline.MidSpectrum{})
	if err != nil {
		return nil, err
	}
	out.WithoutIntroductions = statOf(rsWithout, func(r Replica) float64 { return r.Metrics.SuccessRate() })
	out.UncoopAdmittedWithout = meanOf(rsWithout, func(r Replica) int64 { return r.Metrics.AdmittedUncoop })
	return out, nil
}

// Name implements Report.
func (s *SuccessRate) Name() string { return "successrate" }

// Table renders the comparison.
func (s *SuccessRate) Table() string {
	t := &TextTable{
		Title:  "§4.1 — decision success rate, with vs without the introduction requirement",
		Header: []string{"configuration", "success rate", "±95% CI", "uncoop admitted"},
	}
	t.AddRow("introductions required", s.WithIntroductions.Mean(), s.WithIntroductions.CI95(), s.UncoopAdmittedWith)
	t.AddRow("open admission", s.WithoutIntroductions.Mean(), s.WithoutIntroductions.CI95(), s.UncoopAdmittedWithout)
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\npaper: ≈96–97% in both configurations — the introducer requirement does not degrade ROCQ\n")
	return b.String()
}

// CSV renders the two rows.
func (s *SuccessRate) CSV() string {
	var b strings.Builder
	b.WriteString("configuration,success_rate,ci95,uncoop_admitted\n")
	b.WriteString(strings.Join([]string{
		"with_introductions",
		fmtF(s.WithIntroductions.Mean()), fmtF(s.WithIntroductions.CI95()), fmtF(s.UncoopAdmittedWith),
	}, ",") + "\n")
	b.WriteString(strings.Join([]string{
		"without_introductions",
		fmtF(s.WithoutIntroductions.Mean()), fmtF(s.WithoutIntroductions.CI95()), fmtF(s.UncoopAdmittedWithout),
	}, ",") + "\n")
	return b.String()
}
