// Package overlay implements the structured overlay the paper assumes:
// "We assume the existence of a structured overlay that uses distributed
// hash tables for routing and for selecting score managers that keep track
// of all feedback pertaining to a peer."
//
// The overlay is a Chord-style ring over the 160-bit identifier space of
// package id. Each node keeps a predecessor pointer, a successor list and a
// 160-entry finger table; lookups route greedily through fingers and are
// guaranteed to terminate via successor pointers. Key k is owned by
// successor(k), the first node clockwise from k.
//
// Score managers for a peer p are the owners of Hash(p ‖ r) for replica
// indices r = 0..numSM-1 — so, exactly as the paper notes, "the score
// managers assigned to a peer change over time" as nodes join, and using
// multiple score managers gives redundancy against that churn.
package overlay

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/id"
)

// SuccessorListLen is the number of successors each node tracks. Chord's
// robustness argument wants Ω(log n); 8 covers the simulated population
// sizes (≤ ~10k nodes) comfortably.
const SuccessorListLen = 8

// Node is one overlay member's routing state. Routing state is repaired
// lazily: a node's pointers are refreshed the first time they are consulted
// after a membership change, which keeps joins and leaves O(log n + n move)
// instead of O(n·log n) — essential because the simulated communities grow
// by thousands of nodes.
type Node struct {
	ID id.ID

	pred       id.ID
	succs      []id.ID        // successor list, nearest first
	fingers    [id.Bits]id.ID // fingers[k] owns ID + 2^k
	repairedAt int64          // membership epoch this state was built against
}

// Pred returns the node's predecessor pointer.
func (n *Node) Pred() id.ID { return n.pred }

// Succ returns the node's immediate successor.
func (n *Node) Succ() id.ID {
	if len(n.succs) == 0 {
		return n.ID
	}
	return n.succs[0]
}

// Successors returns a copy of the node's successor list.
func (n *Node) Successors() []id.ID {
	return append([]id.ID(nil), n.succs...)
}

// Finger returns entry k of the finger table; the ring rebuilds stale
// tables before exposing them.
func (n *Node) Finger(k int) id.ID { return n.fingers[k] }

// Ring is the overlay membership and routing oracle. The simulation is
// single-threaded, so Ring performs maintenance eagerly and
// deterministically instead of running Chord's periodic stabilisation
// protocol; the routing state it maintains per node is exactly what
// stabilisation would converge to.
type Ring struct {
	sorted []id.ID // current members, ascending
	nodes  map[id.ID]*Node
	epoch  int64 // bumped on every membership change

	lookups  int64
	hopTotal int64
}

// Errors returned by Ring operations.
var (
	ErrEmpty     = errors.New("overlay: ring has no members")
	ErrDuplicate = errors.New("overlay: node already in ring")
	ErrNotMember = errors.New("overlay: node not in ring")
)

// NewRing returns an empty overlay.
func NewRing() *Ring {
	return &Ring{nodes: make(map[id.ID]*Node)}
}

// Size returns the number of member nodes.
func (r *Ring) Size() int { return len(r.sorted) }

// Epoch returns the membership epoch, which advances on every join or
// leave. Callers may cache placement decisions keyed by it.
func (r *Ring) Epoch() int64 { return r.epoch }

// Members returns the member identifiers in ascending order (copy).
func (r *Ring) Members() []id.ID {
	return append([]id.ID(nil), r.sorted...)
}

// Contains reports membership.
func (r *Ring) Contains(n id.ID) bool {
	_, ok := r.nodes[n]
	return ok
}

// Node returns the routing state for a member, repaired against the
// current membership, or an error.
func (r *Ring) Node(n id.ID) (*Node, error) {
	node, ok := r.nodes[n]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotMember, n.Short())
	}
	r.repairNode(node)
	return node, nil
}

// Join adds a node to the ring. Routing state of existing nodes is repaired
// lazily the next time it is consulted.
func (r *Ring) Join(n id.ID) error {
	if _, ok := r.nodes[n]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, n.Short())
	}
	i := r.searchIndex(n)
	r.sorted = append(r.sorted, id.ID{})
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = n
	r.epoch++
	r.nodes[n] = &Node{ID: n, repairedAt: r.epoch - 1}
	return nil
}

// Leave removes a node (graceful departure or crash — routing-wise they are
// the same once neighbours repair).
func (r *Ring) Leave(n id.ID) error {
	if _, ok := r.nodes[n]; !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, n.Short())
	}
	i := r.searchIndex(n)
	// searchIndex returns the insertion point; the member is at i.
	r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
	delete(r.nodes, n)
	r.epoch++
	return nil
}

// searchIndex returns the index of n in sorted, or where it would insert.
func (r *Ring) searchIndex(n id.ID) int {
	return sort.Search(len(r.sorted), func(i int) bool {
		return r.sorted[i].Cmp(n) >= 0
	})
}

// repairNode refreshes one node's predecessor, successor list and finger
// table against current membership, if stale. This is the lazy analogue of
// Chord's stabilisation: the state produced is exactly what the periodic
// protocol converges to.
func (r *Ring) repairNode(node *Node) {
	if node.repairedAt == r.epoch {
		return
	}
	n := len(r.sorted)
	i := r.searchIndex(node.ID)
	node.pred = r.sorted[(i-1+n)%n]
	node.succs = node.succs[:0]
	if n == 1 {
		node.succs = append(node.succs, node.ID)
	} else {
		for j := 1; j <= SuccessorListLen; j++ {
			s := r.sorted[(i+j)%n]
			if s == node.ID {
				break // wrapped all the way around a small ring
			}
			node.succs = append(node.succs, s)
		}
	}
	for k := 0; k < id.Bits; k++ {
		node.fingers[k] = r.successorID(node.ID.AddPow2(k))
	}
	node.repairedAt = r.epoch
}

// successorID returns the owner of key: the first member clockwise from it.
func (r *Ring) successorID(key id.ID) id.ID {
	if len(r.sorted) == 0 {
		panic("overlay: successorID on empty ring")
	}
	i := r.searchIndex(key)
	if i == len(r.sorted) {
		i = 0
	}
	return r.sorted[i]
}

// Successor returns the node owning key, per the ring oracle (no routing).
func (r *Ring) Successor(key id.ID) (id.ID, error) {
	if len(r.sorted) == 0 {
		return id.ID{}, ErrEmpty
	}
	return r.successorID(key), nil
}

// Lookup routes from the given start member to the owner of key the way a
// real Chord node would: greedy closest-preceding-finger steps, with the
// successor pointer as the final (and fallback) hop. It returns the owner
// and the number of hops taken, and records them in the ring's routing
// statistics.
func (r *Ring) Lookup(from, key id.ID) (owner id.ID, hops int, err error) {
	if len(r.sorted) == 0 {
		return id.ID{}, 0, ErrEmpty
	}
	cur, ok := r.nodes[from]
	if !ok {
		return id.ID{}, 0, fmt.Errorf("%w: lookup from %s", ErrNotMember, from.Short())
	}
	for {
		r.repairNode(cur)
		// Key owned by cur's immediate successor?
		succ := cur.Succ()
		if key.BetweenRightIncl(cur.ID, succ) {
			r.lookups++
			r.hopTotal += int64(hops + 1)
			return succ, hops + 1, nil
		}
		next := r.closestPreceding(cur, key)
		if next == cur.ID {
			// Fingers degenerate (tiny ring): fall through to successor.
			next = succ
		}
		cur = r.nodes[next]
		hops++
		if hops > len(r.sorted)+id.Bits {
			return id.ID{}, hops, fmt.Errorf("overlay: lookup for %s did not converge", key.Short())
		}
	}
}

// closestPreceding returns the finger of n most closely preceding key,
// Chord's routing step.
func (n *Node) closestPrecedingFinger(key id.ID) id.ID {
	for k := id.Bits - 1; k >= 0; k-- {
		f := n.fingers[k]
		if !f.IsZero() && f.Between(n.ID, key) {
			return f
		}
	}
	return n.ID
}

func (r *Ring) closestPreceding(n *Node, key id.ID) id.ID {
	f := n.closestPrecedingFinger(key)
	// A finger may point at a departed node if tables were rebuilt before a
	// later departure; validate against membership and fall back along the
	// successor list like real Chord does.
	if _, ok := r.nodes[f]; ok {
		return f
	}
	for _, s := range n.succs {
		if _, ok := r.nodes[s]; ok && s.Between(n.ID, key) {
			return s
		}
	}
	return n.ID
}

// ScoreManagers returns the numSM owners of the peer's replica keys —
// the nodes that hold feedback about it. The peer itself is excluded when
// the ring has enough other members (a peer must not manage its own
// reputation); the replica index keeps advancing until numSM distinct
// managers are found.
func (r *Ring) ScoreManagers(peer id.ID, numSM int) ([]id.ID, error) {
	if numSM <= 0 {
		return nil, fmt.Errorf("overlay: numSM must be positive, got %d", numSM)
	}
	if len(r.sorted) == 0 {
		return nil, ErrEmpty
	}
	managers := make([]id.ID, 0, numSM)
	seen := make(map[id.ID]bool, numSM)
	othersAvailable := len(r.sorted) > 1 || !r.Contains(peer)
	maxReplica := numSM * 8 // generous: hash collisions across replicas are rare
	for rep := 0; rep < maxReplica && len(managers) < numSM; rep++ {
		owner := r.successorID(peer.Replica(rep))
		if owner == peer {
			if !othersAvailable {
				// Single-member ring: the peer must self-manage.
				if !seen[owner] {
					seen[owner] = true
					managers = append(managers, owner)
				}
				continue
			}
			// A peer must not manage its own reputation: walk clockwise to
			// the next member, like replica placement past a responsible
			// node in a real DHT.
			i := r.searchIndex(owner)
			owner = r.sorted[(i+1)%len(r.sorted)]
		}
		if !seen[owner] {
			seen[owner] = true
			managers = append(managers, owner)
		}
	}
	// A ring smaller than numSM cannot supply numSM distinct managers;
	// cycle over the distinct ones found so callers always get numSM slots.
	distinct := len(managers)
	for i := 0; len(managers) < numSM; i++ {
		managers = append(managers, managers[i%distinct])
	}
	return managers, nil
}

// RoutingStats reports the number of lookups performed and the mean hop
// count, for the DHT-behaviour tests and reports.
func (r *Ring) RoutingStats() (lookups int64, meanHops float64) {
	if r.lookups == 0 {
		return 0, 0
	}
	return r.lookups, float64(r.hopTotal) / float64(r.lookups)
}
