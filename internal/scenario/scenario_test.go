package scenario

import (
	"strings"
	"testing"

	"repro/internal/config"
)

// minimalSpec returns a tiny valid scenario for mutation in tests.
func minimalSpec() *Spec {
	base := config.Default()
	base.NumInit = 30
	base.NumTrans = 3_000
	base.Lambda = 0
	base.WaitPeriod = 100
	base.Seed = 3
	return &Spec{Name: "tiny", Base: base}
}

func TestLoadAppliesDefaultsAndValidates(t *testing.T) {
	s, err := Load([]byte(`{"name": "mini", "base": {"numInit": 25, "numTrans": 2000, "seed": 4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Base.NumInit != 25 || s.Base.NumTrans != 2000 || s.Base.Seed != 4 {
		t.Fatalf("explicit fields lost: %+v", s.Base)
	}
	def := config.Default()
	if s.Base.Lambda != def.Lambda || s.Base.WaitPeriod != def.WaitPeriod || s.Base.Topology != def.Topology {
		t.Fatalf("absent fields did not default: %+v", s.Base)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"syntax", `{"name": `, "parsing"},
		{"unknown top-level field", `{"name": "x", "phasez": []}`, "phasez"},
		{"unknown base field", `{"name": "x", "base": {"lamda": 0.1}}`, "lamda"},
		{"missing name", `{"base": {"numInit": 10}}`, "missing name"},
		{"invalid base", `{"name": "x", "base": {"numSM": 0}}`, "NumSM"},
		{"phase before schedule cursor",
			`{"name": "x", "base": {"numTrans": 9000}, "phases": [
			   {"at": 100, "inject": [{"class": "uncooperative", "count": 3, "spacedBy": 500, "introducer": {}}]},
			   {"at": 200, "set": {"lambda": 0.1}}]}`,
			"already at tick"},
		{"phases past run length",
			`{"name": "x", "base": {"numTrans": 1000}, "phases": [
			   {"at": 900, "inject": [{"class": "uncooperative", "count": 5, "spacedBy": 100, "introducer": {}}]}]}`,
			"past the run length"},
		{"empty phase", `{"name": "x", "phases": [{"at": 10}]}`, "no actions"},
		{"empty set delta", `{"name": "x", "phases": [{"at": 10, "set": {}}]}`, "empty set delta"},
		{"invalid delta",
			`{"name": "x", "phases": [{"at": 10, "set": {"fracUncoop": 2}}]}`, "FracUncoop"},
		{"cumulative delta conflict",
			`{"name": "x", "phases": [
			   {"at": 10, "set": {"minIntroRep": 0.2}},
			   {"at": 20, "set": {"introAmt": 0.3}}]}`,
			"MinIntroRep"},
		{"bad class", `{"name": "x", "phases": [{"at": 10, "inject": [{"class": "evil", "introducer": {}}]}]}`, "unknown class"},
		{"bad style", `{"name": "x", "phases": [{"at": 10, "inject": [{"class": "cooperative", "style": "chatty", "introducer": {}}]}]}`, "unknown style"},
		{"selective freerider",
			`{"name": "x", "phases": [{"at": 10, "inject": [{"class": "uncooperative", "style": "selective", "introducer": {}}]}]}`,
			"always naive"},
		{"uncooperative traitor",
			`{"name": "x", "phases": [{"at": 10, "inject": [{"class": "uncooperative", "defectAfter": 5, "introducer": {}}]}]}`,
			"must start cooperative"},
		{"unbound ref",
			`{"name": "x", "phases": [{"at": 10, "inject": [{"class": "cooperative", "introducer": {"ref": "ghost"}}]}]}`,
			`ref "ghost"`},
		{"ref mixed with scan",
			`{"name": "x", "phases": [
			   {"at": 5, "inject": [{"as": "m", "class": "cooperative", "introducer": {}}]},
			   {"at": 10, "inject": [{"class": "cooperative", "introducer": {"ref": "m", "style": "naive"}}]}]}`,
			"cannot combine"},
		{"duplicate label",
			`{"name": "x", "phases": [
			   {"at": 5, "inject": [{"as": "m", "class": "cooperative", "introducer": {}}]},
			   {"at": 10, "inject": [{"as": "m", "class": "cooperative", "introducer": {}}]}]}`,
			"duplicate label"},
		{"crash fraction", `{"name": "x", "phases": [{"at": 10, "crash": {"scoreManagersOf": {}, "fraction": 1.5}}]}`, "out of [0,1]"},
		{"bad minRep", `{"name": "x", "phases": [{"at": 10, "inject": [{"class": "cooperative", "introducer": {"minRep": 1}}]}]}`, "minRep"},
		{"bad output series", `{"name": "x", "output": {"series": ["latency"]}}`, "unknown output series"},
		{"unknown workload field",
			`{"name": "x", "base": {"workload": {"cadence": 3}}}`, "cadence"},
		{"workload rate and trace conflict",
			`{"name": "x", "base": {"workload": {
			   "rate": {"windows": [{"len": 100, "lambda": 0.1}]},
			   "trace": [{"at": 1, "op": "arrival"}]}}}`,
			"mutually exclusive"},
		{"nameless cohort",
			`{"name": "x", "base": {"workload": {"cohorts": [{"weight": 1}]}}}`,
			"cohort needs a name"},
		{"empty rate program",
			`{"name": "x", "base": {"workload": {"rate": {"windows": []}}}}`,
			"at least one window"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load([]byte(tc.in))
			if err == nil {
				t.Fatalf("accepted: %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRegistryListsAndBuildsFreshSpecs(t *testing.T) {
	names := Names()
	for _, want := range []string{"quickstart", "churn", "collusion", "filesharing", "api", "churn-wave", "traitor"} {
		found := false
		for _, n := range names {
			found = found || n == want
		}
		if !found {
			t.Errorf("built-in %q not registered (have %v)", want, names)
		}
	}
	a, err := Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	a.Base.Seed = 12345
	if b.Base.Seed == 12345 || a == b {
		t.Fatal("Get returned a shared spec; mutations leak between callers")
	}
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario: %v", err)
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	if err := Register("quickstart", minimalSpec); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("", minimalSpec); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("nil-builder", nil); err == nil {
		t.Fatal("nil builder accepted")
	}
}

// TestChurnWaveDeltasTakeEffect runs the delta-showcase built-in and
// checks the wave actually changed the arrival process: the population
// grows much faster during the hot window than in the calm ones.
func TestChurnWaveDeltasTakeEffect(t *testing.T) {
	spec, err := Get("churn-wave")
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.StepPhase(); err != nil { // wave hits at 10000
		t.Fatal(err)
	}
	calm := r.World().Metrics().ArrivalsCoop + r.World().Metrics().ArrivalsUncoop
	if lam := r.World().Config().Lambda; lam != 0.2 {
		t.Fatalf("λ after wave-hits phase: %v", lam)
	}
	if _, err := r.StepPhase(); err != nil { // wave passes at 20000
		t.Fatal(err)
	}
	hot := r.World().Metrics().ArrivalsCoop + r.World().Metrics().ArrivalsUncoop - calm
	res, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tail := res.Metrics.ArrivalsCoop + res.Metrics.ArrivalsUncoop - hot - calm
	// Expected arrivals: calm ≈ 0.02×10000 = 200, hot ≈ 0.2×10000 = 2000.
	if hot < 4*calm || hot < 4*tail {
		t.Fatalf("wave did not spike arrivals: calm=%d hot=%d tail=%d", calm, hot, tail)
	}
	if res.Spec.Base.Lambda != 0.02 {
		t.Fatalf("spec mutated by run: λ=%v", res.Spec.Base.Lambda)
	}
}

// TestTraitorScenarioDefectsAndCollapses runs the traitor built-in and
// checks the milkers passed audits and then lost their standing.
func TestTraitorScenarioDefectsAndCollapses(t *testing.T) {
	spec, err := Get("traitor")
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.AuditsSatisfied == 0 {
		t.Fatal("no audits satisfied: traitors never passed as honest")
	}
	// The experiments package calls a traitor "collapsed" once its
	// reputation falls below 0.5 (it entered holding ~1.0).
	for label, rep := range res.FinalReputation {
		if rep >= 0.5 {
			t.Errorf("%s still holds reputation %.3f after defecting", label, rep)
		}
	}
	if len(res.FinalReputation) != 3 {
		t.Fatalf("expected 3 labelled traitors, got %v", res.FinalReputation)
	}
}

func TestRunResultCSVAndSummary(t *testing.T) {
	s := minimalSpec()
	s.Output.Series = []string{"coop-reputation"}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	csv, err := res.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv, "t,coop-reputation\n") {
		t.Fatalf("csv header: %q", csv[:30])
	}
	if strings.Count(csv, "\n") < 2 {
		t.Fatal("csv has no data rows")
	}
	sum := res.Summary()
	for _, want := range []string{"scenario \"tiny\"", "population:", "success rate:"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestStepPhaseRejectsOverrunClock(t *testing.T) {
	s := minimalSpec()
	s.Phases = []Phase{{Name: "late", At: 100, Inject: []Injection{{
		Class: "cooperative", Introducer: Selector{},
	}}}}
	r, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	r.World().RunFor(500) // driver overshoots the phase tick
	if _, err := r.StepPhase(); err == nil || !strings.Contains(err.Error(), "already at") {
		t.Fatalf("overrun clock not caught: %v", err)
	}
}

func TestSelectorFailsWithoutMatchUnlessFallback(t *testing.T) {
	s := minimalSpec()
	s.Base.FracNaive = 0 // founders are all selective
	s.Phases = []Phase{{At: 10, Inject: []Injection{{
		Class: "cooperative", Introducer: Selector{Style: "naive"},
	}}}}
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "no member matches") {
		t.Fatalf("matchless selector: %v", err)
	}
	s.Phases[0].Inject[0].Introducer.FallbackFirst = true
	if _, err := s.Run(); err != nil {
		t.Fatalf("fallback selector failed: %v", err)
	}
}

// TestDescribeShowsFullEffectiveConfig pins the describe fix: the
// churn, session and stake fields added in later PRs must appear, so
// documentation examples can be generated from the tool without rotting.
func TestDescribeShowsFullEffectiveConfig(t *testing.T) {
	get := func(name string) string {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		return s.Describe()
	}
	stake := get("stake-churn")
	for _, want := range []string{"μ=0.008", "audit timeout 12000", "35% rejoin", "auditTrans 10", "sampling: every 2500"} {
		if !strings.Contains(stake, want) {
			t.Errorf("stake-churn describe missing %q:\n%s", want, stake)
		}
	}
	heavy := get("churn-heavytail")
	if !strings.Contains(heavy, "session clocks pareto(mean 50000)") {
		t.Errorf("churn-heavytail describe missing the session model:\n%s", heavy)
	}
	plain := get("collusion")
	for _, want := range []string{"churn: none", "stakes: no timeout", "workload: homogeneous Poisson arrivals"} {
		if !strings.Contains(plain, want) {
			t.Errorf("collusion describe missing %q:\n%s", want, plain)
		}
	}
	diurnal := get("diurnal")
	if !strings.Contains(diurnal, "workload rate: 4 windows repeating every 30000 ticks, peak λ=0.15, 1 spike(s); config λ ignored") {
		t.Errorf("diurnal describe missing the rate program:\n%s", diurnal)
	}
	mix := get("cohort-mix")
	if !strings.Contains(mix, "workload cohorts: resident 20%, mobile-churner 50%, freeloader 30%") {
		t.Errorf("cohort-mix describe missing the cohort mix:\n%s", mix)
	}
}
