package world

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/rng"
	"repro/internal/trace"
)

func churnTestConfig() config.Config {
	c := config.Default()
	c.NumInit = 40
	c.NumTrans = 1_000_000 // upper bound; the tests drive the clock
	c.Lambda = 0.02
	c.WaitPeriod = 200
	c.SampleEvery = 500
	c.Seed = 7
	c.Churn.Migrate = true
	return c
}

// replicationOf counts the distinct current score managers of pid whose
// stores hold pid's record, and the distinct manager count itself.
func replicationOf(t *testing.T, w *World, pid id.ID) (known, managers int) {
	t.Helper()
	sms, err := w.ring.ScoreManagers(pid, w.cfg.NumSM)
	if err != nil {
		t.Fatalf("placement for %s: %v", pid.Short(), err)
	}
	var seen []id.ID
	for _, m := range sms {
		if id.Contains(seen, m) {
			continue
		}
		seen = append(seen, m)
		managers++
		if st, ok := w.storeAt(m); ok && st.Known(pid) {
			known++
		}
	}
	return known, managers
}

// TestChurnConservesOpinionMass is the churn ledger property: across a
// randomized sequence of departures, crashes, batch replica-crashes,
// rejoins and ordinary workload ticks, every tracked peer's reputation
// record stays fully replicated on its *current* score-manager set —
// state migration repairs every arc change — except for peers whose
// entire replica set died in a single event, each of which is recorded
// in the wipeout counter. Opinion mass (the ledger of live replica
// records) is conserved modulo exactly those counted wipeouts.
func TestChurnConservesOpinionMass(t *testing.T) {
	c := churnTestConfig()
	// Record leases run alongside: an eviction finalises an offline peer
	// exactly like a wipeout finalises a record, dropping it from the
	// tracked set, so the ledger must balance with both active.
	c.Churn.LeaseTTL = 1_500
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	if err := w.RunFor(2_000); err != nil {
		t.Fatal(err)
	}

	src := rng.New(42)
	randomAdmitted := func() *peer.Peer {
		return w.admittedPeers[src.Intn(len(w.admittedPeers))]
	}
	wipeoutsSeen := w.m.Churn.Wipeouts
	leasesSeen := w.m.Churn.LeaseEvictions

	check := func(step int) {
		t.Helper()
		tracked := make([]id.ID, 0, len(w.admittedPeers))
		for _, p := range w.admittedPeers {
			tracked = append(tracked, p.ID)
		}
		tracked = append(tracked, w.DepartedPeers()...)
		for _, pid := range tracked {
			if w.WipedOut(pid) {
				continue // the counted exception: every replica died at once
			}
			known, managers := replicationOf(t, w, pid)
			if known != managers {
				t.Fatalf("step %d: peer %s replicated on %d of %d current managers (mass lost without a wipeout)",
					step, pid.Short(), known, managers)
			}
		}
		if w.m.Churn.Wipeouts < wipeoutsSeen {
			t.Fatalf("step %d: wipeout counter went backwards", step)
		}
		wipeoutsSeen = w.m.Churn.Wipeouts
		if w.m.Churn.LeaseEvictions < leasesSeen {
			t.Fatalf("step %d: lease-eviction counter went backwards", step)
		}
		leasesSeen = w.m.Churn.LeaseEvictions
	}

	for step := 0; step < 250; step++ {
		switch op := src.Intn(10); {
		case op < 4: // ordinary workload: transactions, arrivals, reports
			if err := w.RunFor(50); err != nil {
				t.Fatal(err)
			}
		case op < 6: // graceful departure
			if len(w.admittedPeers) > w.minPopulation() {
				if err := w.Depart(randomAdmitted().ID); err != nil {
					t.Fatal(err)
				}
			}
		case op < 8: // abrupt crash
			if len(w.admittedPeers) > w.minPopulation() {
				if err := w.Crash(randomAdmitted().ID); err != nil {
					t.Fatal(err)
				}
			}
		case op < 9: // batch crash of one peer's whole replica set
			if len(w.admittedPeers) > w.minPopulation()+w.cfg.NumSM {
				target := randomAdmitted().ID
				var victims []id.ID
				for _, m := range w.ScoreManagers(target) {
					if !id.Contains(victims, m) && w.IsAdmitted(m) && m != target {
						victims = append(victims, m)
					}
				}
				if len(victims) > 0 {
					if err := w.DepartBatch(victims, false); err != nil {
						t.Fatal(err)
					}
				}
			}
		default: // rejoin someone
			if offline := w.DepartedPeers(); len(offline) > 0 {
				if err := w.Rejoin(offline[src.Intn(len(offline))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		check(step)
		if w.Err() != nil {
			t.Fatalf("step %d: world failed: %v", step, w.Err())
		}
	}
	if wipeoutsSeen == 0 {
		t.Fatal("the batch replica-crash op never produced a wipeout; the property was not exercised")
	}
	if w.m.Churn.Migrated == 0 {
		t.Fatal("no records migrated; the handoff protocol was not exercised")
	}
	if w.m.Churn.LeaseEvictions == 0 {
		t.Fatal("no record leases expired; the eviction path was not exercised")
	}
}

// TestRejoinRestoresReputation pins the headline lifecycle promise: a
// departed peer's reputation is held by its (migrating) score managers
// and resumes exactly on rejoin, even across membership changes during
// the downtime.
func TestRejoinRestoresReputation(t *testing.T) {
	w, err := New(churnTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	if err := w.RunFor(3_000); err != nil {
		t.Fatal(err)
	}
	victim := w.admittedPeers[0]
	before := w.Reputation(victim.ID)
	if before <= 0 {
		t.Fatal("victim has no reputation to preserve")
	}
	if err := w.Depart(victim.ID); err != nil {
		t.Fatal(err)
	}
	if w.IsAdmitted(victim.ID) || !w.IsDeparted(victim.ID) {
		t.Fatal("departure did not detach the peer")
	}
	// Churn the victim's managers while it is offline: its records must
	// ride the migrations.
	for i := 0; i < 3; i++ {
		sms, err := w.ring.ScoreManagers(victim.ID, w.cfg.NumSM)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range sms {
			if w.IsAdmitted(m) && len(w.admittedPeers) > w.minPopulation() {
				if err := w.Depart(m); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	after := w.Reputation(victim.ID)
	if math.Abs(after-before) > 0.05 {
		t.Fatalf("offline reputation drifted from %v to %v under manager churn", before, after)
	}
	if err := w.Rejoin(victim.ID); err != nil {
		t.Fatal(err)
	}
	if !w.IsAdmitted(victim.ID) || w.IsDeparted(victim.ID) {
		t.Fatal("rejoin did not readmit the peer")
	}
	if got := w.Reputation(victim.ID); got != after {
		t.Fatalf("rejoin changed the reputation from %v to %v (must resume, not reset)", after, got)
	}
	// The peer transacts again and its standing keeps evolving.
	if err := w.RunFor(2_000); err != nil {
		t.Fatal(err)
	}
}

// TestDepartureLifecycleErrors pins the API contract of the lifecycle
// calls.
func TestDepartureLifecycleErrors(t *testing.T) {
	w, err := New(churnTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ghost := id.HashString("nobody")
	if err := w.Depart(ghost); err == nil {
		t.Fatal("departing a non-member must fail")
	}
	if err := w.Rejoin(ghost); err == nil {
		t.Fatal("rejoining a never-departed peer must fail")
	}
	pid := w.admittedPeers[0].ID
	if err := w.DepartBatch([]id.ID{pid, pid}, true); err == nil {
		t.Fatal("duplicate departure in one batch must fail")
	}
	if err := w.Depart(pid); err != nil {
		t.Fatal(err)
	}
	if err := w.Depart(pid); err == nil {
		t.Fatal("departing a departed peer must fail")
	}
	if err := w.Rejoin(pid); err != nil {
		t.Fatal(err)
	}
	if err := w.Rejoin(pid); err == nil {
		t.Fatal("rejoining an admitted peer must fail")
	}
}

// TestDepartureClockDrivesChurn runs the Poisson departure clock with
// rejoins end to end and checks the lifecycle counters and the
// population floor.
func TestDepartureClockDrivesChurn(t *testing.T) {
	c := churnTestConfig()
	c.Lambda = 0.01
	c.Churn.Mu = 0.05
	c.Churn.CrashFrac = 0.3
	c.Churn.RejoinProb = 0.5
	c.Churn.DowntimeMean = 300
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(20_000); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.Departures == 0 || m.Churn.Crashes == 0 {
		t.Fatalf("departure clock idle: %+v", m.Churn)
	}
	if m.Churn.Rejoins == 0 {
		t.Fatalf("no rejoins despite RejoinProb=0.5: %+v", m.Churn)
	}
	if got := w.PopulationSize(); got < w.minPopulation() {
		t.Fatalf("population %d fell below the floor %d", got, w.minPopulation())
	}
	if got, want := w.PopulationSize(), len(w.AdmittedPeers()); got != want {
		t.Fatalf("population bookkeeping diverged: %d vs %d", got, want)
	}
	if w.topo.Len() != w.PopulationSize() {
		t.Fatalf("topology tracks %d peers, population is %d", w.topo.Len(), w.PopulationSize())
	}
}

// TestApplyDeltaMuStartsAndStopsDepartures mirrors the λ delta test for
// the departure clock.
func TestApplyDeltaMuStartsAndStopsDepartures(t *testing.T) {
	c := churnTestConfig()
	c.Lambda = 0
	c.Churn.Migrate = true
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(3_000); err != nil {
		t.Fatal(err)
	}
	if got := w.Metrics().Churn.Departures + w.Metrics().Churn.Crashes; got != 0 {
		t.Fatalf("churn before any delta: %d departures", got)
	}
	mu := 0.05
	if err := w.ApplyDelta(Delta{Mu: &mu}); err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(3_000); err != nil {
		t.Fatal(err)
	}
	after := w.Metrics().Churn.Departures + w.Metrics().Churn.Crashes
	if after == 0 {
		t.Fatal("Mu delta did not start the departure clock")
	}
	zero := 0.0
	if err := w.ApplyDelta(Delta{Mu: &zero}); err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(3_000); err != nil {
		t.Fatal(err)
	}
	if got := w.Metrics().Churn.Departures + w.Metrics().Churn.Crashes; got != after {
		t.Fatalf("departures kept firing after Mu=0: %d -> %d", after, got)
	}
}

// TestSessionClockDepartsFounders runs the session-length model: every
// admission arms a session clock, so even a closed community churns.
func TestSessionClockDepartsFounders(t *testing.T) {
	c := churnTestConfig()
	c.Lambda = 0
	c.Churn.SessionMean = 2_000
	c.Churn.SessionDist = "pareto"
	c.Churn.RejoinProb = 1
	c.Churn.DowntimeMean = 500
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(10_000); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.Departures+m.Churn.Crashes == 0 {
		t.Fatal("session clocks never fired")
	}
	if m.Churn.Rejoins == 0 {
		t.Fatal("no rejoins despite RejoinProb=1")
	}
}

// TestNullSignWorldRuns pins the null-signer opt-out end to end: a whole
// churning run admits peers and migrates records without a single real
// Ed25519 operation, stays deterministic, and — the documented
// guarantee — produces metrics identical to the signed run of the same
// configuration (signing changes cost, never outcomes).
func TestNullSignWorldRuns(t *testing.T) {
	c := churnTestConfig()
	c.NumTrans = 12_000
	c.Churn.Mu = 0.02
	c.Churn.RejoinProb = 0.5
	c.Churn.DowntimeMean = 500
	run := func(nullSign bool) Metrics {
		cfg := c
		cfg.NullSign = nullSign
		w, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Run(); err != nil {
			t.Fatal(err)
		}
		return *w.Metrics()
	}
	a := run(true)
	if a.AdmittedCoop == 0 {
		t.Fatal("null-sign world admitted nobody")
	}
	if a.Churn.Departures+a.Churn.Crashes == 0 {
		t.Fatal("null-sign world never churned")
	}
	b := run(true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("null-sign runs diverged:\n%+v\n%+v", a.Churn, b.Churn)
	}
	signed := run(false)
	if !reflect.DeepEqual(a, signed) {
		t.Fatalf("null-sign run diverged from the signed run of the same config:\nnull   %+v\nsigned %+v",
			a.Churn, signed.Churn)
	}
}

// TestPermanentDeparturesDoNotAccrete is the churn leak regression: a
// process departure that draws no rejoin is final, so neither the
// world's departed table nor (under null signing) the protocol's
// tombstone table may grow with it, its reputation records must not
// keep riding migrations, and — with the stake clock armed — its stake
// record must fall to the TTL instead of accreting one per departed
// newcomer.
func TestPermanentDeparturesDoNotAccrete(t *testing.T) {
	c := churnTestConfig()
	c.NullSign = true
	c.NumTrans = 15_000
	c.Churn.Mu = 0.05
	c.Churn.RejoinProb = 0 // every process departure is permanent
	c.StakeTimeout = 2_000 // stake records of offline peers expire under this TTL
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.Departures+m.Churn.Crashes < 100 {
		t.Fatalf("leak regression needs real churn, got %+v", m.Churn)
	}
	if got := len(w.DepartedPeers()); got != 0 {
		t.Fatalf("%d permanently departed peers retained for rejoin", got)
	}
	if got := w.Protocol().Tombstones(); got != 0 {
		t.Fatalf("%d tombstones retained under null signing", got)
	}
	// Departed peers' records were dropped: total present slots track the
	// live population (numSM replicas each) plus bounded orphan slack,
	// not the cumulative departure count.
	slots := 0
	for ord := range w.slots {
		if st := w.slots[ord].store; st != nil {
			slots += st.Subjects()
		}
	}
	if max := (w.PopulationSize() + int(m.Pending)) * c.NumSM * 2; slots > max {
		t.Fatalf("stores hold %d present slots for %d live peers (departed records accreting)",
			slots, w.PopulationSize())
	}
	// Stake records under the TTL: one per live introduced member, plus
	// at most the departures of the trailing TTL window whose expiry has
	// not fired yet — never the cumulative departure count.
	if m.Churn.StakesExpired == 0 {
		t.Fatalf("no stake records expired despite permanent churn: %+v", m.Churn)
	}
	ttlWindow := int(float64(c.StakeTimeout)*c.Churn.Mu) + 1 // E[departures per TTL]
	if got, max := w.Protocol().StakeRecords(), w.PopulationSize()+int(m.Pending)+4*ttlWindow; got > max {
		t.Fatalf("%d stake records for %d live peers (TTL window %d): departed newcomers' stakes accreting",
			got, w.PopulationSize(), ttlWindow)
	}
	// With every departure permanent the arena must recycle slots: assigned
	// ordinals track the live population (plus wiped markers), not the
	// cumulative arrival count.
	arenaLive, _ := w.ArenaSlots()
	if max := (w.PopulationSize()+int(m.Pending))*2 + int(m.Churn.Wipeouts); arenaLive > max {
		t.Fatalf("arena holds %d assigned slots for %d live peers (slots of departed peers accreting)",
			arenaLive, w.PopulationSize())
	}
}

// TestLeaseEvictionsDropStaleRecords runs the record lease end to end:
// under churn whose downtime mostly outlasts the TTL, offline peers'
// records are evicted instead of riding migrations forever. Evicted
// peers lose rejoin eligibility for good, short downtimes still rejoin,
// and a world without the lease evicts nothing.
func TestLeaseEvictionsDropStaleRecords(t *testing.T) {
	c := churnTestConfig()
	c.NumTrans = 15_000
	c.Churn.Mu = 0.05
	c.Churn.RejoinProb = 1.0
	c.Churn.DowntimeMean = 4_000 // most downtimes outlast the lease
	c.Churn.LeaseTTL = 600
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Log{}
	w.SetTrace(tr)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.LeaseEvictions == 0 {
		t.Fatalf("no leases evicted despite long downtimes: %+v", m.Churn)
	}
	if m.Churn.Rejoins == 0 {
		t.Fatalf("no rejoins beat the lease; both outcomes must be exercised: %+v", m.Churn)
	}
	if got := tr.Count(trace.LeaseEvicted); got != m.Churn.LeaseEvictions {
		t.Fatalf("trace recorded %d lease evictions, counter says %d", got, m.Churn.LeaseEvictions)
	}
	// Every eviction finalised its peer: whoever is still departed is
	// inside the TTL window (plus events not yet fired), never the
	// cumulative count of peers whose downtime ran long.
	ttlWindow := int(float64(c.Churn.LeaseTTL)*c.Churn.Mu) + 1
	if got, max := len(w.DepartedPeers()), 4*ttlWindow+4; got > max {
		t.Fatalf("%d peers still rejoin-eligible (TTL window %d): evictions are not finalising", got, ttlWindow)
	}
	// Evicted records are gone from every store: present slots track the
	// live population, not the eviction count.
	slots := 0
	for ord := range w.slots {
		if st := w.slots[ord].store; st != nil {
			slots += st.Subjects()
		}
	}
	if max := (w.PopulationSize() + int(m.Pending) + len(w.DepartedPeers())) * c.NumSM * 2; slots > max {
		t.Fatalf("stores hold %d present slots for %d live peers (evicted records accreting)",
			slots, w.PopulationSize())
	}
	// The zero TTL keeps today's semantics: no evictions, ever.
	c2 := churnTestConfig()
	c2.NumTrans = 5_000
	c2.Churn.Mu = 0.05
	c2.Churn.RejoinProb = 1.0
	c2.Churn.DowntimeMean = 4_000
	w2, err := New(c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := w2.Metrics().Churn.LeaseEvictions; got != 0 {
		t.Fatalf("world without a lease evicted %d records", got)
	}
}

// TestStakeClockLifecycleWorld runs the stake timeout end to end on a
// churning world: stakes of orphaned introductions refund, offline
// records expire, the ledger conserves, and a world without the clock
// counts nothing.
func TestStakeClockLifecycleWorld(t *testing.T) {
	c := churnTestConfig()
	c.NumTrans = 15_000
	c.Churn.Mu = 0.04
	c.Churn.CrashFrac = 0.3
	c.Churn.RejoinProb = 0.3
	c.Churn.DowntimeMean = 1_000
	c.StakeTimeout = 2_500
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.StakesRefunded == 0 {
		t.Fatalf("no stakes refunded under churn: %+v", m.Churn)
	}
	if m.Churn.StakesExpired == 0 {
		t.Fatalf("no stake records expired under churn: %+v", m.Churn)
	}
	ps := w.Protocol().Stats()
	if ps.StakedMass <= 0 {
		t.Fatal("nothing staked")
	}
	if diff := ps.StakedMass - (ps.SettledMass + ps.RefundedMass + ps.StrandedMass + ps.PendingMass); math.Abs(diff) > 1e-6 {
		t.Fatalf("stake mass not conserved: %+v (off by %v)", ps, diff)
	}

	// The control: the same world without the clock counts no stake
	// lifecycle activity at all.
	c.StakeTimeout = 0
	w0, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w0.Run(); err != nil {
		t.Fatal(err)
	}
	if ch := w0.Metrics().Churn; ch.StakesRefunded != 0 || ch.StakesExpired != 0 {
		t.Fatalf("timeout-disabled world ran the stake clock: %+v", ch)
	}
	if ps0 := w0.Protocol().Stats(); ps0.RefundedMass != 0 {
		t.Fatalf("timeout-disabled world refunded mass: %+v", ps0)
	}
}

// TestIncrementalSamplingMatchesFullWalk pins the dirty-tracked mean
// against the definitionally correct full walk at every sample point of
// a churning run.
func TestIncrementalSamplingMatchesFullWalk(t *testing.T) {
	c := churnTestConfig()
	c.NumTrans = 8_000
	c.Churn.Mu = 0.03
	c.Churn.CrashFrac = 0.3
	c.Churn.RejoinProb = 0.5
	c.Churn.DowntimeMean = 400
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	for tick := int64(0); tick < c.NumTrans; tick += c.SampleEvery {
		if err := w.RunFor(500); err != nil {
			t.Fatal(err)
		}
		w.flushDirtyRep()
		sum, n := 0.0, 0
		for _, p := range w.admittedPeers {
			if p.Class != peer.Cooperative {
				continue
			}
			sum += w.Reputation(p.ID)
			n++
		}
		mean := 0.0
		if n > 0 {
			mean = sum / float64(n)
		}
		incr := 0.0
		if w.m.CoopInSystem > 0 {
			incr = w.repSum / float64(w.m.CoopInSystem)
		}
		if int64(n) != w.m.CoopInSystem {
			t.Fatalf("tick %d: coop count %d, incremental tracker says %d", tick, n, w.m.CoopInSystem)
		}
		if math.Abs(mean-incr) > 1e-9 {
			t.Fatalf("tick %d: incremental mean %v, full walk %v", tick, incr, mean)
		}
	}
}
