package main

// CLI-level pins for the observability contract: a run with -telemetry
// and -progress attached produces byte-identical results to a bare run —
// on the flag path, the scenario path, across a checkpoint resume, and
// through a real process fleet.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// readFile is a fatal-on-error os.ReadFile for the byte-identity tests.
func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// checkJSONL asserts the telemetry file is non-empty JSONL where every
// line is a tagged event or sample record.
func checkJSONL(t *testing.T, path string) {
	t.Helper()
	data := readFile(t, path)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("telemetry file %s is empty", path)
	}
	for i, line := range lines {
		var rec struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("telemetry line %d is not JSON: %v\n%s", i+1, err, line)
		}
		if rec.T != "event" && rec.T != "sample" {
			t.Fatalf("telemetry line %d has tag %q, want event or sample", i+1, rec.T)
		}
	}
}

// TestTelemetryByteIdenticalFlagRun: the same flag-built run with the
// full observability stack attached must write the byte-identical CSV.
func TestTelemetryByteIdenticalFlagRun(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-init", "40", "-ticks", "3000", "-lambda", "0.05", "-wait", "100", "-seed", "3"}
	ref := filepath.Join(dir, "ref.csv")
	if err := run(append(append([]string{}, flags...), "-csv", ref)); err != nil {
		t.Fatal(err)
	}
	got := filepath.Join(dir, "got.csv")
	telem := filepath.Join(dir, "run.jsonl")
	if err := run(append(append([]string{}, flags...), "-csv", got, "-telemetry", telem, "-progress")); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, ref), readFile(t, got)) {
		t.Fatal("instrumented run's CSV differs from the bare run's")
	}
	checkJSONL(t, telem)
}

// TestTelemetryByteIdenticalScenario pins the same contract on the
// scenario path.
func TestTelemetryByteIdenticalScenario(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.csv")
	if err := run([]string{"-scenario", "quickstart", "-csv", ref}); err != nil {
		t.Fatal(err)
	}
	got := filepath.Join(dir, "got.csv")
	telem := filepath.Join(dir, "run.jsonl")
	if err := run([]string{"-scenario", "quickstart", "-csv", got, "-telemetry", telem, "-progress"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, ref), readFile(t, got)) {
		t.Fatal("instrumented scenario's CSV differs from the bare run's")
	}
	checkJSONL(t, telem)
}

// TestTelemetryByteIdenticalAcrossResume: instrumentation attached to a
// checkpoint resume must not disturb the resumed tail — its CSV must
// still match the uninterrupted, uninstrumented run.
func TestTelemetryByteIdenticalAcrossResume(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-init", "40", "-ticks", "3000", "-lambda", "0.05", "-wait", "100", "-seed", "3"}
	ref := filepath.Join(dir, "ref.csv")
	if err := run(append(append([]string{}, flags...), "-csv", ref)); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "world.ckpt")
	if err := run(append(append([]string{}, flags...), "-checkpoint-at", "1500", "-checkpoint-out", ckpt)); err != nil {
		t.Fatal(err)
	}
	resumed := filepath.Join(dir, "resumed.csv")
	telem := filepath.Join(dir, "tail.jsonl")
	if err := run([]string{"-checkpoint-in", ckpt, "-csv", resumed, "-telemetry", telem, "-progress"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readFile(t, ref), readFile(t, resumed)) {
		t.Fatal("instrumented resume's CSV differs from the uninterrupted bare run's")
	}
	checkJSONL(t, telem)
}

// TestObserveFlagValidation pins the observability flag interlocks.
func TestObserveFlagValidation(t *testing.T) {
	telem := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"-scenario", "quickstart", "-runs", "3", "-telemetry", telem}); err == nil {
		t.Fatal("-telemetry with -runs > 1 accepted")
	}
	if err := run([]string{"-scenario", "quickstart", "-runs", "3", "-workers", "2", "-telemetry", telem}); err == nil {
		t.Fatal("-telemetry with a fleet accepted")
	}
	if err := run([]string{"-ticks", "2000", "-checkpoint-at", "500", "-checkpoint-out",
		filepath.Join(t.TempDir(), "x.ckpt"), "-telemetry", telem}); err == nil {
		t.Fatal("-telemetry with -checkpoint-out accepted")
	}
	if err := run([]string{"-scenario", "quickstart", "-runs", "3", "-progress"}); err == nil {
		t.Fatal("-progress with multiple runs and no fleet accepted")
	}
	if err := run([]string{"-ticks", "2000", "-pprof", "not-an-address"}); err == nil {
		t.Fatal("unbindable -pprof address accepted")
	}
}

// TestProcessFleetProgressByteIdentical is the fleet half of the
// contract: a real process fleet run with the live -progress table on
// must print the byte-identical stdout of the bare in-process run.
func TestProcessFleetProgressByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildSim(t)
	runCLI := func(args ...string) (string, string) {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	inproc, _ := runCLI("-scenario", "sm-wipeout", "-runs", "3")
	fleet, _ := runCLI("-scenario", "sm-wipeout", "-runs", "3", "-workers", "2", "-progress")
	if inproc != fleet {
		t.Fatalf("fleet -progress stdout differs from in-process stdout:\n--- in-process ---\n%s\n--- fleet ---\n%s", inproc, fleet)
	}
}
