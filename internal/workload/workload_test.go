package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/churn"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestProgramRate(t *testing.T) {
	ramp := 0.02
	p := &Program{
		Windows: []Window{
			{Len: 100, Lambda: 0.01},
			{Len: 50, Lambda: 0.01, RampTo: &ramp},
			{Len: 100, Lambda: 0.02},
		},
		Spikes: []Spike{{At: 60, Len: 10, Lambda: 0.5}},
	}
	cases := []struct {
		t    float64
		want float64
	}{
		{0, 0.01},        // window 1 start
		{99, 0.01},       // window 1 end
		{100, 0.01},      // ramp start
		{125, 0.015},     // ramp midpoint
		{150, 0.02},      // window 3
		{1000, 0.02},     // past the end: hold the final rate
		{60, 0.5},        // spike start
		{69.999999, 0.5}, // inside the spike
		{70, 0.01},       // spike end is exclusive
	}
	for _, c := range cases {
		if got := p.Rate(c.t); !almost(got, c.want) {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := p.MaxRate(); !almost(got, 0.5) {
		t.Errorf("MaxRate() = %v, want 0.5 (the spike)", got)
	}
}

func TestProgramRateRepeats(t *testing.T) {
	p := &Program{
		Repeat:  true,
		Windows: []Window{{Len: 100, Lambda: 0.04}, {Len: 100, Lambda: 0.001}},
	}
	if got := p.Period(); got != 200 {
		t.Fatalf("Period() = %v, want 200", got)
	}
	for _, c := range []struct{ t, want float64 }{
		{50, 0.04}, {150, 0.001}, {250, 0.04}, {350, 0.001}, {20_050, 0.04},
	} {
		if got := p.Rate(c.t); !almost(got, c.want) {
			t.Errorf("Rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestProgramRampEndHeldPastNonRepeatingEnd(t *testing.T) {
	end := 0.05
	p := &Program{Windows: []Window{{Len: 100, Lambda: 0.01, RampTo: &end}}}
	if got := p.Rate(500); !almost(got, end) {
		t.Errorf("Rate past a ramped final window = %v, want the ramp target %v", got, end)
	}
	if got := p.MaxRate(); !almost(got, end) {
		t.Errorf("MaxRate() = %v, want the ramp target %v", got, end)
	}
}

func TestProgramValidate(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want string
	}{
		{"no windows", &Program{}, "at least one window"},
		{"zero len", &Program{Windows: []Window{{Len: 0, Lambda: 0.1}}}, "Len"},
		{"negative lambda", &Program{Windows: []Window{{Len: 1, Lambda: -0.1}}}, "Lambda"},
		{"negative ramp", &Program{Windows: []Window{{Len: 1, Lambda: 0.1, RampTo: f(-1)}}}, "RampTo"},
		{"spike at negative", &Program{Windows: []Window{{Len: 1, Lambda: 0.1}}, Spikes: []Spike{{At: -1, Len: 1, Lambda: 1}}}, "At"},
		{"spike zero len", &Program{Windows: []Window{{Len: 1, Lambda: 0.1}}, Spikes: []Spike{{At: 0, Len: 0, Lambda: 1}}}, "Len"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	global := churn.Params{}
	bad := []struct {
		name string
		s    *Spec
		want string
	}{
		{
			"rate and trace together",
			&Spec{
				Rate:  &Program{Windows: []Window{{Len: 1, Lambda: 0.1}}},
				Trace: []Event{{At: 0, Op: OpArrival}},
			},
			"mutually exclusive",
		},
		{
			"duplicate cohort names",
			&Spec{Cohorts: []Cohort{{Name: "a", Weight: 1}, {Name: "a", Weight: 1}}},
			"duplicate cohort name",
		},
		{
			"nameless cohort",
			&Spec{Cohorts: []Cohort{{Weight: 1}}},
			"needs a name",
		},
		{
			"rejoin without downtime",
			&Spec{Cohorts: []Cohort{{Name: "a", Weight: 1, RejoinProb: f(0.5)}}},
			"DowntimeMean",
		},
		{
			"unknown session dist",
			&Spec{Cohorts: []Cohort{{Name: "a", Weight: 1, SessionDist: "weibull"}}},
			"session distribution",
		},
		{
			"bad trace op",
			&Spec{Trace: []Event{{At: 0, Op: "login"}}},
			"unknown op",
		},
	}
	for _, c := range bad {
		err := c.s.Validate(global)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(global); err != nil {
		t.Errorf("nil spec must validate, got %v", err)
	}
	if nilSpec.Active() || nilSpec.Replaying() || nilSpec.DemandWeighted() {
		t.Error("nil spec must report every capability off")
	}
	if got := nilSpec.MaxDemand(); got != 1 {
		t.Errorf("nil spec MaxDemand() = %v, want 1", got)
	}
}

func TestCohortParamsResolution(t *testing.T) {
	global := churn.Params{
		CrashFrac: 0.3, RejoinProb: 0.6, DowntimeMean: 1000,
		SessionDist: churn.SessionPareto, SessionMean: 50_000,
	}

	inherit := Cohort{Name: "a", Weight: 1}.Params(global)
	want := SessionParams{
		Dist: churn.SessionPareto, Mean: 50_000,
		CrashFrac: 0.3, RejoinProb: 0.6, DowntimeMean: 1000,
	}
	if inherit != want {
		t.Errorf("full inheritance: got %+v, want %+v", inherit, want)
	}

	override := Cohort{
		Name: "b", Weight: 1,
		SessionDist: churn.SessionUniform, SessionMean: 7,
		CrashFrac: f(0), RejoinProb: f(0), DowntimeMean: 9,
	}.Params(global)
	// The pointer overrides distinguish explicit zero from inherit.
	if override.CrashFrac != 0 || override.RejoinProb != 0 {
		t.Errorf("explicit zero overrides lost: %+v", override)
	}
	if override.Dist != churn.SessionUniform || override.Mean != 7 || override.DowntimeMean != 9 {
		t.Errorf("value overrides lost: %+v", override)
	}

	none := Cohort{Name: "c", Weight: 1, SessionDist: SessionNone}.Params(global)
	if none.Mean != 0 {
		t.Errorf("SessionDist %q must zero the mean, got %+v", SessionNone, none)
	}
}

func TestSpecDemand(t *testing.T) {
	s := &Spec{Cohorts: []Cohort{
		{Name: "a", Weight: 1},            // default demand 1
		{Name: "b", Weight: 1, Demand: 3}, // the envelope
	}}
	if !s.DemandWeighted() {
		t.Error("a cohort with Demand 3 must turn weighting on")
	}
	if got := s.MaxDemand(); got != 3 {
		t.Errorf("MaxDemand() = %v, want 3", got)
	}
	// Demand below 1 still needs weighting even though the envelope
	// stays at the default 1.
	sub := &Spec{Cohorts: []Cohort{{Name: "a", Weight: 1, Demand: 0.5}}}
	if !sub.DemandWeighted() {
		t.Error("a cohort with Demand 0.5 must turn weighting on")
	}
	if got := sub.MaxDemand(); got != 1 {
		t.Errorf("MaxDemand() with sub-unit demand = %v, want 1", got)
	}
}

func TestPlanDrawsAreKeyedAndReproducible(t *testing.T) {
	params := SessionParams{
		Dist: churn.SessionExponential, Mean: 1000,
		CrashFrac: 0.5, RejoinProb: 0.5, DowntimeMean: 100,
	}
	seed := PlanSeed(42)
	a := DrawPlan(params, PlanSource(seed, 7, 0))
	b := DrawPlan(params, PlanSource(seed, 7, 0))
	if a != b {
		t.Errorf("same (seed, ordinal, seq) must reproduce the draw: %+v vs %+v", a, b)
	}
	c := DrawPlan(params, PlanSource(seed, 7, 1))
	d := DrawPlan(params, PlanSource(seed, 8, 0))
	if a == c && a == d {
		t.Error("different ordinals/seqs should decorrelate draws")
	}
	if a.Session < 1 {
		t.Errorf("session %v below the one-tick floor", a.Session)
	}
	if a.SessionParams != params {
		t.Error("the plan must carry its parameters for later redraws")
	}

	noSession := DrawPlan(SessionParams{Dist: SessionNone, Mean: 1000, CrashFrac: 1}, PlanSource(seed, 1, 0))
	if noSession.Session != 0 {
		t.Errorf("dist %q must disable the session clock, got %v", SessionNone, noSession.Session)
	}
	if !noSession.Crash {
		t.Error("CrashFrac 1 must still draw a crash without a session clock")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	hdr := Header{Scenario: "diurnal", Seed: 61}
	events := []Event{
		{At: 10, Op: OpArrival, Class: ClassCooperative, Style: StyleNaive, Cohort: "resident",
			Plan: &Plan{SessionParams: SessionParams{Mean: 100}, Session: 42}},
		{At: 20, Op: OpDepart, Cohort: "resident", Detail: "crash"},
		{At: 35, Op: OpRejoin, Cohort: "resident"},
	}
	rec := NewRecorder(hdr)
	for _, ev := range events {
		rec.Record(ev)
	}
	data, err := rec.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	gotHdr, gotEvents, err := ReadTrace(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if gotHdr.Format != TraceFormat || gotHdr.Scenario != "diurnal" || gotHdr.Seed != 61 {
		t.Errorf("header round trip: %+v", gotHdr)
	}
	if len(gotEvents) != len(events) {
		t.Fatalf("got %d events, want %d", len(gotEvents), len(events))
	}
	for i := range events {
		want := events[i]
		got := gotEvents[i]
		if want.Plan != nil {
			if got.Plan == nil || *got.Plan != *want.Plan {
				t.Errorf("event %d plan round trip: %+v vs %+v", i, got.Plan, want.Plan)
			}
			got.Plan, want.Plan = nil, nil
		}
		if got != want {
			t.Errorf("event %d round trip: %+v vs %+v", i, got, want)
		}
	}

	// Re-encoding the decoded trace must reproduce the bytes.
	again := NewRecorder(gotHdr)
	for _, ev := range gotEvents {
		again.Record(ev)
	}
	data2, err := again.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("decode → re-encode is not byte-identical")
	}
}

func TestReadTraceRejectsBadInput(t *testing.T) {
	valid := `{"format":"replend-trace/v1"}
{"at":5,"op":"arrival"}
`
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"empty", "", "no header"},
		{"wrong format", `{"format":"replend-trace/v9"}`, "format"},
		{"missing header", `{"at":5,"op":"arrival"}`, "header"},
		{"unknown field", valid + `{"at":6,"op":"arrival","shoe":9}` + "\n", "shoe"},
		{"unknown op", valid + `{"at":6,"op":"teleport"}` + "\n", "unknown op"},
		{"decreasing time", valid + `{"at":1,"op":"arrival"}` + "\n", "before predecessor"},
		{"trailing garbage", `{"format":"replend-trace/v1"} nonsense`, "trailing"},
		{"truncated json", valid[:len(valid)-4], "line"},
		{"negative tick", `{"format":"replend-trace/v1"}` + "\n" + `{"at":-1,"op":"arrival"}`, "negative"},
	}
	for _, c := range cases {
		_, _, err := ReadTrace(strings.NewReader(c.input))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: ReadTrace = %v, want error containing %q", c.name, err, c.want)
		}
	}

	if _, _, err := ReadTrace(strings.NewReader(valid)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := s.Validate(churn.Params{}); err != nil {
			t.Errorf("preset %q does not validate: %v", name, err)
		}
		if !s.Active() {
			t.Errorf("preset %q is inert", name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset must error")
	}
	// Presets return fresh copies: mutating one must not leak.
	a, _ := Preset(PresetHeavytailCohorts)
	a.Cohorts[0].Weight = 99
	b, _ := Preset(PresetHeavytailCohorts)
	if b.Cohorts[0].Weight == 99 {
		t.Error("presets share state between calls")
	}
}
