package lending

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/transport"
)

// TestPropertyRandomisedScenarios drives the protocol through randomised
// sequences of introductions, crashes and audits and asserts the
// invariants that must hold in every interleaving:
//
//  1. Reputation bounds: every stored value stays in [0,1].
//  2. Loan conservation: during an unaudited loan, what the introducer's
//     managers deducted equals what the newcomer's managers credited.
//  3. Audit settlement: a satisfied audit returns exactly stake+reward
//     once; a forfeited audit leaves the introducer unpaid and strips the
//     newcomer.
//  4. No duplicate payout: audits are idempotent however often invoked.
func TestPropertyRandomisedScenarios(t *testing.T) {
	src := rng.New(99)
	for scenario := 0; scenario < 60; scenario++ {
		runRandomScenario(t, scenario, src.Split())
	}
}

func runRandomScenario(t *testing.T, scenario int, src *rng.Source) {
	t.Helper()
	h := newHarness(t)
	p := params()

	// A pool of introducers with varying starting reputation.
	type actor struct {
		pid  id.ID
		sms  []id.ID
		rep0 float64
	}
	var introducers []actor
	for i := 0; i < 3; i++ {
		rep := 0.3 + 0.7*src.Float64() // some below the 0.5 floor, some above
		pid, sms := h.addPeer(fmt.Sprintf("s%d-intro%d", scenario, i), rep)
		introducers = append(introducers, actor{pid, sms, rep})
	}

	type loan struct {
		newcomer   id.ID
		introducer actor
		granted    bool
		audited    bool
		highRep    bool // newcomer earns its standing before the audit
	}
	var loans []loan
	nLoans := 1 + src.Intn(4)
	for i := 0; i < nLoans; i++ {
		intro := introducers[src.Intn(len(introducers))]
		newcomer, _ := h.addPeer(fmt.Sprintf("s%d-new%d", scenario, i), -1)
		granted := src.Bernoulli(0.8)
		loans = append(loans, loan{newcomer: newcomer, introducer: intro, granted: granted})
		h.proto.Begin(newcomer, intro.pid, granted)
	}
	// Random crash of one SM node in a third of scenarios.
	if src.Bernoulli(0.33) {
		in := introducers[src.Intn(len(introducers))]
		h.bus.Crash(in.sms[src.Intn(len(in.sms))])
	}
	h.engine.RunUntil(2000)

	// Check loan conservation for every admitted newcomer before audit.
	admittedSet := map[id.ID]bool{}
	for _, a := range h.admitted {
		admittedSet[a] = true
	}
	for i := range loans {
		l := &loans[i]
		if !admittedSet[l.newcomer] {
			continue
		}
		gained := h.repAt(l.newcomer)
		if math.Abs(gained-p.IntroAmt) > 1e-9 {
			t.Fatalf("scenario %d: newcomer credited %v, want %v", scenario, gained, p.IntroAmt)
		}
	}

	// Audit half the admitted loans with high reputation, half without;
	// audit some twice.
	for i := range loans {
		l := &loans[i]
		if !admittedSet[l.newcomer] {
			continue
		}
		l.highRep = src.Bernoulli(0.5)
		if l.highRep {
			for _, sm := range h.net.sms[l.newcomer] {
				h.net.Store(sm).Init(l.newcomer, 0.9)
			}
		}
		before := h.repAt(l.introducer.pid)
		h.proto.Audit(l.newcomer)
		if src.Bernoulli(0.5) {
			h.proto.Audit(l.newcomer) // idempotence
		}
		after := h.repAt(l.introducer.pid)
		l.audited = true
		if l.highRep {
			want := p.IntroAmt + p.Reward
			diff := after - before
			// The credit may clamp at 1; allow the clamped case.
			if diff < -1e-9 || diff > want+1e-9 {
				t.Fatalf("scenario %d: satisfied audit moved introducer by %v, want (0,%v]", scenario, diff, want)
			}
		} else {
			if after > before+1e-9 {
				t.Fatalf("scenario %d: forfeited audit paid the introducer (%v -> %v)", scenario, before, after)
			}
			if rep := h.repAt(l.newcomer); rep > 1e-9 {
				t.Fatalf("scenario %d: forfeited newcomer keeps %v", scenario, rep)
			}
		}
	}

	// Bounds over every store and subject touched.
	for node, store := range h.net.stores {
		for _, a := range append([]id.ID{}, h.admitted...) {
			if v, ok := store.Query(a); ok && (v < 0 || v > 1) {
				t.Fatalf("scenario %d: node %s holds out-of-range reputation %v", scenario, node.Short(), v)
			}
		}
		for _, in := range introducers {
			if v, ok := store.Query(in.pid); ok && (v < 0 || v > 1) {
				t.Fatalf("scenario %d: introducer reputation out of range %v", scenario, v)
			}
		}
	}
}

// TestPropertyStakeNeverNegative: whatever sequence of grants a single
// introducer makes, the minIntroRep floor keeps its reputation positive —
// the paper's §3 guarantee.
func TestPropertyStakeNeverNegative(t *testing.T) {
	h := newHarness(t)
	intro, _ := h.addPeer("greedy", 1.0)
	// Far more grant attempts than 1/introAmt.
	for i := 0; i < 30; i++ {
		newcomer, _ := h.addPeer(fmt.Sprintf("n%d", i), -1)
		h.proto.Begin(newcomer, intro, true)
		h.engine.RunUntil(h.engine.Now() + 1001)
		if rep := h.repAt(intro); rep < 0 {
			t.Fatalf("introducer reputation went negative: %v", rep)
		}
	}
	// The floor must have stopped lending before exhaustion.
	if rep := h.repAt(intro); rep < params().MinIntroRep-params().IntroAmt {
		t.Fatalf("introducer fell past floor−stake: %v", rep)
	}
	if h.proto.Stats().RefusedRep == 0 {
		t.Fatal("the reputation floor never refused a lend")
	}
}

// TestPropertyEnvelopeTamperingNeverApplies fuzzes lend envelopes with bit
// flips and asserts a tampered envelope never moves any reputation.
func TestPropertyEnvelopeTamperingNeverApplies(t *testing.T) {
	h := newHarness(t)
	intro, introSMs := h.addPeer("signer", 1.0)
	newcomer, _ := h.addPeer("target", -1)
	signer, _ := h.proto.identityOf(intro)
	order := transport.LendOrder{Introducer: intro, NewPeer: newcomer, Amount: 0.1, Nonce: 7777}
	env := signer.Sign(order)

	src := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		tampered := env
		tampered.Sig = append([]byte(nil), env.Sig...)
		switch src.Intn(3) {
		case 0:
			tampered.Order.Amount = src.Float64()
		case 1:
			tampered.Order.Nonce = src.Uint64()
		case 2:
			tampered.Sig[src.Intn(len(tampered.Sig))] ^= byte(1 << src.Intn(8))
		}
		before, _ := h.net.Store(introSMs[0]).Query(intro)
		h.proto.onLend(introSMs[0], tampered)
		after, _ := h.net.Store(introSMs[0]).Query(intro)
		if before != after {
			t.Fatalf("trial %d: tampered envelope moved reputation %v -> %v", trial, before, after)
		}
	}
	// The genuine envelope still works.
	h.proto.onLend(introSMs[0], env)
	if v, _ := h.net.Store(introSMs[0]).Query(intro); math.Abs(v-0.9) > 1e-9 {
		t.Fatalf("genuine envelope rejected: %v", v)
	}
}
