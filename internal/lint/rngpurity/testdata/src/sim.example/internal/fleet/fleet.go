// Package fleet stands in for the orchestration edge: wall clocks and
// math/rand are structurally exempt here (internal/fleet is not on the
// internal/lint/watch list), so nothing in this file is flagged.
package fleet

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}

func heartbeatAge(last time.Time) time.Duration {
	_ = time.Now()
	return time.Since(last)
}
