package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, "c", func() { order = append(order, 3) })
	e.Schedule(10, "a", func() { order = append(order, 1) })
	e.Schedule(20, "b", func() { order = append(order, 2) })
	e.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestSameTickFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, "x", func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events not FIFO: %v", order)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	e := NewEngine()
	var at Tick
	e.Schedule(100, "outer", func() {
		e.After(50, "inner", func() { at = e.Now() })
	})
	e.Drain()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, "x", func() {})
	e.Drain()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(5, "late", func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.After(-1, "bad", func() {})
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var ran []Tick
	for _, at := range []Tick{1, 5, 10, 11, 20} {
		at := at
		e.Schedule(at, "x", func() { ran = append(ran, at) })
	}
	n := e.RunUntil(10)
	if n != 3 {
		t.Fatalf("RunUntil executed %d events, want 3", n)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
	n = e.RunUntil(100)
	if n != 2 || e.Now() != 100 {
		t.Fatalf("second RunUntil: n=%d now=%d", n, e.Now())
	}
}

func TestRunUntilAdvancesClockOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("clock = %d, want 500", e.Now())
	}
}

func TestStopMidRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Tick(1); i <= 10; i++ {
		e.Schedule(i, "x", func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Drain()
	if count != 4 {
		t.Fatalf("executed %d events after Stop, want 4", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestSelfReschedulingProcess(t *testing.T) {
	e := NewEngine()
	fires := 0
	var tickFn func()
	tickFn = func() {
		fires++
		e.After(10, "periodic", tickFn)
	}
	e.Schedule(0, "periodic", tickFn)
	e.RunUntil(100)
	// Fires at 0,10,...,100 inclusive.
	if fires != 11 {
		t.Fatalf("periodic fired %d times, want 11", fires)
	}
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := Tick(0); i < 5; i++ {
		e.Schedule(i, "x", func() {})
	}
	e.Drain()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
}

// Property: for any multiset of schedule times, execution order is
// non-decreasing in time.
func TestQuickTimeMonotonic(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var seen []Tick
		for _, at := range times {
			at := Tick(at)
			e.Schedule(at, "x", func() { seen = append(seen, at) })
		}
		e.Drain()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}
