package world

// Differential property tests for the batched credit-delivery bus: a
// world running the per-message reference fan-out must be
// observably indistinguishable — snapshot bytes, time series, protocol
// and bus counters — from one running the coalesced SendBatch path,
// over randomized churn and workload schedules and across a mid-run
// checkpoint cut. This is the harness that pins the arena layout and
// the batching optimisation to the original semantics.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/workload"
)

// differentialCfgs yields randomized-parameter configurations spanning
// plain Poisson churn and the calibrated workload layer.
func differentialCfgs() []config.Config {
	var cfgs []config.Config
	for seed := uint64(1); seed <= 3; seed++ {
		c := churnyCfg(seed)
		c.NumSM = 2 + int(seed%3) // vary the fan-out width across trials
		cfgs = append(cfgs, c)
	}
	// One arm under a nonstationary rate program with cohorts, so the
	// workload layer's arrival mixer rides the same contract.
	wl := churnyCfg(7)
	wl.NumSM = 4
	ramp := 0.12
	wl.Workload = &workload.Spec{
		Rate: &workload.Program{
			Windows: []workload.Window{
				{Len: 1500, Lambda: 0.02, RampTo: &ramp},
				{Len: 1500, Lambda: 0.08},
			},
			Repeat: true,
		},
		Cohorts: []workload.Cohort{
			{Name: "steady", Weight: 3},
			{Name: "flaky", Weight: 1, SessionDist: "pareto"},
		},
	}
	cfgs = append(cfgs, wl)
	return cfgs
}

func TestBatchedDeliveryWorldDifferential(t *testing.T) {
	for i, cfg := range differentialCfgs() {
		t.Run(fmt.Sprintf("cfg=%d", i), func(t *testing.T) {
			// Reference arm: the default batched fan-out, uninterrupted.
			ref, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := ref.Run(); err != nil {
				t.Fatalf("batched run: %v", err)
			}
			want := fingerprint(t, ref)

			// Differential arm: per-message reference delivery, with a
			// checkpoint round-trip in the middle. The restored world
			// comes back on the default batched path — re-selecting the
			// reference path afterwards means the cut also separates the
			// two delivery modes within a single run.
			w, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			w.Protocol().SetBatchedDelivery(false)
			w.Start()
			cut := sim.Tick(cfg.NumTrans / 2)
			if err := w.RunFor(cut); err != nil {
				t.Fatalf("RunFor to cut: %v", err)
			}
			w = roundTrip(t, w)
			w.Protocol().SetBatchedDelivery(false)
			if err := w.RunFor(sim.Tick(cfg.NumTrans) - cut); err != nil {
				t.Fatalf("RunFor tail: %v", err)
			}
			w.Finish()
			got := fingerprint(t, w)
			if !bytes.Equal(want, got) {
				t.Fatalf("unbatched+checkpointed run diverged from batched run (%d vs %d fingerprint bytes)", len(want), len(got))
			}
		})
	}
}
