package fleet

import (
	"io"
	"sync"
	"time"
)

// duplexConn glues two unidirectional pipes into one transport end.
type duplexConn struct {
	io.Reader
	io.Writer
	once  sync.Once
	close func()
}

func (d *duplexConn) Close() error {
	d.once.Do(d.close)
	return nil
}

// pipePair builds an in-memory coordinator⇄worker transport pair.
func pipePair() (coord io.ReadWriteCloser, worker io.ReadWriteCloser) {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	coord = &duplexConn{Reader: resR, Writer: jobW, close: func() {
		jobW.Close()
		resR.Close()
	}}
	worker = &duplexConn{Reader: jobR, Writer: resW, close: func() {
		resW.Close()
		jobR.Close()
	}}
	return coord, worker
}

// PipeSpawn returns a SpawnFunc whose workers are in-process goroutines
// speaking the full wire protocol over in-memory pipes — everything but
// the process isolation. The equivalence tests use it to drive the real
// coordinator/worker path without build-and-exec cost; production fleets
// use ExecSpawn/SelfSpawn (separate processes) or TCP joins.
func PipeSpawn() SpawnFunc {
	return func(int) (io.ReadWriteCloser, error) {
		coord, worker := pipePair()
		go func() {
			_ = ServeWorker(worker, worker, WorkerOptions{HeartbeatInterval: 50 * time.Millisecond})
			worker.Close()
		}()
		return coord, nil
	}
}
