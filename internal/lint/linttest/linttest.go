// Package linttest runs replend-lint analyzers over golden fixture
// packages — a lightweight analogue of golang.org/x/tools'
// analysistest, built on the same offline driver the replend-lint
// binary uses.
//
// Fixtures live under testdata/src/<importpath>/ and are ordinary Go
// files annotated with expectation comments:
//
//	for k := range m { // want `appends to out`
//
// Each `// want` comment carries one or more quoted regular
// expressions; each must match exactly one finding reported on that
// line, and every finding must be matched by an expectation. The
// fixture's import path is the <importpath> directory name, so
// analyzers that key off the package path (rngpurity, nopanic via
// internal/lint/watch) can be exercised with watched and exempt paths
// side by side. Findings are the post-directive set: a
// //replend:allow directive in a fixture suppresses the finding, and
// malformed directives surface as findings of the "directive"
// analyzer, exactly as in production runs.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

// Run loads each fixture package under testdata/src/<path>, runs the
// analyzer plus the directive filter over it, and compares the
// findings against the fixture's // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	for _, path := range paths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
		pkg, err := loadFixture(path, dir)
		if err != nil {
			t.Errorf("fixture %s: %v", path, err)
			continue
		}
		findings, err := driver.Run([]*driver.Package{pkg}, []*analysis.Analyzer{a}, nil)
		if err != nil {
			t.Errorf("fixture %s: %v", path, err)
			continue
		}
		check(t, path, pkg, findings)
	}
}

// loadFixture parses and type-checks one fixture package, resolving
// its imports (standard library and in-module packages) through go
// list export data, the same way the production driver does.
func loadFixture(path, dir string) (*driver.Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	sort.Strings(names)

	// Pre-parse just to discover the fixture's imports.
	imports := map[string]bool{}
	pre := token.NewFileSet()
	for _, name := range names {
		f, err := parser.ParseFile(pre, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}
	exports, err := exportData(imports)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return driver.Check(fset, path, names, driver.NewImporter(fset, exports, nil))
}

// exportData resolves the import paths to gc export files via
// `go list -json -deps -export`. Fixture imports must be standard
// library or in-module packages — both resolvable offline.
func exportData(imports map[string]bool) (map[string]string, error) {
	exports := map[string]string{}
	if len(imports) == 0 {
		return exports, nil
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	args := append([]string{"list", "-json", "-deps", "-export", "--"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// expectation is one parsed `// want` regexp, pinned to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	pattern string
	matched bool
}

// check compares findings against the fixture's expectations. A want
// normally sits on the flagged line; when a finding is reported at a
// comment's own position (a malformed //replend:allow directive, say)
// no want can share that line, so a want on the line immediately below
// claims the finding as a fallback.
func check(t *testing.T, path string, pkg *driver.Package, findings []driver.Finding) {
	t.Helper()
	wants, err := parseWants(pkg)
	if err != nil {
		t.Errorf("fixture %s: %v", path, err)
		return
	}
	match := func(f driver.Finding, line int) bool {
		for _, w := range wants {
			if w.matched || w.file != f.Pos.Filename || w.line != line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				return true
			}
		}
		return false
	}
	for _, f := range findings {
		if !match(f, f.Pos.Line) && !match(f, f.Pos.Line+1) {
			t.Errorf("fixture %s: unexpected finding: %s", path, f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("fixture %s: %s:%d: no finding matched %q", path, filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// parseWants extracts the `// want "re"...` expectations from the
// fixture's comments. Both interpreted and raw quoted strings are
// accepted.
func parseWants(pkg *driver.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: malformed want pattern %q", pos, q)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp: %v", pos, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, pattern: pat})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants, nil
}
