// Command replend-sim runs a single reputation-lending community
// simulation and prints a summary plus optional CSV time series.
//
// Usage:
//
//	replend-sim [flags]
//	replend-sim -scenario file.json [-runs n] [-csv out.csv]
//	replend-sim -scenario name -runs n -workers k   # local fleet
//	replend-sim -worker                             # fleet worker (stdio)
//	replend-sim -worker-connect host:port -fleet-token t
//	replend-sim scenarios list
//	replend-sim scenarios describe <name>
//	replend-sim scenarios dump <name>
//	replend-sim checkpoint info <file>
//
// The defaults are the paper's Table 1 values. Examples:
//
//	replend-sim -lambda 0.1 -ticks 50000            # Figure 1 conditions
//	replend-sim -no-introductions -policy mid-spectrum
//	replend-sim -config experiment.json -csv out.csv
//	replend-sim -scenario collusion                 # built-in by name
//	replend-sim -scenario my-workload.json -runs 10 # averaged replicas
//	replend-sim -scenario churn-steady -runs 10 -workers 4
//	replend-sim -scenario churn-steady -checkpoint-at 5000 -checkpoint-out s.ckpt
//	replend-sim -checkpoint-in s.ckpt               # resume to completion
//	replend-sim -workload diurnal -ticks 60000      # nonstationary arrivals
//	replend-sim -workload diurnal -ticks 60000 -record t.jsonl
//	replend-sim -replay t.jsonl -ticks 60000        # byte-identical re-drive
//	replend-sim -scenario churn-steady -runs 10 -workers 4 -fleet-journal b.journal
//	replend-sim -telemetry run.jsonl -progress      # stream events, live ticker
//	replend-sim -scenario churn-steady -runs 10 -workers 4 -progress
//	replend-sim -pprof localhost:6060 -ticks 500000 # CPU/heap profiles live
//
// Results go to stdout; progress and log chatter go to stderr, so stdout
// stays machine-parseable (and, in -worker mode, carries nothing but
// protocol frames). See docs/fleet.md for the distributed runner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/topology"
	"repro/internal/workload"
	"repro/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replend-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "scenarios" {
		return scenariosCmd(args[1:], os.Stdout)
	}
	if len(args) > 0 && args[0] == "checkpoint" {
		return checkpointCmd(args[1:], os.Stdout)
	}
	fs := flag.NewFlagSet("replend-sim", flag.ContinueOnError)
	var (
		configPath = fs.String("config", "", "JSON configuration file (fields default to Table 1)")
		scenPath   = fs.String("scenario", "", "scenario file (or built-in name) to execute instead of a flag-built config")
		runs       = fs.Int("runs", 1, "with -scenario: seed-offset replicas to run and aggregate")
		numInit    = fs.Int("init", 500, "initial cooperative peers")
		ticks      = fs.Int64("ticks", 500000, "transactions (= simulation time units)")
		lambda     = fs.Float64("lambda", 0.01, "new-peer Poisson arrival rate per tick")
		fracUncoop = fs.Float64("frac-uncoop", 0.25, "fraction of arrivals that are uncooperative")
		fracNaive  = fs.Float64("frac-naive", 0.3, "fraction of cooperative peers that are naive introducers")
		errSel     = fs.Float64("err-sel", 0.10, "selective introducer error rate")
		topo       = fs.String("topology", "powerlaw", "topology: random or powerlaw")
		wait       = fs.Int64("wait", 1000, "introduction waiting period T")
		auditTrans = fs.Int("audit-trans", 20, "completed transactions before the newcomer audit")
		introAmt   = fs.Float64("intro-amt", 0.1, "reputation lent per introduction")
		reward     = fs.Float64("reward", 0.02, "reward for introducing a cooperative peer")
		seed       = fs.Uint64("seed", 1, "random seed")
		noIntro    = fs.Bool("no-introductions", false, "open admission instead of reputation lending")
		nullSign   = fs.Bool("null-sign", false, "replace Ed25519 signing with cheap null identities (fidelity opt-out for huge sweeps)")
		mu         = fs.Float64("mu", 0, "membership departure rate per tick (0 = the paper's model, no departures)")
		stakeTO    = fs.Int64("stake-timeout", 0, "audit deadline in ticks for admission stakes: pending stakes are refunded to survivors (or stranded), offline peers' stake records expire under the same TTL; 0 disables")
		policyName = fs.String("policy", "mid-spectrum", "bootstrap policy with -no-introductions: complaints-based, positive-only, mid-spectrum, fixed-credit")
		csvPath    = fs.String("csv", "", "write population/reputation time series as CSV to this file")
		wkArg      = fs.String("workload", "", "workload spec overriding the config's: a JSON file or a built-in preset (diurnal, flash-crowd, heavytail-cohorts)")
		recPath    = fs.String("record", "", "write the run's workload trace (arrivals, departures, rejoins) to this JSONL file for later -replay; single in-process run only")
		repPath    = fs.String("replay", "", "re-drive arrivals from a recorded trace file instead of a generator")

		worker      = fs.Bool("worker", false, "run as a fleet worker on stdin/stdout (spawned by a coordinator; stdout carries only protocol frames)")
		workerConn  = fs.String("worker-connect", "", "join a remote fleet coordinator at this host:port as a worker")
		fleetToken  = fs.String("fleet-token", "", "shared token gating remote fleet joins (both sides)")
		workers     = fs.Int("workers", 0, "with -scenario and -runs: shard replicas across this many local worker processes")
		fleetListen = fs.String("fleet-listen", "", "with -workers: also accept remote workers on this host:port")
		journal     = fs.String("fleet-journal", "", "with -workers: coordinator crash journal; a restarted coordinator reopening the same path re-dispatches only incomplete replicas")

		ckptOut = fs.String("checkpoint-out", "", "run to -checkpoint-at, write the sealed state here and exit (single run or scenario)")
		ckptAt  = fs.Int64("checkpoint-at", 0, "tick to capture the -checkpoint-out state at")
		ckptIn  = fs.String("checkpoint-in", "", "resume a checkpoint file to completion instead of starting fresh")

		telemPath = fs.String("telemetry", "", "stream the run's trace events and metric samples as JSONL to this file (- for stdout); single in-process runs only")
		progress  = fs.Bool("progress", false, "live progress on stderr: a run ticker (tick, population, record rate, RSS), or the per-worker table with a fleet")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofAddr != "" {
		if err := startPprof(*pprofAddr); err != nil {
			return err
		}
	}
	ob := obs{telemetryPath: *telemPath, progress: *progress}
	if *worker {
		return fleet.ServeWorker(os.Stdin, os.Stdout, fleet.WorkerOptions{Logf: logf})
	}
	if *workerConn != "" {
		logf("joining fleet coordinator at %s", *workerConn)
		return fleet.DialWorker(*workerConn, *fleetToken, fleet.WorkerOptions{Logf: logf})
	}
	wkOver, err := workloadOverride(*wkArg, *repPath)
	if err != nil {
		return err
	}
	if *telemPath != "" && (*runs > 1 || *workers > 0 || *fleetListen != "" || *ckptOut != "") {
		return fmt.Errorf("-telemetry streams one in-process run; it is mutually exclusive with -runs > 1, fleet flags and -checkpoint-out")
	}
	if *progress && *ckptOut != "" {
		return fmt.Errorf("-progress tracks a full run; it is mutually exclusive with -checkpoint-out")
	}
	if *progress && *runs > 1 && *workers == 0 && *fleetListen == "" {
		return fmt.Errorf("-progress with -runs > 1 renders the fleet table; give it a fleet with -workers")
	}
	if *recPath != "" && (*runs > 1 || *workers > 0 || *fleetListen != "" || *ckptOut != "" || *ckptIn != "") {
		return fmt.Errorf("-record captures a single uninterrupted in-process run; it is mutually exclusive with -runs > 1, fleet flags and checkpointing")
	}
	if *ckptIn != "" {
		if *scenPath != "" || *configPath != "" || *ckptOut != "" {
			return fmt.Errorf("-checkpoint-in resumes a finished state description; it is mutually exclusive with -scenario, -config and -checkpoint-out")
		}
		if wkOver != nil {
			return fmt.Errorf("-checkpoint-in resumes a sealed state; it is mutually exclusive with -workload and -replay")
		}
		if *workers > 0 || *fleetListen != "" {
			return fmt.Errorf("-checkpoint-in runs in-process; it takes no fleet flags")
		}
		return resumeCheckpoint(*ckptIn, *csvPath, ob, os.Stdout)
	}
	if *ckptOut != "" && *ckptAt <= 0 {
		return fmt.Errorf("-checkpoint-out needs -checkpoint-at <tick> > 0")
	}
	if *scenPath != "" {
		if *configPath != "" {
			return fmt.Errorf("-scenario and -config are mutually exclusive")
		}
		if *ckptOut != "" {
			if *runs > 1 || *workers > 0 || *fleetListen != "" {
				return fmt.Errorf("-checkpoint-out captures a single run; it is mutually exclusive with -runs > 1 and fleet flags")
			}
			spec, err := loadScenario(*scenPath)
			if err != nil {
				return err
			}
			if wkOver != nil {
				spec.Base.Workload = wkOver
			}
			return writeScenarioCheckpoint(spec, *ckptAt, *ckptOut)
		}
		return runScenario(*scenPath, *runs, *csvPath, *workers, *fleetListen, *fleetToken, *journal, wkOver, *recPath, ob, os.Stdout)
	}
	if *workers > 0 || *fleetListen != "" {
		return fmt.Errorf("-workers and -fleet-listen need -scenario (only replica sweeps shard)")
	}
	if *journal != "" {
		return fmt.Errorf("-fleet-journal needs a fleet (-workers or -fleet-listen)")
	}

	cfg := config.Default()
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		cfg, err = config.Load(data)
		if err != nil {
			return err
		}
	} else {
		kind, err := topology.ParseKind(*topo)
		if err != nil {
			return err
		}
		cfg.NumInit = *numInit
		cfg.NumTrans = *ticks
		cfg.Lambda = *lambda
		cfg.FracUncoop = *fracUncoop
		cfg.FracNaive = *fracNaive
		cfg.ErrSel = *errSel
		cfg.Topology = kind
		cfg.WaitPeriod = *wait
		cfg.AuditTrans = *auditTrans
		cfg.IntroAmt = *introAmt
		cfg.Reward = *reward
		cfg.Seed = *seed
		cfg.RequireIntroductions = !*noIntro
		cfg.NullSign = *nullSign
		cfg.StakeTimeout = *stakeTO
		if *mu > 0 {
			// The flag-built churn process uses the steady-state defaults;
			// scenario files expose the full parameter set.
			cfg.Churn.Mu = *mu
			cfg.Churn.CrashFrac = 0.25
			cfg.Churn.RejoinProb = 0.4
			cfg.Churn.DowntimeMean = 2_500
		}
	}
	if wkOver != nil {
		cfg.Workload = wkOver
	}

	w, err := world.New(cfg)
	if err != nil {
		return err
	}
	if !cfg.RequireIntroductions {
		pol, err := policyByName(*policyName)
		if err != nil {
			return err
		}
		w.SetPolicy(pol)
	}
	if *ckptOut != "" {
		return writeWorldCheckpoint(w, *ckptAt, *ckptOut)
	}
	var rec *workload.Recorder
	if *recPath != "" {
		rec = workload.NewRecorder(workload.Header{Seed: cfg.Seed})
		w.SetWorkloadRecorder(rec)
	}
	finishObs, err := ob.attach(w, "replend-sim")
	if err != nil {
		return err
	}
	if err := w.Run(); err != nil {
		return err
	}
	if err := finishObs(); err != nil {
		return err
	}

	printSummary(w)
	if rec != nil {
		if err := writeTrace(*recPath, rec); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		m := w.Metrics()
		csv := metrics.CSV(m.CoopCount, m.UncoopCount, m.CoopReputation)
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			return err
		}
		logf("series written to %s", *csvPath)
	}
	return nil
}

// workloadOverride resolves the -workload and -replay flags into one
// spec: -workload names a JSON spec file or a built-in preset, -replay
// swaps the generator for a recorded trace's events. A trace cannot
// combine with a rate program (the trace already fixes every arrival).
func workloadOverride(wkArg, repPath string) (*workload.Spec, error) {
	var spec *workload.Spec
	if wkArg != "" {
		if data, err := os.ReadFile(wkArg); err == nil {
			if spec, err = workload.LoadSpec(data); err != nil {
				return nil, fmt.Errorf("%s: %w", wkArg, err)
			}
		} else if !os.IsNotExist(err) {
			return nil, err
		} else if spec, err = workload.Preset(wkArg); err != nil {
			return nil, err
		}
	}
	if repPath == "" {
		return spec, nil
	}
	if spec != nil && spec.Rate != nil {
		return nil, fmt.Errorf("-replay re-drives recorded arrivals; it is mutually exclusive with a -workload rate program")
	}
	f, err := os.Open(repPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	_, events, err := workload.ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", repPath, err)
	}
	if spec == nil {
		spec = &workload.Spec{}
	}
	spec.Trace = events
	return spec, nil
}

// writeTrace seals a recorded run's workload events to a JSONL file.
func writeTrace(path string, rec *workload.Recorder) error {
	data, err := rec.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	logf("trace with %d events written to %s", len(rec.Events()), path)
	return nil
}

// loadScenario resolves a -scenario argument: a path to a JSON spec, or
// the name of a built-in.
func loadScenario(nameOrPath string) (*scenario.Spec, error) {
	if data, err := os.ReadFile(nameOrPath); err == nil {
		return scenario.Load(data)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return scenario.Get(nameOrPath)
}

// runScenario executes a scenario (optionally replicated, optionally on
// a worker fleet) and prints the summary; with -csv it writes the
// spec-selected series of the primary run (the spec's own seed). A
// non-nil wkOver replaces the spec's workload block; a non-empty
// recPath exports the (single) run's workload trace.
func runScenario(nameOrPath string, runs int, csvPath string, workers int, fleetListen, fleetToken, journal string, wkOver *workload.Spec, recPath string, ob obs, out io.Writer) error {
	spec, err := loadScenario(nameOrPath)
	if err != nil {
		return err
	}
	if wkOver != nil {
		spec.Base.Workload = wkOver
	}
	opt := experiments.Options{Runs: runs, Journal: journal}
	if workers > 0 || fleetListen != "" {
		if runs <= 1 {
			return fmt.Errorf("-workers shards replicas; give it work with -runs > 1")
		}
		f, err := newLocalFleet(workers, fleetListen, fleetToken, ob.progress)
		if err != nil {
			return err
		}
		defer f.Close()
		opt.Fleet = f
	}
	var primary *scenario.Result
	if runs <= 1 {
		r, err := spec.Start()
		if err != nil {
			return err
		}
		var rec *workload.Recorder
		if recPath != "" {
			rec = workload.NewRecorder(workload.Header{Scenario: spec.Name, Seed: spec.Base.Seed})
			r.World().SetWorkloadRecorder(rec)
		}
		finishObs, err := ob.attach(r.World(), "scenario "+spec.Name)
		if err != nil {
			return err
		}
		res, err := r.Finish()
		if err != nil {
			return err
		}
		if err := finishObs(); err != nil {
			return err
		}
		if rec != nil {
			if err := writeTrace(recPath, rec); err != nil {
				return err
			}
		}
		primary = res
		fmt.Fprint(out, res.Summary())
	} else {
		reps, err := experiments.RunScenarioReplicas(spec, opt)
		if err != nil {
			return err
		}
		primary = reps[0].Result
		fmt.Fprintln(out, experiments.ScenarioTable(reps))
	}
	if csvPath != "" {
		csv, err := primary.CSV()
		if err != nil {
			return err
		}
		if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
			return err
		}
		logf("series written to %s", csvPath)
	}
	return nil
}

// newLocalFleet builds the coordinator for -workers/-fleet-listen: n
// copies of this binary in -worker mode, plus an optional TCP join
// listener for remote workers.
func newLocalFleet(n int, listen, token string, progress bool) (*fleet.Fleet, error) {
	cfg := fleet.Config{Workers: n, Listen: listen, Token: token, Logf: logf}
	if progress {
		cfg.Progress = os.Stderr
	}
	if n > 0 {
		spawn, err := fleet.SelfSpawn()
		if err != nil {
			return nil, err
		}
		cfg.Spawn = spawn
	}
	f, err := fleet.New(cfg)
	if err != nil {
		return nil, err
	}
	if listen != "" {
		logf("fleet accepting remote workers on %s", f.Addr())
	}
	return f, nil
}

// logf is the progress/log channel: stderr, never stdout — stdout belongs
// to results (and to protocol frames in worker mode).
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "replend-sim: "+format+"\n", args...)
}

// scenariosCmd implements `replend-sim scenarios list|describe|dump`.
func scenariosCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: replend-sim scenarios list|describe <name>|dump <name>")
	}
	switch args[0] {
	case "list":
		for _, name := range scenario.Names() {
			s, err := scenario.Get(name)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-15s %s\n", name, s.Description)
		}
		return nil
	case "describe", "dump":
		if len(args) != 2 {
			return fmt.Errorf("usage: replend-sim scenarios %s <name>", args[0])
		}
		s, err := scenario.Get(args[1])
		if err != nil {
			return err
		}
		if args[0] == "describe" {
			fmt.Fprint(out, s.Describe())
			return nil
		}
		data, err := s.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	return fmt.Errorf("unknown scenarios subcommand %q (want list, describe or dump)", args[0])
}

func policyByName(name string) (baseline.Policy, error) {
	for _, p := range baseline.All() {
		if p.Name() == name || (name == "fixed-credit" && p.Name() == "fixed-credit(0.1)") {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown policy %q", name)
}

func printSummary(w *world.World) {
	m := w.Metrics()
	ps := w.Protocol().Stats()
	cfg := w.Config()
	fmt.Printf("reputation lending simulation — seed %d, %d ticks, λ=%g, topology %s\n",
		cfg.Seed, cfg.NumTrans, cfg.Lambda, cfg.Topology)
	fmt.Printf("population:   %d peers (%d cooperative, %d uncooperative, %d founders)\n",
		w.PopulationSize(), m.CoopInSystem, m.UncoopInSystem, m.Founders)
	fmt.Printf("arrivals:     %d cooperative, %d uncooperative\n", m.ArrivalsCoop, m.ArrivalsUncoop)
	fmt.Printf("admitted:     %d cooperative, %d uncooperative\n", m.AdmittedCoop, m.AdmittedUncoop)
	fmt.Printf("refused:      %d by introducer, %d for introducer reputation, %d no introducer, %d pending at end\n",
		m.RefusedSelectiveCoop+m.RefusedSelectiveUncoop,
		m.RefusedRepCoop+m.RefusedRepUncoop, m.RefusedNoIntroducer, m.Pending)
	fmt.Printf("transactions: %d served, %d denied\n", m.Served, m.Denied)
	fmt.Printf("success rate: %.4f (decisions by cooperative respondents)\n", m.SuccessRate())
	fmt.Printf("audits:       %d satisfied (stake+reward returned), %d forfeited\n",
		m.AuditsSatisfied, m.AuditsForfeited)
	fmt.Printf("protocol:     %d lends granted, %d duplicate-introduction punishments\n",
		ps.Granted, ps.DuplicateAttempts)
	if c := m.Churn; c.Departures+c.Crashes+c.Rejoins+c.Migrated+c.Wipeouts > 0 {
		fmt.Printf("churn:        %d departures, %d crashes, %d rejoins; %d records migrated, %d wiped out\n",
			c.Departures, c.Crashes, c.Rejoins, c.Migrated, c.Wipeouts)
	}
	if cfg.Churn.LeaseTTL > 0 {
		fmt.Printf("leases:       %d records evicted (TTL %d)\n", m.Churn.LeaseEvictions, cfg.Churn.LeaseTTL)
	}
	for _, c := range m.Cohorts {
		fmt.Printf("cohort %-14s %d arrivals, %d admitted, %d in system; %d departures, %d crashes, %d rejoins\n",
			fmt.Sprintf("%q:", c.Name), c.Arrivals, c.Admitted, c.InSystem, c.Departures, c.Crashes, c.Rejoins)
	}
	if cfg.StakeTimeout > 0 {
		c := m.Churn
		fmt.Printf("stakes:       %d refunded, %d stranded, %d expired records (timeout %d); mass %.2f staked = %.2f settled + %.2f refunded + %.2f stranded + %.2f pending\n",
			c.StakesRefunded, c.StakesStranded, c.StakesExpired, cfg.StakeTimeout,
			ps.StakedMass, ps.SettledMass, ps.RefundedMass, ps.StrandedMass, ps.PendingMass)
	}
	if last, ok := m.CoopReputation.Last(); ok {
		fmt.Printf("reputation:   mean cooperative reputation %.4f at end\n", last.V)
	}
}
