// Package maporder defines an analyzer that flags range statements over
// maps whose bodies have order-sensitive effects. Go randomizes map
// iteration order per process, so any observable sequence built inside
// such a loop — a slice of keys, an emitted trace event, an encoded
// byte stream, a floating-point running sum — varies run to run, which
// breaks the repo's byte-identity contract (fleet shard merges,
// checkpoint/resume, churn replay all diff outputs byte for byte).
//
// This is the exact class of the PR 4 rebuildSMDeps bug: walking the
// placement cache in map order filled the per-owner index slices
// process-randomly, which reordered dirty-queue flushes and wobbled the
// sampled reputation sum in its last ulps. The fixture under
// testdata/src/rebuildsmdeps reproduces that shape.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags order-sensitive effects inside range-over-map bodies.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: `flag range-over-map loops with order-sensitive effects

A range over a map whose body appends to state declared outside the
loop, emits trace or metrics events, writes to an encoder or outer
writer, sends on a channel, or accumulates a floating-point sum makes
the program's observable output depend on Go's randomized map iteration
order. Collect the keys into a slice and sort it first; the loop is
accepted when the appended-to slice is passed to a sort call later in
the same block. Per-key effects (writing m2[k] for the loop key k,
integer counters) are order-independent and not flagged.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok && isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				checkMapRange(pass, rs, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil, nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange scans the body of one range-over-map for effects whose
// order the map walk determines. stack holds the ancestors of rs,
// innermost last.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	keyObj := loopVarObject(pass, rs.Key)
	following := followingStmts(rs, stack)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, keyObj, following)
		case *ast.CallExpr:
			checkCall(pass, rs, n)
		case *ast.SendStmt:
			pass.Reportf(rs.For, "range over map sends on a channel; receivers observe map iteration order — sort the keys first")
			return false
		}
		return true
	})
}

// checkAssign flags appends to outer state and floating-point
// accumulation into outer variables.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, keyObj types.Object, following []ast.Stmt) {
	// Compound floating-point accumulation: x += v reorders a float sum.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if isFloat(pass.TypesInfo.TypeOf(lhs)) && declaredOutside(pass, lhs, rs) {
			pass.Reportf(rs.For, "range over map accumulates the floating-point value %s; the sum's last ulps depend on map iteration order — sort the keys first", types.ExprString(lhs))
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) {
			continue
		}
		checkAppend(pass, rs, as.Lhs[i], keyObj, following)
	}
}

// checkAppend decides whether appending to lhs inside the map range is
// order-safe.
func checkAppend(pass *analysis.Pass, rs *ast.RangeStmt, lhs ast.Expr, keyObj types.Object, following []ast.Stmt) {
	lhs = ast.Unparen(lhs)
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		// m2[k] = append(m2[k], …) for the loop key k touches a
		// distinct bucket per iteration: order-independent.
		if keyObj != nil && exprIsObject(pass, ix.Index, keyObj) {
			return
		}
		if declaredOutside(pass, ix, rs) {
			pass.Reportf(rs.For, "range over map appends to %s keyed by something other than the loop key; each bucket's element order follows map iteration order — sort the keys first (the rebuildSMDeps bug class)", types.ExprString(lhs))
		}
		return
	}
	if !declaredOutside(pass, lhs, rs) {
		return
	}
	if sortedAfter(pass, lhs, following) {
		return
	}
	pass.Reportf(rs.For, "range over map appends to %s, whose element order follows map iteration order; sort the keys first, or sort %s before it is used", types.ExprString(lhs), types.ExprString(lhs))
}

// checkCall flags calls inside the body that make iteration order
// observable: trace/metrics emission, encoding, and writes to outer
// writers or process streams.
func checkCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Package-level calls: fmt.Print*/Fprint* write an ordered stream.
	if pkg := packageOf(pass, sel.X); pkg != nil {
		if pkg.Imported().Path() == "fmt" {
			name := sel.Sel.Name
			switch {
			case strings.HasPrefix(name, "Print"):
				pass.Reportf(rs.For, "range over map calls fmt.%s; output line order follows map iteration order — sort the keys first", name)
			case strings.HasPrefix(name, "Fprint"):
				if len(call.Args) > 0 && declaredOutside(pass, call.Args[0], rs) {
					pass.Reportf(rs.For, "range over map writes to %s via fmt.%s; output order follows map iteration order — sort the keys first", types.ExprString(call.Args[0]), name)
				}
			}
		}
		return
	}
	// Method calls. Receiver must be rooted outside the loop: a writer
	// or recorder created per iteration is order-local.
	if !declaredOutside(pass, sel.X, rs) {
		return
	}
	recv := pass.TypesInfo.TypeOf(sel.X)
	name := sel.Sel.Name
	switch {
	case isEmitterType(recv) && emitterMethods[name]:
		pass.Reportf(rs.For, "range over map calls %s.%s; trace/metrics event order follows map iteration order — sort the keys first", typeShort(recv), name)
	case name == "Encode" || strings.HasPrefix(name, "Write"):
		pass.Reportf(rs.For, "range over map calls %s on %s; encoded output order follows map iteration order — sort the keys first", name, types.ExprString(sel.X))
	}
}

// emitterMethods are the mutating entry points of the trace and metrics
// packages; their read-only accessors are order-safe.
var emitterMethods = map[string]bool{
	"Record": true, "Append": true, "Observe": true,
	"Inc": true, "Add": true, "Merge": true,
}

// isEmitterType reports whether t belongs to the trace or metrics
// package (possibly behind a pointer).
func isEmitterType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return strings.HasSuffix(path, "internal/trace") || strings.HasSuffix(path, "internal/metrics")
}

func typeShort(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// sortedAfter reports whether a later statement in the enclosing block
// passes lhs to a sorting call — the canonical collect-then-sort
// pattern. A call qualifies when it is in package sort or slices, or its
// function name contains "sort" (local helpers like sortIDs).
func sortedAfter(pass *analysis.Pass, lhs ast.Expr, following []ast.Stmt) bool {
	want := types.ExprString(ast.Unparen(lhs))
	found := false
	for _, st := range following {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(ast.Unparen(arg)) == want {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	case *ast.SelectorExpr:
		if pkg := packageOf(pass, fun.X); pkg != nil {
			p := pkg.Imported().Path()
			if p == "sort" || p == "slices" {
				return true
			}
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	}
	return false
}

// followingStmts returns the statements after rs in its innermost
// enclosing statement list.
func followingStmts(rs *ast.RangeStmt, stack []ast.Node) []ast.Stmt {
	for i := len(stack) - 1; i >= 0; i-- {
		var list []ast.Stmt
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			continue
		}
		for j, st := range list {
			if st == ast.Stmt(rs) {
				return list[j+1:]
			}
		}
	}
	return nil
}

// loopVarObject resolves the object of a range loop variable (nil for
// "_" or absent keys).
func loopVarObject(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// exprIsObject reports whether e is an identifier denoting obj.
func exprIsObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj
}

// declaredOutside reports whether the root identifier of e (unwrapping
// selectors, indexing, dereferences and calls' receivers) denotes a
// variable declared outside the range statement. Expressions with no
// resolvable root (literals, calls) count as outside: conservative for
// writers obtained through accessors.
func declaredOutside(pass *analysis.Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			if obj == nil {
				return true
			}
			return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return true
		}
	}
}

// packageOf resolves e to the package name it denotes, if any.
func packageOf(pass *analysis.Pass, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.TypesInfo.Uses[id].(*types.PkgName)
	return pn
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
