// API: the scenario subsystem as a library — the built-in "api" scenario
// (a founder introduces B, B later introduces C: reputation lending
// composing across generations) driven step by step, with the structured
// protocol trace attached for inspection.
//
// Run with: go run ./examples/api
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	spec, err := scenario.Get("api")
	if err != nil {
		log.Fatal(err)
	}
	r, err := spec.Start()
	if err != nil {
		log.Fatal(err)
	}
	w := r.World()
	tlog := trace.New(0)
	w.SetTrace(tlog)

	// Phase 1 at tick 5000: a founder introduces B.
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after warm-up: %d members, success rate %.3f\n",
		w.PopulationSize(), w.Metrics().SuccessRate())
	b, _ := r.Labeled("b")
	if err := w.RunFor(sim.Tick(w.Config().WaitPeriod) + 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B admitted by a founder: member=%v, reputation %.3f\n", isMember(r, "b"), w.Reputation(b))

	// Phase 2 at tick 36001: B has earned its standing and introduces C.
	if _, err := r.StepPhase(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("B established: reputation %.3f\n", w.Reputation(b))
	c, _ := r.Labeled("c")
	if err := w.RunFor(sim.Tick(w.Config().WaitPeriod) + 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C admitted by B: member=%v, reputation %.3f (B staked: %.3f)\n",
		isMember(r, "c"), w.Reputation(c), w.Reputation(b))

	res, err := r.Finish()
	if err != nil {
		log.Fatal(err)
	}
	m := res.Metrics
	fmt.Printf("\nfinal: %d members (%d cooperative, %d freeriding kept at the margins)\n",
		res.Members, m.CoopInSystem, m.UncoopInSystem)
	fmt.Printf("admissions %d/%d coop/uncoop, %d refusals, audits %d ok / %d forfeited\n",
		m.AdmittedCoop, m.AdmittedUncoop,
		m.RefusedSelectiveCoop+m.RefusedSelectiveUncoop+m.RefusedRepCoop+m.RefusedRepUncoop,
		m.AuditsSatisfied, m.AuditsForfeited)

	fmt.Println("\nprotocol trace summary:")
	fmt.Print(tlog.Summary(2))
	if violations := tlog.Verify(); len(violations) != 0 {
		log.Fatalf("trace invariants violated: %v", violations)
	}
	fmt.Println("trace invariants verified ✓")
}

func isMember(r *scenario.Run, label string) bool {
	pid, ok := r.Labeled(label)
	return ok && r.World().IsAdmitted(pid)
}
