// Package snapshotfields defines an analyzer that cross-checks state
// structs against their checkpoint encoders. A package that keeps its
// snapshot logic in a snapshot.go file promises that every field of a
// snapshotted struct is accounted for there: either serialized,
// consulted, or rebuilt on restore. Adding a field to world.World (or
// any other snapshot carrier) without extending snapshot.go would
// otherwise ship silently and surface much later as checkpoint/resume
// divergence — a version-skew landmine this turns into a lint error.
//
// A struct participates when snapshot.go declares a method on it named
// Snapshot, Export or ExportState. A field counts as covered when any
// code in snapshot.go references it (selector or composite-literal
// key). Deliberately unserialized fields — derived caches, observer
// hooks — carry a //replend:allow snapshotfields directive at the field
// declaration, with the reason restore can afford to drop them.
package snapshotfields

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
)

// Analyzer cross-checks snapshotted structs against snapshot.go.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotfields",
	Doc: `require every field of a snapshotted struct to be handled by snapshot.go

For each struct with a Snapshot/Export/ExportState method declared in
the package's snapshot.go, every field must be referenced somewhere in
that file — serialized, consulted or rebuilt. Unreferenced fields are
checkpoint format skew in the making; fields that are deliberately not
part of the state must say why via //replend:allow snapshotfields at
their declaration.`,
	Run: run,
}

// encoderMethods are the method names that mark a receiver type as a
// snapshot carrier.
var encoderMethods = map[string]bool{
	"Snapshot":    true,
	"Export":      true,
	"ExportState": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	var snapFiles []*ast.File
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "snapshot.go" {
			snapFiles = append(snapFiles, f)
		}
	}
	if len(snapFiles) == 0 {
		return nil, nil
	}

	// Pass 1: receiver types of encoder methods declared in snapshot.go.
	carriers := map[*types.Named]bool{}
	for _, f := range snapFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !encoderMethods[fd.Name.Name] {
				continue
			}
			obj := pass.TypesInfo.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if _, isStruct := named.Underlying().(*types.Struct); isStruct {
					carriers[named] = true
				}
			}
		}
	}
	if len(carriers) == 0 {
		return nil, nil
	}

	// Pass 2: field objects of the carrier structs.
	fields := map[types.Object]*types.Named{}
	for named := range carriers {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			fields[st.Field(i)] = named
		}
	}

	// Pass 3: every identifier in snapshot.go that resolves to one of
	// those fields marks it covered. This catches w.field selectors,
	// composite-literal keys and method values alike.
	for _, f := range snapFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				delete(fields, obj)
			}
			return true
		})
	}

	// Anything left is a field snapshot.go never touches. Report at the
	// field declaration so the directive lives next to the field (keys
	// sorted by position: this suite holds itself to its own contract).
	missing := make([]types.Object, 0, len(fields))
	for obj := range fields {
		missing = append(missing, obj)
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i].Pos() < missing[j].Pos() })
	for _, obj := range missing {
		named := fields[obj]
		pass.Reportf(obj.Pos(), "field %s.%s is not referenced by the snapshot encoder in snapshot.go; serialize it, rebuild it on restore, or annotate with //replend:allow snapshotfields <why restore can drop it>", named.Obj().Name(), obj.Name())
	}
	return nil, nil
}
