package telemetry

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a sink that tracks the live position of a run — latest
// tick, population, records published — behind atomics, so a ticker
// goroutine (or a fleet worker's heartbeat sender) can read it while the
// simulation publishes. It retains nothing, writes nothing, and costs a
// few atomic stores per record.
type Progress struct {
	tick       atomic.Int64
	records    atomic.Int64
	population atomic.Int64
}

// Event implements Sink.
func (p *Progress) Event(e Event) {
	p.records.Add(1)
	p.tick.Store(e.At)
}

// Sample implements Sink. A sample on the conventional "population"
// series updates the live population gauge.
func (p *Progress) Sample(s Sample) {
	p.records.Add(1)
	p.tick.Store(s.At)
	if s.Series == "population" {
		p.population.Store(int64(s.Value))
	}
}

// Flush implements Sink.
func (p *Progress) Flush() error { return nil }

// Tick returns the latest tick any record carried.
func (p *Progress) Tick() int64 { return p.tick.Load() }

// Records returns the number of records published so far.
func (p *Progress) Records() int64 { return p.records.Load() }

// Population returns the latest population gauge value.
func (p *Progress) Population() int64 { return p.population.Load() }

// StartTicker starts a goroutine printing a live progress line to w
// every interval: tick, population, records/sec and resident set size.
// The returned stop function halts the ticker and waits for it; it is
// safe to call once. Progress lines are chatter, so w should be stderr —
// never stdout, which belongs to results.
func (p *Progress) StartTicker(w io.Writer, label string, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		last := p.Records()
		lastAt := time.Now()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := time.Now()
				recs := p.Records()
				rate := float64(recs-last) / now.Sub(lastAt).Seconds()
				last, lastAt = recs, now
				fmt.Fprintf(w, "%s: tick=%d pop=%d records/s=%.0f rss=%s\n",
					label, p.Tick(), p.Population(), rate, FormatBytes(RSSBytes()))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}

// RSSBytes returns the process's resident set size. It reads
// /proc/self/statm on Linux and falls back to the Go runtime's in-use
// heap+stack elsewhere (an undercount, but monotone enough for a
// progress line).
func RSSBytes() uint64 {
	if data, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(data))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return pages * uint64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse + ms.StackInuse
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
