// Package trace carries the same imports as the telemetry fixture but
// lives outside the telemetry watch list: no findings.
package trace

import (
	"math/rand"
	"time"

	"repro/internal/rng"
	"repro/internal/world"
)

func jitter() int { return rand.Int() }

func derive() uint64 { return rng.DeriveSeed(1, 2) }

func observe(w *world.World) bool { return w != nil }

func stamp() int64 { return time.Now().Unix() }
