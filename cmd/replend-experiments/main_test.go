package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperimentWritesOutputs(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-scale", "0.04", "-runs", "1", "-seed", "5", "-out", dir, "fig3",
	})
	if err != nil {
		t.Fatal(err)
	}
	table, err := os.ReadFile(filepath.Join(dir, "fig3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(table), "Figure 3") {
		t.Fatalf("table content wrong: %s", table)
	}
	// The figure report includes its ASCII plot.
	if !strings.Contains(string(table), "naive") {
		t.Fatal("plot/axis context missing")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "fig3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "frac_naive,") {
		t.Fatalf("csv header wrong: %s", csv)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-scale", "0.04", "-runs", "1", "-out", t.TempDir(), "figX"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-runs", "x"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestTelemetryByteIdenticalOutputs: the same experiment with -telemetry
// attached (which also forces replicas sequential) must write the
// byte-identical table and CSV.
func TestTelemetryByteIdenticalOutputs(t *testing.T) {
	refDir, gotDir := t.TempDir(), t.TempDir()
	base := []string{"-scale", "0.04", "-runs", "2", "-seed", "5"}
	if err := run(append(append([]string{}, base...), "-out", refDir, "fig3")); err != nil {
		t.Fatal(err)
	}
	telem := filepath.Join(gotDir, "run.jsonl")
	if err := run(append(append([]string{}, base...), "-out", gotDir, "-telemetry", telem, "fig3")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3.txt", "fig3.csv"} {
		ref, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(gotDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("%s differs between the bare and instrumented runs", name)
		}
	}
	stream, err := os.ReadFile(telem)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) == 0 {
		t.Fatal("telemetry stream is empty")
	}
	var rec struct {
		T string `json:"t"`
	}
	first := stream[:bytes.IndexByte(stream, '\n')]
	if err := json.Unmarshal(first, &rec); err != nil || (rec.T != "event" && rec.T != "sample") {
		t.Fatalf("first telemetry line is not a tagged record: %s", first)
	}
}

// TestObserveFlagValidation pins the observability flag interlocks.
func TestObserveFlagValidation(t *testing.T) {
	telem := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"-workers", "2", "-telemetry", telem, "fig3"}); err == nil {
		t.Fatal("-telemetry with a fleet accepted")
	}
	if err := run([]string{"-progress", "fig3"}); err == nil {
		t.Fatal("-progress without a fleet accepted")
	}
	if err := run([]string{"-pprof", "not-an-address", "fig3"}); err == nil {
		t.Fatal("unbindable -pprof address accepted")
	}
}
