// Package sim stands in for a watched simulation package: panics on
// the run path are forbidden unless annotated as audited invariants.
package sim

import "errors"

// apply is run-path code: its panic must become an error return.
func apply(n int) error {
	if n < 0 {
		panic("negative") // want `panic on the simulation run path`
	}
	return nil
}

// applyChecked is the contract-conformant shape: accepted.
func applyChecked(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

// newThing guards a constructor invariant, audited with a directive:
// silenced.
func newThing(p *int) *int {
	if p == nil {
		//replend:allow nopanic constructor misuse guard: a nil argument is a harness bug, not run state
		panic("nil")
	}
	return p
}
