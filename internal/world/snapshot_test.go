package world

// Checkpoint property tests: a restored world must continue
// byte-identically to the uninterrupted run (over randomized
// churn/crash/rejoin schedules and seed-derived checkpoint ticks),
// snapshotting must be idempotent (snapshot(restore(s)) == s), and the
// encoding must be deterministic — the same world serializes to the
// same bytes every time, which is what catches any map-iteration site
// that leaks into the capture.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/churn"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// churnyCfg is a fast configuration that exercises every checkpointable
// event kind: Poisson arrivals and departures, session clocks with
// crashes and rejoins, waiting-period intro events, stake timeouts and
// offline-stake expiries.
func churnyCfg(seed uint64) config.Config {
	c := config.Default()
	c.NumInit = 25
	c.NumTrans = 4000
	c.Lambda = 0.05
	c.WaitPeriod = 150
	c.SampleEvery = 500
	c.NumSM = 3
	c.Seed = seed
	c.StakeTimeout = 600
	c.Churn = churn.Params{
		Mu:           0.01,
		CrashFrac:    0.4,
		RejoinProb:   0.5,
		DowntimeMean: 250,
		SessionMean:  1500,
		SessionDist:  churn.SessionPareto,
	}
	return c
}

// fingerprint pins a world's complete observable output: the sealed
// snapshot encoding plus the rendered time series and protocol stats.
func fingerprint(t *testing.T, w *World) []byte {
	t.Helper()
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var buf bytes.Buffer
	buf.Write(data)
	buf.WriteString(metrics.CSV(w.Metrics().CoopCount, w.Metrics().UncoopCount, w.Metrics().CoopReputation))
	fmt.Fprintf(&buf, "%+v\n%+v\n", w.Protocol().Stats(), w.Bus().Stats())
	return buf.Bytes()
}

// roundTrip encodes, decodes and restores a world, asserting
// double-checkpoint idempotence along the way.
func roundTrip(t *testing.T, w *World) *World {
	t.Helper()
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot at tick %d: %v", w.Engine().Now(), err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	restored, err := Restore(dec)
	if err != nil {
		t.Fatalf("Restore at tick %d: %v", snap.Now, err)
	}
	snap2, err := restored.Snapshot()
	if err != nil {
		t.Fatalf("re-Snapshot after restore: %v", err)
	}
	data2, err := snap2.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("snapshot(restore(s)) != s at tick %d: %d vs %d bytes", snap.Now, len(data), len(data2))
	}
	return restored
}

func TestSnapshotRestoreByteIdentity(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := churnyCfg(seed)

			ref, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := ref.Run(); err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			want := fingerprint(t, ref)

			// The interrupted run round-trips through chained checkpoints
			// at seed-derived ticks, restoring into a fresh world each
			// time.
			w, err := New(cfg)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			w.Start()
			end := sim.Tick(cfg.NumTrans)
			cuts := []sim.Tick{
				sim.Tick(300 + (seed*997)%1200),
				sim.Tick(1800 + (seed*571)%1000),
				sim.Tick(3100 + (seed*233)%700),
			}
			now := sim.Tick(0)
			for _, cut := range cuts {
				if err := w.RunFor(cut - now); err != nil {
					t.Fatalf("RunFor to %d: %v", cut, err)
				}
				w = roundTrip(t, w)
				now = cut
			}
			if err := w.RunFor(end - now); err != nil {
				t.Fatalf("RunFor tail: %v", err)
			}
			w.Finish()
			got := fingerprint(t, w)
			if !bytes.Equal(want, got) {
				t.Fatalf("restored run diverged from uninterrupted run (fingerprints differ: %d vs %d bytes)", len(want), len(got))
			}
		})
	}
}

// TestSnapshotScriptedChurn exercises the scripted lifecycle paths a
// process-driven schedule cannot hit deterministically: batch crashes,
// scripted departures and explicit rejoins around the checkpoint.
func TestSnapshotScriptedChurn(t *testing.T) {
	cfg := churnyCfg(9)
	cfg.Churn.Mu = 0
	cfg.Churn.SessionMean = 0
	cfg.Churn.Migrate = true

	script := func(w *World) {
		if err := w.RunFor(900); err != nil {
			t.Fatalf("RunFor: %v", err)
		}
		admitted := w.AdmittedPeers()
		if len(admitted) < 8 {
			t.Fatalf("only %d admitted members", len(admitted))
		}
		if err := w.DepartBatch(admitted[2:4], true); err != nil {
			t.Fatalf("DepartBatch: %v", err)
		}
		if err := w.Crash(admitted[5]); err != nil {
			t.Fatalf("Crash: %v", err)
		}
		if err := w.RunFor(400); err != nil {
			t.Fatalf("RunFor: %v", err)
		}
	}
	after := func(w *World) {
		departed := w.DepartedPeers()
		if len(departed) == 0 {
			t.Fatal("no departed peers to rejoin")
		}
		if err := w.Rejoin(departed[0]); err != nil {
			t.Fatalf("Rejoin: %v", err)
		}
		if err := w.RunFor(1200); err != nil {
			t.Fatalf("RunFor: %v", err)
		}
		w.Finish()
	}

	ref, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref.Start()
	script(ref)
	after(ref)
	want := fingerprint(t, ref)

	w, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.Start()
	script(w)
	w = roundTrip(t, w)
	after(w)
	got := fingerprint(t, w)
	if !bytes.Equal(want, got) {
		t.Fatal("restored scripted-churn run diverged from uninterrupted run")
	}
}

// TestSnapshotEncodeDeterministic captures the same world twice and
// asserts identical bytes — Go randomizes map iteration per walk, so
// any capture path iterating a map raw fails this with high
// probability (the PR 4 rebuildSMDeps bug class).
func TestSnapshotEncodeDeterministic(t *testing.T) {
	w, err := New(churnyCfg(3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.Start()
	if err := w.RunFor(1500); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	var prev []byte
	for i := 0; i < 3; i++ {
		snap, err := w.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		data, err := snap.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if prev != nil && !bytes.Equal(prev, data) {
			t.Fatalf("capture %d of the same world produced different bytes", i)
		}
		prev = data
	}
}

func TestSnapshotPreconditions(t *testing.T) {
	w, err := New(churnyCfg(5))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("Snapshot before Start should fail")
	}
	w.Start()
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot after Start: %v", err)
	}
	w.Bus().SetLoss(0.1)
	if _, err := w.Snapshot(); err == nil {
		t.Fatal("Snapshot with transport faults active should fail")
	}
	w.Bus().SetLoss(0)
	if _, err := w.Snapshot(); err != nil {
		t.Fatalf("Snapshot after clearing faults: %v", err)
	}
}

func TestDecodeSnapshotRejectsDefects(t *testing.T) {
	w, err := New(churnyCfg(6))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w.Start()
	if err := w.RunFor(800); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	if _, err := DecodeSnapshot(data[:len(data)/2]); err == nil {
		t.Fatal("truncated checkpoint should be rejected")
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x20
	if _, err := DecodeSnapshot(corrupt); err == nil {
		t.Fatal("bit-flipped checkpoint should be rejected")
	}
	if _, err := DecodeSnapshot([]byte(`{"magic":"other","kind":"world","sha256":"","body":{}}`)); err == nil {
		t.Fatal("wrong magic should be rejected")
	}
	skew := *snap
	skew.Version = SnapshotVersion + 1
	if _, err := Restore(&skew); err == nil {
		t.Fatal("version-skewed snapshot should be rejected by Restore")
	}
	if _, err := skew.Encode(); err == nil {
		t.Fatal("version-skewed snapshot should be rejected by Encode")
	}
}
