package world

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/rng"
	"repro/internal/rocq"
)

// TestScoreManagerCacheMatchesFreshPlacement is the cache oracle: across a
// randomized join/leave/crash sequence, the cached ScoreManagers result for
// every live peer must always equal a fresh ring.ScoreManagers call. This
// pins the incremental invalidation rule (arc-dependency eviction) against
// the ground truth it claims to track.
func TestScoreManagerCacheMatchesFreshPlacement(t *testing.T) {
	cfg := config.Default()
	cfg.NumInit = 30
	cfg.Lambda = 0
	cfg.Seed = 3
	w, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	src := rng.New(99)
	var extras []*peer.Peer
	checkAll := func(step int) {
		t.Helper()
		for _, pid := range w.slotIDsSorted(func(s *worldSlot) bool { return s.pr != nil }) {
			if !w.ring.Contains(pid) {
				continue
			}
			got := w.ScoreManagers(pid)
			want, err := w.ring.ScoreManagers(pid, cfg.NumSM)
			if err != nil {
				t.Fatalf("step %d: fresh placement for %s: %v", step, pid.Short(), err)
			}
			if len(got) != len(want) {
				t.Fatalf("step %d: peer %s: cached %v != fresh %v", step, pid.Short(), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("step %d: peer %s: cached %v != fresh %v", step, pid.Short(), got, want)
				}
			}
		}
	}

	for step := 0; step < 400; step++ {
		switch op := src.Intn(10); {
		case op < 5: // join a new node
			p := peer.New(id.HashString(fmt.Sprintf("cache-prop-%d", step)), peer.Cooperative, peer.Naive, rocq.DefaultParams())
			if err := w.attachNode(p); err != nil {
				t.Fatal(err)
			}
			extras = append(extras, p)
		case op < 8: // leave: detach a previously joined extra node
			if len(extras) == 0 {
				continue
			}
			i := src.Intn(len(extras))
			w.detachNode(extras[i].ID)
			extras = append(extras[:i], extras[i+1:]...)
		default: // crash a transport node: must not disturb placement
			if len(extras) > 0 {
				w.Bus().Crash(extras[src.Intn(len(extras))].ID)
			}
		}
		// Query a random subset between membership events so the cache
		// holds warm entries when the next change lands.
		for i := 0; i < 5; i++ {
			for _, pid := range w.slotIDsSorted(func(s *worldSlot) bool { return s.pr != nil }) {
				if w.ring.Contains(pid) {
					_ = w.ScoreManagers(pid)
					break
				}
			}
		}
		checkAll(step)
		if w.Err() != nil {
			t.Fatalf("step %d: world failed: %v", step, w.Err())
		}
	}
}

// TestDetachEvictsAllPerPeerState is the leak regression: a high-refusal
// workload (all-selective introducers, mostly uncooperative arrivals) must
// not accrete per-peer state for the peers it turns away. Every map the
// world or protocol keys by node must track the live population.
func TestDetachEvictsAllPerPeerState(t *testing.T) {
	c := smallCfg()
	c.FracNaive = 0 // every introducer is selective
	c.ErrSel = 0    // and never errs: every uncooperative arrival is refused
	c.FracUncoop = 0.8
	c.NumTrans = 12000
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	refused := m.RefusedSelectiveCoop + m.RefusedSelectiveUncoop + m.RefusedRepCoop + m.RefusedRepUncoop
	if refused == 0 {
		t.Fatal("scenario produced no refusals; leak regression needs them")
	}
	// Live population: admitted members plus arrivals still waiting.
	live := int64(w.PopulationSize()) + m.Pending
	check := func(name string, got int) {
		if int64(got) > live {
			t.Errorf("%s holds %d entries for %d live peers (leak of refused peers)", name, got, live)
		}
	}
	check("peers", len(w.slotIDsSorted(func(s *worldSlot) bool { return s.pr != nil })))
	check("ring", w.Ring().Size())
	check("stores", len(w.slotIDsSorted(func(s *worldSlot) bool { return s.store != nil })))
	check("smCache", len(w.smCache))
	// The arena itself must not leak: every assigned ordinal belongs to a
	// peer holding some live state, so slots track the live population too.
	arenaLive, _ := w.ArenaSlots()
	check("arena slots", arenaLive)
	check("protocol signers", w.Protocol().RegisteredPeers())
	check("protocol manager states", w.Protocol().ManagerStates())
	if got := w.topo.Len(); got != w.PopulationSize() {
		t.Errorf("topology tracks %d peers, population is %d", got, w.PopulationSize())
	}
	// The dependency index is lazy, but it must not exceed one slot per
	// (peer, manager) pair for the live population by more than the
	// transient slack of entries awaiting compaction.
	slots := 0
	for _, peers := range w.smDeps {
		slots += len(peers)
	}
	if max := int(live+1) * (c.NumSM + 2) * 2; slots > max {
		t.Errorf("dependency index holds %d slots, want <= %d", slots, max)
	}
}
