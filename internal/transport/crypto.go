package transport

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/id"
	"repro/internal/rng"
)

// The paper requires the introducer to send "a signed message to its score
// managers telling them to deduct the lent amount from its reputation",
// carrying "the identity of both the introducer and the new peer … as well
// as a unique id to prevent duplicate requests". Signer/Envelope implement
// that: Ed25519 signatures over a canonical encoding of the lend order.

// Identity is a node's pluggable signing identity. The default is Signer
// (real Ed25519 keys); NullIdentity is the explicit fidelity opt-out for
// huge simulation sweeps where the per-lend signature floor dominates.
// Verification is split so callers can gate the expensive half behind a
// cache: PublicEquals is the cheap "is this the claimed node's key" check,
// VerifyEnvelope the cryptographic one.
type Identity interface {
	// Sign wraps the order in an envelope attributable to this identity.
	Sign(o LendOrder) Envelope
	// PublicEquals reports whether pub is this identity's verification key.
	PublicEquals(pub ed25519.PublicKey) bool
	// VerifyEnvelope checks that the envelope's signature matches its own
	// public key; callers check PublicEquals first.
	VerifyEnvelope(env Envelope) bool
	// Tombstone returns a verification-only identity able to validate
	// signatures this identity already produced — kept after the node
	// departs, since its envelopes may still be in flight — or nil when
	// no such signature can exist.
	Tombstone() Identity
}

// Signer holds a node's Ed25519 keypair, generated lazily on first use:
// most simulated peers never sign anything (only introducers and auditing
// score managers do), and key generation is a scalar multiplication —
// expensive enough to dominate the arrival path if done eagerly.
type Signer struct {
	src  *rng.Source
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// detRand adapts an rng.Source to io.Reader so key generation is
// deterministic under a simulation seed.
type detRand struct{ src *rng.Source }

func (d detRand) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], d.src.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}

// NewSigner wraps a deterministic source as a signing identity. The
// keypair itself is derived on first use; the source is private to this
// signer, so the deferral cannot perturb any other random stream and whole
// simulation runs stay reproducible.
func NewSigner(src *rng.Source) (*Signer, error) {
	if src == nil {
		return nil, errors.New("transport: signer needs a randomness source")
	}
	return &Signer{src: src}, nil
}

// materialize derives the keypair from the signer's source if it has not
// been derived yet.
func (s *Signer) materialize() {
	if s.priv != nil {
		return
	}
	pub, priv, err := ed25519.GenerateKey(detRand{s.src})
	if err != nil {
		// detRand cannot fail, and ed25519.GenerateKey has no other
		// error path for a working reader.
		//replend:allow nopanic construction-time invariant: the deterministic reader never errors
		panic(fmt.Sprintf("transport: generating keypair: %v", err))
	}
	s.pub, s.priv = pub, priv
}

// Public returns the public key, which peers distribute alongside their
// identifier when they join.
func (s *Signer) Public() ed25519.PublicKey {
	s.materialize()
	return s.pub
}

// GeneratedPublic returns the public key only if the keypair has already
// been derived (i.e. the signer has signed or been asked for its key),
// without forcing derivation. Consumers use it to decide whether any
// signature from this identity can exist in flight.
func (s *Signer) GeneratedPublic() (ed25519.PublicKey, bool) {
	if s.priv == nil {
		return nil, false
	}
	return s.pub, true
}

// PublicEquals reports whether pub is this signer's verification key,
// deriving the keypair if needed.
func (s *Signer) PublicEquals(pub ed25519.PublicKey) bool {
	s.materialize()
	return s.pub.Equal(pub)
}

// VerifyEnvelope runs the Ed25519 check of the envelope against its own
// public key (the caller has already matched that key via PublicEquals).
func (s *Signer) VerifyEnvelope(env Envelope) bool {
	return ed25519.Verify(env.Pub, env.Order.Encode(), env.Sig)
}

// Tombstone returns a verification-only identity when the signer has ever
// derived its keypair (so a signature of its may be in flight), nil
// otherwise.
func (s *Signer) Tombstone() Identity {
	pub, ok := s.GeneratedPublic()
	if !ok {
		return nil
	}
	return verifyOnly{pub: pub}
}

// verifyOnly is the tombstone of a departed Signer: it can validate the
// departed node's past signatures but can never produce new ones.
type verifyOnly struct{ pub ed25519.PublicKey }

func (v verifyOnly) Sign(LendOrder) Envelope {
	//replend:allow nopanic caller-contract invariant: the protocol never asks a tombstone to sign (it only verifies)
	panic("transport: departed identity cannot sign")
}
func (v verifyOnly) PublicEquals(pub ed25519.PublicKey) bool { return v.pub.Equal(pub) }
func (v verifyOnly) VerifyEnvelope(env Envelope) bool {
	return ed25519.Verify(env.Pub, env.Order.Encode(), env.Sig)
}
func (v verifyOnly) Tombstone() Identity { return v }

// nullTag fills the 12 public-key bytes past the 20-byte node identifier,
// marking a null identity's pseudo-key.
const nullTag = "null-sign///"

// NullIdentity is the opt-out signing identity: envelopes carry no
// signature and verification only checks that the pseudo public key —
// the owner's identifier padded with a marker — matches the claimed
// sender. Identity binding (a lend order is attributed to exactly one
// node) survives; cryptographic unforgeability is explicitly given up.
type NullIdentity struct{ pub ed25519.PublicKey }

// NewNullIdentity derives the null identity of a node.
func NewNullIdentity(owner id.ID) NullIdentity {
	pub := make(ed25519.PublicKey, ed25519.PublicKeySize)
	copy(pub, owner[:])
	copy(pub[id.Bytes:], nullTag)
	return NullIdentity{pub: pub}
}

// Sign wraps the order in an unsigned envelope carrying the pseudo key.
func (n NullIdentity) Sign(o LendOrder) Envelope { return Envelope{Order: o, Pub: n.pub} }

// PublicEquals reports whether pub is this identity's pseudo key.
func (n NullIdentity) PublicEquals(pub ed25519.PublicKey) bool { return n.pub.Equal(pub) }

// VerifyEnvelope accepts exactly the unsigned envelopes this identity
// produces.
func (n NullIdentity) VerifyEnvelope(env Envelope) bool {
	return len(env.Sig) == 0 && n.pub.Equal(env.Pub)
}

// Tombstone returns nil: a null identity is a pure function of its
// owner's identifier, so a verifier can re-derive it on demand instead
// of retaining per-departed-peer state — retention would accrete one
// entry per refused or departed peer for the run's lifetime, in exactly
// the huge-sweep mode null signing exists for.
func (n NullIdentity) Tombstone() Identity { return nil }

// LendOrder is the canonical content of a signed lend instruction: who
// lends how much to whom, with a unique nonce that score managers use to
// reject duplicate requests.
type LendOrder struct {
	Introducer id.ID
	NewPeer    id.ID
	Amount     float64 // reputation lent, in [0,1]
	Nonce      uint64  // unique per introduction
}

// Encode renders the order in its fixed-width canonical byte form (the
// bytes that get signed).
func (o LendOrder) Encode() []byte {
	buf := make([]byte, 0, 2*id.Bytes+16)
	buf = append(buf, o.Introducer[:]...)
	buf = append(buf, o.NewPeer[:]...)
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(o.Amount))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], o.Nonce)
	buf = append(buf, tmp[:]...)
	return buf
}

// DecodeLendOrder parses the canonical byte form.
func DecodeLendOrder(b []byte) (LendOrder, error) {
	var o LendOrder
	if len(b) != 2*id.Bytes+16 {
		return o, fmt.Errorf("transport: lend order has %d bytes, want %d", len(b), 2*id.Bytes+16)
	}
	copy(o.Introducer[:], b[:id.Bytes])
	copy(o.NewPeer[:], b[id.Bytes:2*id.Bytes])
	o.Amount = math.Float64frombits(binary.BigEndian.Uint64(b[2*id.Bytes : 2*id.Bytes+8]))
	o.Nonce = binary.BigEndian.Uint64(b[2*id.Bytes+8:])
	return o, nil
}

// Envelope is a signed lend order plus the public key needed to verify it.
type Envelope struct {
	Order LendOrder
	Sig   []byte
	Pub   ed25519.PublicKey
}

// ErrBadSignature reports a failed envelope verification.
var ErrBadSignature = errors.New("transport: signature verification failed")

// Sign wraps the order in a verified envelope.
func (s *Signer) Sign(o LendOrder) Envelope {
	s.materialize()
	body := o.Encode()
	return Envelope{Order: o, Sig: ed25519.Sign(s.priv, body), Pub: s.pub}
}

// Verify checks the envelope's signature against its own public key and,
// when expected is non-nil, that the key matches the one on record for the
// introducer (otherwise any keypair could impersonate any peer).
func (e Envelope) Verify(expected ed25519.PublicKey) error {
	if len(e.Pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key size %d", ErrBadSignature, len(e.Pub))
	}
	if expected != nil && !e.Pub.Equal(expected) {
		return fmt.Errorf("%w: public key does not match introducer's registered key", ErrBadSignature)
	}
	if !ed25519.Verify(e.Pub, e.Order.Encode(), e.Sig) {
		return ErrBadSignature
	}
	return nil
}
