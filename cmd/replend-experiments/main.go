// Command replend-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	replend-experiments [-scale f] [-runs n] [-out dir] [experiment ...]
//	replend-experiments -all
//
// Experiments: fig1 successrate fig2 fig3 fig4 fig6 collusion baselines
// ("fig5" shares fig4's sweep and is included in its output).
//
// At -scale 1 the full paper-scale workloads run (Figure 2 alone is 80
// half-million-tick simulations); -scale 0.1 reproduces the shapes in a
// couple of minutes. Each experiment writes <name>.txt (the comparison
// table, with the paper's expected shape quoted underneath) and <name>.csv
// (the raw series) into the output directory, and prints the tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "replend-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("replend-experiments", flag.ContinueOnError)
	var (
		scale    = fs.Float64("scale", 0.1, "workload scale (1 = full paper scale)")
		runs     = fs.Int("runs", 10, "replicas averaged per data point (paper: 10)")
		parallel = fs.Int("parallel", 0, "concurrent replicas (0 = GOMAXPROCS)")
		seed     = fs.Uint64("seed", 1, "base random seed")
		outDir   = fs.String("out", "results", "output directory for .txt and .csv files")
		all      = fs.Bool("all", false, "run every experiment")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if *all || len(names) == 0 {
		names = experiments.Names()
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	opt := experiments.Options{
		Runs:     *runs,
		Parallel: *parallel,
		Scale:    *scale,
		SeedBase: *seed,
	}
	for _, name := range names {
		start := time.Now()
		fmt.Printf("=== %s (scale %g, %d runs) ===\n", name, *scale, *runs)
		rep, err := experiments.Run(name, opt)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		table := rep.Table()
		fmt.Println(table)
		if plot := experiments.PlotOf(rep); plot != "" {
			fmt.Println(plot)
			table += "\n" + plot
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))

		if err := os.WriteFile(filepath.Join(*outDir, rep.Name()+".txt"), []byte(table), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(*outDir, rep.Name()+".csv"), []byte(rep.CSV()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("results written to %s\n", *outDir)
	return nil
}
