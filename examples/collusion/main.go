// Collusion: the attack the paper's introduction worries about, and the
// staking defence in action.
//
// "One member of a group of colluding peers enters the system and behaves
// honestly to accumulate reputation. It then recommends the other
// malicious peers into the group." The defence: every introduction stakes
// introAmt of the mole's reputation, freeriders fail their audit so the
// stake is forfeited, and once the mole falls below minIntroRep its score
// managers refuse to execute further lends.
//
// Run with: go run ./examples/collusion
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/world"
)

func main() {
	cfg := config.Default()
	cfg.NumInit = 150
	cfg.NumTrans = 200_000
	cfg.Lambda = 0
	cfg.WaitPeriod = 500
	cfg.AuditTrans = 10
	cfg.Seed = 99

	w, err := world.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w.Start()

	// The mole enters honestly through a naive member and farms
	// reputation.
	var entry = w.AdmittedPeers()[0]
	for _, pid := range w.AdmittedPeers() {
		if p, _ := w.Peer(pid); p.Style == peer.Naive {
			entry = pid
			break
		}
	}
	mole, err := w.InjectArrival(peer.Cooperative, peer.Naive, entry)
	if err != nil {
		log.Fatal(err)
	}
	w.RunFor(30_000)
	fmt.Printf("mole %s farmed reputation %.3f (floor for introducing: %.2f, stake per lend: %.2f)\n",
		mole.Short(), w.Reputation(mole), cfg.MinIntroRep, cfg.IntroAmt)
	bound := (w.Reputation(mole) - cfg.MinIntroRep) / cfg.IntroAmt
	fmt.Printf("staking bound: at most ~%.0f consecutive unreturned lends before the floor\n\n", bound)

	// The spree: the mole introduces freeriding colluders, one per
	// waiting period (parallel introductions are caught and zeroed).
	fmt.Println("wave  mole-rep  colluder  admitted")
	admitted := 0
	for wave := 1; wave <= 12; wave++ {
		colluder, err := w.InjectArrival(peer.Uncooperative, peer.Naive, mole)
		if err != nil {
			log.Fatal(err)
		}
		w.RunFor(sim.Tick(cfg.WaitPeriod + 1))
		in := contains(w.AdmittedPeers(), colluder)
		if in {
			admitted++
		}
		fmt.Printf("%4d  %8.3f  %s  %v\n", wave, w.Reputation(mole), colluder.Short(), in)
	}

	// Let audits fire and the dust settle.
	w.RunFor(40_000)
	m := w.Metrics()
	fmt.Printf("\nafter the dust settles:\n")
	fmt.Printf("  colluders admitted: %d of 12 (staking bound held)\n", admitted)
	fmt.Printf("  mole reputation: %.3f\n", w.Reputation(mole))
	fmt.Printf("  audits forfeited: %d (each cost the mole its stake)\n", m.AuditsForfeited)
	worst := 0.0
	for _, pid := range w.AdmittedPeers() {
		p, _ := w.Peer(pid)
		if p.Class == peer.Uncooperative {
			if r := w.Reputation(pid); r > worst {
				worst = r
			}
		}
	}
	fmt.Printf("  highest colluder reputation: %.3f — the clique never gained a foothold\n", worst)
}

func contains(ids []id.ID, x id.ID) bool {
	for _, v := range ids {
		if v == x {
			return true
		}
	}
	return false
}
