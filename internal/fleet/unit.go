package fleet

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// RunJob executes one work unit in this process and returns its result.
// It is the worker's whole computational surface — the coordinator path
// and the in-process replica runner both reduce a unit to exactly this
// (build the world from the payload, seed it from the job, run it, read
// the metrics), which is what the equivalence goldens pin. A panic inside
// the unit is reported as a deterministic unit error rather than killing
// the worker: the same job would panic identically on every retry, so the
// coordinator must fail the batch with the message, not cycle workers.
func RunJob(job *Job) *Result { return RunJobWithProgress(job, nil) }

// RunJobWithProgress is RunJob with a telemetry gauge attached to the
// unit's world, so a concurrent observer (the worker heartbeat) can read
// the unit's tick as it advances. The gauge rides a write-only telemetry
// bus: attaching it changes no draw and no output, which the world's
// determinism tests pin byte for byte — fleet results stay identical to
// in-process results with or without it.
func RunJobWithProgress(job *Job, progress *telemetry.Progress) (res *Result) {
	res = &Result{Unit: job.Unit, Epoch: job.Epoch}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("unit %d panicked: %v", job.Unit, r)
			res.Scenario, res.Config, res.Segment = nil, nil, nil
		}
	}()
	var bus *telemetry.Bus
	if progress != nil {
		bus = telemetry.NewBus()
		bus.Attach(progress)
	}
	switch job.Kind {
	case KindScenario:
		sr, err := runScenarioUnit(job, bus)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Scenario = sr
	case KindConfig:
		cr, err := runConfigUnit(job, bus)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Config = cr
	case KindSegment:
		sr, err := runSegmentUnit(job, bus)
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Segment = sr
	default:
		res.Err = fmt.Sprintf("unknown job kind %q", job.Kind)
	}
	return res
}

// runScenarioUnit executes a scenario replica: the dispatched spec with
// the unit's derived seed.
func runScenarioUnit(job *Job, bus *telemetry.Bus) (*ScenarioResult, error) {
	spec, err := scenario.Load(job.Spec)
	if err != nil {
		return nil, err
	}
	spec.Base.Seed = job.Seed
	r, err := spec.Start()
	if err != nil {
		return nil, err
	}
	r.World().SetTelemetry(bus)
	out, err := r.Finish()
	if err != nil {
		return nil, fmt.Errorf("scenario %q seed %d: %w", spec.Name, job.Seed, err)
	}
	return &ScenarioResult{
		Metrics:         out.Metrics,
		Proto:           out.Proto,
		Outcomes:        out.Outcomes,
		FinalReputation: out.FinalReputation,
		Members:         out.Members,
	}, nil
}

// runSegmentUnit resumes a sealed checkpoint and advances it: to the
// job's target tick (returning the re-sealed state) or, when Final, to
// the end of the run (returning the result payload). Both checkpoint
// kinds are accepted; dispatch is on the envelope's kind tag.
func runSegmentUnit(job *Job, bus *telemetry.Bus) (*SegmentResult, error) {
	kind, body, err := checkpoint.Open(job.Checkpoint)
	if err != nil {
		return nil, err
	}
	switch kind {
	case checkpoint.KindScenario:
		st, err := scenario.DecodeRunStateBody(body)
		if err != nil {
			return nil, err
		}
		r, err := scenario.Resume(st)
		if err != nil {
			return nil, err
		}
		r.World().SetTelemetry(bus)
		if job.Final {
			out, err := r.Finish()
			if err != nil {
				return nil, err
			}
			return &SegmentResult{Scenario: &ScenarioResult{
				Metrics:         out.Metrics,
				Proto:           out.Proto,
				Outcomes:        out.Outcomes,
				FinalReputation: out.FinalReputation,
				Members:         out.Members,
			}}, nil
		}
		if err := r.RunToTick(sim.Tick(job.Until)); err != nil {
			return nil, err
		}
		next, err := r.Snapshot()
		if err != nil {
			return nil, err
		}
		data, err := next.Encode()
		if err != nil {
			return nil, err
		}
		return &SegmentResult{Checkpoint: data}, nil
	case checkpoint.KindWorld:
		snap, err := world.DecodeSnapshotBody(body)
		if err != nil {
			return nil, err
		}
		w, err := world.Restore(snap)
		if err != nil {
			return nil, err
		}
		w.SetTelemetry(bus)
		if job.Final {
			if end := sim.Tick(w.Config().NumTrans); w.Engine().Now() < end {
				if err := w.RunFor(end - w.Engine().Now()); err != nil {
					return nil, err
				}
			}
			w.Finish()
			return &SegmentResult{Config: &ConfigResult{Metrics: *w.Metrics(), Proto: w.Protocol().Stats()}}, nil
		}
		if until := sim.Tick(job.Until); w.Engine().Now() < until {
			if err := w.RunFor(until - w.Engine().Now()); err != nil {
				return nil, err
			}
		}
		next, err := w.Snapshot()
		if err != nil {
			return nil, err
		}
		data, err := next.Encode()
		if err != nil {
			return nil, err
		}
		return &SegmentResult{Checkpoint: data}, nil
	default:
		return nil, fmt.Errorf("segment checkpoint of unknown kind %q", kind)
	}
}

// runConfigUnit executes a configured-world replica, optionally under a
// named baseline bootstrap policy, with the unit's derived seed.
func runConfigUnit(job *Job, bus *telemetry.Bus) (*ConfigResult, error) {
	cfg, err := config.Load(job.Config)
	if err != nil {
		return nil, err
	}
	cfg.Seed = job.Seed
	if job.NullSign {
		cfg.NullSign = true
	}
	w, err := world.New(cfg)
	if err != nil {
		return nil, err
	}
	w.SetTelemetry(bus)
	if job.Policy != "" {
		pol, err := baseline.ByName(job.Policy)
		if err != nil {
			return nil, err
		}
		w.SetPolicy(pol)
	}
	if err := w.Run(); err != nil {
		return nil, fmt.Errorf("config seed %d: %w", job.Seed, err)
	}
	return &ConfigResult{Metrics: *w.Metrics(), Proto: w.Protocol().Stats()}, nil
}
