package config

import (
	"strings"
	"testing"

	"repro/internal/topology"
)

// TestTable1Defaults pins the paper's Table 1 values (experiment T1).
func TestTable1Defaults(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"numInit", c.NumInit, 500},
		{"numTrans", c.NumTrans, int64(500000)},
		{"numSM", c.NumSM, 6},
		{"lambda", c.Lambda, 0.01},
		{"fracUncoop", c.FracUncoop, 0.25},
		{"fracNaive", c.FracNaive, 0.3},
		{"errSel", c.ErrSel, 0.10},
		{"topology", c.Topology, topology.PowerLaw},
		{"waitPeriod", c.WaitPeriod, int64(1000)},
		{"auditTrans", c.AuditTrans, 20},
		{"introAmt", c.IntroAmt, 0.1},
		{"reward", c.Reward, 0.02},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %v, want %v", ch.name, ch.got, ch.want)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	// Reward must be 20% of IntroAmt (§4.3 coupling).
	if diff := c.Reward - 0.2*c.IntroAmt; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("reward %v is not 20%% of introAmt %v", c.Reward, c.IntroAmt)
	}
	// MinIntroRep must exceed IntroAmt (§3).
	if c.MinIntroRep <= c.IntroAmt {
		t.Errorf("minIntroRep %v does not exceed introAmt %v", c.MinIntroRep, c.IntroAmt)
	}
}

func TestWithIntroAmt(t *testing.T) {
	c := Default().WithIntroAmt(0.45)
	if c.IntroAmt != 0.45 {
		t.Fatalf("IntroAmt = %v", c.IntroAmt)
	}
	if diff := c.Reward - 0.2*0.45; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Reward = %v, want 20%% of lent", c.Reward)
	}
	if c.MinIntroRep <= c.IntroAmt {
		t.Fatalf("MinIntroRep %v must be raised above IntroAmt %v", c.MinIntroRep, c.IntroAmt)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("swept config invalid: %v", err)
	}
	// Small amounts keep the default floor.
	c2 := Default().WithIntroAmt(0.05)
	if c2.MinIntroRep != 0.5 {
		t.Fatalf("MinIntroRep changed unnecessarily: %v", c2.MinIntroRep)
	}
}

func TestValidateRejectsBadValues(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative NumInit", func(c *Config) { c.NumInit = -1 }},
		{"zero NumTrans", func(c *Config) { c.NumTrans = 0 }},
		{"zero NumSM", func(c *Config) { c.NumSM = 0 }},
		{"negative Lambda", func(c *Config) { c.Lambda = -0.1 }},
		{"FracUncoop > 1", func(c *Config) { c.FracUncoop = 1.1 }},
		{"FracNaive < 0", func(c *Config) { c.FracNaive = -0.1 }},
		{"ErrSel > 1", func(c *Config) { c.ErrSel = 2 }},
		{"bad topology", func(c *Config) { c.Topology = "ring" }},
		{"negative WaitPeriod", func(c *Config) { c.WaitPeriod = -5 }},
		{"zero AuditTrans", func(c *Config) { c.AuditTrans = 0 }},
		{"zero IntroAmt", func(c *Config) { c.IntroAmt = 0 }},
		{"MinIntroRep <= IntroAmt", func(c *Config) { c.MinIntroRep = 0.1 }},
		{"AuditThreshold > 1", func(c *Config) { c.AuditThreshold = 1.5 }},
		{"zero FounderRep", func(c *Config) { c.FounderRep = 0 }},
		{"zero SampleEvery", func(c *Config) { c.SampleEvery = 0 }},
	}
	for _, tc := range cases {
		c := Default()
		tc.mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := Default()
	orig.Lambda = 0.1
	orig.Seed = 99
	data, err := orig.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, orig)
	}
}

func TestLoadAppliesDefaults(t *testing.T) {
	got, err := Load([]byte(`{"lambda": 0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Lambda != 0.1 {
		t.Fatalf("lambda = %v", got.Lambda)
	}
	if got.NumInit != 500 || got.NumSM != 6 {
		t.Fatalf("defaults not applied: %+v", got)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load([]byte(`{"numSM": 0}`)); err == nil {
		t.Fatal("invalid config loaded")
	}
	if _, err := Load([]byte(`{not json`)); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("bad JSON: %v", err)
	}
}
