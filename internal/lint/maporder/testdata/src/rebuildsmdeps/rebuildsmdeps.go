// Package rebuildsmdeps reproduces the PR 4 rebuildSMDeps map-order
// bug: rebuilding a per-owner index by walking the placement cache in
// map order filled each owner's slice process-randomly, which
// reordered dirty-queue flushes and wobbled sampled reputation sums in
// their last ulps. The analyzer must flag the original shape and
// accept the sorted-keys repair that fixed it.
package rebuildsmdeps

import "sort"

type entry struct{ owner int }

type world struct {
	smCache map[string]entry
	smDeps  map[int][]string
}

// rebuildSMDepsBuggy is the historical bug: the bucket is keyed by the
// entry's owner, not the loop key, so each owner's slice accretes in
// map iteration order.
func (w *world) rebuildSMDepsBuggy() {
	w.smDeps = map[int][]string{}
	for p, e := range w.smCache { // want `keyed by something other than the loop key`
		w.smDeps[e.owner] = append(w.smDeps[e.owner], p)
	}
}

// rebuildSMDepsFixed is the repair that shipped: walk the cache keys
// in sorted order, so every rebuild fills the buckets identically.
func (w *world) rebuildSMDepsFixed() {
	keys := make([]string, 0, len(w.smCache))
	for p := range w.smCache {
		keys = append(keys, p)
	}
	sort.Strings(keys)
	w.smDeps = map[int][]string{}
	for _, p := range keys {
		e := w.smCache[p]
		w.smDeps[e.owner] = append(w.smDeps[e.owner], p)
	}
}
