// Package telemetry stands in for a watched telemetry package (its
// import path ends in internal/telemetry): RNG and simulation-state
// imports are forbidden here, wall-clock reads are not.
package telemetry

import (
	"math/rand" // want `telemetry package imports math/rand`
	"time"

	"repro/internal/rng"   // want `telemetry package imports repro/internal/rng`
	"repro/internal/world" // want `imports simulation package repro/internal/world`
)

func jitter() int { return rand.Int() }

func derive() uint64 { return rng.DeriveSeed(1, 2) }

func observe(w *world.World) bool { return w != nil }

// stamp reads the wall clock: allowed in telemetry, unlike in
// simulation packages — progress tickers and spans time real execution,
// which never reaches simulation output.
func stamp() int64 { return time.Now().Unix() }
