// Package watch defines which packages the determinism analyzers bind.
// The simulation core must be a pure function of configuration and
// seeds; the orchestration edge (fleet, the CLIs) legitimately touches
// wall clocks for heartbeats, timeouts and progress logging. rngpurity
// and nopanic consult this split — it is the structural half of the
// allowlist policy described in docs/determinism.md (the other half is
// per-line //replend:allow directives).
package watch

import "strings"

// simSuffixes are the import-path suffixes of the deterministic
// simulation packages. internal/rng is deliberately absent: it is the
// sanctioned wrapper all stochastic behavior must flow through.
// internal/fleet and cmd/* are deliberately absent: coordinator
// heartbeats, worker deadlines and CLI progress timing are wall-clock
// by nature and never feed simulation output bytes.
var simSuffixes = []string{
	"internal/world",
	"internal/lending",
	"internal/churn",
	"internal/workload",
	"internal/scenario",
	"internal/overlay",
	"internal/rocq",
	"internal/topology",
	"internal/sim",
	"internal/arena",
	"internal/transport",
}

// SimPackage reports whether the import path names a package under the
// determinism contract.
func SimPackage(path string) bool {
	return matches(path, simSuffixes)
}

// SimPackages returns the watched suffix list (for docs and tests).
func SimPackages() []string {
	return append([]string(nil), simSuffixes...)
}

// telemetrySuffixes are the observability packages under the write-only
// telemetry contract. They are deliberately not simSuffixes: progress
// tickers and span recorders are wall-clock by nature, so rngpurity's
// time.Now ban does not bind here — but drawing randomness or importing
// simulation state would let observation feed back into output bytes,
// which telemetrypurity forbids.
var telemetrySuffixes = []string{
	"internal/telemetry",
}

// TelemetryPackage reports whether the import path names a package
// under the write-only telemetry contract.
func TelemetryPackage(path string) bool {
	return matches(path, telemetrySuffixes)
}

// TelemetryPackages returns the watched suffix list (for docs and tests).
func TelemetryPackages() []string {
	return append([]string(nil), telemetrySuffixes...)
}

// matches reports whether path equals or ends in one of the suffixes.
func matches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
