// Package nopanic defines an analyzer enforcing the PR 2 error contract
// on the simulation run path: run failures propagate through
// World.Err/Run error returns so a fleet worker or a scenario replica
// fails its unit cleanly instead of taking the process (and with it,
// sibling replicas and the coordinator protocol) down. A panic in a
// simulation package must be an audited invariant — a "can't happen"
// programmer-error guard — and carries a //replend:allow nopanic
// directive saying why it can't.
package nopanic

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/watch"
)

// Analyzer forbids unaudited panics in simulation packages.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc: `forbid panic on the simulation run path

Simulation packages report run-path failures through error returns
(World.Err and the Run/RunFor contract), never panic: a panicking
replica kills sibling replicas, fleet workers and the coordinator
protocol with it. Each remaining panic must be a justified invariant
guard, annotated //replend:allow nopanic <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !watch.SimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
				return true
			}
			pass.Reportf(call.Pos(), "panic on the simulation run path; propagate an error (World.Err contract), or annotate the invariant with //replend:allow nopanic <reason>")
			return true
		})
	}
	return nil, nil
}
