package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// tiny returns options that shrink every experiment enough for CI while
// preserving the qualitative shapes.
func tiny() Options {
	return Options{Runs: 2, Scale: 0.04, SeedBase: 11}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 10 || o.Parallel < 1 || o.Scale != 1 || o.SeedBase == 0 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestOptionsApplyScaling(t *testing.T) {
	o := Options{Scale: 0.1}.withDefaults()
	c := o.apply(fig1Config())
	if c.NumInit != 50 || c.NumTrans != 5000 {
		t.Fatalf("scaled config = %+v", c)
	}
	if c.SampleEvery != 50 {
		t.Fatalf("SampleEvery = %d", c.SampleEvery)
	}
	// Floors kick in at extreme scales.
	o2 := Options{Scale: 0.001}.withDefaults()
	c2 := o2.apply(fig1Config())
	if c2.NumInit < 20 || c2.NumTrans < 2000 {
		t.Fatalf("floors not applied: %+v", c2)
	}
}

func TestFig1Shape(t *testing.T) {
	f, err := RunFig1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []topology.Kind{topology.Random, topology.PowerLaw} {
		if f.FinalCoop[k] <= 0 {
			t.Fatalf("%v: no cooperative peers", k)
		}
		// Headline claim: uncooperative admissions grow far slower than
		// 1/3 of cooperative admissions (the arriving ratio).
		if f.Slope[k] >= 1.0/3 {
			t.Fatalf("%v: slope %v not below arriving ratio 1/3", k, f.Slope[k])
		}
		// The populations must actually grow over the run.
		first := f.Coop[k].Points[0].V
		last := f.Coop[k].Points[len(f.Coop[k].Points)-1].V
		if last <= first {
			t.Fatalf("%v: cooperative population did not grow (%v -> %v)", k, first, last)
		}
	}
	if !strings.Contains(f.Table(), "Figure 1") {
		t.Fatal("table missing title")
	}
	if !strings.HasPrefix(f.CSV(), "coop_random,") {
		t.Fatal("CSV header wrong")
	}
}

func TestSuccessRateShape(t *testing.T) {
	s, err := RunSuccessRate(tiny())
	if err != nil {
		t.Fatal(err)
	}
	with := s.WithIntroductions.Mean()
	without := s.WithoutIntroductions.Mean()
	if with <= 0.5 || without <= 0.5 {
		t.Fatalf("success rates too low: with=%v without=%v", with, without)
	}
	// The paper's claim: the two are close (no significant degradation).
	if diff := with - without; diff < -0.2 || diff > 0.2 {
		t.Fatalf("success rates far apart: with=%v without=%v", with, without)
	}
	if !strings.Contains(s.Table(), "success rate") {
		t.Fatal("table missing header")
	}
	if !strings.Contains(s.CSV(), "with_introductions") {
		t.Fatal("CSV missing row")
	}
}

func TestFig2Shape(t *testing.T) {
	// Two contrasting rates suffice for the shape check.
	f, err := RunFig2([]float64{0.1, 0.005}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	slow, fast := f.Final[0.005], f.Final[0.1]
	if slow <= 0 || fast <= 0 {
		t.Fatalf("degenerate finals: %v %v", slow, fast)
	}
	// Gentler arrivals keep cooperative reputation at least as high.
	if slow+0.05 < fast {
		t.Fatalf("λ=0.005 final %v unexpectedly below λ=0.1 final %v", slow, fast)
	}
	// The high-rate curve must dip below the low-rate curve's minimum at
	// some point (the "overwhelmed" regime).
	if f.Min[0.1] >= f.Min[0.005] {
		t.Logf("note: high-λ min %v not below low-λ min %v at this tiny scale", f.Min[0.1], f.Min[0.005])
	}
	if len(f.Lambdas()) != 2 {
		t.Fatalf("Lambdas = %v", f.Lambdas())
	}
	if !strings.Contains(f.CSV(), "rep-lambda-0.1") {
		t.Fatal("CSV missing series")
	}
}

func TestFig3Shape(t *testing.T) {
	f, err := RunFig3([]float64{0, 0.5, 1}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.FracNaive) != 3 {
		t.Fatalf("points = %v", f.FracNaive)
	}
	// More naive introducers admit more freeriders.
	if f.Uncoop[2] <= f.Uncoop[0] {
		t.Fatalf("uncoop not increasing in fracNaive: %v", f.Uncoop)
	}
	if !strings.Contains(f.Table(), "naive") {
		t.Fatal("table missing context")
	}
}

func TestFig45Shape(t *testing.T) {
	f, err := RunFig45([]float64{0.05, 0.45}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Lending 0.45 refuses far more entries for introducer reputation
	// than lending 0.05.
	if f.RefusedRep[1] <= f.RefusedRep[0] {
		t.Fatalf("rep-floor refusals not increasing with introAmt: %v", f.RefusedRep)
	}
	// Proportions stay comparable (the Figure 5 claim) — loose check.
	if f.PropCoop[0] < 0.5 || f.PropCoop[1] < 0.5 {
		t.Fatalf("cooperative majority lost: %v", f.PropCoop)
	}
	if !strings.Contains(f.Table(), "Figure 5") {
		t.Fatal("table missing Figure 5 section")
	}
}

func TestFig6Shape(t *testing.T) {
	f, err := RunFig6([]float64{0, 50, 100}, tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Cooperative membership falls as the arriving mix sours.
	if !(f.Coop[0] > f.Coop[1] && f.Coop[1] > f.Coop[2]) {
		t.Fatalf("coop not decreasing in pctUncoop: %v", f.Coop)
	}
	// At 0% uncooperative arrivals, no uncooperative peers.
	if f.Uncoop[0] != 0 {
		t.Fatalf("uncoop at 0%% arrivals = %v", f.Uncoop[0])
	}
	// At 100%, the community is not swamped: uncooperative membership
	// stays below the number that tried to enter.
	if f.Uncoop[2] <= 0 {
		t.Fatalf("no uncoop admitted at 100%%: %v", f.Uncoop)
	}
}

func TestCollusionBoundsDamage(t *testing.T) {
	c, err := RunCollusion(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if c.ColludersTried == 0 {
		t.Fatal("no colluders tried")
	}
	// The staking defence must refuse part of the spree.
	if c.ColludersRefused == 0 {
		t.Fatalf("every colluder was admitted: %+v", c)
	}
	// The mole pays: reputation after the spree is below before.
	if c.MoleRepAfter >= c.MoleRepBefore {
		t.Fatalf("mole reputation did not drop: %v -> %v", c.MoleRepBefore, c.MoleRepAfter)
	}
	// Colluders cannot hold high reputation after audits.
	if c.MaxColluderRep > 0.5 {
		t.Fatalf("a colluder retains reputation %v", c.MaxColluderRep)
	}
	if !strings.Contains(c.Table(), "collusion") {
		t.Fatal("table missing title")
	}
}

func TestBaselinesOrdering(t *testing.T) {
	b, err := RunBaselines(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 5 {
		t.Fatalf("rows = %d", len(b.Rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range b.Rows {
		byName[r.Policy] = r
	}
	lend := byName["reputation-lending"]
	complaints := byName["complaints-based"]
	if lend.AdmittedCoop == 0 {
		t.Fatal("lending admitted no cooperative peers")
	}
	// Complaints-based trusts everyone: it must admit every uncooperative
	// arrival, far above lending's contamination ratio.
	if complaints.UncoopPerCoop <= lend.UncoopPerCoop {
		t.Fatalf("lending (%v) not cleaner than complaints-based (%v)",
			lend.UncoopPerCoop, complaints.UncoopPerCoop)
	}
	if !strings.Contains(b.CSV(), "reputation-lending") {
		t.Fatal("CSV missing lending row")
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("nope", tiny()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	r, err := Run("fig3", Options{Runs: 1, Scale: 0.04, SeedBase: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "fig3" {
		t.Fatalf("dispatched wrong experiment: %s", r.Name())
	}
	for _, n := range Names() {
		if n == "" {
			t.Fatal("empty name in registry")
		}
	}
}

func TestTextTableAlignment(t *testing.T) {
	tt := &TextTable{Title: "T", Header: []string{"a", "long-column"}}
	tt.AddRow("x", 1.23456789)
	tt.AddRow("yyyyy", "z")
	s := tt.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("table lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[3], "1.235") {
		t.Fatalf("float not compacted: %q", lines[3])
	}
}

func TestPlotsRender(t *testing.T) {
	f, err := RunFig3([]float64{0, 1}, Options{Runs: 1, Scale: 0.04, SeedBase: 5})
	if err != nil {
		t.Fatal(err)
	}
	plot := PlotOf(f)
	if !strings.Contains(plot, "naive") || !strings.Contains(plot, "*") {
		t.Fatalf("fig3 plot missing content:\n%s", plot)
	}
	// A report without a Plot method yields "".
	var r Report = &SuccessRate{}
	if PlotOf(r) != "" {
		t.Fatal("non-plotter produced a plot")
	}
}

func TestWhitewashShape(t *testing.T) {
	w, err := RunWhitewash(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]WhitewashRow{}
	for _, r := range w.Rows {
		byName[r.Policy] = r
	}
	lend := byName["reputation-lending"]
	complaints := byName["complaints-based"]
	if complaints.ServicePerIdentity <= lend.ServicePerIdentity {
		t.Fatalf("whitewashing not cheaper under complaints-based: lending %v vs complaints %v",
			lend.ServicePerIdentity, complaints.ServicePerIdentity)
	}
	if lend.IntroducerCost < 0 {
		t.Fatalf("negative introducer cost: %v", lend.IntroducerCost)
	}
	if !strings.Contains(w.Table(), "Whitewashing") || !strings.Contains(w.CSV(), "complaints-based") {
		t.Fatal("report rendering broken")
	}
}

func TestAblationShape(t *testing.T) {
	a, err := RunAblation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.RewardRatio) != len(AblationRewardRatios) || len(a.AuditTrans) != len(AblationAuditTrans) {
		t.Fatalf("sweep sizes wrong: %+v", a)
	}
	// Earlier audits complete more often within a fixed run.
	n := len(a.AuditTrans)
	early := a.AuditSatisfied[0] + a.AuditForfeited[0]
	late := a.AuditSatisfied[n-1] + a.AuditForfeited[n-1]
	if early <= late {
		t.Fatalf("early audits (%v) did not outpace late audits (%v)", early, late)
	}
	if !strings.Contains(a.Table(), "Ablation A") || !strings.Contains(a.Table(), "Ablation B") {
		t.Fatal("table sections missing")
	}
}

func TestTraitorMilkingContained(t *testing.T) {
	tr, err := RunTraitor(Options{Runs: 1, Scale: 0.1, SeedBase: 21})
	if err != nil {
		t.Fatal(err)
	}
	// The milking attack works at the lending layer: the traitors pass
	// their audits while honest.
	if tr.AuditsSatisfiedBeforeDefection == 0 {
		t.Fatal("no audits passed before defection — traitors never established themselves")
	}
	if tr.RepAtDefection < 0.6 {
		t.Fatalf("traitors defected before earning standing: %v", tr.RepAtDefection)
	}
	// ROCQ contains it: reputation collapses after defection.
	if tr.CollapseTicks < 0 {
		t.Fatalf("traitor reputation never collapsed: %+v", tr)
	}
	if tr.RepAfter >= tr.RepAtDefection {
		t.Fatalf("reputation did not fall: %v -> %v", tr.RepAtDefection, tr.RepAfter)
	}
	if !strings.Contains(tr.Table(), "milking") || !strings.Contains(tr.CSV(), "collapse_ticks") {
		t.Fatal("report rendering broken")
	}
}

func TestSessionSweepShape(t *testing.T) {
	s, err := RunSessions(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dists) != 3 || s.Dists[0] != "exponential" || s.Dists[2] != "pareto" {
		t.Fatalf("swept distributions = %v", s.Dists)
	}
	for i, dist := range s.Dists {
		if s.Departed[i] == 0 {
			t.Fatalf("%s: session clocks drove no departures", dist)
		}
		if s.FinalPop[i] <= 0 {
			t.Fatalf("%s: community extinguished", dist)
		}
		// The calibration story: equal-mean session models migrate state
		// instead of losing it.
		if s.Migrated[i] == 0 {
			t.Fatalf("%s: no records migrated under session churn", dist)
		}
	}
	if !strings.Contains(s.Table(), "Pareto") {
		t.Fatal("table missing the calibration note")
	}
	if !strings.HasPrefix(s.CSV(), "session_dist,") {
		t.Fatal("CSV header wrong")
	}
}

// TestStakeSweepConservesMass is the acceptance property of the stakes
// experiment: at every sweep point — timeout disabled or armed — the
// staked mass is exactly the sum of settled, refunded, stranded and
// still-pending mass, and the armed points actually drain the pending
// leak the disabled point exhibits.
func TestStakeSweepConservesMass(t *testing.T) {
	s, err := RunStakes(nil, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Timeouts) < 3 || s.Timeouts[0] != 0 {
		t.Fatalf("swept timeouts = %v, want the disabled control first", s.Timeouts)
	}
	for i, timeout := range s.Timeouts {
		sum := s.SettledMass[i] + s.RefundedMass[i] + s.StrandedMass[i] + s.PendingMass[i]
		if diff := s.StakedMass[i] - sum; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("T=%d: staked mass %v != settled+refunded+stranded+pending %v (off by %v)",
				timeout, s.StakedMass[i], sum, diff)
		}
		if timeout == 0 {
			if s.Refunded[i] != 0 || s.Expired[i] != 0 {
				t.Fatalf("disabled point ran the clock: %+v", s)
			}
			if s.PendingMass[i] <= 0 {
				t.Fatal("disabled point shows no pending leak; the sweep has nothing to recover")
			}
			continue
		}
		if s.Refunded[i] == 0 {
			t.Fatalf("T=%d: the timeout refunded nothing under churn", timeout)
		}
		if s.PendingMass[i] >= s.PendingMass[0] {
			t.Fatalf("T=%d: pending mass %v not below the disabled point's leak %v",
				timeout, s.PendingMass[i], s.PendingMass[0])
		}
	}
	if !strings.HasPrefix(s.CSV(), "stake_timeout,") {
		t.Fatal("CSV header wrong")
	}
	if !strings.Contains(s.Table(), "conserves") {
		t.Fatal("table missing the conservation note")
	}
}

func TestFig2LambdasOrdersExtrasDeterministically(t *testing.T) {
	// Non-standard rates must come out in sorted-descending order no
	// matter how the map happens to iterate — the table-row ordering bug
	// replend-lint's maporder analyzer caught.
	f := &Fig2{Reputation: map[float64]*metrics.Series{
		0.1: nil, 0.003: nil, 0.03: nil, 0.001: nil, 0.07: nil,
	}}
	want := []float64{0.1, 0.001, 0.07, 0.03, 0.003}
	for i := 0; i < 20; i++ {
		got := f.Lambdas()
		if len(got) != len(want) {
			t.Fatalf("Lambdas() = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Lambdas() = %v, want %v", got, want)
			}
		}
	}
}
