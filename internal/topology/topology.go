// Package topology implements the two network topologies of the paper's
// simulator: "1) random and 2) scale-free. In the random topology, all
// nodes are equally likely to be chosen as the potential respondent. In
// the scale-free topology, the probability of a node being chosen as the
// potential respondent is distributed according to a power-law."
//
// The same selection bias applies to choosing a potential introducer for
// an arriving peer ("The introducer is also chosen depending on network
// topology").
//
// The scale-free topology is realised as a Barabási–Albert preferential
// attachment process: every arriving peer attaches to AttachEdges existing
// peers chosen proportionally to degree, and respondents are then drawn
// proportionally to degree — which converges to the power-law degree
// distribution the paper stipulates.
package topology

import (
	"errors"
	"fmt"

	"repro/internal/id"
	"repro/internal/rng"
)

// Kind names a topology model.
type Kind string

// The supported topologies, matching the paper's Table 1 values.
const (
	Random   Kind = "random"
	PowerLaw Kind = "powerlaw"
)

// ParseKind converts a configuration string into a Kind.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case Random:
		return Random, nil
	case PowerLaw:
		return PowerLaw, nil
	}
	return "", fmt.Errorf("topology: unknown kind %q (want %q or %q)", s, Random, PowerLaw)
}

// Selector chooses peers according to a topology. Implementations are not
// safe for concurrent use.
type Selector interface {
	// Add registers a newly arrived peer, wiring it into the topology.
	Add(peer id.ID)
	// Remove detaches a departed peer: it can no longer be picked, and a
	// later Add re-wires it afresh (a rejoining peer re-attaches like a
	// newcomer). Removing an unregistered peer is a no-op.
	Remove(peer id.ID)
	// Pick draws one peer according to the topology's bias, excluding the
	// given peer (the requester cannot be its own respondent). It returns
	// false when no eligible peer exists.
	Pick(exclude id.ID) (id.ID, bool)
	// Len returns the number of registered peers.
	Len() int
	// Contains reports whether the peer is registered.
	Contains(peer id.ID) bool
}

// ErrUnknownKind reports an unsupported topology name.
var ErrUnknownKind = errors.New("topology: unknown kind")

// New builds a selector of the given kind driven by the given randomness.
func New(kind Kind, src *rng.Source) (Selector, error) {
	switch kind {
	case Random:
		return NewUniform(src), nil
	case PowerLaw:
		return NewScaleFree(src, DefaultAttachEdges), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
}

// ---------------------------------------------------------------------------
// Uniform (the paper's "random" topology).

// Uniform selects every peer with equal probability.
type Uniform struct {
	src   *rng.Source
	peers []id.ID
	index map[id.ID]int
}

// NewUniform returns an empty uniform selector.
func NewUniform(src *rng.Source) *Uniform {
	return &Uniform{src: src, index: make(map[id.ID]int)}
}

// Add registers a peer. Adding a duplicate panics: the simulation assigns
// unique identifiers, so a duplicate signals a harness bug.
func (u *Uniform) Add(peer id.ID) {
	if _, ok := u.index[peer]; ok {
		//replend:allow nopanic the world assigns unique identifiers; a duplicate is a harness bug (documented above)
		panic(fmt.Sprintf("topology: duplicate peer %s", peer.Short()))
	}
	u.index[peer] = len(u.peers)
	u.peers = append(u.peers, peer)
}

// Remove drops a peer in O(1) by swapping the last slot into its place.
func (u *Uniform) Remove(peer id.ID) {
	i, ok := u.index[peer]
	if !ok {
		return
	}
	last := len(u.peers) - 1
	u.peers[i] = u.peers[last]
	u.index[u.peers[i]] = i
	u.peers = u.peers[:last]
	delete(u.index, peer)
}

// Pick draws a uniform peer other than exclude.
func (u *Uniform) Pick(exclude id.ID) (id.ID, bool) {
	n := len(u.peers)
	if n == 0 {
		return id.ID{}, false
	}
	if _, excluded := u.index[exclude]; excluded && n == 1 {
		return id.ID{}, false
	}
	for {
		p := u.peers[u.src.Intn(n)]
		if p != exclude {
			return p, true
		}
	}
}

// Len returns the number of registered peers.
func (u *Uniform) Len() int { return len(u.peers) }

// Contains reports registration.
func (u *Uniform) Contains(peer id.ID) bool {
	_, ok := u.index[peer]
	return ok
}

// ---------------------------------------------------------------------------
// Scale-free (Barabási–Albert preferential attachment).

// DefaultAttachEdges is the number of edges each arriving peer creates.
const DefaultAttachEdges = 2

// ScaleFree selects peers proportionally to their degree in a graph grown
// by preferential attachment. Departed peers leave tombstone slots (stubs
// index into the peers slice, so slots are never reused); their stubs are
// compacted away on removal, which keeps every live stub drawable.
type ScaleFree struct {
	src    *rng.Source
	attach int

	peers  []id.ID
	index  map[id.ID]int
	degree []int64
	alive  []bool
	live   int // registered (non-tombstone) peers
	// stubs lists peer indices, one entry per unit of degree; uniform
	// draws from it are degree-proportional draws. This is the classic
	// O(1) preferential-attachment sampler.
	stubs []int32
}

// NewScaleFree returns an empty scale-free selector where each arrival
// attaches to attach existing peers.
func NewScaleFree(src *rng.Source, attach int) *ScaleFree {
	if attach < 1 {
		//replend:allow nopanic construction-time misuse guard: attach is validated by config before any run starts
		panic("topology: attach edges must be >= 1")
	}
	return &ScaleFree{src: src, attach: attach, index: make(map[id.ID]int)}
}

// Add wires a new peer into the graph: it attaches to up to attach
// distinct existing peers chosen proportionally to degree. A re-added
// (rejoining) peer attaches afresh, like a newcomer.
func (s *ScaleFree) Add(peer id.ID) {
	if _, ok := s.index[peer]; ok {
		//replend:allow nopanic the world assigns unique identifiers; a duplicate is a harness bug
		panic(fmt.Sprintf("topology: duplicate peer %s", peer.Short()))
	}
	idx := len(s.peers)
	s.index[peer] = idx
	s.peers = append(s.peers, peer)
	s.degree = append(s.degree, 0)
	s.alive = append(s.alive, true)
	s.live++

	targets := s.pickAttachTargets(idx)
	for _, tgt := range targets {
		s.degree[idx]++
		s.degree[tgt]++
		s.stubs = append(s.stubs, int32(idx), int32(tgt))
	}
	if len(targets) == 0 {
		// First peer: give it one self-stub so it is drawable.
		s.degree[idx]++
		s.stubs = append(s.stubs, int32(idx))
	}
}

// Remove detaches a departed peer: its slot becomes a tombstone and every
// stub pointing at it is compacted away, so subsequent degree-biased
// draws never land on it. Its neighbours keep the degree the departed
// edges earned them — accumulated attractiveness outlives any single
// contact, the usual preferential-attachment churn treatment.
func (s *ScaleFree) Remove(peer id.ID) {
	idx, ok := s.index[peer]
	if !ok {
		return
	}
	delete(s.index, peer)
	s.alive[idx] = false
	s.degree[idx] = 0
	s.live--
	kept := s.stubs[:0]
	for _, t := range s.stubs {
		if int(t) != idx {
			kept = append(kept, t)
		}
	}
	s.stubs = kept
}

// pickAttachTargets draws up to attach distinct live existing peers,
// preferentially by degree.
func (s *ScaleFree) pickAttachTargets(newIdx int) []int {
	existing := s.live - 1 // live peers other than the one being added
	if existing == 0 {
		return nil
	}
	want := s.attach
	if want > existing {
		want = existing
	}
	probe := newIdx // uniform probes span the slots before the new peer
	chosen := make(map[int]bool, want)
	out := make([]int, 0, want)
	for len(out) < want {
		var t int
		if len(s.stubs) == 0 {
			t = s.src.Intn(probe)
		} else {
			t = int(s.stubs[s.src.Intn(len(s.stubs))])
		}
		if t >= newIdx || chosen[t] || !s.alive[t] {
			// Fall back to uniform probing when the stub draw keeps
			// hitting duplicates (tiny graphs) or tombstones.
			t = s.src.Intn(probe)
			if chosen[t] || !s.alive[t] {
				continue
			}
		}
		chosen[t] = true
		out = append(out, t)
	}
	return out
}

// Pick draws a peer proportionally to degree, excluding the given peer.
func (s *ScaleFree) Pick(exclude id.ID) (id.ID, bool) {
	if s.live == 0 {
		return id.ID{}, false
	}
	if _, excluded := s.index[exclude]; excluded && s.live == 1 {
		return id.ID{}, false
	}
	// Degree-proportional draw with bounded rejection on the excluded
	// peer; fall back to uniform if the excluded peer dominates the stubs.
	for tries := 0; tries < 32; tries++ {
		p := s.peers[s.stubs[s.src.Intn(len(s.stubs))]]
		if p != exclude {
			return p, true
		}
	}
	for {
		i := s.src.Intn(len(s.peers))
		if !s.alive[i] {
			continue
		}
		if p := s.peers[i]; p != exclude {
			return p, true
		}
	}
}

// Len returns the number of registered peers.
func (s *ScaleFree) Len() int { return s.live }

// Contains reports registration.
func (s *ScaleFree) Contains(peer id.ID) bool {
	_, ok := s.index[peer]
	return ok
}

// Degree returns the peer's degree in the attachment graph (0 if unknown).
func (s *ScaleFree) Degree(peer id.ID) int64 {
	i, ok := s.index[peer]
	if !ok {
		return 0
	}
	return s.degree[i]
}
