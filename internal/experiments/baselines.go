package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/config"
)

// Baselines reproduces the §1 comparison as an ablation (experiment A2 in
// DESIGN.md): the admission alternatives the paper surveys — complaints-
// based (newcomer fully trusted), positive-only (newcomer frozen out),
// mid-spectrum, fixed free credit — against reputation lending, all on the
// same workload. The qualitative claim to check: lending admits the fewest
// uncooperative peers per cooperative peer admitted, without freezing
// cooperative newcomers out.
type Baselines struct {
	Rows []BaselineRow
}

// BaselineRow is one policy's outcome.
type BaselineRow struct {
	Policy         string
	AdmittedCoop   float64
	AdmittedUncoop float64
	// UncoopPerCoop is the contamination ratio (lower is better).
	UncoopPerCoop float64
	SuccessRate   float64
	// CoopFinalRep is the mean cooperative reputation at the end — the
	// freeze-out check (positive-only admits everyone but at reputation
	// 0, so cooperative newcomers stay frozen).
	CoopFinalRep float64
}

func baselinesConfig() config.Config {
	c := config.Default()
	c.Lambda = 0.05 // brisker arrivals make admission policy differences visible
	c.NumTrans = 100_000
	return c
}

// RunBaselines executes lending plus every baseline policy.
func RunBaselines(opt Options) (*Baselines, error) {
	opt = opt.withDefaults()
	out := &Baselines{}

	// The lending scheme itself.
	cfg := opt.apply(baselinesConfig())
	rs, err := runReplicas(cfg, opt, nil)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, baselineRow("reputation-lending", rs))

	for i, pol := range baseline.All() {
		c := opt.apply(baselinesConfig())
		c.RequireIntroductions = false
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i+1)
		rs, err := runReplicas(c, o, pol)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, baselineRow(pol.Name(), rs))
	}
	return out, nil
}

func baselineRow(name string, rs []Replica) BaselineRow {
	coop := meanOf(rs, func(r Replica) int64 { return r.Metrics.AdmittedCoop })
	uncoop := meanOf(rs, func(r Replica) int64 { return r.Metrics.AdmittedUncoop })
	sr := statOf(rs, func(r Replica) float64 { return r.Metrics.SuccessRate() })
	row := BaselineRow{
		Policy:         name,
		AdmittedCoop:   coop,
		AdmittedUncoop: uncoop,
		SuccessRate:    sr.Mean(),
	}
	if coop > 0 {
		row.UncoopPerCoop = uncoop / coop
	}
	var repSum float64
	for _, r := range rs {
		if last, ok := r.Metrics.CoopReputation.Last(); ok {
			repSum += last.V
		}
	}
	row.CoopFinalRep = repSum / float64(len(rs))
	return row
}

// Name implements Report.
func (b *Baselines) Name() string { return "baselines" }

// Table renders the policy comparison.
func (b *Baselines) Table() string {
	t := &TextTable{
		Title: "A2 — admission-policy ablation (λ=0.05)",
		Header: []string{"policy", "coop admitted", "uncoop admitted",
			"uncoop per coop", "success rate", "final coop reputation"},
	}
	for _, r := range b.Rows {
		t.AddRow(r.Policy, r.AdmittedCoop, r.AdmittedUncoop, r.UncoopPerCoop, r.SuccessRate, r.CoopFinalRep)
	}
	var s strings.Builder
	s.WriteString(t.String())
	s.WriteString("\nexpected: lending has the lowest uncoop-per-coop ratio among policies that admit cooperative newcomers\n")
	return s.String()
}

// CSV renders the comparison.
func (b *Baselines) CSV() string {
	var s strings.Builder
	s.WriteString("policy,coop_admitted,uncoop_admitted,uncoop_per_coop,success_rate,final_coop_reputation\n")
	for _, r := range b.Rows {
		fmt.Fprintf(&s, "%s,%g,%g,%g,%g,%g\n",
			r.Policy, r.AdmittedCoop, r.AdmittedUncoop, r.UncoopPerCoop, r.SuccessRate, r.CoopFinalRep)
	}
	return s.String()
}
