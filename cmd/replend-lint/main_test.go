package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles the replend-lint binary once per test run.
func build(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "replend-lint")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/replend-lint").CombinedOutput()
	if err != nil {
		t.Fatalf("building replend-lint: %v\n%s", err, out)
	}
	return bin
}

// TestVetToolProtocol round-trips the binary through go vet's
// unitchecker protocol: a clean package passes, a package with a
// violation fails with a maporder diagnostic.
func TestVetToolProtocol(t *testing.T) {
	bin := build(t)

	out, err := exec.Command("go", "vet", "-vettool="+bin, "repro/internal/id").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet -vettool on a clean package: %v\n%s", err, out)
	}

	out, err = exec.Command("go", "vet", "-vettool="+bin,
		"repro/internal/lint/maporder/testdata/src/rebuildsmdeps").CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed a package with a maporder violation:\n%s", out)
	}
	if !strings.Contains(string(out), "maporder") || !strings.Contains(string(out), "rebuildSMDeps bug class") {
		t.Fatalf("vet output missing the maporder diagnostic:\n%s", out)
	}
}

// TestStandaloneExitCodes pins the CLI contract: 0 clean, 1 findings.
func TestStandaloneExitCodes(t *testing.T) {
	bin := build(t)

	cmd := exec.Command(bin, "repro/internal/id")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("clean package: %v\n%s", err, out)
	}

	cmd = exec.Command(bin, "repro/internal/lint/maporder/testdata/src/rebuildsmdeps")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("violating package: err=%v, want exit code 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "maporder") {
		t.Fatalf("output missing maporder finding:\n%s", out)
	}
}
