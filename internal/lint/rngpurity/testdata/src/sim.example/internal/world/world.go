// Package world stands in for a watched simulation package (its import
// path ends in internal/world): math/rand imports and wall-clock reads
// are forbidden here.
package world

import (
	"math/rand" // want `simulation package imports math/rand`
	"time"
)

func draw() int { return rand.Int() }

func stamp() int64 {
	return time.Now().Unix() // want `reads the wall clock via time\.Now`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `reads the wall clock via time\.Since`
}

// tickMath uses the time package for arithmetic only: accepted.
func tickMath(d time.Duration) float64 { return d.Seconds() }
