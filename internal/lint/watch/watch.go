// Package watch defines which packages the determinism analyzers bind.
// The simulation core must be a pure function of configuration and
// seeds; the orchestration edge (fleet, the CLIs) legitimately touches
// wall clocks for heartbeats, timeouts and progress logging. rngpurity
// and nopanic consult this split — it is the structural half of the
// allowlist policy described in docs/determinism.md (the other half is
// per-line //replend:allow directives).
package watch

import "strings"

// simSuffixes are the import-path suffixes of the deterministic
// simulation packages. internal/rng is deliberately absent: it is the
// sanctioned wrapper all stochastic behavior must flow through.
// internal/fleet and cmd/* are deliberately absent: coordinator
// heartbeats, worker deadlines and CLI progress timing are wall-clock
// by nature and never feed simulation output bytes.
var simSuffixes = []string{
	"internal/world",
	"internal/lending",
	"internal/churn",
	"internal/workload",
	"internal/scenario",
	"internal/overlay",
	"internal/rocq",
	"internal/topology",
	"internal/sim",
}

// SimPackage reports whether the import path names a package under the
// determinism contract.
func SimPackage(path string) bool {
	for _, s := range simSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// SimPackages returns the watched suffix list (for docs and tests).
func SimPackages() []string {
	return append([]string(nil), simSuffixes...)
}
