package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-3, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		h := NewHistogram("b")
		h.Observe(c.v)
		if got := len(h.Counts) - 1; got != c.bucket {
			t.Errorf("Observe(%d) landed in bucket %d, want %d", c.v, got, c.bucket)
		}
		if h.Counts[c.bucket] != 1 {
			t.Errorf("Observe(%d): bucket %d count = %d", c.v, c.bucket, h.Counts[c.bucket])
		}
	}
}

func TestBucketBounds(t *testing.T) {
	for i := 1; i < 20; i++ {
		lo, hi := BucketBounds(i)
		if bucketOf(lo) != i || bucketOf(hi) != i {
			t.Fatalf("bucket %d bounds [%d,%d] do not map back", i, lo, hi)
		}
		if bucketOf(lo-1) == i || (hi+1 > 0 && bucketOf(hi+1) == i) {
			t.Fatalf("bucket %d bounds [%d,%d] are not tight", i, lo, hi)
		}
	}
	if lo, hi := BucketBounds(0); lo != 0 || hi != 0 {
		t.Fatalf("bucket 0 bounds = [%d,%d]", lo, hi)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []int64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.N != 4 || h.Sum != 100 || h.Min != 10 || h.Max != 40 {
		t.Fatalf("stats = n=%d sum=%d min=%d max=%d", h.N, h.Sum, h.Min, h.Max)
	}
	if h.Mean() != 25 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if q := h.Quantile(0); q != 10 {
		t.Fatalf("q0 = %g, want the minimum", q)
	}
	if q := h.Quantile(1); q != 40 {
		t.Fatalf("q1 = %g, want the maximum", q)
	}
	if q := h.Quantile(0.5); q < 10 || q > 40 {
		t.Fatalf("median %g outside observed range", q)
	}
}

func TestHistogramMergeEqualsCombinedObserve(t *testing.T) {
	a, b, all := NewHistogram("x"), NewHistogram("x"), NewHistogram("x")
	for i := int64(0); i < 100; i++ {
		v := (i * i) % 257
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	a.Merge(b)
	if !reflect.DeepEqual(a, all) {
		t.Fatalf("merge diverged:\n got %+v\nwant %+v", a, all)
	}
	empty := NewHistogram("x")
	empty.Merge(all)
	if !reflect.DeepEqual(empty, all) {
		t.Fatalf("merge into empty diverged:\n got %+v\nwant %+v", empty, all)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram("session-length")
	for _, v := range []int64{0, 1, 5, 900, 70_000} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, h) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", &back, h)
	}
	again, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encoding diverged:\n got %s\nwant %s", again, data)
	}
}

func TestHistogramSummaryAndRender(t *testing.T) {
	h := NewHistogram("audit-wait")
	if !strings.Contains(h.Summary(), "no observations") {
		t.Fatalf("empty summary = %q", h.Summary())
	}
	h.Observe(3)
	h.Observe(300)
	s := h.Summary()
	for _, want := range []string{"audit-wait", "n=2", "min=3", "max=300"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q: %q", want, s)
		}
	}
	r := h.Render()
	if !strings.Contains(r, "[2,3]") || !strings.Contains(r, "[256,511]") {
		t.Fatalf("render missing buckets:\n%s", r)
	}
}

func TestMergeSeriesCheckedNamesTheSeries(t *testing.T) {
	a := &Series{Name: "run0"}
	b := &Series{Name: "run1"}
	a.Append(1, 1)
	a.Append(2, 1)
	b.Append(1, 1)
	_, err := MergeSeriesChecked("merged", []*Series{a, b})
	if err == nil {
		t.Fatal("length mismatch not reported")
	}
	for _, want := range []string{"merged", "run1", "run0"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not name %q", err, want)
		}
	}

	c := &Series{Name: "run2"}
	c.Append(1, 1)
	c.Append(3, 1)
	_, err = MergeSeriesChecked("merged", []*Series{a, c})
	if err == nil {
		t.Fatal("time mismatch not reported")
	}
	if !strings.Contains(err.Error(), "run2") || !strings.Contains(err.Error(), "t=3") {
		t.Fatalf("time mismatch error lacks context: %q", err)
	}
}

func TestCSVPanicNamesSeries(t *testing.T) {
	a := &Series{Name: "alpha"}
	b := &Series{Name: "beta"}
	a.Append(1, 1)
	a.Append(2, 1)
	b.Append(1, 1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("CSV shape mismatch did not panic")
		}
		msg := r.(string)
		if !strings.Contains(msg, "alpha") || !strings.Contains(msg, "beta") {
			t.Fatalf("panic %q does not name both series", msg)
		}
	}()
	CSV(a, b)
}
