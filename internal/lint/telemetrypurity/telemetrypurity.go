// Package telemetrypurity defines an analyzer that keeps the telemetry
// layer write-only. The bus's determinism contract (see
// internal/telemetry) is that publishing a record never draws
// randomness and never reaches into simulation state: a run with every
// sink attached must produce byte-identical results to a run with none.
// The byte-identity half is pinned by world and CLI tests; this
// analyzer enforces the structural half — a telemetry package that
// imports an RNG or a simulation package has the machinery to feed
// observation back into output bytes, whether or not it does so today.
package telemetrypurity

import (
	"strconv"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/watch"
)

// Analyzer forbids RNG and simulation-state imports in telemetry
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "telemetrypurity",
	Doc: `forbid RNG and simulation-state imports in telemetry packages

Telemetry packages (see internal/lint/watch) are write-only observers:
the simulation publishes records into them and nothing flows back.
Importing math/rand, math/rand/v2 or repro/internal/rng gives a sink a
way to perturb or depend on the random stream; importing a simulation
package (internal/world, internal/lending, ...) gives it a way to read
or mutate state directly instead of observing published records.
Either import breaks the contract that attaching every sink leaves
results byte-identical. Unlike rngpurity, wall clocks are allowed here:
progress tickers and span recorders time real execution, which never
reaches simulation output.`,
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !watch.TelemetryPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "math/rand" || path == "math/rand/v2" || rngPackage(path):
				pass.Reportf(imp.Pos(), "telemetry package imports %s; telemetry is write-only observation and must never draw randomness", path)
			case watch.SimPackage(path):
				pass.Reportf(imp.Pos(), "telemetry package imports simulation package %s; telemetry observes published records, never simulation state", path)
			}
		}
	}
	return nil, nil
}

// rngPackage reports whether path names the sanctioned simulation RNG
// wrapper — sanctioned for simulation packages, still off-limits to
// telemetry.
func rngPackage(path string) bool {
	return path == "internal/rng" || strings.HasSuffix(path, "/internal/rng")
}
