package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// registry maps scenario names to spec builders. Builders (not shared
// *Spec values) keep Get callers from mutating each other's specs.
var registry = map[string]func() *Spec{}

// Register adds a named scenario to the registry. Built-ins register at
// init; programs embedding the library may add their own.
func Register(name string, build func() *Spec) error {
	if name == "" || build == nil {
		return fmt.Errorf("scenario: Register needs a name and a builder")
	}
	if _, dup := registry[name]; dup {
		return fmt.Errorf("scenario: %q already registered", name)
	}
	registry[name] = build
	return nil
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get builds a fresh, validated copy of a registered scenario.
func Get(name string) (*Spec, error) {
	build, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have: %s)", name, strings.Join(Names(), ", "))
	}
	s := build()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: registered %q is invalid: %w", name, err)
	}
	return s, nil
}
