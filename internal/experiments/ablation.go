package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
)

// Ablation sweeps the two design choices the paper fixes without
// evaluating (extension experiment; DESIGN.md A-series): the reward ratio
// (the paper pins reward = 20% of the lent amount) and the audit trigger
// (the paper pins auditTrans = 20 completed transactions).
//
//   - Reward ratio: with no reward, introducing is all risk and no upside
//     beyond community growth; large rewards mint reputation. The sweep
//     shows how introducer reputations and admissions respond.
//   - Audit trigger: early audits judge newcomers on thin evidence (more
//     false verdicts); late audits leave stakes locked up longer, starving
//     introducers of lending capacity.
type Ablation struct {
	RewardRatio  []float64
	RewardCoop   []float64 // coop peers in system at end
	RewardUncoop []float64
	RewardRep    []float64 // final mean cooperative reputation

	AuditTrans     []int
	AuditSatisfied []float64
	AuditForfeited []float64
	AuditCoop      []float64
}

// AblationRewardRatios is the swept reward as a fraction of introAmt.
var AblationRewardRatios = []float64{0, 0.2, 0.5, 1.0}

// AblationAuditTrans is the swept audit trigger.
var AblationAuditTrans = []int{5, 20, 80}

func ablationConfig() config.Config {
	c := config.Default()
	c.Lambda = 0.05
	c.NumTrans = 100_000
	return c
}

// RunAblation executes both sweeps.
func RunAblation(opt Options) (*Ablation, error) {
	opt = opt.withDefaults()
	out := &Ablation{}

	for i, ratio := range AblationRewardRatios {
		cfg := opt.apply(ablationConfig())
		cfg.Reward = ratio * cfg.IntroAmt
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		out.RewardRatio = append(out.RewardRatio, ratio)
		out.RewardCoop = append(out.RewardCoop, meanOf(rs, func(r Replica) int64 { return r.Metrics.CoopInSystem }))
		out.RewardUncoop = append(out.RewardUncoop, meanOf(rs, func(r Replica) int64 { return r.Metrics.UncoopInSystem }))
		rep := 0.0
		for _, r := range rs {
			if last, ok := r.Metrics.CoopReputation.Last(); ok {
				rep += last.V
			}
		}
		out.RewardRep = append(out.RewardRep, rep/float64(len(rs)))
	}

	for i, at := range AblationAuditTrans {
		cfg := opt.apply(ablationConfig())
		cfg.AuditTrans = at
		o := opt
		o.SeedBase = sweepSeed(opt.SeedBase, 100+i)
		rs, err := runReplicas(cfg, o, nil)
		if err != nil {
			return nil, err
		}
		out.AuditTrans = append(out.AuditTrans, at)
		out.AuditSatisfied = append(out.AuditSatisfied, meanOf(rs, func(r Replica) int64 { return r.Metrics.AuditsSatisfied }))
		out.AuditForfeited = append(out.AuditForfeited, meanOf(rs, func(r Replica) int64 { return r.Metrics.AuditsForfeited }))
		out.AuditCoop = append(out.AuditCoop, meanOf(rs, func(r Replica) int64 { return r.Metrics.CoopInSystem }))
	}
	return out, nil
}

// Name implements Report.
func (a *Ablation) Name() string { return "ablation" }

// Table renders both sweeps.
func (a *Ablation) Table() string {
	t1 := &TextTable{
		Title:  "Ablation A — reward ratio (reward / introAmt; paper fixes 0.2)",
		Header: []string{"reward ratio", "coop in system", "uncoop in system", "final coop reputation"},
	}
	for i := range a.RewardRatio {
		t1.AddRow(a.RewardRatio[i], a.RewardCoop[i], a.RewardUncoop[i], a.RewardRep[i])
	}
	t2 := &TextTable{
		Title:  "Ablation B — audit trigger (completed transactions; paper fixes 20)",
		Header: []string{"auditTrans", "audits satisfied", "audits forfeited", "coop in system"},
	}
	for i := range a.AuditTrans {
		t2.AddRow(a.AuditTrans[i], a.AuditSatisfied[i], a.AuditForfeited[i], a.AuditCoop[i])
	}
	var b strings.Builder
	b.WriteString(t1.String())
	b.WriteString("\n")
	b.WriteString(t2.String())
	b.WriteString("\nexpected: outcomes are insensitive to the reward ratio within a broad band (the stake, not the\n" +
		"reward, does the work); earlier audits return stakes sooner, so more audits complete within the run\n")
	return b.String()
}

// CSV renders both sweeps.
func (a *Ablation) CSV() string {
	var b strings.Builder
	b.WriteString("sweep,x,coop,uncoop,rep_or_satisfied,forfeited\n")
	for i := range a.RewardRatio {
		fmt.Fprintf(&b, "reward,%g,%g,%g,%g,\n",
			a.RewardRatio[i], a.RewardCoop[i], a.RewardUncoop[i], a.RewardRep[i])
	}
	for i := range a.AuditTrans {
		fmt.Fprintf(&b, "audit,%d,%g,,%g,%g\n",
			a.AuditTrans[i], a.AuditCoop[i], a.AuditSatisfied[i], a.AuditForfeited[i])
	}
	return b.String()
}
