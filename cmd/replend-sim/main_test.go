package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinySimulation(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "series.csv")
	err := run([]string{
		"-init", "40", "-ticks", "3000", "-lambda", "0.05",
		"-wait", "100", "-seed", "3", "-csv", csv,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,coop,uncoop,coop-reputation\n") {
		t.Fatalf("csv header wrong: %q", string(data)[:50])
	}
	if strings.Count(string(data), "\n") < 2 {
		t.Fatal("csv has no data rows")
	}
}

func TestRunNoIntroductionsPolicyPath(t *testing.T) {
	err := run([]string{
		"-init", "40", "-ticks", "2000", "-lambda", "0.05",
		"-no-introductions", "-policy", "complaints-based",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-topology", "mesh"}); err == nil {
		t.Fatal("bad topology accepted")
	}
	if err := run([]string{"-init", "40", "-ticks", "1000", "-no-introductions", "-policy", "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-intro-amt", "0.9"}); err == nil {
		t.Fatal("intro-amt above the floor accepted")
	}
}

func TestRunConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfg := `{"numInit": 30, "numTrans": 2000, "lambda": 0.05, "waitPeriod": 100, "seed": 9}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", filepath.Join(t.TempDir(), "absent.json")}); err == nil {
		t.Fatal("missing config accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"numSM": 0}`), 0o644)
	if err := run([]string{"-config", bad}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestScenariosSubcommand(t *testing.T) {
	capture := func(args ...string) string {
		var buf bytes.Buffer
		if err := scenariosCmd(args, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	list := capture("list")
	for _, name := range []string{"quickstart", "churn", "collusion", "filesharing", "api"} {
		if !strings.Contains(list, name) {
			t.Errorf("list output missing %q:\n%s", name, list)
		}
	}

	desc := capture("describe", "collusion")
	if !strings.Contains(desc, "phases:") || !strings.Contains(desc, "mole") {
		t.Errorf("describe output: %s", desc)
	}

	dump := capture("dump", "quickstart")
	if !strings.Contains(dump, `"name": "quickstart"`) {
		t.Errorf("dump output: %s", dump)
	}

	for _, bad := range [][]string{{}, {"bogus"}, {"describe"}, {"describe", "nope"}, {"dump", "nope"}} {
		if err := scenariosCmd(bad, os.Stdout); err == nil {
			t.Errorf("scenariosCmd(%v) accepted", bad)
		}
	}
}

func TestRunScenarioFromFileAndBuiltin(t *testing.T) {
	// A dumped built-in must load and run from a file, writing the CSV.
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	var dump bytes.Buffer
	if err := scenariosCmd([]string{"dump", "quickstart"}, &dump); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(spec, dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := filepath.Join(dir, "series.csv")
	if err := run([]string{"-scenario", spec, "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t,coop,uncoop,coop-reputation\n") {
		t.Fatalf("csv header wrong: %q", string(data)[:50])
	}

	if err := run([]string{"-scenario", "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if err := run([]string{"-scenario", spec, "-config", spec}); err == nil {
		t.Fatal("-scenario with -config accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name": "x", "base": {"numSM": 0}}`), 0o644)
	if err := run([]string{"-scenario", bad}); err == nil {
		t.Fatal("invalid scenario file accepted")
	}
}

func TestRunScenarioReplicasFlag(t *testing.T) {
	// Multi-replica aggregation over a small file-defined scenario.
	dir := t.TempDir()
	spec := filepath.Join(dir, "tiny.json")
	body := `{"name": "tiny", "base": {"numInit": 30, "numTrans": 2000, "lambda": 0.05, "waitPeriod": 100, "seed": 8}}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", spec, "-runs", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"complaints-based", "positive-only", "mid-spectrum", "fixed-credit"} {
		if _, err := policyByName(name); err != nil {
			t.Errorf("policy %q: %v", name, err)
		}
	}
	if _, err := policyByName("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// buildSim compiles the real binary once per test run; the process-fleet
// tests exercise actual worker subprocesses, not in-process stand-ins.
func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "replend-sim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building replend-sim: %v\n%s", err, out)
	}
	return bin
}

// TestProcessFleetByteIdenticalCLI is the end-to-end golden: the same
// scenario replica sweep through 3 real worker processes must print the
// byte-identical stdout of the in-process run, with stdout free of any
// progress chatter.
func TestProcessFleetByteIdenticalCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildSim(t)
	runCLI := func(args ...string) (string, string) {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("%v: %v\nstderr:\n%s", args, err, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	inproc, _ := runCLI("-scenario", "sm-wipeout", "-runs", "3")
	fleet, stderr := runCLI("-scenario", "sm-wipeout", "-runs", "3", "-workers", "3")
	if inproc != fleet {
		t.Fatalf("process-fleet stdout differs from in-process stdout:\n--- in-process ---\n%s\n--- fleet ---\n%s", inproc, fleet)
	}
	if !strings.Contains(stderr, "worker") {
		t.Fatalf("fleet run logged no worker chatter on stderr:\n%s", stderr)
	}
}

// TestWorkerModeSpeaksProtocolOnStdout pins the worker contract: stdout
// carries nothing but protocol frames (first a hello), chatter goes to
// stderr.
func TestWorkerModeSpeaksProtocolOnStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bin := buildSim(t)
	cmd := exec.Command(bin, "-worker")
	cmd.Stdin = strings.NewReader("") // immediate EOF: clean worker exit
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("worker mode exited with error: %v", err)
	}
	out := stdout.Bytes()
	if len(out) < 4 {
		t.Fatalf("worker wrote no hello frame, got %d bytes", len(out))
	}
	n := int(out[0])<<24 | int(out[1])<<16 | int(out[2])<<8 | int(out[3])
	if len(out) != 4+n {
		t.Fatalf("stdout is not exactly one length-prefixed frame: %d bytes, frame claims %d", len(out), n)
	}
	if !bytes.Contains(out[4:], []byte(`"hello"`)) {
		t.Fatalf("first frame is not a hello: %s", out[4:])
	}
}

// TestWorkersFlagValidation rejects fleet flags without shardable work.
func TestWorkersFlagValidation(t *testing.T) {
	if err := run([]string{"-workers", "2", "-ticks", "2000"}); err == nil {
		t.Fatal("-workers without -scenario accepted")
	}
	if err := run([]string{"-scenario", "sm-wipeout", "-workers", "2"}); err == nil {
		t.Fatal("-workers with a single run accepted")
	}
}
