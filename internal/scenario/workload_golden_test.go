package scenario

import (
	"testing"

	"repro/internal/id"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/world"
)

// The workload built-ins are pinned like the churn ones: an inline
// replication through the direct World API must reproduce the
// registry-built scenario run metric for metric, which pins the thinning
// chain, the cohort mixer and the keyed plan streams byte for byte. The
// record/replay test closes the loop the subsystem exists for: a trace
// exported from a generated run must re-drive an identical run.

// TestGoldenDiurnal pins "diurnal": two day/night cycles of the
// nonstationary rate program, replicated as a plain configured run.
// Beyond byte-stability it checks the thinning actually modulates: the
// arrival count must track the program's integral (~1150 over 60k
// ticks), far below what the flat peak rate would generate (9000).
func TestGoldenDiurnal(t *testing.T) {
	spec, err := Get("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Base.Workload == nil || spec.Base.Workload.Rate == nil {
		t.Fatalf("diurnal has no rate program: %+v", spec.Base.Workload)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	arrivals := m.ArrivalsCoop + m.ArrivalsUncoop
	if arrivals < 900 || arrivals > 1400 {
		t.Fatalf("diurnal produced %d arrivals; the thinning chain is not tracking the program integral (~1150)", arrivals)
	}
	if len(m.Cohorts) != 0 {
		t.Fatalf("rate-only workload grew cohort rows: %+v", m.Cohorts)
	}
	want := worldDigest(w, map[string]id.ID{})
	compareDigests(t, want, runBuiltin(t, "diurnal"))
}

// TestGoldenCohortMix pins "cohort-mix": three behavioural cohorts over
// plain Poisson arrivals, replicated as a plain configured run. Beyond
// byte-stability it checks the mixer's signature: every cohort arrives
// roughly at its weight, and the cohort session plans drive a live
// lifecycle (departures, crashes, rejoins, record migration).
func TestGoldenCohortMix(t *testing.T) {
	spec, err := Get("cohort-mix")
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if len(m.Cohorts) != 3 {
		t.Fatalf("cohort-mix grew %d cohort rows, want 3: %+v", len(m.Cohorts), m.Cohorts)
	}
	var total int64
	byName := map[string]*world.CohortStats{}
	for i := range m.Cohorts {
		c := &m.Cohorts[i]
		if c.Arrivals == 0 {
			t.Fatalf("cohort %q never arrived", c.Name)
		}
		total += c.Arrivals
		byName[c.Name] = c
	}
	mobile, ok := byName["mobile-churner"]
	if !ok {
		t.Fatalf("no mobile-churner row: %+v", m.Cohorts)
	}
	if 10*mobile.Arrivals < 4*total || 10*mobile.Arrivals > 6*total {
		t.Fatalf("mobile-churner (weight 0.5) got %d of %d arrivals; the mixer is off its weights", mobile.Arrivals, total)
	}
	c := m.Churn
	if c.Departures == 0 || c.Crashes == 0 || c.Rejoins == 0 {
		t.Fatalf("cohort plans produced no lifecycle activity: %+v", c)
	}
	if c.Migrated == 0 {
		t.Fatal("cohort churn migrated no records; the handoff protocol is dead")
	}
	want := worldDigest(w, map[string]id.ID{})
	compareDigests(t, want, runBuiltin(t, "cohort-mix"))
}

// TestWorkloadCheckpointMidWindow checkpoints "diurnal" at tick 12,500 —
// the middle of the first dusk ramp, where the thinning clock, the
// program phase and the pending candidate all carry fractional state —
// and demands the resumed run reproduce the uninterrupted output byte
// for byte. (The generic NumTrans/2 sweep in snapshot_test.go cuts this
// scenario exactly on a window boundary; this test pins the harder
// mid-window cut.)
func TestWorkloadCheckpointMidWindow(t *testing.T) {
	spec, err := Get("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := runOutput(t, ref)

	spec2, err := Get("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	r, err := spec2.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunToTick(12_500); err != nil {
		t.Fatal(err)
	}
	st, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRunState(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(dec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := runOutput(t, res); got != want {
		t.Fatalf("mid-window resume diverged from uninterrupted run:\nwant %d bytes, got %d bytes", len(want), len(got))
	}
}

// TestWorkloadRecordReplayByteIdentical closes the trace loop: record
// the workload events of a generated run, feed the trace back as a
// replay spec, and demand metric-for-metric identity. Replay silences
// the two workload streams and re-derives every session plan from the
// trace and the keyed plan streams, so nothing else may wobble.
func TestWorkloadRecordReplayByteIdentical(t *testing.T) {
	for _, name := range []string{"diurnal", "cohort-mix"} {
		t.Run(name, func(t *testing.T) {
			spec, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			w, err := world.New(spec.Base)
			if err != nil {
				t.Fatal(err)
			}
			rec := workload.NewRecorder(workload.Header{Scenario: name, Seed: spec.Base.Seed})
			w.SetWorkloadRecorder(rec)
			if err := w.Run(); err != nil {
				t.Fatal(err)
			}
			events := rec.Events()
			if len(events) == 0 {
				t.Fatal("recorded run produced no workload events")
			}
			if err := workload.ValidateEvents(events); err != nil {
				t.Fatalf("recorded trace invalid: %v", err)
			}

			// The replay spec keeps the cohort table (demand weights and
			// migration gating must match the recorded run) but replaces
			// the generator with the trace.
			cfg := spec.Base
			cfg.Workload = &workload.Spec{
				Cohorts: spec.Base.Workload.Cohorts,
				Trace:   events,
			}
			w2, err := world.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Run(); err != nil {
				t.Fatal(err)
			}
			compareDigests(t, worldDigest(w, map[string]id.ID{}), worldDigest(w2, map[string]id.ID{}))
		})
	}
}

// TestWorkloadSnapshotRestoresReplayCursor pins the replay chain through
// a raw world checkpoint: cut a replaying run mid-trace and the restored
// world must finish identically to the uninterrupted replay.
func TestWorkloadSnapshotRestoresReplayCursor(t *testing.T) {
	spec, err := Get("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	rec := workload.NewRecorder(workload.Header{Scenario: "diurnal", Seed: spec.Base.Seed})
	w.SetWorkloadRecorder(rec)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := spec.Base
	cfg.Workload = &workload.Spec{Trace: rec.Events()}

	ref, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	cut, err := world.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut.Start()
	if err := cut.RunFor(sim.Tick(cfg.NumTrans / 2)); err != nil {
		t.Fatal(err)
	}
	snap, err := cut.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := world.Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.RunFor(sim.Tick(cfg.NumTrans) - resumed.Engine().Now()); err != nil {
		t.Fatal(err)
	}
	resumed.Finish()
	compareDigests(t, worldDigest(ref, map[string]id.ID{}), worldDigest(resumed, map[string]id.ID{}))
}
