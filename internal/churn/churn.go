// Package churn models membership churn of *admitted* peers — the
// extension the paper's model leaves out. The paper admits peers but never
// removes them, yet its central mechanism (replicated score managers
// pinned to DHT ownership arcs) only earns its keep when membership
// changes move those arcs and reputation state must survive the move.
//
// The package has two halves:
//
//   - A departure process: a global Poisson departure clock alongside the
//     simulator's arrival clock, or per-peer session clocks drawn from a
//     configurable session-length distribution (exponential, uniform or
//     Pareto). Each departure is a graceful leave or an abrupt crash, and
//     may be followed by a rejoin after a drawn downtime. Process owns all
//     the randomness so a dedicated stream keeps churn draws from
//     perturbing any other stream of a run.
//
//   - Score-manager state migration: when ownership arcs shift, the new
//     owner pulls the replicated reputation records from the surviving
//     replicas. Reconcile implements the majority-of-replicas rule used
//     when survivors disagree; data is lost only when every replica of a
//     record dies in the same event, which the caller counts as a wipeout.
//
// The simulation world (internal/world) wires both halves to the engine:
// it schedules the clocks, applies departures, and runs the pull on every
// arc change.
package churn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/rocq"
)

// Session-length distribution names.
const (
	// SessionExponential draws session lengths from Exp(1/mean) — the
	// memoryless model matching a Poisson departure clock per peer.
	SessionExponential = "exponential"
	// SessionUniform draws uniformly from [mean/2, 3·mean/2].
	SessionUniform = "uniform"
	// SessionPareto draws from a Pareto(α=1.5) tail scaled to the mean —
	// the heavy-tailed session lengths measured in deployed P2P systems
	// (many short visits, a few very long residents).
	SessionPareto = "pareto"
)

// paretoAlpha is the tail exponent of the Pareto session model. 1.5 keeps
// a finite mean (α > 1) with the pronounced heavy tail churn studies
// report.
const paretoAlpha = 1.5

// Params configures membership churn. The zero value is the paper's
// model: members never leave.
type Params struct {
	// Mu is the global departure rate per tick (Poisson clock): each event
	// departs one uniformly chosen admitted peer. 0 disables the clock.
	Mu float64 `json:"mu,omitempty"`
	// CrashFrac is the fraction of departures that are abrupt crashes: the
	// leaving node's store is destroyed before any handoff, so records it
	// was the last surviving replica of are lost. The rest are graceful
	// leaves, whose store participates in the handoff.
	CrashFrac float64 `json:"crashFrac,omitempty"`
	// RejoinProb is the probability that a departed peer returns after a
	// downtime drawn from Exp(1/DowntimeMean).
	RejoinProb float64 `json:"rejoinProb,omitempty"`
	// DowntimeMean is the mean downtime, in ticks, before a rejoin.
	DowntimeMean float64 `json:"downtimeMean,omitempty"`
	// SessionDist selects the per-peer session-length distribution
	// ("exponential", "uniform" or "pareto"); empty defaults to
	// exponential when SessionMean is set.
	SessionDist string `json:"sessionDist,omitempty"`
	// SessionMean, when positive, arms a session clock on every admission:
	// the peer departs once its drawn session length elapses. The session
	// model and the Mu clock may run together.
	SessionMean float64 `json:"sessionMean,omitempty"`
	// MinPopulation floors the community size: departure events that would
	// shrink the admitted population to or below it are skipped. 0 means
	// numSM+1 — enough members for a full distinct replica set.
	MinPopulation int `json:"minPopulation,omitempty"`
	// Migrate forces score-manager state migration on even without a
	// departure process — for scenarios that churn only through scripted
	// depart/rejoin actions.
	Migrate bool `json:"migrate,omitempty"`
	// LeaseTTL, when positive, leases reputation records to offline peers:
	// a departed peer that stays away longer than LeaseTTL ticks loses its
	// lease — every replica of its record is evicted and its rejoin
	// eligibility dropped, counted in Stats.LeaseEvictions. 0 keeps records
	// for as long as a rejoin remains possible.
	LeaseTTL int `json:"leaseTTL,omitempty"`
}

// Active reports whether any churn machinery (departure clocks or state
// migration) is enabled.
func (p Params) Active() bool {
	return p.Mu > 0 || p.SessionMean > 0 || p.Migrate
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.Mu < 0:
		return fmt.Errorf("churn: Mu %v negative", p.Mu)
	case p.CrashFrac < 0 || p.CrashFrac > 1:
		return fmt.Errorf("churn: CrashFrac %v out of [0,1]", p.CrashFrac)
	case p.RejoinProb < 0 || p.RejoinProb > 1:
		return fmt.Errorf("churn: RejoinProb %v out of [0,1]", p.RejoinProb)
	case p.DowntimeMean < 0:
		return fmt.Errorf("churn: DowntimeMean %v negative", p.DowntimeMean)
	case p.RejoinProb > 0 && p.DowntimeMean <= 0:
		return fmt.Errorf("churn: RejoinProb %v needs a positive DowntimeMean", p.RejoinProb)
	case p.SessionMean < 0:
		return fmt.Errorf("churn: SessionMean %v negative", p.SessionMean)
	case p.MinPopulation < 0:
		return fmt.Errorf("churn: MinPopulation %d negative", p.MinPopulation)
	case p.LeaseTTL < 0:
		return fmt.Errorf("churn: LeaseTTL %d negative", p.LeaseTTL)
	}
	switch p.SessionDist {
	case "", SessionExponential, SessionUniform, SessionPareto:
	default:
		return fmt.Errorf("churn: unknown session distribution %q (want %q, %q or %q)",
			p.SessionDist, SessionExponential, SessionUniform, SessionPareto)
	}
	return nil
}

// Process draws the stochastic choices of a churn run from a dedicated
// randomness stream, so enabling churn cannot reshuffle the workload,
// arrival or behaviour draws of an otherwise identical run.
type Process struct {
	src    *rng.Source
	params Params
}

// NewProcess returns a process drawing from src under the given
// (validated) parameters.
func NewProcess(src *rng.Source, params Params) *Process {
	if src == nil {
		//replend:allow nopanic construction-time misuse guard: a nil Source is a harness bug, not a run-path state
		panic("churn: process needs a randomness source")
	}
	return &Process{src: src, params: params}
}

// SetParams replaces the parameters mid-run (the delta path). The stream
// position is unaffected.
func (p *Process) SetParams(params Params) { p.params = params }

// SrcState captures the process's generator state for a checkpoint; the
// parameters themselves are restored from the run configuration.
func (p *Process) SrcState() [4]uint64 { return p.src.State() }

// RestoreSrc overwrites the process's generator state with a checkpointed
// one.
func (p *Process) RestoreSrc(s [4]uint64) { p.src.SetState(s) }

// Params returns the parameters currently in force.
func (p *Process) Params() Params { return p.params }

// DepartureGap draws the next inter-departure time of the global Poisson
// clock. It panics when Mu is zero (the caller must not arm the clock).
func (p *Process) DepartureGap() float64 {
	return p.src.Exp(p.params.Mu)
}

// Victim draws the index of the departing peer among n admitted peers.
func (p *Process) Victim(n int) int { return p.src.Intn(n) }

// Crashes draws whether a departure is an abrupt crash.
func (p *Process) Crashes() bool { return p.src.Bernoulli(p.params.CrashFrac) }

// Rejoins draws whether a departed peer will return, and after how many
// ticks. The downtime is exponential with mean DowntimeMean, floored at
// one tick.
func (p *Process) Rejoins() (after float64, ok bool) {
	return SampleRejoin(p.src, p.params.RejoinProb, p.params.DowntimeMean)
}

// SessionLength draws one session length under the configured
// distribution, floored at one tick.
func (p *Process) SessionLength() float64 {
	return SampleSession(p.src, p.params.SessionDist, p.params.SessionMean)
}

// SampleRejoin draws one rejoin decision from an arbitrary source: with
// probability prob the peer returns after an Exp(1/downtimeMean)
// downtime floored at one tick. The per-cohort workload plans draw from
// their own keyed streams through this function, so the cohort model and
// the Process stay one distribution.
func SampleRejoin(src *rng.Source, prob, downtimeMean float64) (after float64, ok bool) {
	if !src.Bernoulli(prob) {
		return 0, false
	}
	d := src.Exp(1 / downtimeMean)
	if d < 1 {
		d = 1
	}
	return d, true
}

// SampleSession draws one session length of the named distribution
// (empty = exponential) with the given positive mean from an arbitrary
// source, floored at one tick. Like SampleRejoin, this is the shared
// sampler behind both the Process and the per-cohort workload plans.
func SampleSession(src *rng.Source, dist string, mean float64) float64 {
	var s float64
	switch dist {
	case SessionUniform:
		s = mean/2 + mean*src.Float64()
	case SessionPareto:
		// Pareto(α) with scale xm chosen so the mean is SessionMean:
		// mean = α·xm/(α−1).
		xm := mean * (paretoAlpha - 1) / paretoAlpha
		s = xm / math.Pow(1-src.Float64(), 1/paretoAlpha)
	default: // exponential
		s = src.Exp(1 / mean)
	}
	if s < 1 {
		s = 1
	}
	return s
}

// ---------------------------------------------------------------------------
// State migration.

// Stats counts churn activity; the world embeds it in its metrics.
type Stats struct {
	// Departures counts graceful leaves of admitted peers; Crashes counts
	// abrupt ones.
	Departures int64
	Crashes    int64
	// Rejoins counts departed peers readmitted with their reputation
	// restored from their score managers.
	Rejoins int64
	// Migrated counts reputation records handed to a new owner after an
	// arc change.
	Migrated int64
	// Wipeouts counts records whose every surviving replica died in one
	// event — the only way churn loses reputation state.
	Wipeouts int64
	// StakesRefunded counts admission stakes the audit-timeout clock
	// resolved in a surviving party's favour (the introducer repaid, or
	// the newcomer keeping the lent amount when the introducer is gone
	// for good); StakesStranded counts stakes lost with nobody left to
	// pay. Both stay zero without a configured stake timeout — except
	// that a satisfied audit whose introducer is permanently gone has
	// always stranded the stake, which is now counted here too.
	StakesRefunded int64
	StakesStranded int64
	// StakesExpired counts stake records of offline peers dropped by the
	// TTL so rejoin-free churn cannot accrete one record per departed
	// newcomer.
	StakesExpired int64
	// LeaseEvictions counts reputation records of offline peers evicted by
	// the record lease (Params.LeaseTTL): like a wipeout, the record is
	// gone for good, but by policy rather than replica loss.
	LeaseEvictions int64
}

// Reconcile applies the majority-of-replicas rule to the surviving
// snapshots of one record: if a strict majority agree exactly, their
// version wins; otherwise the snapshot with the median read value is
// taken (deterministic tie-breaking by full snapshot ordering). The
// boolean is false when no survivor exists — a wipeout.
func Reconcile(snaps []rocq.Snapshot) (rocq.Snapshot, bool) {
	switch len(snaps) {
	case 0:
		return rocq.Snapshot{}, false
	case 1:
		return snaps[0], true
	}
	sorted := append([]rocq.Snapshot(nil), snaps...)
	sort.Slice(sorted, func(i, j int) bool { return snapLess(sorted[i], sorted[j]) })
	// Majority scan over the sorted copy: equal snapshots are adjacent.
	runStart, best, bestLen := 0, 0, 1
	for i := 1; i <= len(sorted); i++ {
		if i < len(sorted) && sorted[i] == sorted[runStart] {
			continue
		}
		if n := i - runStart; n > bestLen {
			best, bestLen = runStart, n
		}
		runStart = i
	}
	if 2*bestLen > len(sorted) {
		return sorted[best], true
	}
	// No majority: the median-by-value survivor.
	return sorted[len(sorted)/2], true
}

// snapLess orders snapshots by read value, then by the full evidence
// tuple, so reconciliation is deterministic.
func snapLess(a, b rocq.Snapshot) bool {
	av, bv := a.Value(), b.Value()
	if av != bv {
		return av < bv
	}
	if a.S != b.S {
		return a.S < b.S
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return a.Reports < b.Reports
}
