package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/world"
)

// Collusion reproduces the attack discussed in the paper's §1 (experiment
// A1 in DESIGN.md): "one member of a group of colluding peers enters the
// system and behaves honestly to accumulate reputation. It then recommends
// the other malicious peers into the group." The staking defence should
// bound the damage: every introduction costs the mole introAmt, the
// audited freeriders forfeit the lent reputation, and once the mole's
// reputation drops below minIntroRep its score managers refuse further
// lends.
type Collusion struct {
	// MoleRepBefore/After bracket the introduction spree.
	MoleRepBefore float64
	MoleRepAfter  float64
	// ColludersTried / Admitted / Refused count the spree.
	ColludersTried    int
	ColludersAdmitted int
	ColludersRefused  int
	// MaxColluderRep is the highest reputation any colluder holds at the
	// end — the residual damage.
	MaxColluderRep float64
	// MeanColluderRep is the average across admitted colluders.
	MeanColluderRep float64
	// TheoreticalBound is (moleRep − minIntroRep)/introAmt at spree start:
	// the staking argument's cap on consecutive unreturned lends.
	TheoreticalBound float64
}

// RunCollusion executes the scripted attack. Scale shrinks the honest
// community and the phase lengths.
func RunCollusion(opt Options) (*Collusion, error) {
	opt = opt.withDefaults()
	cfg := config.Default()
	cfg.Lambda = 0 // scripted arrivals only
	cfg.NumInit = 300
	cfg.NumTrans = 200_000 // upper bound; phases drive the clock
	cfg.WaitPeriod = 1000
	cfg.Seed = opt.SeedBase
	cfg = opt.apply(cfg)

	w, err := world.New(cfg)
	if err != nil {
		return nil, err
	}
	w.Start()

	// Phase 1: the mole enters through a naive founder and behaves
	// honestly (class Cooperative — the attack is social, not behavioural,
	// until the clique is inside).
	founder := firstNaive(w)
	mole, err := w.InjectArrival(peer.Cooperative, peer.Naive, founder)
	if err != nil {
		return nil, err
	}
	// Let the mole accumulate reputation: a third of the configured run.
	if err := w.RunFor(sim.Tick(cfg.NumTrans / 3)); err != nil {
		return nil, err
	}

	out := &Collusion{MoleRepBefore: w.Reputation(mole)}
	out.TheoreticalBound = (out.MoleRepBefore - cfg.MinIntroRep) / cfg.IntroAmt

	// Phase 2: the mole introduces freeriding colluders, one per waiting
	// period (concurrent introductions would be caught and zeroed).
	var colluders []id.ID
	spree := int(out.TheoreticalBound)*3 + 6 // try well past the bound
	for i := 0; i < spree; i++ {
		c, err := w.InjectArrival(peer.Uncooperative, peer.Naive, mole)
		if err != nil {
			return nil, err
		}
		colluders = append(colluders, c)
		out.ColludersTried++
		if err := w.RunFor(sim.Tick(cfg.WaitPeriod + 1)); err != nil {
			return nil, err
		}
	}

	// Phase 3: let audits and reputation dynamics settle.
	if err := w.RunFor(sim.Tick(cfg.NumTrans / 3)); err != nil {
		return nil, err
	}

	out.MoleRepAfter = w.Reputation(mole)
	sum := 0.0
	for _, c := range colluders {
		if contains(w.AdmittedPeers(), c) {
			out.ColludersAdmitted++
			rep := w.Reputation(c)
			sum += rep
			if rep > out.MaxColluderRep {
				out.MaxColluderRep = rep
			}
		}
	}
	out.ColludersRefused = out.ColludersTried - out.ColludersAdmitted
	if out.ColludersAdmitted > 0 {
		out.MeanColluderRep = sum / float64(out.ColludersAdmitted)
	}
	return out, nil
}

// firstNaive returns a naive member to serve as the mole's entry point.
func firstNaive(w *world.World) id.ID {
	for _, pid := range w.AdmittedPeers() {
		if p, ok := w.Peer(pid); ok && p.Style == peer.Naive {
			return pid
		}
	}
	// All-selective founding community: any founder will do (the mole is
	// cooperative-behaving, so a selective founder grants too).
	return w.AdmittedPeers()[0]
}

func contains(ids []id.ID, x id.ID) bool {
	for _, v := range ids {
		if v == x {
			return true
		}
	}
	return false
}

// Name implements Report.
func (c *Collusion) Name() string { return "collusion" }

// Table renders the attack outcome.
func (c *Collusion) Table() string {
	t := &TextTable{
		Title:  "§1 collusion attack — staking bounds the damage",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("mole reputation before spree", c.MoleRepBefore)
	t.AddRow("staking bound on consecutive lends", c.TheoreticalBound)
	t.AddRow("colluders tried", c.ColludersTried)
	t.AddRow("colluders admitted", c.ColludersAdmitted)
	t.AddRow("colluders refused (mole below floor)", c.ColludersRefused)
	t.AddRow("mole reputation after", c.MoleRepAfter)
	t.AddRow("max colluder reputation at end", c.MaxColluderRep)
	t.AddRow("mean colluder reputation at end", c.MeanColluderRep)
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nexpected: admitted ≲ bound + recouped lends; colluder reputations decay toward 0 after audits\n")
	return b.String()
}

// CSV renders the summary row.
func (c *Collusion) CSV() string {
	var b strings.Builder
	b.WriteString("mole_rep_before,theoretical_bound,tried,admitted,refused,mole_rep_after,max_colluder_rep,mean_colluder_rep\n")
	fmt.Fprintf(&b, "%g,%g,%d,%d,%d,%g,%g,%g\n",
		c.MoleRepBefore, c.TheoreticalBound, c.ColludersTried, c.ColludersAdmitted,
		c.ColludersRefused, c.MoleRepAfter, c.MaxColluderRep, c.MeanColluderRep)
	return b.String()
}
