package workload

// Trace-decoding fuzz, mirroring the checkpoint fuzzers: corrupt,
// truncated or version-skewed trace files must be rejected with an
// error — never a panic — and an accepted trace must survive an
// encode → decode round trip.

import (
	"bytes"
	"testing"
)

func FuzzTraceDecode(f *testing.F) {
	rec := NewRecorder(Header{Scenario: "fuzz-seed", Seed: 7})
	rec.Record(Event{At: 3, Op: OpArrival, Class: ClassCooperative, Style: StyleSelective,
		Cohort: "resident", Peer: "ab12cd34",
		Plan: &Plan{SessionParams: SessionParams{Dist: "pareto", Mean: 100, CrashFrac: 0.2, RejoinProb: 0.5, DowntimeMean: 10},
			Session: 140, Rejoin: 12}})
	rec.Record(Event{At: 9, Op: OpDepart, Cohort: "resident", Detail: "crash"})
	rec.Record(Event{At: 21, Op: OpRejoin, Cohort: "resident"})
	valid, err := rec.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"format":"replend-trace/v1"}`))
	f.Add([]byte(`{"format":"replend-trace/v0"}`))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"format":"replend-trace/v1"}` + "\n" + `{"at":-1,"op":"arrival"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, events, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must be internally valid and re-encode →
		// re-decode cleanly.
		if hdr.Format != TraceFormat {
			t.Fatalf("accepted trace with format %q", hdr.Format)
		}
		if err := ValidateEvents(events); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		again := NewRecorder(hdr)
		for _, ev := range events {
			again.Record(ev)
		}
		out, err := again.Encode()
		if err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		if _, _, err := ReadTrace(bytes.NewReader(out)); err != nil {
			t.Fatalf("re-decoding re-encoded trace: %v", err)
		}
	})
}
