package main

import (
	"strings"
	"testing"
)

var (
	testSimFlags = map[string]bool{"scenario": true, "runs": true, "workers": true, "lambda": true, "worker": false}
	testExpFlags = map[string]bool{"scale": true, "runs": true, "all": false}
	testScens    = map[string]bool{"quickstart": true, "stake-churn": true}
	testExps     = map[string]bool{"fig1": true, "stakes": true}
)

func check(t *testing.T, text string) []string {
	t.Helper()
	invs := invocations("```sh\n" + text + "\n```\n")
	if len(invs) != 1 {
		t.Fatalf("invocations(%q) = %v, want 1", text, invs)
	}
	return checkInvocation(invs[0], testSimFlags, testExpFlags, testScens, testExps)
}

func TestCleanInvocationsPass(t *testing.T) {
	for _, line := range []string{
		"go run ./cmd/replend-sim -scenario stake-churn -runs 10 -workers 4",
		"replend-sim -scenario my-workload.json -runs 3",
		"replend-sim scenarios describe quickstart",
		"replend-sim scenarios dump <name>",
		"go run ./cmd/replend-experiments -scale 0.1 fig1 stakes",
		"replend-experiments -all -scale 1   # a trailing comment naming -bogus is ignored",
		"replend-sim -worker",
	} {
		if p := check(t, line); len(p) != 0 {
			t.Errorf("%q flagged: %v", line, p)
		}
	}
}

func TestStaleReferencesCaught(t *testing.T) {
	for line, want := range map[string]string{
		"replend-sim -scenaro stake-churn":     "unknown replend-sim flag -scenaro",
		"replend-sim -scenario stake-churns":   `unknown scenario "stake-churns"`,
		"replend-sim -scenario=nope":           `unknown scenario "nope"`,
		"replend-sim scenarios describe ghost": `unknown scenario "ghost"`,
		"replend-experiments -scale 0.1 fig99": `unknown experiment "fig99"`,
		"replend-experiments -turbo fig1":      "unknown replend-experiments flag -turbo",
	} {
		p := check(t, line)
		if len(p) == 0 {
			t.Errorf("%q not flagged, want %q", line, want)
			continue
		}
		if !strings.Contains(strings.Join(p, "; "), want) {
			t.Errorf("%q flagged as %v, want %q", line, p, want)
		}
	}
}

func TestProseOutsideFencesIgnored(t *testing.T) {
	doc := "The replend-sim -bogus flag is discussed in prose only.\n\n```\nreplend-sim -scenario quickstart\n```\n"
	invs := invocations(doc)
	if len(invs) != 1 || invs[0].text != "replend-sim -scenario quickstart" {
		t.Fatalf("invocations = %+v, want only the fenced command", invs)
	}
}
