package fleet

// Crash-safe coordinator state: a Journal records each completed unit of
// one batch as it lands, so a coordinator killed mid-batch can restart,
// reload the journal and re-dispatch only the incomplete units. The
// batch is identified by a signature over its jobs (with the
// coordinator-assigned Unit/Epoch fields zeroed), so a journal can never
// feed a different batch's results into this one.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// journalMagic identifies a fleet journal file and its format version.
const journalMagic = "replend-fleet-journal/v1"

// journalHeader is the first line of a journal.
type journalHeader struct {
	Magic     string `json:"magic"`
	Signature string `json:"signature"`
	N         int    `json:"n"`
}

// Journal is an append-only record of one batch's completed units.
type Journal struct {
	file      *os.File
	completed []*Result // by unit index; nil where incomplete
}

// BatchSignature fingerprints a batch's work independently of how the
// coordinator numbers it: each job is hashed with Unit and Epoch zeroed.
func BatchSignature(jobs []Job) (string, error) {
	h := sha256.New()
	var n [8]byte
	for i := range jobs {
		j := jobs[i]
		j.Unit, j.Epoch = 0, 0
		data, err := json.Marshal(j)
		if err != nil {
			return "", fmt.Errorf("fleet: hashing job %d: %w", i, err)
		}
		binary.BigEndian.PutUint64(n[:], uint64(len(data)))
		h.Write(n[:])
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// OpenJournal opens (or creates) the journal for the given batch. A
// fresh or empty file is initialized with the batch header. An existing
// journal must belong to the same batch — same signature and unit count
// — or OpenJournal refuses, rather than silently discarding or mixing
// state; completed results recorded by the previous coordinator are
// loaded and available through Completed. A partial final line (the
// previous coordinator died mid-append) is dropped and truncated away.
func OpenJournal(path string, jobs []Job) (*Journal, error) {
	sig, err := BatchSignature(jobs)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: opening journal: %w", err)
	}
	j := &Journal{file: f, completed: make([]*Result, len(jobs))}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxFrame)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: reading journal header: %w", err)
		}
		// Empty file: write the header and start fresh.
		hdr, err := json.Marshal(journalHeader{Magic: journalMagic, Signature: sig, N: len(jobs)})
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: writing journal header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: syncing journal: %w", err)
		}
		return j, nil
	}
	var hdr journalHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: journal header corrupt: %w", err)
	}
	if hdr.Magic != journalMagic {
		f.Close()
		return nil, fmt.Errorf("fleet: %s is not a fleet journal (magic %q)", path, hdr.Magic)
	}
	if hdr.Signature != sig || hdr.N != len(jobs) {
		f.Close()
		return nil, fmt.Errorf("fleet: journal %s belongs to a different batch — delete it or use another path", path)
	}
	// Replay completed results. good tracks the end of the last intact
	// line so a torn final append can be truncated away.
	good := int64(len(sc.Bytes()) + 1)
	for sc.Scan() {
		var res Result
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			break // torn tail; truncate below
		}
		if res.Unit < 0 || res.Unit >= len(jobs) {
			f.Close()
			return nil, fmt.Errorf("fleet: journal records unit %d outside the batch", res.Unit)
		}
		if j.completed[res.Unit] != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: journal records unit %d twice", res.Unit)
		}
		if res.Err != "" {
			f.Close()
			return nil, fmt.Errorf("fleet: journal records a failed unit %d: %s", res.Unit, res.Err)
		}
		j.completed[res.Unit] = &res
		good += int64(len(sc.Bytes()) + 1)
	}
	if err := sc.Err(); err != nil && err != bufio.ErrTooLong {
		f.Close()
		return nil, fmt.Errorf("fleet: reading journal: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: truncating torn journal tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: seeking journal: %w", err)
	}
	return j, nil
}

// Completed returns the units already recorded, by unit index (nil
// where incomplete).
func (j *Journal) Completed() []*Result {
	out := make([]*Result, len(j.completed))
	copy(out, j.completed)
	return out
}

// CompletedCount returns how many units the journal has recorded.
func (j *Journal) CompletedCount() int {
	n := 0
	for _, r := range j.completed {
		if r != nil {
			n++
		}
	}
	return n
}

// append durably records one completed unit. Called with the fleet lock
// held; each record is synced before the result is merged, so a crash
// after the merge can never lose a unit the caller saw complete.
func (j *Journal) append(res *Result) error {
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("fleet: encoding journal record: %w", err)
	}
	if _, err := j.file.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fleet: appending journal record: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("fleet: syncing journal: %w", err)
	}
	j.completed[res.Unit] = res
	return nil
}

// Close releases the journal file. The file itself is left in place —
// deleting it after a successful batch is the caller's decision.
func (j *Journal) Close() error { return j.file.Close() }
