package asciiplot

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func ramp(name string, n int, slope float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i := 0; i < n; i++ {
		s.Append(int64(i*100), slope*float64(i))
	}
	return s
}

func TestRenderBasicGeometry(t *testing.T) {
	out := Render(Options{Width: 40, Height: 8, Title: "T"}, ramp("up", 50, 1))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 rows + axis + x labels = 11
	if len(lines) != 11 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "T" {
		t.Fatalf("title missing: %q", lines[0])
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no glyphs plotted")
	}
}

func TestRenderMonotoneSeriesFillsCorners(t *testing.T) {
	out := Render(Options{Width: 30, Height: 6}, ramp("up", 30, 2))
	lines := strings.Split(out, "\n")
	top := lines[0]
	bottom := lines[5]
	// Rising series: glyph near the right of the top row, near the left
	// of the bottom row.
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Fatalf("extremes not plotted:\n%s", out)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("rising series plotted falling:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(Options{Title: "E"})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty render = %q", out)
	}
	empty := &metrics.Series{Name: "x"}
	if out := Render(Options{}, empty); !strings.Contains(out, "no data") {
		t.Fatalf("all-empty render = %q", out)
	}
}

func TestRenderFlatSeries(t *testing.T) {
	s := &metrics.Series{Name: "flat"}
	for i := 0; i < 10; i++ {
		s.Append(int64(i), 5)
	}
	out := Render(Options{Width: 20, Height: 5}, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series vanished:\n%s", out)
	}
}

func TestRenderLegendForMultipleSeries(t *testing.T) {
	out := Render(Options{Width: 30, Height: 5},
		ramp("alpha", 20, 1), ramp("beta", 20, 2))
	if !strings.Contains(out, "*=alpha") || !strings.Contains(out, "+=beta") {
		t.Fatalf("legend missing:\n%s", out)
	}
}

func TestRenderAxisLabels(t *testing.T) {
	out := Render(Options{Width: 30, Height: 5, XLabel: "ticks", YLabel: "rep"}, ramp("a", 10, 1))
	if !strings.Contains(out, "x: ticks") || !strings.Contains(out, "y: rep") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
}

func TestRenderTinyDimensionsClamped(t *testing.T) {
	out := Render(Options{Width: 1, Height: 1}, ramp("a", 5, 1))
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestRenderXY(t *testing.T) {
	xs := []float64{300, 100, 200}
	ys := []float64{30, 10, 20}
	out := RenderXY(Options{Width: 30, Height: 5}, "xy", xs, ys)
	if !strings.Contains(out, "*") {
		t.Fatalf("no glyphs:\n%s", out)
	}
	// X axis must span the sorted x range.
	if !strings.Contains(out, "100") || !strings.Contains(out, "300") {
		t.Fatalf("x range missing:\n%s", out)
	}
}

func TestRenderXYMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RenderXY(Options{}, "bad", []float64{1}, []float64{1, 2})
}
