package world

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

// TestTraceInvariantsOverFullRun drives a whole simulation with the
// recorder attached and verifies the causal invariants of the admission
// protocol end to end: every admission and refusal follows an arrival, no
// peer is both admitted and refused, audits only happen to admitted
// peers, and the log is time-ordered.
func TestTraceInvariantsOverFullRun(t *testing.T) {
	c := smallCfg()
	c.NumTrans = 15000
	c.AuditTrans = 5
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.New(0)
	w.SetTrace(log)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	if log.Len() == 0 {
		t.Fatal("no events recorded")
	}
	if violations := log.Verify(); len(violations) != 0 {
		t.Fatalf("trace invariants violated:\n%v", violations)
	}

	// The log must agree with the counters.
	m := w.Metrics()
	if got := int64(len(log.Filter(trace.Admitted))); got != m.AdmittedCoop+m.AdmittedUncoop {
		t.Fatalf("admitted events %d != counters %d", got, m.AdmittedCoop+m.AdmittedUncoop)
	}
	refusals := m.RefusedSelectiveCoop + m.RefusedSelectiveUncoop + m.RefusedRepCoop + m.RefusedRepUncoop
	if got := int64(len(log.Filter(trace.Refused))); got != refusals {
		t.Fatalf("refused events %d != counters %d", got, refusals)
	}
	if got := int64(len(log.Filter(trace.AuditOK))); got != m.AuditsSatisfied {
		t.Fatalf("audit-ok events %d != counter %d", got, m.AuditsSatisfied)
	}
	if got := int64(len(log.Filter(trace.AuditFail))); got != m.AuditsForfeited {
		t.Fatalf("audit-bad events %d != counter %d", got, m.AuditsForfeited)
	}
	if s := log.Summary(2); s == "" {
		t.Fatal("empty summary")
	}
}

// TestLendingSurvivesMessageLoss injects transport-level message loss and
// checks that the run completes with the protocol still accounting
// consistently — the redundancy argument of the paper under a harsher
// fault model than it assumed.
func TestLendingSurvivesMessageLoss(t *testing.T) {
	c := smallCfg()
	c.NumTrans = 10000
	w, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	// 20% of lending messages vanish. (Feedback reports go store-direct in
	// the simulation; the lending protocol is the messaging-dependent
	// part.)
	w.Bus().SetLoss(0.2)
	w.Bus().SetFaultRand(newFaultRand())
	log := trace.New(0)
	w.SetTrace(log)
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}

	m := w.Metrics()
	arrivals := m.ArrivalsCoop + m.ArrivalsUncoop
	accounted := m.AdmittedCoop + m.AdmittedUncoop +
		m.RefusedSelectiveCoop + m.RefusedSelectiveUncoop +
		m.RefusedRepCoop + m.RefusedRepUncoop +
		m.RefusedNoIntroducer + m.Pending
	if accounted != arrivals {
		t.Fatalf("lossy transport broke accounting: %d arrivals, %d accounted", arrivals, accounted)
	}
	if violations := log.Verify(); len(violations) != 0 {
		t.Fatalf("trace invariants violated under loss:\n%v", violations)
	}
	// With 6 managers per side and per-message loss of 20%, effectively
	// every introduction should still land.
	if m.AdmittedCoop == 0 {
		t.Fatal("no admissions under 20% message loss")
	}
}

// newFaultRand supplies transport fault randomness decoupled from the
// world's own streams.
func newFaultRand() *rng.Source { return rng.New(12345) }
