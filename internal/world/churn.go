package world

// Membership churn of admitted peers: the departure process (a Poisson
// departure clock alongside the arrival clock, plus optional per-peer
// session clocks), the Depart/Crash/Rejoin lifecycle, and the
// score-manager handoff that migrates reputation records when ownership
// arcs shift. The paper's model admits peers and never removes them; this
// file is the extension scenario ROADMAP calls for, built on PR 2's
// incremental placement invalidation.
//
// The handoff protocol, in DHT terms:
//
//   - A *leave* moves ownership of the leaver's arcs to its live
//     successor. Before the node goes, the records it hosts are captured
//     from every surviving replica (including the leaver itself on a
//     graceful leave, excluding it on a crash); after the leave, each new
//     owner that lacks a record adopts the majority-reconciled snapshot.
//     Records whose every replica died in the same event are wiped out —
//     counted, and the only way churn loses reputation state.
//
//   - A *join* moves ownership of part of the successor's arcs to the
//     joiner. The joiner pulls the records it now owns from the current
//     replicas, and the successor drops the ones it no longer owns —
//     Chord key transfer.
//
//   - A *rejoin* is a full re-admission whose reputation needs no
//     bootstrap: the peer's records survived on its (migrating) score
//     managers, so its standing resumes where departure left it.

import (
	"fmt"
	"sort"

	"repro/internal/churn"
	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/rocq"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/workload"
)

// departedPeer is a member that left but may rejoin: its behavioural
// state (opinion book, transaction history) and its signing identity
// survive the downtime.
type departedPeer struct {
	peer  *peer.Peer
	ident transport.Identity
}

// leaver is one node leaving the ring in the current membership event.
type leaver struct {
	pid      id.ID
	graceful bool
}

// handoffRecord is one captured reputation record pending adoption by the
// owners inheriting the leavers' arcs.
type handoffRecord struct {
	subject id.ID
	snaps   []rocq.Snapshot // survivors' versions, in manager order
}

// migrating reports whether score-manager state migration is active. It
// tracks the live configuration, so a delta that enables churn mid-run
// switches the handoff on from that point. Workload cohorts imply
// migration: cohort session plans depart peers even when the churn
// block is otherwise zero, and those departures must not silently lose
// reputation records.
func (w *World) migrating() bool {
	return w.cfg.Churn.Active() || (w.cfg.Workload != nil && len(w.cfg.Workload.Cohorts) > 0)
}

// minPopulation is the community-size floor under which the departure
// process stops picking victims: enough members to host a full distinct
// replica set.
func (w *World) minPopulation() int {
	if m := w.cfg.Churn.MinPopulation; m > 0 {
		return m
	}
	if w.cfg.NumSM+1 > 2 {
		return w.cfg.NumSM + 1
	}
	return 2
}

// ---------------------------------------------------------------------------
// Public lifecycle API.

// Depart removes an admitted peer gracefully: its node announces the
// departure, hands the records it hosts to the owners inheriting its
// arcs, and leaves. The peer may later Rejoin.
func (w *World) Depart(pid id.ID) error { return w.DepartBatch([]id.ID{pid}, true) }

// Crash removes an admitted peer abruptly: its store is destroyed before
// any handoff, so the records it hosted survive only on the other
// replicas.
func (w *World) Crash(pid id.ID) error { return w.DepartBatch([]id.ID{pid}, false) }

// DepartBatch removes several admitted peers in one membership event —
// the same simulated tick. Captures happen before any node goes, so a
// batch that kills every replica of a record in one stroke is the (only)
// data-loss case, counted as a wipeout.
func (w *World) DepartBatch(pids []id.ID, graceful bool) error {
	if len(pids) == 0 {
		return nil
	}
	batch := make([]leaver, 0, len(pids))
	seen := make(map[id.ID]bool, len(pids))
	for _, pid := range pids {
		if seen[pid] {
			return fmt.Errorf("world: duplicate departure of %s", pid.Short())
		}
		seen[pid] = true
		if !w.IsAdmitted(pid) {
			return fmt.Errorf("world: cannot depart %s: not an admitted member", pid.Short())
		}
		batch = append(batch, leaver{pid: pid, graceful: graceful})
	}
	if w.ring.Size()-len(batch) < 1 {
		return fmt.Errorf("world: departing %d peers would empty the overlay", len(batch))
	}
	w.departBatch(batch)
	return w.err
}

// Rejoin readmits a departed peer: its node joins the overlay under the
// identity it left with, pulls the records it now owns, and the peer
// resumes with the global reputation its score managers kept for it —
// not a reset, the whole point of replicated score management.
func (w *World) Rejoin(pid id.ID) error {
	s := w.slotOf(pid)
	if s == nil || s.departed == nil {
		return fmt.Errorf("world: cannot rejoin %s: not a departed peer", pid.Short())
	}
	d := s.departed
	s.departed = nil // the slot's ordinal carries straight over to the readmission
	p := d.peer
	ident := d.ident
	if ident == nil {
		// Departed before ever signing (or under null signing): a fresh
		// identity is indistinguishable.
		if err := w.attachNode(p); err != nil {
			return err
		}
	} else if err := w.attachNodeIdentity(p, ident); err != nil {
		return err
	}
	w.m.Churn.Rejoins++
	if cs := w.cohortStats(p.Cohort); cs != nil {
		cs.Rejoins++
	}
	if p.Plan != nil {
		// A returning plan-governed peer starts a fresh visit: redraw the
		// session plan from its keyed stream before admission arms the
		// session clock.
		w.redrawPlan(p)
	}
	w.record(trace.Rejoined, pid, id.ID{}, p.Class.String())
	w.recordWorkload(workload.Event{
		At: int64(w.engine.Now()), Op: workload.OpRejoin,
		Cohort: p.Cohort, Peer: pid.Short(), Plan: p.Plan,
	})
	w.admit(p, w.engine.Now())
	return w.err
}

// DepartedPeers returns the identifiers of peers currently offline but
// eligible to rejoin, in ascending identifier order.
func (w *World) DepartedPeers() []id.ID {
	return w.slotIDsSorted(func(s *worldSlot) bool { return s.departed != nil })
}

// IsDeparted reports whether the peer is offline but eligible to rejoin.
func (w *World) IsDeparted(pid id.ID) bool {
	s := w.slotOf(pid)
	return s != nil && s.departed != nil
}

// WipedOut reports whether every replica of the peer's reputation died in
// a single membership event at some point in the run.
func (w *World) WipedOut(pid id.ID) bool {
	s := w.slotOf(pid)
	return s != nil && s.wiped
}

func sortIDs(ids []id.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
}

// ---------------------------------------------------------------------------
// Departure process (the churn clocks).

// scheduleNextDeparture advances the continuous Poisson departure clock —
// the exact dual of scheduleNextArrival, including the one-event-per-tick
// clamp and the generation guard that lets ApplyDelta re-arm the process
// when μ changes.
func (w *World) scheduleNextDeparture() {
	if w.cfg.Churn.Mu <= 0 {
		return
	}
	gen := w.departGen
	w.departClk += w.churnProc.DepartureGap()
	at := sim.Tick(w.departClk)
	if at <= w.engine.Now() {
		at = w.engine.Now() + 1
		w.departClk = float64(at)
	}
	w.engine.SchedulePayload(at, "departure", genPayload{Gen: gen}, w.departureBody(gen))
}

// departureBody is the departure event armed under the given process
// generation: it aborts if a μ delta re-armed the chain since.
func (w *World) departureBody(gen int64) func() {
	return func() {
		if gen != w.departGen {
			return
		}
		w.handleDeparture()
		w.scheduleNextDeparture()
	}
}

// rearmDepartures cancels any in-flight departure chain and, when μ is
// positive and the workload is running, starts a fresh process from now.
func (w *World) rearmDepartures() {
	w.departGen++
	if !w.started {
		return // Start will arm the (new-generation) chain
	}
	w.departClk = float64(w.engine.Now())
	w.scheduleNextDeparture()
}

// handleDeparture executes one departure-clock event: a uniformly chosen
// admitted peer leaves (gracefully or by crash), unless the population is
// already at the configured floor.
func (w *World) handleDeparture() {
	n := len(w.admittedPeers)
	if n <= w.minPopulation() {
		return
	}
	victim := w.admittedPeers[w.churnProc.Victim(n)]
	w.churnDepart(victim)
}

// scheduleSessionEnd arms the session clock of a freshly admitted peer:
// it departs when its drawn session length elapses, unless it already
// left (or left and rejoined) by other means.
func (w *World) scheduleSessionEnd(p *peer.Peer) {
	joined := p.JoinedAt
	w.armSessionEnd(p, joined, joined+sim.Tick(w.churnProc.SessionLength()))
}

// armSessionEnd schedules one session-expiry attempt. An expiry that
// lands while the population sits at the floor extends the session by a
// fresh draw instead of dropping the event — otherwise a peer whose
// session happened to end during a population trough would become
// immortal for the rest of the run.
func (w *World) armSessionEnd(p *peer.Peer, joined, at sim.Tick) {
	w.engine.SchedulePayload(at, "session-end",
		sessionPayload{Peer: p.ID, Joined: joined}, w.sessionEndBody(p.ID, joined))
}

// sessionEndBody is the session-expiry event of the peer admitted at
// joined. The peer is resolved by identifier at fire time: a departure
// in the interim removes it from the peer table, a rejoin bumps
// JoinedAt — either way the stale event aborts.
func (w *World) sessionEndBody(pid id.ID, joined sim.Tick) func() {
	return func() {
		if w.err != nil || !w.IsAdmitted(pid) {
			return
		}
		p := w.livePeer(pid)
		if p == nil || p.JoinedAt != joined {
			return
		}
		if len(w.admittedPeers) <= w.minPopulation() {
			w.armSessionEnd(p, joined, w.engine.Now()+sim.Tick(w.sessionExtension(p)))
			return
		}
		w.churnDepart(p)
	}
}

// churnDepart runs one process-driven departure: crash-or-leave draw,
// the departure itself, and the optional rejoin scheduling. Scripted
// departures (Depart/Crash/DepartBatch) never auto-rejoin — and stay
// rejoin-eligible for the caller — but a process departure that draws
// no rejoin is known permanent at this very moment, so its rejoin state
// and its now-unreachable reputation records are dropped instead of
// accreting (and re-migrating) for the rest of the run.
func (w *World) churnDepart(p *peer.Peer) {
	graceful := !w.planCrashes(p)
	w.departBatch([]leaver{{pid: p.ID, graceful: graceful}})
	if w.err != nil {
		return
	}
	after, ok := w.planRejoins(p)
	if !ok {
		w.forgetDeparted(p.ID)
		return
	}
	pid := p.ID
	w.engine.AfterPayload(sim.Tick(after), "rejoin", peerPayload{Peer: pid}, w.rejoinBody(pid))
}

// rejoinBody is the scheduled return of a process-departed peer.
func (w *World) rejoinBody(pid id.ID) func() {
	return func() {
		if w.err != nil || !w.IsDeparted(pid) {
			return
		}
		if err := w.Rejoin(pid); err != nil {
			w.fail(fmt.Errorf("sim: rejoin of %s: %w", pid.Short(), err))
		}
	}
}

// forgetDeparted finalises a departure known to be permanent: the peer
// loses rejoin eligibility and every copy of its reputation record is
// dropped — the current replicas and any orphaned copies older arc
// shifts left behind (only the peer's own placement could ever read
// them, and it is gone for good). The sweep is O(stores) per permanent
// departure; skipping the orphans instead would accrete one dead slot
// per (departure × past manager) for the run's lifetime under exactly
// the sustained-churn workloads this subsystem exists for.
func (w *World) forgetDeparted(pid id.ID) {
	if s := w.slotOf(pid); s != nil && s.departed != nil {
		d := s.departed
		s.departed = nil
		w.peerSlab.Free(d.peer)
	}
	for ord := range w.slots {
		if st := w.slots[ord].store; st != nil {
			st.Forget(pid)
		}
	}
	w.releaseIfEmpty(pid)
}

// ---------------------------------------------------------------------------
// The departure itself.

// departBatch removes the (validated, admitted) leavers in one membership
// event: capture the records their stores host, detach each node from
// every table, then hand the captured records to the new arc owners.
func (w *World) departBatch(batch []leaver) {
	var records []handoffRecord
	if w.migrating() {
		records = w.captureHandoff(batch)
	}
	for _, l := range batch {
		p := w.livePeer(l.pid)
		ident, _ := w.proto.Identity(l.pid)
		w.removeAdmitted(p)
		w.m.SessionLength.Observe(int64(w.engine.Now() - p.JoinedAt))
		detail := "leave"
		if l.graceful {
			w.m.Churn.Departures++
			if cs := w.cohortStats(p.Cohort); cs != nil {
				cs.Departures++
			}
		} else {
			detail = "crash"
			w.m.Churn.Crashes++
			if cs := w.cohortStats(p.Cohort); cs != nil {
				cs.Crashes++
			}
		}
		w.record(trace.Departed, l.pid, id.ID{}, detail)
		w.recordWorkload(workload.Event{
			At: int64(w.engine.Now()), Op: workload.OpDepart,
			Cohort: p.Cohort, Peer: l.pid.Short(), Detail: detail,
		})
		succ, _ := w.ring.NextMember(l.pid) // the heir of the arcs, read before the leave
		if err := w.ring.Leave(l.pid); err != nil {
			w.fail(fmt.Errorf("sim: departure of %s: %w", l.pid.Short(), err))
			return
		}
		w.noteRingLeave(l.pid, succ)
		w.bus.Unregister(l.pid)
		w.proto.UnregisterPeer(l.pid)
		// Fetch the slot only now: noteRingLeave can mark reputation dirty,
		// which may grow the slot arena and move earlier pointers.
		s := w.slotOf(l.pid)
		s.store = nil
		s.pr = nil
		s.departed = &departedPeer{peer: p, ident: ident}
		w.scheduleStakeExpiry(p)
		w.scheduleLeaseExpiry(p)
	}
	w.applyHandoff(records)
}

// scheduleStakeExpiry arms the offline-record TTL for a departing
// newcomer's stake record: if the peer has not been readmitted within
// StakeTimeout ticks, the record is resolved (if still pending) and
// dropped, so rejoin-free churn cannot accrete one stake record per
// departed newcomer. A rejoin bumps p.JoinedAt, which cancels the timer;
// a later departure arms a fresh one.
func (w *World) scheduleStakeExpiry(p *peer.Peer) {
	if w.cfg.StakeTimeout <= 0 || !w.proto.HasStake(p.ID) {
		return
	}
	joined := p.JoinedAt
	w.engine.AfterPayload(sim.Tick(w.cfg.StakeTimeout), "stake-expiry",
		sessionPayload{Peer: p.ID, Joined: joined}, w.stakeExpiryBody(p.ID, joined))
}

// stakeExpiryBody is the offline-record TTL event for the peer that
// departed with JoinedAt == joined. The peer is resolved by identifier:
// it may still sit in the departed set, be back in the community (a
// rejoin bumped JoinedAt, cancelling the timer), or be gone for good
// (forgotten after a no-rejoin draw) — in which case no object remains,
// JoinedAt cannot have moved, and the expiry proceeds.
func (w *World) stakeExpiryBody(pid id.ID, joined sim.Tick) func() {
	return func() {
		if w.err != nil || w.IsAdmitted(pid) {
			return
		}
		if p := w.peerByID(pid); p != nil && p.JoinedAt != joined {
			return
		}
		if state, ok := w.proto.ExpireStake(pid); ok {
			w.m.Churn.StakesExpired++
			w.record(trace.StakeExpired, pid, id.ID{}, state.String())
		}
	}
}

// scheduleLeaseExpiry arms the reputation-record lease for a departing
// peer: a peer offline longer than LeaseTTL ticks loses its lease — every
// replica of its record is evicted and its rejoin eligibility dropped,
// counted in Churn.LeaseEvictions. A rejoin bumps p.JoinedAt, which
// cancels the timer; a later departure arms a fresh one.
func (w *World) scheduleLeaseExpiry(p *peer.Peer) {
	if w.cfg.Churn.LeaseTTL <= 0 {
		return
	}
	joined := p.JoinedAt
	w.engine.AfterPayload(sim.Tick(w.cfg.Churn.LeaseTTL), "lease-expiry",
		sessionPayload{Peer: p.ID, Joined: joined}, w.leaseExpiryBody(p.ID, joined))
}

// leaseExpiryBody is the record-lease TTL event for the peer that
// departed with JoinedAt == joined. Resolution mirrors stakeExpiryBody:
// readmission or a JoinedAt bump cancels the eviction; a peer already
// forgotten (no-rejoin draw) has no records left to evict.
func (w *World) leaseExpiryBody(pid id.ID, joined sim.Tick) func() {
	return func() {
		if w.err != nil || w.IsAdmitted(pid) {
			return
		}
		p := w.peerByID(pid)
		if p == nil || p.JoinedAt != joined {
			return
		}
		w.evictLease(pid)
	}
}

// evictLease expires a departed peer's record lease: the counter, the
// trace record, and the same finalisation a permanent departure gets —
// rejoin eligibility and every replica of the record are dropped.
func (w *World) evictLease(pid id.ID) {
	s := w.slotOf(pid)
	if s == nil || s.departed == nil {
		return
	}
	w.m.Churn.LeaseEvictions++
	w.record(trace.LeaseEvicted, pid, id.ID{}, "")
	w.forgetDeparted(pid)
}

// peerByID resolves a peer object whether it is currently in the system
// or departed-but-rejoinable; nil when no object remains.
func (w *World) peerByID(pid id.ID) *peer.Peer {
	if p := w.livePeer(pid); p != nil {
		return p
	}
	if s := w.slotOf(pid); s != nil && s.departed != nil {
		return s.departed.peer
	}
	return nil
}

// removeAdmitted takes a peer out of the admitted community: membership
// slice and set (preserving admission order), topology, population
// counters and the sampling sum.
func (w *World) removeAdmitted(p *peer.Peer) {
	for i, q := range w.admittedPeers {
		if q == p {
			w.admittedPeers = append(w.admittedPeers[:i], w.admittedPeers[i+1:]...)
			break
		}
	}
	s := w.slotOf(p.ID)
	s.admitted = false
	w.topo.Remove(p.ID)
	if cs := w.cohortStats(p.Cohort); cs != nil {
		cs.InSystem--
	}
	if p.Class == peer.Cooperative {
		w.m.CoopInSystem--
		if s.hasRep {
			w.repSum -= s.rep
			s.rep = 0
			s.hasRep = false
		}
	} else {
		w.m.UncoopInSystem--
	}
}

// ---------------------------------------------------------------------------
// Score-manager state migration.

// captureHandoff snapshots, before any leaver goes, every record the
// leavers host and are still responsible for, from all surviving
// replicas. Graceful leavers participate as sources; crashing ones do
// not. Orphaned replicas (slots whose node lost responsibility under an
// earlier arc shift) are skipped — migrating them would resurrect stale
// data.
func (w *World) captureHandoff(batch []leaver) []handoffRecord {
	dying := make(map[id.ID]bool, len(batch)) // id → graceful
	for _, l := range batch {
		dying[l.pid] = l.graceful
	}
	var out []handoffRecord
	captured := make(map[id.ID]bool)
	for _, l := range batch {
		st, ok := w.storeAt(l.pid)
		if !ok {
			continue
		}
		for _, subject := range st.SubjectIDs() {
			if captured[subject] {
				continue
			}
			sms := w.ScoreManagers(subject) // placement before the leave
			if !id.Contains(sms, l.pid) {
				continue // orphaned replica: responsibility moved earlier
			}
			captured[subject] = true
			rec := handoffRecord{subject: subject}
			for i, m := range sms {
				if id.Contains(sms[:i], m) {
					continue // padded placement repeats managers
				}
				if graceful, isDying := dying[m]; isDying && !graceful {
					continue // a crashing replica cannot be pulled from
				}
				if src, ok := w.storeAt(m); ok {
					if snap, ok := src.Export(subject); ok {
						rec.snaps = append(rec.snaps, snap)
					}
				}
			}
			out = append(out, rec)
		}
	}
	return out
}

// applyHandoff completes the migration after the leavers are gone: each
// record's new owners that lack it adopt the majority-reconciled
// snapshot. A record with no surviving snapshot is a wipeout — all its
// replicas died in this event.
func (w *World) applyHandoff(records []handoffRecord) {
	if len(records) == 0 || w.ring.Size() == 0 {
		return
	}
	for _, rec := range records {
		snap, ok := churn.Reconcile(rec.snaps)
		if !ok {
			w.m.Churn.Wipeouts++
			w.ensureSlot(rec.subject).wiped = true
			w.record(trace.Wipeout, rec.subject, id.ID{}, "")
			w.markRepDirty(rec.subject)
			continue
		}
		e := w.smEntry(rec.subject) // placement after the leave
		for _, st := range e.stores {
			if !st.Known(rec.subject) {
				st.Adopt(rec.subject, snap)
				w.m.Churn.Migrated++
			}
		}
	}
}

// migrateAfterJoin pulls onto a freshly joined node the records it now
// owns. The joiner captures part of exactly its live successor's arcs,
// so the successor's store is the scan set; sources are the record's
// current replicas plus the successor itself. Records the successor no
// longer owns are dropped there — Chord key transfer, which also stops
// orphans from accreting under sustained churn. One case escapes the
// scan: the successor's *own* record (a peer never hosts itself), pulled
// separately by pullSelfSkipTakeover.
func (w *World) migrateAfterJoin(x id.ID) {
	succ, ok := w.ring.NextMember(x)
	if !ok || succ == x {
		return
	}
	if src, ok := w.storeAt(succ); ok {
		for _, subject := range src.SubjectIDs() {
			sms := w.ScoreManagers(subject) // placement including the joiner
			if !id.Contains(sms, x) {
				continue // the joiner took none of this record's replica keys
			}
			var snaps []rocq.Snapshot
			succIsManager := false
			for i, m := range sms {
				if m == x || id.Contains(sms[:i], m) {
					continue
				}
				if m == succ {
					succIsManager = true
				}
				if st, ok := w.storeAt(m); ok {
					if snap, ok := st.Export(subject); ok {
						snaps = append(snaps, snap)
					}
				}
			}
			if !succIsManager {
				// The successor lost every replica key of this record to
				// the joiner; it is still the freshest source for this
				// pull.
				if snap, ok := src.Export(subject); ok {
					snaps = append(snaps, snap)
				}
			}
			if snap, ok := churn.Reconcile(snaps); ok {
				dst := w.Store(x)
				if !dst.Known(subject) {
					dst.Adopt(subject, snap)
					w.m.Churn.Migrated++
				}
			}
			if !succIsManager {
				src.Forget(subject) // key transferred: the old owner lets go
			}
		}
	}
	w.pullSelfSkipTakeover(x, succ)
}

// pullSelfSkipTakeover handles the one record a join can capture that the
// successor's store never held: the successor's own. A replica key of a
// peer that lands on the peer itself is skipped clockwise (a peer must
// not manage its own reputation), so the record lives at the skip
// target, not the owner. When the joiner lands directly in front of a
// peer it takes over such self-owned keys and becomes a real manager;
// the pull sources are the record's current replicas — and the displaced
// skip target, which drops the record if it holds no other replica key
// (the same key-transfer rule as the ordinary scan).
func (w *World) pullSelfSkipTakeover(x, subject id.ID) {
	sms := w.ScoreManagers(subject)
	if !id.Contains(sms, x) {
		return // the joiner took over none of the subject's keys
	}
	dst := w.Store(x)
	if dst.Known(subject) {
		return
	}
	var snaps []rocq.Snapshot
	for i, m := range sms {
		if m == x || id.Contains(sms[:i], m) {
			continue
		}
		if st, ok := w.storeAt(m); ok {
			if snap, ok := st.Export(subject); ok {
				snaps = append(snaps, snap)
			}
		}
	}
	// The displaced skip target is the subject's next member; when it
	// dropped out of the manager set it still holds the freshest copy.
	skip, ok := w.ring.NextMember(subject)
	displaced := ok && skip != subject && skip != x && !id.Contains(sms, skip)
	if displaced {
		if st, ok := w.storeAt(skip); ok {
			if snap, ok := st.Export(subject); ok {
				snaps = append(snaps, snap)
			}
		}
	}
	if snap, ok := churn.Reconcile(snaps); ok {
		dst.Adopt(subject, snap)
		w.m.Churn.Migrated++
	}
	if displaced {
		if st, ok := w.storeAt(skip); ok {
			st.Forget(subject) // key transferred: the old skip target lets go
		}
	}
}
