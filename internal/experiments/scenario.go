package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/scenario"
)

// ScenarioReplica is one seeded execution of a declarative scenario.
type ScenarioReplica struct {
	Seed   uint64
	Result *scenario.Result
}

// RunScenarioReplicas executes opt.Runs replicas of a scenario spec in
// parallel on the shared replica runner — or, with opt.Fleet attached, on
// the fleet's worker processes, with byte-identical results. Replica i
// runs with the keyed split of the spec's own seed, so replica 0 is
// exactly the run the spec describes; phases, injections and faults
// replay in every replica. opt.Scale is ignored — a scenario states its
// real size.
func RunScenarioReplicas(spec *scenario.Spec, opt Options) ([]ScenarioReplica, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if opt.Fleet != nil {
		return runScenarioReplicasFleet(spec, opt)
	}
	out := make([]ScenarioReplica, opt.Runs)
	err := forEachReplica(opt, func(i int) error {
		sp := *spec // shallow copy: Base is a value, phases are read-only
		sp.Base.Seed = replicaSeed(spec.Base.Seed, i)
		r, err := sp.Start()
		if err != nil {
			return fmt.Errorf("scenario %q seed %d: %w", sp.Name, sp.Base.Seed, err)
		}
		r.World().SetTelemetry(opt.Telemetry)
		res, err := r.Finish()
		if err != nil {
			return fmt.Errorf("scenario %q seed %d: %w", sp.Name, sp.Base.Seed, err)
		}
		out[i] = ScenarioReplica{Seed: sp.Base.Seed, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runScenarioReplicasFleet is the distributed backend of
// RunScenarioReplicas: the validated spec is dispatched once per replica
// with that replica's keyed seed, and each worker's wire result is
// rebuilt into the scenario.Result the in-process path would have
// produced (the spec pointer is re-attached coordinator-side — workers
// never echo it back).
func runScenarioReplicasFleet(spec *scenario.Spec, opt Options) ([]ScenarioReplica, error) {
	data, err := spec.JSON()
	if err != nil {
		return nil, fmt.Errorf("experiments: encoding scenario %q for the fleet: %w", spec.Name, err)
	}
	jobs := make([]fleet.Job, opt.Runs)
	for i := range jobs {
		jobs[i] = fleet.Job{
			Kind: fleet.KindScenario,
			Spec: data,
			Seed: replicaSeed(spec.Base.Seed, i),
		}
	}
	results, err := runFleetBatch(opt, jobs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fleet batch for scenario %q: %w", spec.Name, err)
	}
	out := make([]ScenarioReplica, len(results))
	for i, r := range results {
		if r == nil || r.Scenario == nil {
			return nil, fmt.Errorf("experiments: fleet returned no payload for scenario replica %d", i)
		}
		if r.Scenario.FinalReputation == nil {
			// The wire drops empty maps; the in-process path always
			// allocates one, and the results must match byte for byte.
			r.Scenario.FinalReputation = map[string]float64{}
		}
		sp := *spec // the per-replica spec copy the in-process path builds
		sp.Base.Seed = jobs[i].Seed
		out[i] = ScenarioReplica{Seed: sp.Base.Seed, Result: &scenario.Result{
			Spec:            &sp,
			Metrics:         r.Scenario.Metrics,
			Proto:           r.Scenario.Proto,
			Outcomes:        r.Scenario.Outcomes,
			FinalReputation: r.Scenario.FinalReputation,
			Members:         r.Scenario.Members,
		}}
	}
	return out, nil
}

// ScenarioTable renders the cross-replica aggregate of a scenario: mean
// and 95% CI for the headline metrics, in the same text-table shape the
// paper experiments print.
func ScenarioTable(reps []ScenarioReplica) string {
	if len(reps) == 0 {
		return ""
	}
	spec := reps[0].Result.Spec
	t := &TextTable{
		Title: fmt.Sprintf("scenario %q — %d replicas, seeds %d…%d",
			spec.Name, len(reps), reps[0].Seed, reps[len(reps)-1].Seed),
		Header: []string{"metric", "mean", "ci95", "min", "max"},
	}
	row := func(name string, f func(ScenarioReplica) float64) {
		var acc metrics.Running
		for _, r := range reps {
			acc.Observe(f(r))
		}
		t.AddRow(name, acc.Mean(), acc.CI95(), acc.Min(), acc.Max())
	}
	row("members at end", func(r ScenarioReplica) float64 { return float64(r.Result.Members) })
	row("admitted cooperative", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.AdmittedCoop) })
	row("admitted uncooperative", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.AdmittedUncoop) })
	row("refused (all reasons)", func(r ScenarioReplica) float64 {
		m := &r.Result.Metrics
		return float64(m.RefusedSelectiveCoop + m.RefusedSelectiveUncoop + m.RefusedRepCoop + m.RefusedRepUncoop)
	})
	row("success rate", func(r ScenarioReplica) float64 { return r.Result.Metrics.SuccessRate() })
	row("audits satisfied", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.AuditsSatisfied) })
	row("audits forfeited", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.AuditsForfeited) })
	if spec.Base.StakeTimeout > 0 {
		// The stake-lifecycle rows exist only when the timeout clock is
		// armed, so outputs of every pre-existing scenario stay
		// byte-identical.
		row("stakes refunded", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.Churn.StakesRefunded) })
		row("stakes stranded", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.Churn.StakesStranded) })
		row("stake records expired", func(r ScenarioReplica) float64 { return float64(r.Result.Metrics.Churn.StakesExpired) })
		row("stake mass pending at end", func(r ScenarioReplica) float64 { return r.Result.Proto.PendingMass })
	}
	row("mean coop reputation at end", func(r ScenarioReplica) float64 {
		last, _ := r.Result.Metrics.CoopReputation.Last()
		return last.V
	})

	var b strings.Builder
	b.WriteString(t.String())
	labels := map[string]bool{}
	for _, o := range reps[0].Result.Outcomes {
		if o.Label != "" && !labels[o.Label] {
			labels[o.Label] = true
		}
	}
	if len(labels) > 0 {
		lt := &TextTable{
			Title:  "scripted actors — final reputation across replicas",
			Header: []string{"label", "mean", "ci95", "min", "max"},
		}
		for _, o := range reps[0].Result.Outcomes {
			if o.Label == "" {
				continue
			}
			var acc metrics.Running
			for _, r := range reps {
				acc.Observe(r.Result.FinalReputation[o.Label])
			}
			lt.AddRow(o.Label, acc.Mean(), acc.CI95(), acc.Min(), acc.Max())
		}
		b.WriteString("\n")
		b.WriteString(lt.String())
	}
	return b.String()
}
