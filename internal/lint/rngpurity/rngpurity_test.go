package rngpurity_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/rngpurity"
)

func TestRNGPurity(t *testing.T) {
	linttest.Run(t, "testdata", rngpurity.Analyzer,
		"sim.example/internal/world", // watched: findings expected
		"sim.example/internal/fleet", // exempt: same code, no findings
	)
}
