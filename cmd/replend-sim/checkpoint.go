package main

// Checkpoint plumbing for the CLI: -checkpoint-out captures a sealed
// state file at a chosen tick, -checkpoint-in resumes one to completion,
// and `replend-sim checkpoint info <file>` inspects one without running
// anything. A checkpoint is also a bug reproduction: a world that
// misbehaves at tick T can be shipped as the sealed state shortly before
// T plus the binary version.

import (
	"fmt"
	"io"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/world"
)

// writeWorldCheckpoint runs a fresh world to the given tick and seals
// its state to path.
func writeWorldCheckpoint(w *world.World, at int64, path string) error {
	if at >= w.Config().NumTrans {
		return fmt.Errorf("-checkpoint-at %d is not before the end of the run (%d ticks)", at, w.Config().NumTrans)
	}
	w.Start()
	if err := w.RunFor(sim.Tick(at)); err != nil {
		return err
	}
	snap, err := w.Snapshot()
	if err != nil {
		return err
	}
	data, err := snap.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	logf("world state at tick %d sealed to %s (%d bytes)", at, path, len(data))
	return nil
}

// writeScenarioCheckpoint advances a scenario run to the given tick
// (executing any phases scheduled at or before it) and seals the run
// state to path.
func writeScenarioCheckpoint(spec *scenario.Spec, at int64, path string) error {
	if at >= spec.Base.NumTrans {
		return fmt.Errorf("-checkpoint-at %d is not before the end of the run (%d ticks)", at, spec.Base.NumTrans)
	}
	r, err := spec.Start()
	if err != nil {
		return err
	}
	if err := r.RunToTick(sim.Tick(at)); err != nil {
		return err
	}
	st, err := r.Snapshot()
	if err != nil {
		return err
	}
	data, err := st.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	logf("scenario %q at tick %d sealed to %s (%d bytes)", spec.Name, r.World().Engine().Now(), path, len(data))
	return nil
}

// resumeCheckpoint restores a sealed state of either kind and runs it to
// completion, printing the same summary the uninterrupted run prints.
func resumeCheckpoint(path, csvPath string, ob obs, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	kind, body, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	switch kind {
	case checkpoint.KindScenario:
		st, err := scenario.DecodeRunStateBody(body)
		if err != nil {
			return err
		}
		r, err := scenario.Resume(st)
		if err != nil {
			return err
		}
		logf("resuming scenario %q from tick %d", r.Spec().Name, r.World().Engine().Now())
		finishObs, err := ob.attach(r.World(), "scenario "+r.Spec().Name)
		if err != nil {
			return err
		}
		res, err := r.Finish()
		if err != nil {
			return err
		}
		if err := finishObs(); err != nil {
			return err
		}
		fmt.Fprint(out, res.Summary())
		if csvPath != "" {
			csv, err := res.CSV()
			if err != nil {
				return err
			}
			if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
				return err
			}
			logf("series written to %s", csvPath)
		}
		return nil
	case checkpoint.KindWorld:
		snap, err := world.DecodeSnapshotBody(body)
		if err != nil {
			return err
		}
		w, err := world.Restore(snap)
		if err != nil {
			return err
		}
		logf("resuming world from tick %d", w.Engine().Now())
		finishObs, err := ob.attach(w, "replend-sim")
		if err != nil {
			return err
		}
		if end := sim.Tick(w.Config().NumTrans); w.Engine().Now() < end {
			if err := w.RunFor(end - w.Engine().Now()); err != nil {
				return err
			}
		}
		w.Finish()
		if err := finishObs(); err != nil {
			return err
		}
		printSummary(w)
		if csvPath != "" {
			m := w.Metrics()
			csv := metrics.CSV(m.CoopCount, m.UncoopCount, m.CoopReputation)
			if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
				return err
			}
			logf("series written to %s", csvPath)
		}
		return nil
	default:
		return fmt.Errorf("checkpoint %s has unknown kind %q", path, kind)
	}
}

// checkpointCmd implements `replend-sim checkpoint info <file>`.
func checkpointCmd(args []string, out io.Writer) error {
	if len(args) != 2 || args[0] != "info" {
		return fmt.Errorf("usage: replend-sim checkpoint info <file>")
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	kind, body, err := checkpoint.Open(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "kind:     %s\n", kind)
	fmt.Fprintf(out, "size:     %d bytes\n", len(data))
	switch kind {
	case checkpoint.KindScenario:
		st, err := scenario.DecodeRunStateBody(body)
		if err != nil {
			return err
		}
		spec, err := scenario.Load(st.Spec)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "version:  %d\n", st.Version)
		fmt.Fprintf(out, "scenario: %s\n", spec.Name)
		fmt.Fprintf(out, "phases:   %d of %d executed\n", st.Next, len(spec.Phases))
		printWorldInfo(out, st.World)
	case checkpoint.KindWorld:
		snap, err := world.DecodeSnapshotBody(body)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "version:  %d\n", snap.Version)
		printWorldInfo(out, snap)
	}
	return nil
}

// printWorldInfo prints the embedded world's headline numbers.
func printWorldInfo(out io.Writer, s *world.Snapshot) {
	fmt.Fprintf(out, "tick:     %d of %d\n", s.Now, s.Config.NumTrans)
	fmt.Fprintf(out, "seed:     %d\n", s.Config.Seed)
	fmt.Fprintf(out, "peers:    %d present (%d admitted, %d departed)\n", len(s.Peers), len(s.Admitted), len(s.Departed))
	fmt.Fprintf(out, "events:   %d pending\n", len(s.Events))
}
