// Package overlay implements the structured overlay the paper assumes:
// "We assume the existence of a structured overlay that uses distributed
// hash tables for routing and for selecting score managers that keep track
// of all feedback pertaining to a peer."
//
// The overlay is a Chord-style ring over the 160-bit identifier space of
// package id. Each node keeps a predecessor pointer, a successor list and a
// 160-entry finger table; lookups route greedily through fingers and are
// guaranteed to terminate via successor pointers. Key k is owned by
// successor(k), the first node clockwise from k.
//
// Score managers for a peer p are the owners of Hash(p ‖ r) for replica
// indices r = 0..numSM-1 — so, exactly as the paper notes, "the score
// managers assigned to a peer change over time" as nodes join, and using
// multiple score managers gives redundancy against that churn.
package overlay

import (
	"errors"
	"fmt"

	"repro/internal/arena"
	"repro/internal/id"
)

// SuccessorListLen is the number of successors each node tracks. Chord's
// robustness argument wants Ω(log n); 8 covers the simulated population
// sizes (≤ ~10k nodes) comfortably.
const SuccessorListLen = 8

// Node is one overlay member's routing state. Neighbour pointers (next,
// prev) are maintained eagerly on every join and leave — the incremental
// analogue of Chord stabilisation fixing adjacent successors first — while
// the finger table is repaired lazily the first time it is consulted after
// a membership change. Joins and leaves are therefore O(log n), essential
// because the simulated communities grow by thousands of nodes.
type Node struct {
	ID id.ID

	next, prev *Node // live ring neighbours, maintained on join/leave

	// Membership-index (treap) threading; see treap.go.
	tLeft, tRight *Node
	keyHi         uint64 // first 8 bytes of ID: fast-path comparand
	prio          uint64 // deterministic heap priority

	pred  id.ID
	succs []id.ID // successor list, nearest first
	// fingers[k] owns ID + 2^k. Allocated lazily on first repair: a full
	// table is id.Bits identifiers (~3 KB), which only nodes that actually
	// route ever need — at million-member scale the passive majority
	// keeping inline tables would dominate the whole world's memory.
	fingers    []id.ID
	repairedAt int64 // membership epoch this state was built against
}

// Pred returns the node's predecessor pointer.
func (n *Node) Pred() id.ID { return n.pred }

// Succ returns the node's immediate successor.
func (n *Node) Succ() id.ID {
	if len(n.succs) == 0 {
		return n.ID
	}
	return n.succs[0]
}

// Successors returns a copy of the node's successor list.
func (n *Node) Successors() []id.ID {
	return append([]id.ID(nil), n.succs...)
}

// Finger returns entry k of the finger table; the ring rebuilds stale
// tables before exposing them.
func (n *Node) Finger(k int) id.ID {
	if n.fingers == nil {
		return id.ID{}
	}
	return n.fingers[k]
}

// Ring is the overlay membership and routing oracle. The simulation is
// single-threaded, so Ring performs maintenance eagerly and
// deterministically instead of running Chord's periodic stabilisation
// protocol; the routing state it maintains per node is exactly what
// stabilisation would converge to.
//
// Membership lives in two structures kept in lockstep: a treap keyed by
// identifier (O(log n) join/leave/ceiling, deterministic shape) and a
// circular doubly-linked list threading the member nodes in ring order
// (O(1) neighbour access for successor-list maintenance).
type Ring struct {
	nodes map[id.ID]*Node
	slab  arena.Slab[Node] // node records; churn recycles slots
	root  *Node            // ordered membership index (treap threaded through Nodes)
	size  int
	epoch int64 // bumped on every membership change

	// replicaKeys memoises each member's score-manager replica keys
	// Hash(peer ‖ r): they are a pure function of the identifier, but
	// placement consults them on every recompute and the SHA-1 otherwise
	// dominates. Entries are dropped when the member leaves.
	replicaKeys map[id.ID][]id.ID

	lookups  int64
	hopTotal int64
}

// Errors returned by Ring operations.
var (
	ErrEmpty     = errors.New("overlay: ring has no members")
	ErrDuplicate = errors.New("overlay: node already in ring")
	ErrNotMember = errors.New("overlay: node not in ring")
)

// NewRing returns an empty overlay.
func NewRing() *Ring {
	return &Ring{
		nodes:       make(map[id.ID]*Node),
		replicaKeys: make(map[id.ID][]id.ID),
	}
}

// Size returns the number of member nodes.
func (r *Ring) Size() int { return r.size }

// Epoch returns the membership epoch, which advances on every join or
// leave. Callers may cache placement decisions keyed by it.
func (r *Ring) Epoch() int64 { return r.epoch }

// Members returns the member identifiers in ascending order (copy).
func (r *Ring) Members() []id.ID {
	if r.size == 0 {
		return nil
	}
	out := make([]id.ID, 0, r.size)
	first := treapMin(r.root)
	for n, i := first, 0; i < r.size; n, i = n.next, i+1 {
		out = append(out, n.ID)
	}
	return out
}

// Contains reports membership.
func (r *Ring) Contains(n id.ID) bool {
	_, ok := r.nodes[n]
	return ok
}

// Node returns the routing state for a member, repaired against the
// current membership, or an error.
func (r *Ring) Node(n id.ID) (*Node, error) {
	node, ok := r.nodes[n]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotMember, n.Short())
	}
	r.repairNode(node)
	return node, nil
}

// Join adds a node to the ring: O(log n) index insert plus an O(1) splice
// into the neighbour list. Finger tables of existing nodes are repaired
// lazily the next time they are consulted.
func (r *Ring) Join(n id.ID) error {
	if _, ok := r.nodes[n]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, n.Short())
	}
	node := r.slab.Alloc()
	node.ID, node.keyHi, node.prio = n, keyHi(n), treapPriority(n)
	if r.size == 0 {
		node.next, node.prev = node, node
	} else {
		// The first member clockwise from n takes n as its new
		// predecessor; splice n in front of it.
		succ := treapCeiling(r.root, n)
		if succ == nil {
			succ = treapMin(r.root)
		}
		node.prev = succ.prev
		node.next = succ
		succ.prev.next = node
		succ.prev = node
	}
	r.root = treapInsert(r.root, node)
	r.size++
	r.epoch++
	node.repairedAt = r.epoch - 1
	r.nodes[n] = node
	return nil
}

// Leave removes a node (graceful departure or crash — routing-wise they are
// the same once neighbours repair).
func (r *Ring) Leave(n id.ID) error {
	node, ok := r.nodes[n]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotMember, n.Short())
	}
	node.prev.next = node.next
	node.next.prev = node.prev
	r.root = treapRemove(r.root, n)
	delete(r.nodes, n)
	delete(r.replicaKeys, n)
	r.slab.Free(node)
	r.size--
	r.epoch++
	return nil
}

// NextMember returns the member immediately clockwise from n (n's live
// successor), and false if n is not a member. On a single-member ring it
// returns n itself.
func (r *Ring) NextMember(n id.ID) (id.ID, bool) {
	node, ok := r.nodes[n]
	if !ok {
		return id.ID{}, false
	}
	return node.next.ID, true
}

// repairNode refreshes one node's predecessor, successor list and finger
// table against current membership, if stale. Neighbour pointers are
// already live, so the predecessor and successor list are read off the
// ring in O(SuccessorListLen). Fingers are repaired by walking the
// targets n+2^k in increasing clockwise distance: the owner changes only
// when a target crosses the previous owner, so the index is consulted
// O(distinct fingers) = O(log n) times instead of once per bit — the
// membership walk a real Chord node performs along its neighbour list,
// without the 160 ceiling queries that made lookups regress.
func (r *Ring) repairNode(node *Node) {
	if node.repairedAt == r.epoch {
		return
	}
	node.pred = node.prev.ID
	node.succs = node.succs[:0]
	if node.fingers == nil {
		node.fingers = make([]id.ID, id.Bits)
	}
	if r.size == 1 {
		node.succs = append(node.succs, node.ID)
		for k := 0; k < id.Bits; k++ {
			node.fingers[k] = node.ID
		}
		node.repairedAt = r.epoch
		return
	}
	for s, j := node.next, 0; j < SuccessorListLen && s != node; s, j = s.next, j+1 {
		node.succs = append(node.succs, s.ID)
	}
	// fingers[0] targets node+1; identifiers are integers on the ring, so
	// the open arc (node, node+1) holds no member and the owner is the
	// live successor.
	target := node.ID.AddPow2(0)
	owner := node.next.ID
	node.fingers[0] = owner
	for k := 1; k < id.Bits; k++ {
		prev := target
		target = node.ID.AddPow2(k)
		// The previous owner keeps answering while the target stays inside
		// (prev, owner]: prev was in the owner's arc, so everything up to
		// the owner still is. Past it, ask the membership index once.
		if owner == prev || !target.BetweenRightIncl(prev, owner) {
			owner = r.successorID(target)
		}
		node.fingers[k] = owner
	}
	node.repairedAt = r.epoch
}

// successorID returns the owner of key: the first member clockwise from it.
func (r *Ring) successorID(key id.ID) id.ID {
	if r.size == 0 {
		//replend:allow nopanic callers query ownership only on non-empty rings (worlds start with founders); an empty-ring query is a caller bug
		panic("overlay: successorID on empty ring")
	}
	owner := treapCeiling(r.root, key)
	if owner == nil {
		owner = treapMin(r.root)
	}
	return owner.ID
}

// Successor returns the node owning key, per the ring oracle (no routing).
func (r *Ring) Successor(key id.ID) (id.ID, error) {
	if r.size == 0 {
		return id.ID{}, ErrEmpty
	}
	return r.successorID(key), nil
}

// Lookup routes from the given start member to the owner of key the way a
// real Chord node would: greedy closest-preceding-finger steps, with the
// successor pointer as the final (and fallback) hop. It returns the owner
// and the number of hops taken, and records them in the ring's routing
// statistics.
func (r *Ring) Lookup(from, key id.ID) (owner id.ID, hops int, err error) {
	if r.size == 0 {
		return id.ID{}, 0, ErrEmpty
	}
	cur, ok := r.nodes[from]
	if !ok {
		return id.ID{}, 0, fmt.Errorf("%w: lookup from %s", ErrNotMember, from.Short())
	}
	for {
		r.repairNode(cur)
		// Key owned by cur's immediate successor?
		succ := cur.Succ()
		if key.BetweenRightIncl(cur.ID, succ) {
			r.lookups++
			r.hopTotal += int64(hops + 1)
			return succ, hops + 1, nil
		}
		next := r.closestPreceding(cur, key)
		if next == cur.ID {
			// Fingers degenerate (tiny ring): fall through to successor.
			next = succ
		}
		cur = r.nodes[next]
		hops++
		if hops > r.size+id.Bits {
			return id.ID{}, hops, fmt.Errorf("overlay: lookup for %s did not converge", key.Short())
		}
	}
}

// closestPreceding returns the finger of n most closely preceding key,
// Chord's routing step.
func (n *Node) closestPrecedingFinger(key id.ID) id.ID {
	if n.fingers == nil {
		return n.ID
	}
	for k := id.Bits - 1; k >= 0; k-- {
		f := n.fingers[k]
		if !f.IsZero() && f.Between(n.ID, key) {
			return f
		}
	}
	return n.ID
}

func (r *Ring) closestPreceding(n *Node, key id.ID) id.ID {
	f := n.closestPrecedingFinger(key)
	// A finger may point at a departed node if tables were rebuilt before a
	// later departure; validate against membership and fall back along the
	// successor list like real Chord does.
	if _, ok := r.nodes[f]; ok {
		return f
	}
	for _, s := range n.succs {
		if _, ok := r.nodes[s]; ok && s.Between(n.ID, key) {
			return s
		}
	}
	return n.ID
}

// ScoreManagers returns the numSM owners of the peer's replica keys —
// the nodes that hold feedback about it. The peer itself is excluded when
// the ring has enough other members (a peer must not manage its own
// reputation); the replica index keeps advancing until numSM distinct
// managers are found.
func (r *Ring) ScoreManagers(peer id.ID, numSM int) ([]id.ID, error) {
	return r.ScoreManagersTracked(peer, numSM, nil)
}

// ScoreManagersTracked is ScoreManagers with an observation hook: track
// (when non-nil) receives every (key, owner) ownership decision the
// placement consulted — each replica key with its owning member, plus a
// (peer, next-member) pair whenever self-ownership forced a clockwise
// skip. The result is a pure function of those decisions, so a caller
// caching it stays exact by invalidating whenever a membership change can
// alter any reported arc (key, owner]: this is how the simulation world
// turns whole-ring epoch invalidation into per-peer incremental eviction.
func (r *Ring) ScoreManagersTracked(peer id.ID, numSM int, track func(key, owner id.ID)) ([]id.ID, error) {
	if numSM <= 0 {
		return nil, fmt.Errorf("overlay: numSM must be positive, got %d", numSM)
	}
	if r.size == 0 {
		return nil, ErrEmpty
	}
	managers := make([]id.ID, 0, numSM)
	othersAvailable := r.size > 1 || !r.Contains(peer)
	maxReplica := numSM * 8 // generous: hash collisions across replicas are rare
	for rep := 0; rep < maxReplica && len(managers) < numSM; rep++ {
		key := r.replicaKey(peer, rep)
		owner := r.successorID(key)
		if track != nil {
			track(key, owner)
		}
		if owner == peer {
			if !othersAvailable {
				// Single-member ring: the peer must self-manage.
				if !id.Contains(managers, owner) {
					managers = append(managers, owner)
				}
				continue
			}
			// A peer must not manage its own reputation: walk clockwise to
			// the next member, like replica placement past a responsible
			// node in a real DHT.
			owner = r.nodes[peer].next.ID
			if track != nil {
				track(peer, owner)
			}
		}
		if !id.Contains(managers, owner) {
			managers = append(managers, owner)
		}
	}
	// A ring smaller than numSM cannot supply numSM distinct managers;
	// cycle over the distinct ones found so callers always get numSM slots.
	distinct := len(managers)
	for i := 0; len(managers) < numSM; i++ {
		managers = append(managers, managers[i%distinct])
	}
	return managers, nil
}

// replicaKey returns replica key rep for the peer, memoised for members:
// the keys are a pure function of the identifier, so each is hashed at
// most once per membership stint (the cache is dropped when the member
// leaves). Non-member queries compute without caching — only Leave evicts,
// so memoising them would leak for the ring's lifetime.
func (r *Ring) replicaKey(peer id.ID, rep int) id.ID {
	keys := r.replicaKeys[peer]
	if rep < len(keys) {
		return keys[rep]
	}
	if !r.Contains(peer) {
		return peer.Replica(rep)
	}
	for len(keys) <= rep {
		keys = append(keys, peer.Replica(len(keys)))
	}
	r.replicaKeys[peer] = keys
	return keys[rep]
}

// RoutingStats reports the number of lookups performed and the mean hop
// count, for the DHT-behaviour tests and reports.
func (r *Ring) RoutingStats() (lookups int64, meanHops float64) {
	if r.lookups == 0 {
		return 0, 0
	}
	return r.lookups, float64(r.hopTotal) / float64(r.lookups)
}
