// Package peer models the behaviour classes of the paper's simulation:
// cooperative peers versus uncooperative freeriders, and naive versus
// selective introducers. The attack model is exactly the paper's §2:
// uncooperative peers (1) freeride/furnish bad service, and (2) lie in
// feedback — "an uncooperative peer would always send a value of 0 for its
// partners in order to reduce the impact on its own reputation".
package peer

import (
	"fmt"

	"repro/internal/id"
	"repro/internal/rng"
	"repro/internal/rocq"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Class is a peer's behavioural class.
type Class int

// The behaviour classes.
const (
	Cooperative Class = iota
	Uncooperative
)

// String renders the class name.
func (c Class) String() string {
	switch c {
	case Cooperative:
		return "cooperative"
	case Uncooperative:
		return "uncooperative"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Style is a peer's introduction style.
type Style int

// The introducer styles. "Naive introducers are indiscriminate and will
// give an introduction to any new entrant that asks for one. Selective
// introducers … only give introductions to peers that they believe will
// behave in a cooperative fashion", erring on a fraction errSel of the
// dishonest candidates.
const (
	Naive Style = iota
	Selective
)

// String renders the style name.
func (s Style) String() string {
	switch s {
	case Naive:
		return "naive"
	case Selective:
		return "selective"
	}
	return fmt.Sprintf("Style(%d)", int(s))
}

// Peer is one simulated community member.
type Peer struct {
	ID    id.ID
	Class Class
	Style Style

	// Opinions is the peer's first-hand experience book (ROCQ reporter
	// side).
	Opinions *rocq.OpinionBook

	// JoinedAt is the tick at which the peer was admitted to the system.
	JoinedAt sim.Tick

	// Completed counts completed transactions the peer took part in
	// (either side); the lending audit fires after AuditTrans of them.
	Completed int

	// Audited marks that the admission audit has already run.
	Audited bool

	// Introducer is the peer that introduced this one (zero if the peer
	// is a founder or was admitted without introductions).
	Introducer id.ID

	// Flagged marks a peer caught cheating the admission protocol (for
	// example by obtaining two concurrent introductions).
	Flagged bool

	// DefectAt, when positive, makes a cooperative peer turn traitor at
	// that tick: from then on it freerides and lies like an uncooperative
	// peer. This models the reputation-milking attacker of the extension
	// experiments (build standing honestly, pass the admission audit,
	// then defect). Zero means the peer never defects.
	DefectAt sim.Tick

	// Cohort names the behavioural cohort the workload layer assigned at
	// arrival; empty for founders and for runs without a workload block.
	Cohort string

	// PlanOrdinal keys the peer's slot in the workload layer's keyed plan
	// stream (the arrival's peer-id sequence number), and PlanSeq counts
	// the plan draws taken from it so far — together they make every
	// session-plan draw a pure function of (run seed, ordinal, seq) that
	// replay and checkpoint-resume re-derive exactly.
	PlanOrdinal int64
	PlanSeq     int64

	// Plan is the current visit's workload session plan (nil for peers
	// the workload layer does not govern).
	Plan *workload.Plan
}

// New returns a peer of the given class and style.
func New(pid id.ID, class Class, style Style, params rocq.Params) *Peer {
	return &Peer{
		ID:       pid,
		Class:    class,
		Style:    style,
		Opinions: rocq.NewOpinionBook(params),
	}
}

// WillServe decides whether the peer responds to a request from a peer
// with the given reputation: "a correctly functioning peer will respond to
// a peer requesting the service with a probability that is equal to the
// requesting peer's reputation". Both classes follow the protocol here —
// an uncooperative peer's damage is bad service and lying feedback, not
// denial of service.
func (p *Peer) WillServe(requesterRep float64, src *rng.Source) bool {
	return src.Bernoulli(requesterRep)
}

// Defected reports whether a scheduled defection has occurred by now.
func (p *Peer) Defected(now sim.Tick) bool {
	return p.DefectAt > 0 && now >= p.DefectAt
}

// BehavesWell reports the objective quality of the peer's conduct inside a
// transaction: cooperative peers provide good service and reciprocate;
// uncooperative peers freeride or furnish corrupted content.
func (p *Peer) BehavesWell() bool {
	return p.Class == Cooperative
}

// BehavesWellAt is BehavesWell with traitor semantics: a defected peer
// behaves like an uncooperative one from its defection tick onward.
func (p *Peer) BehavesWellAt(now sim.Tick) bool {
	return p.Class == Cooperative && !p.Defected(now)
}

// Rate returns the feedback value the peer sends about a partner whose
// conduct was partnerBehavedWell. Cooperative peers report honestly (1 =
// satisfied, 0 = not); uncooperative peers always report 0.
func (p *Peer) Rate(partnerBehavedWell bool) float64 {
	if p.Class == Uncooperative {
		return 0
	}
	if partnerBehavedWell {
		return 1
	}
	return 0
}

// RateAt is Rate with traitor semantics: a defected peer lies like an
// uncooperative one.
func (p *Peer) RateAt(now sim.Tick, partnerBehavedWell bool) float64 {
	if p.Defected(now) {
		return 0
	}
	return p.Rate(partnerBehavedWell)
}

// WillIntroduce decides whether this peer, asked for an introduction by a
// newcomer of the given class, grants it — before any reputation-floor
// check, which the lending protocol enforces separately.
//
// Naive introducers grant every request. Selective introducers grant every
// cooperative request and, by mistake, a fraction errSel of uncooperative
// ones. The paper's model gives selective introducers this (imperfect)
// discrimination ability directly; in deployment it stands for out-of-band
// knowledge about the newcomer ("it is much more likely that new entrants
// be recommended by peers that are already known to them").
func (p *Peer) WillIntroduce(newcomer Class, errSel float64, src *rng.Source) bool {
	if p.Style == Naive {
		return true
	}
	if newcomer == Cooperative {
		return true
	}
	return src.Bernoulli(errSel)
}

// AssignArrivalClass draws the class of an arriving peer: uncooperative
// with probability fracUncoop.
func AssignArrivalClass(fracUncoop float64, src *rng.Source) Class {
	if src.Bernoulli(fracUncoop) {
		return Uncooperative
	}
	return Cooperative
}

// AssignStyle draws the introduction style for a peer of the given class:
// every uncooperative peer is naive; a cooperative peer is naive with
// probability fracNaive (paper §4: "we assume that all new peers that are
// uncooperative are naive introducers. Among the cooperative new peers,
// fracNaive of these are naive introducers and the rest are selective").
func AssignStyle(class Class, fracNaive float64, src *rng.Source) Style {
	if class == Uncooperative {
		return Naive
	}
	if src.Bernoulli(fracNaive) {
		return Naive
	}
	return Selective
}
