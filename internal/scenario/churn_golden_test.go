package scenario

import (
	"testing"

	"repro/internal/id"
	"repro/internal/peer"
	"repro/internal/sim"
	"repro/internal/world"
)

// The churn built-ins are pinned the same way the original five are: an
// inline replication through the direct World API must reproduce the
// registry-built scenario run metric for metric. Because the two sides
// are independently constructed worlds under the same seed, each test
// also pins byte-stable determinism of the churn machinery (departure
// clocks, migration order, rejoin scheduling).

// TestGoldenChurnSteady pins "churn-steady": the half-paper-scale
// steady-churn workload, replicated as a plain configured run.
func TestGoldenChurnSteady(t *testing.T) {
	spec, err := Get("churn-steady")
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.Departures == 0 || m.Churn.Crashes == 0 || m.Churn.Rejoins == 0 {
		t.Fatalf("steady churn produced no lifecycle activity: %+v", m.Churn)
	}
	if m.Churn.Migrated == 0 {
		t.Fatal("steady churn migrated no records; the handoff protocol is dead")
	}
	want := worldDigest(w, map[string]id.ID{})
	compareDigests(t, want, runBuiltin(t, "churn-steady"))
}

// TestGoldenFlashCrowd pins "flash-crowd": the delta-driven flood and
// exodus, replicated with direct ApplyDelta calls at the phase ticks.
func TestGoldenFlashCrowd(t *testing.T) {
	spec, err := Get("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	now := int64(0)
	for i := range spec.Phases {
		ph := &spec.Phases[i]
		if err := w.RunFor(sim.Tick(ph.At - now)); err != nil {
			t.Fatal(err)
		}
		now = ph.At
		if err := w.ApplyDelta(*ph.Set); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.RunFor(sim.Tick(spec.Base.NumTrans - now)); err != nil {
		t.Fatal(err)
	}
	w.Finish()
	m := w.Metrics()
	if m.Churn.Departures+m.Churn.Crashes < 100 {
		t.Fatalf("exodus departed only %d peers", m.Churn.Departures+m.Churn.Crashes)
	}
	want := worldDigest(w, map[string]id.ID{})
	compareDigests(t, want, runBuiltin(t, "flash-crowd"))
}

// TestGoldenSMWipeout pins "sm-wipeout" and the two headline churn
// invariants: a full-replica crash is counted as a wipeout, and a
// departed peer rejoins with exactly the reputation its score managers
// held for it at departure.
func TestGoldenSMWipeout(t *testing.T) {
	spec, err := Get("sm-wipeout")
	if err != nil {
		t.Fatal(err)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	w.Start()
	naive := firstWithStyle(t, w, peer.Naive)
	victim := mustInject(t, w, peer.Cooperative, peer.Selective, naive)
	if err := w.RunFor(10_000); err != nil {
		t.Fatal(err)
	}
	// Crash the victim's entire (distinct, admitted) score-manager set in
	// one membership event.
	var managers []id.ID
	for _, m := range w.ScoreManagers(victim) {
		if !id.Contains(managers, m) && w.IsAdmitted(m) {
			managers = append(managers, m)
		}
	}
	if err := w.DepartBatch(managers, false); err != nil {
		t.Fatal(err)
	}
	if got := w.Metrics().Churn.Wipeouts; got < 1 {
		t.Fatalf("full-replica crash recorded %d wipeouts, want >= 1", got)
	}
	if !w.WipedOut(victim) {
		t.Fatal("victim's record survived a crash of its entire manager set")
	}
	if err := w.RunFor(8_000); err != nil {
		t.Fatal(err)
	}
	repBefore := w.Reputation(victim)
	if repBefore <= 0 {
		t.Fatal("victim rebuilt no reputation before departing")
	}
	if err := w.Depart(victim); err != nil {
		t.Fatal(err)
	}
	if err := w.RunFor(6_000); err != nil {
		t.Fatal(err)
	}
	if err := w.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	if got := w.Reputation(victim); got != repBefore {
		t.Fatalf("rejoined reputation %v, want the pre-departure %v restored", got, repBefore)
	}
	if err := w.RunFor(6_000); err != nil {
		t.Fatal(err)
	}
	w.Finish()
	want := worldDigest(w, map[string]id.ID{"victim": victim})
	compareDigests(t, want, runBuiltin(t, "sm-wipeout"))
}

// TestGoldenStakeChurn pins "stake-churn": the admission-economics
// workload with the stake-lifecycle clock armed, replicated as a plain
// configured run. Beyond byte-stability it checks the economics the
// scenario exists for: the timeout actually refunds orphaned stakes,
// strands some (counted, never silent), expires offline records under
// the TTL, and the mass ledger conserves — staked = settled + refunded +
// stranded + pending.
func TestGoldenStakeChurn(t *testing.T) {
	spec, err := Get("stake-churn")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Base.StakeTimeout <= 0 {
		t.Fatalf("stake-churn has no stake timeout: %+v", spec.Base.StakeTimeout)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.StakesRefunded == 0 || m.Churn.StakesStranded == 0 || m.Churn.StakesExpired == 0 {
		t.Fatalf("stake lifecycle idle: %+v", m.Churn)
	}
	ps := w.Protocol().Stats()
	if diff := ps.StakedMass - (ps.SettledMass + ps.RefundedMass + ps.StrandedMass + ps.PendingMass); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("stake mass not conserved: staked %v, settled %v + refunded %v + stranded %v + pending %v (off by %v)",
			ps.StakedMass, ps.SettledMass, ps.RefundedMass, ps.StrandedMass, ps.PendingMass, diff)
	}
	if ps.AuditsSatisfied+ps.AuditsForfeited == 0 {
		t.Fatal("no audits settled — the timeout is starving the audit path")
	}
	want := worldDigest(w, map[string]id.ID{})
	compareDigests(t, want, runBuiltin(t, "stake-churn"))
}

// TestGoldenChurnHeavytail pins "churn-heavytail": Pareto session clocks
// at the calibrated mean, replicated as a plain configured run. Beyond
// byte-stability, it checks the calibration's signature: sessions, not a
// global rate, drive the lifecycle (departures happen, state migrates,
// and the long Pareto tail keeps the community from collapsing the way a
// rate-matched exponential flood would).
func TestGoldenChurnHeavytail(t *testing.T) {
	spec, err := Get("churn-heavytail")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Base.Churn.SessionDist != "pareto" || spec.Base.Churn.SessionMean <= 0 {
		t.Fatalf("churn-heavytail is not a Pareto session workload: %+v", spec.Base.Churn)
	}
	w, err := world.New(spec.Base)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	m := w.Metrics()
	if m.Churn.Departures+m.Churn.Crashes == 0 {
		t.Fatal("heavy-tailed sessions produced no departures")
	}
	if m.Churn.Migrated == 0 {
		t.Fatal("heavy-tailed churn migrated no records; the handoff protocol is dead")
	}
	if pop := m.CoopInSystem + m.UncoopInSystem; pop < int64(spec.Base.NumInit)/2 {
		t.Fatalf("population collapsed to %d under the calibrated tail; the long-session anchor is gone", pop)
	}
	want := worldDigest(w, map[string]id.ID{})
	compareDigests(t, want, runBuiltin(t, "churn-heavytail"))
}
