// Package fleet stands in for the orchestration edge, structurally
// exempt from the nopanic contract: a coordinator crash is loud and
// local, unlike a panic inside a fleet worker's simulation replica.
package fleet

func mustPort(p int) int {
	if p <= 0 {
		panic("bad port")
	}
	return p
}
