package transport

import (
	"testing"

	"repro/internal/id"
	"repro/internal/rng"
)

func TestSignerImplementsIdentity(t *testing.T) {
	s, err := NewSigner(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var ident Identity = s
	order := LendOrder{Introducer: id.FromUint64(1), NewPeer: id.FromUint64(2), Amount: 0.1, Nonce: 7}
	env := ident.Sign(order)
	if !ident.PublicEquals(env.Pub) {
		t.Fatal("signer does not recognise its own key")
	}
	if !ident.VerifyEnvelope(env) {
		t.Fatal("signer rejects its own envelope")
	}
	env.Order.Amount = 0.9
	if ident.VerifyEnvelope(env) {
		t.Fatal("tampered order verified")
	}
}

func TestSignerTombstone(t *testing.T) {
	s, err := NewSigner(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if s.Tombstone() != nil {
		t.Fatal("a signer that never signed must leave no tombstone")
	}
	order := LendOrder{Introducer: id.FromUint64(3), Nonce: 1}
	env := s.Sign(order)
	tomb := s.Tombstone()
	if tomb == nil {
		t.Fatal("a signer that signed must leave a tombstone")
	}
	if !tomb.PublicEquals(env.Pub) || !tomb.VerifyEnvelope(env) {
		t.Fatal("tombstone cannot verify the departed signer's envelope")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("tombstone Sign must panic")
		}
	}()
	tomb.Sign(order)
}

func TestNullIdentity(t *testing.T) {
	owner := id.HashString("null-peer")
	n := NewNullIdentity(owner)
	order := LendOrder{Introducer: owner, NewPeer: id.FromUint64(5), Amount: 0.1, Nonce: 3}
	env := n.Sign(order)
	if len(env.Sig) != 0 {
		t.Fatal("null identity produced a signature")
	}
	if !n.PublicEquals(env.Pub) || !n.VerifyEnvelope(env) {
		t.Fatal("null identity rejects its own envelope")
	}
	// Identity binding survives: another node's null identity must not
	// accept this envelope.
	other := NewNullIdentity(id.HashString("other-peer"))
	if other.PublicEquals(env.Pub) || other.VerifyEnvelope(env) {
		t.Fatal("null envelope verified against the wrong identity")
	}
	// A real signature on a null-claimed envelope is rejected too.
	env.Sig = []byte{1, 2, 3}
	if n.VerifyEnvelope(env) {
		t.Fatal("null identity accepted a signed envelope")
	}
	if n.Tombstone() != nil {
		t.Fatal("null identity must leave no tombstone (verifiers re-derive it)")
	}
}
