package watch

import "testing"

func TestSimPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/world", true},
		{"internal/world", true},
		{"sim.example/internal/sim", true},
		{"repro/internal/lending", true},
		{"repro/internal/fleet", false},     // orchestration edge
		{"repro/internal/rng", false},       // the sanctioned wrapper
		{"repro/cmd/replend-sim", false},    // CLI edge
		{"repro/internal/worldview", false}, // suffix must be a full path element
		{"repro/internal/lint/watch", false},
	}
	for _, c := range cases {
		if got := SimPackage(c.path); got != c.want {
			t.Errorf("SimPackage(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSimPackagesReturnsACopy(t *testing.T) {
	a := SimPackages()
	a[0] = "mutated"
	if b := SimPackages(); b[0] == "mutated" {
		t.Fatal("SimPackages exposes the internal slice")
	}
}
