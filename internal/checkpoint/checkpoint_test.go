package checkpoint

import (
	"strings"
	"testing"
)

type payload struct {
	Name  string `json:"name"`
	Ticks int64  `json:"ticks"`
}

func TestSealOpenRoundTrip(t *testing.T) {
	in := payload{Name: "steady", Ticks: 250000}
	data, err := Seal(KindWorld, in)
	if err != nil {
		t.Fatal(err)
	}
	kind, body, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindWorld {
		t.Fatalf("kind = %q, want %q", kind, KindWorld)
	}
	var out payload
	if err := Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}

	// Sealing the same body twice yields identical bytes: the envelope
	// adds no nondeterminism of its own.
	data2, err := Seal(KindWorld, in)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Fatal("sealing the same body twice produced different bytes")
	}
}

func TestSealRejectsUnknownKind(t *testing.T) {
	if _, err := Seal("experiment", payload{}); err == nil {
		t.Fatal("Seal accepted an unknown kind")
	}
}

func TestOpenRejectsDefects(t *testing.T) {
	good, err := Seal(KindScenario, payload{Name: "quickstart", Ticks: 7})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"not json", []byte("not a checkpoint"), "parsing envelope"},
		{"empty envelope", []byte(`{}`), "bad magic"},
		{"trailing data", append(append([]byte{}, good...), " {}"...), "trailing data"},
		{"truncated", good[:len(good)-9], "parsing envelope"},
		{"bit flip in body", flip(good, []byte(`"ticks":7`), []byte(`"ticks":8`)), "digest mismatch"},
		{"wrong magic", flip(good, []byte("replend-checkpoint/v1"), []byte("replend-checkpoint/v2")), "bad magic"},
		{"unknown kind", flip(good, []byte(`"kind":"scenario"`), []byte(`"kind":"scenario2"`)), "unknown kind"},
		{"unknown envelope field", flip(good, []byte(`"magic"`), []byte(`"mägic"`)), "parsing envelope"},
		{"missing body", []byte(`{"magic":"replend-checkpoint/v1","kind":"world","sha256":""}`), "empty body"},
		{"null body", []byte(`{"magic":"replend-checkpoint/v1","kind":"world","sha256":"","body":null}`), "digest mismatch"},
	}
	for _, tc := range cases {
		_, _, err := Open(tc.data)
		if err == nil {
			t.Errorf("%s: Open accepted the defect", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestUnmarshalIsStrict(t *testing.T) {
	var dst payload
	if err := Unmarshal([]byte(`{"name":"x","ticks":1,"extra":true}`), &dst); err == nil {
		t.Fatal("Unmarshal accepted an unknown field")
	}
	if err := Unmarshal([]byte(`{"name":"x"} {"ticks":2}`), &dst); err == nil {
		t.Fatal("Unmarshal accepted trailing data")
	}
}

// flip replaces one occurrence of old with new, failing loudly if the
// pattern is absent so the corruption cases cannot silently test nothing.
func flip(data, old, new []byte) []byte {
	s := strings.Replace(string(data), string(old), string(new), 1)
	if s == string(data) {
		panic("flip: pattern not found: " + string(old))
	}
	return []byte(s)
}
