// Package fixture exercises the maporder analyzer: every
// order-sensitive effect class it flags, and the order-independent
// patterns it must leave alone.
package fixture

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/id"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// keysUnsorted builds an observable sequence in map order: flagged.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to out`
		out = append(out, k)
	}
	return out
}

// keysSorted is the canonical collect-then-sort repair: accepted.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keysSortedByHelper sorts through a local helper whose name says so:
// accepted.
func keysSortedByHelper(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) { sort.Strings(s) }

// perKeyBuckets writes each loop key's own bucket: order-independent,
// accepted.
func perKeyBuckets(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// intCounter accumulates an integer: order-independent, accepted.
func intCounter(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// floatSum accumulates a float: the last ulps follow iteration order,
// flagged.
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates the floating-point value sum`
		sum += v
	}
	return sum
}

// localAppend appends to a slice declared inside the loop body:
// order-local, accepted.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// printStream writes lines in map order: flagged.
func printStream(m map[string]int) {
	for k, v := range m { // want `calls fmt\.Println`
		fmt.Println(k, v)
	}
}

// writeOuter writes to a buffer declared outside the loop: flagged.
func writeOuter(m map[string]int) string {
	var buf bytes.Buffer
	for k := range m { // want `calls WriteString on buf`
		buf.WriteString(k)
	}
	return buf.String()
}

// writeLocal writes to a buffer created per iteration: accepted.
func writeLocal(m map[string]int) int {
	n := 0
	for k := range m {
		var buf bytes.Buffer
		buf.WriteString(k)
		n += buf.Len()
	}
	return n
}

// traceEmit records trace events in map order: flagged.
func traceEmit(l *trace.Log, m map[string]int) {
	for k := range m { // want `trace/metrics event order follows map iteration order`
		l.Record(0, trace.Kind(k), id.ID{}, id.ID{}, "")
	}
}

// seriesEmit appends metrics samples in map order: flagged.
func seriesEmit(s *metrics.Series, m map[int64]float64) {
	for t, v := range m { // want `trace/metrics event order follows map iteration order`
		s.Append(t, v)
	}
}

// channelSend publishes elements in map order: flagged.
func channelSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}
