// Command replend-lint runs the determinism analyzer suite — maporder,
// rngpurity, nopanic, snapshotfields, telemetrypurity — that mechanizes
// the byte-identity discipline documented in docs/determinism.md.
//
// Standalone over package patterns:
//
//	go run ./cmd/replend-lint ./...
//	go run ./cmd/replend-lint -analyzers maporder,nopanic ./internal/world/
//
// As a vet tool (the go command drives it once per package):
//
//	go build -o /tmp/replend-lint ./cmd/replend-lint
//	go vet -vettool=/tmp/replend-lint ./...
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// are suppressed only by //replend:allow <analyzer> <reason> directives
// on or directly above the flagged line; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint/driver"
	"repro/internal/lint/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The go vet driver protocol: -V=full prints an identity line for
	// the build cache key, -flags reports the tool's analyzer flags
	// (none), and a single *.cfg argument asks for one package unit.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			fmt.Println("replend-lint version replend1")
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			findings, err := driver.RunVetUnit(args[0], suite.All())
			return report(findings, err)
		}
	}

	fs := flag.NewFlagSet("replend-lint", flag.ExitOnError)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: replend-lint [-analyzers a,b] packages...\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.All() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-15s %s\n", a.Name, doc)
		}
		return 0
	}
	var selected []string
	if *names != "" {
		selected = strings.Split(*names, ",")
	}
	analyzers, ok := suite.ByName(selected)
	if !ok {
		fmt.Fprintf(os.Stderr, "replend-lint: unknown analyzer in %q\n", *names)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		return 2
	}
	pkgs, err := driver.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Directive validation always knows the whole suite: running a
	// subset must not misreport another analyzer's directives.
	known := map[string]bool{}
	for _, a := range suite.All() {
		known[a.Name] = true
	}
	findings, err := driver.Run(pkgs, analyzers, known)
	return report(findings, err)
}

func report(findings []driver.Finding, err error) int {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "replend-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
