package baseline

import "testing"

func TestPolicyValues(t *testing.T) {
	cases := []struct {
		p    Policy
		want float64
	}{
		{ComplaintsBased{}, 1.0},
		{PositiveOnly{}, 0.0},
		{MidSpectrum{}, 0.5},
		{FixedCredit{}, 0.1},
		{FixedCredit{Amount: 0.25}, 0.25},
	}
	for _, c := range cases {
		if got := c.p.InitialReputation(); got != c.want {
			t.Errorf("%s: InitialReputation = %v, want %v", c.p.Name(), got, c.want)
		}
		if c.p.Name() == "" {
			t.Errorf("%T: empty name", c.p)
		}
	}
}

func TestAllCoversDistinctNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name()] {
			t.Fatalf("duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
	}
	if len(seen) != 4 {
		t.Fatalf("All returned %d policies, want 4", len(seen))
	}
}

func TestFixedCreditDefaultsOnNonPositive(t *testing.T) {
	if got := (FixedCredit{Amount: -1}).InitialReputation(); got != 0.1 {
		t.Fatalf("negative amount should default to 0.1, got %v", got)
	}
}
