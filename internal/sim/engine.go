// Package sim is the discrete-event engine at the bottom of the
// simulator: integer ticks, a priority queue of scheduled events with
// FIFO ordering inside a tick (which is what makes whole runs
// deterministic), and RunUntil/Step drivers that advance the clock even
// when the queue drains, so "run for n ticks" always means n ticks.
// Everything above it — the world's transaction loop, arrival and
// departure clocks, audit and stake timers — is expressed as events on
// this engine; nothing inside a run is concurrent.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Tick is a point in simulation time. The paper schedules one resource
// transaction per tick.
type Tick int64

// Event is a unit of scheduled work. Events run at a tick; events at the
// same tick run in scheduling order (FIFO), which keeps runs deterministic.
type Event struct {
	At   Tick
	Name string // diagnostic label, e.g. "transaction", "arrival", "audit"
	Run  func()

	// Payload is the event's checkpoint tag: the data a snapshot needs to
	// rebuild Run in a fresh process. Events scheduled without a payload
	// (plain Schedule/After) cannot cross a checkpoint unless the restoring
	// side knows how to rebuild them from the name alone.
	Payload any

	seq int64 // tie-break for FIFO ordering within a tick
}

// eventHeap orders events by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; concurrency in the reproduction lives at the
// replica level (independent engines per goroutine).
type Engine struct {
	now     Tick
	queue   eventHeap
	nextSeq int64
	ran     int64
	stopped bool
}

// NewEngine returns an engine positioned at tick 0 with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Tick { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() int64 { return e.ran }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at the absolute tick at. Scheduling in the past
// (before Now) is a programming error and panics: the simulator has no
// notion of retroactive work.
func (e *Engine) Schedule(at Tick, name string, fn func()) {
	if at < e.now {
		//replend:allow nopanic scheduling into the past is a programming error by design (documented above); no run-path data reaches here
		panic(fmt.Sprintf("sim: scheduling %q at tick %d before now (%d)", name, at, e.now))
	}
	ev := &Event{At: at, Name: name, Run: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// After queues fn to run delay ticks from now.
func (e *Engine) After(delay Tick, name string, fn func()) {
	if delay < 0 {
		//replend:allow nopanic negative delays are a programming error by design; event bodies clamp their draws first
		panic(fmt.Sprintf("sim: negative delay %d for %q", delay, name))
	}
	e.Schedule(e.now+delay, name, fn)
}

// SchedulePayload is Schedule with a checkpoint tag: payload is the data a
// snapshot uses to rebuild fn when restoring in a fresh process.
func (e *Engine) SchedulePayload(at Tick, name string, payload any, fn func()) {
	if at < e.now {
		//replend:allow nopanic scheduling into the past is a programming error by design (documented above); no run-path data reaches here
		panic(fmt.Sprintf("sim: scheduling %q at tick %d before now (%d)", name, at, e.now))
	}
	ev := &Event{At: at, Name: name, Run: fn, Payload: payload, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.queue, ev)
}

// AfterPayload is After with a checkpoint tag; see SchedulePayload.
func (e *Engine) AfterPayload(delay Tick, name string, payload any, fn func()) {
	if delay < 0 {
		//replend:allow nopanic negative delays are a programming error by design; event bodies clamp their draws first
		panic(fmt.Sprintf("sim: negative delay %d for %q", delay, name))
	}
	e.SchedulePayload(e.now+delay, name, payload, fn)
}

// PendingEvent is the checkpoint view of one queued event: everything but
// the closure, which the restoring side rebuilds from (Name, Payload).
type PendingEvent struct {
	At      Tick
	Name    string
	Seq     int64
	Payload any
}

// Pendings returns the queued events in execution order (At, then
// scheduling order). The closures themselves are not exported; a
// checkpoint stores (Name, Payload) and rebuilds them on restore.
func (e *Engine) Pendings() []PendingEvent {
	out := make([]PendingEvent, 0, len(e.queue))
	for _, ev := range e.queue {
		out = append(out, PendingEvent{At: ev.At, Name: ev.Name, Seq: ev.seq, Payload: ev.Payload})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// NextSeq returns the sequence number the next scheduled event would get.
// Together with Pendings and Now it pins the scheduler's full state.
func (e *Engine) NextSeq() int64 { return e.nextSeq }

// Restore resets the engine to a checkpointed scheduler state: clock at
// now, the given pending events re-queued with their original sequence
// numbers (preserving intra-tick FIFO order exactly), and the sequence
// counter at nextSeq. rebuild maps each pending event back to its closure;
// a nil closure or non-nil error aborts the restore, leaving the engine in
// an unspecified state the caller must discard.
func (e *Engine) Restore(now Tick, nextSeq int64, events []PendingEvent, rebuild func(PendingEvent) (func(), error)) error {
	e.queue = e.queue[:0]
	e.now = now
	e.nextSeq = nextSeq
	e.stopped = false
	for _, pe := range events {
		if pe.At < now {
			return fmt.Errorf("sim: restore: event %q at tick %d before now (%d)", pe.Name, pe.At, now)
		}
		if pe.Seq >= nextSeq {
			return fmt.Errorf("sim: restore: event %q has seq %d >= next seq %d", pe.Name, pe.Seq, nextSeq)
		}
		fn, err := rebuild(pe)
		if err != nil {
			return fmt.Errorf("sim: restore: rebuilding %q at tick %d: %w", pe.Name, pe.At, err)
		}
		if fn == nil {
			return fmt.Errorf("sim: restore: no closure for %q at tick %d", pe.Name, pe.At)
		}
		heap.Push(&e.queue, &Event{At: pe.At, Name: pe.Name, Run: fn, Payload: pe.Payload, seq: pe.Seq})
	}
	return nil
}

// Stop makes the current Run invocation return after the in-flight event
// completes. Queued events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	e.ran++
	ev.Run()
	return true
}

// RunUntil executes events in order until the queue is empty, Stop is
// called, or the next event would run after the deadline tick. Events
// scheduled exactly at the deadline still run. It returns the number of
// events executed.
func (e *Engine) RunUntil(deadline Tick) int64 {
	e.stopped = false
	start := e.ran
	for !e.stopped && len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.stopped {
		// Advance the clock even if the queue drained early, so callers
		// observing Now see the full interval elapsed.
		e.now = deadline
	}
	return e.ran - start
}

// Drain executes every pending event. It returns the number executed. Use
// with care: a self-rescheduling event makes Drain run forever, so the
// simulator's periodic processes should use RunUntil.
func (e *Engine) Drain() int64 {
	e.stopped = false
	start := e.ran
	for !e.stopped && e.Step() {
	}
	return e.ran - start
}
