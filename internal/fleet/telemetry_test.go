package fleet

// Fleet telemetry tests: heartbeat Status payloads, the worker-side
// state the beacons read, the coordinator's progress table, and the
// journal's fleet telemetry summary record.

import (
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestWorkerStateStatus(t *testing.T) {
	s := newWorkerState()
	if st := s.status(); st.Unit != -1 || st.PeakRSS == 0 {
		t.Fatalf("idle status = %+v, want unit -1 with a measured RSS", st)
	}

	p := &telemetry.Progress{}
	p.Event(telemetry.Event{At: 1000, Kind: "arrival"})
	s.begin(7, p)
	time.Sleep(5 * time.Millisecond) // a nonzero rate window
	st := s.status()
	if st.Unit != 7 || st.Tick != 1000 {
		t.Fatalf("busy status = %+v, want unit 7 at tick 1000", st)
	}
	if st.TicksPerSec <= 0 {
		t.Fatalf("tick rate %f, want > 0 after progress advanced", st.TicksPerSec)
	}

	// A second beat with no progress reports a zero rate, not garbage.
	time.Sleep(2 * time.Millisecond)
	if st := s.status(); st.TicksPerSec != 0 {
		t.Fatalf("stalled unit reports %f ticks/s, want 0", st.TicksPerSec)
	}

	s.end()
	if st := s.status(); st.Unit != -1 || st.Tick != 0 {
		t.Fatalf("post-unit status = %+v, want idle", st)
	}
}

// TestHeartbeatCarriesStatus drives the real worker loop over a pipe and
// reads its beacons: every heartbeat frame must carry a Status payload.
func TestHeartbeatCarriesStatus(t *testing.T) {
	coord, worker := pipePair()
	done := make(chan error, 1)
	go func() {
		done <- ServeWorker(worker, worker, WorkerOptions{HeartbeatInterval: 5 * time.Millisecond})
	}()
	if env, err := readFrame(coord); err != nil || env.Type != msgHello {
		t.Fatalf("first frame %v, %v; want hello", env, err)
	}
	deadline := time.After(2 * time.Second)
	for {
		frame := make(chan *envelope, 1)
		go func() {
			env, err := readFrame(coord)
			if err == nil {
				frame <- env
			}
		}()
		select {
		case env := <-frame:
			if env.Type != msgHeartbeat {
				continue
			}
			if env.Status == nil {
				t.Fatal("heartbeat without a status payload")
			}
			if env.Status.Unit != -1 || env.Status.PeakRSS == 0 {
				t.Fatalf("idle heartbeat status = %+v", env.Status)
			}
			coord.Close()
			if err := <-done; err != nil {
				t.Fatalf("worker exit: %v", err)
			}
			return
		case <-deadline:
			t.Fatal("no heartbeat within 2s")
		}
	}
}

func TestProgressTableRenders(t *testing.T) {
	f := &Fleet{cfg: Config{}.withDefaults(), workers: map[int]*workerConn{}}
	f.workers[0] = &workerConn{id: 0, local: true, ready: true, status: &Status{Unit: 3, Tick: 42000, TicksPerSec: 9000, PeakRSS: 32 << 20}}
	f.workers[1] = &workerConn{id: 1, ready: true, status: &Status{Unit: -1}}
	f.workers[2] = &workerConn{id: 2, local: true}
	b := &batch{jobs: make([]Job, 8), done: 5, began: time.Now(), workers: map[int]bool{}}

	table := f.progressTableLocked(b)
	for _, want := range []string{
		"5/8 units done",
		"worker 0 (local): unit 3 tick=42000 ticks/s=9000 rss=32.0MiB",
		"worker 1 (remote): idle",
		"worker 2 (local): joining",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestProgressWriterReceivesTables runs a real batch with Progress set
// and checks the live table reached the writer.
func TestProgressWriterReceivesTables(t *testing.T) {
	var buf syncBuffer
	f, err := New(Config{Workers: 2, Spawn: slowPipeSpawn(20 * time.Millisecond), Logf: t.Logf, Progress: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Run(tinyJobs(t, 4)); err != nil {
		t.Fatal(err)
	}
	// Progress renders once a second; a 4-unit batch of 20ms units can
	// finish before the first render, so run a second, longer batch.
	if buf.Len() == 0 {
		if _, err := f.Run(tinyJobs(t, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if out := buf.String(); !strings.Contains(out, "units done") {
		t.Fatalf("progress writer saw no table:\n%q", out)
	}
}

// slowPipeSpawn is PipeSpawn with an artificial per-unit delay so a
// batch stays alive long enough for timed observers.
func slowPipeSpawn(delay time.Duration) SpawnFunc {
	return func(int) (io.ReadWriteCloser, error) {
		coord, worker := pipePair()
		go fakeWorker(worker, func(job *Job, send func(*envelope) error) bool {
			time.Sleep(delay)
			return send(&envelope{Type: msgResult, Result: RunJob(job)}) == nil
		})
		return coord, nil
	}
}

// syncBuffer is a goroutine-safe growable write target.
type syncBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJournalTelemetrySummary pins that a completed journaled batch ends
// with a telemetry summary record, that reopening the journal replays
// it, and that the summary never counts as a unit result.
func TestJournalTelemetrySummary(t *testing.T) {
	jobs := tinyJobs(t, 3)
	path := filepath.Join(t.TempDir(), "batch.journal")
	j, err := OpenJournal(path, jobs)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{Workers: 2, Spawn: PipeSpawn(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunJournaled(jobs, j); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sum := j.Summary()
	if sum == nil {
		t.Fatal("completed batch recorded no telemetry summary")
	}
	if sum.Units != 3 || sum.Workers == 0 || sum.ElapsedSeconds <= 0 {
		t.Fatalf("summary = %+v", sum)
	}
	j.Close()

	// Reopen: the summary replays, and every unit is still complete —
	// the summary line was not mistaken for a result.
	j2, err := OpenJournal(path, tinyJobs(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.CompletedCount() != 3 {
		t.Fatalf("reopened journal has %d completed units, want 3", j2.CompletedCount())
	}
	got := j2.Summary()
	if got == nil || *got != *sum {
		t.Fatalf("replayed summary = %+v, want %+v", got, sum)
	}
}
