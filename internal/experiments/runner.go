// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the ablations called out in DESIGN.md. Each
// experiment builds the paper's configuration, runs the required number of
// replicas in parallel ("Each experiment is repeated 10 times and the
// results shown are the average"), and renders a text table and CSV
// series whose shape is directly comparable to the published plots.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/baseline"
	"repro/internal/config"
	"repro/internal/lending"
	"repro/internal/metrics"
	"repro/internal/world"
)

// Options scales an experiment. The zero value means paper scale: the
// populations, durations and replica counts of §4.
type Options struct {
	// Runs is the number of replicas averaged per data point (paper: 10).
	Runs int
	// Parallel bounds concurrently running replicas (default GOMAXPROCS).
	Parallel int
	// Scale shrinks population and duration linearly (1 = paper scale).
	// Benchmarks use small scales; shapes are preserved because the
	// arrival rate stays per-tick.
	Scale float64
	// SeedBase offsets the replica seeds, so different experiments (and
	// different sweep points) draw independent randomness.
	SeedBase uint64
	// NullSign runs every replica with null signing identities — the
	// explicit Ed25519 opt-out for huge sweeps (config.NullSign).
	NullSign bool
}

// withDefaults fills unset options with paper-scale values.
func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 10
	}
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.SeedBase == 0 {
		o.SeedBase = 1
	}
	return o
}

// apply scales a paper-scale configuration down (or up).
func (o Options) apply(c config.Config) config.Config {
	if o.Scale == 1 {
		return c
	}
	c.NumInit = int(float64(c.NumInit) * o.Scale)
	if c.NumInit < 20 {
		c.NumInit = 20
	}
	c.NumTrans = int64(float64(c.NumTrans) * o.Scale)
	if c.NumTrans < 2000 {
		c.NumTrans = 2000
	}
	c.WaitPeriod = int64(float64(c.WaitPeriod) * o.Scale)
	if c.WaitPeriod < 20 {
		c.WaitPeriod = 20
	}
	c.SampleEvery = c.NumTrans / 100
	if c.SampleEvery < 1 {
		c.SampleEvery = 1
	}
	return c
}

// Replica is the outcome of one simulation run.
type Replica struct {
	Metrics world.Metrics
	Proto   lending.Stats
}

// forEachReplica runs fn for the replica indices 0..opt.Runs-1, at most
// opt.Parallel at a time, and returns the first error. It is the shared
// parallelism substrate for both configuration replicas and declarative
// scenario replicas; opt must already have defaults applied.
func forEachReplica(opt Options, fn func(i int) error) error {
	errs := make([]error, opt.Runs)
	sem := make(chan struct{}, opt.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < opt.Runs; i++ {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("experiments: replica failed: %w", err)
		}
	}
	return nil
}

// replicaSeed spreads replica seeds so different replicas (and different
// sweep points offset by SeedBase) draw independent randomness.
func replicaSeed(base uint64, i int) uint64 { return base + uint64(i)*7919 }

// runReplicas executes opt.Runs independent seeded replicas of cfg in
// parallel and returns them in seed order. policy may be nil (lending
// admissions) or a baseline bootstrap rule used when cfg disables
// introductions.
func runReplicas(cfg config.Config, opt Options, policy baseline.Policy) ([]Replica, error) {
	opt = opt.withDefaults()
	out := make([]Replica, opt.Runs)
	err := forEachReplica(opt, func(i int) error {
		c := cfg
		c.Seed = replicaSeed(opt.SeedBase, i)
		if opt.NullSign {
			c.NullSign = true
		}
		w, err := world.New(c)
		if err != nil {
			return err
		}
		if policy != nil {
			w.SetPolicy(policy)
		}
		if err := w.Run(); err != nil {
			return err
		}
		out[i] = Replica{Metrics: *w.Metrics(), Proto: w.Protocol().Stats()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// meanOf averages an int64 field over replicas.
func meanOf(rs []Replica, f func(Replica) int64) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rs {
		sum += float64(f(r))
	}
	return sum / float64(len(rs))
}

// statOf accumulates a float64 field over replicas, exposing mean and CI.
func statOf(rs []Replica, f func(Replica) float64) metrics.Running {
	var acc metrics.Running
	for _, r := range rs {
		acc.Observe(f(r))
	}
	return acc
}

// mergeSeriesOf averages a per-replica series pointwise.
func mergeSeriesOf(rs []Replica, name string, f func(Replica) *metrics.Series) *metrics.Series {
	series := make([]*metrics.Series, len(rs))
	for i, r := range rs {
		series[i] = f(r)
	}
	return metrics.MergeSeries(name, series)
}
